package mermaid

// Scaling benchmarks for the simulation substrate itself: how fast the
// kernel dispatches events and the network delivers frames when the
// cluster is two orders of magnitude bigger than the paper's (1024
// hosts instead of 5). These are wall-clock benchmarks of the
// simulator; the events/s and frames/s metrics feed the before/after
// table in EXPERIMENTS.md ("Wall-clock performance") via BENCH_2.json.

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// BenchmarkSimKernel1024Hosts stresses the event heap: 1024 processes
// sleeping staggered intervals keep ~1k timer events queued at every
// instant, which is the kernel-side shape of a 1024-host cluster run.
func BenchmarkSimKernel1024Hosts(b *testing.B) {
	const hosts = 1024
	const rounds = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		for h := 0; h < hosts; h++ {
			h := h
			k.Spawn("host", func(p *sim.Proc) {
				d := time.Duration(h%37+1) * time.Microsecond
				for r := 0; r < rounds; r++ {
					p.Sleep(d)
				}
			})
		}
		k.Run()
		k.Shutdown()
	}
	b.StopTimer()
	events := float64(hosts * rounds * b.N)
	b.ReportMetric(events/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkBusInvalidation measures the broadcast-invalidation
// delivery path at 1024 hosts on the one-segment bus: one sender
// broadcasts frames, every other interface drains them — the netsim
// shape of a full-copyset write invalidation.
func BenchmarkBusInvalidation(b *testing.B) {
	benchBroadcastStorm(b, nil)
}

// BenchmarkSwitchedInvalidation is the same storm on the switched
// topology (32 segments of 32 hosts): broadcasts expand along the
// multicast tree, so the cross-segment cost is one frame per segment
// instead of one per receiver.
func BenchmarkSwitchedInvalidation(b *testing.B) {
	benchBroadcastStorm(b, netsim.SwitchedStar(32, 32))
}

func benchBroadcastStorm(b *testing.B, topo *netsim.Topology) {
	const hosts = 1024
	const frames = 8
	params := model.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		n := netsim.NewWithTopology(k, &params, topo)
		ifaces := make([]*netsim.Interface, hosts)
		for h := 0; h < hosts; h++ {
			ifc, err := n.Attach(netsim.HostID(h))
			if err != nil {
				b.Fatal(err)
			}
			ifaces[h] = ifc
		}
		for h := 1; h < hosts; h++ {
			ifc := ifaces[h]
			k.Spawn("rx", func(p *sim.Proc) {
				for f := 0; f < frames; f++ {
					ifc.Recv(p)
				}
			})
		}
		k.Spawn("tx", func(p *sim.Proc) {
			for f := 0; f < frames; f++ {
				if err := ifaces[0].Send(p, netsim.Frame{From: 0, To: netsim.Broadcast, Size: 64}); err != nil {
					panic(err)
				}
			}
		})
		k.Run()
		k.Shutdown()
	}
	b.StopTimer()
	deliveries := float64((hosts - 1) * frames * b.N)
	b.ReportMetric(deliveries/b.Elapsed().Seconds(), "frames/s")
}
