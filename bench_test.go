package mermaid

// One benchmark per table and figure of the paper's evaluation, plus
// real micro-benchmarks of the conversion machinery. The simulation
// benchmarks report virtual-time results as custom metrics
// (ms_simulated vs ms_paper, or s_simulated), so `go test -bench .`
// regenerates the whole evaluation; wall-clock ns/op measures the
// simulator itself. See EXPERIMENTS.md for the recorded comparison.

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/apps/sor"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/exp"
	"repro/internal/vaxfloat"
)

func BenchmarkTable1FaultHandling(b *testing.B) {
	var rows []exp.Table1Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table1()
	}
	for _, r := range rows {
		op := "read"
		if r.Write {
			op = "write"
		}
		b.ReportMetric(r.MS, fmt.Sprintf("ms_%s_%s", r.Kind, op))
	}
}

func BenchmarkTable2PageTransfer(b *testing.B) {
	var rows []exp.Table2Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table2()
	}
	for _, r := range rows {
		if r.Size == 8192 {
			b.ReportMetric(r.MS, fmt.Sprintf("ms_%v_to_%v_8KB", r.From, r.To))
		}
	}
}

func BenchmarkTable3Conversion(b *testing.B) {
	var rows []exp.Table3Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table3()
	}
	for _, r := range rows {
		if r.Size == 8192 {
			name := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(r.TypeName)
			b.ReportMetric(r.MS, "ms_"+name)
		}
	}
}

func BenchmarkTable4FaultDelay(b *testing.B) {
	var rows []exp.Table4Row
	for i := 0; i < b.N; i++ {
		rows = exp.Table4()
	}
	var worst float64
	for _, r := range rows {
		rel := math.Abs(r.MS-r.PaperMS) / r.PaperMS
		worst = math.Max(worst, rel)
	}
	b.ReportMetric(worst*100, "worst_%_vs_paper")
}

func BenchmarkFigure3PhysicalVsDSM(b *testing.B) {
	var res exp.Figure3Result
	for i := 0; i < b.N; i++ {
		res = exp.Figure3(6)
	}
	last := len(res.Physical) - 1
	b.ReportMetric(res.Physical[last].Seconds, "s_physical_6thr")
	b.ReportMetric(res.Distributed[last].Seconds, "s_dsm_6thr")
}

func BenchmarkFigure4HeterogeneousMM(b *testing.B) {
	var pts []exp.FigPoint
	for i := 0; i < b.N; i++ {
		pts = exp.Figure4(16)
	}
	b.ReportMetric(pts[0].Seconds, "s_1thr")
	b.ReportMetric(pts[7].Seconds, "s_8thr")
	b.ReportMetric(pts[13].Seconds, "s_14thr")
}

func BenchmarkFigure5PCB(b *testing.B) {
	var pts []exp.Figure5Point
	for i := 0; i < b.N; i++ {
		pts = exp.Figure5(10)
	}
	b.ReportMetric(pts[len(pts)-1].Speedup, "speedup_10thr")
	b.ReportMetric(pts[len(pts)-1].Seconds, "s_10thr")
}

func BenchmarkFigure6PageSizeAlgorithms(b *testing.B) {
	var res exp.Figure6Result
	for i := 0; i < b.N; i++ {
		res = exp.Figure6(8)
	}
	b.ReportMetric(res.Large[7].Seconds, "s_8KB_8thr")
	b.ReportMetric(res.Small[7].Seconds, "s_1KB_8thr")
}

func BenchmarkFigure7MM1VsMM2SmallPages(b *testing.B) {
	var res exp.Figure7Result
	for i := 0; i < b.N; i++ {
		res = exp.Figure7(8)
	}
	b.ReportMetric(res.MM1[7].Seconds, "s_MM1_8thr")
	b.ReportMetric(res.MM2[7].Seconds, "s_MM2_8thr")
}

func BenchmarkThrashingMM2LargePages(b *testing.B) {
	var rows []exp.ThrashingResult
	for i := 0; i < b.N; i++ {
		rows = exp.Thrashing([]int{8}, []int64{1, 2, 3})
	}
	r := rows[0]
	b.ReportMetric(r.MeanS, "s_mean")
	b.ReportMetric(r.MaxS-r.MinS, "s_spread")
	b.ReportMetric(r.MeanTransfers, "transfers")
}

func BenchmarkSingleThreadOverhead(b *testing.B) {
	var rows []exp.OverheadResult
	for i := 0; i < b.N; i++ {
		rows = exp.SingleThreadOverhead()
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, "pct_"+r.App)
	}
}

func BenchmarkAblationSameKindSource(b *testing.B) {
	var r exp.AblationResult
	for i := 0; i < b.N; i++ {
		r = exp.AblationSameKindSource()
	}
	b.ReportMetric(float64(r.BaselineConv), "conv_baseline")
	b.ReportMetric(float64(r.TunedConv), "conv_tuned")
}

// --- Real (wall-clock) micro-benchmarks of the conversion machinery ---

func BenchmarkRealInt32PageConversion(b *testing.B) {
	reg := conv.NewRegistry()
	buf := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		if _, err := reg.ConvertRegion(conv.Int32, buf, arch.SunArch, arch.FireflyArch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealFloat64PageConversion(b *testing.B) {
	reg := conv.NewRegistry()
	buf := make([]byte, 8192)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		if _, err := reg.ConvertRegion(conv.Float64, buf, arch.SunArch, arch.FireflyArch, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealVaxFEncode(b *testing.B) {
	var out [4]byte
	for i := 0; i < b.N; i++ {
		vaxfloat.EncodeF(3.14159+float64(i&0xff), out[:])
	}
}

func BenchmarkRealVaxGRoundTrip(b *testing.B) {
	var out [8]byte
	for i := 0; i < b.N; i++ {
		vaxfloat.EncodeG(2.718281828459045, out[:])
		if _, ok := vaxfloat.DecodeG(out[:]); !ok {
			b.Fatal("reserved")
		}
	}
}

func BenchmarkRealQuickstartScenario(b *testing.B) {
	// Wall-clock cost of a complete small simulation: build a cluster,
	// run a cross-architecture round trip.
	for i := 0; i < b.N; i++ {
		c, err := New(Config{
			Hosts: []HostSpec{{Kind: Sun}, {Kind: Firefly, CPUs: 4}},
			Seed:  1,
		})
		if err != nil {
			b.Fatal(err)
		}
		c.DefineSemaphore(1, 0, 0)
		worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
			v := e.ReadInt32(Addr(args[0]))
			e.WriteInt32(Addr(args[0]), v*2)
			e.V(1)
		})
		c.Run(0, func(e *Env) {
			addr := e.MustAlloc(Int32, 1)
			e.WriteInt32(addr, 21)
			if _, err := e.CreateThread(1, worker, uint32(addr)); err != nil {
				b.Fatal(err)
			}
			e.P(1)
			if e.ReadInt32(addr) != 42 {
				b.Fatal("wrong result")
			}
		})
	}
}

func BenchmarkRealOwnerForwarding(b *testing.B) {
	// Wall-clock cost of a full dynamic-directory simulation (Li &
	// Hudak's probable-owner forwarding) on the migratory workload,
	// with the chain statistics as custom metrics.
	var r exp.DirectorySchemeRow
	for i := 0; i < b.N; i++ {
		r = exp.OwnerForwarding()
	}
	b.ReportMetric(r.ElapsedS, "s_simulated")
	b.ReportMetric(float64(r.Forwards), "forwards")
	b.ReportMetric(r.AvgHops, "avg_hops")
	b.ReportMetric(float64(r.MaxChain), "max_chain")
}

// benchQuorumFanout is the body of the BenchmarkQuorumFanout* pair:
// wall-clock cost of a full SC-ABD simulation — every read and write a
// two-phase majority fan-out — on an n-host heterogeneous cluster, with
// the quorum round counters as custom metrics.
func benchQuorumFanout(b *testing.B, n int) {
	const rounds = 50
	var stats DSMStats
	for i := 0; i < b.N; i++ {
		hosts := make([]HostSpec, n)
		for h := range hosts {
			if h%2 == 1 {
				hosts[h] = HostSpec{Kind: Firefly}
			} else {
				hosts[h] = HostSpec{Kind: Sun}
			}
		}
		c, err := New(Config{Hosts: hosts, Policy: Quorum, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		c.Run(0, func(e *Env) {
			addr := e.MustAlloc(Int32, 8)
			for r := 0; r < rounds; r++ {
				e.WriteInt32(addr, int32(r))
				if got := e.ReadInt32(addr); got != int32(r) {
					b.Fatalf("round %d read %d", r, got)
				}
			}
		})
		stats = c.TotalStats()
	}
	b.ReportMetric(float64(stats.QuorumReads)/rounds, "qreads/op")
	b.ReportMetric(float64(stats.QuorumWrites)/rounds, "qwrites/op")
	b.ReportMetric(float64(stats.QuorumWriteBacks), "writebacks")
	b.ReportMetric(float64(stats.QuorumRetries), "retries")
}

func BenchmarkQuorumFanout3Hosts(b *testing.B) { benchQuorumFanout(b, 3) }

func BenchmarkQuorumFanout5Hosts(b *testing.B) { benchQuorumFanout(b, 5) }

// --- RC (lazy release consistency) micro-benchmarks ------------------
//
// Wall-clock cost of the twin/diff machinery on the release path
// (BenchmarkRCDiffEncode) and of the vector-timestamp payload merge on
// the grant path (BenchmarkRCMerge). Frozen into BENCH_4.json by
// `make bench`.

func BenchmarkRCDiffEncode(b *testing.B) {
	// An 8 KB int32 page whose interval touched every 16th element —
	// the sparse-write shape MM2's round-robin rows produce — diffed
	// against its twin and encoded to the wire.
	reg := conv.NewRegistry()
	twin := make([]byte, 8192)
	for i := range twin {
		twin[i] = byte(i * 131)
	}
	page := make([]byte, 8192)
	copy(page, twin)
	for e := 0; e < 8192/4; e += 16 {
		page[e*4] ^= 0x5a
	}
	wire := make([]byte, 9000)
	var encoded int
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		d, err := reg.BuildDiff(conv.Int32, twin, page)
		if err != nil {
			b.Fatal(err)
		}
		encoded = d.EncodeTo(wire)
	}
	b.ReportMetric(float64(encoded), "wire_bytes")
}

func BenchmarkRCMerge(b *testing.B) {
	// Component-wise merge of two sync payloads — the work a semaphore
	// grant does when its stored release stamp meets the granting
	// host's, sized for an 8-host cluster with 16 pages of notices each.
	c, err := cluster.New(cluster.Config{
		Hosts:  []cluster.HostSpec{{Kind: arch.Sun}, {Kind: arch.Firefly}},
		Policy: dsm.PolicyRC,
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sync := c.Hosts[0].DSM.SyncModel()
	if sync == nil {
		b.Fatal("RC cluster has no sync model")
	}
	// Canonical payload layout: [u32 nvt][vt…][u32 n][page,ver]×n,
	// big-endian, notices ascending (see rcEncodePayload).
	payload := func(salt uint32) []byte {
		const nvt, n = 8, 16
		buf := make([]byte, 4+4*nvt+4+8*n)
		be := func(off int, v uint32) {
			buf[off] = byte(v >> 24)
			buf[off+1] = byte(v >> 16)
			buf[off+2] = byte(v >> 8)
			buf[off+3] = byte(v)
		}
		be(0, nvt)
		for i := uint32(0); i < nvt; i++ {
			be(int(4+4*i), salt*7+i)
		}
		off := 4 + 4*nvt
		be(off, n)
		off += 4
		for i := uint32(0); i < n; i++ {
			be(off, i+salt%3) // page numbers mostly overlap between payloads
			be(off+4, salt+i)
			off += 8
		}
		return buf
	}
	a, bb := payload(5), payload(9)
	var out []byte
	for i := 0; i < b.N; i++ {
		out = sync.MergePayload(a, bb)
	}
	b.ReportMetric(float64(len(out)), "merged_bytes")
}

func BenchmarkAblationSyncStyles(b *testing.B) {
	var r exp.SyncStyleResult
	for i := 0; i < b.N; i++ {
		r = exp.SyncStyles(10)
	}
	b.ReportMetric(r.SpinlockS, "s_spinlock")
	b.ReportMetric(r.SemaphoreS, "s_semaphore")
	b.ReportMetric(float64(r.SpinlockTransfers), "transfers_spinlock")
	b.ReportMetric(float64(r.SemaphoreTransfers), "transfers_semaphore")
}

func BenchmarkAblationManagerPlacement(b *testing.B) {
	var r exp.ManagerPlacementResult
	for i := 0; i < b.N; i++ {
		r = exp.ManagerPlacement()
	}
	b.ReportMetric(r.DistributedS, "s_distributed")
	b.ReportMetric(r.CentralS, "s_central")
}

func BenchmarkAlgorithmChoice(b *testing.B) {
	var rows []exp.AlgorithmChoiceRow
	for i := 0; i < b.N; i++ {
		rows = exp.AlgorithmChoice()
	}
	for _, r := range rows {
		b.ReportMetric(r.MRSWS, "s_mrsw_"+r.Workload)
		b.ReportMetric(r.CentralS, "s_central_"+r.Workload)
	}
}

func BenchmarkExtensionSORScaling(b *testing.B) {
	var one, four float64
	for i := 0; i < b.N; i++ {
		run := func(slaves []cluster.HostID) float64 {
			c, err := cluster.New(cluster.Config{
				Hosts: []cluster.HostSpec{
					{Kind: arch.Sun},
					{Kind: arch.Firefly, CPUs: 4},
					{Kind: arch.Firefly, CPUs: 4},
				},
				Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := sor.Register(c)
			res, err := r.Run(sor.Config{W: 256, H: 258, Iters: 4, Master: 0, Slaves: slaves})
			if err != nil {
				b.Fatal(err)
			}
			return res.Elapsed.Seconds()
		}
		one = run([]cluster.HostID{1})
		four = run([]cluster.HostID{1, 1, 2, 2})
	}
	b.ReportMetric(one, "s_1thr")
	b.ReportMetric(four, "s_4thr")
}

func BenchmarkPageSizeSpectrum(b *testing.B) {
	var pts []exp.PageSizePoint
	for i := 0; i < b.N; i++ {
		pts = exp.PageSizeSweep(8)
	}
	for _, p := range pts {
		b.ReportMetric(p.MM1S, fmt.Sprintf("s_MM1_%dB", p.PageSize))
		b.ReportMetric(p.MM2S, fmt.Sprintf("s_MM2_%dB", p.PageSize))
	}
}
