package mermaid_test

// Executable documentation: these examples run under `go test` and
// appear in godoc.

import (
	"fmt"
	"time"

	mermaid "repro"
)

// A value written big-endian on a Sun, doubled little-endian on a
// Firefly, and read back on the Sun — converted in flight both ways.
func Example() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 4},
		},
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	c.DefineSemaphore(1, 0, 0)
	double := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		addr := mermaid.Addr(args[0])
		e.WriteInt32(addr, e.ReadInt32(addr)*2)
		e.V(1)
	})
	c.Run(0, func(e *mermaid.Env) {
		addr := e.MustAlloc(mermaid.Int32, 1)
		e.WriteInt32(addr, 21)
		if _, err := e.CreateThread(1, double, uint32(addr)); err != nil {
			panic(err)
		}
		e.P(1)
		fmt.Println(e.ReadInt32(addr))
	})
	// Output: 42
}

// Distributed synchronization: a barrier aligns threads on different
// machines, then a semaphore collects them.
func ExampleCluster_DefineBarrier() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 2},
			{Kind: mermaid.Firefly, CPUs: 2},
		},
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	const (
		barrier = 7
		done    = 8
	)
	c.DefineBarrier(barrier, 0, 2)
	c.DefineSemaphore(done, 0, 0)
	var after []time.Duration
	worker := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		e.Compute(time.Duration(args[0]) * time.Millisecond)
		e.Barrier(barrier) // both release at the later arrival
		after = append(after, e.Now())
		e.V(done)
	})
	c.Run(0, func(e *mermaid.Env) {
		e.CreateThread(1, worker, 10)
		e.CreateThread(2, worker, 300)
		e.P(done)
		e.P(done)
	})
	// Both released at the later arrival (release messages travel the
	// wire, so allow their serialization on the shared medium).
	gap := after[1] - after[0]
	if gap < 0 {
		gap = -gap
	}
	fmt.Println(gap < 5*time.Millisecond, after[0] >= 300*time.Millisecond)
	// Output: true true
}

// The typed allocator keeps one data type per page, so floats and ints
// from interleaved allocations never share a page.
func ExampleEnv_Alloc() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{{Kind: mermaid.Sun}},
		Seed:  1,
	})
	if err != nil {
		panic(err)
	}
	c.Run(0, func(e *mermaid.Env) {
		ints := e.MustAlloc(mermaid.Int32, 10)
		floats := e.MustAlloc(mermaid.Float64, 10)
		moreInts := e.MustAlloc(mermaid.Int32, 10)
		fmt.Println(samePage(ints, floats), samePage(ints, moreInts))
	})
	// Output: false true
}

func samePage(a, b mermaid.Addr) bool {
	return a/mermaid.LargestPageSize == b/mermaid.LargestPageSize
}
