// Package mermaid is a library reproduction of Mermaid, the
// heterogeneous distributed shared memory system of Zhou, Stumm and
// McInerney, "Extending Distributed Shared Memory to Heterogeneous
// Environments" (ICDCS 1990).
//
// A Cluster simulates a network of big-endian Sun-3 workstations and
// little-endian, VAX-float DEC Firefly multiprocessors sharing one
// 10 Mb/s Ethernet, entirely in deterministic virtual time. On top of it
// runs the Mermaid system: Li's multiple-reader/single-writer
// write-invalidate DSM with fixed distributed managers, a typed
// allocator that keeps one data type per page, automatic data conversion
// (byte order, IEEE↔VAX floats, pointer rebasing) when pages migrate
// between unlike machines, user-level threads with remote creation, and
// a distributed synchronization facility with P/V semaphores, events and
// barriers.
//
// Programs are written as thread functions receiving an *Env, which
// exposes typed shared-memory access, thread creation, synchronization,
// and a Compute call that charges calibrated virtual CPU time:
//
//	c, _ := mermaid.New(mermaid.Config{Hosts: []mermaid.HostSpec{
//		{Kind: mermaid.Sun},
//		{Kind: mermaid.Firefly, CPUs: 4},
//	}})
//	c.DefineSemaphore(1, 0, 0)
//	worker := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
//		v := e.ReadInt32(mermaid.Addr(args[0]))
//		e.WriteInt32(mermaid.Addr(args[0]), v*2)
//		e.V(1)
//	})
//	elapsed := c.Run(0, func(e *mermaid.Env) {
//		addr, _ := e.Alloc(mermaid.Int32, 1)
//		e.WriteInt32(addr, 21)
//		e.CreateThread(1, worker, uint32(addr))
//		e.P(1)
//		fmt.Println(e.ReadInt32(addr)) // 42, after a Sun→Firefly→Sun trip
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package mermaid

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Machine kinds.
const (
	// Sun is a Sun-3/60 workstation: one CPU, big-endian, IEEE floats,
	// 8 KB native VM pages.
	Sun = arch.Sun
	// Firefly is a DEC Firefly: up to 7 CPUs, little-endian, VAX
	// floats, 1 KB native VM pages.
	Firefly = arch.Firefly
)

// Basic shared-memory data types.
const (
	// Char is an 8-bit character (no conversion).
	Char = conv.Char
	// Int16 is a 16-bit integer ("short").
	Int16 = conv.Int16
	// Int32 is a 32-bit integer ("int").
	Int32 = conv.Int32
	// Float32 is a single-precision float (IEEE single / VAX F).
	Float32 = conv.Float32
	// Float64 is a double-precision float (IEEE double / VAX G).
	Float64 = conv.Float64
	// Pointer is a 32-bit shared-memory pointer, rebased on conversion.
	Pointer = conv.Pointer
)

// Coherence policies (§2.1: multiple DSM algorithms on one system).
const (
	// MRSW is Li's write-invalidate algorithm, the paper's default.
	MRSW = dsm.PolicyMRSW
	// Migration keeps one migrating copy per page (no replication).
	Migration = dsm.PolicyMigration
	// Central performs every access remotely at the page's server.
	Central = dsm.PolicyCentral
	// Update replicates on read and pushes sequenced writes to every
	// replica instead of invalidating (write-update, full replication).
	Update = dsm.PolicyUpdate
	// Quorum replicates every page at every host and runs SC-ABD
	// majority-quorum reads and writes: operations complete in any
	// network component holding a majority of the hosts.
	Quorum = dsm.PolicyQuorum
	// RC is lazy release consistency: every resident copy is writable,
	// writes are diffed against a twin and pushed to the page's home at
	// release time (V, SetEvent, Barrier), and acquires (P, WaitEvent,
	// Barrier) pull the intervals the releaser's vector timestamp
	// implies. The only policy whose memory model is weaker than
	// sequential consistency: unsynchronized reads may be stale.
	RC = dsm.PolicyRC
)

// Directory schemes (§3.1: how page managers are located).
const (
	// DirFixed distributes fixed managers across hosts (the paper's
	// choice, and the default).
	DirFixed = dsm.DirFixed
	// DirCentral places every page's manager on host 0.
	DirCentral = dsm.DirCentral
	// DirDynamic is Li & Hudak's dynamic distributed manager: no
	// managers, probable-owner hint chains with path compression.
	DirDynamic = dsm.DirDynamic
)

// Page size algorithm selectors (§2.4 of the paper).
const (
	// LargestPageSize uses 8 KB DSM pages (the Sun's VM page size).
	LargestPageSize = 8192
	// SmallestPageSize uses 1 KB DSM pages (the Firefly's VM page size).
	SmallestPageSize = 1024
)

// Re-exported identifier types.
type (
	// HostID identifies a host in the cluster (dense, from 0).
	HostID = cluster.HostID
	// Addr is a shared-memory address (offset into the DSM space).
	Addr = dsm.Addr
	// TypeID identifies a registered shared-memory data type.
	TypeID = conv.TypeID
	// FuncID identifies a registered thread entry point.
	FuncID = threads.FuncID
	// HostSpec describes one machine: its Kind and CPU count.
	HostSpec = cluster.HostSpec
	// Kind is a machine kind (Sun or Firefly).
	Kind = arch.Kind
	// Policy is a coherence algorithm selector.
	Policy = dsm.Policy
	// Directory is a manager-placement scheme selector.
	Directory = dsm.Directory
	// Field is one field of a compound shared-memory type.
	Field = conv.Field
	// SharedPtr marks a DSM-pointer field in a Go struct registered
	// with RegisterGoStruct.
	SharedPtr = conv.Ptr
	// DSMStats are per-host (or aggregated) DSM counters.
	DSMStats = dsm.Stats
	// NetStats are network-level counters.
	NetStats = netsim.Stats
	// Topology is a switched multi-segment network shape; nil (the
	// default) is the paper's single shared bus.
	Topology = netsim.Topology
	// SegmentSpec describes one shared-medium segment of a Topology.
	SegmentSpec = netsim.SegmentSpec
	// LinkSpec describes one inter-segment link of a Topology.
	LinkSpec = netsim.LinkSpec
	// CostModel is the calibrated virtual-time cost model.
	CostModel = model.Params
)

// Config describes a cluster to build.
type Config struct {
	// Hosts lists the machines; host 0 hosts the allocation manager.
	Hosts []HostSpec
	// PageSize selects the DSM page size algorithm: LargestPageSize
	// (default) or SmallestPageSize.
	PageSize int
	// SpaceSize is the shared address space size in bytes (default 4 MiB).
	SpaceSize int
	// Seed makes runs reproducible; equal seeds give identical runs.
	Seed int64
	// DisableConversion turns off data conversion (ablation only —
	// heterogeneous clusters then compute garbage, demonstrably).
	DisableConversion bool
	// PreferSameKindSource serves read faults from a same-type holder
	// when possible, avoiding conversions (§2.3's optimization).
	PreferSameKindSource bool
	// CentralManager puts every page's manager on host 0 instead of
	// distributing managers (ablation of the paper's design). Kept as
	// the boolean shorthand for DirectoryScheme: DirCentral.
	CentralManager bool
	// DirectoryScheme selects how page owners are located: DirFixed
	// (default), DirCentral, or DirDynamic (§3.1's ablation axis).
	DirectoryScheme Directory
	// Policy selects the coherence algorithm: MRSW (default), Migration
	// or Central — the "multiple DSM packages" §2.1 argues a user-level
	// implementation makes easy to provide.
	Policy Policy
	// UnicastInvalidate replaces the paper's broadcast multicast
	// invalidation (§2.2) with per-member calls (ablation).
	UnicastInvalidate bool
	// DropRate injects network frame loss (0 gives a reliable wire).
	DropRate float64
	// Net selects the network shape: nil is the paper's single shared
	// bus; a multi-segment Topology places hosts on switched segments
	// joined by profiled links (netsim.SwitchedStar builds the common
	// star shape). A one-segment Topology is bit-identical to the bus.
	Net *Topology
	// Model overrides the calibrated cost model (nil uses the default
	// fitted to the paper's Tables 1–3).
	Model *CostModel
}

// Cluster is a simulated Mermaid system.
type Cluster struct {
	c      *cluster.Cluster
	nextFn FuncID
}

// SwitchedStar builds the standard scaled topology: `segments` leaf
// segments of `hostsPerSegment` hosts each, star-linked through
// segment 0, every profile inheriting the cost model.
func SwitchedStar(segments, hostsPerSegment int) *Topology {
	return netsim.SwitchedStar(segments, hostsPerSegment)
}

// New builds a cluster. Register thread functions, compound types, and
// synchronization primitives before the first Run.
func New(cfg Config) (*Cluster, error) {
	inner, err := cluster.New(cluster.Config{
		Hosts:                cfg.Hosts,
		PageSize:             cfg.PageSize,
		SpaceSize:            cfg.SpaceSize,
		Seed:                 cfg.Seed,
		DisableConversion:    cfg.DisableConversion,
		PreferSameKindSource: cfg.PreferSameKindSource,
		CentralManager:       cfg.CentralManager,
		Directory:            cfg.DirectoryScheme,
		Policy:               cfg.Policy,
		UnicastInvalidate:    cfg.UnicastInvalidate,
		DropRate:             cfg.DropRate,
		Topology:             cfg.Net,
		Params:               cfg.Model,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{c: inner, nextFn: 1}, nil
}

// Hosts returns the number of hosts.
func (c *Cluster) Hosts() int { return len(c.c.Hosts) }

// KindOf returns the machine kind of a host.
func (c *Cluster) KindOf(h HostID) Kind { return c.c.Hosts[h].Arch.Kind }

// Model returns the active cost model.
func (c *Cluster) Model() *CostModel { return c.c.Params }

// RegisterStruct registers a compound shared-memory type from an
// ordered field list; the conversion routine is composed from the
// fields' routines, as §2.3 prescribes.
func (c *Cluster) RegisterStruct(name string, fields []Field) (TypeID, error) {
	return c.c.Registry.RegisterStruct(name, fields)
}

// RegisterGoStruct derives a compound type's field list — and so its
// conversion routine — from a Go struct definition, the library's
// analogue of the automatic routine generation §5 reports as work in
// progress. Supported field types: int8/16/32, uint8/16/32, float32/64,
// conv.Ptr (as mermaid.SharedPtr), fixed arrays, nested structs.
func (c *Cluster) RegisterGoStruct(t reflect.Type) (TypeID, error) {
	return c.c.Registry.RegisterGoStruct(t)
}

// MustRegisterFunc registers a thread entry point and returns its ID.
func (c *Cluster) MustRegisterFunc(fn func(e *Env, args []uint32)) FuncID {
	id := c.nextFn
	c.nextFn++
	c.c.Funcs.MustRegister(id, func(t *threads.Thread, args []uint32) {
		fn(&Env{c: c, p: t.P, host: c.c.Hosts[t.Host()], thread: t}, args)
	})
	return id
}

// DefineSemaphore declares a distributed semaphore (P/V) with its
// manager host and initial count.
func (c *Cluster) DefineSemaphore(id uint32, manager HostID, initial int) {
	c.c.DefineSemaphore(id, manager, initial)
}

// DefineEvent declares a distributed event with its manager host.
func (c *Cluster) DefineEvent(id uint32, manager HostID) {
	c.c.DefineEvent(id, manager)
}

// DefineBarrier declares a distributed barrier for n participants.
func (c *Cluster) DefineBarrier(id uint32, manager HostID, n int) {
	c.c.DefineBarrier(id, manager, n)
}

// Run executes main as a thread on the given host, drives the
// simulation until it returns, and reports the elapsed virtual time.
func (c *Cluster) Run(host HostID, main func(e *Env)) time.Duration {
	return c.c.Run(host, func(p *sim.Proc, h *cluster.Host) {
		main(&Env{c: c, p: p, host: h})
	})
}

// StatsOf returns one host's DSM counters.
func (c *Cluster) StatsOf(h HostID) DSMStats { return c.c.Hosts[h].DSM.Stats() }

// TotalStats aggregates DSM counters across all hosts.
func (c *Cluster) TotalStats() DSMStats { return c.c.TotalDSMStats() }

// NetStats returns the network counters.
func (c *Cluster) NetStats() NetStats { return c.c.Net.Stats() }

// Env is a running thread's view of the system: typed shared memory,
// thread management, synchronization, and virtual CPU time.
type Env struct {
	c      *Cluster
	p      *sim.Proc
	host   *cluster.Host
	thread *threads.Thread
}

// Host returns the host this thread runs on.
func (e *Env) Host() HostID { return e.host.ID }

// Kind returns the machine kind of this thread's host.
func (e *Env) Kind() Kind { return e.host.Arch.Kind }

// Now returns the current virtual time since simulation start.
func (e *Env) Now() time.Duration { return time.Duration(e.p.Now()) }

// Compute charges d of Firefly-baseline CPU work on one of the host's
// processors (scaled by the host's speed factor).
func (e *Env) Compute(d time.Duration) {
	if e.thread != nil {
		e.thread.Compute(d)
		return
	}
	// The main function runs outside the thread package; model its
	// compute the same way using the host CPU pool via a transient
	// sleep scaled by the host factor (master threads in the paper's
	// applications coordinate rather than compute).
	e.p.Sleep(e.c.c.Params.Scale(e.host.Arch.Kind, d))
}

// Alloc reserves count elements of the given type in shared memory; the
// typed allocator guarantees a page holds one type only (§2.3).
func (e *Env) Alloc(t TypeID, count int) (Addr, error) {
	return e.host.DSM.Alloc(e.p, t, count)
}

// MustAlloc is Alloc, panicking on failure.
func (e *Env) MustAlloc(t TypeID, count int) Addr {
	a, err := e.Alloc(t, count)
	if err != nil {
		panic(fmt.Sprintf("mermaid: alloc: %v", err))
	}
	return a
}

// ReadBytes copies raw bytes from Char pages.
func (e *Env) ReadBytes(addr Addr, buf []byte) { e.host.DSM.ReadBytes(e.p, addr, buf) }

// WriteBytes stores raw bytes to Char pages.
func (e *Env) WriteBytes(addr Addr, data []byte) { e.host.DSM.WriteBytes(e.p, addr, data) }

// ReadInt32 loads one int32.
func (e *Env) ReadInt32(addr Addr) int32 { return e.host.DSM.ReadInt32(e.p, addr) }

// WriteInt32 stores one int32.
func (e *Env) WriteInt32(addr Addr, v int32) { e.host.DSM.WriteInt32(e.p, addr, v) }

// ReadInt32s loads consecutive int32 elements.
func (e *Env) ReadInt32s(addr Addr, dst []int32) { e.host.DSM.ReadInt32s(e.p, addr, dst) }

// WriteInt32s stores consecutive int32 elements.
func (e *Env) WriteInt32s(addr Addr, src []int32) { e.host.DSM.WriteInt32s(e.p, addr, src) }

// ReadInt16s loads consecutive int16 elements.
func (e *Env) ReadInt16s(addr Addr, dst []int16) { e.host.DSM.ReadInt16s(e.p, addr, dst) }

// WriteInt16s stores consecutive int16 elements.
func (e *Env) WriteInt16s(addr Addr, src []int16) { e.host.DSM.WriteInt16s(e.p, addr, src) }

// ReadFloat32s loads consecutive float32 elements.
func (e *Env) ReadFloat32s(addr Addr, dst []float32) { e.host.DSM.ReadFloat32s(e.p, addr, dst) }

// WriteFloat32s stores consecutive float32 elements.
func (e *Env) WriteFloat32s(addr Addr, src []float32) { e.host.DSM.WriteFloat32s(e.p, addr, src) }

// ReadFloat64s loads consecutive float64 elements.
func (e *Env) ReadFloat64s(addr Addr, dst []float64) { e.host.DSM.ReadFloat64s(e.p, addr, dst) }

// WriteFloat64s stores consecutive float64 elements.
func (e *Env) WriteFloat64s(addr Addr, src []float64) { e.host.DSM.WriteFloat64s(e.p, addr, src) }

// ReadPointer loads a shared-memory pointer; ok is false for null.
func (e *Env) ReadPointer(addr Addr) (Addr, bool) { return e.host.DSM.ReadPointer(e.p, addr) }

// WritePointer stores a shared-memory pointer (ok=false stores null).
func (e *Env) WritePointer(addr Addr, target Addr, ok bool) {
	e.host.DSM.WritePointer(e.p, addr, target, ok)
}

// AtomicSwapInt32 atomically exchanges a shared int32, returning the
// old value. Building locks this way ping-pongs whole pages between
// hosts (§2.2) — prefer the semaphores; this exists to demonstrate why.
func (e *Env) AtomicSwapInt32(addr Addr, v int32) int32 {
	return e.host.DSM.AtomicSwapInt32(e.p, addr, v)
}

// ReadStruct copies raw native bytes of a registered compound type.
func (e *Env) ReadStruct(addr Addr, t TypeID, buf []byte) {
	e.host.DSM.ReadStruct(e.p, addr, t, buf)
}

// WriteStruct stores raw native bytes of a registered compound type.
func (e *Env) WriteStruct(addr Addr, t TypeID, data []byte) {
	e.host.DSM.WriteStruct(e.p, addr, t, data)
}

// MigrateTo moves the calling thread to another host (§2.2: threads may
// be created in an application and later moved to other hosts). After
// it returns, computation, page faults and synchronization all happen
// from the destination host. Only worker threads migrate; the main
// function cannot.
func (e *Env) MigrateTo(host HostID) error {
	if e.thread == nil {
		return fmt.Errorf("mermaid: the main function cannot migrate")
	}
	if err := e.thread.MigrateTo(host); err != nil {
		return err
	}
	e.host = e.c.c.Hosts[host]
	return nil
}

// Field codecs: structs read with ReadStruct arrive as raw bytes in
// this host's native representation; these helpers decode and encode
// individual fields of such buffers (big-endian IEEE on a Sun,
// little-endian VAX floats on a Firefly).

// Int16At decodes an int16 field at off in a native struct buffer.
func (e *Env) Int16At(buf []byte, off int) int16 { return conv.GetInt16(e.host.Arch, buf[off:]) }

// PutInt16At encodes an int16 field at off in a native struct buffer.
func (e *Env) PutInt16At(buf []byte, off int, v int16) { conv.PutInt16(e.host.Arch, buf[off:], v) }

// Int32At decodes an int32 field at off in a native struct buffer.
func (e *Env) Int32At(buf []byte, off int) int32 { return conv.GetInt32(e.host.Arch, buf[off:]) }

// PutInt32At encodes an int32 field at off in a native struct buffer.
func (e *Env) PutInt32At(buf []byte, off int, v int32) { conv.PutInt32(e.host.Arch, buf[off:], v) }

// Float32At decodes a float32 field at off in a native struct buffer.
func (e *Env) Float32At(buf []byte, off int) float32 { return conv.GetFloat32(e.host.Arch, buf[off:]) }

// PutFloat32At encodes a float32 field at off in a native struct buffer.
func (e *Env) PutFloat32At(buf []byte, off int, v float32) {
	conv.PutFloat32(e.host.Arch, buf[off:], v)
}

// Float64At decodes a float64 field at off in a native struct buffer.
func (e *Env) Float64At(buf []byte, off int) float64 { return conv.GetFloat64(e.host.Arch, buf[off:]) }

// PutFloat64At encodes a float64 field at off in a native struct buffer.
func (e *Env) PutFloat64At(buf []byte, off int, v float64) {
	conv.PutFloat64(e.host.Arch, buf[off:], v)
}

// PointerAt decodes a shared-memory pointer field; ok is false for null.
func (e *Env) PointerAt(buf []byte, off int) (Addr, bool) {
	raw := conv.GetPointer(e.host.Arch, buf[off:])
	if raw == 0 {
		return 0, false
	}
	return Addr(raw - e.host.DSM.Base()), true
}

// PutPointerAt encodes a shared-memory pointer field (ok=false: null).
func (e *Env) PutPointerAt(buf []byte, off int, target Addr, ok bool) {
	raw := uint32(0)
	if ok {
		raw = e.host.DSM.Base() + uint32(target)
	}
	conv.PutPointer(e.host.Arch, buf[off:], raw)
}

// CreateThread starts a registered function as a new thread on the
// given host (local or remote creation, §2.2).
func (e *Env) CreateThread(host HostID, fn FuncID, args ...uint32) (*ThreadHandle, error) {
	h, err := e.host.Threads.Create(e.p, host, fn, args)
	if err != nil {
		return nil, err
	}
	return &ThreadHandle{h: h, p: e.p}, nil
}

// P performs the semaphore P (acquire) operation. Under the RC policy
// every P is an acquire: it merges the vector timestamp riding the
// grant and pulls the page updates it implies.
func (e *Env) P(sem uint32) { e.host.Sync.P(e.p, sem) }

// V performs the semaphore V (release) operation. Under the RC policy
// every V is a release: it pushes the current interval's page diffs to
// their homes and stamps the semaphore with this host's timestamp.
func (e *Env) V(sem uint32) { e.host.Sync.V(e.p, sem) }

// Acquire is the RC acquire operation, spelled as itself: it takes the
// semaphore as a lock entry. Identical to P; the name documents intent
// at RC call sites (release-consistent code reads Acquire/Release even
// though every sync primitive already carries the payloads).
func (e *Env) Acquire(sem uint32) { e.host.Sync.P(e.p, sem) }

// Release is the RC release operation, spelled as itself. Identical to
// V: it closes the current interval and publishes its writes.
func (e *Env) Release(sem uint32) { e.host.Sync.V(e.p, sem) }

// WaitEvent blocks until the event is set.
func (e *Env) WaitEvent(ev uint32) { e.host.Sync.EventWait(e.p, ev) }

// SetEvent sets the event, releasing all waiters.
func (e *Env) SetEvent(ev uint32) { e.host.Sync.EventSet(e.p, ev) }

// Barrier blocks until all participants have arrived.
func (e *Env) Barrier(b uint32) { e.host.Sync.BarrierArrive(e.p, b) }

// ThreadHandle joins a created thread.
type ThreadHandle struct {
	h *threads.Handle
	p *sim.Proc
}

// Join blocks until the thread has finished.
func (t *ThreadHandle) Join() { t.h.Join(t.p) }
