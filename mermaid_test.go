package mermaid

import (
	"testing"
	"time"
)

func twoKindCluster(t *testing.T, opts func(*Config)) *Cluster {
	t.Helper()
	cfg := Config{
		Hosts: []HostSpec{
			{Kind: Sun},
			{Kind: Firefly, CPUs: 4},
			{Kind: Firefly, CPUs: 4},
		},
		Seed: 1,
	}
	if opts != nil {
		opts(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestQuickstartPattern(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		addr := Addr(args[0])
		v := e.ReadInt32(addr)
		e.Compute(time.Millisecond)
		e.WriteInt32(addr, v*2)
		e.V(1)
	})
	var got int32
	elapsed := c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 1)
		e.WriteInt32(addr, 21)
		if _, err := e.CreateThread(1, worker, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		got = e.ReadInt32(addr)
	})
	if got != 42 {
		t.Fatalf("got %d, want 42 (value corrupted crossing architectures?)", got)
	}
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() time.Duration {
		c := twoKindCluster(t, nil)
		c.DefineSemaphore(1, 0, 0)
		worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
			buf := make([]int32, 512)
			e.ReadInt32s(Addr(args[0]), buf)
			e.Compute(50 * time.Millisecond)
			e.WriteInt32s(Addr(args[0]), buf)
			e.V(1)
		})
		return c.Run(0, func(e *Env) {
			addr := e.MustAlloc(Int32, 512)
			e.WriteInt32s(addr, make([]int32, 512))
			for h := HostID(1); h <= 2; h++ {
				if _, err := e.CreateThread(h, worker, uint32(addr)); err != nil {
					t.Error(err)
					return
				}
			}
			e.P(1)
			e.P(1)
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical configs ran in %v and %v", a, b)
	}
}

func TestJoinHandle(t *testing.T) {
	c := twoKindCluster(t, nil)
	done := false
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		e.Compute(5 * time.Millisecond)
		done = true
	})
	c.Run(0, func(e *Env) {
		h, err := e.CreateThread(2, worker)
		if err != nil {
			t.Error(err)
			return
		}
		h.Join()
		if !done {
			t.Error("join returned before the thread finished")
		}
	})
}

func TestEventsAndBarriers(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineEvent(10, 1)
	c.DefineBarrier(11, 0, 3)
	order := make([]int, 0, 6)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		e.WaitEvent(10)
		order = append(order, int(args[0]))
		e.Barrier(11)
		order = append(order, 10+int(args[0]))
	})
	c.Run(0, func(e *Env) {
		h1, _ := e.CreateThread(1, worker, 1)
		h2, _ := e.CreateThread(2, worker, 2)
		e.Compute(20 * time.Millisecond)
		e.SetEvent(10)
		e.Barrier(11)
		h1.Join()
		h2.Join()
	})
	if len(order) != 4 {
		t.Fatalf("order %v, want 4 entries", order)
	}
	// Both pre-barrier entries must precede both post-barrier entries.
	if order[0] >= 10 || order[1] >= 10 || order[2] < 10 || order[3] < 10 {
		t.Fatalf("barrier did not separate phases: %v", order)
	}
}

func TestRegisterStructAndAccess(t *testing.T) {
	c := twoKindCluster(t, nil)
	rec, err := c.RegisterStruct("pair", []Field{
		{Type: Int32, Count: 1},
		{Type: Float32, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.DefineSemaphore(1, 0, 0)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		// Touch the record on the Firefly so it migrates and converts.
		buf := make([]byte, 8)
		e.ReadStruct(Addr(args[0]), rec, buf)
		e.WriteStruct(Addr(args[0]), rec, buf)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(rec, 1)
		buf := make([]byte, 8)
		// Sun-native layout: big-endian int, big-endian IEEE float.
		buf[3] = 99 // int32 = 99
		e.WriteStruct(addr, rec, buf)
		if _, err := e.CreateThread(1, worker, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
		got := make([]byte, 8)
		e.ReadStruct(addr, rec, got)
		if got[3] != 99 {
			t.Errorf("record int corrupted after round trip: % x", got)
		}
	})
}

func TestDisableConversionAblation(t *testing.T) {
	c := twoKindCluster(t, func(cfg *Config) { cfg.DisableConversion = true })
	c.DefineSemaphore(1, 0, 0)
	var seen int32
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		seen = e.ReadInt32(Addr(args[0]))
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 8)
		e.WriteInt32(addr, 0x01020304)
		if _, err := e.CreateThread(1, worker, uint32(addr)); err != nil {
			t.Error(err)
			return
		}
		e.P(1)
	})
	if seen == 0x01020304 {
		t.Fatal("value survived with conversion disabled; ablation not effective")
	}
}

func TestLossyNetworkStillCorrect(t *testing.T) {
	c := twoKindCluster(t, func(cfg *Config) { cfg.DropRate = 0.15 })
	c.DefineSemaphore(1, 0, 0)
	const mutex = 2
	c.DefineSemaphore(mutex, 0, 1)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		// The read-modify-write must be mutually exclusive: DSM gives
		// coherence, not atomicity, so unsynchronized increments would
		// lose updates (on the paper's system just as here).
		e.P(mutex)
		buf := make([]int32, 256)
		e.ReadInt32s(Addr(args[0]), buf)
		for i := range buf {
			buf[i]++
		}
		e.WriteInt32s(Addr(args[0]), buf)
		e.V(mutex)
		e.V(1)
	})
	var sum int64
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 256)
		vals := make([]int32, 256)
		for i := range vals {
			vals[i] = int32(i)
		}
		e.WriteInt32s(addr, vals)
		for h := HostID(1); h <= 2; h++ {
			if _, err := e.CreateThread(h, worker, uint32(addr)); err != nil {
				t.Error(err)
				return
			}
		}
		e.P(1)
		e.P(1)
		got := make([]int32, 256)
		e.ReadInt32s(addr, got)
		for _, v := range got {
			sum += int64(v)
		}
	})
	// Two full increments over 0..255 — unless a lost frame corrupted
	// state, sum = Σi + 2×256.
	want := int64(255*256/2 + 512)
	if sum != want {
		t.Fatalf("sum %d, want %d; retransmission failed to mask loss", sum, want)
	}
}

func TestStatsSurface(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		var v [1]int32
		e.ReadInt32s(Addr(args[0]), v[:])
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		addr := e.MustAlloc(Int32, 16)
		e.WriteInt32(addr, 5)
		_, _ = e.CreateThread(1, worker, uint32(addr))
		e.P(1)
	})
	if c.StatsOf(1).ReadFaults == 0 {
		t.Error("firefly recorded no read faults")
	}
	if c.TotalStats().PagesFetched == 0 {
		t.Error("no pages fetched cluster-wide")
	}
	if c.NetStats().FramesSent == 0 {
		t.Error("no frames on the network")
	}
	if c.KindOf(0) != Sun || c.KindOf(1) != Firefly {
		t.Error("KindOf wrong")
	}
	if c.Hosts() != 3 {
		t.Error("Hosts wrong")
	}
}

func TestFacadeAccessorsAllTypes(t *testing.T) {
	// Exercise every typed accessor through the facade, crossing the
	// architecture boundary each way.
	c := twoKindCluster(t, nil)
	c.DefineSemaphore(1, 0, 0)
	var bAddr, i16, f32, f64, ptr Addr
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		if e.Host() != 1 {
			t.Errorf("worker on host %d", e.Host())
		}
		buf := make([]byte, 16)
		e.ReadBytes(bAddr, buf)
		for i := range buf {
			buf[i]++
		}
		e.WriteBytes(bAddr, buf)

		s := make([]int16, 8)
		e.ReadInt16s(i16, s)
		for i := range s {
			s[i] *= 2
		}
		e.WriteInt16s(i16, s)

		f := make([]float32, 4)
		e.ReadFloat32s(f32, f)
		for i := range f {
			f[i] += 0.5
		}
		e.WriteFloat32s(f32, f)

		d := make([]float64, 4)
		e.ReadFloat64s(f64, d)
		for i := range d {
			d[i] *= -1
		}
		e.WriteFloat64s(f64, d)

		if target, ok := e.ReadPointer(ptr); !ok || target != f64 {
			t.Errorf("pointer %v ok=%v, want %v", target, ok, f64)
		}
		e.WritePointer(ptr, f32, true)
		e.V(1)
	})
	c.Run(0, func(e *Env) {
		bAddr = e.MustAlloc(Char, 16)
		i16 = e.MustAlloc(Int16, 8)
		f32 = e.MustAlloc(Float32, 4)
		f64 = e.MustAlloc(Float64, 4)
		ptr = e.MustAlloc(Pointer, 1)

		e.WriteBytes(bAddr, []byte("0123456789abcdef"))
		e.WriteInt16s(i16, []int16{1, -2, 3, -4, 5, -6, 7, -8})
		e.WriteFloat32s(f32, []float32{1, 2, 3, 4})
		e.WriteFloat64s(f64, []float64{1.5, -2.5, 3.5, -4.5})
		e.WritePointer(ptr, f64, true)

		if _, err := e.CreateThread(1, worker); err != nil {
			t.Error(err)
			return
		}
		e.P(1)

		buf := make([]byte, 16)
		e.ReadBytes(bAddr, buf)
		if string(buf) != "123456789:bcdefg" {
			t.Errorf("bytes %q", buf)
		}
		s := make([]int16, 8)
		e.ReadInt16s(i16, s)
		if s[0] != 2 || s[7] != -16 {
			t.Errorf("shorts %v", s)
		}
		f := make([]float32, 4)
		e.ReadFloat32s(f32, f)
		if f[0] != 1.5 || f[3] != 4.5 {
			t.Errorf("floats %v", f)
		}
		d := make([]float64, 4)
		e.ReadFloat64s(f64, d)
		if d[0] != -1.5 || d[3] != 4.5 {
			t.Errorf("doubles %v", d)
		}
		if target, ok := e.ReadPointer(ptr); !ok || target != f32 {
			t.Errorf("pointer now %v ok=%v, want %v", target, ok, f32)
		}
		if e.Host() != 0 || e.Now() <= 0 {
			t.Error("Host/Now wrong")
		}
	})
	if c.Model().MACCost <= 0 {
		t.Error("Model accessor broken")
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Hosts: []HostSpec{{Kind: Sun, CPUs: 3}}}); err == nil {
		t.Error("3-CPU Sun accepted")
	}
}

func TestClusterEventAndBarrierDefinitions(t *testing.T) {
	c := twoKindCluster(t, nil)
	c.DefineEvent(30, 1)
	c.DefineBarrier(31, 2, 2)
	released := 0
	worker := c.MustRegisterFunc(func(e *Env, args []uint32) {
		e.WaitEvent(30)
		e.Barrier(31)
		released++
	})
	c.Run(0, func(e *Env) {
		h1, _ := e.CreateThread(1, worker)
		h2, _ := e.CreateThread(2, worker)
		e.Compute(5 * time.Millisecond)
		e.SetEvent(30)
		h1.Join()
		h2.Join()
	})
	if released != 2 {
		t.Fatalf("released %d, want 2", released)
	}
}
