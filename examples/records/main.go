// Automatically generated conversion routines (§5 of the paper reports
// this as work in progress — "automatic generation of the conversion
// routines at compile time"): the field list, size, and conversion
// routine of a compound shared-memory type are derived from a Go struct
// declaration, then records written on the big-endian IEEE Sun are read
// on the little-endian VAX-float Firefly through the converted layout.
//
//	go run ./examples/records
package main

import (
	"fmt"
	"log"
	"reflect"

	mermaid "repro"
)

// Star is the application's record type: supported field kinds only
// (fixed sizes, same layout on every host, as §2.3 requires).
type Star struct {
	ID        int32
	Position  [3]float32
	Magnitude float64
	Name      [8]int8
}

// Field offsets within the 32-byte record.
const (
	offID        = 0
	offPosition  = 4
	offMagnitude = 16
	offName      = 24
	recSize      = 32
)

const (
	semDone = 1
	stars   = 4
)

func main() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 2},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.DefineSemaphore(semDone, 0, 0)

	starType, err := c.RegisterGoStruct(reflect.TypeOf(Star{}))
	if err != nil {
		log.Fatal(err)
	}

	var tableAddr mermaid.Addr

	// The Firefly decodes every field through its own representation
	// (little-endian integers, VAX floats) after the page converted.
	sum := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		buf := make([]byte, stars*recSize)
		e.ReadStruct(tableAddr, starType, buf)
		var total float64
		for i := 0; i < stars; i++ {
			rec := buf[i*recSize:]
			id := e.Int32At(rec, offID)
			if id != int32(i+1) {
				log.Fatalf("record %d id = %d after conversion", i, id)
			}
			x := e.Float32At(rec, offPosition)
			if x != float32(i) {
				log.Fatalf("record %d x = %v", i, x)
			}
			name := string(rec[offName : offName+8])
			if name != fmt.Sprintf("star-%03d", i+1) {
				log.Fatalf("record %d name %q", i, name)
			}
			total += e.Float64At(rec, offMagnitude)
		}
		e.WriteFloat64s(mermaid.Addr(args[0]), []float64{total})
		e.V(semDone)
	})

	c.Run(0, func(e *mermaid.Env) {
		tableAddr = e.MustAlloc(starType, stars)
		out := e.MustAlloc(mermaid.Float64, 1)

		// Write the records in the Sun's native layout using the same
		// field codecs (big-endian ints, IEEE floats on this host).
		buf := make([]byte, stars*recSize)
		for i := 0; i < stars; i++ {
			rec := buf[i*recSize:]
			e.PutInt32At(rec, offID, int32(i+1))
			for j := 0; j < 3; j++ {
				e.PutFloat32At(rec, offPosition+4*j, float32(i)+0.25*float32(j))
			}
			e.PutFloat64At(rec, offMagnitude, float64(i+1)*1.5)
			copy(rec[offName:offName+8], fmt.Sprintf("star-%03d", i+1))
		}
		e.WriteStruct(tableAddr, starType, buf)

		if _, err := e.CreateThread(1, sum, uint32(out)); err != nil {
			log.Fatal(err)
		}
		e.P(semDone)

		var total [1]float64
		e.ReadFloat64s(out, total[:])
		fmt.Printf("firefly summed magnitudes of %d stars: %.1f (expected %.1f)\n",
			stars, total[0], 1.5*(1+2+3+4))
		fmt.Println("every field — int32, float32 array, IEEE→VAX double, chars —")
		fmt.Println("converted by the routine derived from the Go struct declaration.")
	})
}
