// Quickstart: a Sun master shares an integer array with a worker thread
// created remotely on a Firefly. The page migrates across the byte-order
// boundary twice — written big-endian on the Sun, read and rewritten
// little-endian on the Firefly, read back on the Sun — and arrives
// intact because the DSM converts it in flight.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	mermaid "repro"
)

const semDone = 1

func main() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},              // host 0: the workstation
			{Kind: mermaid.Firefly, CPUs: 4}, // host 1: the compute server
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.DefineSemaphore(semDone, 0, 0)

	// The worker doubles every element of a shared array. It runs on
	// the Firefly; the addresses arrive as thread arguments.
	double := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		addr, n := mermaid.Addr(args[0]), int(args[1])
		vals := make([]int32, n)
		e.ReadInt32s(addr, vals) // faults the page over from the Sun
		for i := range vals {
			vals[i] *= 2
		}
		e.Compute(time.Duration(n) * 10 * time.Microsecond)
		e.WriteInt32s(addr, vals) // takes ownership, writes VAX-side
		e.V(semDone)
	})

	elapsed := c.Run(0, func(e *mermaid.Env) {
		const n = 1000
		addr := e.MustAlloc(mermaid.Int32, n)
		vals := make([]int32, n)
		for i := range vals {
			vals[i] = int32(i)
		}
		e.WriteInt32s(addr, vals) // stored big-endian on the Sun

		if _, err := e.CreateThread(1, double, uint32(addr), n); err != nil {
			log.Fatal(err)
		}
		e.P(semDone)

		e.ReadInt32s(addr, vals) // page migrates back, converts again
		fmt.Printf("first five results: %v\n", vals[:5])
		for i, v := range vals {
			if v != int32(2*i) {
				log.Fatalf("element %d = %d, want %d — conversion failed", i, v, 2*i)
			}
		}
	})

	stats := c.TotalStats()
	fmt.Printf("virtual time: %.1f ms\n", float64(elapsed.Microseconds())/1000)
	fmt.Printf("page faults: %d read, %d write; conversions: %d\n",
		stats.ReadFaults, stats.WriteFaults, stats.Conversions)
	fmt.Println("all 1000 values correct across the Sun↔Firefly boundary")
}
