// Shared pointer structures across architectures (§2.3 of the paper):
// a linked list is built in DSM on a Sun, where the shared region starts
// at virtual address 0x10000000, and traversed on a Firefly, where it
// starts at 0x20000000. When the pointer pages migrate, the conversion
// routine rebases every stored pointer by the difference of the two base
// addresses — the offset argument the paper passes to conversion
// routines — so the list stays linked.
//
//	go run ./examples/linkedlist
package main

import (
	"fmt"
	"log"

	mermaid "repro"
)

const semDone = 1

func main() {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 2},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.DefineSemaphore(semDone, 0, 0)

	const nodes = 50
	var valueBase, nextBase, outAddr mermaid.Addr

	// The traverser walks the list on the Firefly and records the sum
	// and length it sees.
	traverse := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		head := mermaid.Addr(args[0])
		sum, count := int32(0), int32(0)
		cur, ok := head, true
		for ok {
			idx := (cur - valueBase) / 4
			sum += e.ReadInt32(cur)
			count++
			cur, ok = e.ReadPointer(nextBase + 4*idx)
		}
		e.WriteInt32(outAddr, sum)
		e.WriteInt32(outAddr+4, count)
		e.V(semDone)
	})

	c.Run(0, func(e *mermaid.Env) {
		// One type per page: values and next-pointers live in parallel
		// arrays (an idiomatic layout under Mermaid's typed allocator).
		valueBase = e.MustAlloc(mermaid.Int32, nodes)
		nextBase = e.MustAlloc(mermaid.Pointer, nodes)
		outAddr = e.MustAlloc(mermaid.Int32, 2)

		// Build the list in shuffled order so pointers genuinely jump
		// around: stride 13 is coprime with 50, so following
		// cur → cur+13 (mod nodes) visits every node exactly once.
		var want int32
		cur := 0
		for i := 0; i < nodes; i++ {
			val := int32(cur*cur + 1)
			e.WriteInt32(valueBase+mermaid.Addr(4*cur), val)
			want += val
			next := (cur + 13) % nodes
			if i == nodes-1 {
				e.WritePointer(nextBase+mermaid.Addr(4*cur), 0, false) // null
			} else {
				e.WritePointer(nextBase+mermaid.Addr(4*cur), valueBase+mermaid.Addr(4*next), true)
			}
			cur = next
		}

		if _, err := e.CreateThread(1, traverse, uint32(valueBase)); err != nil {
			log.Fatal(err)
		}
		e.P(semDone)

		sum := e.ReadInt32(outAddr)
		count := e.ReadInt32(outAddr + 4)
		fmt.Printf("firefly traversed %d nodes, sum %d (expected %d)\n", count, sum, want)
		if sum != want || count != nodes {
			log.Fatal("pointer rebasing failed")
		}
		fmt.Println("pointers rebased correctly between DSM base 0x10000000 (Sun)")
		fmt.Println("and 0x20000000 (Firefly)")
	})
}
