// Parallel matrix multiplication over heterogeneous DSM (§3.2 of the
// paper): the master on a Sun fills two integer matrices; slave threads
// on Fireflies each compute a block of result rows; the result migrates
// back to the master implicitly through shared memory.
//
//	go run ./examples/matmul [-n 128] [-threads 4] [-fireflies 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	mermaid "repro"
)

const semDone = 1

var (
	n         = flag.Int("n", 128, "matrix dimension")
	threads   = flag.Int("threads", 4, "slave threads")
	fireflies = flag.Int("fireflies", 2, "number of Firefly compute servers")
)

func main() {
	flag.Parse()
	if err := run(*n, *threads, *fireflies); err != nil {
		log.Fatal(err)
	}
}

func run(n, threads, fireflies int) error {
	hosts := []mermaid.HostSpec{{Kind: mermaid.Sun}}
	for i := 0; i < fireflies; i++ {
		hosts = append(hosts, mermaid.HostSpec{Kind: mermaid.Firefly, CPUs: 6})
	}
	c, err := mermaid.New(mermaid.Config{Hosts: hosts, Seed: 1, SpaceSize: 16 << 20})
	if err != nil {
		return err
	}
	c.DefineSemaphore(semDone, 0, 0)

	var aAddr, bAddr, cAddr mermaid.Addr
	macCost := c.Model().MACCost

	slave := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		idx, nslaves := int(args[0]), int(args[1])
		per := (n + nslaves - 1) / nslaves
		lo, hi := idx*per, min((idx+1)*per, n)

		b := make([]int32, n*n)
		e.ReadInt32s(bAddr, b) // replicate the read-shared argument
		aRow := make([]int32, n)
		cRow := make([]int32, n)
		for row := lo; row < hi; row++ {
			e.ReadInt32s(aAddr+mermaid.Addr(4*n*row), aRow)
			for j := 0; j < n; j++ {
				var sum int32
				for k := 0; k < n; k++ {
					sum += aRow[k] * b[k*n+j]
				}
				cRow[j] = sum
			}
			e.Compute(time.Duration(n*n) * macCost)
			e.WriteInt32s(cAddr+mermaid.Addr(4*n*row), cRow)
		}
		e.V(semDone)
	})

	var elapsed time.Duration
	elapsed = c.Run(0, func(e *mermaid.Env) {
		aAddr = e.MustAlloc(mermaid.Int32, n*n)
		bAddr = e.MustAlloc(mermaid.Int32, n*n)
		cAddr = e.MustAlloc(mermaid.Int32, n*n)

		a := make([]int32, n*n)
		b := make([]int32, n*n)
		for i := range a {
			a[i] = int32(i%97 - 48)
			b[i] = int32((i*7)%89 - 44)
		}
		e.WriteInt32s(aAddr, a)
		e.WriteInt32s(bAddr, b)

		for i := 0; i < threads; i++ {
			host := mermaid.HostID(1 + i%fireflies)
			if _, err := e.CreateThread(host, slave, uint32(i), uint32(threads)); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < threads; i++ {
			e.P(semDone)
		}

		// Verify one row against a local multiplication.
		got := make([]int32, n)
		e.ReadInt32s(cAddr, got)
		for j := 0; j < n; j++ {
			var want int32
			for k := 0; k < n; k++ {
				want += a[k] * b[k*n+j]
			}
			if got[j] != want {
				log.Fatalf("C[0][%d] = %d, want %d", j, got[j], want)
			}
		}
	})

	s := c.TotalStats()
	fmt.Printf("MM %d×%d with %d threads on %d Fireflies\n", n, n, threads, fireflies)
	fmt.Printf("  response time: %.1f s virtual\n", elapsed.Seconds())
	fmt.Printf("  faults: %d read / %d write; pages moved: %d; conversions: %d\n",
		s.ReadFaults, s.WriteFaults, s.PagesFetched, s.Conversions)
	fmt.Println("  row 0 verified against local multiplication")
	return nil
}
