// Coherence algorithm choice (§2.1 of the paper): the same
// producer-consumer workload under all four DSM algorithms. Mermaid's
// user-level design exists partly so "several DSM packages can be
// provided to the applications on the same system", because the right
// algorithm depends on the application's memory access behaviour.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"log"
	"time"

	mermaid "repro"
)

const (
	semDone = 1
	rounds  = 15
	polls   = 120
)

func main() {
	fmt.Println("producer-consumer under each coherence algorithm:")
	for _, pol := range []mermaid.Policy{mermaid.MRSW, mermaid.Migration, mermaid.Central, mermaid.Update} {
		elapsed, err := run(pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %6.2f s virtual\n", pol, elapsed.Seconds())
	}
	fmt.Println("\nwrite-update wins: consumers read locally forever while the")
	fmt.Println("producer's small writes are pushed to every replica.")
}

func run(pol mermaid.Policy) (time.Duration, error) {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 2},
			{Kind: mermaid.Firefly, CPUs: 2},
		},
		Seed:   1,
		Policy: pol,
	})
	if err != nil {
		return 0, err
	}
	c.DefineSemaphore(semDone, 0, 0)

	var addr mermaid.Addr
	consumer := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		for i := 0; i < polls; i++ {
			_ = e.ReadInt32(addr)
			e.Compute(2 * time.Millisecond) // process the value
		}
		e.V(semDone)
	})
	producer := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		for i := 1; i <= rounds; i++ {
			e.Compute(20 * time.Millisecond)
			e.WriteInt32(addr, int32(i))
		}
		e.V(semDone)
	})

	elapsed := c.Run(0, func(e *mermaid.Env) {
		addr = e.MustAlloc(mermaid.Int32, 16)
		e.WriteInt32(addr, 0)
		if _, err := e.CreateThread(0, producer); err != nil {
			log.Fatal(err)
		}
		for h := mermaid.HostID(1); h <= 2; h++ {
			if _, err := e.CreateThread(h, consumer); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			e.P(semDone)
		}
	})
	return elapsed, nil
}
