// PCB inspection over heterogeneous DSM (§3.2 of the paper): a Sun
// master holds two camera images of a printed circuit board in shared
// memory; checking threads on Fireflies verify a minimum-spacing design
// rule over overlapping stripes and mark violations in a shared flaw
// image. Character pages need no conversion — only the per-stripe flaw
// counters (integers) convert as they migrate back to the Sun.
//
//	go run ./examples/pcb [-threads 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	mermaid "repro"
)

const (
	semDone  = 1
	w        = 256  // board short axis (2 cm)
	h        = 1024 // board long axis (8 cm)
	minSpace = 6    // pixels: minimum legal gap between conductors
	overlap  = 8    // stripe overlap so border gaps are judged correctly
)

var threads = flag.Int("threads", 4, "checking threads over two Fireflies")

func main() {
	flag.Parse()
	if err := run(*threads); err != nil {
		log.Fatal(err)
	}
}

// generate draws horizontal conductor traces, some too close together.
func generate(seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	img := make([]byte, w*h)
	row := 4
	for row < h-8 {
		thick := 3 + rng.Intn(3)
		for y := row; y < row+thick && y < h; y++ {
			for x := 4; x < w-4; x++ {
				img[y*w+x] = 1
			}
		}
		gap := minSpace + 1 + rng.Intn(10)
		if rng.Intn(7) == 0 {
			gap = 2 + rng.Intn(minSpace-2) // violation
		}
		row += thick + gap
	}
	return img
}

// checkStripe marks rows [lo,hi) whose vertical gap to the next
// conductor is under minSpace, scanning context rows around the stripe.
func checkStripe(img, flaws []byte, lo, hi int) int {
	clo, chi := max(0, lo-overlap), min(h, hi+overlap)
	count := 0
	for x := 0; x < w; x++ {
		runStart, prev := clo, byte(0xff)
		flush := func(end int) {
			if prev == 0 && end-runStart < minSpace && runStart > clo && end < chi {
				for y := max(runStart, lo); y < min(end, hi); y++ {
					if flaws[y*w+x] == 0 {
						flaws[y*w+x] = 1
						count++
					}
				}
			}
		}
		for y := clo; y < chi; y++ {
			v := img[y*w+x]
			if v != prev {
				if prev != 0xff {
					flush(y)
				}
				prev, runStart = v, y
			}
		}
		flush(chi)
	}
	return count
}

func run(threads int) error {
	c, err := mermaid.New(mermaid.Config{
		Hosts: []mermaid.HostSpec{
			{Kind: mermaid.Sun},
			{Kind: mermaid.Firefly, CPUs: 6},
			{Kind: mermaid.Firefly, CPUs: 6},
		},
		Seed: 1,
	})
	if err != nil {
		return err
	}
	c.DefineSemaphore(semDone, 0, 0)

	var imgAddr, flawAddr, countAddr mermaid.Addr
	pixCost := c.Model().PCBPixelCost

	checker := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		idx, nslaves := int(args[0]), int(args[1])
		per := (h + nslaves - 1) / nslaves
		lo, hi := idx*per, min((idx+1)*per, h)
		clo, chi := max(0, lo-overlap), min(h, hi+overlap)

		img := make([]byte, w*h)
		e.ReadBytes(imgAddr+mermaid.Addr(clo*w), img[clo*w:chi*w])
		flaws := make([]byte, w*h)
		found := checkStripe(img, flaws, lo, hi)
		e.Compute(time.Duration(chi-clo) * time.Duration(w) * pixCost)
		e.WriteBytes(flawAddr+mermaid.Addr(lo*w), flaws[lo*w:hi*w])
		e.WriteInt32s(countAddr+mermaid.Addr(4*idx), []int32{int32(found)})
		e.V(semDone)
	})

	var total int32
	elapsed := c.Run(0, func(e *mermaid.Env) {
		imgAddr = e.MustAlloc(mermaid.Char, w*h)
		flawAddr = e.MustAlloc(mermaid.Char, w*h)
		countAddr = e.MustAlloc(mermaid.Int32, threads)
		board := generate(7)
		e.WriteBytes(imgAddr, board)

		for i := 0; i < threads; i++ {
			host := mermaid.HostID(1 + i%2)
			if _, err := e.CreateThread(host, checker, uint32(i), uint32(threads)); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < threads; i++ {
			e.P(semDone)
		}
		counts := make([]int32, threads)
		e.ReadInt32s(countAddr, counts)
		for _, v := range counts {
			total += v
		}

		// Verify against a sequential whole-board check.
		want := checkStripe(board, make([]byte, w*h), 0, h)
		if int(total) != want {
			log.Fatalf("distributed check found %d flaw pixels, sequential %d", total, want)
		}
	})

	fmt.Printf("PCB %d×%d, %d threads: %.1f s virtual, %d flaw pixels (verified)\n",
		w, h, threads, elapsed.Seconds(), total)
	s := c.TotalStats()
	fmt.Printf("faults: %d read / %d write; page conversions: %d (identity byte-swaps —\n", s.ReadFaults, s.WriteFaults, s.Conversions)
	fmt.Printf("character pages convert for free; float anomalies: %d)\n",
		s.ConvReport.NaNs+s.ConvReport.Overflows+s.ConvReport.Underflows)
	return nil
}
