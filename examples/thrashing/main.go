// Page thrashing demonstration (§3.3 of the paper): the same matrix
// multiplication run twice under the largest page size algorithm — once
// with block row assignment (MM1) and once with round-robin rows (MM2),
// storing results in small bursts so a contended 8 KB page can be
// stolen mid-row. MM2's false sharing multiplies page transfers and
// destroys the speedup.
//
//	go run ./examples/thrashing [-n 128] [-threads 6]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	mermaid "repro"
)

const semDone = 1

var (
	n       = flag.Int("n", 128, "matrix dimension (≥128: smaller matrices make MM1's blocks share pages too)")
	threads = flag.Int("threads", 6, "slave threads over three Fireflies")
)

func main() {
	flag.Parse()
	for _, roundRobin := range []bool{false, true} {
		elapsed, transfers, err := run(*n, *threads, roundRobin)
		if err != nil {
			log.Fatal(err)
		}
		name := "MM1 (block rows)  "
		if roundRobin {
			name = "MM2 (round robin) "
		}
		fmt.Printf("%s %.1f s virtual, %4d page transfers\n", name, elapsed.Seconds(), transfers)
	}
	fmt.Println("\nround-robin rows share every 8 KB result page among all")
	fmt.Println("threads: each burst of stores steals the page back — thrashing.")
}

func run(n, threads int, roundRobin bool) (time.Duration, int, error) {
	hosts := []mermaid.HostSpec{{Kind: mermaid.Sun}}
	for i := 0; i < 3; i++ {
		hosts = append(hosts, mermaid.HostSpec{Kind: mermaid.Firefly, CPUs: 6})
	}
	c, err := mermaid.New(mermaid.Config{Hosts: hosts, Seed: 1, PageSize: mermaid.LargestPageSize})
	if err != nil {
		return 0, 0, err
	}
	c.DefineSemaphore(semDone, 0, 0)

	var aAddr, cAddr mermaid.Addr
	macCost := c.Model().MACCost
	const burst = 8 // result elements stored per write

	slave := c.MustRegisterFunc(func(e *mermaid.Env, args []uint32) {
		idx, nslaves := int(args[0]), int(args[1])
		row := make([]int32, n)
		aRow := make([]int32, n)
		for r := 0; r < n; r++ {
			mine := false
			if roundRobin {
				mine = r%nslaves == idx
			} else {
				per := (n + nslaves - 1) / nslaves
				mine = r/per == idx
			}
			if !mine {
				continue
			}
			e.ReadInt32s(aAddr+mermaid.Addr(4*n*r), aRow)
			for j0 := 0; j0 < n; j0 += burst {
				j1 := min(j0+burst, n)
				for j := j0; j < j1; j++ {
					var sum int32
					for k := 0; k < n; k++ {
						sum += aRow[k] * aRow[(j+k)%n]
					}
					row[j] = sum
				}
				e.Compute(time.Duration((j1-j0)*n) * macCost)
				e.WriteInt32s(cAddr+mermaid.Addr(4*(n*r+j0)), row[j0:j1])
			}
		}
		e.V(semDone)
	})

	elapsed := c.Run(0, func(e *mermaid.Env) {
		aAddr = e.MustAlloc(mermaid.Int32, n*n)
		cAddr = e.MustAlloc(mermaid.Int32, n*n)
		a := make([]int32, n*n)
		for i := range a {
			a[i] = int32(i % 31)
		}
		e.WriteInt32s(aAddr, a)
		for i := 0; i < threads; i++ {
			host := mermaid.HostID(1 + i%3)
			if _, err := e.CreateThread(host, slave, uint32(i), uint32(threads)); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < threads; i++ {
			e.P(semDone)
		}
	})
	return elapsed, c.TotalStats().PagesFetched, nil
}
