package mc

import (
	"reflect"
	"testing"

	"repro/internal/dsm"
)

// The determinism regression suite: a run must be a pure function of
// (workload, mutation, forced choices). Anything else — map-order
// iteration, wall-clock reads, leftover state from a previous run —
// breaks replay and with it every guarantee the checker gives.

// TestDoubleRunBitIdentical executes the same forced schedule twice on
// fresh instances and requires the runs to agree on every observable:
// choices made, alternatives seen, state fingerprints, step count, and
// final virtual time.
func TestDoubleRunBitIdentical(t *testing.T) {
	for _, name := range []string{"basic", "ring", "update", "sem", "barrier", "matmul"} {
		w, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// A non-default prefix makes the test stronger than replaying the
		// quiet path: deferred deliveries shuffle the protocol work.
		forced := []int{1, 0, 1}
		var runs [2]*Result
		for i := range runs {
			res, err := execute(w, dsm.MutNone, execOpts{forced: forced, hashes: true})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			runs[i] = res
		}
		a, b := runs[0], runs[1]
		if !reflect.DeepEqual(a.Choices, b.Choices) {
			t.Errorf("%s: choices diverged:\n  %v\n  %v", name, a.Choices, b.Choices)
		}
		if !reflect.DeepEqual(a.Widths, b.Widths) {
			t.Errorf("%s: choice-point widths diverged:\n  %v\n  %v", name, a.Widths, b.Widths)
		}
		if !reflect.DeepEqual(a.Hashes, b.Hashes) {
			t.Errorf("%s: state fingerprints diverged", name)
		}
		if a.Steps != b.Steps || a.Now != b.Now || a.Outcome != b.Outcome {
			t.Errorf("%s: runs diverged: steps %d/%d, now %v/%v, outcome %s/%s",
				name, a.Steps, b.Steps, a.Now, b.Now, a.Outcome, b.Outcome)
		}
	}
}

// TestRandomWalkReproducible re-runs a seeded random walk and requires
// the identical schedule.
func TestRandomWalkReproducible(t *testing.T) {
	w, _ := Lookup("basic")
	var tokens [2]string
	for i := range tokens {
		rep, err := RunRandom(w, dsm.MutNone, RandomOpts{Runs: 20, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violating != nil {
			t.Fatalf("false positive: %s", rep)
		}
		tokens[i] = ""
		// Re-derive a digest of the whole session from the report; any
		// nondeterminism shows up as differing counters.
		tokens[i] = rep.String()
	}
	if tokens[0] != tokens[1] {
		t.Errorf("random sessions with equal seed diverged:\n  %s\n  %s", tokens[0], tokens[1])
	}
}

// TestDFSReproducible re-runs a bounded DFS and requires identical
// aggregate counters — schedule count, pruning, steps — which can only
// hold if every individual run was identical.
func TestDFSReproducible(t *testing.T) {
	w, _ := Lookup("sem")
	var reports [2]string
	for i := range reports {
		rep, err := RunDFS(w, dsm.MutNone, DFSOpts{MaxSchedules: 400})
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep.String()
	}
	if reports[0] != reports[1] {
		t.Errorf("DFS sessions diverged:\n  %s\n  %s", reports[0], reports[1])
	}
}
