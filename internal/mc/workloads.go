package mc

// The model-checking workloads. Each is deliberately tiny — a handful
// of pages, two or three hosts, a few dozen choice points — because a
// stateless explorer pays a whole simulation run per schedule. They are
// also written to be *schedule-invariant* under the correct protocol:
// every shared location is either written at most once or protected by
// a distributed semaphore, so the oracles must stay silent on every
// explored schedule of the unmutated tree, and any noise is a real bug.

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/model"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// Distributed synchronization primitive IDs used by the workloads.
const (
	semLock  = 1
	semDone  = 2
	semStart = 10 // semStart+i starts worker i
	barMain  = 20
)

// pageInts is how many int32 elements fill one workload page exactly,
// so consecutive Allocs land on separate pages.
const pageInts = workloadPageSize / 4

// The workloads run the largest page size algorithm (8192): every
// host's native VM page maps to exactly one DSM page, so a fault never
// drags in neighboring unallocated pages via VM-page-group expansion.
const (
	workloadPageSize  = 8192
	workloadSpaceSize = 4 * 8192
)

// mcParams is the schedule-exploration cost model: every processing
// and wire cost flattened to zero, so all concurrently pending work
// ties at the same virtual instant and the order it runs in becomes a
// pure scheduling choice the Chooser controls. Under the calibrated
// model distinct costs serialize almost everything and the schedule
// space collapses to a handful of runs; correctness must hold at any
// speed, so checking at "all speeds equal" loses no generality while
// exposing every delivery/wakeup race. Timeouts and retry policy keep
// their real values — they are protocol behaviour, not speed.
func mcParams() model.Params {
	params := model.Default()
	params.ProcessJitterPct = 0
	params.BandwidthBps = 1 << 50 // wire time rounds to zero
	params.PacketLatency = 0
	zero := model.PerKind{}
	params.FaultRead = zero
	params.FaultWrite = zero
	params.MsgSetup = zero
	params.FragCost = zero
	params.CrossPenalty = 0
	params.ManagerProcess = zero
	params.OwnerProcess = zero
	params.ForwardCost = zero
	params.InvalidateProcess = zero
	params.InstallCost = zero
	params.ConvInt16 = 0
	params.ConvInt32 = 0
	params.ConvFloat32 = 0
	params.ConvFloat64 = 0
	params.ConvPointer = 0
	params.ConvByte = 0
	params.MACCost = 0
	params.ThreadCreate = zero
	params.SyncProcess = zero
	params.RemoteOpProcess = zero
	return params
}

// buildCluster assembles a small cluster for model checking: invariant
// checker attached, SC recorder wired, flattened cost model (see
// mcParams).
func buildCluster(kinds []arch.Kind, policy dsm.Policy, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	params := mcParams()
	rec := sctrace.NewRecorder()
	c, err := cluster.New(cluster.Config{
		Hosts:           hosts,
		PageSize:        workloadPageSize,
		SpaceSize:       workloadSpaceSize,
		Params:          &params,
		Seed:            1,
		Policy:          policy,
		InvariantChecks: true,
		SCTrace:         rec,
		Mutation:        mut,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, rec, nil
}

// workloads is the registry, keyed by Name.
var workloads = map[string]*Workload{}

func register(w *Workload) { workloads[w.Name] = w }

// Lookup resolves a workload by name.
func Lookup(name string) (*Workload, error) {
	w, ok := workloads[name]
	if !ok {
		return nil, fmt.Errorf("mc: unknown workload %q (have %v)", name, WorkloadNames())
	}
	return w, nil
}

// WorkloadNames lists registered workloads alphabetically.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered workload in name order.
func All() []*Workload {
	out := make([]*Workload, 0, len(workloads))
	for _, n := range WorkloadNames() {
		out = append(out, workloads[n])
	}
	return out
}

func init() {
	register(basicWorkload())
	register(matmulWorkload())
	register(ringWorkload())
	register(updateWorkload())
	register(semWorkload())
	register(barrierWorkload())
	register(crashWorkload())
	register(dynamicWorkload())
	register(quorumWorkload())
	register(rcWorkload())
}

// rcWorkload runs the lazy-release policy across a Sun and a Firefly.
// Two protected patterns share the run:
//
//   - A semaphore-locked counter (page 0), two increments per worker:
//     each release pushes the interval's diff, each acquire pulls it, so
//     a lost diff or a mis-merged twin corrupts the count — and the
//     happens-before oracle flags the stale read even on schedules
//     where the final count survives.
//   - A staged open-interval acquire (page 1): worker 1 faults the page
//     in, opens a write interval on element 0 (its twin stays live),
//     and only then acquires worker 0's released write of element 1 —
//     forcing a pull to merge into a page WITH a live twin, the one
//     path MutStaleTwinMerge corrupts (the locked counter never pulls
//     with an open interval: its writes happen after the acquire).
//
// Both patterns are fully ordered by semaphores, so the assertions are
// exact on every schedule of the unmutated protocol.
func rcWorkload() *Workload {
	const (
		semReady = 30
		semA     = 31
	)
	return &Workload{
		Name: "rc",
		Desc: "2 hosts (Sun+Firefly), lazy release consistency: locked counter + open-interval pull",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly}, dsm.PolicyRC, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(semLock, 0, 1)
			c.DefineSemaphore(semDone, 1, 0)
			c.DefineSemaphore(semReady, 0, 0)
			c.DefineSemaphore(semA, 1, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				counter, err := h0.DSM.Alloc(p, conv.Int32, pageInts) // page 0
				if err != nil {
					return err
				}
				pair, err := h0.DSM.Alloc(p, conv.Int32, pageInts) // page 1
				if err != nil {
					return err
				}
				var twinGot int32
				for w := 0; w < 2; w++ {
					w := w
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("rcw%d", w), func(p *sim.Proc) {
						for i := 0; i < 2; i++ {
							host.Sync.P(p, semLock)
							v := host.DSM.ReadInt32(p, counter)
							host.DSM.WriteInt32(p, counter, v+1)
							host.Sync.V(p, semLock)
						}
						if w == 0 {
							host.Sync.P(p, semReady)
							host.DSM.WriteInt32(p, pair+4, 7)
							host.Sync.V(p, semA)
						} else {
							host.DSM.ReadInt32(p, pair) // fault the page in first
							host.Sync.V(p, semReady)
							host.DSM.WriteInt32(p, pair, 5) // open an interval: twin live
							host.Sync.P(p, semA)            // pull worker 0's interval under the twin
							twinGot = host.DSM.ReadInt32(p, pair+4)
						}
						host.Sync.V(p, semDone)
					})
				}
				for i := 0; i < 2; i++ {
					h0.Sync.P(p, semDone)
				}
				h0.Sync.P(p, semLock) // acquire the workers' final counter intervals
				if got := h0.DSM.ReadInt32(p, counter); got != 4 {
					return fmt.Errorf("counter = %d, want 4", got)
				}
				h0.Sync.V(p, semLock)
				if twinGot != 7 {
					return fmt.Errorf("acquired read under a live twin = %d, want 7", twinGot)
				}
				if got := h0.DSM.ReadInt32(p, pair); got != 5 {
					return fmt.Errorf("open-interval write = %d, want 5", got)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// quorumWorkload runs the SC-ABD quorum policy across three hosts. Each
// operation completes at a majority (self plus one peer, first reply
// wins), so the third replica is legitimately left behind — the explorer
// branches over which peer answers first and over whether a reader runs
// before or after a straggling install lands. Correctness rests on
// quorum intersection alone: whichever majority a read assembles must
// overlap whichever majority the preceding write stored at, so the exact
// assertions hold on every schedule of the unmutated protocol. Under
// MutStaleQuorumRead a read trusts its (possibly stale) local replica
// and a schedule that parked the install exposes the old value; under
// MutSplitBrainWrite a write never leaves its host and any majority read
// that excludes the writer misses it.
func quorumWorkload() *Workload {
	return &Workload{
		Name: "quorum",
		Desc: "3 hosts, SC-ABD majority quorum: cross-host read/write visibility",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly, arch.Sun}, dsm.PolicyQuorum, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0, h1, h2 := c.Hosts[0], c.Hosts[1], c.Hosts[2]
				x, err := h0.DSM.Alloc(p, conv.Int32, pageInts)
				if err != nil {
					return err
				}
				if got := h1.DSM.ReadInt32(p, x); got != 0 {
					return fmt.Errorf("initial read = %d, want 0", got)
				}
				h1.DSM.WriteInt32(p, x, 7)
				if got := h2.DSM.ReadInt32(p, x); got != 7 {
					return fmt.Errorf("read after quorum write = %d, want 7", got)
				}
				h2.DSM.WriteInt32(p, x, 9)
				if got := h0.DSM.ReadInt32(p, x); got != 9 {
					return fmt.Errorf("read after second quorum write = %d, want 9", got)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// buildDynamicCluster is buildCluster under Li & Hudak's dynamic
// distributed manager instead of the fixed scheme.
func buildDynamicCluster(kinds []arch.Kind, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	params := mcParams()
	rec := sctrace.NewRecorder()
	c, err := cluster.New(cluster.Config{
		Hosts:           hosts,
		PageSize:        workloadPageSize,
		SpaceSize:       workloadSpaceSize,
		Params:          &params,
		Seed:            1,
		Policy:          dsm.PolicyMRSW,
		Directory:       dsm.DirDynamic,
		InvariantChecks: true,
		SCTrace:         rec,
		Mutation:        mut,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, rec, nil
}

// dynamicWorkload walks ownership through all three hosts of a dynamic-
// directory cluster so probable-owner hints go stale and requests must
// forward: after host 1 takes ownership, host 2's read still aims at
// host 0 (its initial hint) and travels the chain 0→1; host 2's write
// then upgrades in place, and host 0's final read chases 1→2. Every
// value is checked where coherence bugs would surface, and the
// invariant checker's dynamic branch audits the hint graph at each
// transition. Under MutStaleProbableOwner the relinquishing owner keeps
// its self-hint and the next forwarded request trips the self-loop
// assertion.
func dynamicWorkload() *Workload {
	return &Workload{
		Name: "dynamic",
		Desc: "3 hosts, dynamic distributed manager: ownership chain + forwarded third-party requests",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildDynamicCluster([]arch.Kind{arch.Sun, arch.Firefly, arch.Sun}, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0, h1, h2 := c.Hosts[0], c.Hosts[1], c.Hosts[2]
				x, err := h0.DSM.Alloc(p, conv.Int32, pageInts)
				if err != nil {
					return err
				}
				h1.DSM.WriteInt32(p, x, 1) // ownership 0→1
				if got := h2.DSM.ReadInt32(p, x); got != 1 {
					return fmt.Errorf("forwarded read = %d, want 1", got) // chain 0→1
				}
				h2.DSM.WriteInt32(p, x, 2) // replica upgrade: 1 invalidates and hands off
				if got := h1.DSM.ReadInt32(p, x); got != 2 {
					return fmt.Errorf("read after upgrade = %d, want 2", got)
				}
				if got := h0.DSM.ReadInt32(p, x); got != 2 {
					return fmt.Errorf("chased read = %d, want 2", got) // chain 1→2
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// buildFaultCluster is buildCluster with the failure detector running on
// every host — the crash workload needs detection and recovery, and no
// other workload pays for the heartbeat events.
func buildFaultCluster(kinds []arch.Kind, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	params := mcParams()
	rec := sctrace.NewRecorder()
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         workloadPageSize,
		SpaceSize:        workloadSpaceSize,
		Params:           &params,
		Seed:             1,
		Policy:           dsm.PolicyMRSW,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, err
	}
	return c, rec, nil
}

// crashWorkload explores crash points around an ownership transfer: a
// Firefly owner dies before, after, or *during* the handoff of its page
// to another Firefly, and the Sun manager must recover the page from
// the surviving copyset member (converting representations) so the
// final read sees the last completed write. The crash point is a
// kernel Choose — part of the recorded schedule, so the explorer
// branches over it and a violating placement replays from its token.
// The mid-transfer variant enqueues the crash as a zero-delay event that
// ties with the transfer's own events, letting the chooser slide the
// crash between any two protocol steps. Host 0 (manager and allocation
// coordinator) never crashes.
func crashWorkload() *Workload {
	return &Workload{
		Name: "crash",
		Desc: "3 hosts, owner crash before/after/during an ownership transfer + copyset recovery",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildFaultCluster([]arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(semDone, 0, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0, h1, h2 := c.Hosts[0], c.Hosts[1], c.Hosts[2]
				x, err := h0.DSM.Alloc(p, conv.Int32, pageInts) // page 0, managed by host 0
				if err != nil {
					return err
				}
				vals := []int32{11, 22, 33, 44}
				vals2 := []int32{55, 66, 77, 88}
				if err := h1.DSM.WriteInt32sE(p, x, vals); err != nil {
					return fmt.Errorf("doomed owner's write: %w", err)
				}
				var snap [4]int32
				if err := h2.DSM.ReadInt32sE(p, x, snap[:]); err != nil {
					return fmt.Errorf("survivor's replicate read: %w", err)
				}
				wrote := false
				switch c.K.Choose(3, "crash-point") {
				case 0:
					// Owner dies holding the only current copy of its
					// writes; the survivor's read replica must carry them.
					c.CrashHost(1)
				case 1:
					// Ownership moves first; the corpse is a bystander.
					if err := h2.DSM.WriteInt32sE(p, x, vals2); err != nil {
						return fmt.Errorf("transfer before crash: %w", err)
					}
					wrote = true
					c.CrashHost(1)
				case 2:
					// The crash event ties with the transfer's events at the
					// same instant: the chooser decides how far the handoff
					// gets before the owner drops dead.
					var werr error
					c.K.Spawn("transfer", func(wp *sim.Proc) {
						werr = h2.DSM.WriteInt32sE(wp, x, vals2)
						h2.Sync.V(wp, semDone)
					})
					c.K.AfterNamed("crash", 0, func() { c.CrashHost(1) })
					h0.Sync.P(p, semDone)
					if werr != nil {
						return fmt.Errorf("transfer interrupted by crash never completed: %w", werr)
					}
					wrote = true
				}
				// Let heartbeat silence cross the death threshold and the
				// recovery sweep finish.
				p.Sleep(4 * sim.Duration(1_000_000_000))
				var got [4]int32
				if err := h0.DSM.ReadInt32sE(p, x, got[:]); err != nil {
					return fmt.Errorf("read after owner crash: %w", err)
				}
				want := vals
				if wrote {
					want = vals2
				}
				for i := range want {
					if got[i] != want[i] {
						return fmt.Errorf("recovered value [%d] = %d, want %d", i, got[i], want[i])
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// basicWorkload is the CI smoke scenario: 2 hosts (one Sun, one
// Firefly — page migrations convert), 2 pages. Page 0 holds a shared
// counter incremented twice by a worker on each host under a
// distributed semaphore; page 1 holds one slot per worker, written
// once. The counter exercises upgrade grants, write transfers and
// invalidations; the cross-architecture migrations exercise
// conversion; the lock and completion semaphores exercise dsync under
// every wakeup order.
func basicWorkload() *Workload {
	return &Workload{
		Name: "basic",
		Desc: "2 hosts (Sun+Firefly), 2 pages: semaphore-locked counter + once-written slots",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly}, dsm.PolicyMRSW, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(semLock, 0, 1)
			c.DefineSemaphore(semDone, 1, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				counter, err := h0.DSM.Alloc(p, conv.Int32, pageInts) // page 0
				if err != nil {
					return err
				}
				slots, err := h0.DSM.Alloc(p, conv.Int32, pageInts) // page 1
				if err != nil {
					return err
				}
				for w := 0; w < 2; w++ {
					w := w
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
						for i := 0; i < 2; i++ {
							host.Sync.P(p, semLock)
							v := host.DSM.ReadInt32(p, counter)
							host.DSM.WriteInt32(p, counter, v+1)
							host.Sync.V(p, semLock)
						}
						host.DSM.WriteInt32(p, slots+dsm.Addr(4*w), int32(100+w))
						host.Sync.V(p, semDone)
					})
				}
				for i := 0; i < 2; i++ {
					h0.Sync.P(p, semDone)
				}
				if got := h0.DSM.ReadInt32(p, counter); got != 4 {
					return fmt.Errorf("counter = %d, want 4", got)
				}
				for w := 0; w < 2; w++ {
					if got := h0.DSM.ReadInt32(p, slots+dsm.Addr(4*w)); got != int32(100+w) {
						return fmt.Errorf("slot %d = %d, want %d", w, got, 100+w)
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// matmulWorkload is a 2×2 integer matrix multiplication with one row
// per worker host — the EXPERIMENTS.md reference scenario. Three pages
// (A, B, C); A and B are written once by the coordinator before the
// workers start, C's rows are disjoint, so the run is
// schedule-invariant while still moving three pages between three
// hosts of two architectures.
func matmulWorkload() *Workload {
	return &Workload{
		Name: "matmul",
		Desc: "3 hosts, 2×2 int matmul, one row per worker (3 pages)",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly, arch.Sun}, dsm.PolicyMRSW, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(semStart+0, 0, 0)
			c.DefineSemaphore(semStart+1, 1, 0)
			c.DefineSemaphore(semDone, 2, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				var mats [3]dsm.Addr
				for i := range mats {
					if mats[i], err = h0.DSM.Alloc(p, conv.Int32, pageInts); err != nil {
						return err
					}
				}
				a, b, cm := mats[0], mats[1], mats[2]
				h0.DSM.WriteInt32s(p, a, []int32{1, 2, 3, 4})
				h0.DSM.WriteInt32s(p, b, []int32{5, 6, 7, 8})
				for w := 0; w < 2; w++ {
					w := w
					host := c.Hosts[w+1]
					c.K.Spawn(fmt.Sprintf("row%d", w), func(p *sim.Proc) {
						host.Sync.P(p, uint32(semStart+w))
						var av, bv [4]int32
						host.DSM.ReadInt32s(p, a, av[:])
						host.DSM.ReadInt32s(p, b, bv[:])
						var row [2]int32
						for j := 0; j < 2; j++ {
							row[j] = av[2*w]*bv[j] + av[2*w+1]*bv[2+j]
						}
						host.DSM.WriteInt32s(p, cm+dsm.Addr(8*w), row[:])
						host.Sync.V(p, semDone)
					})
				}
				h0.Sync.V(p, semStart+0)
				h0.Sync.V(p, semStart+1)
				h0.Sync.P(p, semDone)
				h0.Sync.P(p, semDone)
				var got [4]int32
				h0.DSM.ReadInt32s(p, cm, got[:])
				want := [4]int32{19, 22, 43, 50}
				if got != want {
					return fmt.Errorf("C = %v, want %v", got, want)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// ringWorkload drives the three-party stale-reader scenario: host 1
// acquires a read replica, host 2 then writes the page. A manager that
// forgot to record host 1 in the copyset (MutDropCopyset) leaves its
// replica alive through host 2's write — invisible with only two hosts,
// where the reader is always the requester or the owner of the
// transfer.
func ringWorkload() *Workload {
	return &Workload{
		Name: "ring",
		Desc: "3 hosts, read-replicate then third-party write (copyset accuracy)",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Sun, arch.Sun}, dsm.PolicyMRSW, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				x, err := c.Hosts[0].DSM.Alloc(p, conv.Int32, pageInts)
				if err != nil {
					return err
				}
				c.Hosts[0].DSM.WriteInt32(p, x, 1)
				if got := c.Hosts[1].DSM.ReadInt32(p, x); got != 1 {
					return fmt.Errorf("first read = %d, want 1", got)
				}
				c.Hosts[2].DSM.WriteInt32(p, x, 2)
				if got := c.Hosts[1].DSM.ReadInt32(p, x); got != 2 {
					return fmt.Errorf("read after third-party write = %d, want 2", got)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// updateWorkload runs the write-update policy: host 1 holds a replica,
// host 0 writes through the manager's sequencer, host 1 must see the
// new value in its never-invalidated replica.
func updateWorkload() *Workload {
	return &Workload{
		Name: "update",
		Desc: "2 hosts, write-update policy: sequenced write reaches the replica",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly}, dsm.PolicyUpdate, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				x, err := c.Hosts[0].DSM.Alloc(p, conv.Int32, pageInts)
				if err != nil {
					return err
				}
				if got := c.Hosts[1].DSM.ReadInt32(p, x); got != 0 {
					return fmt.Errorf("initial read = %d, want 0", got)
				}
				c.Hosts[0].DSM.WriteInt32(p, x, 7)
				if got := c.Hosts[1].DSM.ReadInt32(p, x); got != 7 {
					return fmt.Errorf("replica read = %d, want 7", got)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// semWorkload checks distributed semaphore mutual exclusion and
// progress under adversarial wakeup orders: one worker per host, each
// entering a critical section twice. The critical-section occupancy
// check uses plain Go variables, outside DSM, so it cannot be confused
// by a DSM bug; a lost wakeup surfaces as a deadlock.
func semWorkload() *Workload {
	return &Workload{
		Name: "sem",
		Desc: "2 hosts, dsync semaphore mutual exclusion under adversarial wakeups",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly}, dsm.PolicyMRSW, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(semLock, 0, 1)
			c.DefineSemaphore(semDone, 1, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				inCS := 0
				overlaps := 0
				for w := 0; w < 2; w++ {
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("cs%d", w), func(p *sim.Proc) {
						for i := 0; i < 2; i++ {
							host.Sync.P(p, semLock)
							inCS++
							if inCS > 1 {
								overlaps++
							}
							p.Sleep(100 * sim.Duration(1000)) // dwell in the critical section
							inCS--
							host.Sync.V(p, semLock)
						}
						host.Sync.V(p, semDone)
					})
				}
				for i := 0; i < 2; i++ {
					c.Hosts[0].Sync.P(p, semDone)
				}
				if overlaps > 0 {
					return fmt.Errorf("%d critical-section overlaps — P/V mutual exclusion broken", overlaps)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}

// barrierWorkload checks the distributed barrier for lost wakeups
// under adversarial schedules: two workers on different hosts
// synchronize through two rounds. After a barrier releases a worker in
// round r, its peer must have entered round r (it may already be in
// r+1, blocked on the next barrier, but can never lag). A dropped
// release parks a worker forever and surfaces as a deadlock.
func barrierWorkload() *Workload {
	return &Workload{
		Name: "barrier",
		Desc: "2 hosts, dsync barrier, 2 rounds: no lost wakeups, no round skew",
		Build: func(mut dsm.Mutation) (*Instance, error) {
			c, rec, err := buildCluster([]arch.Kind{arch.Sun, arch.Firefly}, dsm.PolicyMRSW, mut)
			if err != nil {
				return nil, err
			}
			c.DefineBarrier(barMain, 0, 2)
			c.DefineSemaphore(semDone, 1, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				var round [2]int
				skew := 0
				for w := 0; w < 2; w++ {
					w := w
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("round%d", w), func(p *sim.Proc) {
						for r := 1; r <= 2; r++ {
							round[w] = r
							host.Sync.BarrierArrive(p, barMain)
							if round[1-w] < r {
								skew++
							}
						}
						host.Sync.V(p, semDone)
					})
				}
				for i := 0; i < 2; i++ {
					c.Hosts[0].Sync.P(p, semDone)
				}
				if skew > 0 {
					return fmt.Errorf("barrier released a worker %d time(s) before its peer arrived", skew)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Main: main}, nil
		},
	}
}
