package mc

// The mutation-kill harness: regression-proofs the checker itself. Each
// dsm.Mutation is a hand-injected protocol bug; the harness asserts the
// checker finds a violating schedule for every one of them within a
// bounded exploration. A mutation the checker cannot kill means an
// oracle or the schedule exploration has a blind spot.

import (
	"fmt"
	"strings"

	"repro/internal/dsm"
)

// killPlan assigns each mutation the cheapest workload whose schedule
// space provably contains a violating run:
//
//   - drop-copyset needs a third party: with two hosts the un-recorded
//     reader is always the next requester or the owner of the transfer,
//     so its stale replica is consumed before it can be observed. The
//     "ring" workload's host 1 keeps a replica across host 2's write.
//   - lost-ack needs a *remote* invalidation, which "basic"'s
//     lock-protected read-modify-write never sends (the only copyset
//     member is always the requester itself); "ring"'s third-party
//     write invalidates host 1's replica remotely.
//   - unsequenced-update mutates the write-update policy's sequencer,
//     so it needs the "update" workload; forget-recovery mutates the
//     copyset re-own after an owner crash, which only the "crash"
//     workload (failure detection on, a host actually dying) reaches;
//     stale-probable-owner corrupts the dynamic directory's hint update
//     on ownership handoff, which only the "dynamic" workload runs —
//     every other mutation targets the MRSW invalidate path that
//     "basic" exercises.
//   - stale-quorum-read and split-brain-write corrupt the SC-ABD
//     engine, so they need the "quorum" workload. Both are killable
//     only because quorum operations complete at the FIRST majority:
//     the third replica legitimately lags, and the explorer picks the
//     schedule where the lagging replica is the one a mutated read
//     trusts (stale-quorum-read) or where the read's majority excludes
//     the writer whose mutated write never left home (split-brain-write).
//   - lost-diff and stale-twin-merge corrupt the lazy-release engine,
//     so they need the "rc" workload. lost-diff drops the first
//     non-empty diff of a release, which every locked-counter interval
//     exercises; stale-twin-merge only misapplies a pulled diff when
//     the puller has a live twin, which the workload stages explicitly
//     (an open write interval held across an acquire). The kills come
//     from the happens-before oracle and the exact final assertions.
var killPlan = map[dsm.Mutation]string{
	dsm.MutSkipInvalidation:   "basic",
	dsm.MutDropCopyset:        "ring",
	dsm.MutStaleOwner:         "basic",
	dsm.MutUnsequencedUpdate:  "update",
	dsm.MutLostAck:            "ring",
	dsm.MutDoubleWriterGrant:  "basic",
	dsm.MutAllocOverrun:       "basic",
	dsm.MutSkipConversion:     "basic",
	dsm.MutForgetRecovery:     "crash",
	dsm.MutStaleProbableOwner: "dynamic",
	dsm.MutStaleQuorumRead:    "quorum",
	dsm.MutSplitBrainWrite:    "quorum",
	dsm.MutLostDiff:           "rc",
	dsm.MutStaleTwinMerge:     "rc",
}

// KillResult records one mutation's fate.
type KillResult struct {
	// Mutation is the injected bug; Workload the scenario hunted in.
	Mutation dsm.Mutation
	Workload string
	// Killed reports whether a violating schedule was found; Token
	// replays it and Outcome/Detail describe how it surfaced.
	Killed  bool
	Token   string
	Outcome Outcome
	Detail  string
	// Schedules counts runs executed before the kill (or the budget).
	Schedules int
}

// KillOpts bounds the per-mutation exploration.
type KillOpts struct {
	// MaxSchedules caps DFS runs per mutation (0 = 200).
	MaxSchedules int
	// MaxSteps caps events per run (0 = DefaultMaxSteps).
	MaxSteps int
	// Only, when non-empty, restricts the suite to these mutations.
	Only []dsm.Mutation
}

// RunKillSuite hunts every mutation in the plan with a bounded DFS and
// reports each one's fate, in mutation order.
func RunKillSuite(o KillOpts) ([]KillResult, error) {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 200
	}
	muts := o.Only
	if len(muts) == 0 {
		for _, m := range dsm.Mutations() {
			if m != dsm.MutNone {
				muts = append(muts, m)
			}
		}
	}
	var out []KillResult
	for _, m := range muts {
		wname, ok := killPlan[m]
		if !ok {
			return nil, fmt.Errorf("mc: no kill plan for mutation %s", m)
		}
		w, err := Lookup(wname)
		if err != nil {
			return nil, err
		}
		rep, err := RunDFS(w, m, DFSOpts{MaxSchedules: o.MaxSchedules, MaxSteps: o.MaxSteps})
		if err != nil {
			return nil, err
		}
		kr := KillResult{Mutation: m, Workload: wname, Schedules: rep.Schedules}
		if rep.Violating != nil {
			kr.Killed = true
			kr.Token = rep.Token
			kr.Outcome = rep.Violating.Outcome
			kr.Detail = rep.Violating.Detail
		}
		out = append(out, kr)
	}
	return out, nil
}

// FormatKillResults renders the suite outcome as the table the CLI and
// `make mc-deep` print.
func FormatKillResults(rs []KillResult) string {
	var b strings.Builder
	killed := 0
	for _, r := range rs {
		if r.Killed {
			killed++
			fmt.Fprintf(&b, "KILLED   %-19s workload=%-7s schedules=%-4d %s: %s\n",
				r.Mutation, r.Workload, r.Schedules, r.Outcome, r.Detail)
			fmt.Fprintf(&b, "         replay: %s\n", r.Token)
		} else {
			fmt.Fprintf(&b, "SURVIVED %-19s workload=%-7s schedules=%-4d (no violating schedule in budget)\n",
				r.Mutation, r.Workload, r.Schedules)
		}
	}
	fmt.Fprintf(&b, "%d/%d mutations killed\n", killed, len(rs))
	return b.String()
}
