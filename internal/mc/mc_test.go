package mc

import (
	"strings"
	"testing"

	"repro/internal/dsm"
)

// TestDefaultScheduleClean runs every workload once under the default
// schedule: all oracles must stay silent on the unmutated protocol.
func TestDefaultScheduleClean(t *testing.T) {
	for _, w := range All() {
		res, err := execute(w, dsm.MutNone, execOpts{})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if res.Outcome != OK {
			t.Errorf("%s: default schedule: %s: %s", w.Name, res.Outcome, res.Detail)
		}
		if res.Steps == 0 || len(res.Choices) == 0 {
			t.Errorf("%s: suspiciously trivial run: %d steps, %d choice points", w.Name, res.Steps, len(res.Choices))
		}
	}
}

// TestDFSClean explores the bounded schedule space of each workload on
// the unmutated protocol: every schedule must pass every oracle. The
// small workloads are exhausted outright (frontier 0); "basic" must
// yield at least 1000 distinct schedules within budget — the smoke
// guarantee that the chooser actually branches the space open.
func TestDFSClean(t *testing.T) {
	budget := 1500
	if testing.Short() {
		budget = 300
	}
	for _, name := range []string{"basic", "sem", "barrier", "update", "rc"} {
		w, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunDFS(w, dsm.MutNone, DFSOpts{MaxSchedules: budget})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violating != nil {
			t.Fatalf("%s: false positive on the correct protocol: %s", name, rep)
		}
		t.Logf("%s", rep)
		switch name {
		case "basic":
			if !testing.Short() && rep.Schedules < 1000 {
				t.Errorf("basic: only %d schedules explored, want >= 1000", rep.Schedules)
			}
		case "sem", "barrier", "update":
			if rep.Frontier != 0 {
				t.Errorf("%s: bounded space not exhausted: %d prefixes left", name, rep.Frontier)
			}
		}
	}
}

// TestCrashWorkloadCleanDFS explores crash placements around the
// ownership transfer on the unmutated protocol: wherever the owner
// dies — before, after, or between any two steps of the handoff —
// detection plus copyset recovery must leave every oracle silent.
func TestCrashWorkloadCleanDFS(t *testing.T) {
	budget := 120
	if testing.Short() {
		budget = 25
	}
	w, err := Lookup("crash")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDFS(w, dsm.MutNone, DFSOpts{MaxSchedules: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("false positive on the correct protocol under crash injection: %s", rep)
	}
	t.Logf("%s", rep)
}

// TestRandomClean fuzzes the unmutated "basic" workload.
func TestRandomClean(t *testing.T) {
	runs := 200
	if testing.Short() {
		runs = 30
	}
	w, _ := Lookup("basic")
	rep, err := RunRandom(w, dsm.MutNone, RandomOpts{Runs: runs, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("false positive on the correct protocol: %s", rep)
	}
	if rep.Schedules < runs/4 {
		t.Errorf("only %d distinct schedules in %d walks — chooser not randomizing?", rep.Schedules, runs)
	}
}

// TestDelayBoundedClean sweeps small perturbations of the default
// schedule on the unmutated "basic" workload.
func TestDelayBoundedClean(t *testing.T) {
	w, _ := Lookup("basic")
	rep, err := RunDelayBounded(w, dsm.MutNone, DelayOpts{MaxDelays: 2, MaxSchedules: 500})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("false positive on the correct protocol: %s", rep)
	}
	if rep.Schedules < 10 {
		t.Errorf("only %d schedules within delay budget 2", rep.Schedules)
	}
}

// TestTokenRoundTrip checks the schedule-token codec, including
// trailing-default trimming.
func TestTokenRoundTrip(t *testing.T) {
	cases := []struct {
		choices []int
		want    string
	}{
		{nil, "mc1:basic:none:-"},
		{[]int{0, 0, 0}, "mc1:basic:none:-"},
		{[]int{1, 0, 2}, "mc1:basic:none:1.0.2"},
		{[]int{0, 3, 0, 0}, "mc1:basic:none:0.3"},
	}
	for _, c := range cases {
		tok := EncodeToken("basic", dsm.MutNone, c.choices)
		if tok != c.want {
			t.Errorf("EncodeToken(%v) = %q, want %q", c.choices, tok, c.want)
		}
		name, mut, choices, err := DecodeToken(tok)
		if err != nil {
			t.Fatalf("DecodeToken(%q): %v", tok, err)
		}
		if name != "basic" || mut != dsm.MutNone {
			t.Errorf("DecodeToken(%q) = %q/%s", tok, name, mut)
		}
		retok := EncodeToken(name, mut, choices)
		if retok != tok {
			t.Errorf("round trip %q -> %q", tok, retok)
		}
	}
	for _, bad := range []string{"", "mc1:basic:none", "mc0:basic:none:-", "mc1:basic:none:1.x", "mc1:basic:none:-1", "mc1:basic:wat:-"} {
		if _, _, _, err := DecodeToken(bad); err == nil {
			t.Errorf("DecodeToken(%q) accepted", bad)
		}
	}
}

// TestKillSuite is the headline guarantee: every hand-injected protocol
// mutation is detected within its bounded exploration, and the reported
// schedule token replays to a violation of the same class. Short mode
// samples one mutation per oracle family to keep `go test -short` fast.
func TestKillSuite(t *testing.T) {
	opts := KillOpts{MaxSchedules: 200}
	if testing.Short() {
		opts.Only = []dsm.Mutation{dsm.MutSkipInvalidation, dsm.MutSkipConversion, dsm.MutUnsequencedUpdate}
	}
	rs, err := RunKillSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Killed {
			t.Errorf("mutation %s survived %d schedules on %s", r.Mutation, r.Schedules, r.Workload)
			continue
		}
		t.Logf("killed %s on %s after %d schedule(s): %s: %s", r.Mutation, r.Workload, r.Schedules, r.Outcome, r.Detail)
		rep, err := Replay(r.Token, 0)
		if err != nil {
			t.Errorf("replay %q: %v", r.Token, err)
			continue
		}
		if rep.Outcome != r.Outcome || rep.Detail != r.Detail {
			t.Errorf("replay of %q diverged: got %s (%s), want %s (%s)",
				r.Token, rep.Outcome, rep.Detail, r.Outcome, r.Detail)
		}
		if len(rep.Transcript) == 0 {
			t.Errorf("replay of %q produced no transcript", r.Token)
		}
	}
	if !testing.Short() {
		txt := FormatKillResults(rs)
		if !strings.Contains(txt, "14/14 mutations killed") {
			t.Errorf("kill summary:\n%s", txt)
		}
	}
}

// TestMutationsNotKilledOnWrongOracle guards the kill-plan reasoning:
// drop-copyset must genuinely be invisible to the 2-host "basic"
// workload (the documented reason it needs "ring"). If this starts
// failing, the analysis in killPlan is stale — update it, don't delete
// the test.
func TestDropCopysetInvisibleOnBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded exploration; skipped in short mode")
	}
	w, _ := Lookup("basic")
	rep, err := RunDFS(w, dsm.MutDropCopyset, DFSOpts{MaxSchedules: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Errorf("drop-copyset now visible on basic (%s); move its kill plan off ring", rep)
	}
}
