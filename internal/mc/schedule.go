package mc

// Replayable schedule tokens. A violation found anywhere in the
// schedule space is reported as a compact string
//
//	mc1:<workload>:<mutation>:<c0.c1.c2…>
//
// that fully determines the run: the workload and mutation select the
// program, the dot-separated integers force the index taken at each
// scheduling choice point (an empty list, spelled "-", is the default
// schedule). Feed the token to `mermaid-mc -replay=…` or the
// MERMAID_MC_SEED environment variable to reproduce the violation
// bit-identically, with a transcript of every choice point.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/dsm"
)

// tokenVersion guards against replaying tokens from an incompatible
// choice-point numbering.
const tokenVersion = "mc1"

// EncodeToken renders a replayable schedule string. Trailing zero
// choices are dropped: beyond the forced prefix a replay takes the
// default (index 0) at every choice point anyway, so the trimmed token
// reproduces the identical run — and the all-defaults schedule encodes
// as just "-".
func EncodeToken(workload string, mut dsm.Mutation, choices []int) string {
	for len(choices) > 0 && choices[len(choices)-1] == 0 {
		choices = choices[:len(choices)-1]
	}
	body := "-"
	if len(choices) > 0 {
		parts := make([]string, len(choices))
		for i, c := range choices {
			parts[i] = strconv.Itoa(c)
		}
		body = strings.Join(parts, ".")
	}
	return fmt.Sprintf("%s:%s:%s:%s", tokenVersion, workload, mut, body)
}

// DecodeToken parses a replayable schedule string.
func DecodeToken(token string) (workload string, mut dsm.Mutation, choices []int, err error) {
	parts := strings.Split(strings.TrimSpace(token), ":")
	if len(parts) != 4 {
		return "", 0, nil, fmt.Errorf("mc: malformed schedule token %q (want %s:workload:mutation:choices)", token, tokenVersion)
	}
	if parts[0] != tokenVersion {
		return "", 0, nil, fmt.Errorf("mc: schedule token version %q, this build speaks %s", parts[0], tokenVersion)
	}
	workload = parts[1]
	mut, err = dsm.ParseMutation(parts[2])
	if err != nil {
		return "", 0, nil, err
	}
	if parts[3] != "-" && parts[3] != "" {
		for _, f := range strings.Split(parts[3], ".") {
			v, convErr := strconv.Atoi(f)
			if convErr != nil || v < 0 {
				return "", 0, nil, fmt.Errorf("mc: bad choice %q in schedule token", f)
			}
			choices = append(choices, v)
		}
	}
	return workload, mut, choices, nil
}

// Replay re-executes the run a schedule token describes, collecting a
// per-choice-point transcript. The token's outcome is whatever the run
// produces — a violation token reproduces its violation.
func Replay(token string, maxSteps int) (*Result, error) {
	name, mut, choices, err := DecodeToken(token)
	if err != nil {
		return nil, err
	}
	w, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return execute(w, mut, execOpts{forced: choices, maxSteps: maxSteps, transcript: true})
}
