package mc

// Exploration strategies. All three are stateless: every probe re-runs
// the whole workload from scratch under a forced schedule prefix, so a
// strategy is just a policy for which prefixes to try next.
//
//   - DFS systematically branches at every choice point reached, with
//     optional state-fingerprint pruning of already-seen frontiers.
//   - Random walks re-run with seeded uniform choices — cheap, shallow
//     coverage of long schedules DFS would take ages to reach.
//   - Delay-bounded sweeps order schedules by how far they deviate from
//     the default (the sum of deferred-event indices), the classic
//     small-perturbation heuristic: most protocol bugs need only a few
//     out-of-order deliveries.

import (
	"fmt"
	"math/rand"

	"repro/internal/dsm"
)

// Report summarizes one exploration.
type Report struct {
	// Workload, Mutation, Strategy identify what ran.
	Workload string
	Mutation dsm.Mutation
	Strategy string
	// Schedules counts distinct schedules executed.
	Schedules int
	// Pruned counts branch extensions skipped because the state
	// fingerprint at their branching point had been seen before.
	Pruned int
	// Frontier counts prefixes still unexplored when the run stopped
	// (budget exhausted); zero means the bounded space was exhausted.
	Frontier int
	// MaxPoints is the most choice points any single run hit.
	MaxPoints int
	// TotalSteps sums dispatched events across all runs.
	TotalSteps int
	// Violating is the first violating run found, nil if none; Token
	// is its replayable schedule string.
	Violating *Result
	Token     string
}

// String renders the report as the one-line summary the CLI prints.
func (r *Report) String() string {
	s := fmt.Sprintf("workload=%s mutation=%s strategy=%s schedules=%d pruned=%d frontier=%d max-points=%d steps=%d",
		r.Workload, r.Mutation, r.Strategy, r.Schedules, r.Pruned, r.Frontier, r.MaxPoints, r.TotalSteps)
	if r.Violating == nil {
		return s + " → no violations"
	}
	return fmt.Sprintf("%s → %s: %s\n  replay: %s", s, r.Violating.Outcome, r.Violating.Detail, r.Token)
}

// DFSOpts bounds an exhaustive exploration.
type DFSOpts struct {
	// MaxSchedules caps executed runs (0 = 2000).
	MaxSchedules int
	// MaxSteps caps events per run (0 = DefaultMaxSteps).
	MaxSteps int
	// MaxDepth, when positive, only branches at the first MaxDepth
	// choice points of each run (a depth cap for CI smoke runs).
	MaxDepth int
	// NoPrune disables state-fingerprint pruning.
	NoPrune bool
}

// RunDFS explores schedules depth-first: execute a forced prefix with
// the default schedule beyond it, then branch into every untried
// alternative at every choice point at or beyond the prefix. Each
// probed prefix ends in a non-default choice, so every executed
// schedule is distinct by construction. With pruning on, branching
// points whose state fingerprint was already expanded are skipped.
func RunDFS(w *Workload, mut dsm.Mutation, o DFSOpts) (*Report, error) {
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 2000
	}
	rep := &Report{Workload: w.Name, Mutation: mut, Strategy: "dfs"}
	seen := make(map[uint64]struct{})
	stack := [][]int{nil} // LIFO: depth-first
	for len(stack) > 0 && rep.Schedules < o.MaxSchedules {
		prefix := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res, err := execute(w, mut, execOpts{forced: prefix, maxSteps: o.MaxSteps, hashes: !o.NoPrune})
		if err != nil {
			return nil, err
		}
		rep.Schedules++
		rep.TotalSteps += res.Steps
		if len(res.Choices) > rep.MaxPoints {
			rep.MaxPoints = len(res.Choices)
		}
		if res.Outcome != OK {
			rep.Violating = res
			rep.Token = EncodeToken(w.Name, mut, res.Choices)
			rep.Frontier = len(stack)
			return rep, nil
		}
		limit := len(res.Choices)
		if o.MaxDepth > 0 && limit > o.MaxDepth {
			limit = o.MaxDepth
		}
		for i := len(prefix); i < limit; i++ {
			if !o.NoPrune {
				h := res.Hashes[i]
				if _, dup := seen[h]; dup {
					rep.Pruned += res.Widths[i] - 1
					continue
				}
				seen[h] = struct{}{}
			}
			for a := res.Widths[i] - 1; a >= 1; a-- {
				ext := make([]int, i+1)
				copy(ext, res.Choices[:i])
				ext[i] = a
				stack = append(stack, ext)
			}
		}
	}
	rep.Frontier = len(stack)
	return rep, nil
}

// RandomOpts bounds a random-walk fuzzing session.
type RandomOpts struct {
	// Runs is the number of walks (0 = 500).
	Runs int
	// Seed seeds walk r with Seed+r, so a session is reproducible and
	// any single walk can be re-run — though violations are replayed
	// via their schedule token, not their seed.
	Seed int64
	// MaxSteps caps events per run (0 = DefaultMaxSteps).
	MaxSteps int
}

// RunRandom fuzzes schedules with seeded uniform choices at every
// choice point. Schedules counts distinct choice sequences observed
// (collisions are likely on workloads with few choice points).
func RunRandom(w *Workload, mut dsm.Mutation, o RandomOpts) (*Report, error) {
	if o.Runs <= 0 {
		o.Runs = 500
	}
	rep := &Report{Workload: w.Name, Mutation: mut, Strategy: "random"}
	distinct := make(map[string]struct{})
	for r := 0; r < o.Runs; r++ {
		rng := rand.New(rand.NewSource(o.Seed + int64(r)))
		res, err := execute(w, mut, execOpts{rng: rng, maxSteps: o.MaxSteps})
		if err != nil {
			return nil, err
		}
		distinct[EncodeToken(w.Name, mut, res.Choices)] = struct{}{}
		rep.TotalSteps += res.Steps
		if len(res.Choices) > rep.MaxPoints {
			rep.MaxPoints = len(res.Choices)
		}
		rep.Schedules = len(distinct)
		if res.Outcome != OK {
			rep.Violating = res
			rep.Token = EncodeToken(w.Name, mut, res.Choices)
			return rep, nil
		}
	}
	return rep, nil
}

// DelayOpts bounds a delay-bounded sweep.
type DelayOpts struct {
	// MaxDelays is the deviation budget: the sum of forced choice
	// indices (picking alternative a defers a earlier events, costing
	// a). 0 = 2.
	MaxDelays int
	// MaxSchedules caps executed runs (0 = 2000).
	MaxSchedules int
	// MaxSteps caps events per run (0 = DefaultMaxSteps).
	MaxSteps int
}

// RunDelayBounded sweeps all schedules within a deviation budget of the
// default schedule, cheapest deviations first (FIFO frontier). With
// budget d it visits exactly the schedules whose choice indices sum to
// ≤ d — the delay-bounded heuristic: most ordering bugs need only a
// couple of deferred deliveries.
func RunDelayBounded(w *Workload, mut dsm.Mutation, o DelayOpts) (*Report, error) {
	if o.MaxDelays <= 0 {
		o.MaxDelays = 2
	}
	if o.MaxSchedules <= 0 {
		o.MaxSchedules = 2000
	}
	rep := &Report{Workload: w.Name, Mutation: mut, Strategy: "delay"}
	queue := [][]int{nil} // FIFO: smallest deviation first
	for len(queue) > 0 && rep.Schedules < o.MaxSchedules {
		prefix := queue[0]
		queue = queue[1:]
		res, err := execute(w, mut, execOpts{forced: prefix, maxSteps: o.MaxSteps})
		if err != nil {
			return nil, err
		}
		rep.Schedules++
		rep.TotalSteps += res.Steps
		if len(res.Choices) > rep.MaxPoints {
			rep.MaxPoints = len(res.Choices)
		}
		if res.Outcome != OK {
			rep.Violating = res
			rep.Token = EncodeToken(w.Name, mut, res.Choices)
			rep.Frontier = len(queue)
			return rep, nil
		}
		spent := 0
		for _, c := range prefix {
			spent += c
		}
		for i := len(prefix); i < len(res.Choices); i++ {
			for a := 1; a < res.Widths[i] && spent+a <= o.MaxDelays; a++ {
				ext := make([]int, i+1)
				copy(ext, res.Choices[:i])
				ext[i] = a
				queue = append(queue, ext)
			}
		}
	}
	rep.Frontier = len(queue)
	return rep, nil
}
