// Package mc is a stateless model checker for the Mermaid DSM protocol.
//
// It runs small, fully deterministic DSM workloads inside the simulator
// (internal/sim + internal/netsim) while controlling every scheduling
// choice point through the kernel's Chooser hook: whenever more than one
// live event — a message delivery, a fault-service wakeup, a timer — is
// eligible at the current virtual instant, the chooser decides which
// runs first. A complete run is therefore a pure function of the
// sequence of choices made, so the checker explores the schedule space
// by re-running the whole workload with different forced choice
// sequences (the CHESS/dBug "stateless" approach) and replays any
// violation bit-identically from its recorded schedule.
//
// Every run is judged by the PR 1 oracles: the MRSW protocol invariant
// checker (dsm.InvariantChecker) in record mode, the offline sequential
// consistency checker (internal/sctrace) over the run's access trace,
// plus protocol panics, deadlock (event queue drained before the
// workload finished) and livelock (step budget exhausted — e.g. endless
// retransmission) detection and the workload's own final assertions.
package mc

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"repro/internal/cluster"
	"repro/internal/dsm"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// Instance is one freshly built, not-yet-run workload: a cluster with
// the invariant checker attached and an SC recorder wired in, plus the
// workload body. Each exploration run builds a new Instance.
type Instance struct {
	// C is the assembled cluster (checker attached, recorder wired).
	C *cluster.Cluster
	// Rec records the run's DSM accesses for the offline SC check.
	Rec *sctrace.Recorder
	// Main is the workload body, run as the root simulated process. It
	// returns the workload's own verdict on the final state (nil = all
	// application-level assertions passed).
	Main func(p *sim.Proc, c *cluster.Cluster) error
}

// Workload names a reproducible model-checking scenario.
type Workload struct {
	// Name is the CLI spelling and the replay-token component.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Build constructs a fresh Instance with the given protocol
	// mutation injected (dsm.MutNone for the correct protocol).
	Build func(mut dsm.Mutation) (*Instance, error)
}

// Outcome classifies one run.
type Outcome int

const (
	// OK means every oracle passed.
	OK Outcome = iota
	// InvariantViolation means the MRSW protocol invariant checker
	// tripped (stale copy, double writer, owner disagreement, …).
	InvariantViolation
	// SCViolation means the offline trace check found a read no
	// sequentially consistent witness order can explain.
	SCViolation
	// Panic means a simulated process panicked (protocol timeout,
	// unexpected state).
	Panic
	// Deadlock means the event queue drained before the workload
	// finished.
	Deadlock
	// Livelock means the step budget ran out (endless retransmission
	// keeps the queue busy forever).
	Livelock
	// AppError means the workload's own final assertions failed
	// (wrong computation result).
	AppError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case InvariantViolation:
		return "invariant-violation"
	case SCViolation:
		return "sc-violation"
	case Panic:
		return "panic"
	case Deadlock:
		return "deadlock"
	case Livelock:
		return "livelock"
	case AppError:
		return "app-error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result is the record of one executed run.
type Result struct {
	// Outcome classifies the run; Detail explains a non-OK outcome.
	Outcome Outcome
	Detail  string
	// Choices is the schedule: the index picked at each choice point.
	// Replaying the same workload+mutation with these choices forced
	// reproduces the run exactly.
	Choices []int
	// Widths is the number of alternatives at each choice point.
	Widths []int
	// Hashes is the cluster state fingerprint at each choice point
	// (only collected when the strategy prunes).
	Hashes []uint64
	// Steps is the number of kernel events dispatched.
	Steps int
	// Now is the virtual time when the run ended.
	Now sim.Time
	// Transcript lists the alternatives and pick at each choice point
	// (only collected during replay).
	Transcript []string
}

// execOpts parameterizes one run.
type execOpts struct {
	// forced is the schedule prefix to force; beyond it the chooser
	// takes the default (index 0) unless rng is set.
	forced []int
	// rng, when non-nil, picks uniformly beyond the forced prefix.
	rng *rand.Rand
	// maxSteps bounds dispatched events (livelock detection).
	maxSteps int
	// hashes collects the per-choice-point state fingerprint.
	hashes bool
	// transcript collects human-readable choice-point lines.
	transcript bool
}

// DefaultMaxSteps bounds one run's dispatched events. The largest
// healthy workload run dispatches a few thousand events; a mutation
// that livelocks the protocol (endless retransmission) exceeds any
// budget, so the exact value only affects how fast that is reported.
const DefaultMaxSteps = 200_000

// execute builds a fresh instance of the workload with the mutation
// injected and runs it under the given schedule control.
func execute(w *Workload, mut dsm.Mutation, o execOpts) (*Result, error) {
	inst, err := w.Build(mut)
	if err != nil {
		return nil, fmt.Errorf("mc: building %s: %w", w.Name, err)
	}
	c := inst.C
	k := c.K
	if c.Check == nil {
		return nil, fmt.Errorf("mc: workload %s built without the invariant checker", w.Name)
	}
	var invs []dsm.Violation
	c.Check.SetFailHandler(func(v dsm.Violation) { invs = append(invs, v) })

	ch := &runChooser{forced: o.forced, rng: o.rng, transcript: o.transcript}
	if o.hashes {
		ch.hashFn = func(n int, label func(int) string) uint64 { return stateHash(c, n, label) }
	}
	k.SetChooser(ch)

	if o.maxSteps <= 0 {
		o.maxSteps = DefaultMaxSteps
	}
	done := false
	var appErr error
	k.Spawn("mc-main", func(p *sim.Proc) {
		appErr = inst.Main(p, c)
		done = true
	})
	steps := 0
	panicMsg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicMsg = fmt.Sprint(r)
			}
		}()
		for !done && steps < o.maxSteps && k.Step() {
			steps++
		}
	}()

	res := &Result{
		Choices:    ch.choices,
		Widths:     ch.widths,
		Hashes:     ch.hashes,
		Steps:      steps,
		Now:        k.Now(),
		Transcript: ch.lines,
	}
	// The trace oracle is the policy's consistency model: the SC
	// witness checker for the sequentially consistent engines, the
	// happens-before checker under lazy release consistency.
	scViols := inst.C.Hosts[0].DSM.TraceCheck(inst.Rec.Ops())
	switch {
	case len(invs) > 0:
		res.Outcome = InvariantViolation
		res.Detail = invs[0].String()
		if len(invs) > 1 {
			res.Detail += fmt.Sprintf(" (+%d more)", len(invs)-1)
		}
	case len(scViols) > 0:
		res.Outcome = SCViolation
		res.Detail = strings.TrimSpace(sctrace.Report(scViols, 3))
	case panicMsg != "":
		res.Outcome = Panic
		res.Detail = panicMsg
	case !done && steps >= o.maxSteps:
		res.Outcome = Livelock
		res.Detail = fmt.Sprintf("step budget of %d exhausted at t=%v", o.maxSteps, k.Now())
	case !done:
		res.Outcome = Deadlock
		res.Detail = fmt.Sprintf("event queue drained; stalled: %v", k.Stalled())
	case appErr != nil:
		res.Outcome = AppError
		res.Detail = appErr.Error()
	default:
		res.Outcome = OK
	}
	// Reclaim the instance's goroutines: an exploration executes
	// thousands of runs, each spawning per-host server loops.
	k.Shutdown()
	return res, nil
}

// runChooser resolves kernel choice points from a forced prefix, then a
// fixed default (or a seeded random walk), recording everything needed
// to replay or extend the schedule.
type runChooser struct {
	forced     []int
	rng        *rand.Rand
	transcript bool

	choices []int
	widths  []int
	hashes  []uint64
	lines   []string
	hashFn  func(n int, label func(int) string) uint64
}

// Choose implements sim.Chooser.
func (c *runChooser) Choose(now sim.Time, n int, label func(i int) string) int {
	i := len(c.choices)
	pick := 0
	switch {
	case i < len(c.forced):
		pick = c.forced[i]
		if pick < 0 || pick >= n {
			// A stale token (workload changed since it was minted) may
			// force an index that no longer exists; clamping keeps the
			// run deterministic rather than crashing mid-exploration.
			pick = n - 1
		}
	case c.rng != nil:
		pick = c.rng.Intn(n)
	}
	c.choices = append(c.choices, pick)
	c.widths = append(c.widths, n)
	if c.hashFn != nil {
		c.hashes = append(c.hashes, c.hashFn(n, label))
	}
	if c.transcript {
		alts := make([]string, n)
		for j := 0; j < n; j++ {
			alts[j] = label(j)
		}
		marker := alts[pick]
		c.lines = append(c.lines, fmt.Sprintf("#%-3d t=%-12v pick %d=%s  of [%s]",
			i, now, pick, marker, strings.Join(alts, ", ")))
	}
	return pick
}

// stateHash fingerprints the cluster's protocol state at a choice
// point: every host's DSM tables and page contents, every host's
// synchronization state, the count of live pending events, and the
// labels of the eligible alternatives. Virtual time is deliberately
// excluded — two schedules reaching the same tables, page contents and
// pending work at different clock readings are equivalent for protocol
// correctness, and folding the clock in would defeat pruning entirely.
// The fingerprint is a pruning heuristic, not a soundness proof: a
// 64-bit collision or an unhashed distinction could merge states that
// differ, which bounded exploration tolerates.
func stateHash(c *cluster.Cluster, n int, label func(int) string) uint64 {
	h := fnv.New64a()
	for _, host := range c.Hosts {
		host.DSM.WriteStateHash(h)
		host.Sync.WriteStateHash(h)
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(c.K.LivePending()))
	h.Write(b[:])
	for j := 0; j < n; j++ {
		h.Write([]byte(label(j)))
		h.Write([]byte{0})
	}
	return h.Sum64()
}
