package dsm

// Li & Hudak's dynamic distributed manager (the scheme the paper's §3.1
// considered and passed over for fixed distributed managers — this file
// makes the ablation runnable). There is no manager: every host keeps a
// per-page *probable owner* hint, initially the allocation manager. A
// fault sends the request to the hint; a host that is not the owner
// forwards it one hop down its own hint chain, and the true owner
// serves the requester directly, redeeming its original request with
// the shared PageDeliver/installBody transfer path. Hints are
// compressed as requests travel: a forwarder points its hint at a write
// requester (who is about to become owner), a relinquishing owner
// points at the new owner, and a reader points at the owner that served
// it. Li & Hudak prove a request reaches the owner in at most N-1
// forwards; dynHopBound backstops that argument with a hard assertion
// the model checker can trip.
//
// The owner, not a manager, keeps the page's copyset and runs the
// invalidation round before relinquishing ownership — so the shared
// sendInvalidations/serveCopy machinery (and the mutations injected
// into it) applies unchanged.
//
// Crash recovery is lazy (there is no manager table to sweep): a
// requester whose chain dead-ends at a crashed host — a failed call, or
// a flagRetry delivery from the forwarder that saw the corpse — routes
// through a recovery coordinator (the smallest live host), which probes
// every survivor for a copy with the lock-free KindRecoverPage handler,
// points the requester at a surviving owner, rebuilds ownership from a
// read copy, or declares the page lost.

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/sim"
)

// dynPage is one host's dynamic-directory state for a page.
type dynPage struct {
	// probOwner is the probable-owner hint: the first hop of the chain
	// that leads to the true owner. Equal to the host's own ID exactly
	// when owned (absent injected bugs).
	probOwner HostID
	// owned marks this host as the page's current owner: it holds the
	// authoritative copy and the copyset, and serves requests.
	owned bool
	// copyset lists the read-replica holders (owner side only).
	copyset map[HostID]struct{}
	// lock serializes this host's transactions for the page: its own
	// fault and every incoming request queue here, which is Li's
	// one-request-at-a-time processing per node.
	lock *sim.Semaphore
	// recLock serializes recovery coordination for the page. Separate
	// from lock on purpose: the coordinator may be asked to recover a
	// page while its own fault for that page holds lock.
	recLock *sim.Semaphore
	// lost marks a page whose every copy died with crashed hosts.
	lost bool
	// confirmed/confirmArmed/confirmW let a serve transaction park until
	// the requester reports the copy installed (KindDynConfirm), and
	// confirmReq pins the confirmation to this transaction's request ID
	// so a late confirm from an earlier serve cannot satisfy it. Reads
	// need the wait so the next write's invalidation cannot reach the
	// requester mid-install and be resurrected by it (the race the fixed
	// manager's awaitConfirm prevents); writes need it to arbitrate a
	// failed deliver, where only the requester knows whether the copy
	// landed (see dynOwnerServe).
	confirmed    bool
	confirmArmed bool
	confirmReq   uint32
	confirmW     sim.Waiter
}

// dynHopBound caps a forwarding chain. Li & Hudak bound chains by N-1
// hops; exceeding 2N hops means the hint graph cycled — a protocol bug
// (or an injected stale-probable-owner mutation) worth a loud stop.
func (m *Module) dynHopBound() int { return 2 * len(m.hosts) }

// Dynamic-recovery reply codes (Args[0] of KindDynRecoverReply).
const (
	dynRecLost  = 0 // every copy died; the page is gone
	dynRecFound = 1 // Args[1] names a live owner
	dynRecRetry = 2 // coordination raced a crash; ask again
)

// dynPageFor returns (creating if needed) the dynamic state of a page.
// Fresh entries point at host 0, the allocation manager and initial
// owner of every page.
func (m *Module) dynPageFor(page PageNo) *dynPage {
	dp := m.dyn[page]
	if dp == nil {
		dp = &dynPage{
			copyset: make(map[HostID]struct{}),
			lock:    sim.NewSemaphore(m.k, 1),
			recLock: sim.NewSemaphore(m.k, 1),
		}
		m.dyn[page] = dp
	}
	return dp
}

// ProbableOwner returns this host's probable-owner hint for a page and
// whether this host currently owns it (dynamic directory only; tests
// and harnesses).
func (m *Module) ProbableOwner(page PageNo) (HostID, bool) {
	if dp := m.dyn[page]; dp != nil {
		return dp.probOwner, dp.owned
	}
	return 0, false
}

// dynamicDirectory implements Li & Hudak's dynamic distributed manager.
type dynamicDirectory struct {
	m *Module
}

func newDynamicDirectory(m *Module) *dynamicDirectory {
	m.dyn = make(map[PageNo]*dynPage)
	return &dynamicDirectory{m: m}
}

func (d *dynamicDirectory) home(page PageNo) HostID {
	panic(fmt.Sprintf("dsm: page %d has no fixed manager under the dynamic directory", page))
}

func (d *dynamicDirectory) allocOwned(page PageNo) {
	dp := d.m.dynPageFor(page)
	dp.owned = true
	dp.probOwner = d.m.id
}

// fault obtains the page by chasing the probable-owner chain. The
// page's transaction lock is held for the whole exchange, so requests
// arriving here meanwhile queue and are served once this host owns the
// page — Li's request queueing, and what keeps chains bounded.
func (d *dynamicDirectory) fault(p *sim.Proc, page PageNo, write bool) error {
	m := d.m
	dp := m.dynPageFor(page)
	dp.lock.P(p)
	defer dp.lock.V()
	for {
		m.exitIfCrashed(p)
		if m.hasAccess(page, write) {
			return nil // an incoming transfer or recovery landed it meanwhile
		}
		if dp.lost {
			return pageLostErr(page)
		}
		if dp.owned {
			// Write fault on the owner of a read-shared page: invalidate
			// the replicas and upgrade in place.
			return m.dynUpgradeLocal(p, page, dp)
		}
		target := dp.probOwner
		if target == m.id {
			panic(fmt.Sprintf("dsm: host %d faulting page %d with a self probable-owner hint while not owner", m.id, page))
		}
		kind := proto.KindDynGetPage
		if write {
			kind = proto.KindDynGetPageWrite
		}
		resp, err := m.ep.Call(p, target, &proto.Message{Kind: kind, Page: uint32(page)}) // vet:ignore lock-remote — Li transaction: every hop holds only its own host's per-page entry, and the probable-owner chain is acyclic, so the cross-host waits cannot cycle
		if err != nil {
			if m.liveness == nil {
				panic(fmt.Sprintf("dsm: host %d page %d dynamic fault: %v", m.id, page, err))
			}
			// A dead first hop, or an unanswered chase: the serving
			// transaction died in a crash, or the request cycled through
			// survivors' stale hints and was dropped. Either way the chain
			// is broken — rebuild a route through the coordinator.
			if rerr := m.dynRecover(p, page, dp); rerr != nil {
				return rerr
			}
			continue
		}
		flags := resp.Arg(0)
		if flags&flagLost != 0 {
			bufpool.Put(resp.TakeWire())
			dp.lost = true
			return pageLostErr(page)
		}
		if flags&flagRetry != 0 {
			// A forwarder saw the next hop dead: find the owner (or a
			// survivor to rebuild from) through the recovery coordinator.
			bufpool.Put(resp.TakeWire())
			if rerr := m.dynRecover(p, page, dp); rerr != nil {
				return rerr
			}
			continue
		}
		server := HostID(resp.From) // the owner that served us
		reqid := resp.Arg(1)        // our request's ID, echoed back in the confirm
		m.installBody(p, page, resp, write)
		w := uint32(0)
		if write {
			dp.owned = true
			dp.probOwner = m.id
			clear(dp.copyset)
			w = 1
		} else {
			dp.probOwner = server
		}
		// Confirm the installation so the server's transaction can close:
		// a read serve holds the page open until the copy is installed
		// (see dynAwaitConfirm), and a write serve whose deliver ack was
		// lost needs the confirm to commit the handoff instead of
		// resurrecting its stale copy.
		_, cerr := m.ep.Call(p, server, &proto.Message{
			Kind: proto.KindDynConfirm,
			Page: uint32(page),
			Args: []uint32{reqid, w},
		})
		if cerr != nil && m.liveness == nil {
			panic(fmt.Sprintf("dsm: host %d confirming page %d to owner %d: %v", m.id, page, server, cerr))
		}
		// Under liveness a failed confirm means the server just died; its
		// transaction died with it and recovery owns the page now.
		return nil
	}
}

// dynUpgradeLocal upgrades the owner's read-shared copy to writable:
// invalidate every replica, then raise the local right. The caller
// holds dp.lock.
func (m *Module) dynUpgradeLocal(p *sim.Proc, page PageNo, dp *dynPage) error {
	if err := m.sendInvalidations(p, page, dynCopysetList(dp, m.id)); err != nil {
		return err
	}
	clear(dp.copyset)
	lp := m.localPageFor(page)
	lp.access = WriteAccess
	m.stats.Upgrades++
	p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
	m.checkpoint("dyn-upgraded", page)
	return nil
}

// handleDynGetPage receives a requester's first hop: the host it
// believes to be the owner. Never answered directly — the true owner
// redeems the requester's call with a PageDeliver.
func (m *Module) handleDynGetPage(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	if m.dyn == nil {
		return // misdirected under a fixed directory; requester times out
	}
	write := req.Kind == proto.KindDynGetPageWrite
	m.dynServeOrForward(p, PageNo(req.Page), HostID(req.From), req.ReqID, write, 0)
}

// handleDynForward receives a request already in flight down the chain.
// Receipt is acknowledged immediately so a lost hop is retransmitted
// by the previous node rather than stalling the transaction.
func (m *Module) handleDynForward(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	if m.dyn == nil {
		return
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindDynForwardAck, Page: req.Page})
	m.dynServeOrForward(p, PageNo(req.Page), HostID(req.Arg(0)), req.Arg(1), req.Arg(2) == 1, int(req.Arg(3)))
}

// dynServeOrForward runs one node's step of the chain: serve the
// requester if this host owns the page, otherwise forward one hop down
// the local hint — compressing the hint onto a write requester, who is
// about to become owner.
func (m *Module) dynServeOrForward(p *sim.Proc, page PageNo, requester HostID, origReqID uint32, write bool, hops int) {
	if requester == m.id {
		// Our own chased request routed back to us: only stale
		// retransmissions that crossed a recovery can do this.
		if m.liveness != nil {
			return
		}
		panic(fmt.Sprintf("dsm: host %d received its own dynamic request for page %d", m.id, page))
	}
	if hops > m.dynHopBound() {
		if m.liveness == nil {
			panic(fmt.Sprintf("dsm: page %d forwarding chain exceeded %d hops (probable-owner cycle)", page, m.dynHopBound()))
		}
		// A crash can cut the true owner out of the hint graph with
		// requests in flight, leaving the survivors' hints in a cycle —
		// every hop alive, so no dead-peer error ever fires. The bound is
		// the cycle detector: bounce the requester to the recovery
		// coordinator, which rebuilds a live owner (or declares the page
		// lost with its last copy).
		bestEffort(m.deliver(p, requester, &proto.Message{
			Kind: proto.KindPageDeliver,
			Page: uint32(page),
			Args: []uint32{flagRetry, origReqID},
		}))
		return
	}
	dp := m.dynPageFor(page)
	dp.lock.P(p)
	defer dp.lock.V()
	m.exitIfCrashed(p)
	if dp.lost {
		bestEffort(m.deliver(p, requester, &proto.Message{
			Kind: proto.KindPageDeliver,
			Page: uint32(page),
			Args: []uint32{flagLost, origReqID},
		}))
		return
	}
	if !dp.owned {
		next := dp.probOwner
		if next == m.id {
			panic(fmt.Sprintf("dsm: host %d forwarding page %d to itself (probable-owner self-loop)", m.id, page))
		}
		if write {
			// Path compression: the requester is about to become owner.
			dp.probOwner = requester
		}
		m.stats.Forwards++
		m.trace("dyn-forward", page)
		p.Sleep(m.cfg.Params.ForwardCost.Of(m.arch.Kind))
		w := uint32(0)
		if write {
			w = 1
		}
		if _, err := m.ep.Call(p, next, &proto.Message{ // vet:ignore lock-remote — Li forward: every hop holds only its own host's per-page entry, and the probable-owner chain is acyclic, so the cross-host waits cannot cycle
			Kind: proto.KindDynForward,
			Page: uint32(page),
			Args: []uint32{uint32(requester), origReqID, w, uint32(hops + 1)},
		}); err != nil {
			if m.liveness == nil {
				panic(fmt.Sprintf("dsm: host %d forwarding page %d to %d: %v", m.id, page, next, err))
			}
			// The next hop is a corpse: point the chain at the requester
			// (who is about to recover a route to the owner) and tell it
			// to take the recovery path.
			dp.probOwner = requester
			bestEffort(m.deliver(p, requester, &proto.Message{
				Kind: proto.KindPageDeliver,
				Page: uint32(page),
				Args: []uint32{flagRetry, origReqID},
			}))
		}
		return
	}
	m.dynOwnerServe(p, page, dp, requester, origReqID, write, hops)
}

// dynOwnerServe runs the owner-side transfer transaction: the dynamic
// equivalent of the fixed manager's read/writeTransaction, with the
// owner itself holding the copyset. The caller holds dp.lock.
func (m *Module) dynOwnerServe(p *sim.Proc, page PageNo, dp *dynPage, requester HostID, origReqID uint32, write bool, hops int) {
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.ManagerProcess.Of(m.arch.Kind)))
	m.stats.ChainServes++
	m.stats.ChainHops += hops
	if hops > m.stats.ChainMax {
		m.stats.ChainMax = hops
	}
	if !write {
		dp.confirmed = false
		dp.confirmReq = origReqID
		if err := m.serveCopy(p, page, false, requester, origReqID); err != nil {
			return // requester times out and re-faults
		}
		if m.cfg.Mutation == MutDropCopyset {
			m.checkpoint("dyn-transfer", page)
			return // injected bug: the new reader is never invalidated
		}
		dp.copyset[requester] = struct{}{}
		m.dynAwaitConfirm(p, dp, requester)
		m.checkpoint("dyn-transfer", page)
		return
	}
	_, requesterHasCopy := dp.copyset[requester]
	// Every copy except the requester's must die before the write: the
	// replicas, and — when the requester upgrades in place — this
	// host's own (sendInvalidations drops the local copy directly).
	targets := dynCopysetList(dp, requester)
	if requesterHasCopy {
		targets = append(targets, m.id)
	}
	if err := m.sendInvalidations(p, page, targets); err != nil {
		return
	}
	if requesterHasCopy {
		if err := m.deliver(p, requester, &proto.Message{
			Kind: proto.KindPageDeliver,
			Page: uint32(page),
			Args: []uint32{flagUpgrade, origReqID},
		}); err != nil {
			// The grant never landed, but the invalidation round above
			// (our own copy included) already made the requester's copy
			// the page: commit the handoff before aborting, exactly as
			// the fixed manager's writeTransaction learned to.
			m.dynCommitHandoff(dp, requester)
			return
		}
	} else {
		dp.confirmed = false
		dp.confirmReq = origReqID
		if err := m.serveCopy(p, page, true, requester, origReqID); err != nil {
			// The deliver errored, yet it may have landed anyway — a lost
			// ack, or the requester crashing after installing (by which
			// time it may have written and served third parties from the
			// new copy). Only the requester's installation confirmation
			// can arbitrate; resurrecting our copy after a landed
			// transfer would roll back witnessed writes.
			m.dynAwaitConfirm(p, dp, requester)
			switch {
			case dp.confirmed:
				// The transfer landed; only the acknowledgement was lost.
				m.dynCommitHandoff(dp, requester)
				m.checkpoint("dyn-transfer", page)
			case m.deadHost(requester):
				// Unknowable whether the requester's copy became visible
				// before it crashed: never resurrect ours. Recovery
				// rebuilds from surviving read copies or declares the
				// page lost with its last writer.
				m.localPageFor(page).access = NoAccess // undo serveCopy's restore
				m.dynCommitHandoff(dp, requester)
			}
			// Otherwise the requester is alive and never installed:
			// serveCopy's restored access stands, we remain owner, and
			// the requester's own timeout routes it back here through
			// the recovery coordinator.
			return
		}
	}
	m.dynCommitHandoff(dp, requester)
	m.checkpoint("dyn-transfer", page)
}

// dynAwaitConfirm parks the read-serve transaction until the requester
// reports the copy installed, keeping per-page transactions strictly
// serial — the dynamic twin of the fixed manager's awaitConfirm, with
// the same bounded patience so a requester that dies mid-install
// cannot wedge the page's transaction lock.
func (m *Module) dynAwaitConfirm(p *sim.Proc, dp *dynPage, requester HostID) {
	for rounds := 0; !dp.confirmed; rounds++ {
		if m.deadHost(requester) {
			return // requester died mid-install; its copy died with it
		}
		if m.liveness != nil && rounds >= confirmPatience {
			// Give up: either the confirm is merely late (the requester
			// is already in the copyset, so a future write still
			// invalidates it) or the requester is about to be declared
			// dead.
			return
		}
		dp.confirmW = p.PrepareWait()
		dp.confirmArmed = true
		if m.liveness != nil {
			p.ParkTimeout(m.cfg.Params.SuspicionTimeout)
		} else {
			p.Park()
		}
		dp.confirmArmed = false
	}
}

// handleDynConfirm receives the requester's installation confirmation
// on the owner that served it. Args[0] echoes the serve's original
// request ID (matched against confirmReq so a delayed confirm from an
// earlier transaction is ignored); Args[1] is 1 for a write install.
func (m *Module) handleDynConfirm(p *sim.Proc, req *proto.Message) {
	if m.dyn != nil {
		if dp, ok := m.dyn[PageNo(req.Page)]; ok && req.Arg(0) == dp.confirmReq {
			dp.confirmed = true
			if dp.confirmArmed {
				dp.confirmArmed = false
				m.k.Wake(dp.confirmW, sim.WakeSignal)
			} else if req.Arg(1) == 1 && dp.owned && HostID(req.From) != m.id {
				// A write-handoff confirmation that outlived its
				// transaction's patience: the requester did install, so
				// the claim we restored meanwhile is the stale one.
				// Commit the handoff it proves.
				m.localPageFor(PageNo(req.Page)).access = NoAccess
				m.dynCommitHandoff(dp, HostID(req.From))
			}
			m.checkpoint("dyn-confirmed", PageNo(req.Page))
		}
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindDynConfirmAck, Page: req.Page})
}

// dynCommitHandoff records that ownership left for requester.
func (m *Module) dynCommitHandoff(dp *dynPage, requester HostID) {
	dp.owned = false
	clear(dp.copyset)
	if m.cfg.Mutation != MutStaleProbableOwner {
		// Injected bug when skipped: the hint keeps pointing here, so
		// every later request dead-ends one hop short of the new owner.
		dp.probOwner = requester
	}
}

// dynRecover reroutes a fault whose probable-owner chain broke at a
// crashed host: ask the recovery coordinator for a live owner (it
// rebuilds one from surviving copies if needed). The caller holds
// dp.lock; on success the hint points at a live owner and the fault
// retries.
func (m *Module) dynRecover(p *sim.Proc, page PageNo, dp *dynPage) error {
	coord := m.dynCoordinator()
	if coord == m.id {
		owner, st := m.dynCoordinate(p, page)
		switch st {
		case dynRecFound:
			dp.probOwner = owner
			return nil
		case dynRecLost:
			dp.lost = true
			return pageLostErr(page)
		default:
			return fmt.Errorf("page %d recovery raced a crash; retrying", page)
		}
	}
	resp, err := m.ep.Call(p, coord, &proto.Message{Kind: proto.KindDynRecover, Page: uint32(page)})
	if err != nil {
		return fmt.Errorf("page %d recovery via coordinator %d: %w", page, coord, err)
	}
	st := resp.Arg(0)
	owner := HostID(resp.Arg(1))
	bufpool.Put(resp.TakeWire())
	switch st {
	case dynRecFound:
		dp.probOwner = owner
		return nil
	case dynRecLost:
		dp.lost = true
		m.trace("page-lost", page)
		return pageLostErr(page)
	default:
		return fmt.Errorf("page %d recovery raced a crash; retrying", page)
	}
}

// dynCoordinator picks the recovery coordinator: the smallest live
// host, so every survivor routes broken chains through the same place
// and coordinations serialize on its recLock.
func (m *Module) dynCoordinator() HostID {
	for i := range m.hosts {
		h := HostID(i)
		if h == m.id || !m.deadHost(h) {
			return h
		}
	}
	return m.id
}

// handleDynRecover serves a broken-chain report on the coordinator.
func (m *Module) handleDynRecover(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	if m.dyn == nil {
		return
	}
	owner, st := m.dynCoordinate(p, PageNo(req.Page))
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindDynRecoverReply,
		Page: req.Page,
		Args: []uint32{st, uint32(owner)},
	})
}

// dynCoordinate locates (or rebuilds) a live owner for a page whose
// chain broke. It probes every survivor with the lock-free
// KindRecoverPage handler — deliberately NOT the per-page transaction
// lock, which the probed host may be holding inside its own fault — and
// prefers, in order: an existing live owner or writable copy; rebuilding
// ownership here from a surviving read copy; declaring the page lost.
func (m *Module) dynCoordinate(p *sim.Proc, page PageNo) (HostID, uint32) {
	dp := m.dynPageFor(page)
	dp.recLock.P(p)
	defer dp.recLock.V()
	m.exitIfCrashed(p)
	if dp.lost {
		return 0, dynRecLost
	}
	if dp.owned {
		return m.id, dynRecFound
	}
	var readHolders []HostID
	if lp := m.local[page]; lp != nil && lp.access != NoAccess {
		readHolders = append(readHolders, m.id)
	}
	for i := range m.hosts {
		h := HostID(i)
		if h == m.id || m.deadHost(h) {
			continue
		}
		resp, err := m.ep.Call(p, h, &proto.Message{
			Kind: proto.KindRecoverPage,
			Page: uint32(page),
			Args: []uint32{2}, // dynamic possession probe: access + ownership, no data
		})
		if err != nil {
			continue // crashed mid-probe; its copy died with it
		}
		has := resp.Arg(0) != 0
		acc := Access(resp.Arg(1))
		owned := resp.Arg(2) == 1
		bufpool.Put(resp.TakeWire())
		if owned || acc == WriteAccess {
			// A live owner exists: the requester's chain was merely
			// stale. Point it straight there. Checked before `has`: a
			// serving owner drops its access for the transfer window, but
			// it is still the page's authority (it keeps its copy if the
			// handoff aborts) — skipping it here would declare a live page
			// lost.
			m.trace("reconciled", page)
			return h, dynRecFound
		}
		if !has {
			continue
		}
		readHolders = append(readHolders, h)
	}
	// The probe round parks this process repeatedly: re-check our own
	// state, which a queued transaction may have changed meanwhile.
	if dp.lost {
		return 0, dynRecLost
	}
	if dp.owned {
		return m.id, dynRecFound
	}
	if len(readHolders) == 0 {
		dp.lost = true
		m.stats.PagesLost++
		m.trace("page-lost", page)
		return 0, dynRecLost
	}
	if readHolders[0] != m.id {
		// Rebuild ownership here from the first surviving read copy.
		fetched := false
		for _, src := range readHolders {
			resp, err := m.ep.Call(p, src, &proto.Message{Kind: proto.KindRecoverPage, Page: uint32(page)})
			if err != nil {
				continue
			}
			if resp.Arg(0) == 0 {
				bufpool.Put(resp.TakeWire())
				continue
			}
			m.installRecovered(p, page, resp)
			fetched = true
			break
		}
		if !fetched {
			// Every holder vanished between probe and fetch: let the
			// requester retry and coordination rerun against reality.
			return 0, dynRecRetry
		}
	}
	dp.owned = true
	dp.probOwner = m.id
	clear(dp.copyset)
	for _, h := range readHolders {
		if h != m.id {
			dp.copyset[h] = struct{}{}
		}
	}
	m.stats.PagesRecovered++
	m.trace("recover", page)
	m.checkpoint("dyn-recovered", page)
	return m.id, dynRecFound
}

// dynCopysetList renders a dynamic copyset deterministically, excluding
// one host (the requester being served, or the owner itself).
func dynCopysetList(dp *dynPage, except HostID) []HostID {
	out := make([]HostID, 0, len(dp.copyset))
	for h := range dp.copyset {
		if h == except {
			continue
		}
		out = append(out, h)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
