package dsm

// Sequential-consistency trace recording. When Config.SCRecorder is
// set, every typed access that flows through readRegion/writeRegion is
// recorded per page span, with the bytes canonicalized to the Sun
// representation so traces from heterogeneous hosts compare directly
// (a Firefly's little-endian VAX floats and a Sun's big-endian IEEE
// floats of the same value record identically). The offline checker in
// internal/sctrace then validates the run against sequential
// consistency using the virtual clock as the witness order.

import (
	"repro/internal/arch"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// recordSC appends one span access to the attached trace recorder.
// start is the virtual time the enclosing access began (before any
// fault it triggered); the end time is the current clock.
func (m *Module) recordSC(p *sim.Proc, kind sctrace.OpKind, start sim.Time, addr Addr, data []byte) {
	m.recordSCAt(p, kind, start, p.Now(), addr, data)
}

// recordSCAt is recordSC with an explicit end time, for synthetic
// records whose witness position is a protocol-defined instant rather
// than the current clock (quorum reads commit the value they return at
// their own start; see quorumEngine.readRegion).
func (m *Module) recordSCAt(p *sim.Proc, kind sctrace.OpKind, start, end sim.Time, addr Addr, data []byte) {
	rec := m.cfg.SCRecorder
	if rec == nil {
		return
	}
	rec.Record(kind, int(m.id), p.Name(), int64(start), int64(end), uint32(addr), m.canonicalBytes(addr, data))
}

// canonicalBytes converts one page span's native bytes to the canonical
// (Sun) representation. Pointers are canonicalized too: rebasing by the
// base-address difference maps every stored pointer to the Sun-virtual
// form regardless of which host recorded it. Bytes that cannot be
// converted (no metadata, or a partial element) are recorded raw.
func (m *Module) canonicalBytes(addr Addr, data []byte) []byte {
	buf := make([]byte, len(data)) // vet:ignore hot-alloc — retained by the SC trace recorder
	copy(buf, data)
	if m.arch.Compatible(arch.SunArch) {
		return buf
	}
	mt, ok := m.meta[m.PageOf(addr)]
	if !ok {
		return buf
	}
	typ, ok := m.cfg.Registry.Get(mt.typeID)
	if !ok || typ.Size <= 0 {
		return buf
	}
	n := len(buf) / typ.Size
	if n == 0 {
		return buf
	}
	ptrOff := int32(m.base(arch.Sun)) - int32(m.base(m.arch.Kind))
	if _, err := m.cfg.Registry.ConvertRegion(mt.typeID, buf[:n*typ.Size], m.arch, arch.SunArch, ptrOff); err != nil {
		// Unconvertible data is recorded raw; a resulting cross-host
		// mismatch is exactly what the checker should surface.
		copy(buf, data)
	}
	return buf
}
