package dsm

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sim"
)

// TestCheckerCoversHealthyRun asserts the checker actually observes a
// correct execution (many checkpoints, zero violations) — guarding
// against the checker silently never firing.
func TestCheckerCoversHealthyRun(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Sun})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 64)
		if err != nil {
			t.Error(err)
			return
		}
		buf := make([]int32, 64)
		r.mods[1].ReadInt32s(p, addr, buf)
		r.mods[2].WriteInt32s(p, addr, buf)
		r.mods[0].ReadInt32s(p, addr, buf)
	})
	if r.check.Checks() == 0 {
		t.Fatal("invariant checker executed no checkpoints")
	}
	if r.check.Violations() != 0 {
		t.Fatalf("healthy run produced %d violations", r.check.Violations())
	}
}

// TestCheckerTripsOnSkippedInvalidation mutates the protocol — write
// transactions stop invalidating readers — and demonstrates that the
// checker catches the resulting stale copy. This is the classic silent
// DSM coherence bug: the cluster keeps running, readers just see old
// data.
func TestCheckerTripsOnSkippedInvalidation(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun, arch.Sun})
	var got []Violation
	r.check.SetFailHandler(func(v Violation) { got = append(got, v) })
	r.mods[0].cfg.Mutation = MutSkipInvalidation // shared Config: cluster-wide
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		// Host 1 acquires a read replica; host 2 then writes. With
		// invalidations suppressed host 1's replica survives the write
		// while the manager's copyset says it must not exist.
		r.mods[1].ReadInt32s(p, addr, make([]int32, 4))
		r.mods[2].WriteInt32s(p, addr, []int32{1, 2, 3, 4})
	})
	if len(got) == 0 {
		t.Fatal("skipped invalidation went undetected")
	}
	found := false
	for _, v := range got {
		if strings.Contains(v.Msg, "stale copy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stale-copy violation among: %v", got)
	}
}

// TestCheckerDetectsDoubleWriter corrupts the single-writer invariant
// directly and verifies both the unique-writer and the owner-agreement
// checks fire.
func TestCheckerDetectsDoubleWriter(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun})
	var got []Violation
	r.check.SetFailHandler(func(v Violation) { got = append(got, v) })
	var page PageNo
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		page = r.mods[0].PageOf(addr)
		// A read fault routes through the manager, creating the entry
		// whose bookkeeping the forged state below contradicts.
		r.mods[1].ReadInt32s(p, addr, make([]int32, 4))
	})
	got = got[:0]
	// Forge two writable copies behind the protocol's back.
	r.mods[0].localPageFor(page).access = WriteAccess
	r.mods[1].localPageFor(page).access = WriteAccess
	r.check.CheckAll("tamper")
	var multi, owner bool
	for _, v := range got {
		if strings.Contains(v.Msg, "multiple writable copies") {
			multi = true
		}
		if strings.Contains(v.Msg, "records owner") {
			owner = true
		}
	}
	if !multi || !owner {
		t.Fatalf("double writer not fully diagnosed (multi=%v owner=%v): %v", multi, owner, got)
	}
}

// TestCheckerViolationString pins the rendered message format tests and
// humans grep for.
func TestCheckerViolationString(t *testing.T) {
	v := Violation{Point: "transfer-complete", Page: 7, Msg: "boom"}
	want := "dsm: invariant violated at transfer-complete, page 7: boom"
	if v.String() != want {
		t.Fatalf("got %q, want %q", v.String(), want)
	}
}
