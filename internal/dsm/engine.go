package dsm

// The replication-engine layer. Each coherence policy (§2.1's algorithm
// spectrum) is one engine: an implementation of region reads, region
// writes and atomic swaps plus a few capability predicates the rest of
// the module consults instead of branching on cfg.Policy. newEngine is
// the ONLY policy dispatch point — the policy-branch vet rule flags any
// cfg.Policy comparison outside this file — so adding an algorithm means
// adding an engine, not editing every call site.
//
// The engines share the directory layer (directory.go: who manages a
// page) and the transfer/conversion path (protocol.go, conv): an engine
// decides *when* pages move and replicate; the directory decides *whom*
// to ask; the transfer path decides *how* bytes travel and convert.

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/conv"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// engine is one coherence policy's replication strategy.
type engine interface {
	// readRegion makes [addr, addr+n) readable and hands its byte spans
	// to fn in order (see Module.readRegion for the full contract).
	readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error
	// writeRegion makes [addr, addr+n) writable and lets fill produce
	// the new bytes span by span.
	writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error
	// atomicSwap exchanges the int32 at addr atomically.
	atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error)
	// allocFirstTouch reports whether the allocation manager keeps a
	// zero-filled writable copy of every fresh page (the page policies'
	// first-touch ownership). Server-resident policies return false.
	allocFirstTouch() bool
	// serverOnly reports whether pages live only at their server and are
	// never cached elsewhere (the central-server policy).
	serverOnly() bool
	// sequencesUpdates reports whether the page's manager sequences and
	// pushes writes to replicas (the write-update policy).
	sequencesUpdates() bool
	// quorumReplicated reports whether pages live as tag-ordered replica
	// sets accessed by majority quorum (the SC-ABD policy): no owner, no
	// copyset, no MRSW residency invariants.
	quorumReplicated() bool
	// lazyRelease reports whether writes propagate at release time as
	// twin/diff updates instead of eagerly at access time (the RC
	// policy): multiple writable copies are legal, MRSW residency
	// invariants do not apply, and the trace oracle is the
	// happens-before checker, not the SC checker (model.go).
	lazyRelease() bool
}

// validatePolicy checks the policy-dependent configuration rules. It
// lives here because engine.go is the package's one policy-dispatch
// file (see the policy-branch vet rule).
func (c *Config) validatePolicy() error {
	if c.Directory == DirDynamic && c.Policy != PolicyMRSW {
		return fmt.Errorf("dsm: dynamic directory is only defined for the MRSW policy, not %v", c.Policy)
	}
	return nil
}

// Model returns the consistency contract the policy provides (model.go):
// every policy promises sequential consistency except the lazy-release
// engine. This switch lives here because engine.go is the package's one
// policy-dispatch file.
func (p Policy) Model() Model {
	switch p {
	case PolicyRC:
		return ModelRC
	default:
		return ModelSC
	}
}

// newEngine builds the engine for the configured policy. This switch is
// the single policy dispatch point of the package.
func newEngine(m *Module) engine {
	switch m.cfg.Policy {
	case PolicyCentral:
		return &centralEngine{m: m}
	case PolicyUpdate:
		return &updateEngine{paged: pagedEngine{m: m}}
	case PolicyMigration:
		return &pagedEngine{m: m, writeOnRead: true}
	case PolicyQuorum:
		m.qrm = make(map[PageNo]*quorumPage)
		return &quorumEngine{m: m}
	case PolicyRC:
		m.rc = newRCState(len(m.hosts))
		return &rcEngine{m: m}
	default:
		return &pagedEngine{m: m}
	}
}

// readRegion makes [addr, addr+n) readable and hands its byte spans to
// fn in order, according to the active engine. Under the page engines
// (MRSW, migration, update reads) residency is ensured one
// native-VM-page group at a time and the group's bytes are consumed
// before moving on — the consistency a sequence of hardware accesses
// would see; a large region is NOT fetched atomically, so concurrent
// writers interleave exactly as they would against a real application's
// access stream. Under the central engine the bytes are fetched from
// each page's server, already converted to this host's representation.
//
// Under failure detection the page-engine path returns the fault's
// typed error (ErrHostDown, ErrPageLost) and stops at the first group
// that cannot be made resident: a multi-group region access is not
// atomic, so groups already consumed stay consumed. The central and
// update engines predate fault tolerance and keep their hard-panic
// contract.
func (m *Module) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	return m.engine.readRegion(p, addr, n, fn)
}

// writeRegion makes [addr, addr+n) writable and lets fill produce the
// new bytes span by span, with the same per-group granularity as
// readRegion.
func (m *Module) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	return m.engine.writeRegion(p, addr, n, fill)
}

// pagedEngine is the page-migration family: Li's MRSW write-invalidate
// algorithm (writeOnRead=false) and single-copy migration
// (writeOnRead=true, every read faults for ownership). Residency and
// coherence run through the directory's fault path; this engine only
// fixes the access right each operation demands.
type pagedEngine struct {
	m *Module
	// writeOnRead makes read accesses fault for write ownership: the
	// migration policy's single migrating copy.
	writeOnRead bool
}

func (e *pagedEngine) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	m := e.m
	off := 0
	var ferr error
	m.forEachGroup(addr, n, func(chunkAddr Addr, chunkLen int) {
		if ferr != nil {
			return
		}
		t0 := p.Now()
		if err := m.EnsureAccess(p, chunkAddr, chunkLen, e.writeOnRead); err != nil {
			ferr = err
			return
		}
		m.forEachSpan(chunkAddr, chunkLen, func(seg []byte, o int) {
			fn(seg, off+o)
			m.recordSC(p, sctrace.Read, t0, chunkAddr+Addr(o), seg)
		})
		off += chunkLen
	})
	return ferr
}

func (e *pagedEngine) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	m := e.m
	off := 0
	var ferr error
	m.forEachGroup(addr, n, func(chunkAddr Addr, chunkLen int) {
		if ferr != nil {
			return
		}
		t0 := p.Now()
		if err := m.EnsureAccess(p, chunkAddr, chunkLen, true); err != nil {
			ferr = err
			return
		}
		m.forEachSpan(chunkAddr, chunkLen, func(seg []byte, o int) {
			fill(seg, off+o)
			m.recordSC(p, sctrace.Write, t0, chunkAddr+Addr(o), seg)
		})
		off += chunkLen
	})
	return ferr
}

// atomicSwap holds write ownership from the access check to the store
// without yielding, which is what makes the exchange atomic.
func (e *pagedEngine) atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error) {
	m := e.m
	t0 := p.Now()
	if err := m.EnsureAccess(p, addr, 4, true); err != nil {
		return 0, err
	}
	var old int32
	m.forEachSpan(addr, 4, func(seg []byte, _ int) {
		old = conv.GetInt32(m.arch, seg)
		m.recordSC(p, sctrace.Read, t0, addr, seg)
		conv.PutInt32(m.arch, seg, v)
		m.recordSC(p, sctrace.Write, t0, addr, seg)
	})
	return old, nil
}

func (e *pagedEngine) allocFirstTouch() bool  { return true }
func (e *pagedEngine) serverOnly() bool       { return false }
func (e *pagedEngine) sequencesUpdates() bool { return false }
func (e *pagedEngine) quorumReplicated() bool { return false }
func (e *pagedEngine) lazyRelease() bool      { return false }

// centralEngine is the central-server policy: no page ever leaves its
// server; every access is a remote operation (central.go).
type centralEngine struct {
	m *Module
}

func (e *centralEngine) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	m := e.m
	off := 0
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		t0 := p.Now()
		seg := m.centralRead(p, pg, pos-pageStart, hi-pos)
		fn(seg, off)
		m.recordSC(p, sctrace.Read, t0, Addr(pos), seg)
		off += hi - pos
		pos = hi
	}
	return nil
}

func (e *centralEngine) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	m := e.m
	off := 0
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		// Pooled staging: centralWrite blocks until the server has
		// acknowledged and recordSC copies what it keeps.
		seg := bufpool.Get(hi - pos)
		t0 := p.Now()
		fill(seg, off)
		m.centralWrite(p, pg, pos-pageStart, seg)
		m.recordSC(p, sctrace.Write, t0, Addr(pos), seg)
		bufpool.Put(seg)
		off += hi - pos
		pos = hi
	}
	return nil
}

func (e *centralEngine) atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error) {
	return e.m.centralSwap(p, addr, v), nil
}

func (e *centralEngine) allocFirstTouch() bool  { return false }
func (e *centralEngine) serverOnly() bool       { return true }
func (e *centralEngine) sequencesUpdates() bool { return false }
func (e *centralEngine) quorumReplicated() bool { return false }
func (e *centralEngine) lazyRelease() bool      { return false }

// updateEngine is the write-update policy: reads replicate exactly as
// under MRSW (the embedded paged engine), writes are sequenced by the
// manager and pushed to every replica (update.go).
type updateEngine struct {
	paged pagedEngine
}

func (e *updateEngine) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	return e.paged.readRegion(p, addr, n, fn)
}

func (e *updateEngine) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	e.paged.m.updateWriteRegion(p, addr, n, fill)
	return nil
}

func (e *updateEngine) atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error) {
	panic("dsm: atomic operations are not defined under the write-update policy; use the distributed synchronization facility")
}

func (e *updateEngine) allocFirstTouch() bool  { return true }
func (e *updateEngine) serverOnly() bool       { return false }
func (e *updateEngine) sequencesUpdates() bool { return true }
func (e *updateEngine) quorumReplicated() bool { return false }
func (e *updateEngine) lazyRelease() bool      { return false }
