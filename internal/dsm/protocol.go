package dsm

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// PageReply flag bits (Args[0]).
const (
	// flagData marks a reply carrying the page body.
	flagData = 1 << iota
	// flagUpgrade marks a write grant without data: the requester's
	// resident read copy is current and may simply be upgraded.
	flagUpgrade
	// flagLost marks a reply for a page whose only copy died with its
	// crashed owner: the fault fails with ErrPageLost.
	flagLost
	// flagRetry tells a dynamic-directory requester its forwarded
	// request hit a crashed hop: recover a route to the owner and
	// re-issue the fault (dynamic.go). Never set on fixed-directory
	// replies.
	flagRetry
)

// faultRetries bounds how many times a fault whose transaction aborted
// mid-crash is re-issued before the page is reported unreachable.
const faultRetries = 3

// EnsureAccess makes [addr, addr+n) accessible with the given right,
// faulting in whatever is missing. Faulting granularity is the host's
// native VM page: under the smallest page size algorithm a Sun fault
// fetches every missing 1 KB DSM page of the 8 KB VM page (§2.4).
//
// A zero-length span needs no access and succeeds immediately; a
// negative length or a span reaching past the shared address space
// (including one whose addr+n wraps the 32-bit address) is rejected
// with an error before any protocol traffic.
//
// Under failure detection, a fault that cannot complete because of a
// host crash returns a typed error: ErrHostDown when the page's
// manager (or every possible source) has crashed, ErrPageLost when the
// page's only copy died with its owner.
//
// The loop re-checks after fetching because a page obtained early in a
// multi-page fault can be stolen while later ones are fetched; repeated
// iterations under contention are precisely the page-thrashing behaviour
// studied in §3.3.
func (m *Module) EnsureAccess(p *sim.Proc, addr Addr, n int, write bool) error {
	m.exitIfCrashed(p)
	for {
		pages, err := m.requiredPages(addr, n)
		if err != nil {
			return err
		}
		var missing []PageNo
		for _, pg := range pages {
			if !m.hasAccess(pg, write) {
				missing = append(missing, pg)
			}
		}
		if len(missing) == 0 {
			return nil
		}
		// One native VM fault: handler invocation, local page table
		// processing, request transmission (Table 1).
		if write {
			m.stats.WriteFaults++
			m.trace("write-fault", missing[0])
			p.Sleep(m.jittered(m.cfg.Params.FaultWrite.Of(m.arch.Kind)))
		} else {
			m.stats.ReadFaults++
			m.trace("read-fault", missing[0])
			p.Sleep(m.jittered(m.cfg.Params.FaultRead.Of(m.arch.Kind)))
		}
		for _, pg := range missing {
			if err := m.faultPage(p, pg, write); err != nil {
				return err
			}
		}
	}
}

// mustEnsureAccess is EnsureAccess for internal call sites whose spans
// checkTyped already validated: a failure there is a module bug, not an
// application error.
func (m *Module) mustEnsureAccess(p *sim.Proc, addr Addr, n int, write bool) {
	if err := m.EnsureAccess(p, addr, n, write); err != nil {
		panic(fmt.Sprintf("dsm: host %d: %v", m.id, err))
	}
}

// requiredPages lists the DSM pages that must be resident to touch
// [addr, addr+n), expanded to whole native-VM-page groups. The span is
// validated in 64-bit arithmetic: Addr is 32 bits, so addr+n-1 computed
// in Addr width can wrap around and silently turn an out-of-range
// access into a fetch of low pages.
func (m *Module) requiredPages(addr Addr, n int) ([]PageNo, error) {
	if n < 0 {
		return nil, fmt.Errorf("access at %d with negative length %d", addr, n)
	}
	end := uint64(addr) + uint64(n)
	if end > uint64(m.cfg.SpaceSize) {
		return nil, fmt.Errorf("access [%d,%d) beyond the %d-byte shared space", addr, end, m.cfg.SpaceSize)
	}
	if n == 0 {
		return nil, nil
	}
	first := m.PageOf(addr)
	last := m.PageOf(Addr(end - 1))
	g := PageNo(m.groupSize())
	first = first / g * g
	// Group expansion may reach past the end of the space; the space is
	// not required to be a whole number of VM-page groups, so clamp.
	last = last/g*g + g - 1
	if max := PageNo(m.NumPages() - 1); last > max {
		last = max
	}
	pages := make([]PageNo, 0, last-first+1)
	for pg := first; pg <= last; pg++ {
		pages = append(pages, pg)
	}
	return pages, nil
}

// callFailed classifies a protocol call failure. Without failure
// detection it is a simulation bug and panics, exactly as before the
// fault-tolerance work; with detection it becomes an error the fault
// machinery retries or aborts on.
func (m *Module) callFailed(err error, format string, args ...any) error {
	if m.liveness == nil {
		panic(fmt.Sprintf("dsm: "+format+": %v", append(args, err)...))
	}
	return fmt.Errorf(format+": %w", append(args, err)...)
}

// faultPage obtains one DSM page with the requested right. Concurrent
// threads on the same host faulting on the same page are serialized so
// the protocol runs once. Under failure detection, transient failures
// (a transaction aborted by a mid-transfer crash) are retried a bounded
// number of times before the page is reported down, with capped
// exponential backoff between attempts: the first retry waits one
// request timeout (detection and recovery need at least that long to
// converge), later ones double it up to the blocking retry interval, so
// a recovery that takes several suspicion periods is met with patience
// rather than a premature ErrHostDown. The jitter desynchronizes hosts
// that faulted on the same page in the same instant; it comes from the
// seeded RNG and is drawn only on this path, so fault-free runs stay
// bit-identical.
func (m *Module) faultPage(p *sim.Proc, page PageNo, write bool) error {
	l := m.faultLockFor(page)
	l.P(p)
	// Deferred before the lock release so it runs after it (LIFO): the
	// checker sees the page with the fault fully serviced.
	defer m.checkpoint("fault-serviced", page)
	defer l.V()
	backoff := sim.Duration(m.cfg.Params.RequestTimeout)
	for attempt := 0; ; attempt++ {
		if m.hasAccess(page, write) {
			return nil // another local thread fetched it meanwhile
		}
		err := m.dir.fault(p, page, write)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrPageLost) || errors.Is(err, ErrHostDown) {
			return err
		}
		if attempt >= faultRetries {
			return fmt.Errorf("%w: page %d fault kept failing: %v", ErrHostDown, page, err)
		}
		p.Sleep(backoff + sim.Duration(m.k.Rand().Int63n(int64(backoff/4)+1)))
		m.exitIfCrashed(p)
		if backoff < sim.Duration(m.cfg.Params.BlockingRetryInterval) {
			backoff *= 2
			if backoff > sim.Duration(m.cfg.Params.BlockingRetryInterval) {
				backoff = sim.Duration(m.cfg.Params.BlockingRetryInterval)
			}
		}
	}
}

// remoteFault is the requester side when the manager is elsewhere: send
// the request to the manager; the reply arrives from the manager (an
// upgrade grant) or, forwarded, from the owner (the page body). After
// installation the manager is asynchronously told the transfer is
// complete so it can admit the next transaction for the page.
func (m *Module) remoteFault(p *sim.Proc, page PageNo, write bool) error {
	kind := proto.KindGetPage
	if write {
		kind = proto.KindGetPageWrite
	}
	mgrHost := m.manager(page)
	resp, err := m.ep.Call(p, mgrHost, &proto.Message{Kind: kind, Page: uint32(page)})
	if err != nil {
		if m.liveness == nil {
			panic(fmt.Sprintf("dsm: host %d page %d fault: %v", m.id, page, err))
		}
		if errors.Is(err, remoteop.ErrPeerDead) {
			// The manager itself crashed: its page range is unavailable
			// but isolated — other ranges keep working.
			return hostDownErr(mgrHost, "page %d's manager crashed", page)
		}
		return fmt.Errorf("page %d fault unanswered by manager %d: %w", page, mgrHost, err)
	}
	if resp.Arg(0)&flagLost != 0 {
		bufpool.Put(resp.TakeWire())
		return pageLostErr(page)
	}
	m.installBody(p, page, resp, write)
	m.k.Spawn(fmt.Sprintf("confirm-%d-p%d", m.id, page), func(cp *sim.Proc) {
		if _, err := m.ep.Call(cp, mgrHost, &proto.Message{Kind: proto.KindOwnerUpdate, Page: uint32(page)}); err != nil {
			if m.liveness == nil {
				panic(fmt.Sprintf("dsm: host %d confirming page %d: %v", m.id, page, err))
			}
			// The manager died before hearing the confirmation; the
			// recovery sweep rebuilds its successor state, so the loss
			// is harmless.
		}
	})
	return nil
}

// localManagerFault is the requester side when this host is the page's
// manager: the owner lookup is a local page table access (Table 4's
// R/M→O row has no manager message cost).
func (m *Module) localManagerFault(p *sim.Proc, page PageNo, write bool) error {
	ent := m.mgrEntryFor(page)
	ent.lock.P(p)
	defer ent.lock.V()
	// Creating the manager entry makes this host the initial owner of
	// the zero-filled page with write access (Li's initialization), so
	// the first touch of a self-managed page is satisfied right here.
	if m.hasAccess(page, write) {
		return nil
	}
	if ent.suspect {
		if err := m.reconcileSuspect(p, page, ent); err != nil {
			return err
		}
	}
	if m.liveness != nil && !ent.lost && ent.owner != m.id && m.liveness.Dead(ent.owner) {
		m.recoverPage(p, page, ent)
	}
	if ent.lost {
		return pageLostErr(page)
	}
	if m.hasAccess(page, write) {
		return nil // recovery installed exactly what this fault needed
	}
	if write {
		hasCopy := m.hasAccess(page, false)
		targets := m.invalidationTargets(ent, m.id, hasCopy)
		if err := m.sendInvalidations(p, page, targets); err != nil {
			return err
		}
		if ent.owner == m.id || hasCopy {
			lp := m.localPageFor(page)
			lp.access = WriteAccess
			m.stats.Upgrades++
			p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
		} else {
			resp, err := m.ep.Call(p, ent.owner, &proto.Message{Kind: proto.KindGetPageWrite, Page: uint32(page)}) // vet:ignore lock-remote — manager transaction: a page's entry lock lives only on its one static manager, which never calls itself
			if err != nil {
				return m.callFailed(err, "manager %d fetching page %d from owner %d", m.id, page, ent.owner)
			}
			m.installBody(p, page, resp, true)
		}
		ent.owner = m.id
		clear(ent.copyset)
	} else {
		src := m.readSource(ent, m.id)
		if src == m.id {
			// Owner-is-me with no access would contradict the owner
			// invariant (the owner always holds a copy).
			panic(fmt.Sprintf("dsm: manager %d owns page %d but holds no copy", m.id, page))
		}
		resp, err := m.ep.Call(p, src, &proto.Message{Kind: proto.KindGetPage, Page: uint32(page)}) // vet:ignore lock-remote — manager transaction: a page's entry lock lives only on its one static manager, which never calls itself
		if err != nil {
			return m.callFailed(err, "manager %d fetching page %d from %d", m.id, page, src)
		}
		m.installBody(p, page, resp, false)
		ent.copyset[m.id] = struct{}{}
	}
	return nil
}

// handleGetPage serves KindGetPage and KindGetPageWrite. On the page's
// manager it runs the transfer transaction; on any other host it is a
// forwarded request to the owner (or, for reads, to a same-type holder).
func (m *Module) handleGetPage(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	page := PageNo(req.Page)
	write := req.Kind == proto.KindGetPageWrite
	if m.manager(page) != m.id {
		// A direct request from the page's manager (the R==M fast
		// path): serve straight back to it.
		bestEffort(m.serveCopy(p, page, write, HostID(req.From), req.ReqID))
		return
	}
	requester := HostID(req.From)
	ent := m.mgrEntryFor(page)
	ent.lock.P(p)
	// Deferred before the lock release so it runs after it (LIFO): the
	// checker audits the quiescent state each transfer leaves behind.
	defer m.checkpoint("transfer-complete", page)
	defer ent.lock.V()
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.ManagerProcess.Of(m.arch.Kind)))
	if ent.suspect {
		if err := m.reconcileSuspect(p, page, ent); err != nil {
			return // requester times out and re-faults
		}
	}
	if m.liveness != nil && !ent.lost && ent.owner != m.id && m.liveness.Dead(ent.owner) {
		m.recoverPage(p, page, ent)
	}
	if ent.lost {
		// Redeem the requester's call with a lost marker so the fault
		// fails fast with ErrPageLost instead of timing out.
		bestEffort(m.deliver(p, requester, &proto.Message{
			Kind: proto.KindPageDeliver,
			Page: uint32(page),
			Args: []uint32{flagLost, req.ReqID},
		}))
		return
	}
	ent.confirmed = false
	var err error
	if write {
		err = m.writeTransaction(p, req, page, ent, requester)
	} else {
		err = m.readTransaction(p, req, page, ent, requester)
	}
	if err != nil {
		// A host died mid-transaction: abort without touching the
		// bookkeeping; the requester times out and re-faults after
		// detection and recovery converge.
		return
	}
	m.awaitConfirm(p, ent, requester)
}

func (m *Module) readTransaction(p *sim.Proc, req *proto.Message, page PageNo, ent *mgrEntry, requester HostID) error {
	src := m.readSource(ent, requester)
	if src == m.id {
		if err := m.serveCopy(p, page, false, requester, req.ReqID); err != nil {
			return err
		}
	} else {
		p.Sleep(m.cfg.Params.ForwardCost.Of(m.arch.Kind))
		if err := m.forwardServe(p, src, page, false, requester, req.ReqID); err != nil {
			return err
		}
	}
	if m.cfg.Mutation == MutDropCopyset {
		return nil // injected bug: the new reader is never invalidated
	}
	ent.copyset[requester] = struct{}{}
	return nil
}

// forwardServe reliably hands the serving job to src: a ServeRequest
// call that src acknowledges on receipt (it then delivers the page to
// the requester with its own reliable call). Unlike a one-way forward,
// a lost hop is retransmitted rather than deadlocking the transaction.
func (m *Module) forwardServe(p *sim.Proc, src HostID, page PageNo, write bool, requester HostID, origReqID uint32) error {
	w := uint32(0)
	if write {
		w = 1
	}
	if _, err := m.ep.Call(p, src, &proto.Message{
		Kind: proto.KindServeRequest,
		Page: uint32(page),
		Args: []uint32{uint32(requester), origReqID, w},
	}); err != nil {
		return m.callFailed(err, "manager %d forwarding page %d to %d", m.id, page, src)
	}
	return nil
}

func (m *Module) writeTransaction(p *sim.Proc, req *proto.Message, page PageNo, ent *mgrEntry, requester HostID) error {
	requesterHasCopy := ent.owner == requester
	if _, ok := ent.copyset[requester]; ok {
		requesterHasCopy = true
	}
	targets := m.invalidationTargets(ent, requester, requesterHasCopy)
	if err := m.sendInvalidations(p, page, targets); err != nil {
		return err
	}
	switch {
	case requesterHasCopy:
		// The requester's resident copy is current: grant an upgrade
		// without a transfer (invalidations above removed all others).
		if err := m.deliver(p, requester, &proto.Message{
			Kind: proto.KindPageDeliver,
			Page: uint32(page),
			Args: []uint32{flagUpgrade, req.ReqID},
		}); err != nil {
			// The grant never landed — but the invalidation round above
			// already destroyed every other copy (the old owner's
			// included), so the requester's resident copy IS the page
			// now. Commit the handoff before aborting, or the entry
			// keeps naming an owner who holds nothing: a live requester
			// re-faults and upgrades again; a dead one is re-owned or
			// declared lost by the recovery sweep.
			if m.cfg.Mutation != MutStaleOwner {
				ent.owner = requester
			}
			clear(ent.copyset)
			ent.copyset[requester] = struct{}{}
			return err
		}
	case ent.owner == m.id:
		if err := m.serveCopy(p, page, true, requester, req.ReqID); err != nil {
			if m.deadHost(requester) {
				// The dead requester may have installed the transfer before
				// its acknowledgement was lost (see serveCopy, which drops
				// the possibly-stale local frame in this case). Commit the
				// handoff so the entry names the corpse and the recovery
				// sweep re-owns or declares the page lost, instead of
				// leaving this host as the recorded owner of a frame it no
				// longer holds — or worse, of stale bytes.
				if m.cfg.Mutation != MutStaleOwner {
					ent.owner = requester
				}
				clear(ent.copyset)
				ent.copyset[requester] = struct{}{}
			}
			return err
		}
	default:
		p.Sleep(m.cfg.Params.ForwardCost.Of(m.arch.Kind))
		if err := m.forwardServe(p, ent.owner, page, true, requester, req.ReqID); err != nil {
			return err
		}
	}
	if m.cfg.Mutation != MutStaleOwner {
		// Injected bug when skipped: the owner field keeps pointing at
		// the previous owner, whose copy just left with the transfer.
		ent.owner = requester
	}
	clear(ent.copyset)
	ent.copyset[requester] = struct{}{}
	return nil
}

// invalidationTargets computes who must drop their copy before a write
// by requester proceeds: every copyset member except the requester and
// except the owner (whose copy is consumed by the ownership transfer) —
// unless the requester upgrades in place, in which case the old owner's
// copy must be invalidated explicitly too.
func (m *Module) invalidationTargets(ent *mgrEntry, requester HostID, requesterUpgrades bool) []HostID {
	var targets []HostID
	for h := range ent.copyset {
		if h == requester || h == ent.owner {
			continue
		}
		targets = append(targets, h)
	}
	if requesterUpgrades && ent.owner != requester {
		targets = append(targets, ent.owner)
	}
	// Deterministic order for reproducible simulations.
	for i := 1; i < len(targets); i++ {
		for j := i; j > 0 && targets[j] < targets[j-1]; j-- {
			targets[j], targets[j-1] = targets[j-1], targets[j]
		}
	}
	return targets
}

// sendInvalidations multicasts invalidation requests and collects every
// acknowledgement (write-invalidate, §1). By default one physical
// broadcast frame reaches all hosts and the copyset members answer —
// "multicast is used for write invalidation" (§2.2); the target list
// travels in the message so bystanders stay silent. Copysets too large
// for the argument list (or the unicast ablation) fall back to
// individual calls. The local copy, if targeted, is dropped directly.
// Under failure detection, crashed targets are skipped — their copies
// died with them — including targets that die mid-round, in which case
// the round is re-issued to the survivors.
func (m *Module) sendInvalidations(p *sim.Proc, page PageNo, targets []HostID) error {
	if m.cfg.Mutation == MutSkipInvalidation {
		return nil // injected coherence bug: readers keep stale copies
	}
	remote := targets[:0:0]
	for _, h := range targets {
		if h == m.id {
			if lp := m.local[page]; lp != nil {
				lp.access = NoAccess
			}
			continue
		}
		remote = append(remote, h)
	}
	for {
		if m.liveness != nil {
			live := remote[:0]
			for _, h := range remote {
				if !m.liveness.Dead(h) {
					live = append(live, h)
				}
			}
			remote = live
		}
		if len(remote) == 0 {
			return nil
		}
		m.stats.InvalidationsSent += len(remote)
		var err error
		switch {
		case m.cfg.UnicastInvalidate:
			_, err = m.ep.CallAll(p, remote, func(HostID) *proto.Message {
				return &proto.Message{Kind: proto.KindInvalidate, Page: uint32(page)}
			})
		case len(remote) <= proto.MaxArgs:
			args := make([]uint32, len(remote))
			for i, h := range remote {
				args[i] = uint32(h)
			}
			_, err = m.ep.CallMulticast(p, remote, &proto.Message{
				Kind: proto.KindInvalidate,
				Page: uint32(page),
				Args: args,
			})
		default:
			// Copysets too wide for the argument list travel as a host
			// bitmap in the bulk payload: still one physical broadcast
			// (one frame per network segment touched) instead of the
			// per-member unicast storm this case used to fall back to —
			// the multicast-tree path that makes 1024-host copysets
			// affordable.
			// Pooled staging: CallMulticast re-encodes from Data on every
			// retransmission but is done with it once acknowledged.
			bitmap := bufpool.Get((len(m.hosts) + 7) / 8)
			clear(bitmap)
			for _, h := range remote {
				bitmap[int(h)/8] |= 1 << (uint(h) % 8)
			}
			_, err = m.ep.CallMulticast(p, remote, &proto.Message{
				Kind: proto.KindInvalidate,
				Page: uint32(page),
				Data: bitmap,
			})
			bufpool.Put(bitmap)
		}
		if err == nil {
			return nil
		}
		if m.liveness == nil {
			panic(fmt.Sprintf("dsm: host %d invalidating page %d: %v", m.id, page, err))
		}
		// A target died mid-round: its copy died with it. Re-filter and
		// repeat for the survivors; if everyone still looks alive the
		// failure is real.
		stillDead := false
		for _, h := range remote {
			if m.liveness.Dead(h) {
				stillDead = true
				break
			}
		}
		if !stillDead {
			return fmt.Errorf("host %d invalidating page %d: %w", m.id, page, err)
		}
	}
}

// readSource picks the host to serve a read copy: the owner, or — with
// PreferSameKindSource — a copyset member of the requester's machine
// type, which avoids a data conversion (§2.3).
func (m *Module) readSource(ent *mgrEntry, requester HostID) HostID {
	src := ent.owner
	if !m.cfg.PreferSameKindSource {
		return src
	}
	want := m.hosts[requester].Kind
	if m.hosts[src].Kind == want {
		return src
	}
	best := HostID(-1)
	for h := range ent.copyset { // vet:ignore map-order — running min reads the accumulator in its own guard; beyond the prover, but min over a set commutes
		if h == requester || m.hosts[h].Kind != want {
			continue
		}
		if best == -1 || h < best {
			best = h
		}
	}
	if best != -1 && !m.deadHost(best) {
		return best
	}
	return src
}

// serveCopy sends this host's resident copy of the page to the original
// requester as a reliable PageDeliver call that redeems the requester's
// outstanding fault request. For writes, ownership leaves with the data
// and the local copy is invalidated; for reads, the local copy is
// downgraded to read-only (MRSW). If the delivery fails because the
// requester crashed, the previous access right is restored — the
// transfer never happened, and the copy survives for recovery.
func (m *Module) serveCopy(p *sim.Proc, page PageNo, write bool, requester HostID, origReqID uint32) error {
	lp := m.local[page]
	if lp == nil || lp.access == NoAccess {
		if m.liveness != nil {
			// An aborted transfer or a crash-truncated invalidation can
			// leave the manager pointing here without a copy; let the
			// requester time out and re-fault after recovery.
			return fmt.Errorf("host %d asked to serve page %d it does not hold", m.id, page)
		}
		panic(fmt.Sprintf("dsm: host %d asked to serve page %d it does not hold (access %v)",
			m.id, page, m.Access(page)))
	}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.OwnerProcess.Of(m.arch.Kind)))
	used := 0
	if mt, ok := m.meta[page]; ok {
		used = mt.used
	}
	// Staged in a pooled buffer: deliver blocks until the requester has
	// acknowledged (every retransmission re-encodes from it), so it can
	// be recycled as soon as deliver returns.
	data := bufpool.Get(used)
	copy(data, lp.data[:used])
	prev := lp.access
	switch {
	case m.cfg.Mutation == MutDoubleWriterGrant:
		// Injected bug: keep the local copy (and right) the transfer
		// should have consumed — two writable copies can now coexist.
	case write:
		lp.access = NoAccess
	default:
		lp.access = ReadAccess
	}
	err := m.deliver(p, requester, &proto.Message{
		Kind: proto.KindPageDeliver,
		Page: uint32(page),
		Args: []uint32{flagData, origReqID},
		Data: data,
	})
	bufpool.Put(data)
	if err != nil {
		if write && m.cfg.Mutation != MutDoubleWriterGrant && m.deadHost(requester) {
			// A failed WRITE delivery to a requester now declared dead is
			// ambiguous: only the final acknowledgement may have been lost,
			// in which case the requester installed the page and wrote to
			// it before dying. This frame may therefore be stale —
			// restoring it would let later local reads serve old bytes as
			// current. Drop it and let recovery re-own from a surviving
			// copy or declare the page lost.
			lp.access = NoAccess
			return err
		}
		lp.access = prev // the transfer never completed; keep the copy
		return err
	}
	m.stats.PagesServed++
	m.trace("serve", page)
	return nil
}

// bestEffort consumes the error of a fire-and-forget reply toward a
// requester. A requester this host cannot reach recovers on its own —
// it times out and re-faults, or it is itself dead and nothing is
// waiting — so the sender has no handling to add. Funnelling such
// drops through one named sink documents each site by construction
// instead of a per-line vet:ignore err-drop.
func bestEffort(error) {}

// deliver sends a PageDeliver call and waits for its acknowledgement.
func (m *Module) deliver(p *sim.Proc, requester HostID, msg *proto.Message) error {
	if _, err := m.ep.Call(p, requester, msg); err != nil {
		return m.callFailed(err, "host %d delivering page %d to %d", m.id, msg.Page, requester)
	}
	return nil
}

// handleServeRequest is the serving host's side of a manager forward:
// acknowledge receipt (so the manager's call completes), then deliver
// the page to the requester.
func (m *Module) handleServeRequest(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindServeAck, Page: req.Page})
	bestEffort(m.serveCopy(p, PageNo(req.Page), req.Arg(2) == 1, HostID(req.Arg(0)), req.Arg(1)))
}

// handlePageDeliver receives a page body (or upgrade grant) on the
// requester: redeem the original fault request and acknowledge. A
// redeemed body is consumed (and its wire buffer recycled) by
// installBody on the faulting thread; a stale or duplicate delivery is
// recycled here.
func (m *Module) handlePageDeliver(p *sim.Proc, req *proto.Message) {
	// A delivery in flight when this host crashed must not land: redeeming
	// it would wake the faulting thread, which would install the page and
	// let application writes execute on a dead machine — visible to the
	// trace but unrecoverable by the survivors (the serving owner sees the
	// failed ack and keeps its copy).
	m.exitIfCrashed(p)
	if !m.ep.Redeem(req.Arg(1), req) {
		bufpool.Put(req.TakeWire())
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindPageDeliverAck, Page: req.Page})
}

// installBody applies a PageReply on the requester: convert the body if
// it comes from an incompatible machine (§2.3), store it, set the access
// right, and charge the installation cost.
func (m *Module) installBody(p *sim.Proc, page PageNo, resp *proto.Message, write bool) {
	flags := resp.Arg(0)
	lp := m.localPageFor(page)
	switch {
	case flags&flagUpgrade != 0:
		lp.access = WriteAccess
		m.stats.Upgrades++
		m.trace("upgrade", page)
	case flags&flagData != 0:
		data := resp.Data
		srcKind := arch.Kind(resp.SrcArch)
		srcArch, err := arch.ByKind(srcKind)
		if err != nil {
			panic(fmt.Sprintf("dsm: page reply with unknown architecture %d", resp.SrcArch))
		}
		if len(data) > 0 && m.cfg.ConversionEnabled && !srcArch.Compatible(m.arch) &&
			m.cfg.Mutation != MutSkipConversion { // injected bug: foreign bytes kept verbatim
			mt, ok := m.meta[page]
			if !ok {
				panic(fmt.Sprintf("dsm: host %d received data for page %d with no allocation metadata", m.id, page))
			}
			typ := m.cfg.Registry.MustGet(mt.typeID)
			n := len(data) / typ.Size
			p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
			ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(srcKind))
			rep, err := m.cfg.Registry.ConvertRegion(mt.typeID, data[:n*typ.Size], srcArch, m.arch, ptrOff)
			if err != nil {
				panic(fmt.Sprintf("dsm: converting page %d: %v", page, err))
			}
			m.stats.Conversions++
			m.stats.ConvReport.Add(rep)
		}
		copy(lp.data, data)
		if write {
			lp.access = WriteAccess
		} else {
			lp.access = ReadAccess
		}
		m.stats.PagesFetched++
		m.stats.BytesFetched += len(data)
		m.pageFetches[page]++
		m.trace("fetch", page)
	default:
		panic(fmt.Sprintf("dsm: page reply for %d with neither data nor upgrade", page))
	}
	// The body has been converted and copied into the local page; the
	// reply's wire buffer (which Data aliased) can be recycled.
	bufpool.Put(resp.TakeWire())
	p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
	m.checkpoint("page-installed", page)
}

// confirmPatience bounds how many suspicion-timeout rounds a manager
// transaction waits for the requester's installation confirmation. A
// live requester can legitimately never confirm: the *forwarding owner*
// may have crashed after acknowledging the serve order but before
// delivering the page, so the requester never installed anything and is
// itself waiting — on the very transaction lock this wait holds. Waiting
// forever would deadlock the page; after confirmPatience rounds the
// transaction gives up and marks the entry suspect, and the next
// transaction reconciles the bookkeeping against reality (recovery.go).
const confirmPatience = 3

// awaitConfirm parks the manager transaction until the requester reports
// the page installed, keeping per-page transactions strictly serial.
// Under failure detection the park carries a timeout: a requester that
// crashes mid-transfer would otherwise wedge the page's transaction
// lock forever, blocking recovery itself.
func (m *Module) awaitConfirm(p *sim.Proc, ent *mgrEntry, requester HostID) {
	for rounds := 0; !ent.confirmed; rounds++ {
		if m.deadHost(requester) {
			return // requester died mid-transfer; recovery rebuilds the entry
		}
		if m.liveness != nil && rounds >= confirmPatience {
			ent.suspect = true
			ent.suspectHost = requester
			return
		}
		ent.confirmW = p.PrepareWait()
		ent.confirmArmed = true
		if m.liveness != nil {
			p.ParkTimeout(m.cfg.Params.SuspicionTimeout)
		} else {
			p.Park()
		}
		ent.confirmArmed = false
	}
}

// handleOwnerUpdate receives the requester's completion confirmation.
func (m *Module) handleOwnerUpdate(p *sim.Proc, req *proto.Message) {
	page := PageNo(req.Page)
	if m.manager(page) == m.id {
		ent := m.mgrEntryFor(page)
		ent.confirmed = true
		// A confirmation that arrives after the transaction gave up
		// waiting settles the doubt: the transfer did land.
		ent.suspect = false
		if ent.confirmArmed {
			ent.confirmArmed = false
			m.k.Wake(ent.confirmW, sim.WakeSignal)
		}
		m.checkpoint("owner-confirmed", page)
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindOwnerUpdateAck, Page: req.Page})
}

// handleInvalidate discards the local copy of a page (write-invalidate).
// A broadcast invalidation carries its target list — as scalar args for
// small copysets, as a host bitmap in the payload for wide ones; hosts
// not on it are bystanders who heard the frame on the shared medium and
// stay silent.
func (m *Module) handleInvalidate(p *sim.Proc, req *proto.Message) {
	if len(req.Args) > 0 {
		member := false
		for _, a := range req.Args {
			if HostID(a) == m.id {
				member = true
				break
			}
		}
		if !member {
			return
		}
	} else if len(req.Data) > 0 {
		h := int(m.id)
		if h/8 >= len(req.Data) || req.Data[h/8]&(1<<(uint(h)%8)) == 0 {
			return
		}
	}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.InvalidateProcess.Of(m.arch.Kind)))
	if lp := m.local[PageNo(req.Page)]; lp != nil {
		lp.access = NoAccess
	}
	m.stats.InvalidationsReceived++
	m.trace("invalidate", PageNo(req.Page))
	m.checkpoint("invalidated", PageNo(req.Page))
	if m.cfg.Mutation == MutLostAck {
		return // injected bug: the copy is gone but the ack never leaves
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindInvalidateAck, Page: req.Page})
}
