package dsm

// Runtime invariant checking for Li's MRSW write-invalidate protocol.
//
// The protocol's correctness argument (§2 of the paper, and the
// machine-checkable SC invariants of Ekström & Haridi's compositional
// DSM proof) rests on a handful of global invariants that must hold
// whenever a page is quiescent — no transfer transaction in flight:
//
//   1. Unique writer: at most one host holds WriteAccess to a page.
//   2. The writer, if any, is the manager's recorded owner.
//   3. The owner always holds a copy (read or write).
//   4. Every holder is recorded: a host holding a copy is the owner or
//      a copyset member — a stale copy surviving an invalidation is the
//      classic silent coherence bug.
//   5. Allocation metadata is sane: the allocated prefix fits the page
//      and is a whole number of elements, so a conversion on migration
//      covers exactly the allocated data.
//
// An InvariantChecker observes every Module of a cluster and asserts
// these invariants at each protocol transition (fault serviced, page
// installed, invalidation processed, transfer confirmed, update
// sequenced, allocation distributed). It relies on the simulation
// kernel's one-process-at-a-time execution: a checkpoint sees a
// globally consistent snapshot without any locking.

import (
	"fmt"
	"sort"
)

// Violation describes one invariant failure.
type Violation struct {
	// Point is the protocol transition that triggered the check.
	Point string
	// Page is the page whose invariant failed.
	Page PageNo
	// Msg explains the failure.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("dsm: invariant violated at %s, page %d: %s", v.Point, v.Page, v.Msg)
}

// InvariantChecker validates Li's global protocol invariants across all
// modules of a cluster after every protocol transition.
type InvariantChecker struct {
	mods []*Module
	// fail handles a violation; the default panics (so tests trip hard).
	fail func(Violation)
	// checks counts checkpoints executed (tests assert coverage).
	checks int
	// violations counts invariant failures delivered to fail.
	violations int
}

// AttachChecker creates an InvariantChecker over the given modules
// (normally every module of one cluster) and hooks it into each of
// them. Call it once, after all modules are created.
func AttachChecker(mods ...*Module) *InvariantChecker {
	c := &InvariantChecker{mods: mods}
	c.fail = func(v Violation) { panic(v.String()) }
	for _, m := range mods {
		m.check = c
	}
	return c
}

// SetFailHandler replaces the default panic with fn — used by tests
// that deliberately break the protocol and expect the checker to trip.
func (c *InvariantChecker) SetFailHandler(fn func(Violation)) { c.fail = fn }

// Checks returns the number of checkpoints executed so far.
func (c *InvariantChecker) Checks() int { return c.checks }

// Violations returns the number of invariant failures observed.
func (c *InvariantChecker) Violations() int { return c.violations }

// byID returns the module for a host, or nil if it is not observed.
func (c *InvariantChecker) byID(h HostID) *Module {
	for _, m := range c.mods {
		if m.id == h {
			return m
		}
	}
	return nil
}

// report delivers one violation.
func (c *InvariantChecker) report(point string, page PageNo, format string, args ...any) {
	c.violations++
	c.fail(Violation{Point: point, Page: page, Msg: fmt.Sprintf(format, args...)})
}

// at is the checkpoint entry, called from Module hooks after each
// protocol transition concerning page.
func (c *InvariantChecker) at(point string, page PageNo) {
	c.checks++
	c.checkPage(point, page)
}

// CheckAll sweeps every page any module holds or manages — a final
// whole-space audit for test teardown.
func (c *InvariantChecker) CheckAll(point string) {
	set := map[PageNo]struct{}{}
	for _, m := range c.mods {
		for pg := range m.local {
			set[pg] = struct{}{}
		}
		for pg := range m.mgr {
			set[pg] = struct{}{}
		}
		for pg := range m.meta {
			set[pg] = struct{}{}
		}
		for pg := range m.dyn {
			set[pg] = struct{}{}
		}
		for pg := range m.qrm {
			set[pg] = struct{}{}
		}
	}
	pages := make([]PageNo, 0, len(set))
	for pg := range set {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		c.checks++
		c.checkPage(point, pg)
	}
}

// checkPage asserts the global invariants for one page.
func (c *InvariantChecker) checkPage(point string, page PageNo) {
	if len(c.mods) == 0 {
		return
	}
	cfg := c.mods[0].cfg

	// Structural invariants hold in every state, even mid-transaction.
	var writers []HostID
	var holders []HostID
	for _, m := range c.mods {
		if m.crashed {
			continue // a corpse's copies died with it
		}
		lp := m.local[page]
		if lp == nil {
			continue
		}
		if len(lp.data) != cfg.PageSize {
			c.report(point, page, "host %d holds a %d-byte buffer for a %d-byte page",
				m.id, len(lp.data), cfg.PageSize)
		}
		if lp.access == WriteAccess {
			writers = append(writers, m.id)
		}
		if lp.access != NoAccess {
			holders = append(holders, m.id)
		}
		if mt, ok := m.meta[page]; ok {
			if mt.used < 0 || mt.used > cfg.PageSize {
				c.report(point, page, "host %d records %d allocated bytes in a %d-byte page",
					m.id, mt.used, cfg.PageSize)
			}
			if t, ok := cfg.Registry.Get(mt.typeID); ok && t.Size > 0 && mt.used%t.Size != 0 {
				c.report(point, page, "host %d: allocated prefix %d is not whole %s elements (size %d)",
					m.id, mt.used, t.Name, t.Size)
			}
		}
	}
	if c.mods[0].engine.lazyRelease() {
		// Release consistency: multiple writable copies are the design,
		// not a bug — coherence is the model layer's obligation (rc.go),
		// checked offline by the happens-before trace oracle. Only the
		// structural checks above apply.
		return
	}
	if len(writers) > 1 {
		c.report(point, page, "multiple writable copies on hosts %v", writers)
	}

	if c.mods[0].engine.quorumReplicated() {
		c.checkQuorumPage(point, page)
		return
	}

	if c.mods[0].engine.serverOnly() {
		// Central policy: the page lives only at its server; nobody
		// caches. Any copy elsewhere is a protocol leak.
		mgrMod := c.byID(c.mods[0].manager(page))
		for _, h := range holders {
			if mgrMod == nil || h != mgrMod.id {
				c.report(point, page, "host %d caches a copy under the central-server policy", h)
			}
		}
		return
	}

	if c.mods[0].dyn != nil {
		c.checkDynamicPage(point, page, writers, holders)
		return
	}

	// Manager-side invariants are asserted only when the page is
	// quiescent: its transfer lock free, no confirmation outstanding.
	mgrMod := c.byID(c.mods[0].manager(page))
	if mgrMod == nil || mgrMod.crashed {
		return // the manager's records died with it (unavailable but isolated)
	}
	ent := mgrMod.mgr[page]
	if ent == nil {
		return // never faulted through its manager yet
	}
	if ent.lock.Count() == 0 {
		return // transfer transaction in flight: transient states allowed
	}
	if ent.suspect {
		// The last transfer was never confirmed: the entry is known to be
		// possibly ahead of reality until the next transaction reconciles
		// it against the unconfirmed requester.
		return
	}
	if ent.lost {
		// A lost page must really be gone: any surviving copy means the
		// manager gave up while a recovery source existed.
		for _, h := range holders {
			c.report(point, page, "page is declared lost but host %d still holds a copy", h)
		}
		return
	}

	owner := c.byID(ent.owner)
	if owner == nil {
		c.report(point, page, "manager %d records unknown owner %d", mgrMod.id, ent.owner)
		return
	}
	if owner.crashed || mgrMod.deadHost(ent.owner) {
		return // owner crashed: state is transient until the recovery sweep
	}
	if owner.Access(page) == NoAccess {
		c.report(point, page, "owner %d holds no copy", ent.owner)
	}
	for _, w := range writers {
		if w != ent.owner {
			c.report(point, page, "host %d holds the writable copy but manager %d records owner %d",
				w, mgrMod.id, ent.owner)
		}
	}
	for _, h := range holders {
		if h == ent.owner {
			continue
		}
		if _, in := ent.copyset[h]; !in {
			c.report(point, page, "host %d holds a copy but is neither owner nor in the copyset %v (stale copy — missed invalidation?)",
				h, copysetList(ent))
		}
	}
}

// checkQuorumPage asserts the SC-ABD engine's structural invariants for
// one page: every replica buffer is page-sized, every version tag names
// a known writer, and the replicated allocation metadata is sane.
// Version agreement is deliberately NOT asserted — replicas legitimately
// diverge between quorum rounds (only a majority need hold the newest
// version); the SC trace checker is what audits the values reads
// actually return.
func (c *InvariantChecker) checkQuorumPage(point string, page PageNo) {
	cfg := c.mods[0].cfg
	for _, m := range c.mods {
		if m.crashed {
			continue
		}
		qp := m.qrm[page]
		if qp == nil {
			continue
		}
		if len(qp.data) != cfg.PageSize {
			c.report(point, page, "host %d holds a %d-byte replica of a %d-byte page",
				m.id, len(qp.data), cfg.PageSize)
		}
		if qp.tag != (quorumTag{}) && c.byID(qp.tag.host) == nil {
			c.report(point, page, "host %d's replica tag names unknown writer %d",
				m.id, qp.tag.host)
		}
		if mt, ok := m.meta[page]; ok {
			if mt.used < 0 || mt.used > cfg.PageSize {
				c.report(point, page, "host %d records %d allocated bytes in a %d-byte page",
					m.id, mt.used, cfg.PageSize)
			}
			if t, ok := cfg.Registry.Get(mt.typeID); ok && t.Size > 0 && mt.used%t.Size != 0 {
				c.report(point, page, "host %d: allocated prefix %d is not whole %s elements (size %d)",
					m.id, mt.used, t.Name, t.Size)
			}
		}
	}
}

// checkDynamicPage asserts the dynamic distributed manager's invariants
// for one page: there is no manager table, so the ownership and copyset
// invariants are checked against the owner's own records, and the
// probable-owner graph replaces invariant 2 — from every live host, the
// hint chain must reach the owner within N hops (Li & Hudak's bound).
func (c *InvariantChecker) checkDynamicPage(point string, page PageNo, writers, holders []HostID) {
	var owners []*Module
	busy := false
	anyCrashed := false
	for _, m := range c.mods {
		if m.crashed {
			anyCrashed = true
			continue
		}
		dp := m.dyn[page]
		if dp == nil {
			continue
		}
		if dp.lock.Count() == 0 || dp.recLock.Count() == 0 {
			busy = true // a transaction or recovery holds the page
		}
		if dp.owned {
			owners = append(owners, m)
		}
	}
	if busy {
		// A transaction or recovery in flight: the new owner records
		// itself on redeeming the delivery, the old owner relinquishes
		// only once the delivery is acknowledged, and the server's page
		// lock is held across that whole window — so ownership overlap
		// is legitimate exactly while some lock is taken.
		return
	}
	if len(owners) > 1 {
		ids := make([]HostID, len(owners))
		for i, m := range owners {
			ids[i] = m.id
		}
		c.report(point, page, "multiple dynamic owners on hosts %v", ids)
	}
	if len(owners) != 1 {
		// Ownerless (mid-crash, lost, or pre-recovery): only the
		// structural invariants apply. A quiescent wedged state surfaces
		// as a timeout or model-checker deadlock, not here.
		return
	}
	own := owners[0]
	dp := own.dyn[page]
	if own.Access(page) == NoAccess {
		c.report(point, page, "dynamic owner %d holds no copy", own.id)
	}
	for _, w := range writers {
		if w != own.id {
			c.report(point, page, "host %d holds the writable copy but host %d is the recorded dynamic owner",
				w, own.id)
		}
	}
	for _, h := range holders {
		if h == own.id {
			continue
		}
		if _, in := dp.copyset[h]; !in {
			c.report(point, page, "host %d holds a copy but is neither owner nor in owner %d's copyset %v (stale copy — missed invalidation?)",
				h, own.id, dynCopysetList(dp, own.id))
		}
	}
	if anyCrashed {
		return // chains through corpses are repaired lazily on demand
	}
	for _, m := range c.mods {
		hops := 0
		cur := m
		for cur.id != own.id {
			hint := HostID(0) // a host that never faulted points at the allocation manager
			if d := cur.dyn[page]; d != nil {
				hint = d.probOwner
			}
			next := c.byID(hint)
			if next == nil {
				c.report(point, page, "host %d's probable-owner hint names unknown host %d", cur.id, hint)
				break
			}
			hops++
			if hops > len(c.mods) {
				c.report(point, page, "probable-owner chain from host %d does not reach owner %d within %d hops",
					m.id, own.id, len(c.mods))
				break
			}
			cur = next
		}
	}
}

// copysetList renders a copyset deterministically for messages.
func copysetList(ent *mgrEntry) []HostID {
	out := make([]HostID, 0, len(ent.copyset))
	for h := range ent.copyset {
		out = append(out, h)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
