package dsm

// Regression tests for span validation in requiredPages/EnsureAccess:
// zero-length spans, spans straddling page boundaries, spans ending
// exactly at the end of the shared space, and — the original bug —
// spans whose addr+n wraps the 32-bit address and used to alias low
// pages instead of being rejected.

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sim"
)

func TestRequiredPagesSpanValidation(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	m := r.mods[0]
	space := Addr(m.cfg.SpaceSize)

	cases := []struct {
		name    string
		addr    Addr
		n       int
		wantErr string // substring; "" means the span must be accepted
	}{
		{"zero-length at origin", 0, 0, ""},
		{"zero-length mid-space", space / 2, 0, ""},
		{"zero-length at end of space", space, 0, ""},
		{"single byte at origin", 0, 1, ""},
		{"last byte of space", space - 1, 1, ""},
		{"final page exactly", space - Addr(m.cfg.PageSize), m.cfg.PageSize, ""},
		{"whole space", 0, int(space), ""},
		{"negative length", 0, -1, "negative length"},
		{"one byte past end", space - 3, 4, "beyond"},
		{"starts at end", space, 1, "beyond"},
		{"starts past end", space + 100, 1, "beyond"},
		{"addr+n wraps uint32", 0xFFFFFFF0, 0x20, "beyond"},
		{"max addr, huge n", 0xFFFFFFFF, 1<<31 - 1, "beyond"},
	}
	for _, tc := range cases {
		pages, err := m.requiredPages(tc.addr, tc.n)
		if tc.wantErr != "" {
			if err == nil {
				t.Errorf("%s: requiredPages(%d, %d) accepted, want error containing %q (pages %v)",
					tc.name, tc.addr, tc.n, tc.wantErr, pages)
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: requiredPages(%d, %d) rejected: %v", tc.name, tc.addr, tc.n, err)
			continue
		}
		if tc.n == 0 {
			if len(pages) != 0 {
				t.Errorf("%s: zero-length span wants no pages, got %v", tc.name, pages)
			}
			continue
		}
		// The (group-expanded) page list must cover the span and stay
		// inside the space.
		if len(pages) == 0 {
			t.Errorf("%s: no pages for non-empty span", tc.name)
			continue
		}
		first, last := pages[0], pages[len(pages)-1]
		if first > m.PageOf(tc.addr) || last < m.PageOf(tc.addr+Addr(tc.n)-1) {
			t.Errorf("%s: pages [%d,%d] do not cover span [%d,%d)", tc.name, first, last, tc.addr, int(tc.addr)+tc.n)
		}
		if max := PageNo(m.NumPages() - 1); last > max {
			t.Errorf("%s: page %d past end of space (max %d)", tc.name, last, max)
		}
	}
}

func TestRequiredPagesStraddlesPageBoundary(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun}) // Sun: VM page == DSM page, group size 1
	m := r.mods[0]
	ps := Addr(m.cfg.PageSize)
	pages, err := m.requiredPages(ps-2, 4) // 2 bytes on page 0, 2 on page 1
	if err != nil {
		t.Fatalf("boundary-straddling span rejected: %v", err)
	}
	if len(pages) != 2 || pages[0] != 0 || pages[1] != 1 {
		t.Fatalf("requiredPages(%d, 4) = %v, want [0 1]", ps-2, pages)
	}
}

func TestEnsureAccessZeroLengthIsFree(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		m := r.mods[1]
		for _, addr := range []Addr{0, Addr(m.cfg.SpaceSize) / 2, Addr(m.cfg.SpaceSize)} {
			if err := m.EnsureAccess(p, addr, 0, true); err != nil {
				t.Errorf("zero-length access at %d: %v", addr, err)
			}
		}
		st := m.Stats()
		if st.ReadFaults != 0 || st.WriteFaults != 0 {
			t.Errorf("zero-length accesses faulted: %d read, %d write", st.ReadFaults, st.WriteFaults)
		}
	})
}

func TestEnsureAccessRejectsOutOfRangeSpans(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		m := r.mods[0]
		space := Addr(m.cfg.SpaceSize)
		for _, tc := range []struct {
			addr Addr
			n    int
		}{
			{space - 3, 4},     // end-of-space overrun
			{0, -8},            // negative length
			{0xFFFFFFF0, 0x20}, // addr+n wraps the 32-bit address
		} {
			if err := m.EnsureAccess(p, tc.addr, tc.n, false); err == nil {
				t.Errorf("EnsureAccess(%d, %d) accepted an invalid span", tc.addr, tc.n)
			}
		}
		st := m.Stats()
		if st.ReadFaults != 0 || st.WriteFaults != 0 {
			t.Errorf("rejected spans still faulted: %d read, %d write", st.ReadFaults, st.WriteFaults)
		}
	})
}

func TestEnsureAccessAcrossPageBoundary(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun})
	r.run("main", func(p *sim.Proc) {
		m0, m1 := r.mods[0], r.mods[1]
		perPage := m0.cfg.PageSize / 4
		addr, err := m0.Alloc(p, conv.Int32, 2*perPage) // exactly two pages
		if err != nil {
			t.Error(err)
			return
		}
		vals := make([]int32, 2*perPage)
		for i := range vals {
			vals[i] = int32(i + 1)
		}
		m0.WriteInt32s(p, addr, vals)

		// A read span covering the last element of the first page and
		// the first of the second must make both pages resident.
		straddle := addr + Addr(m0.cfg.PageSize) - 4
		if err := m1.EnsureAccess(p, straddle, 8, false); err != nil {
			t.Errorf("boundary-straddling access: %v", err)
			return
		}
		p0, p1 := m1.PageOf(straddle), m1.PageOf(straddle+7)
		if p0 == p1 {
			t.Fatalf("span does not straddle: both bytes on page %d", p0)
		}
		for _, pg := range []PageNo{p0, p1} {
			if !m1.hasAccess(pg, false) {
				t.Errorf("page %d not readable after straddling EnsureAccess", pg)
			}
		}
		got := make([]int32, 2)
		m1.ReadInt32s(p, straddle, got)
		if got[0] != vals[perPage-1] || got[1] != vals[perPage] {
			t.Errorf("straddling read = %v, want [%d %d]", got, vals[perPage-1], vals[perPage])
		}
	})
}
