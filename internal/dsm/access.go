package dsm

import (
	"fmt"

	"repro/internal/conv"
	"repro/internal/sim"
)

// Typed accessors. Applications read and write shared memory through
// these; each call checks access rights on the spanned pages (the
// software analogue of the MMU check) and faults in whatever is missing,
// then moves bytes in the host's native representation. Element values
// therefore live in memory exactly as the paper's machines stored them —
// big-endian IEEE on a Sun, little-endian VAX-float on a Firefly — and
// only page migration converts them.
//
// Each accessor exists in two forms. The plain form (ReadInt32s,
// WriteBytes, ...) panics if the access cannot complete — correct for
// fault-free runs, where any failure is a simulation bug. The E-suffixed
// form returns an error instead, so applications running under failure
// detection can observe ErrHostDown / ErrPageLost and continue working
// on pages that survive.

// checkTyped validates that [addr, addr+size*count) lies in pages
// allocated for the expected type and does not straddle elements across
// pages. Violations are programming errors in the application and panic.
func (m *Module) checkTyped(addr Addr, id conv.TypeID, size, count int) {
	t := m.cfg.Registry.MustGet(id)
	if t.Size != size {
		panic(fmt.Sprintf("dsm: type %s has size %d, accessor uses %d", t.Name, t.Size, size))
	}
	end := int(addr) + size*count
	if end > m.cfg.SpaceSize {
		panic(fmt.Sprintf("dsm: access [%d,%d) beyond space of %d bytes", addr, end, m.cfg.SpaceSize))
	}
	for pg := m.PageOf(addr); pg <= m.PageOf(Addr(end-1)); pg++ {
		mt, ok := m.meta[pg]
		if !ok {
			panic(fmt.Sprintf("dsm: access to unallocated page %d", pg))
		}
		if mt.typeID != id {
			have := m.cfg.Registry.MustGet(mt.typeID)
			panic(fmt.Sprintf("dsm: page %d holds %s data, accessed as %s", pg, have.Name, t.Name))
		}
		pageStart := int(pg) * m.cfg.PageSize
		lo := max(int(addr), pageStart)
		hi := min(end, pageStart+m.cfg.PageSize)
		if hi > pageStart+mt.used {
			panic(fmt.Sprintf("dsm: access [%d,%d) beyond the %d allocated bytes of page %d", lo, hi, mt.used, pg))
		}
		if (lo-pageStart)%size != 0 {
			panic(fmt.Sprintf("dsm: access at %d not aligned to %s elements", lo, t.Name))
		}
	}
}

// mustOK converts an access error into the pre-fault-tolerance panic:
// the plain accessors keep their historical contract that any failure is
// a simulation bug.
func (m *Module) mustOK(err error) {
	if err != nil {
		panic(fmt.Sprintf("dsm: host %d: %v", m.id, err))
	}
}

// forEachSpan walks the per-page byte spans of [addr, addr+n), handing
// the local page buffer segment to fn. Access must already be ensured.
func (m *Module) forEachSpan(addr Addr, n int, fn func(seg []byte, off int)) {
	end := int(addr) + n
	off := 0
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		lp := m.local[pg]
		fn(lp.data[pos-pageStart:hi-pageStart], off)
		off += hi - pos
		pos = hi
	}
}

// ReadBytes copies n raw bytes at addr into buf (Char pages).
func (m *Module) ReadBytes(p *sim.Proc, addr Addr, buf []byte) {
	m.mustOK(m.ReadBytesE(p, addr, buf))
}

// ReadBytesE is ReadBytes returning crash errors.
func (m *Module) ReadBytesE(p *sim.Proc, addr Addr, buf []byte) error {
	m.checkTyped(addr, conv.Char, 1, len(buf))
	return m.readRegion(p, addr, len(buf), func(seg []byte, off int) {
		copy(buf[off:], seg)
	})
}

// WriteBytes stores raw bytes at addr (Char pages).
func (m *Module) WriteBytes(p *sim.Proc, addr Addr, data []byte) {
	m.mustOK(m.WriteBytesE(p, addr, data))
}

// WriteBytesE is WriteBytes returning crash errors.
func (m *Module) WriteBytesE(p *sim.Proc, addr Addr, data []byte) error {
	m.checkTyped(addr, conv.Char, 1, len(data))
	return m.writeRegion(p, addr, len(data), func(seg []byte, off int) {
		copy(seg, data[off:])
	})
}

// ReadInt32 loads one int32.
func (m *Module) ReadInt32(p *sim.Proc, addr Addr) int32 {
	var v [1]int32
	m.ReadInt32s(p, addr, v[:])
	return v[0]
}

// ReadInt32E is ReadInt32 returning crash errors.
func (m *Module) ReadInt32E(p *sim.Proc, addr Addr) (int32, error) {
	var v [1]int32
	err := m.ReadInt32sE(p, addr, v[:])
	return v[0], err
}

// WriteInt32 stores one int32.
func (m *Module) WriteInt32(p *sim.Proc, addr Addr, v int32) {
	m.WriteInt32s(p, addr, []int32{v})
}

// WriteInt32E is WriteInt32 returning crash errors.
func (m *Module) WriteInt32E(p *sim.Proc, addr Addr, v int32) error {
	return m.WriteInt32sE(p, addr, []int32{v})
}

// ReadInt32s loads consecutive int32 elements starting at addr.
func (m *Module) ReadInt32s(p *sim.Proc, addr Addr, dst []int32) {
	m.mustOK(m.ReadInt32sE(p, addr, dst))
}

// ReadInt32sE is ReadInt32s returning crash errors.
func (m *Module) ReadInt32sE(p *sim.Proc, addr Addr, dst []int32) error {
	m.checkTyped(addr, conv.Int32, 4, len(dst))
	i := 0
	return m.readRegion(p, addr, 4*len(dst), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 4 {
			dst[i] = conv.GetInt32(m.arch, seg[o:])
			i++
		}
	})
}

// WriteInt32s stores consecutive int32 elements starting at addr.
func (m *Module) WriteInt32s(p *sim.Proc, addr Addr, src []int32) {
	m.mustOK(m.WriteInt32sE(p, addr, src))
}

// WriteInt32sE is WriteInt32s returning crash errors.
func (m *Module) WriteInt32sE(p *sim.Proc, addr Addr, src []int32) error {
	m.checkTyped(addr, conv.Int32, 4, len(src))
	i := 0
	return m.writeRegion(p, addr, 4*len(src), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 4 {
			conv.PutInt32(m.arch, seg[o:], src[i])
			i++
		}
	})
}

// ReadInt16s loads consecutive int16 elements starting at addr.
func (m *Module) ReadInt16s(p *sim.Proc, addr Addr, dst []int16) {
	m.mustOK(m.ReadInt16sE(p, addr, dst))
}

// ReadInt16sE is ReadInt16s returning crash errors.
func (m *Module) ReadInt16sE(p *sim.Proc, addr Addr, dst []int16) error {
	m.checkTyped(addr, conv.Int16, 2, len(dst))
	i := 0
	return m.readRegion(p, addr, 2*len(dst), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 2 {
			dst[i] = conv.GetInt16(m.arch, seg[o:])
			i++
		}
	})
}

// WriteInt16s stores consecutive int16 elements starting at addr.
func (m *Module) WriteInt16s(p *sim.Proc, addr Addr, src []int16) {
	m.mustOK(m.WriteInt16sE(p, addr, src))
}

// WriteInt16sE is WriteInt16s returning crash errors.
func (m *Module) WriteInt16sE(p *sim.Proc, addr Addr, src []int16) error {
	m.checkTyped(addr, conv.Int16, 2, len(src))
	i := 0
	return m.writeRegion(p, addr, 2*len(src), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 2 {
			conv.PutInt16(m.arch, seg[o:], src[i])
			i++
		}
	})
}

// ReadFloat32s loads consecutive float32 elements starting at addr.
func (m *Module) ReadFloat32s(p *sim.Proc, addr Addr, dst []float32) {
	m.mustOK(m.ReadFloat32sE(p, addr, dst))
}

// ReadFloat32sE is ReadFloat32s returning crash errors.
func (m *Module) ReadFloat32sE(p *sim.Proc, addr Addr, dst []float32) error {
	m.checkTyped(addr, conv.Float32, 4, len(dst))
	i := 0
	return m.readRegion(p, addr, 4*len(dst), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 4 {
			dst[i] = conv.GetFloat32(m.arch, seg[o:])
			i++
		}
	})
}

// WriteFloat32s stores consecutive float32 elements starting at addr.
func (m *Module) WriteFloat32s(p *sim.Proc, addr Addr, src []float32) {
	m.mustOK(m.WriteFloat32sE(p, addr, src))
}

// WriteFloat32sE is WriteFloat32s returning crash errors.
func (m *Module) WriteFloat32sE(p *sim.Proc, addr Addr, src []float32) error {
	m.checkTyped(addr, conv.Float32, 4, len(src))
	i := 0
	return m.writeRegion(p, addr, 4*len(src), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 4 {
			conv.PutFloat32(m.arch, seg[o:], src[i])
			i++
		}
	})
}

// ReadFloat64s loads consecutive float64 elements starting at addr.
func (m *Module) ReadFloat64s(p *sim.Proc, addr Addr, dst []float64) {
	m.mustOK(m.ReadFloat64sE(p, addr, dst))
}

// ReadFloat64sE is ReadFloat64s returning crash errors.
func (m *Module) ReadFloat64sE(p *sim.Proc, addr Addr, dst []float64) error {
	m.checkTyped(addr, conv.Float64, 8, len(dst))
	i := 0
	return m.readRegion(p, addr, 8*len(dst), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 8 {
			dst[i] = conv.GetFloat64(m.arch, seg[o:])
			i++
		}
	})
}

// WriteFloat64s stores consecutive float64 elements starting at addr.
func (m *Module) WriteFloat64s(p *sim.Proc, addr Addr, src []float64) {
	m.mustOK(m.WriteFloat64sE(p, addr, src))
}

// WriteFloat64sE is WriteFloat64s returning crash errors.
func (m *Module) WriteFloat64sE(p *sim.Proc, addr Addr, src []float64) error {
	m.checkTyped(addr, conv.Float64, 8, len(src))
	i := 0
	return m.writeRegion(p, addr, 8*len(src), func(seg []byte, _ int) {
		for o := 0; o < len(seg); o += 8 {
			conv.PutFloat64(m.arch, seg[o:], src[i])
			i++
		}
	})
}

// ReadPointer loads a DSM pointer, returning the space-relative Addr.
// The stored form is the host-virtual address (base + offset); a stored
// zero is the null pointer, reported by ok=false.
func (m *Module) ReadPointer(p *sim.Proc, addr Addr) (Addr, bool) {
	target, ok, err := m.ReadPointerE(p, addr)
	m.mustOK(err)
	return target, ok
}

// ReadPointerE is ReadPointer returning crash errors.
func (m *Module) ReadPointerE(p *sim.Proc, addr Addr) (Addr, bool, error) {
	m.checkTyped(addr, conv.Pointer, 4, 1)
	var raw uint32
	err := m.readRegion(p, addr, 4, func(seg []byte, _ int) {
		raw = conv.GetPointer(m.arch, seg)
	})
	if err != nil || raw == 0 {
		return 0, false, err
	}
	return Addr(raw - m.Base()), true, nil
}

// WritePointer stores a DSM pointer to target; ok=false stores null.
func (m *Module) WritePointer(p *sim.Proc, addr Addr, target Addr, ok bool) {
	m.mustOK(m.WritePointerE(p, addr, target, ok))
}

// WritePointerE is WritePointer returning crash errors.
func (m *Module) WritePointerE(p *sim.Proc, addr Addr, target Addr, ok bool) error {
	m.checkTyped(addr, conv.Pointer, 4, 1)
	raw := uint32(0)
	if ok {
		raw = m.Base() + uint32(target)
	}
	return m.writeRegion(p, addr, 4, func(seg []byte, _ int) {
		conv.PutPointer(m.arch, seg, raw)
	})
}

// AtomicSwapInt32 atomically exchanges the int32 at addr with v and
// returns the previous value. Atomicity holds because the host keeps
// write ownership from the access check to the store without yielding.
//
// This is the §2.2 anti-pattern made available on purpose: building
// locks from atomic operations on shared memory locations "would lead
// to repeated movement of (large) DSM pages between the hosts" — which
// is exactly why Mermaid provides the separate distributed
// synchronization facility. The spinlock-vs-semaphore experiment uses
// this to reproduce that comparison.
func (m *Module) AtomicSwapInt32(p *sim.Proc, addr Addr, v int32) int32 {
	old, err := m.AtomicSwapInt32E(p, addr, v)
	m.mustOK(err)
	return old
}

// AtomicSwapInt32E is AtomicSwapInt32 returning crash errors.
func (m *Module) AtomicSwapInt32E(p *sim.Proc, addr Addr, v int32) (int32, error) {
	m.checkTyped(addr, conv.Int32, 4, 1)
	return m.engine.atomicSwap(p, addr, v)
}

// ReadStruct copies the raw native bytes of count elements of a
// user-registered compound type into buf (len must be count×size).
// Field decoding is up to the caller via the conv helpers.
func (m *Module) ReadStruct(p *sim.Proc, addr Addr, id conv.TypeID, buf []byte) {
	m.mustOK(m.ReadStructE(p, addr, id, buf))
}

// ReadStructE is ReadStruct returning crash errors.
func (m *Module) ReadStructE(p *sim.Proc, addr Addr, id conv.TypeID, buf []byte) error {
	t := m.cfg.Registry.MustGet(id)
	if len(buf)%t.Size != 0 {
		panic(fmt.Sprintf("dsm: buffer of %d bytes not a multiple of %s size %d", len(buf), t.Name, t.Size))
	}
	m.checkTyped(addr, id, t.Size, len(buf)/t.Size)
	return m.readRegion(p, addr, len(buf), func(seg []byte, off int) {
		copy(buf[off:], seg)
	})
}

// WriteStruct stores raw native bytes of a user-registered compound type.
func (m *Module) WriteStruct(p *sim.Proc, addr Addr, id conv.TypeID, data []byte) {
	m.mustOK(m.WriteStructE(p, addr, id, data))
}

// WriteStructE is WriteStruct returning crash errors.
func (m *Module) WriteStructE(p *sim.Proc, addr Addr, id conv.TypeID, data []byte) error {
	t := m.cfg.Registry.MustGet(id)
	if len(data)%t.Size != 0 {
		panic(fmt.Sprintf("dsm: buffer of %d bytes not a multiple of %s size %d", len(data), t.Name, t.Size))
	}
	m.checkTyped(addr, id, t.Size, len(data)/t.Size)
	return m.writeRegion(p, addr, len(data), func(seg []byte, off int) {
		copy(seg, data[off:])
	})
}
