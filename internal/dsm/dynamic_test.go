package dsm

// Tests for the dynamic distributed manager (dynamic.go): basic
// coherence through forwarded requests, hint compression, and the
// probable-owner chain-length bound — Li & Hudak prove a request
// reaches the owner within N-1 forwards, and the worst-case walk here
// pins the reachable maximum at N-2 for our read-then-upgrade pattern.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/model"
	"repro/internal/sim"
)

func withDirectory(d Directory) rigOpt {
	return func(c *Config) { c.Directory = d }
}

func TestDynamicDirectoryValidate(t *testing.T) {
	params := model.Default()
	base := Config{
		PageSize:  8192,
		SpaceSize: 1 << 20,
		Registry:  conv.NewRegistry(),
		Params:    &params,
		Bases:     DefaultBases(),
	}
	bad := base
	bad.Directory = DirDynamic
	bad.Policy = PolicyCentral
	if err := bad.Validate(); err == nil {
		t.Error("dynamic directory accepted under the central-server policy")
	}
	bad = base
	bad.Directory = DirDynamic
	bad.CentralManager = true
	if err := bad.Validate(); err == nil {
		t.Error("dynamic directory accepted together with CentralManager")
	}
	good := base
	good.Directory = DirDynamic
	if err := good.Validate(); err != nil {
		t.Errorf("dynamic MRSW config rejected: %v", err)
	}
}

// TestDynamicBasicCoherence moves one page's ownership through three
// hosts of two architectures: forwarded reads, an in-place replica
// upgrade, and hint compression, with the invariant checker auditing
// the hint graph at every transition.
func TestDynamicBasicCoherence(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Sun}, withDirectory(DirDynamic))
	r.run("main", func(p *sim.Proc) {
		x, err := r.mods[0].Alloc(p, conv.Int32, 8)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[1].WriteInt32(p, x, 11) // ownership 0→1
		if got := r.mods[2].ReadInt32(p, x); got != 11 {
			t.Errorf("forwarded read = %d, want 11", got)
		}
		r.mods[2].WriteInt32(p, x, 22) // replica upgrade at owner 1, handoff 1→2
		if got := r.mods[1].ReadInt32(p, x); got != 22 {
			t.Errorf("read after upgrade = %d, want 22", got)
		}
		if got := r.mods[0].ReadInt32(p, x); got != 22 {
			t.Errorf("chased read = %d, want 22", got)
		}
		if hint, owned := r.mods[2].ProbableOwner(r.mods[2].PageOf(x)); !owned || hint != 2 {
			t.Errorf("host 2 after its write: hint=%d owned=%v, want self-owned", hint, owned)
		}
		if hint, owned := r.mods[1].ProbableOwner(r.mods[1].PageOf(x)); owned || hint != 2 {
			t.Errorf("host 1 after handoff: hint=%d owned=%v, want hint 2, not owned", hint, owned)
		}
	})
}

// TestDynamicChainWorstCase drives the longest probable-owner chain the
// protocol can build without crashes and asserts Li & Hudak's bound.
// Ownership walks 0→1→…→N-1 by read-then-upgrade: each fresh host k
// first reads — its request enters at host 0 (the initial hint) and is
// forwarded down the never-compressed read chain 0→1→…→(k-1), k-1 hops
// — then upgrades its replica in place, taking ownership directly from
// the host that just served it. The longest chase is therefore N-2
// forwards, strictly under the N-1 bound, and the total forward count
// is the triangular number (N-2)(N-1)/2.
func TestDynamicChainWorstCase(t *testing.T) {
	const n = 6
	kinds := make([]arch.Kind, n)
	for i := range kinds {
		kinds[i] = arch.Sun
	}
	r := newRig(t, kinds, withDirectory(DirDynamic))
	r.run("main", func(p *sim.Proc) {
		x, err := r.mods[0].Alloc(p, conv.Int32, 8)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[1].WriteInt32(p, x, 1) // ownership 0→1, host 0's hint compressed to 1
		for k := 2; k < n; k++ {
			if got := r.mods[k].ReadInt32(p, x); got != int32(k-1) {
				t.Errorf("host %d read = %d, want %d", k, got, k-1)
			}
			r.mods[k].WriteInt32(p, x, int32(k)) // in-place upgrade: ownership (k-1)→k
		}
		if got := r.mods[n-1].ReadInt32(p, x); got != n-1 {
			t.Errorf("final value = %d, want %d", got, n-1)
		}
	})

	maxChain, forwards, serves, hops := 0, 0, 0, 0
	for i, m := range r.mods {
		s := m.Stats()
		if s.ChainMax > maxChain {
			maxChain = s.ChainMax
		}
		forwards += s.Forwards
		serves += s.ChainServes
		hops += s.ChainHops
		t.Logf("host %d: forwards=%d chainServes=%d chainHops=%d chainMax=%d", i, s.Forwards, s.ChainServes, s.ChainHops, s.ChainMax)
	}
	if want := n - 2; maxChain != want {
		t.Errorf("longest chain = %d forwards, want %d (N-2 for the read-then-upgrade walk)", maxChain, want)
	}
	if maxChain > n-1 {
		t.Errorf("chain of %d forwards exceeds Li & Hudak's N-1 bound (N=%d)", maxChain, n)
	}
	if want := (n - 2) * (n - 1) / 2; forwards != want {
		t.Errorf("total forwards = %d, want triangular %d", forwards, want)
	}
	if forwards != hops {
		t.Errorf("forwards issued (%d) disagree with hops observed at owners (%d)", forwards, hops)
	}
	if serves == 0 {
		t.Error("no owner-side chain serves recorded")
	}
}

// TestDynamicManyPagesManyHosts stress-mixes forwarded reads and
// upgrade writes over several pages so hint graphs of different shapes
// coexist, and cross-checks final contents.
func TestDynamicManyPagesManyHosts(t *testing.T) {
	const n, pages = 4, 3
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Sun, arch.Firefly}
	r := newRig(t, kinds, withDirectory(DirDynamic))
	r.run("main", func(p *sim.Proc) {
		addrs := make([]Addr, pages)
		for i := range addrs {
			a, err := r.mods[0].Alloc(p, conv.Int32, 2048)
			if err != nil {
				t.Error(err)
				return
			}
			addrs[i] = a
		}
		for round := 0; round < 3; round++ {
			for pg, a := range addrs {
				w := (round + pg) % n
				r.mods[w].WriteInt32(p, a+Addr(4*round), int32(100*round+pg))
				rd := (round + pg + 1) % n
				if got := r.mods[rd].ReadInt32(p, a+Addr(4*round)); got != int32(100*round+pg) {
					t.Errorf("round %d page %d: read = %d, want %d", round, pg, got, 100*round+pg)
				}
			}
		}
		for pg, a := range addrs {
			for round := 0; round < 3; round++ {
				if got := r.mods[0].ReadInt32(p, a+Addr(4*round)); got != int32(100*round+pg) {
					t.Errorf("final page %d round %d = %d, want %d", pg, round, got, 100*round+pg)
				}
			}
		}
	})
}

// TestDynamicManagerPanics pins the contract that the dynamic directory
// has no fixed manager mapping.
func TestDynamicManagerPanics(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun}, withDirectory(DirDynamic))
	defer func() {
		if recover() == nil {
			t.Error("Manager() under the dynamic directory did not panic")
		}
	}()
	_ = r.mods[0].Manager(0)
}

// TestDynamicStateHashCoversHints pins that probable-owner state is part
// of the model checker's fingerprint: two rigs differing only in hint
// graphs must hash differently.
func TestDynamicStateHashCoversHints(t *testing.T) {
	build := func(extraRead bool) string {
		r := newRig(t, []arch.Kind{arch.Sun, arch.Sun, arch.Sun}, withDirectory(DirDynamic))
		r.run("main", func(p *sim.Proc) {
			x, err := r.mods[0].Alloc(p, conv.Int32, 8)
			if err != nil {
				t.Error(err)
				return
			}
			r.mods[1].WriteInt32(p, x, 1)
			if extraRead {
				_ = r.mods[2].ReadInt32(p, x) // adds host 2 to the copyset, moves its hint
			}
		})
		h := fnv.New64a()
		for _, m := range r.mods {
			m.WriteStateHash(h)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	if a, b := build(false), build(true); a == b {
		t.Error("state hash ignores dynamic hint/copyset differences")
	}
}
