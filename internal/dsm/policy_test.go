package dsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sim"
)

func withPolicy(pol Policy) rigOpt {
	return func(c *Config) { c.Policy = pol }
}

// policyRoundTrip checks basic cross-architecture correctness under a
// given coherence policy.
func policyRoundTrip(t *testing.T, pol Policy) {
	t.Helper()
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(pol))
	r.run("main", func(p *sim.Proc) {
		ints, err := r.mods[0].Alloc(p, conv.Int32, 300)
		if err != nil {
			t.Error(err)
			return
		}
		doubles, err := r.mods[0].Alloc(p, conv.Float64, 50)
		if err != nil {
			t.Error(err)
			return
		}
		vals := make([]int32, 300)
		for i := range vals {
			vals[i] = int32(i*7 - 1000)
		}
		dv := []float64{3.14159, -2.5, 1e100, 0, 42}
		r.mods[0].WriteInt32s(p, ints, vals)
		r.mods[0].WriteFloat64s(p, doubles, dv)

		for h := 1; h <= 2; h++ {
			got := make([]int32, 300)
			r.mods[h].ReadInt32s(p, ints, got)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("%v: host %d int[%d] = %d, want %d", pol, h, i, got[i], vals[i])
				}
			}
			gd := make([]float64, 5)
			r.mods[h].ReadFloat64s(p, doubles, gd)
			for i := range dv {
				if gd[i] != dv[i] {
					t.Fatalf("%v: host %d double[%d] = %v, want %v", pol, h, i, gd[i], dv[i])
				}
			}
		}
		// Cross-host update visible everywhere.
		r.mods[1].WriteInt32s(p, ints, []int32{-9})
		var v [1]int32
		r.mods[2].ReadInt32s(p, ints, v[:])
		if v[0] != -9 {
			t.Fatalf("%v: update not visible: %d", pol, v[0])
		}
	})
}

func TestMigrationPolicyRoundTrip(t *testing.T) { policyRoundTrip(t, PolicyMigration) }
func TestCentralPolicyRoundTrip(t *testing.T)   { policyRoundTrip(t, PolicyCentral) }

func TestMigrationPolicyKeepsSingleCopy(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyMigration))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		pg := r.mods[0].PageOf(addr)
		r.mods[0].WriteInt32s(p, addr, []int32{5})
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:]) // even a READ migrates the only copy
		if r.mods[1].Access(pg) != WriteAccess {
			t.Errorf("reader's access %v, want exclusive (migration policy)", r.mods[1].Access(pg))
		}
		if r.mods[0].Access(pg) != NoAccess {
			t.Errorf("origin still holds the page (%v); copy not migrated", r.mods[0].Access(pg))
		}
		r.mods[2].ReadInt32s(p, addr, v[:])
		if v[0] != 5 {
			t.Errorf("value %d, want 5", v[0])
		}
		if r.mods[1].Access(pg) != NoAccess || r.mods[2].Access(pg) != WriteAccess {
			t.Error("single-copy invariant violated after second read")
		}
	})
}

func TestCentralPolicyNeverCachesPages(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withPolicy(PolicyCentral))
	r.run("main", func(p *sim.Proc) {
		// Page 1 is managed (served) by host 1; host 0 accesses it.
		var addr Addr
		for {
			a, err := r.mods[0].Alloc(p, conv.Int32, 2048)
			if err != nil {
				t.Error(err)
				return
			}
			if r.mods[0].manager(r.mods[0].PageOf(a)) == 1 {
				addr = a
				break
			}
		}
		r.mods[0].WriteInt32s(p, addr, []int32{11})
		var v [1]int32
		r.mods[0].ReadInt32s(p, addr, v[:])
		if v[0] != 11 {
			t.Fatalf("read back %d, want 11", v[0])
		}
		s := r.mods[0].Stats()
		if s.RemoteReads == 0 || s.RemoteWrites == 0 {
			t.Errorf("no remote ops recorded: %+v", s)
		}
		if s.PagesFetched != 0 || s.ReadFaults != 0 || s.WriteFaults != 0 {
			t.Errorf("central policy moved pages or faulted: %+v", s)
		}
		if r.mods[0].Access(r.mods[0].PageOf(addr)) != NoAccess {
			t.Error("client cached a page under the central policy")
		}
	})
}

func TestCentralPolicyConvertsPerRequest(t *testing.T) {
	// Server on a Sun page, client a Firefly: values must convert both
	// directions per request.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withPolicy(PolicyCentral))
	r.run("main", func(p *sim.Proc) {
		var addr Addr
		for {
			a, err := r.mods[0].Alloc(p, conv.Int32, 2048)
			if err != nil {
				t.Error(err)
				return
			}
			if r.mods[0].manager(r.mods[0].PageOf(a)) == 0 { // Sun serves
				addr = a
				break
			}
		}
		r.mods[1].WriteInt32s(p, addr, []int32{0x01020304}) // Firefly writes
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if v[0] != 0x01020304 {
			t.Fatalf("firefly read back %#x", v[0])
		}
		var sv [1]int32
		r.mods[0].ReadInt32s(p, addr, sv[:]) // Sun (server) reads locally
		if sv[0] != 0x01020304 {
			t.Fatalf("sun read %#x; server-side representation wrong", sv[0])
		}
	})
}

func TestCentralPolicyAtomicSwap(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyCentral))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{3})
		if old := r.mods[1].AtomicSwapInt32(p, addr, 8); old != 3 {
			t.Errorf("swap returned %d, want 3", old)
		}
		if old := r.mods[2].AtomicSwapInt32(p, addr, 0); old != 8 {
			t.Errorf("second swap returned %d, want 8", old)
		}
	})
}

func TestCentralPolicyPointers(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withPolicy(PolicyCentral))
	r.run("main", func(p *sim.Proc) {
		ptrs, err := r.mods[0].Alloc(p, conv.Pointer, 4)
		if err != nil {
			t.Error(err)
			return
		}
		ints, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WritePointer(p, ptrs, ints, true)
		got, ok := r.mods[1].ReadPointer(p, ptrs)
		if !ok || got != ints {
			t.Errorf("pointer via central server: %v ok=%v, want %v", got, ok, ints)
		}
	})
}

func TestUpdatePolicyRoundTrip(t *testing.T) { policyRoundTrip(t, PolicyUpdate) }

func TestUpdatePolicyKeepsReplicasAlive(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyUpdate))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 64)
		if err != nil {
			t.Error(err)
			return
		}
		pg := r.mods[0].PageOf(addr)
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		r.mods[2].ReadInt32s(p, addr, v[:])
		fetchedBefore := r.mods[1].Stats().PagesFetched + r.mods[2].Stats().PagesFetched

		// A write must update, not invalidate: replicas stay readable
		// with the new value and no page is re-fetched.
		r.mods[2].WriteInt32s(p, addr, []int32{0x01020304})
		if r.mods[1].Access(pg) != ReadAccess {
			t.Fatalf("reader's replica torn down: %v", r.mods[1].Access(pg))
		}
		r.mods[1].ReadInt32s(p, addr, v[:])
		if v[0] != 0x01020304 {
			t.Fatalf("replica read %#x after update, want 0x01020304 (converted)", v[0])
		}
		fetchedAfter := r.mods[1].Stats().PagesFetched + r.mods[2].Stats().PagesFetched
		if fetchedAfter != fetchedBefore {
			t.Fatalf("update policy re-fetched pages (%d → %d)", fetchedBefore, fetchedAfter)
		}
		if r.mods[1].Stats().UpdatesApplied == 0 {
			t.Fatal("no update applied at the replica holder")
		}
	})
}

func TestUpdatePolicySequencesConcurrentWriters(t *testing.T) {
	// Two hosts interleave updates to disjoint words of one page; every
	// final value must be the last write to its word on every replica.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyUpdate))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		done := sim.NewSemaphore(r.k, 0)
		for w := 1; w <= 2; w++ {
			w := w
			mod := r.mods[w]
			r.k.Spawn(fmt.Sprintf("writer%d", w), func(wp *sim.Proc) {
				for i := 0; i < 10; i++ {
					mod.WriteInt32s(wp, addr+Addr(4*w), []int32{int32(w*100 + i)})
					wp.Sleep(5 * time.Millisecond)
				}
				done.V()
			})
		}
		done.P(p)
		done.P(p)
		for h := 0; h < 3; h++ {
			var v [3]int32
			r.mods[h].ReadInt32s(p, addr, v[:])
			if v[1] != 109 || v[2] != 209 {
				t.Fatalf("host %d sees %v, want [_, 109, 209]", h, v)
			}
		}
	})
}

func TestUpdatePolicyAtomicSwapPanics(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun}, withPolicy(PolicyUpdate))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("atomic swap under write-update did not panic")
			}
		}()
		r.mods[0].AtomicSwapInt32(p, addr, 1)
	})
}
