package dsm

// The write-update coherence policy (full replication): pages replicate
// on read exactly as under MRSW, but writes never invalidate. Instead
// the writer sends the written bytes to the page's manager, which
// sequences the update (per-page total order) and pushes it to every
// replica holder with one multicast; the writer applies it locally when
// the manager acknowledges. Replicas are therefore never torn down —
// reads stay local forever — at the price of a sequencing round trip
// per write burst. The fourth algorithm of the companion study's
// spectrum (§2.1): it shines for read-mostly data with small, frequent
// writes, where MRSW would invalidate and re-fault whole pages.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// updateWriteRegion is writeRegion under PolicyUpdate: ensure a local
// replica, then sequence each page-span's new bytes through the manager.
func (m *Module) updateWriteRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) {
	off := 0
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		t0 := p.Now()
		// The writer keeps a read replica (faulting it in if needed) so
		// its own copy stays current once the update is sequenced.
		m.mustEnsureAccess(p, Addr(pos), hi-pos, false)
		// Pooled staging: sequenceWrite blocks until the update is
		// distributed and recordSC copies what it keeps.
		seg := bufpool.Get(hi - pos)
		fill(seg, off)
		m.sequenceWrite(p, pg, pos-pageStart, seg)
		m.recordSC(p, sctrace.Write, t0, Addr(pos), seg)
		bufpool.Put(seg)
		off += hi - pos
		pos = hi
	}
}

// sequenceWrite routes one span's bytes through the page's manager and
// applies them locally once sequenced.
func (m *Module) sequenceWrite(p *sim.Proc, page PageNo, offset int, data []byte) {
	if m.cfg.Mutation == MutUnsequencedUpdate {
		// Injected bug: apply locally without sequencing through the
		// manager — no replica ever hears about this write.
		if lp := m.local[page]; lp != nil && lp.access != NoAccess {
			copy(lp.data[offset:], data)
		}
		return
	}
	mgr := m.manager(page)
	if mgr == m.id {
		m.sequenceUpdate(p, page, offset, data, m.id, m.arch.Kind)
	} else {
		m.stats.UpdateWrites++
		if _, err := m.ep.Call(p, mgr, &proto.Message{
			Kind: proto.KindUpdateWrite,
			Page: uint32(page),
			Args: []uint32{uint32(offset)},
			Data: data,
		}); err != nil {
			panic(fmt.Sprintf("dsm: host %d update write page %d: %v", m.id, page, err))
		}
	}
	// Sequenced: apply to the local replica (bytes are already native).
	if lp := m.local[page]; lp != nil && lp.access != NoAccess {
		copy(lp.data[offset:], data)
	}
}

// handleUpdateWrite sequences a remote writer's update at the manager.
func (m *Module) handleUpdateWrite(p *sim.Proc, req *proto.Message) {
	page := PageNo(req.Page)
	if !m.engine.sequencesUpdates() || m.manager(page) != m.id {
		bufpool.Put(req.TakeWire())
		return // misdirected; the writer times out
	}
	m.sequenceUpdate(p, page, int(req.Arg(0)), req.Data, HostID(req.From), arch.Kind(req.SrcArch))
	// Sequenced and pushed everywhere: the request's wire buffer (which
	// Data aliases) is spent.
	bufpool.Put(req.TakeWire())
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindUpdateWriteAck, Page: req.Page})
}

// sequenceUpdate distributes one update to every replica holder, in
// per-page total order (the manager's page lock).
func (m *Module) sequenceUpdate(p *sim.Proc, page PageNo, offset int, data []byte, writer HostID, writerKind arch.Kind) {
	ent := m.mgrEntryFor(page)
	ent.lock.P(p)
	// Deferred before the lock release so it runs after it (LIFO): the
	// checker audits the state each sequenced update leaves behind.
	defer m.checkpoint("update-sequenced", page)
	defer ent.lock.V()
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.ManagerProcess.Of(m.arch.Kind)))
	ent.copyset[writer] = struct{}{}

	var targets []HostID
	for h := range ent.copyset {
		if h != writer && h != m.id {
			targets = append(targets, h)
		}
	}
	if ent.owner != writer && ent.owner != m.id {
		if _, in := ent.copyset[ent.owner]; !in {
			targets = append(targets, ent.owner)
		}
	}
	for i := 1; i < len(targets); i++ { // deterministic order
		for j := i; j > 0 && targets[j] < targets[j-1]; j-- {
			targets[j], targets[j-1] = targets[j-1], targets[j]
		}
	}

	// Apply at the manager's own replica (converting from the writer's
	// representation).
	if writer != m.id {
		if lp := m.local[page]; lp != nil && lp.access != NoAccess {
			m.applyUpdateBytes(p, page, offset, data, writerKind)
		}
	} else if lp := m.local[page]; lp != nil && lp.access != NoAccess {
		copy(lp.data[offset:], data)
	}

	if len(targets) == 0 {
		return
	}
	m.stats.UpdatePushes += len(targets)
	msg := func() *proto.Message {
		return &proto.Message{
			Kind:    proto.KindApplyUpdate,
			Page:    uint32(page),
			SrcArch: uint8(writerKind),
			Data:    data,
		}
	}
	var err error
	if len(targets)+1 <= proto.MaxArgs && !m.cfg.UnicastInvalidate {
		bm := msg()
		bm.Args = make([]uint32, 0, len(targets)+1)
		bm.Args = append(bm.Args, uint32(offset))
		for _, t := range targets {
			bm.Args = append(bm.Args, uint32(t))
		}
		_, err = m.ep.CallMulticast(p, targets, bm)
	} else {
		_, err = m.ep.CallAll(p, targets, func(HostID) *proto.Message {
			um := msg()
			um.Args = []uint32{uint32(offset)}
			return um
		})
	}
	if err != nil {
		panic(fmt.Sprintf("dsm: host %d pushing update for page %d: %v", m.id, page, err))
	}
}

// handleApplyUpdate applies a sequenced update at a replica holder.
func (m *Module) handleApplyUpdate(p *sim.Proc, req *proto.Message) {
	if len(req.Args) > 1 { // broadcast: membership check
		member := false
		for _, a := range req.Args[1:] {
			if HostID(a) == m.id {
				member = true
				break
			}
		}
		if !member {
			bufpool.Put(req.TakeWire())
			return
		}
	}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.InvalidateProcess.Of(m.arch.Kind)))
	page := PageNo(req.Page)
	if lp := m.local[page]; lp != nil && lp.access != NoAccess {
		m.applyUpdateBytes(p, page, int(req.Arg(0)), req.Data, arch.Kind(req.SrcArch))
		m.stats.UpdatesApplied++
		m.trace("apply-update", page)
	}
	bufpool.Put(req.TakeWire())
	m.checkpoint("update-applied", page)
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindApplyUpdateAck, Page: req.Page})
}

// applyUpdateBytes converts update bytes from the writer's
// representation and stores them into the local replica.
func (m *Module) applyUpdateBytes(p *sim.Proc, page PageNo, offset int, data []byte, writerKind arch.Kind) {
	lp := m.local[page]
	buf := bufpool.Get(len(data))
	defer bufpool.Put(buf)
	copy(buf, data)
	writerArch, err := arch.ByKind(writerKind)
	if err != nil {
		return
	}
	if m.cfg.ConversionEnabled && !writerArch.Compatible(m.arch) {
		mt, ok := m.meta[page]
		if !ok {
			return
		}
		typ := m.cfg.Registry.MustGet(mt.typeID)
		n := len(buf) / typ.Size
		if n > 0 {
			p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
			ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(writerKind))
			rep, cerr := m.cfg.Registry.ConvertRegion(mt.typeID, buf[:n*typ.Size], writerArch, m.arch, ptrOff)
			if cerr != nil {
				panic(fmt.Sprintf("dsm: converting update for page %d: %v", page, cerr))
			}
			m.stats.Conversions++
			m.stats.ConvReport.Add(rep)
		}
	}
	copy(lp.data[offset:], buf)
}
