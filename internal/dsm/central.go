package dsm

// The central-server coherence policy: no page ever leaves its server
// (the page's manager host). Every access is a remote read or write
// operation; the server converts data to and from the client's
// representation per request. Cheap for small, heavily write-shared
// data (no page ping-pong), expensive for bulk or read-mostly data — the
// opposite end of the algorithm spectrum from MRSW, per the authors'
// companion study cited in §2.1.

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/sim"
)

// Remote-write operation codes (Args[2] of KindRemoteWrite).
const (
	remoteOpStore = 0
	remoteOpSwap  = 1
)

// forEachGroup splits [addr, addr+n) at native-VM-page-group boundaries
// (the host's fault granularity) and calls fn per chunk, in order.
func (m *Module) forEachGroup(addr Addr, n int, fn func(chunkAddr Addr, chunkLen int)) {
	groupBytes := m.groupSize() * m.cfg.PageSize
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		groupEnd := (pos/groupBytes + 1) * groupBytes
		hi := min(end, groupEnd)
		fn(Addr(pos), hi-pos)
		pos = hi
	}
}

// centralRead fetches length bytes at offset within a page from its
// server, in this host's representation.
func (m *Module) centralRead(p *sim.Proc, page PageNo, offset, length int) []byte {
	server := m.manager(page)
	if server == m.id {
		m.protoCPU.Use(p, m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind))
		lp := m.serverPageFor(page)
		seg := make([]byte, length) // vet:ignore hot-alloc — escapes to the caller's read callback
		copy(seg, lp.data[offset:offset+length])
		return seg
	}
	m.stats.RemoteReads++
	resp, err := m.ep.Call(p, server, &proto.Message{
		Kind: proto.KindRemoteRead,
		Page: uint32(page),
		Args: []uint32{uint32(offset), uint32(length)},
	})
	if err != nil {
		panic(fmt.Sprintf("dsm: central read page %d: %v", page, err))
	}
	return resp.Data
}

// centralWrite stores bytes at offset within a page at its server.
func (m *Module) centralWrite(p *sim.Proc, page PageNo, offset int, data []byte) {
	server := m.manager(page)
	if server == m.id {
		m.protoCPU.Use(p, m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind))
		lp := m.serverPageFor(page)
		copy(lp.data[offset:], data)
		m.checkpoint("central-write", page)
		return
	}
	m.stats.RemoteWrites++
	if _, err := m.ep.Call(p, server, &proto.Message{
		Kind: proto.KindRemoteWrite,
		Page: uint32(page),
		Args: []uint32{uint32(offset), remoteOpStore},
		Data: data,
	}); err != nil {
		panic(fmt.Sprintf("dsm: central write page %d: %v", page, err))
	}
}

// centralSwap atomically exchanges an int32 at the server.
func (m *Module) centralSwap(p *sim.Proc, addr Addr, v int32) int32 {
	page := m.PageOf(addr)
	offset := int(addr) - int(page)*m.cfg.PageSize
	server := m.manager(page)
	if server == m.id {
		m.protoCPU.Use(p, m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind))
		lp := m.serverPageFor(page)
		old := int32(m.arch.Order.Binary().Uint32(lp.data[offset:]))
		m.arch.Order.Binary().PutUint32(lp.data[offset:], uint32(v))
		return old
	}
	m.stats.RemoteWrites++
	buf := bufpool.Get(4)
	m.arch.Order.Binary().PutUint32(buf, uint32(v))
	resp, err := m.ep.Call(p, server, &proto.Message{
		Kind: proto.KindRemoteWrite,
		Page: uint32(page),
		Args: []uint32{uint32(offset), remoteOpSwap},
		Data: buf,
	})
	if err != nil {
		panic(fmt.Sprintf("dsm: central swap page %d: %v", page, err))
	}
	bufpool.Put(buf)
	return int32(resp.Arg(0))
}

// serverPageFor returns the server-resident page image (servers always
// hold their pages; they are created zeroed on first touch).
func (m *Module) serverPageFor(page PageNo) *localPage {
	lp := m.localPageFor(page)
	if lp.access == NoAccess {
		lp.access = WriteAccess
	}
	return lp
}

// handleRemoteRead serves a central-policy read: convert the requested
// region to the client's representation and send it.
func (m *Module) handleRemoteRead(p *sim.Proc, req *proto.Message) {
	if !m.engine.serverOnly() || m.manager(PageNo(req.Page)) != m.id {
		return // misdirected; client times out
	}
	m.protoCPU.Use(p, m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind))
	page := PageNo(req.Page)
	offset, length := int(req.Arg(0)), int(req.Arg(1))
	lp := m.serverPageFor(page)
	if offset < 0 || offset+length > len(lp.data) {
		return
	}
	data := make([]byte, length) // vet:ignore hot-alloc — retained by the dedup reply cache
	copy(data, lp.data[offset:])
	m.convertForClient(p, page, data, HostID(req.From), false)
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindRemoteReadReply, Page: req.Page, Data: data})
}

// handleRemoteWrite serves a central-policy store or swap. The request's
// wire buffer is recycled once its Data has been consumed (or the
// request rejected).
func (m *Module) handleRemoteWrite(p *sim.Proc, req *proto.Message) {
	if !m.engine.serverOnly() || m.manager(PageNo(req.Page)) != m.id {
		bufpool.Put(req.TakeWire())
		return
	}
	m.protoCPU.Use(p, m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind))
	page := PageNo(req.Page)
	offset := int(req.Arg(0))
	lp := m.serverPageFor(page)
	if offset < 0 || offset+len(req.Data) > len(lp.data) {
		bufpool.Put(req.TakeWire())
		return
	}
	if req.Arg(1) == remoteOpSwap {
		clientArch, err := arch.ByKind(arch.Kind(req.SrcArch))
		if err != nil {
			bufpool.Put(req.TakeWire())
			return
		}
		old := int32(m.arch.Order.Binary().Uint32(lp.data[offset:]))
		v := int32(clientArch.Order.Binary().Uint32(req.Data))
		m.arch.Order.Binary().PutUint32(lp.data[offset:], uint32(v))
		bufpool.Put(req.TakeWire())
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRemoteWriteAck,
			Page: req.Page,
			Args: []uint32{uint32(old)},
		})
		return
	}
	data := bufpool.Get(len(req.Data))
	copy(data, req.Data)
	bufpool.Put(req.TakeWire())
	m.convertForClient(p, page, data, HostID(req.From), true)
	copy(lp.data[offset:], data)
	bufpool.Put(data)
	m.checkpoint("central-write", page)
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindRemoteWriteAck, Page: req.Page})
}

// convertForClient converts a region between the server's and a
// client's representations (inbound=true converts client→server).
func (m *Module) convertForClient(p *sim.Proc, page PageNo, data []byte, client HostID, inbound bool) {
	if !m.cfg.ConversionEnabled {
		return
	}
	clientArch := m.hosts[client]
	if clientArch.Compatible(m.arch) {
		return
	}
	mt, ok := m.meta[page]
	if !ok {
		return
	}
	typ := m.cfg.Registry.MustGet(mt.typeID)
	n := len(data) / typ.Size
	if n == 0 {
		return
	}
	p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
	from, to := m.arch, clientArch
	if inbound {
		from, to = clientArch, m.arch
	}
	ptrOff := int32(m.base(to.Kind)) - int32(m.base(from.Kind))
	rep, err := m.cfg.Registry.ConvertRegion(mt.typeID, data[:n*typ.Size], from, to, ptrOff)
	if err != nil {
		panic(fmt.Sprintf("dsm: central conversion page %d: %v", page, err))
	}
	m.stats.Conversions++
	m.stats.ConvReport.Add(rep)
}
