package dsm

// Protocol mutations: deliberately injected coherence bugs for the model
// checker's mutation-kill harness (internal/mc). Each mutation disables
// or corrupts exactly one step of the MRSW/update protocol; the harness
// proves the checker has teeth by demonstrating that every mutation is
// detected — by the invariant checker, the SC trace checker, a protocol
// timeout, or a deadlock — within a bounded number of explored
// schedules. MutNone (the zero value) is the correct protocol.

import "fmt"

// Mutation selects one injected protocol bug, cluster-wide.
type Mutation int

const (
	// MutNone runs the unmodified protocol.
	MutNone Mutation = iota
	// MutSkipInvalidation suppresses all outgoing invalidations before a
	// write: readers keep stale copies (the classic silent coherence bug).
	MutSkipInvalidation
	// MutDropCopyset makes the manager forget to record the requester of
	// a read copy in the page's copyset, so a later write never
	// invalidates that reader.
	MutDropCopyset
	// MutStaleOwner makes the manager skip the ownership update after a
	// write transfer: the owner field keeps pointing at the previous
	// owner, whose copy left with the transfer.
	MutStaleOwner
	// MutUnsequencedUpdate applies write-update writes locally without
	// routing them through the manager's sequencer, so replicas diverge.
	MutUnsequencedUpdate
	// MutLostAck drops the acknowledgement of every invalidation: the
	// copy is discarded but the writer's multicast never completes.
	MutLostAck
	// MutDoubleWriterGrant makes a host serving a write transfer keep its
	// own copy (and access right) instead of invalidating it, so two
	// writable copies can coexist.
	MutDoubleWriterGrant
	// MutAllocOverrun inflates the allocation manager's record of a
	// page's used bytes by one, so the allocated prefix is no longer a
	// whole number of elements (and can overrun the page).
	MutAllocOverrun
	// MutSkipConversion installs page bodies from incompatible machines
	// without invoking the conversion routine, leaving foreign-format
	// bytes behind (§2.3's corruption scenario).
	MutSkipConversion
	// MutForgetRecovery makes a manager skip the copyset re-own after an
	// owner crash: the page stays wedged at its dead owner and every
	// later access times out instead of recovering.
	MutForgetRecovery
	// MutStaleProbableOwner makes a dynamic-directory owner skip the
	// probable-owner update when relinquishing ownership: its hint keeps
	// pointing at itself, so later requests forwarded through it stop
	// one hop short of the true owner — forever, as a self-loop the
	// chain-bound assertion trips (dynamic.go).
	MutStaleProbableOwner
	// MutStaleQuorumRead makes a quorum read trust its local replica
	// alone — no majority query, no write-back. A read can then return a
	// value older than one a completed write installed at a majority
	// (the new/old inversion SC-ABD's phase-1 quorum exists to prevent).
	MutStaleQuorumRead
	// MutSplitBrainWrite makes a quorum write declare success after
	// installing only its own local replica, without waiting for a
	// majority of acks — the split-brain bug: two components (or two
	// racing writers) both accept writes no quorum ever orders.
	MutSplitBrainWrite
	// MutLostDiff makes every release silently drop its first non-empty
	// page diff (and the write notice that would advertise it) while
	// still advancing the vector timestamp — so a synchronized acquirer
	// expects the interval's writes and reads stale bytes instead (the
	// RC happens-before checker's core guarantee).
	MutLostDiff
	// MutStaleTwinMerge makes a pulled or pushed diff land only in the
	// live twin when one exists, never in the page itself: reads after
	// the acquire return pre-interval bytes even though the interval
	// was delivered (the twin-merge rule rc.go exists to get right).
	MutStaleTwinMerge

	numMutations
)

// Mutations lists every real mutation (excluding MutNone).
func Mutations() []Mutation {
	out := make([]Mutation, 0, numMutations-1)
	for mu := MutNone + 1; mu < numMutations; mu++ {
		out = append(out, mu)
	}
	return out
}

// String names the mutation (the -mutation flag spelling).
func (mu Mutation) String() string {
	switch mu {
	case MutNone:
		return "none"
	case MutSkipInvalidation:
		return "skip-invalidation"
	case MutDropCopyset:
		return "drop-copyset"
	case MutStaleOwner:
		return "stale-owner"
	case MutUnsequencedUpdate:
		return "unsequenced-update"
	case MutLostAck:
		return "lost-ack"
	case MutDoubleWriterGrant:
		return "double-writer-grant"
	case MutAllocOverrun:
		return "alloc-overrun"
	case MutSkipConversion:
		return "skip-conversion"
	case MutForgetRecovery:
		return "forget-recovery"
	case MutStaleProbableOwner:
		return "stale-probable-owner"
	case MutStaleQuorumRead:
		return "stale-quorum-read"
	case MutSplitBrainWrite:
		return "split-brain-write"
	case MutLostDiff:
		return "lost-diff"
	case MutStaleTwinMerge:
		return "stale-twin-merge"
	default:
		return fmt.Sprintf("Mutation(%d)", int(mu))
	}
}

// ParseMutation resolves a mutation name (as printed by String).
func ParseMutation(name string) (Mutation, error) {
	for mu := MutNone; mu < numMutations; mu++ {
		if mu.String() == name {
			return mu, nil
		}
	}
	return MutNone, fmt.Errorf("dsm: unknown mutation %q", name)
}
