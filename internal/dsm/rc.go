package dsm

// The lazy-release-consistency engine (PolicyRC, ModelRC). Where the
// write-invalidate family propagates writes eagerly — at access time,
// by revoking every other copy — this engine propagates them lazily, at
// synchronization boundaries, TreadMarks-style on top of per-page
// homes:
//
//   - The first write of an interval copies the page into a twin.
//     Every resident copy is writable; multiple concurrent writers of
//     one page are legal.
//   - A release (dsync V, event set, barrier arrival) diffs each
//     twinned page against its twin — whole elements of the page's one
//     registered type, so the diff converts between architectures
//     exactly like a page — and pushes the diffs to the pages' homes,
//     then advances this host's vector timestamp and stamps the
//     releasing primitive with (timestamp, write notices).
//   - An acquire merges the grant's stamp and pulls, for each resident
//     page with an outstanding notice, the home's diff-log suffix this
//     host has not applied. The home retires log entries past a cap;
//     a pull reaching behind the log falls back to the whole page.
//   - A fault fetches the home's current image, which already reflects
//     every pushed interval, so non-resident pages need no pulling.
//
// The model contract (model.go) binds this machinery to dsync via
// RCSync and swaps the trace oracle to sctrace.CheckRC.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/conv"
	"repro/internal/proto"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// rcLogCap bounds each home's per-page diff log. Entries past the cap
// retire oldest-first; an acquirer whose pull reaches behind the log
// receives the whole page instead (rcPullWhole).
const rcLogCap = 16

// rcPullWhole flags a pull reply carrying the home's whole page image
// instead of a log suffix (Args[2]).
const rcPullWhole = 1

// rcState is one host's release-consistency state.
type rcState struct {
	// vt is this host's vector timestamp: vt[h] counts the intervals of
	// host h this host has synchronized with (its own entry counts its
	// own completed intervals). It only grows.
	vt []uint32
	// twins maps each page written in the current interval to a copy of
	// its contents at the interval's first write.
	twins map[PageNo][]byte
	// notices maps pages to the highest home version some synchronized
	// release has announced. Monotone; carried in every payload.
	notices map[PageNo]uint32
	// applied maps resident pages to the highest home version this
	// host's copy reflects.
	applied map[PageNo]uint32
	// home holds the per-page version counter and diff log on the
	// page's home host; nil entries elsewhere.
	home map[PageNo]*rcHome
}

// rcHome is a home's authoritative ordering state for one page.
type rcHome struct {
	// version counts the intervals folded into the home's copy.
	version uint32
	// log holds the most recent intervals' diffs, in version order,
	// already in the home's representation.
	log []rcLogEntry
}

// rcLogEntry is one pushed interval in a home's diff log.
type rcLogEntry struct {
	version uint32
	writer  HostID
	diff    conv.Diff
}

// newRCState builds the empty RC state for a cluster of nhosts.
func newRCState(nhosts int) *rcState {
	return &rcState{
		vt:      make([]uint32, nhosts),
		twins:   make(map[PageNo][]byte),
		notices: make(map[PageNo]uint32),
		applied: make(map[PageNo]uint32),
		home:    make(map[PageNo]*rcHome),
	}
}

// rcEngine is the lazy-release replication strategy. Reads and writes
// only ensure residency (one whole-page fetch from the home on first
// touch); coherence runs entirely through the sync hooks.
type rcEngine struct {
	m *Module
}

func (e *rcEngine) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	m := e.m
	off := 0
	var ferr error
	m.forEachGroup(addr, n, func(chunkAddr Addr, chunkLen int) {
		if ferr != nil {
			return
		}
		t0 := p.Now()
		if err := m.rcEnsureResident(p, chunkAddr, chunkLen, false); err != nil {
			ferr = err
			return
		}
		m.forEachSpan(chunkAddr, chunkLen, func(seg []byte, o int) {
			fn(seg, off+o)
			m.recordSC(p, sctrace.Read, t0, chunkAddr+Addr(o), seg)
		})
		off += chunkLen
	})
	return ferr
}

func (e *rcEngine) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	m := e.m
	off := 0
	var ferr error
	m.forEachGroup(addr, n, func(chunkAddr Addr, chunkLen int) {
		if ferr != nil {
			return
		}
		t0 := p.Now()
		if err := m.rcEnsureResident(p, chunkAddr, chunkLen, true); err != nil {
			ferr = err
			return
		}
		m.rcTwinSpan(chunkAddr, chunkLen)
		m.forEachSpan(chunkAddr, chunkLen, func(seg []byte, o int) {
			fill(seg, off+o)
			m.recordSC(p, sctrace.Write, t0, chunkAddr+Addr(o), seg)
		})
		off += chunkLen
	})
	return ferr
}

func (e *rcEngine) atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error) {
	panic("dsm: atomic operations are not defined under the release-consistency policy; use the distributed synchronization facility")
}

func (e *rcEngine) allocFirstTouch() bool  { return true }
func (e *rcEngine) serverOnly() bool       { return false }
func (e *rcEngine) sequencesUpdates() bool { return false }
func (e *rcEngine) quorumReplicated() bool { return false }
func (e *rcEngine) lazyRelease() bool      { return true }

// rcEnsureResident makes [addr, addr+n) resident, fetching missing
// pages from their homes. No re-check loop: a copy once resident is
// never invalidated or stolen under RC, so one pass suffices.
func (m *Module) rcEnsureResident(p *sim.Proc, addr Addr, n int, write bool) error {
	m.exitIfCrashed(p)
	pages, err := m.requiredPages(addr, n)
	if err != nil {
		return err
	}
	var missing []PageNo
	for _, pg := range pages {
		if !m.hasAccess(pg, write) {
			missing = append(missing, pg)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if write {
		m.stats.WriteFaults++
		m.trace("write-fault", missing[0])
		p.Sleep(m.jittered(m.cfg.Params.FaultWrite.Of(m.arch.Kind)))
	} else {
		m.stats.ReadFaults++
		m.trace("read-fault", missing[0])
		p.Sleep(m.jittered(m.cfg.Params.FaultRead.Of(m.arch.Kind)))
	}
	for _, pg := range missing {
		if err := m.rcFaultPage(p, pg); err != nil {
			return err
		}
	}
	return nil
}

// rcFaultPage obtains one page's current image from its home. The fresh
// image reflects every interval pushed so far, so it satisfies every
// write notice this host could hold for the page.
func (m *Module) rcFaultPage(p *sim.Proc, pg PageNo) error {
	l := m.faultLockFor(pg)
	l.P(p)
	defer m.checkpoint("fault-serviced", pg)
	defer l.V()
	if m.hasAccess(pg, true) {
		return nil // another thread faulted it in while we queued
	}
	home := m.dir.home(pg)
	if home == m.id {
		hm := m.rcHomeFor(pg)
		m.rc.applied[pg] = hm.version
		m.trace("rc-home-touch", pg)
		return nil
	}
	resp, err := m.ep.Call(p, home, &proto.Message{Kind: proto.KindRCFetch, Page: uint32(pg)})
	if err != nil {
		return m.callFailed(err, "host %d fetching page %d from home %d", m.id, pg, home)
	}
	m.rcInstallPage(p, pg, resp)
	return nil
}

// rcInstallPage installs a fetch reply. The page was not resident, so
// no twin can exist (a twin implies a prior write, which implies
// residency) and the image lands verbatim.
func (m *Module) rcInstallPage(p *sim.Proc, pg PageNo, resp *proto.Message) {
	m.rcConvertIncoming(p, pg, resp.Data, resp.SrcArch)
	lp := m.localPageFor(pg)
	copy(lp.data, resp.Data)
	lp.access = WriteAccess
	m.rc.applied[pg] = resp.Arg(0)
	m.stats.PagesFetched++
	m.stats.BytesFetched += len(resp.Data)
	m.pageFetches[pg]++
	m.trace("fetch", pg)
	bufpool.Put(resp.TakeWire())
	p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
	m.checkpoint("page-installed", pg)
}

// rcTwinSpan copies each page the write span touches into a twin if the
// current interval has not written it yet — the access right is
// irrelevant: a first-touch owner holds WriteAccess without ever
// faulting, and its interval still needs a twin to diff against.
func (m *Module) rcTwinSpan(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := m.PageOf(addr)
	last := m.PageOf(addr + Addr(n-1))
	for pg := first; pg <= last; pg++ {
		if m.rc.twins[pg] != nil {
			continue
		}
		tw := make([]byte, m.cfg.PageSize) // vet:ignore hot-alloc — a twin lives until its interval's release
		copy(tw, m.local[pg].data)
		m.rc.twins[pg] = tw
		m.stats.RCTwins++
		m.trace("rc-twin", pg)
	}
}

// rcHomeFor returns (materializing if needed) this home's ordering
// state for a page. Materialization also creates the authoritative
// local copy: pages start zero-filled everywhere, so a zero frame at
// version 0 is exact.
func (m *Module) rcHomeFor(pg PageNo) *rcHome {
	if m.dir.home(pg) != m.id {
		panic(fmt.Sprintf("dsm: host %d is not the home of page %d", m.id, pg))
	}
	hm := m.rc.home[pg]
	if hm == nil {
		hm = &rcHome{}
		m.rc.home[pg] = hm
		if lp := m.localPageFor(pg); lp.access == NoAccess {
			lp.access = WriteAccess
		}
	}
	return hm
}

// rcRelease closes the current interval: push every twinned page's diff
// to its home (in page order, for determinism), advance this host's
// vector timestamp, record the Release, and return the encoded
// (timestamp, notices) payload for the releasing primitive.
func (m *Module) rcRelease(p *sim.Proc) ([]byte, error) {
	m.exitIfCrashed(p)
	rc := m.rc
	pages := make([]PageNo, 0, len(rc.twins))
	for pg := range rc.twins {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	lost := false
	for _, pg := range pages {
		tw := rc.twins[pg]
		if tw == nil {
			continue // a concurrent release on this host got here first
		}
		mt, ok := m.meta[pg]
		if !ok {
			panic(fmt.Sprintf("dsm: host %d releasing page %d with no allocation metadata", m.id, pg))
		}
		lp := m.local[pg]
		d, err := m.cfg.Registry.BuildDiff(mt.typeID, tw[:mt.used], lp.data[:mt.used])
		if err != nil {
			panic(fmt.Sprintf("dsm: diffing page %d: %v", pg, err))
		}
		delete(rc.twins, pg) // the interval is closed for this page either way
		if d.Empty() {
			continue
		}
		if m.cfg.Mutation == MutLostDiff && !lost {
			// Injected bug: the interval's first diff (and its notice)
			// silently vanishes — the timestamp still advances, so
			// synchronized readers expect the lost writes.
			lost = true
			continue
		}
		ver, err := m.rcPushDiff(p, pg, &d)
		if err != nil {
			return nil, err
		}
		if ver > rc.notices[pg] {
			rc.notices[pg] = ver
		}
		if rc.applied[pg] == ver-1 {
			rc.applied[pg] = ver // our copy already holds this interval
		}
		m.stats.RCDiffsSent++
		m.stats.RCDiffBytes += d.EncodedSize()
	}
	rc.vt[m.id]++
	m.recordSyncOp(p, sctrace.Release)
	return rcEncodePayload(rc.vt, rc.notices), nil
}

// rcPushDiff delivers one interval diff to the page's home and returns
// the home version it was logged as.
func (m *Module) rcPushDiff(p *sim.Proc, pg PageNo, d *conv.Diff) (uint32, error) {
	home := m.dir.home(pg)
	if home == m.id {
		// Local push: the home's copy (ours) already holds the writes;
		// only the ordering state advances. The log keeps the diff in
		// this host's — the home's — representation, like a remote push
		// after conversion.
		hm := m.rcHomeFor(pg)
		hm.version++
		m.rcLogAppend(hm, rcLogEntry{version: hm.version, writer: m.id, diff: *d})
		m.trace("rc-diff", pg)
		m.checkpoint("rc-diff-logged", pg)
		return hm.version, nil
	}
	// Staged in a pooled buffer; Call blocks until the home has
	// acknowledged (retransmissions re-encode from it), so it recycles
	// as soon as Call returns.
	wire := bufpool.Get(d.EncodedSize())
	d.EncodeTo(wire)
	resp, err := m.ep.Call(p, home, &proto.Message{
		Kind: proto.KindRCDiff,
		Page: uint32(pg),
		Args: []uint32{uint32(m.id), m.rc.vt[m.id] + 1},
		Data: wire,
	})
	bufpool.Put(wire)
	if err != nil {
		return 0, m.callFailed(err, "host %d pushing page %d diff to home %d", m.id, pg, home)
	}
	ver := resp.Arg(0)
	bufpool.Put(resp.TakeWire())
	return ver, nil
}

// rcLogAppend logs one interval at the home, retiring the oldest
// entries past the cap.
func (m *Module) rcLogAppend(hm *rcHome, e rcLogEntry) {
	hm.log = append(hm.log, e)
	if n := len(hm.log) - rcLogCap; n > 0 {
		m.stats.RCDiffsRetired += n
		hm.log = append(hm.log[:0:0], hm.log[n:]...)
	}
}

// rcAcquire merges a grant's payload into this host's timestamp and
// notices, records the Acquire, and pulls the updates the notices imply
// for pages resident here. A non-resident page needs nothing: its next
// fault fetches the home's current image, which already contains them.
func (m *Module) rcAcquire(p *sim.Proc, data []byte) error {
	m.exitIfCrashed(p)
	rc := m.rc
	vt, notices := rcDecodePayload(data)
	for i, v := range vt {
		if i < len(rc.vt) && v > rc.vt[i] {
			rc.vt[i] = v
		}
	}
	for _, nt := range notices {
		if nt.ver > rc.notices[nt.page] {
			rc.notices[nt.page] = nt.ver
		}
	}
	m.recordSyncOp(p, sctrace.Acquire)
	stale := make([]PageNo, 0, len(rc.notices))
	for pg, v := range rc.notices {
		if v > rc.applied[pg] && m.hasAccess(pg, false) {
			stale = append(stale, pg)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, pg := range stale {
		if err := m.rcPull(p, pg); err != nil {
			return err
		}
	}
	return nil
}

// rcPull brings this host's copy of one resident page up to the home's
// current version: a log suffix of diffs when the home still has it, the
// whole page image when the log has been retired past our version.
func (m *Module) rcPull(p *sim.Proc, pg PageNo) error {
	rc := m.rc
	home := m.dir.home(pg)
	if home == m.id {
		rc.applied[pg] = m.rcHomeFor(pg).version // the home is always current
		return nil
	}
	m.stats.RCPulls++
	resp, err := m.ep.Call(p, home, &proto.Message{
		Kind: proto.KindRCPull,
		Page: uint32(pg),
		Args: []uint32{rc.applied[pg]},
	})
	if err != nil {
		return m.callFailed(err, "host %d pulling page %d diffs from home %d", m.id, pg, home)
	}
	version, count, flags := resp.Arg(0), resp.Arg(1), resp.Arg(2)
	if flags&rcPullWhole != 0 {
		m.rcInstallWhole(p, pg, resp, version)
		return nil
	}
	mt, ok := m.meta[pg]
	if !ok {
		panic(fmt.Sprintf("dsm: host %d pulled diffs for page %d with no allocation metadata", m.id, pg))
	}
	typ := m.cfg.Registry.MustGet(mt.typeID)
	entries := make([]rcLogEntry, 0, count)
	data, src := resp.Data, resp.SrcArch
	off := 0
	for i := 0; i < int(count); i++ {
		ver := binary.BigEndian.Uint32(data[off:])
		writer := HostID(binary.BigEndian.Uint32(data[off+4:]))
		sz := int(binary.BigEndian.Uint32(data[off+8:]))
		d, err := conv.DecodeDiff(mt.typeID, typ.Size, data[off+12:off+12+sz])
		if err != nil {
			panic(fmt.Sprintf("dsm: host %d decoding pulled diff for page %d: %v", m.id, pg, err))
		}
		off += 12 + sz
		entries = append(entries, rcLogEntry{version: ver, writer: writer, diff: d})
	}
	bufpool.Put(resp.TakeWire()) // DecodeDiff copied the payloads
	for i := range entries {
		e := &entries[i]
		if e.version <= rc.applied[pg] {
			continue // a concurrent pull on this host already applied it
		}
		if e.writer != m.id {
			m.rcConvertDiff(p, pg, &e.diff, src)
			m.rcApplyDiff(pg, &e.diff)
		}
		rc.applied[pg] = e.version
	}
	if version > rc.applied[pg] {
		rc.applied[pg] = version
	}
	m.trace("rc-pull", pg)
	return nil
}

// rcInstallWhole installs a whole-page pull reply without losing this
// interval's unreleased local writes: diff the live twin against the
// page first, install the home image into both, then re-apply the local
// diff to the page. The refreshed twin makes the next release diff
// carry only this interval's writes, not the home's.
func (m *Module) rcInstallWhole(p *sim.Proc, pg PageNo, resp *proto.Message, version uint32) {
	rc := m.rc
	if version <= rc.applied[pg] {
		bufpool.Put(resp.TakeWire()) // a concurrent pull got further; stale image
		return
	}
	mt, ok := m.meta[pg]
	if !ok {
		panic(fmt.Sprintf("dsm: host %d re-fetched page %d with no allocation metadata", m.id, pg))
	}
	lp := m.localPageFor(pg)
	var local *conv.Diff
	if tw := rc.twins[pg]; tw != nil {
		d, err := m.cfg.Registry.BuildDiff(mt.typeID, tw[:mt.used], lp.data[:mt.used])
		if err != nil {
			panic(fmt.Sprintf("dsm: diffing page %d against its twin: %v", pg, err))
		}
		if !d.Empty() {
			local = &d
		}
	}
	m.rcConvertIncoming(p, pg, resp.Data, resp.SrcArch)
	copy(lp.data, resp.Data)
	if tw := rc.twins[pg]; tw != nil {
		copy(tw, lp.data)
		if local != nil {
			m.mustApply(pg, local, lp.data)
		}
	}
	rc.applied[pg] = version
	m.stats.PagesFetched++
	m.stats.BytesFetched += len(resp.Data)
	m.pageFetches[pg]++
	m.trace("rc-refetch", pg)
	bufpool.Put(resp.TakeWire())
	p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
	m.checkpoint("page-installed", pg)
}

// rcApplyDiff folds one decoded diff (already in this host's
// representation) into the resident page — and into the live twin if
// one exists: a pulled interval the twin does not hold would otherwise
// be diffed right back out at this interval's release, reverting the
// remote writes at the home.
func (m *Module) rcApplyDiff(pg PageNo, d *conv.Diff) {
	tw := m.rc.twins[pg]
	if m.cfg.Mutation == MutStaleTwinMerge && tw != nil {
		// Injected bug: with a twin live the merge lands only in the
		// twin — the page itself misses the interval, and synchronized
		// readers see pre-interval bytes.
		m.mustApply(pg, d, tw)
		return
	}
	m.mustApply(pg, d, m.localPageFor(pg).data)
	if tw != nil {
		m.mustApply(pg, d, tw)
	}
	m.stats.RCDiffsApplied++
}

// mustApply applies a diff to one buffer; a failure is a protocol bug.
func (m *Module) mustApply(pg PageNo, d *conv.Diff, dst []byte) {
	if err := m.cfg.Registry.Apply(d, dst); err != nil {
		panic(fmt.Sprintf("dsm: host %d applying diff to page %d: %v", m.id, pg, err))
	}
}

// rcConvertIncoming converts a received whole-page body in place when
// it comes from an incompatible machine, charging the conversion cost —
// the same contract as installBody's fetch path.
func (m *Module) rcConvertIncoming(p *sim.Proc, pg PageNo, data []byte, srcCode uint8) {
	srcKind := arch.Kind(srcCode)
	srcArch, err := arch.ByKind(srcKind)
	if err != nil {
		panic(fmt.Sprintf("dsm: page body with unknown architecture %d", srcCode))
	}
	if len(data) == 0 || !m.cfg.ConversionEnabled || srcArch.Compatible(m.arch) ||
		m.cfg.Mutation == MutSkipConversion { // injected bug: foreign bytes kept verbatim
		return
	}
	mt, ok := m.meta[pg]
	if !ok {
		panic(fmt.Sprintf("dsm: host %d received data for page %d with no allocation metadata", m.id, pg))
	}
	typ := m.cfg.Registry.MustGet(mt.typeID)
	n := len(data) / typ.Size
	p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
	ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(srcKind))
	rep, err := m.cfg.Registry.ConvertRegion(mt.typeID, data[:n*typ.Size], srcArch, m.arch, ptrOff)
	if err != nil {
		panic(fmt.Sprintf("dsm: converting page %d: %v", pg, err))
	}
	m.stats.Conversions++
	m.stats.ConvReport.Add(rep)
}

// rcConvertDiff converts a received diff's payload in place when it
// comes from an incompatible machine — packed whole elements of the
// page's one type, so it converts exactly like a page body (conv.Diff).
func (m *Module) rcConvertDiff(p *sim.Proc, pg PageNo, d *conv.Diff, srcCode uint8) {
	srcKind := arch.Kind(srcCode)
	srcArch, err := arch.ByKind(srcKind)
	if err != nil {
		panic(fmt.Sprintf("dsm: diff with unknown architecture %d", srcCode))
	}
	if d.Empty() || !m.cfg.ConversionEnabled || srcArch.Compatible(m.arch) ||
		m.cfg.Mutation == MutSkipConversion { // injected bug: foreign bytes kept verbatim
		return
	}
	typ := m.cfg.Registry.MustGet(d.Type)
	p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, d.Elements()))
	ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(srcKind))
	rep, err := m.cfg.Registry.ConvertDiff(d, srcArch, m.arch, ptrOff)
	if err != nil {
		panic(fmt.Sprintf("dsm: converting diff for page %d: %v", pg, err))
	}
	m.stats.Conversions++
	m.stats.ConvReport.Add(rep)
}

// recordSyncOp appends an Acquire/Release record carrying this host's
// current vector timestamp. It bypasses recordSC deliberately: the
// canonical-bytes conversion there would reinterpret the encoded
// timestamp as page data and corrupt it.
func (m *Module) recordSyncOp(p *sim.Proc, kind sctrace.OpKind) {
	rec := m.cfg.SCRecorder
	if rec == nil {
		return
	}
	now := int64(p.Now())
	rec.Record(kind, int(m.id), p.Name(), now, now, 0, sctrace.EncodeVT(m.rc.vt))
}

// handleRCFetch serves the home's current page image (fault path).
func (m *Module) handleRCFetch(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	pg := PageNo(req.Page)
	bufpool.Put(req.TakeWire())
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.OwnerProcess.Of(m.arch.Kind)))
	hm := m.rcHomeFor(pg)
	lp := m.localPageFor(pg)
	used := 0
	if mt, ok := m.meta[pg]; ok {
		used = mt.used
	}
	data := make([]byte, used) // vet:ignore hot-alloc — retained by the dedup reply cache
	copy(data, lp.data[:used])
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindRCFetchReply,
		Page: req.Page,
		Args: []uint32{hm.version},
		Data: data,
	})
	m.stats.PagesServed++
	m.trace("serve", pg)
}

// handleRCDiff logs one pushed interval at the home: convert the diff
// into the home's representation, fold it into the authoritative copy,
// append it to the log, and acknowledge with the version it became.
func (m *Module) handleRCDiff(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	pg := PageNo(req.Page)
	writer := HostID(req.Arg(0))
	mt, ok := m.meta[pg]
	if !ok {
		panic(fmt.Sprintf("dsm: home %d received diff for page %d with no allocation metadata", m.id, pg))
	}
	typ := m.cfg.Registry.MustGet(mt.typeID)
	d, err := conv.DecodeDiff(mt.typeID, typ.Size, req.Data)
	src := req.SrcArch
	bufpool.Put(req.TakeWire()) // DecodeDiff copied the payload
	if err != nil {
		panic(fmt.Sprintf("dsm: home %d decoding diff for page %d: %v", m.id, pg, err))
	}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.OwnerProcess.Of(m.arch.Kind)))
	m.rcConvertDiff(p, pg, &d, src)
	hm := m.rcHomeFor(pg)
	m.rcApplyDiff(pg, &d)
	hm.version++
	m.rcLogAppend(hm, rcLogEntry{version: hm.version, writer: writer, diff: d})
	m.rc.applied[pg] = hm.version
	m.trace("rc-diff", pg)
	m.checkpoint("rc-diff-logged", pg)
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindRCDiffAck,
		Page: req.Page,
		Args: []uint32{hm.version},
	})
}

// handleRCPull serves an acquirer's catch-up request: the log suffix
// past its version when the log still reaches back that far, the whole
// page image otherwise (rcPullWhole).
func (m *Module) handleRCPull(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	pg := PageNo(req.Page)
	have := req.Arg(0)
	bufpool.Put(req.TakeWire())
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.OwnerProcess.Of(m.arch.Kind)))
	hm := m.rcHomeFor(pg)
	if have >= hm.version {
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRCPullReply,
			Page: req.Page,
			Args: []uint32{hm.version, 0, 0},
		})
		return
	}
	// The log holds versions (hm.version-len(log), hm.version]; the
	// suffix (have, hm.version] is intact iff have is inside or at the
	// left edge of that window.
	if have < hm.version-uint32(len(hm.log)) {
		lp := m.localPageFor(pg)
		used := 0
		if mt, ok := m.meta[pg]; ok {
			used = mt.used
		}
		data := make([]byte, used) // vet:ignore hot-alloc — retained by the dedup reply cache
		copy(data, lp.data[:used])
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRCPullReply,
			Page: req.Page,
			Args: []uint32{hm.version, 0, rcPullWhole},
			Data: data,
		})
		m.stats.PagesServed++
		m.trace("serve", pg)
		return
	}
	size, count := 0, uint32(0)
	for i := range hm.log {
		if hm.log[i].version > have {
			size += 12 + hm.log[i].diff.EncodedSize()
			count++
		}
	}
	data := make([]byte, size) // vet:ignore hot-alloc — retained by the dedup reply cache
	off := 0
	for i := range hm.log {
		e := &hm.log[i]
		if e.version <= have {
			continue
		}
		binary.BigEndian.PutUint32(data[off:], e.version)
		binary.BigEndian.PutUint32(data[off+4:], uint32(e.writer))
		binary.BigEndian.PutUint32(data[off+8:], uint32(e.diff.EncodedSize()))
		off += 12 + e.diff.EncodeTo(data[off+12:])
	}
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindRCPullReply,
		Page: req.Page,
		Args: []uint32{hm.version, count, 0},
		Data: data,
	})
	m.trace("rc-serve-diffs", pg)
}

// rcNotice is one decoded (page, home version) write notice.
type rcNotice struct {
	page PageNo
	ver  uint32
}

// rcEncodePayload encodes a sync payload: [u32 nvt][vt…][u32 n][page,
// ver]×n, big-endian, notices in ascending page order. The layout is
// canonical, so payloads merge and compare byte-wise deterministically.
func rcEncodePayload(vt []uint32, notices map[PageNo]uint32) []byte {
	pages := make([]PageNo, 0, len(notices))
	for pg := range notices {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	buf := make([]byte, 4+4*len(vt)+4+8*len(pages)) // vet:ignore hot-alloc — the payload escapes into the grant chain
	binary.BigEndian.PutUint32(buf, uint32(len(vt)))
	off := 4
	for _, v := range vt {
		binary.BigEndian.PutUint32(buf[off:], v)
		off += 4
	}
	binary.BigEndian.PutUint32(buf[off:], uint32(len(pages)))
	off += 4
	for _, pg := range pages {
		binary.BigEndian.PutUint32(buf[off:], uint32(pg))
		binary.BigEndian.PutUint32(buf[off+4:], notices[pg])
		off += 8
	}
	return buf
}

// rcDecodePayload parses a sync payload; nil or empty means "nothing
// released yet" and decodes to nothing.
func rcDecodePayload(data []byte) ([]uint32, []rcNotice) {
	if len(data) < 4 {
		return nil, nil
	}
	nvt := int(binary.BigEndian.Uint32(data))
	off := 4
	vt := make([]uint32, nvt)
	for i := range vt {
		vt[i] = binary.BigEndian.Uint32(data[off:])
		off += 4
	}
	n := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	notices := make([]rcNotice, n)
	for i := range notices {
		notices[i].page = PageNo(binary.BigEndian.Uint32(data[off:]))
		notices[i].ver = binary.BigEndian.Uint32(data[off+4:])
		off += 8
	}
	return vt, notices
}

// rcMergePayload folds two payloads component-wise: max of vector
// timestamps, max of per-page notices. Pure, and always returns a fresh
// slice — the inputs may alias pooled wire buffers.
func rcMergePayload(a, b []byte) []byte {
	avt, an := rcDecodePayload(a)
	bvt, bn := rcDecodePayload(b)
	vt := avt
	if len(bvt) > len(vt) {
		vt, bvt = bvt, vt
	}
	vt = append([]uint32(nil), vt...)
	for i, v := range bvt {
		if v > vt[i] {
			vt[i] = v
		}
	}
	notices := make(map[PageNo]uint32, len(an)+len(bn))
	for _, nt := range an {
		if nt.ver > notices[nt.page] {
			notices[nt.page] = nt.ver
		}
	}
	for _, nt := range bn {
		if nt.ver > notices[nt.page] {
			notices[nt.page] = nt.ver
		}
	}
	return rcEncodePayload(vt, notices)
}
