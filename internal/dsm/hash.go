package dsm

import (
	"encoding/binary"
	"hash"
	"sort"
)

// WriteStateHash folds this host's protocol-visible state into h, in a
// canonical order: per-page access rights with the allocated prefix of
// resident page bodies, the manager table (owner, copyset, transaction
// lock state), and the replicated allocation metadata. The model checker
// combines the hashes of every module in a cluster (plus kernel queue
// facts) into a state fingerprint for schedule-space pruning: two
// explored prefixes that hash alike are treated as the same protocol
// state. Virtual time is deliberately excluded — schedules reaching the
// same tables and page contents at different clock readings are
// equivalent for protocol correctness.
func (m *Module) WriteStateHash(h hash.Hash) {
	var buf [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:]) // vet:ignore err-drop — hash.Hash.Write never returns an error
	}
	put(uint32(m.id))
	if m.crashed {
		// A corpse's frozen tables are all alike: one flag word stands
		// in for everything below.
		put(0xdead_dead)
		return
	}

	pages := make([]PageNo, 0, len(m.local))
	for pg := range m.local {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, pg := range pages {
		lp := m.local[pg]
		put(uint32(pg))
		put(uint32(lp.access))
		if lp.access != NoAccess {
			used := m.cfg.PageSize
			if mt, ok := m.meta[pg]; ok && mt.used <= len(lp.data) {
				used = mt.used
			}
			body := lp.data[:used] // vet:ignore page-buffer — read-only fingerprint of the raw bytes
			h.Write(body)          // vet:ignore err-drop — hash.Hash.Write never returns an error
		}
	}

	put(0xffff_ffff) // section separator
	mpages := make([]PageNo, 0, len(m.mgr))
	for pg := range m.mgr {
		mpages = append(mpages, pg)
	}
	sort.Slice(mpages, func(i, j int) bool { return mpages[i] < mpages[j] })
	for _, pg := range mpages {
		ent := m.mgr[pg]
		put(uint32(pg))
		put(uint32(ent.owner))
		put(uint32(ent.lock.Count())) // distinguishes in-flight from quiescent
		if ent.lost {
			put(0xdead_4c57) // "LOST": a lost page is its own protocol state
		}
		if ent.suspect {
			put(0x5b5_bec7) // "SUSPECT": unconfirmed transfer awaiting reconciliation
			put(uint32(ent.suspectHost))
		}
		for _, hID := range copysetList(ent) {
			put(uint32(hID))
		}
		put(0xffff_fffe)
	}

	put(0xffff_fffd)
	metas := make([]PageNo, 0, len(m.meta))
	for pg := range m.meta {
		metas = append(metas, pg)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i] < metas[j] })
	for _, pg := range metas {
		mt := m.meta[pg]
		put(uint32(pg))
		put(uint32(mt.typeID))
		put(uint32(mt.used))
	}

	if m.dyn != nil {
		put(0xffff_fffc)
		dpages := make([]PageNo, 0, len(m.dyn))
		for pg := range m.dyn {
			dpages = append(dpages, pg)
		}
		sort.Slice(dpages, func(i, j int) bool { return dpages[i] < dpages[j] })
		for _, pg := range dpages {
			dp := m.dyn[pg]
			put(uint32(pg))
			put(uint32(dp.probOwner))
			if dp.owned {
				put(1)
			} else {
				put(0)
			}
			put(uint32(dp.lock.Count())) // distinguishes in-flight from quiescent
			if dp.lost {
				put(0xdead_4c57)
			}
			for _, hID := range dynCopysetList(dp, m.id) {
				put(uint32(hID))
			}
			put(0xffff_fffe)
		}
	}

	if m.qrm != nil {
		// Quorum replicas: tag plus the allocated prefix of the image.
		// The section is emitted only under PolicyQuorum, so every other
		// policy's byte stream is unchanged.
		put(0xffff_fffb)
		qpages := make([]PageNo, 0, len(m.qrm))
		for pg := range m.qrm {
			qpages = append(qpages, pg)
		}
		sort.Slice(qpages, func(i, j int) bool { return qpages[i] < qpages[j] })
		for _, pg := range qpages {
			qp := m.qrm[pg]
			put(uint32(pg))
			put(qp.tag.ts)
			put(uint32(qp.tag.host))
			used := m.cfg.PageSize
			if mt, ok := m.meta[pg]; ok && mt.used <= len(qp.data) {
				used = mt.used
			}
			body := qp.data[:used] // vet:ignore page-buffer — read-only fingerprint of the raw bytes
			h.Write(body)          // vet:ignore err-drop — hash.Hash.Write never returns an error
		}
	}

	if m.rc != nil {
		// Release-consistency state: vector timestamp, live twins,
		// applied/noticed versions, and each home's ordering state
		// (version plus the log's version/writer/shape — the diff bodies
		// are derivable from the page images already hashed). Emitted
		// only under PolicyRC, so every other policy's byte stream is
		// unchanged. Count-prefixed lists keep the stream unambiguous.
		put(0xffff_fffa)
		for _, v := range m.rc.vt {
			put(v)
		}
		hashPageMap := func(mark uint32, mp map[PageNo]uint32) {
			put(mark)
			put(uint32(len(mp)))
			keys := make([]PageNo, 0, len(mp))
			for pg := range mp {
				keys = append(keys, pg)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, pg := range keys {
				put(uint32(pg))
				put(mp[pg])
			}
		}
		hashPageMap(1, m.rc.notices)
		hashPageMap(2, m.rc.applied)
		put(3)
		put(uint32(len(m.rc.twins)))
		tpages := make([]PageNo, 0, len(m.rc.twins))
		for pg := range m.rc.twins {
			tpages = append(tpages, pg)
		}
		sort.Slice(tpages, func(i, j int) bool { return tpages[i] < tpages[j] })
		for _, pg := range tpages {
			put(uint32(pg))
			h.Write(m.rc.twins[pg]) // vet:ignore err-drop — hash.Hash.Write never returns an error
		}
		put(4)
		put(uint32(len(m.rc.home)))
		hpages := make([]PageNo, 0, len(m.rc.home))
		for pg := range m.rc.home {
			hpages = append(hpages, pg)
		}
		sort.Slice(hpages, func(i, j int) bool { return hpages[i] < hpages[j] })
		for _, pg := range hpages {
			hm := m.rc.home[pg]
			put(uint32(pg))
			put(hm.version)
			put(uint32(len(hm.log)))
			for i := range hm.log {
				put(hm.log[i].version)
				put(uint32(hm.log[i].writer))
				put(uint32(len(hm.log[i].diff.Runs)))
			}
		}
	}
}
