package dsm

// The directory layer: who manages a page — who tracks its owner and
// copyset and through whom transfer requests pass (§3.1). The paper's
// implementation fixes each page's manager statically (page number mod
// cluster size); Li & Hudak's thesis also describes a centralized
// manager (all pages on one host) and a *dynamic distributed manager*
// where there is no manager at all: each host keeps a probable-owner
// hint per page and requests chase the hint chain to the true owner
// (dynamic.go). The replication engines (engine.go) fault through this
// interface, so the scheme is swappable without touching them.

import (
	"fmt"

	"repro/internal/sim"
)

// Directory selects the manager-placement scheme.
type Directory int

const (
	// DirFixed distributes managers round-robin (page number mod cluster
	// size) — the paper's fixed distributed manager (§3.1) and the
	// default.
	DirFixed Directory = iota
	// DirCentral places every page's manager on host 0 — Li's
	// centralized manager.
	DirCentral
	// DirDynamic is Li & Hudak's dynamic distributed manager: no fixed
	// manager; each host keeps a probable owner per page and faults
	// forward along the hint chain to the real owner, compressing hints
	// as they go. Only defined for PolicyMRSW.
	DirDynamic
)

// String names the directory scheme.
func (d Directory) String() string {
	switch d {
	case DirFixed:
		return "fixed"
	case DirCentral:
		return "central"
	case DirDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Directory(%d)", int(d))
	}
}

// ParseDirectory maps a scheme name to its Directory value.
func ParseDirectory(s string) (Directory, error) {
	for _, d := range []Directory{DirFixed, DirCentral, DirDynamic} {
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("dsm: unknown directory scheme %q", s)
}

// effectiveDirectory resolves the legacy CentralManager flag: it
// predates the Directory field and keeps meaning "managers on host 0".
func (c *Config) effectiveDirectory() Directory {
	if c.Directory == DirFixed && c.CentralManager {
		return DirCentral
	}
	return c.Directory
}

// directory is the manager-placement scheme: it locates a page's
// manager and runs the host-side page-fault transaction that obtains a
// copy or ownership through it.
type directory interface {
	// home returns the page's manager host. Fixed schemes compute it;
	// the dynamic scheme has no manager and panics (use Owner/probable
	// hints instead).
	home(page PageNo) HostID
	// fault obtains the page on this host with the requested right. It
	// runs under the page's local fault lock.
	fault(p *sim.Proc, page PageNo, write bool) error
	// allocOwned records first-touch ownership of a freshly allocated
	// page on this host (called on every host that keeps a zero-filled
	// writable copy at allocation time).
	allocOwned(page PageNo)
}

// newDirectory builds the configured manager-placement scheme.
func newDirectory(m *Module) directory {
	switch m.cfg.effectiveDirectory() {
	case DirCentral:
		return &fixedDirectory{m: m, central: true}
	case DirDynamic:
		return newDynamicDirectory(m)
	default:
		return &fixedDirectory{m: m}
	}
}

// fixedDirectory is the static-placement family: every host can compute
// any page's manager locally, so a fault is one request to the manager
// (which owns the transfer transaction, protocol.go).
type fixedDirectory struct {
	m       *Module
	central bool
}

func (d *fixedDirectory) home(page PageNo) HostID {
	if d.central {
		return 0
	}
	return HostID(int(page) % len(d.m.hosts))
}

func (d *fixedDirectory) fault(p *sim.Proc, page PageNo, write bool) error {
	m := d.m
	if m.manager(page) == m.id {
		return m.localManagerFault(p, page, write)
	}
	return m.remoteFault(p, page, write)
}

func (d *fixedDirectory) allocOwned(PageNo) {}
