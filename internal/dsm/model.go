package dsm

// The consistency-model layer. Where the engine layer (engine.go)
// decides how pages replicate and the directory layer (directory.go)
// decides who manages them, the model layer states *what the memory
// promises*: which synchronization operations order accesses, when
// writes must become visible to whom, and which offline oracle a
// recorded trace must satisfy. Until the lazy-release engine every
// policy implicitly WAS sequential consistency — one SC trace oracle,
// whole-page propagation at access time, no sync hooks — so the
// contract never needed a name. It does now.
//
// newModel is the ONLY model dispatch point — the model-branch vet rule
// flags any Model comparison outside this file, exactly as the
// policy-branch rule guards newEngine — so adding a consistency model
// means adding a model implementation, not editing call sites.

import (
	"fmt"

	"repro/internal/sctrace"
	"repro/internal/sim"
)

// Model identifies the consistency contract a policy provides.
type Model int

const (
	// ModelSC is sequential consistency: some single interleaving of all
	// hosts' accesses explains every value read. Propagation is eager
	// (at access time) and the oracle is sctrace.Check.
	ModelSC Model = iota
	// ModelRC is (lazy) release consistency: writes become visible at
	// synchronization boundaries. A release pushes the interval's
	// twin/diff updates and stamps the primitive with a vector
	// timestamp; an acquire merges that stamp and pulls the updates it
	// implies. The oracle is sctrace.CheckRC.
	ModelRC
)

// String names the model.
func (mo Model) String() string {
	switch mo {
	case ModelSC:
		return "SC"
	case ModelRC:
		return "RC"
	default:
		return fmt.Sprintf("Model(%d)", int(mo))
	}
}

// consistencyModel is one model's contract: the oracle binding plus the
// synchronization hooks dsync threads through locks, events and
// barriers.
type consistencyModel interface {
	// traceCheck validates a recorded trace against this model's
	// oracle.
	traceCheck(ops []sctrace.Op) []sctrace.Violation
	// syncHooks returns the dsync payload hooks, nil when the model
	// propagates at access time and synchronization carries nothing
	// (every SC engine — nil keeps dsync's behaviour bit-identical).
	syncHooks() *RCSync
}

// newModel builds the consistency model for the configured engine. This
// is the single model dispatch point of the package; it keys off the
// engine's capability predicate, so it needs no policy branch of its
// own.
func newModel(m *Module) consistencyModel {
	if m.engine.lazyRelease() {
		return &rcModel{sync: &RCSync{m: m}}
	}
	return scModel{}
}

// TraceCheck validates a recorded access trace against the consistency
// model this module's policy promises: the SC witness-order checker for
// the sequentially consistent engines, the happens-before checker for
// the lazy-release engine. Harnesses (mc, chaos) call this instead of
// hard-wiring sctrace.Check.
func (m *Module) TraceCheck(ops []sctrace.Op) []sctrace.Violation {
	return m.model.traceCheck(ops)
}

// SyncModel returns the consistency model's synchronization hooks for
// dsync.Service.AttachModel, or nil when the model has none. The
// cluster wires it after building both modules; callers must preserve
// the nil (attaching a typed nil would enable the payload path).
func (m *Module) SyncModel() *RCSync {
	return m.model.syncHooks()
}

// scModel is sequential consistency: the historical contract, now
// spelled out. No sync hooks; the SC checker is the oracle.
type scModel struct{}

func (scModel) traceCheck(ops []sctrace.Op) []sctrace.Violation { return sctrace.Check(ops) }
func (scModel) syncHooks() *RCSync                              { return nil }

// rcModel is lazy release consistency (rc.go holds the machinery).
type rcModel struct {
	sync *RCSync
}

func (mo *rcModel) traceCheck(ops []sctrace.Op) []sctrace.Violation { return sctrace.CheckRC(ops) }
func (mo *rcModel) syncHooks() *RCSync                              { return mo.sync }

// RCSync is the RC model's dsync payload implementation (it satisfies
// dsync.SyncModel structurally; dsm does not import dsync). Methods are
// defined in rc.go next to the machinery they drive.
type RCSync struct {
	m *Module
}

// ReleasePayload closes the current interval: push every twinned page's
// diff to its home, advance this host's vector timestamp, and return
// the encoded (timestamp, write-notice) payload to ride the releasing
// primitive.
func (s *RCSync) ReleasePayload(p *sim.Proc) ([]byte, error) {
	return s.m.rcRelease(p)
}

// AcquirePayload merges a grant's payload into this host's timestamp
// and notices, then pulls the diffs the notices imply for resident
// pages.
func (s *RCSync) AcquirePayload(p *sim.Proc, data []byte) error {
	return s.m.rcAcquire(p, data)
}

// MergePayload folds two payloads component-wise (max of vector
// timestamps, max of per-page notices). Pure; always returns a fresh
// slice.
func (s *RCSync) MergePayload(a, b []byte) []byte {
	return rcMergePayload(a, b)
}
