package dsm

// The SC-ABD quorum replication engine (PolicyQuorum): Attiya–Bar-Noy–
// Dolev majority voting adapted to a sequentially consistent DSM, after
// Ekström & Haridi's compositionally verified design. Every host keeps
// a replica of every page stamped with a tag — a (timestamp, writer
// host) pair ordered lexicographically — and every operation talks to a
// majority:
//
//	read:  query a majority for their versions (phase 1), adopt the
//	       highest tag's image, and write that winner back to a
//	       majority (phase 2) before returning — unless phase 1 already
//	       proved a majority stores it. The write-back is what makes
//	       reads safe: once a read returns a value, a majority stores
//	       it, so no later read can return an older one (the new/old
//	       inversion sequential consistency forbids).
//	write: query a majority for their versions, pick a tag strictly
//	       above every one seen (timestamp+1, writer host as the
//	       tiebreaker), and install value+tag at a majority.
//
// Any two majorities intersect, so each operation observes the globally
// newest completed version, and the virtual-time order of quorum
// completions is a sequentially consistent witness. Replicas live in
// their holder's native representation; page images travel in the
// sender's format and convert on receipt, exactly like an MRSW page
// transfer, so unlike architectures interoperate.
//
// Availability is the point: an operation completes inside any network
// component holding a majority of the hosts — the one engine that stays
// live through partitions. Fan-outs ride partition blips out with
// capped exponential virtual-time backoff (jitter from the seeded RNG,
// drawn only on this path, so no-fault runs stay bit-identical) and
// escalate to ErrHostDown only when the failure detector has declared
// so many replicas dead that no majority can ever answer again.

import (
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// quorumTag is a page version: a Lamport-style timestamp with the
// writing host as tiebreaker, ordered lexicographically. The zero tag
// is the allocation-time version every replica starts from.
type quorumTag struct {
	ts   uint32
	host HostID
}

// less reports whether t orders strictly before o.
func (t quorumTag) less(o quorumTag) bool {
	if t.ts != o.ts {
		return t.ts < o.ts
	}
	return t.host < o.host
}

// quorumMajority returns the quorum size over n replicas: the smallest
// set size any two of which must intersect.
func quorumMajority(n int) int { return n/2 + 1 }

// quorumPage is one host's replica of a page: the image in this host's
// native representation plus its version tag.
type quorumPage struct {
	data []byte
	tag  quorumTag
}

// qrmPageFor returns (creating zero-filled at the zero tag if needed)
// this host's replica of a page.
func (m *Module) qrmPageFor(page PageNo) *quorumPage {
	qp := m.qrm[page]
	if qp == nil {
		qp = &quorumPage{data: make([]byte, m.cfg.PageSize)} // vet:ignore hot-alloc — replica frames live for the run and must be zero-filled
		m.qrm[page] = qp
	}
	return qp
}

// quorumPeers lists every other host in ID order — the fan-out targets
// of a quorum round (this host's own replica is the remaining vote).
func (m *Module) quorumPeers() []HostID {
	peers := make([]HostID, 0, len(m.hosts)-1)
	for i := range m.hosts {
		if HostID(i) != m.id {
			peers = append(peers, HostID(i))
		}
	}
	return peers
}

// quorumEngine is PolicyQuorum's replication engine. Region operations
// run page by page: each page access is one full quorum operation,
// serialized per page by the local fault lock.
type quorumEngine struct {
	m *Module
}

func (e *quorumEngine) readRegion(p *sim.Proc, addr Addr, n int, fn func(seg []byte, off int)) error {
	m := e.m
	off := 0
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		t0 := p.Now()
		l := m.faultLockFor(pg)
		l.P(p)
		qp, err := m.quorumReadPage(p, pg)
		if err != nil {
			l.V()
			return err
		}
		seg := qp.data[pos-pageStart : hi-pageStart]
		fn(seg, off)
		if m.cfg.Mutation != MutStaleQuorumRead {
			// An ABD read COMMITS the value it returns: before returning,
			// a majority provably stores it (phase 1 confirmed it, or
			// phase 2 wrote it back). The value's own writer, though, may
			// record its write much later (still collecting acks) or
			// never (crashed mid-push) — so the read itself enters what
			// it committed into the witness, as a synthetic point write
			// backdated to the read's start. Backdating makes the entry
			// safe: phase-1 replies arrive after t0, and any NEWER
			// version reaches a majority only after some replica that
			// answered this read installs it — strictly after its reply,
			// hence after t0 — so this record can never supersede a newer
			// committed version in the completion-ordered witness. The
			// stale-read mutation commits nothing and must not get the
			// record, or it would legitimize its own stale returns.
			m.recordSCAt(p, sctrace.Write, t0, t0, Addr(pos), seg)
		}
		m.recordSC(p, sctrace.Read, t0, Addr(pos), seg)
		l.V()
		off += hi - pos
		pos = hi
	}
	return nil
}

func (e *quorumEngine) writeRegion(p *sim.Proc, addr Addr, n int, fill func(seg []byte, off int)) error {
	m := e.m
	off := 0
	end := int(addr) + n
	for pos := int(addr); pos < end; {
		pg := m.PageOf(Addr(pos))
		pageStart := int(pg) * m.cfg.PageSize
		hi := min(end, pageStart+m.cfg.PageSize)
		t0 := p.Now()
		l := m.faultLockFor(pg)
		l.P(p)
		var seg []byte
		err := m.quorumWritePage(p, pg, func(qp *quorumPage) {
			seg = qp.data[pos-pageStart : hi-pageStart]
			fill(seg, off)
		})
		if err != nil {
			l.V()
			return err
		}
		m.recordSC(p, sctrace.Write, t0, Addr(pos), seg)
		l.V()
		off += hi - pos
		pos = hi
	}
	return nil
}

func (e *quorumEngine) atomicSwap(p *sim.Proc, addr Addr, v int32) (int32, error) {
	panic("dsm: atomic operations are not defined under the quorum policy (majority-replicated registers admit no consensus-free read-modify-write); use the distributed synchronization facility")
}

func (e *quorumEngine) allocFirstTouch() bool  { return false }
func (e *quorumEngine) serverOnly() bool       { return false }
func (e *quorumEngine) sequencesUpdates() bool { return false }
func (e *quorumEngine) quorumReplicated() bool { return true }
func (e *quorumEngine) lazyRelease() bool      { return false }

// quorumReadPage is one full SC-ABD read of a page. The caller holds
// the page's fault lock; the returned replica holds the read's result
// in this host's native representation.
func (m *Module) quorumReadPage(p *sim.Proc, page PageNo) (*quorumPage, error) {
	m.stats.QuorumReads++
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind)))
	if m.cfg.Mutation == MutStaleQuorumRead {
		// Injected bug: trust the local replica without consulting a
		// majority or writing the winner back.
		return m.qrmPageFor(page), nil
	}
	qp, confirmed, err := m.quorumCollect(p, page)
	if err != nil {
		return nil, err
	}
	if !confirmed {
		// Phase 2: store what this read returns at a majority, so no
		// later read anywhere can return an older version.
		if err := m.quorumPush(p, page, qp); err != nil {
			return nil, err
		}
		m.stats.QuorumWriteBacks++
	}
	m.trace("quorum-read", page)
	return qp, nil
}

// quorumWritePage is one full SC-ABD write of a page. The caller holds
// the page's fault lock; mutate edits the local replica's image in
// place after phase 1 has made it current.
func (m *Module) quorumWritePage(p *sim.Proc, page PageNo, mutate func(qp *quorumPage)) error {
	m.stats.QuorumWrites++
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind)))
	if m.cfg.Mutation == MutSplitBrainWrite {
		// Injected bug: install locally and declare success without a
		// majority — no quorum ever orders this write against others.
		qp := m.qrmPageFor(page)
		mutate(qp)
		qp.tag = quorumTag{ts: qp.tag.ts + 1, host: m.id}
		m.checkpoint("quorum-write", page)
		return nil
	}
	qp, _, err := m.quorumCollect(p, page)
	if err != nil {
		return err
	}
	mutate(qp)
	qp.tag = quorumTag{ts: qp.tag.ts + 1, host: m.id}
	if err := m.quorumPush(p, page, qp); err != nil {
		return err
	}
	m.trace("quorum-write", page)
	m.checkpoint("quorum-write", page)
	return nil
}

// quorumCollect runs phase 1 of an SC-ABD operation: query replicas
// until a majority (counting this host's own) has answered, adopt the
// highest tag seen, and report whether that winner is already proven to
// be stored at a majority (every phase-1 vote carried it). The caller
// holds the page's fault lock.
func (m *Module) quorumCollect(p *sim.Proc, page PageNo) (qp *quorumPage, confirmed bool, err error) {
	qp = m.qrmPageFor(page)
	maj := quorumMajority(len(m.hosts))
	if maj == 1 {
		return qp, true, nil // single-host cluster: the replica is the majority
	}
	replies, err := m.quorumFanout(p, page, maj-1, func(dst HostID) *proto.Message {
		return &proto.Message{Kind: proto.KindQuorumRead, Page: uint32(page)}
	})
	if err != nil {
		return nil, false, err
	}
	winner := qp.tag
	winIdx := -1
	for i, r := range replies {
		if r == nil {
			continue
		}
		t := quorumTag{ts: r.Arg(0), host: HostID(r.Arg(1))}
		if winner.less(t) {
			winner = t
			winIdx = i
		}
	}
	if winIdx >= 0 && qp.tag.less(winner) {
		// A peer holds a newer version: install its image locally,
		// converting from the peer's native representation. The replica
		// is re-checked after the conversion sleep — a concurrent
		// inbound quorum write may have advanced it past the winner,
		// and a tag must never regress.
		r := replies[winIdx]
		buf := bufpool.Get(len(r.Data))
		copy(buf, r.Data)
		m.quorumConvert(p, page, buf, arch.Kind(r.SrcArch))
		if qp.tag.less(winner) {
			copy(qp.data, buf)
			qp.tag = winner
			m.stats.PagesFetched++
			m.stats.BytesFetched += len(buf)
			m.pageFetches[page]++
			m.trace("fetch", page)
		}
		bufpool.Put(buf)
	}
	votes := 0
	if qp.tag == winner {
		votes++
	}
	for _, r := range replies {
		if r != nil && (quorumTag{ts: r.Arg(0), host: HostID(r.Arg(1))}) == winner {
			votes++
		}
	}
	for _, r := range replies {
		if r != nil {
			bufpool.Put(r.TakeWire())
		}
	}
	return qp, votes >= maj, nil
}

// quorumPush runs phase 2 of an SC-ABD operation: store this host's
// current replica (value and tag) at a majority. The image is
// snapshotted into a pooled buffer first so retransmissions inside the
// fan-out cannot pick up concurrent local updates. The caller holds the
// page's fault lock.
func (m *Module) quorumPush(p *sim.Proc, page PageNo, qp *quorumPage) error {
	maj := quorumMajority(len(m.hosts))
	if maj == 1 {
		return nil
	}
	used := len(qp.data)
	if mt, ok := m.meta[page]; ok {
		used = mt.used
	}
	tag := qp.tag
	data := bufpool.Get(used)
	copy(data, qp.data[:used])
	_, err := m.quorumFanout(p, page, maj-1, func(dst HostID) *proto.Message {
		return &proto.Message{
			Kind: proto.KindQuorumWrite,
			Page: uint32(page),
			Args: []uint32{tag.ts, uint32(tag.host)},
			Data: data,
		}
	})
	bufpool.Put(data)
	return err
}

// quorumFanout runs one quorum round: fan the request out to every
// peer and return once `need` of them have replied (the initiator's own
// replica is the vote that completes the majority). Partition blips —
// enough peers alive, a quorum of them unreachable this instant — are
// ridden out with capped exponential virtual-time backoff instead of
// escalating; only the failure detector proving that no majority can
// ever answer again (a majority of replicas dead) surfaces ErrHostDown.
// The replies slice is indexed like quorumPeers(), nil for stragglers;
// the caller owns the non-nil replies' wire buffers.
func (m *Module) quorumFanout(p *sim.Proc, page PageNo, need int, mk func(dst HostID) *proto.Message) ([]*proto.Message, error) {
	peers := m.quorumPeers()
	backoff := sim.Duration(m.cfg.Params.RequestTimeout)
	for {
		replies, err := m.ep.CallQuorum(p, peers, need, mk) // vet:ignore lock-remote — quorum round: replicas answer without taking any lock, so the cross-host wait cannot cycle
		if err == nil {
			return replies, nil
		}
		if errors.Is(err, remoteop.ErrPeerDead) {
			// The detector has declared so many replicas dead that no
			// majority can ever answer: permanent, not a partition.
			return nil, m.callFailed(fmt.Errorf("%w: page %d has no live quorum: %v", ErrHostDown, page, err),
				"host %d quorum round for page %d", m.id, page)
		}
		if m.liveness == nil {
			// Without failure detection a quorum timeout is a protocol
			// bug, exactly like any other unanswered call.
			panic(fmt.Sprintf("dsm: host %d quorum round for page %d: %v", m.id, page, err))
		}
		// A majority is alive but unreachable this instant — the
		// partition case quorum replication exists for. Back off and
		// retry: exponential, capped at the blocking retry interval,
		// with jitter from the seeded RNG (drawn only on this path, so
		// fault-free runs never consume it).
		m.stats.QuorumRetries++
		m.trace("quorum-retry", page)
		p.Sleep(backoff + sim.Duration(m.k.Rand().Int63n(int64(backoff/4)+1)))
		m.exitIfCrashed(p)
		if backoff < sim.Duration(m.cfg.Params.BlockingRetryInterval) {
			backoff *= 2
			if backoff > sim.Duration(m.cfg.Params.BlockingRetryInterval) {
				backoff = sim.Duration(m.cfg.Params.BlockingRetryInterval)
			}
		}
	}
}

// quorumConvert converts a page image received from a replica of the
// given machine kind into this host's representation, in place.
func (m *Module) quorumConvert(p *sim.Proc, page PageNo, data []byte, srcKind arch.Kind) {
	srcArch, err := arch.ByKind(srcKind)
	if err != nil {
		panic(fmt.Sprintf("dsm: quorum reply with unknown architecture %d", srcKind))
	}
	if len(data) == 0 || !m.cfg.ConversionEnabled || srcArch.Compatible(m.arch) {
		return
	}
	mt, ok := m.meta[page]
	if !ok {
		return
	}
	typ := m.cfg.Registry.MustGet(mt.typeID)
	n := len(data) / typ.Size
	if n == 0 {
		return
	}
	p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
	ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(srcKind))
	rep, cerr := m.cfg.Registry.ConvertRegion(mt.typeID, data[:n*typ.Size], srcArch, m.arch, ptrOff)
	if cerr != nil {
		panic(fmt.Sprintf("dsm: converting quorum page %d: %v", page, cerr))
	}
	m.stats.Conversions++
	m.stats.ConvReport.Add(rep)
}

// handleQuorumRead answers a phase-1 query with this replica's version:
// tag in the args, image (allocated prefix, native representation) in
// the data. It takes no locks, deliberately: the replica may itself be
// parked inside a quorum round holding its local fault lock.
func (m *Module) handleQuorumRead(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	if !m.engine.quorumReplicated() {
		bufpool.Put(req.TakeWire())
		return // misdirected: this cluster does not run the quorum engine
	}
	page := PageNo(req.Page)
	bufpool.Put(req.TakeWire())
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind)))
	qp := m.qrmPageFor(page)
	used := 0
	if mt, ok := m.meta[page]; ok {
		used = mt.used
	}
	data := make([]byte, used) // vet:ignore hot-alloc — retained by the dedup reply cache
	copy(data, qp.data[:used])
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindQuorumReadReply,
		Page: req.Page,
		Args: []uint32{qp.tag.ts, uint32(qp.tag.host)},
		Data: data,
	})
}

// handleQuorumWrite installs a (value, tag) version at this replica if
// the tag orders above the one it holds — stale and duplicate installs
// are acknowledged without effect, which is what makes phase 2
// idempotent under retransmission. Lock-free like handleQuorumRead.
func (m *Module) handleQuorumWrite(p *sim.Proc, req *proto.Message) {
	m.exitIfCrashed(p)
	if !m.engine.quorumReplicated() {
		bufpool.Put(req.TakeWire())
		return
	}
	page := PageNo(req.Page)
	tag := quorumTag{ts: req.Arg(0), host: HostID(req.Arg(1))}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.RemoteOpProcess.Of(m.arch.Kind)))
	qp := m.qrmPageFor(page)
	if qp.tag.less(tag) {
		srcKind := arch.Kind(req.SrcArch)
		data := bufpool.Get(len(req.Data))
		copy(data, req.Data)
		bufpool.Put(req.TakeWire())
		m.quorumConvert(p, page, data, srcKind)
		// Re-check after the conversion sleep: a concurrent install may
		// have advanced the replica past this version.
		if qp.tag.less(tag) {
			copy(qp.data, data)
			qp.tag = tag
			m.trace("quorum-install", page)
		}
		bufpool.Put(data)
	} else {
		bufpool.Put(req.TakeWire())
	}
	m.checkpoint("quorum-install", page)
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindQuorumWriteAck, Page: req.Page})
}
