package dsm

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// rig wires a kernel, network, endpoints and DSM modules for a cluster.
type rig struct {
	k     *sim.Kernel
	cfg   *Config
	net   *netsim.Network
	mods  []*Module
	check *InvariantChecker
}

type rigOpt func(*Config)

func withPageSize(n int) rigOpt      { return func(c *Config) { c.PageSize = n } }
func withoutConversion() rigOpt      { return func(c *Config) { c.ConversionEnabled = false } }
func withSameKindPreference() rigOpt { return func(c *Config) { c.PreferSameKindSource = true } }
func withRegistry(r *conv.Registry) rigOpt {
	return func(c *Config) { c.Registry = r }
}

func newRig(t *testing.T, kinds []arch.Kind, opts ...rigOpt) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	params := model.Default()
	cfg := &Config{
		PageSize:          8192,
		SpaceSize:         1 << 20,
		Registry:          conv.NewRegistry(),
		Params:            &params,
		ConversionEnabled: true,
		Bases:             DefaultBases(),
	}
	for _, o := range opts {
		o(cfg)
	}
	net := netsim.New(k, &params)
	r := &rig{k: k, cfg: cfg, net: net}
	hosts := make([]arch.Arch, len(kinds))
	for i, kd := range kinds {
		a, err := arch.ByKind(kd)
		if err != nil {
			t.Fatal(err)
		}
		hosts[i] = a
	}
	for i := range kinds {
		ifc, err := net.Attach(netsim.HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ep := remoteop.New(k, ifc, kinds[i], &params)
		mod, err := New(k, ep, cfg, hosts)
		if err != nil {
			t.Fatal(err)
		}
		ep.Start()
		r.mods = append(r.mods, mod)
	}
	// Every rig-based test runs under the protocol invariant checker; a
	// violation anywhere in the protocol fails the test that drove it.
	r.check = AttachChecker(r.mods...)
	r.check.SetFailHandler(func(v Violation) { t.Error(v) })
	return r
}

// run executes fn as a simulated process, drains the kernel, then
// audits every page's invariants in the final quiescent state.
func (r *rig) run(name string, fn func(p *sim.Proc)) {
	r.k.Spawn(name, fn)
	r.k.Run()
	r.check.CheckAll("teardown")
}

func TestAllocAndLocalReadWrite(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 100)
		if err != nil {
			t.Error(err)
			return
		}
		want := make([]int32, 100)
		for i := range want {
			want[i] = int32(i*i - 50)
		}
		r.mods[0].WriteInt32s(p, addr, want)
		got := make([]int32, 100)
		r.mods[0].ReadInt32s(p, addr, got)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("element %d = %d, want %d", i, got[i], want[i])
				return
			}
		}
	})
}

func TestRemoteAllocGoesThroughManager(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		a1, err := r.mods[1].Alloc(p, conv.Int32, 10)
		if err != nil {
			t.Error(err)
			return
		}
		a2, err := r.mods[0].Alloc(p, conv.Int32, 10)
		if err != nil {
			t.Error(err)
			return
		}
		if a1 == a2 {
			t.Errorf("overlapping allocations at %d", a1)
		}
		// Both hosts must know the metadata.
		if _, ok := r.mods[1].metaFor(r.mods[1].PageOf(a2)); !ok {
			t.Error("host 1 missing metadata for host 0's allocation")
		}
	})
}

func TestOneTypePerPage(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	r.run("main", func(p *sim.Proc) {
		aInt, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		aFlt, err := r.mods[0].Alloc(p, conv.Float32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if r.mods[0].PageOf(aInt) == r.mods[0].PageOf(aFlt) {
			t.Error("int and float allocations share a page")
		}
		// Same type continues filling the same page.
		aInt2, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		if r.mods[0].PageOf(aInt) != r.mods[0].PageOf(aInt2) {
			t.Error("same-type allocations did not pack into one page")
		}
		if aInt2 != aInt+16 {
			t.Errorf("second int allocation at %d, want %d", aInt2, aInt+16)
		}
	})
}

func TestHeterogeneousMigrationConvertsIntegers(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 256)
		if err != nil {
			t.Error(err)
			return
		}
		want := make([]int32, 256)
		for i := range want {
			want[i] = int32(0x01020304 * (i + 1))
		}
		r.mods[0].WriteInt32s(p, addr, want) // Sun writes big-endian
		got := make([]int32, 256)
		r.mods[1].ReadInt32s(p, addr, got) // Firefly reads after migration
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("firefly read [%d] = %#x, want %#x", i, got[i], want[i])
				return
			}
		}
		if r.mods[1].Stats().Conversions == 0 {
			t.Error("no conversion recorded for Sun→Firefly transfer")
		}
	})
}

func TestConversionDisabledCorruptsData(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withoutConversion())
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 8)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{0x01020304, 0, 0, 0, 0, 0, 0, 0})
		got := make([]int32, 1)
		r.mods[1].ReadInt32s(p, addr, got)
		if got[0] == 0x01020304 {
			t.Error("value survived unconverted cross-architecture transfer; heterogeneity unmodelled")
		}
	})
}

func TestFloatsSurviveIEEEVaxMigration(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Float64, 16)
		if err != nil {
			t.Error(err)
			return
		}
		want := []float64{3.141592653589793, -2.718281828459045, 1e100, -1e-100,
			0, 42.5, 6.02214076e23, -0.1, 7, 8, 9, 10, 11, 12, 13, 14}
		r.mods[0].WriteFloat64s(p, addr, want)
		got := make([]float64, 16)
		r.mods[1].ReadFloat64s(p, addr, got)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("double [%d] = %v on firefly, want %v", i, got[i], want[i])
			}
		}
		// And back to a second Sun read via migration to host 0.
		r.mods[1].WriteFloat64s(p, addr, got) // firefly takes ownership
		back := make([]float64, 16)
		r.mods[0].ReadFloat64s(p, addr, back)
		for i := range want {
			if back[i] != want[i] {
				t.Errorf("double [%d] = %v back on sun, want %v", i, back[i], want[i])
			}
		}
	})
}

func TestMRSWInvariantAndInvalidation(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun, arch.Sun})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		pg := r.mods[0].PageOf(addr)
		// Two hosts read: replicas on both.
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		r.mods[2].ReadInt32s(p, addr, v[:])
		if r.mods[1].Access(pg) != ReadAccess || r.mods[2].Access(pg) != ReadAccess {
			t.Errorf("read replicas missing: %v %v", r.mods[1].Access(pg), r.mods[2].Access(pg))
		}
		// Host 1 writes: host 2's replica must be invalidated.
		r.mods[1].WriteInt32s(p, addr, []int32{7})
		if r.mods[1].Access(pg) != WriteAccess {
			t.Errorf("writer access %v, want write", r.mods[1].Access(pg))
		}
		if r.mods[2].Access(pg) != NoAccess {
			t.Errorf("stale replica survived a write: %v", r.mods[2].Access(pg))
		}
		// Reader sees the new value.
		r.mods[2].ReadInt32s(p, addr, v[:])
		if v[0] != 7 {
			t.Errorf("reader got %d, want 7", v[0])
		}
	})
}

func TestWriteUpgradeWithoutTransfer(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:]) // replica on host 1
		fetchedBefore := r.mods[1].Stats().PagesFetched
		r.mods[1].WriteInt32s(p, addr, []int32{5}) // upgrade in place
		s := r.mods[1].Stats()
		if s.PagesFetched != fetchedBefore {
			t.Error("upgrade transferred the page body needlessly")
		}
		if s.Upgrades == 0 {
			t.Error("upgrade not recorded")
		}
	})
}

func TestOnlyAllocatedPrefixIsTransferred(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun})
	r.run("main", func(p *sim.Proc) {
		// 10 ints = 40 bytes in an 8 KB page.
		addr, err := r.mods[0].Alloc(p, conv.Int32, 10)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, make([]int32, 10))
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if got := r.mods[1].Stats().BytesFetched; got != 40 {
			t.Errorf("fetched %d bytes, want 40 (allocated prefix only)", got)
		}
	})
}

func TestPointerRebasingAcrossKinds(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		ptrs, err := r.mods[0].Alloc(p, conv.Pointer, 4)
		if err != nil {
			t.Error(err)
			return
		}
		ints, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WritePointer(p, ptrs, ints, true)
		r.mods[0].WritePointer(p, ptrs+4, 0, false) // null
		// Read on the Firefly: page converts, pointers rebase.
		got, ok := r.mods[1].ReadPointer(p, ptrs)
		if !ok || got != ints {
			t.Errorf("pointer read %v ok=%v, want %v", got, ok, ints)
		}
		if _, ok := r.mods[1].ReadPointer(p, ptrs+4); ok {
			t.Error("null pointer read as valid")
		}
	})
}

func TestSmallestPageAlgorithmSunGroupFault(t *testing.T) {
	// 1 KB DSM pages: one Sun VM fault fetches all 8 sub-pages.
	r := newRig(t, []arch.Kind{arch.Firefly, arch.Sun}, withPageSize(1024))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4096) // 16 KB = 16 pages
		if err != nil {
			t.Error(err)
			return
		}
		vals := make([]int32, 4096)
		for i := range vals {
			vals[i] = int32(i)
		}
		r.mods[0].WriteInt32s(p, addr, vals)
		// The Sun reads one int: it must fault once and fetch 8 pages.
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if v[0] != 0 {
			t.Errorf("read %d, want 0", v[0])
		}
		s := r.mods[1].Stats()
		if s.ReadFaults != 1 {
			t.Errorf("%d read faults, want 1 (one VM fault)", s.ReadFaults)
		}
		if s.PagesFetched != 8 {
			t.Errorf("%d DSM pages fetched, want 8 (the whole VM page)", s.PagesFetched)
		}
		// Reading another int in the same VM page costs nothing more.
		r.mods[1].ReadInt32s(p, addr+4, v[:])
		if got := r.mods[1].Stats().ReadFaults; got != 1 {
			t.Errorf("second read in the VM page faulted (%d faults)", got)
		}
	})
}

func TestSmallestPageFireflyFetchesOnePage(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withPageSize(1024))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4096)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, make([]int32, 4096))
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if got := r.mods[1].Stats().PagesFetched; got != 1 {
			t.Errorf("firefly fetched %d pages, want 1", got)
		}
	})
}

func TestPreferSameKindSourceAvoidsConversion(t *testing.T) {
	// Owner is a Sun; a Firefly already holds a read copy; a second
	// Firefly reads — the copy must come from the Firefly holder.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withSameKindPreference())
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 64)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{123})
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:]) // Firefly 1 now holds a converted copy
		served1 := r.mods[1].Stats().PagesServed
		r.mods[2].ReadInt32s(p, addr, v[:]) // Firefly 2 should be served by Firefly 1
		if v[0] != 123 {
			t.Errorf("read %d, want 123", v[0])
		}
		if r.mods[1].Stats().PagesServed != served1+1 {
			t.Error("same-kind holder did not serve the second read")
		}
		if r.mods[2].Stats().Conversions != 0 {
			t.Error("second firefly converted despite same-kind source")
		}
	})
}

func TestSequentialConsistencyPingPong(t *testing.T) {
	// Two hosts alternately increment a shared counter via semantically
	// racy but protocol-serialized writes; every increment must land.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	const rounds = 20
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{0})
		done := sim.NewSemaphore(r.k, 0)
		for h := 0; h < 2; h++ {
			mod := r.mods[h]
			r.k.Spawn(fmt.Sprintf("writer%d", h), func(wp *sim.Proc) {
				for i := 0; i < rounds; i++ {
					var v [1]int32
					mod.ReadInt32s(wp, addr, v[:])
					// Read-modify-write without holding a lock across
					// the two ops: the final count may drop updates,
					// but a single WriteInt32s burst is atomic. To test
					// protocol serialization we instead write disjoint
					// slots below; here we just hammer the page.
					mod.WriteInt32s(wp, addr, []int32{v[0] + 1})
				}
				done.V()
			})
		}
		done.P(p)
		done.P(p)
		var final [1]int32
		r.mods[0].ReadInt32s(p, addr, final[:])
		if final[0] < rounds || final[0] > 2*rounds {
			t.Errorf("final counter %d outside [%d,%d]", final[0], rounds, 2*rounds)
		}
	})
}

func TestConcurrentDisjointWritersAllLand(t *testing.T) {
	// Each host writes its own slots of a shared page under contention;
	// after a barrier, every write must be visible everywhere.
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly, arch.Sun}
	r := newRig(t, kinds)
	const perHost = 8
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, perHost*len(kinds))
		if err != nil {
			t.Error(err)
			return
		}
		done := sim.NewSemaphore(r.k, 0)
		for h := range kinds {
			h := h
			mod := r.mods[h]
			r.k.Spawn(fmt.Sprintf("w%d", h), func(wp *sim.Proc) {
				for i := 0; i < perHost; i++ {
					slot := Addr(4 * (h*perHost + i))
					mod.WriteInt32s(wp, addr+slot, []int32{int32(h*1000 + i)})
				}
				done.V()
			})
		}
		for range kinds {
			done.P(p)
		}
		got := make([]int32, perHost*len(kinds))
		r.mods[0].ReadInt32s(p, addr, got)
		for h := range kinds {
			for i := 0; i < perHost; i++ {
				if got[h*perHost+i] != int32(h*1000+i) {
					t.Errorf("slot [%d][%d] = %d, want %d", h, i, got[h*perHost+i], h*1000+i)
				}
			}
		}
	})
}

func TestAccessorPanicsOnTypeMismatch(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("float accessor on int page did not panic")
			}
		}()
		var v [1]float32
		r.mods[0].ReadFloat32s(p, addr, v[:])
	})
}

func TestAccessorPanicsOnUnallocated(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	r.run("main", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("access to unallocated page did not panic")
			}
		}()
		var v [1]int32
		r.mods[0].ReadInt32s(p, 0, v[:])
	})
}

func TestStructMigration(t *testing.T) {
	reg := conv.NewRegistry()
	rec, err := reg.RegisterStruct("record", []conv.Field{
		{Type: conv.Int32, Count: 3},
		{Type: conv.Float32, Count: 3},
		{Type: conv.Int16, Count: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withRegistry(reg))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, rec, 4)
		if err != nil {
			t.Error(err)
			return
		}
		sun := arch.SunArch
		buf := make([]byte, 32)
		conv.PutInt32(sun, buf[0:], 7)
		conv.PutInt32(sun, buf[4:], -8)
		conv.PutInt32(sun, buf[8:], 9)
		conv.PutFloat32(sun, buf[12:], 1.25)
		conv.PutFloat32(sun, buf[16:], -2.5)
		conv.PutFloat32(sun, buf[20:], 3.75)
		conv.PutInt16(sun, buf[24:], 1)
		conv.PutInt16(sun, buf[26:], 2)
		conv.PutInt16(sun, buf[28:], 3)
		conv.PutInt16(sun, buf[30:], 4)
		r.mods[0].WriteStruct(p, addr, rec, buf)

		got := make([]byte, 32)
		r.mods[1].ReadStruct(p, addr, rec, got)
		ffy := arch.FireflyArch
		if conv.GetInt32(ffy, got[0:]) != 7 || conv.GetInt32(ffy, got[4:]) != -8 || conv.GetInt32(ffy, got[8:]) != 9 {
			t.Error("record ints wrong after migration")
		}
		if conv.GetFloat32(ffy, got[12:]) != 1.25 || conv.GetFloat32(ffy, got[16:]) != -2.5 || conv.GetFloat32(ffy, got[20:]) != 3.75 {
			t.Error("record floats wrong after migration")
		}
		if conv.GetInt16(ffy, got[24:]) != 1 || conv.GetInt16(ffy, got[30:]) != 4 {
			t.Error("record shorts wrong after migration")
		}
	})
}

func TestFloatAnomaliesCounted(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Float64, 4)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteFloat64s(p, addr, []float64{1e308, 1, 2, 3}) // overflows VAX G
		var v [4]float64
		r.mods[1].ReadFloat64s(p, addr, v[:])
		if r.mods[1].Stats().ConvReport.Overflows != 1 {
			t.Errorf("overflows %d, want 1", r.mods[1].Stats().ConvReport.Overflows)
		}
	})
}

// measureFault measures the end-to-end delay of one 8 KB page fault in a
// given manager/owner scenario, reproducing Table 4's methodology.
func measureFault(t *testing.T, reqKind, ownKind arch.Kind, scenario string, write bool) time.Duration {
	t.Helper()
	// Host layout: 0 = allocation manager (kept out of the measurement
	// except where it must play a role), pages are assigned managers by
	// page % nHosts. We build a 4-host cluster [aux, R, M, O] and pick
	// the page whose manager matches the scenario.
	//
	// scenario "RM-O": requester is the manager, owner remote.
	// scenario "R-MO": manager and owner are the same remote host.
	// scenario "R-M-O": requester, manager, owner all distinct.
	auxKind := arch.Sun
	kinds := []arch.Kind{auxKind, reqKind, auxKind, ownKind}
	// Manager must be: R (host 1) for RM-O; O (host 3) for R-MO; a third
	// host (host 2) for R-M-O.
	var mgrHost int
	switch scenario {
	case "RM-O":
		mgrHost = 1
	case "R-MO":
		mgrHost = 3
	case "R-M-O":
		mgrHost = 2
	default:
		t.Fatalf("unknown scenario %s", scenario)
	}
	kinds[2] = auxKind
	if scenario == "R-M-O" {
		// Manager kind matters only for its processing cost; the paper
		// does not vary it, so keep it a Sun.
		kinds[2] = arch.Sun
	}
	r := newRig(t, kinds)
	var delay time.Duration
	r.run("main", func(p *sim.Proc) {
		// Find a full page managed by mgrHost: allocate pages until one
		// has the right manager. Each 2048-int allocation is one page.
		var addr Addr
		for {
			a, err := r.mods[0].Alloc(p, conv.Int32, 2048)
			if err != nil {
				t.Error(err)
				return
			}
			if int(r.mods[0].manager(r.mods[0].PageOf(a))) == mgrHost {
				addr = a
				break
			}
		}
		// Owner (host 3) takes ownership by writing.
		r.mods[3].WriteInt32s(p, addr, make([]int32, 2048))
		p.Sleep(time.Second) // let confirmations drain
		// Requester (host 1) faults; measure.
		start := p.Now()
		if write {
			r.mods[1].WriteInt32s(p, addr, []int32{1})
		} else {
			var v [1]int32
			r.mods[1].ReadInt32s(p, addr, v[:])
		}
		delay = start.Sub(start) // placeholder; recompute below
		delay = p.Now().Sub(start)
	})
	return delay
}

func TestTable4EmergentFaultDelays(t *testing.T) {
	// Paper Table 4 (ms), 8 KB pages, read faults. Columns are labelled
	// owner→requester pairs; conversion included for unlike pairs.
	tests := []struct {
		name      string
		req, own  arch.Kind
		scenario  string
		write     bool
		wantMS    float64
		tolerance float64
	}{
		{name: "Sun→Sun R/M→O read", req: arch.Sun, own: arch.Sun, scenario: "RM-O", wantMS: 26.4, tolerance: 0.12},
		{name: "Sun→Sun R/M→O write", req: arch.Sun, own: arch.Sun, scenario: "RM-O", write: true, wantMS: 26.7, tolerance: 0.12},
		{name: "Sun→Sun R→M/O read", req: arch.Sun, own: arch.Sun, scenario: "R-MO", wantMS: 29.6, tolerance: 0.12},
		{name: "Sun→Sun R→M→O read", req: arch.Sun, own: arch.Sun, scenario: "R-M-O", wantMS: 31.7, tolerance: 0.12},
		{name: "Ffly→Ffly R/M→O read", req: arch.Firefly, own: arch.Firefly, scenario: "RM-O", wantMS: 46.5, tolerance: 0.12},
		{name: "Ffly→Ffly R→M→O read", req: arch.Firefly, own: arch.Firefly, scenario: "R-M-O", wantMS: 54.4, tolerance: 0.15},
		{name: "Ffly→Sun R/M→O read", req: arch.Sun, own: arch.Firefly, scenario: "RM-O", wantMS: 47.7, tolerance: 0.15},
		{name: "Sun→Ffly R/M→O read", req: arch.Firefly, own: arch.Sun, scenario: "RM-O", wantMS: 56.3, tolerance: 0.18},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := measureFault(t, tt.req, tt.own, tt.scenario, tt.write)
			gotMS := float64(got) / float64(time.Millisecond)
			lo, hi := tt.wantMS*(1-tt.tolerance), tt.wantMS*(1+tt.tolerance)
			if gotMS < lo || gotMS > hi {
				t.Errorf("fault delay %.2f ms, paper %.1f ms (tolerance ±%.0f%%)",
					gotMS, tt.wantMS, tt.tolerance*100)
			}
		})
	}
}
