package dsm

import (
	"fmt"
	"sort"

	"repro/internal/conv"
	"repro/internal/proto"
	"repro/internal/sim"
)

// The typed allocator (§2.3): a malloc-like subroutine with an extra
// type argument that lays allocations out so a page contains data of
// only one type. Allocation is centralized at host 0; the resulting page
// metadata (type, bytes in use) is replicated to every host, mirroring
// the paper's global static table, so any receiver can convert any page.

// allocator is the host-0 allocation manager state.
type allocator struct {
	cfg *Config
	// nextPage is the first never-touched page.
	nextPage PageNo
	// partial tracks, per type, a partially filled page to continue
	// filling (the "one type per page" packing rule).
	partial map[conv.TypeID]partialPage
}

type partialPage struct {
	page PageNo
	off  int
}

func newAllocator(cfg *Config) *allocator {
	return &allocator{cfg: cfg, partial: make(map[conv.TypeID]partialPage)}
}

// assign reserves space for count elements of the given type and
// returns the starting address plus the per-page metadata updates.
func (a *allocator) assign(t *conv.Type, count int) (Addr, map[PageNo]pageMeta, error) {
	if count <= 0 {
		return 0, nil, fmt.Errorf("dsm: allocation of %d elements", count)
	}
	pageSize := a.cfg.PageSize
	total := t.Size * count
	updates := make(map[PageNo]pageMeta)

	// Continue filling a partially used page of the same type when the
	// request fits in it entirely (keeps allocations contiguous).
	if pp, ok := a.partial[t.ID]; ok && pp.off+total <= pageSize {
		addr := Addr(int(pp.page)*pageSize + pp.off)
		newOff := pp.off + total
		updates[pp.page] = pageMeta{typeID: t.ID, used: newOff}
		if newOff == pageSize {
			delete(a.partial, t.ID)
		} else {
			a.partial[t.ID] = partialPage{page: pp.page, off: newOff}
		}
		return addr, updates, nil
	}

	if pageSize%t.Size != 0 && total > pageSize {
		return 0, nil, fmt.Errorf("dsm: %s elements (%d bytes) do not divide the page size %d; multi-page arrays of this type would straddle pages",
			t.Name, t.Size, pageSize)
	}
	pages := (total + pageSize - 1) / pageSize
	if int(a.nextPage)+pages > a.cfg.SpaceSize/pageSize {
		return 0, nil, fmt.Errorf("dsm: out of shared memory (%d bytes requested)", total)
	}
	start := a.nextPage
	a.nextPage += PageNo(pages)
	addr := Addr(int(start) * pageSize)
	remaining := total
	for i := 0; i < pages; i++ {
		used := min(remaining, pageSize)
		updates[start+PageNo(i)] = pageMeta{typeID: t.ID, used: used}
		remaining -= used
	}
	last := start + PageNo(pages-1)
	lastUsed := updates[last].used
	if lastUsed < pageSize {
		a.partial[t.ID] = partialPage{page: last, off: lastUsed}
	}
	return addr, updates, nil
}

// Alloc reserves count elements of the registered type and returns the
// DSM address of the first. It may be called from any host; the request
// is served by the allocation manager (host 0) and the page metadata is
// distributed to every host before the address is returned.
func (m *Module) Alloc(p *sim.Proc, typeID conv.TypeID, count int) (Addr, error) {
	if m.alloc != nil {
		return m.allocLocal(p, typeID, count)
	}
	resp, err := m.ep.Call(p, 0, &proto.Message{
		Kind: proto.KindAlloc,
		Args: []uint32{uint32(typeID), uint32(count)},
	})
	if err != nil {
		return 0, err
	}
	if resp.Arg(1) == 0 {
		return 0, fmt.Errorf("dsm: allocation refused by manager (type %d × %d)", typeID, count)
	}
	return Addr(resp.Arg(0)), nil
}

// allocLocal performs the allocation on the manager host itself.
func (m *Module) allocLocal(p *sim.Proc, typeID conv.TypeID, count int) (Addr, error) {
	t, ok := m.cfg.Registry.Get(typeID)
	if !ok {
		return 0, fmt.Errorf("dsm: type %d not registered", typeID)
	}
	addr, updates, err := m.alloc.assign(t, count)
	if err != nil {
		return 0, err
	}
	pages := sortedPages(updates)
	for _, page := range pages {
		mt := updates[page]
		if m.cfg.Mutation == MutAllocOverrun {
			// Injected bug: record one byte too many as allocated — the
			// prefix is no longer a whole number of elements and can
			// reach past the page end.
			mt.used++
		}
		_, existed := m.meta[page]
		m.meta[page] = mt
		// First-touch ownership (page policies): the allocation manager
		// holds every fresh page as a zero-filled writable copy until
		// someone faults it away. Under the central policy pages live
		// at their servers instead. Strictly the FIRST touch: a later
		// allocation packing more objects onto a partially-used page must
		// leave the page's coherence state alone — by then the page may
		// have been faulted away, and re-granting the manager access here
		// would resurrect its stale frame outside the copyset, which a
		// subsequent local fault would happily read instead of fetching
		// the owner's current data.
		if m.engine.allocFirstTouch() && !existed {
			lp := m.localPageFor(page)
			if lp.access == NoAccess {
				lp.access = WriteAccess
			}
			m.dir.allocOwned(page)
		}
	}
	if err := m.distributeMeta(p, pages, updates); err != nil {
		return 0, err
	}
	for _, page := range pages {
		m.checkpoint("allocated", page)
	}
	return addr, nil
}

// sortedPages lists a metadata update's pages in increasing order so
// iteration — and the network traffic it drives — is deterministic.
func sortedPages(updates map[PageNo]pageMeta) []PageNo {
	pages := make([]PageNo, 0, len(updates))
	for pg := range updates {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// distributeMeta replicates page metadata to every other host and waits
// for acknowledgements. Pages are announced in increasing page order: a
// map-ordered walk here once made the metadata message sequence — and
// with it the whole simulation timeline — vary run to run.
func (m *Module) distributeMeta(p *sim.Proc, pages []PageNo, updates map[PageNo]pageMeta) error {
	var others []HostID
	for h := range m.hosts {
		if HostID(h) != m.id {
			others = append(others, HostID(h))
		}
	}
	if len(others) == 0 {
		return nil
	}
	for _, page := range pages {
		mt := updates[page]
		msg := func() *proto.Message {
			return &proto.Message{
				Kind: proto.KindPageMeta,
				Page: uint32(page),
				Args: []uint32{uint32(mt.typeID), uint32(mt.used)},
			}
		}
		var err error
		if len(others) > proto.MaxArgs {
			// Large clusters announce metadata as one physical broadcast
			// (every host needs it, so no target filter is required) —
			// on a switched topology that is one frame per segment along
			// the multicast tree instead of a per-host unicast storm.
			// Small clusters keep the original per-host calls so
			// existing runs stay bit-identical.
			_, err = m.ep.CallMulticast(p, others, msg())
		} else {
			_, err = m.ep.CallAll(p, others, func(HostID) *proto.Message { return msg() })
		}
		if err != nil {
			return fmt.Errorf("dsm: distributing metadata for page %d: %w", page, err)
		}
	}
	return nil
}

// handleAlloc serves an allocation request at the allocation manager.
func (m *Module) handleAlloc(p *sim.Proc, req *proto.Message) {
	if m.alloc == nil {
		return // misdirected; requester will time out
	}
	m.protoCPU.Use(p, m.cfg.Params.ManagerProcess.Of(m.arch.Kind))
	addr, err := m.allocLocal(p, conv.TypeID(req.Arg(0)), int(req.Arg(1)))
	okFlag := uint32(1)
	if err != nil {
		okFlag = 0
	}
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindAllocReply,
		Args: []uint32{uint32(addr), okFlag},
	})
}

// handlePageMeta installs replicated allocation metadata.
func (m *Module) handlePageMeta(p *sim.Proc, req *proto.Message) {
	m.meta[PageNo(req.Page)] = pageMeta{
		typeID: conv.TypeID(req.Arg(0)),
		used:   int(req.Arg(1)),
	}
	m.ep.Reply(p, req, &proto.Message{Kind: proto.KindPageMetaAck})
}
