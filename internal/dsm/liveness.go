package dsm

// Crash-stop failure detection: virtual-time heartbeats plus timeout
// escalation from the remote-operation layer, folded into per-host
// suspicion state. Every host broadcasts a heartbeat each
// HeartbeatInterval; a host silent for SuspicionTimeout becomes a
// suspect, and one silent for twice that is declared dead — at which
// point registered death callbacks fire exactly once (recovery, partial
// reassembly cleanup) and the endpoint's peer check starts failing
// calls to the corpse fast with ErrPeerDead.
//
// The detector only exists when the cluster enables failure detection;
// no-fault runs spawn no heartbeat processes, draw no randomness, and
// stay bit-identical to builds without this file.

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// HostState is the detector's opinion of one host.
type HostState int

const (
	// StateAlive means heartbeats are arriving on schedule.
	StateAlive HostState = iota
	// StateSuspect means the host has been silent past SuspicionTimeout
	// or a remote call to it timed out.
	StateSuspect
	// StateDead means the host has been declared crashed (permanent:
	// crash-stop hosts do not return).
	StateDead
)

// String names the state.
func (s HostState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("HostState(%d)", int(s))
	}
}

// Detector is one host's failure detector.
type Detector struct {
	k      *sim.Kernel
	ep     *remoteop.Endpoint
	params *model.Params
	self   HostID

	lastHeard []sim.Time
	state     []HostState
	onDeath   []func(h HostID)
	crashed   bool
}

// NewDetector creates the failure detector for one host and wires it
// into the endpoint: a heartbeat handler, the peer-death fail-fast
// predicate, and the call-timeout escalation hook. Call Start (after
// the cluster is assembled) to begin the heartbeat and monitor
// processes.
func NewDetector(k *sim.Kernel, ep *remoteop.Endpoint, params *model.Params, hosts int) *Detector {
	d := &Detector{
		k:         k,
		ep:        ep,
		params:    params,
		self:      ep.ID(),
		lastHeard: make([]sim.Time, hosts),
		state:     make([]HostState, hosts),
	}
	for h := range d.lastHeard {
		d.lastHeard[h] = k.Now()
	}
	ep.Handle(proto.KindHeartbeat, d.handleHeartbeat)
	ep.SetPeerCheck(d.Dead)
	ep.SetTimeoutHook(d.Escalate)
	return d
}

// Start spawns the heartbeat broadcaster and the silence monitor.
func (d *Detector) Start() {
	d.k.Spawn(fmt.Sprintf("heartbeat-%d", d.self), d.heartbeatLoop)
	d.k.Spawn(fmt.Sprintf("monitor-%d", d.self), d.monitorLoop)
}

// OnDeath registers a callback fired exactly once when a host is
// declared dead. Callbacks must not block (spawn a process for work
// that does).
func (d *Detector) OnDeath(fn func(h HostID)) { d.onDeath = append(d.onDeath, fn) }

// Dead reports whether h has been declared crashed.
func (d *Detector) Dead(h HostID) bool {
	return int(h) >= 0 && int(h) < len(d.state) && d.state[h] == StateDead
}

// State returns the detector's opinion of h.
func (d *Detector) State(h HostID) HostState { return d.state[h] }

// Crash stops this detector: its host has failed, so its processes
// unwind at their next tick and its opinions freeze.
func (d *Detector) Crash() { d.crashed = true }

// Escalate records negative evidence against h: a remote call to it
// burned a full request timeout without an answer. An alive host
// becomes a suspect immediately; a suspect already silent past the
// death threshold is declared dead without waiting for the next
// monitor tick.
func (d *Detector) Escalate(h HostID) {
	if d.crashed || int(h) < 0 || int(h) >= len(d.state) || h == d.self {
		return
	}
	switch d.state[h] {
	case StateDead:
		return
	case StateAlive:
		d.state[h] = StateSuspect
	case StateSuspect:
		// Already under suspicion; the silence check below decides.
	}
	if d.silence(h) >= 2*d.params.SuspicionTimeout {
		d.declareDead(h)
	}
}

// DeclareDead forces an immediate death declaration (tests and the
// chaos harness use it to skip the detection latency).
func (d *Detector) DeclareDead(h HostID) {
	if d.crashed || int(h) < 0 || int(h) >= len(d.state) || h == d.self {
		return
	}
	d.declareDead(h)
}

// silence is how long h has been quiet.
func (d *Detector) silence(h HostID) sim.Duration {
	return d.k.Now().Sub(d.lastHeard[h])
}

func (d *Detector) declareDead(h HostID) {
	if d.state[h] == StateDead {
		return
	}
	d.state[h] = StateDead
	for _, fn := range d.onDeath {
		fn(h)
	}
}

// heartbeatLoop broadcasts one liveness frame per HeartbeatInterval.
func (d *Detector) heartbeatLoop(p *sim.Proc) {
	for {
		if d.crashed {
			p.Exit()
		}
		d.ep.SendOneWay(p, remoteop.Broadcast, &proto.Message{Kind: proto.KindHeartbeat})
		p.Sleep(d.params.HeartbeatInterval)
	}
}

// monitorLoop periodically audits every peer's silence.
func (d *Detector) monitorLoop(p *sim.Proc) {
	for {
		if d.crashed {
			p.Exit()
		}
		p.Sleep(d.params.HeartbeatInterval)
		for h := range d.state {
			hid := HostID(h)
			if hid == d.self || d.state[h] == StateDead {
				continue
			}
			s := d.silence(hid)
			if s >= 2*d.params.SuspicionTimeout {
				d.declareDead(hid)
			} else if s >= d.params.SuspicionTimeout && d.state[h] == StateAlive {
				d.state[h] = StateSuspect
			}
		}
	}
}

// handleHeartbeat records a peer's liveness broadcast. Heartbeats are
// one-way: no reply, no acknowledgement.
func (d *Detector) handleHeartbeat(p *sim.Proc, req *proto.Message) {
	if d.crashed {
		p.Exit()
	}
	h := HostID(req.From)
	if int(h) < 0 || int(h) >= len(d.state) || d.state[h] == StateDead {
		return // crash-stop: the dead do not come back
	}
	d.lastHeard[h] = d.k.Now()
	d.state[h] = StateAlive
}
