package dsm

// Typed crash-stop failure errors. When the cluster runs with failure
// detection enabled, DSM operations that cannot complete because of a
// host crash return these through the public API instead of retrying
// forever or panicking; errors.Is distinguishes the two outcomes the
// protocol can prove:
//
//   - ErrHostDown: a host the operation depends on (the page's manager,
//     or the only host that could answer) has been declared dead. The
//     page range it managed is unavailable but isolated — accesses to
//     other ranges proceed normally.
//   - ErrPageLost: the page's only copy died with its owner. The page's
//     manager is alive and has proven, by polling every survivor, that
//     no copy exists anywhere; the loss is permanent.
//
// Without failure detection (the default, and every no-fault
// configuration) these errors are unreachable: protocol failures remain
// hard panics, as a deterministic simulation bug should be.

import (
	"errors"
	"fmt"
)

// ErrHostDown reports that an operation depended on a crashed host.
var ErrHostDown = errors.New("dsm: host is down")

// ErrPageLost reports that a page's only copy died with its owner.
var ErrPageLost = errors.New("dsm: page lost")

// hostDownErr builds a typed ErrHostDown with context.
func hostDownErr(h HostID, format string, args ...any) error {
	return fmt.Errorf("%w (host %d): %s", ErrHostDown, h, fmt.Sprintf(format, args...))
}

// pageLostErr builds a typed ErrPageLost for one page.
func pageLostErr(page PageNo) error {
	return fmt.Errorf("%w (page %d): its only copy died with its owner", ErrPageLost, page)
}
