package dsm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sim"
)

func TestQuorumTagOrdering(t *testing.T) {
	cases := []struct {
		name string
		a, b quorumTag
		less bool
	}{
		{"zero-vs-zero", quorumTag{}, quorumTag{}, false},
		{"zero-vs-first-write", quorumTag{}, quorumTag{ts: 1, host: 0}, true},
		{"timestamp-dominates", quorumTag{ts: 1, host: 9}, quorumTag{ts: 2, host: 0}, true},
		{"timestamp-dominates-reverse", quorumTag{ts: 2, host: 0}, quorumTag{ts: 1, host: 9}, false},
		{"host-breaks-ties", quorumTag{ts: 5, host: 1}, quorumTag{ts: 5, host: 2}, true},
		{"host-breaks-ties-reverse", quorumTag{ts: 5, host: 2}, quorumTag{ts: 5, host: 1}, false},
		{"equal-tags", quorumTag{ts: 7, host: 3}, quorumTag{ts: 7, host: 3}, false},
		{"large-timestamps", quorumTag{ts: 1<<31 - 1, host: 0}, quorumTag{ts: 1 << 31, host: 0}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.less(tc.b); got != tc.less {
				t.Errorf("(%v).less(%v) = %v, want %v", tc.a, tc.b, got, tc.less)
			}
			// Strict order: at most one of a<b, b<a.
			if tc.a.less(tc.b) && tc.b.less(tc.a) {
				t.Errorf("both (%v).less(%v) and its reverse hold", tc.a, tc.b)
			}
			// Irreflexive on equal tags.
			if tc.a == tc.b && (tc.a.less(tc.b) || tc.b.less(tc.a)) {
				t.Errorf("equal tags %v compare as ordered", tc.a)
			}
		})
	}
}

func TestQuorumMajority(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{5, 3},
		{1024, 513},
	}
	for _, tc := range cases {
		got := quorumMajority(tc.n)
		if got != tc.want {
			t.Errorf("quorumMajority(%d) = %d, want %d", tc.n, got, tc.want)
		}
		// The property everything rests on: two majorities always share a
		// replica, and a majority survives the loss of any minority.
		if 2*got <= tc.n {
			t.Errorf("two majorities of %d (size %d) need not intersect", tc.n, got)
		}
		if got > tc.n {
			t.Errorf("majority of %d is %d hosts — unattainable", tc.n, got)
		}
	}
}

func TestQuorumPolicyRoundTrip(t *testing.T) { policyRoundTrip(t, PolicyQuorum) }

func TestQuorumTagsAdvanceMonotonically(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyQuorum))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		pg := r.mods[0].PageOf(addr)
		writers := []int{0, 1, 2, 1, 0}
		var prev quorumTag
		for i, w := range writers {
			r.mods[w].WriteInt32s(p, addr, []int32{int32(i)})
			tag := r.mods[w].qrmPageFor(pg).tag
			if !prev.less(tag) {
				t.Fatalf("write %d by host %d: tag %v does not advance past %v", i, w, tag, prev)
			}
			if tag.host != HostID(w) {
				t.Fatalf("write %d: tag names writer %d, want %d", i, tag.host, w)
			}
			prev = tag
		}
	})
}

func TestQuorumReadWritesWinnerBack(t *testing.T) {
	// Host 2's replica is hand-advanced past everything a majority
	// stores; its next read must win with the local version and push it
	// to a majority (the write-back that makes interrupted writes
	// atomic), because phase 1 cannot prove any other replica has it.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun, arch.Sun}, withPolicy(PolicyQuorum))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{5})

		pg := r.mods[2].PageOf(addr)
		qp := r.mods[2].qrmPageFor(pg)
		conv.PutInt32(r.mods[2].arch, qp.data[int(addr)-int(pg)*r.cfg.PageSize:], 7)
		qp.tag = quorumTag{ts: qp.tag.ts + 10, host: 2}

		var v [1]int32
		r.mods[2].ReadInt32s(p, addr, v[:])
		if v[0] != 7 {
			t.Fatalf("read returned %d, want the locally newest 7", v[0])
		}
		if wb := r.mods[2].Stats().QuorumWriteBacks; wb == 0 {
			t.Fatal("read of an unconfirmed winner did not write it back to a majority")
		}
		// After the write-back a majority stores the winner: any other
		// host's read must return it too.
		r.mods[0].ReadInt32s(p, addr, v[:])
		if v[0] != 7 {
			t.Fatalf("host 0 read %d after write-back, want 7", v[0])
		}
	})
}

func TestQuorumWriteBackConvertsAcrossArchitectures(t *testing.T) {
	// The winner originates at a Firefly (VAX-format floats) and reaches
	// the Sun hosts through the read write-back: the IEEE image the Sun
	// reads must round-trip the value exactly.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, withPolicy(PolicyQuorum))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Float64, 8)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteFloat64s(p, addr, []float64{1.5})

		pg := r.mods[1].PageOf(addr)
		qp := r.mods[1].qrmPageFor(pg)
		conv.PutFloat64(r.mods[1].arch, qp.data[int(addr)-int(pg)*r.cfg.PageSize:], -42.25)
		qp.tag = quorumTag{ts: qp.tag.ts + 10, host: 1}

		var v [1]float64
		r.mods[1].ReadFloat64s(p, addr, v[:])
		if v[0] != -42.25 {
			t.Fatalf("firefly read %v, want -42.25", v[0])
		}
		var sv [1]float64
		r.mods[0].ReadFloat64s(p, addr, sv[:])
		if sv[0] != -42.25 {
			t.Fatalf("sun read %v after cross-architecture write-back, want -42.25", sv[0])
		}
		if r.mods[0].Stats().Conversions == 0 && r.mods[1].Stats().Conversions == 0 {
			t.Fatal("no conversion recorded on an IEEE↔VAX quorum round-trip")
		}
	})
}

func TestQuorumAtomicSwapPanics(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Sun, arch.Sun}, withPolicy(PolicyQuorum))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("atomic swap under the quorum policy did not panic")
			}
		}()
		r.mods[0].AtomicSwapInt32(p, addr, 1)
	})
}

func TestQuorumStatsCount(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withPolicy(PolicyQuorum))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{1})
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if v[0] != 1 {
			t.Fatalf("read %d, want 1", v[0])
		}
		if s := r.mods[0].Stats(); s.QuorumWrites != 1 {
			t.Errorf("writer counted %d quorum writes, want 1", s.QuorumWrites)
		}
		if s := r.mods[1].Stats(); s.QuorumReads != 1 {
			t.Errorf("reader counted %d quorum reads, want 1", s.QuorumReads)
		}
		if s := r.mods[0].Stats(); s.QuorumRetries != 0 {
			t.Errorf("fault-free run counted %d quorum retries, want 0", s.QuorumRetries)
		}
	})
}
