package dsm

// Alloc guards for the steady-state page-transfer data path. A full
// simulated fault necessarily allocates in the simulation machinery
// (process spawns, schedule labels), so the zero-allocation contract is
// asserted on the composed data path itself — the exact sequence of
// operations a fault → deliver → install transfer performs on bytes:
// pooled serve staging, append-encode, fragmentation, reassembly into a
// pooled wire buffer, borrow-mode decode, bulk conversion, and the
// install copy, with every buffer returned to the pool. If any step
// regresses to allocating, this test fails loudly.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/conv"
	"repro/internal/model"
	"repro/internal/proto"
)

func TestSteadyStateTransferZeroAllocs(t *testing.T) {
	reg := conv.NewRegistry()
	params := model.Default()
	mtu := params.MTUPayload

	const pageBytes = 1024 // a Firefly page of doubles
	srcPage := make([]byte, pageBytes)
	for i := range srcPage {
		srcPage[i] = byte(i * 7)
	}
	dstPage := make([]byte, pageBytes)

	var sendMsg, rxMsg proto.Message
	args := [...]uint32{1, 42}

	transfer := func() {
		// Owner side: stage the resident copy (serveCopy) and encode the
		// PageDeliver into a pooled buffer (remoteop send).
		data := bufpool.Get(pageBytes)
		copy(data, srcPage)
		sendMsg = proto.Message{
			Kind:    proto.KindPageDeliver,
			Page:    7,
			SrcArch: uint8(arch.Sun),
			Args:    args[:],
			Data:    data,
		}
		enc, err := sendMsg.AppendEncode(bufpool.Get(sendMsg.EncodedSize())[:0])
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(data) // staging released once the encode holds the bytes

		// Receiver side: each fragment's chunk is copied into a pooled
		// reassembly buffer at its offset (remoteop reassemble).
		total := params.Fragments(len(enc))
		wire := bufpool.Get(total * mtu)
		for idx := 0; idx < total; idx++ {
			lo := idx * mtu
			hi := min(lo+mtu, len(enc))
			copy(wire[lo:], enc[lo:hi])
		}
		wire = wire[:len(enc)]
		bufpool.Put(enc) // last fragment consumed: encode buffer released

		// Borrow-mode decode, bulk conversion in place, install copy.
		if err := proto.DecodeBorrowInto(&rxMsg, wire); err != nil {
			t.Fatal(err)
		}
		rxMsg.SetWire(wire)
		if _, err := reg.ConvertRegion(conv.Float64, rxMsg.Data, arch.SunArch, arch.FireflyArch, 0); err != nil {
			t.Fatal(err)
		}
		copy(dstPage, rxMsg.Data)
		bufpool.Put(rxMsg.TakeWire())
	}

	transfer() // warm the pools
	if avg := testing.AllocsPerRun(200, transfer); avg != 0 {
		t.Fatalf("steady-state transfer data path allocates %.1f times per run, want 0", avg)
	}
}

// TestSendArgsInlineAllocFree pins that the scalar argument slices the
// protocol builds fit MaxArgs, so borrow-mode decoding keeps them in the
// message's inline store.
func TestSendArgsInlineAllocFree(t *testing.T) {
	m := proto.Message{Args: make([]uint32, proto.MaxArgs)}
	enc, err := m.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var rx proto.Message
	if err := proto.DecodeBorrowInto(&rx, enc); err != nil {
		t.Fatal(err)
	}
	if len(rx.Args) != proto.MaxArgs {
		t.Fatalf("decoded %d args, want %d", len(rx.Args), proto.MaxArgs)
	}
}
