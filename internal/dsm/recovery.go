package dsm

// Copyset-based page recovery (crash-stop fault tolerance). When the
// failure detector declares a host dead, every surviving manager walks
// the pages it manages: pages the corpse merely read drop it from the
// copyset; pages the corpse *owned* are re-owned from a surviving copy
// — converting from the survivor's native representation when the
// manager is a different machine type, the heterogeneous twist on the
// classic scheme — and pages whose only copy died with the owner are
// declared lost, so later accesses fail with ErrPageLost instead of
// wedging. Recovery also runs lazily: a transaction that finds its
// recorded owner dead re-owns the page before serving.

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/proto"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// deadHost reports whether the failure detector (if any) has declared
// h crashed.
func (m *Module) deadHost(h HostID) bool {
	return m.liveness != nil && m.liveness.Dead(h)
}

// onHostDeath is registered with the failure detector. It must not
// block: it discards doomed partial reassemblies and spawns the
// recovery sweep as its own process.
func (m *Module) onHostDeath(dead HostID) {
	if m.crashed || dead == m.id {
		return
	}
	// Partial reassemblies from the corpse will never complete; return
	// their pooled buffers now.
	m.ep.DropPartials(dead)
	m.k.Spawn(fmt.Sprintf("recover-%d-h%d", m.id, dead), func(p *sim.Proc) {
		m.recoverAfterDeath(p, dead)
	})
}

// recoverAfterDeath sweeps every page this host manages after dead's
// crash: drop the corpse from copysets, re-own the pages it owned.
func (m *Module) recoverAfterDeath(p *sim.Proc, dead HostID) {
	pages := make([]PageNo, 0, len(m.mgr))
	for pg := range m.mgr {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, page := range pages {
		if m.crashed {
			p.Exit()
		}
		ent := m.mgr[page]
		ent.lock.P(p)
		delete(ent.copyset, dead)
		if !ent.lost && ent.owner == dead {
			m.protoCPU.Use(p, m.jittered(m.cfg.Params.ManagerProcess.Of(m.arch.Kind)))
			m.recoverPage(p, page, ent)
		}
		ent.lock.V()
		m.checkpoint("host-death", page)
	}
}

// recoverPage re-owns one page whose recorded owner is dead. The caller
// holds ent.lock. On return either the page has a live owner holding a
// copy, or it is marked lost.
func (m *Module) recoverPage(p *sim.Proc, page PageNo, ent *mgrEntry) {
	dead := ent.owner
	delete(ent.copyset, dead)
	if m.cfg.Mutation == MutForgetRecovery {
		// Injected bug: the manager forgets to re-own — the page stays
		// wedged at its dead owner and every later access fails.
		return
	}
	// Self first: the manager itself may hold a surviving read copy.
	if lp := m.local[page]; lp != nil && lp.access != NoAccess {
		ent.owner = m.id
		ent.copyset[m.id] = struct{}{}
		m.stats.PagesRecovered++
		m.trace("recover", page)
		return
	}
	for _, h := range m.recoveryCandidates(ent, dead) {
		resp, err := m.ep.Call(p, h, &proto.Message{Kind: proto.KindRecoverPage, Page: uint32(page)})
		if err != nil {
			continue // unreachable too; try the next candidate
		}
		if resp.Arg(0) == 0 {
			bufpool.Put(resp.TakeWire())
			delete(ent.copyset, h) // recorded but copyless: stale entry
			continue
		}
		if Access(resp.Arg(1)) == WriteAccess {
			// A surviving writable copy is the page, current by
			// definition: hand ownership to its holder without moving
			// any data.
			bufpool.Put(resp.TakeWire())
			clear(ent.copyset)
			ent.owner = h
			ent.copyset[h] = struct{}{}
			m.stats.PagesRecovered++
			m.trace("recover", page)
			return
		}
		m.installRecovered(p, page, resp)
		ent.owner = m.id
		ent.copyset[m.id] = struct{}{}
		m.stats.PagesRecovered++
		m.trace("recover", page)
		return
	}
	// No survivor holds a copy: the page died with its owner.
	ent.lost = true
	m.stats.PagesLost++
	m.trace("page-lost", page)
}

// reconcileSuspect settles an entry whose last transfer was never
// confirmed (awaitConfirm gave up on a live requester). The bookkeeping
// may be ahead of reality: the forwarding owner can have crashed after
// taking the serve order but before delivering, in which case the
// recorded requester never installed the page. The manager asks the
// unconfirmed requester whether it actually holds a copy (a probe — no
// data moves) and repairs the entry accordingly. The caller holds
// ent.lock.
func (m *Module) reconcileSuspect(p *sim.Proc, page PageNo, ent *mgrEntry) error {
	r := ent.suspectHost
	if r == m.id || m.deadHost(r) {
		// Our own state is directly visible; a corpse's copies died with
		// it. Either way the dead-owner gate after us resolves ownership.
		ent.suspect = false
		if r != m.id {
			delete(ent.copyset, r)
		}
		return nil
	}
	resp, err := m.ep.Call(p, r, &proto.Message{
		Kind: proto.KindRecoverPage,
		Page: uint32(page),
		Args: []uint32{1}, // probe: report possession, send no data
	})
	if err != nil {
		return m.callFailed(err, "manager %d reconciling page %d with host %d", m.id, page, r)
	}
	has := resp.Arg(0) != 0
	bufpool.Put(resp.TakeWire())
	if has {
		// The transfer did land; only the confirmation was lost.
		ent.suspect = false
		m.trace("reconciled", page)
		return nil
	}
	// The transfer never landed. A read transfer only over-recorded the
	// copyset; an ownership transfer left the entry pointing at a host
	// that holds nothing — find the page a real home (or declare it
	// lost) exactly as if the recorded owner had died.
	delete(ent.copyset, r)
	if ent.owner == r {
		m.recoverPage(p, page, ent)
	}
	ent.suspect = false
	m.trace("reconciled", page)
	return nil
}

// recoveryCandidates lists the hosts to poll for a surviving copy:
// recorded copyset members first (they normally hold one), then every
// other live host — a copy can legitimately outlive the copyset record
// when a transfer aborted mid-crash. Order is deterministic.
func (m *Module) recoveryCandidates(ent *mgrEntry, dead HostID) []HostID {
	out := make([]HostID, 0, len(m.hosts))
	for _, h := range copysetList(ent) {
		if h == m.id || h == dead || m.deadHost(h) {
			continue
		}
		out = append(out, h)
	}
	for i := range m.hosts {
		h := HostID(i)
		if h == m.id || h == dead || m.deadHost(h) {
			continue
		}
		if _, in := ent.copyset[h]; in {
			continue
		}
		out = append(out, h)
	}
	return out
}

// installRecovered installs a survivor's copy on the recovering
// manager, converting from the survivor's native representation when
// the machine types are incompatible (the same conversion a normal
// transfer performs). The recovered content is recorded as a synthetic
// write so the sequential-consistency trace stays coherent across the
// ownership gap.
func (m *Module) installRecovered(p *sim.Proc, page PageNo, resp *proto.Message) {
	data := resp.Data
	srcKind := arch.Kind(resp.SrcArch)
	srcArch, err := arch.ByKind(srcKind)
	if err != nil {
		panic(fmt.Sprintf("dsm: recovery reply with unknown architecture %d", resp.SrcArch))
	}
	lp := m.localPageFor(page)
	if len(data) > 0 && m.cfg.ConversionEnabled && !srcArch.Compatible(m.arch) {
		mt, ok := m.meta[page]
		if !ok {
			panic(fmt.Sprintf("dsm: host %d recovering page %d with no allocation metadata", m.id, page))
		}
		typ := m.cfg.Registry.MustGet(mt.typeID)
		n := len(data) / typ.Size
		p.Sleep(m.cfg.Params.RegionConvertCost(m.arch.Kind, typ.Cost, n))
		ptrOff := int32(m.base(m.arch.Kind)) - int32(m.base(srcKind))
		rep, cerr := m.cfg.Registry.ConvertRegion(mt.typeID, data[:n*typ.Size], srcArch, m.arch, ptrOff)
		if cerr != nil {
			panic(fmt.Sprintf("dsm: converting recovered page %d: %v", page, cerr))
		}
		m.stats.Conversions++
		m.stats.ConvReport.Add(rep)
	}
	copy(lp.data, data)
	lp.access = ReadAccess
	m.stats.PagesFetched++
	m.stats.BytesFetched += len(data)
	m.pageFetches[page]++
	m.trace("fetch", page)
	if len(data) > 0 {
		m.recordSC(p, sctrace.Write, p.Now(), Addr(int(page)*m.cfg.PageSize), lp.data[:len(data)])
	}
	bufpool.Put(resp.TakeWire())
	p.Sleep(m.jittered(m.cfg.Params.InstallCost.Of(m.arch.Kind)))
}

// handleRecoverPage answers a recovering manager's poll: does this host
// hold a copy of the page, and with what right? A positive answer
// carries the page's allocated prefix in this host's native
// representation — unless the request is a probe (Arg(0)=1, sent by
// suspect-entry reconciliation), which wants possession only. It takes
// no locks, deliberately: the polled host may itself be parked inside a
// page fault holding its local fault lock.
func (m *Module) handleRecoverPage(p *sim.Proc, req *proto.Message) {
	if m.crashed {
		p.Exit()
	}
	page := PageNo(req.Page)
	probe := req.Arg(0) == 1
	dynProbe := req.Arg(0) == 2
	lp := m.local[page]
	if lp == nil || lp.access == NoAccess {
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRecoverPageReply,
			Page: req.Page,
			Args: []uint32{0, 0},
		})
		return
	}
	if probe {
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRecoverPageReply,
			Page: req.Page,
			Args: []uint32{1, uint32(lp.access)},
		})
		return
	}
	if dynProbe {
		// Dynamic-directory recovery probe (Arg(0)=2): possession plus
		// whether this host owns the page, still lock-free and data-free.
		owned := uint32(0)
		if dp := m.dyn[page]; dp != nil && dp.owned {
			owned = 1
		}
		m.ep.Reply(p, req, &proto.Message{
			Kind: proto.KindRecoverPageReply,
			Page: req.Page,
			Args: []uint32{1, uint32(lp.access), owned},
		})
		return
	}
	m.protoCPU.Use(p, m.jittered(m.cfg.Params.OwnerProcess.Of(m.arch.Kind)))
	used := 0
	if mt, ok := m.meta[page]; ok {
		used = mt.used
	}
	data := make([]byte, used) // vet:ignore hot-alloc — retained by the dedup reply cache
	copy(data, lp.data[:used])
	m.ep.Reply(p, req, &proto.Message{
		Kind: proto.KindRecoverPageReply,
		Page: req.Page,
		Args: []uint32{1, uint32(lp.access)},
		Data: data,
	})
}
