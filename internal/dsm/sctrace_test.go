package dsm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

func withSCRecorder(rec *sctrace.Recorder) rigOpt {
	return func(c *Config) { c.SCRecorder = rec }
}

// TestSCTraceHeterogeneousSharingConsistent drives int32 and float32
// data between a Sun and a Firefly and validates the recorded trace:
// the canonical representation must make the two hosts' views of the
// same values byte-identical despite opposite endianness and float
// formats.
func TestSCTraceHeterogeneousSharingConsistent(t *testing.T) {
	rec := sctrace.NewRecorder()
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly}, withSCRecorder(rec))
	r.run("main", func(p *sim.Proc) {
		ai, err := r.mods[0].Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		af, err := r.mods[0].Alloc(p, conv.Float32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		ints := make([]int32, 16)
		floats := make([]float32, 16)
		for i := range ints {
			ints[i] = int32(0x01020304 * (i + 1))
			floats[i] = 1.5 * float32(i+1)
		}
		r.mods[0].WriteInt32s(p, ai, ints)
		r.mods[0].WriteFloat32s(p, af, floats)
		r.mods[1].ReadInt32s(p, ai, make([]int32, 16))
		r.mods[1].ReadFloat32s(p, af, make([]float32, 16))
		r.mods[1].WriteInt32s(p, ai, ints)
		r.mods[0].ReadInt32s(p, ai, make([]int32, 16))
	})
	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	if v := sctrace.Check(rec.Ops()); len(v) != 0 {
		t.Fatalf("heterogeneous sharing not sequentially consistent:\n%s", sctrace.Report(v, 5))
	}
}

// TestSCTraceFlagsDisabledConversion turns data conversion off (the
// corruption ablation) and shows the checker catches it: the Firefly
// reads the Sun's big-endian bytes as little-endian values that no
// write ever produced.
func TestSCTraceFlagsDisabledConversion(t *testing.T) {
	rec := sctrace.NewRecorder()
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly},
		withSCRecorder(rec), withoutConversion())
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{0x01020304, 0x11223344, 0x55667788, 0x0A0B0C0D})
		r.mods[1].ReadInt32s(p, addr, make([]int32, 4))
	})
	if v := sctrace.Check(rec.Ops()); len(v) == 0 {
		t.Fatal("conversion-disabled corruption went undetected by the SC checker")
	}
}
