package dsm

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// detRig builds n hosts with endpoints and started detectors — no DSM
// modules, the detector is exercised in isolation.
func detRig(t *testing.T, n int) (*sim.Kernel, *netsim.Network, []*Detector) {
	t.Helper()
	k := sim.NewKernel(7)
	params := model.Default()
	net := netsim.New(k, &params)
	dets := make([]*Detector, n)
	for i := 0; i < n; i++ {
		ifc, err := net.Attach(netsim.HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ep := remoteop.New(k, ifc, arch.Sun, &params)
		dets[i] = NewDetector(k, ep, &params, n)
		ep.Start()
		dets[i].Start()
	}
	return k, net, dets
}

func TestDetectorKeepsQuietClusterAlive(t *testing.T) {
	k, _, dets := detRig(t, 3)
	k.RunFor(10 * time.Second)
	for i, d := range dets {
		for h := 0; h < 3; h++ {
			if s := d.State(HostID(h)); s != StateAlive {
				t.Errorf("detector %d sees host %d as %v after 10 s of heartbeats", i, h, s)
			}
		}
	}
}

func TestDetectorDeclaresSilentHostDead(t *testing.T) {
	params := model.Default()
	k, net, dets := detRig(t, 3)
	var died []HostID
	var at sim.Time
	dets[0].OnDeath(func(h HostID) { died = append(died, h); at = k.Now() })

	crash := sim.Time(2 * time.Second)
	k.AfterNamed("crash", 2*time.Second, func() {
		net.SetHostDown(2, true)
		dets[2].Crash()
	})
	k.RunFor(20 * time.Second)

	if len(died) != 1 || died[0] != 2 {
		t.Fatalf("death callbacks = %v, want exactly [2]", died)
	}
	if !dets[0].Dead(2) || dets[1].State(2) != StateDead {
		t.Fatal("survivors disagree that host 2 is dead")
	}
	if dets[0].Dead(1) || dets[1].Dead(0) {
		t.Fatal("a live host was declared dead")
	}
	// Detection latency: silence must cross 2×SuspicionTimeout, and not
	// take an order of magnitude longer.
	latency := at.Sub(crash)
	if latency < sim.Duration(2*params.SuspicionTimeout) || latency > sim.Duration(4*params.SuspicionTimeout) {
		t.Fatalf("detection latency %v outside [2×, 4×] SuspicionTimeout", latency)
	}
}

func TestDetectorEscalationShortcut(t *testing.T) {
	// Repeated call-timeout escalations must move a host to suspect, and
	// with continued silence to dead — without waiting for the full
	// heartbeat audit alone. DeclareDead forces the terminal state.
	k, _, dets := detRig(t, 2)
	k.Spawn("escalate", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		dets[0].Escalate(1)
		if got := dets[0].State(1); got != StateSuspect {
			t.Errorf("state after escalation = %v, want suspect", got)
		}
		dets[0].DeclareDead(1)
		if !dets[0].Dead(1) {
			t.Error("DeclareDead did not kill")
		}
		// Crash-stop: later heartbeats must not resurrect the host.
		p.Sleep(2 * time.Second)
		if !dets[0].Dead(1) {
			t.Error("a heartbeat resurrected a declared-dead host")
		}
	})
	k.RunFor(5 * time.Second)
}

func TestDetectorDeathCallbackFiresOnce(t *testing.T) {
	k, net, dets := detRig(t, 2)
	calls := 0
	dets[0].OnDeath(func(h HostID) { calls++ })
	k.Spawn("kill", func(p *sim.Proc) {
		p.Sleep(time.Second)
		net.SetHostDown(1, true)
		dets[1].Crash()
		p.Sleep(10 * time.Second)
		dets[0].DeclareDead(1) // already dead: must be a no-op
		dets[0].Escalate(1)
	})
	k.RunFor(30 * time.Second)
	if calls != 1 {
		t.Fatalf("death callback fired %d times, want 1", calls)
	}
}
