package dsm

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/sim"
)

func TestReadFirstTouchOfSelfManagedPage(t *testing.T) {
	// Regression: the first access to a page managed by the touching
	// host used to try fetching the page from itself.
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		var v [4]int32
		r.mods[0].ReadInt32s(p, addr, v[:]) // read before any write
		if v != [4]int32{} {
			t.Errorf("fresh page not zero: %v", v)
		}
	})
}

func TestSunWriteFaultUnderSmallestNeedsWholeGroup(t *testing.T) {
	// A Sun write with 1 KB DSM pages must own all eight sub-pages of
	// its VM page; a Firefly stealing one sub-page unmaps the group.
	r := newRig(t, []arch.Kind{arch.Firefly, arch.Sun}, withPageSize(1024))
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 2048) // 8 KB = 8 pages
		if err != nil {
			t.Error(err)
			return
		}
		// Sun writes one int: one VM fault, write ownership of 8 pages.
		r.mods[1].WriteInt32s(p, addr, []int32{1})
		s := r.mods[1].Stats()
		if s.WriteFaults != 1 {
			t.Errorf("%d write faults, want 1", s.WriteFaults)
		}
		for pg := PageNo(0); pg < 8; pg++ {
			if r.mods[1].Access(pg) != WriteAccess {
				t.Fatalf("sub-page %d access %v, want write (whole VM page)", pg, r.mods[1].Access(pg))
			}
		}
		// Firefly writes into sub-page 3: only that page moves…
		r.mods[0].WriteInt32s(p, addr+3*1024, []int32{2})
		if r.mods[1].Access(3) != NoAccess {
			t.Fatal("stolen sub-page still mapped on the Sun")
		}
		// …and the Sun's next access within the VM page refaults and
		// refetches just the missing sub-page.
		fetchedBefore := r.mods[1].Stats().PagesFetched
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		if got := r.mods[1].Stats().PagesFetched - fetchedBefore; got != 1 {
			t.Errorf("refetched %d pages, want exactly the stolen one", got)
		}
		// And the value written by the Firefly is visible, converted.
		r.mods[1].ReadInt32s(p, addr+3*1024, v[:])
		if v[0] != 2 {
			t.Errorf("read %d, want 2", v[0])
		}
	})
}

func TestAllocExhaustion(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	r.run("main", func(p *sim.Proc) {
		// Space is 1 MiB: 262144 ints fill it exactly.
		if _, err := r.mods[0].Alloc(p, conv.Int32, 262144); err != nil {
			t.Errorf("exact-fit allocation failed: %v", err)
		}
		if _, err := r.mods[0].Alloc(p, conv.Int32, 1); err == nil {
			t.Error("allocation beyond the space succeeded")
		}
	})
}

func TestAllocRejectsNonsense(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun})
	r.run("main", func(p *sim.Proc) {
		if _, err := r.mods[0].Alloc(p, conv.Int32, 0); err == nil {
			t.Error("zero-count allocation succeeded")
		}
		if _, err := r.mods[0].Alloc(p, conv.Int32, -5); err == nil {
			t.Error("negative allocation succeeded")
		}
		if _, err := r.mods[0].Alloc(p, conv.TypeID(9999), 1); err == nil {
			t.Error("unregistered type allocated")
		}
	})
}

func TestAllocOddSizedTypeSinglePageOnly(t *testing.T) {
	reg := conv.NewRegistry()
	odd, err := reg.RegisterStruct("odd", []conv.Field{{Type: conv.Char, Count: 24}, {Type: conv.Int32, Count: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// 28 bytes does not divide 8192: multi-page arrays would straddle.
	r := newRig(t, []arch.Kind{arch.Sun}, withRegistry(reg))
	r.run("main", func(p *sim.Proc) {
		if _, err := r.mods[0].Alloc(p, odd, 200); err != nil { // 5600 B: fits one page
			t.Errorf("single-page odd allocation failed: %v", err)
		}
		if _, err := r.mods[0].Alloc(p, odd, 400); err == nil { // 11200 B: would straddle
			t.Error("straddling odd-size allocation succeeded")
		}
	})
}

func TestChainedIncrementAcrossRandomHosts(t *testing.T) {
	// A counter hops between random hosts, each incrementing it once,
	// serialized by the main process. Every increment must survive every
	// migration and conversion.
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly, arch.Sun, arch.Firefly}
	r := newRig(t, kinds)
	rng := rand.New(rand.NewSource(99))
	const hops = 60
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{0})
		for i := 0; i < hops; i++ {
			m := r.mods[rng.Intn(len(kinds))]
			var v [1]int32
			m.ReadInt32s(p, addr, v[:])
			m.WriteInt32s(p, addr, []int32{v[0] + 1})
		}
		var final [1]int32
		r.mods[0].ReadInt32s(p, addr, final[:])
		if final[0] != hops {
			t.Errorf("counter %d after %d hops, want %d", final[0], hops, hops)
		}
	})
}

func TestRandomizedDisjointSlotsAllTypes(t *testing.T) {
	// Each host owns a random set of slots in shared arrays of every
	// basic type; hosts write their slots in random interleaved order,
	// then every host verifies everything.
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Sun, arch.Firefly}
	r := newRig(t, kinds)
	rng := rand.New(rand.NewSource(7))
	const slots = 64
	owner := make([]int, slots)
	for i := range owner {
		owner[i] = rng.Intn(len(kinds))
	}
	r.run("main", func(p *sim.Proc) {
		ints, err := r.mods[0].Alloc(p, conv.Int32, slots)
		if err != nil {
			t.Error(err)
			return
		}
		floats, err := r.mods[0].Alloc(p, conv.Float64, slots)
		if err != nil {
			t.Error(err)
			return
		}
		shorts, err := r.mods[0].Alloc(p, conv.Int16, slots)
		if err != nil {
			t.Error(err)
			return
		}

		// Interleave writes host by host in random slot order.
		order := rng.Perm(slots)
		for _, s := range order {
			m := r.mods[owner[s]]
			m.WriteInt32s(p, ints+Addr(4*s), []int32{int32(s * 3)})
			m.WriteFloat64s(p, floats+Addr(8*s), []float64{float64(s) * 1.5})
			m.WriteInt16s(p, shorts+Addr(2*s), []int16{int16(-s)})
		}
		for h := range kinds {
			m := r.mods[h]
			gi := make([]int32, slots)
			gf := make([]float64, slots)
			gs := make([]int16, slots)
			m.ReadInt32s(p, ints, gi)
			m.ReadFloat64s(p, floats, gf)
			m.ReadInt16s(p, shorts, gs)
			for s := 0; s < slots; s++ {
				if gi[s] != int32(s*3) || gf[s] != float64(s)*1.5 || gs[s] != int16(-s) {
					t.Fatalf("host %d slot %d: %d %v %d", h, s, gi[s], gf[s], gs[s])
				}
			}
		}
	})
}

func TestTraceEventsEmitted(t *testing.T) {
	var events []TraceEvent
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.cfg.Trace = func(ev TraceEvent) { events = append(events, ev) }
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 8)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{1})
		var v [1]int32
		r.mods[1].ReadInt32s(p, addr, v[:])
		r.mods[1].WriteInt32s(p, addr, []int32{2})
	})
	counts := make(map[string]int)
	for _, ev := range events {
		counts[ev.Event]++
	}
	for _, want := range []string{"read-fault", "write-fault", "fetch", "serve"} {
		if counts[want] == 0 {
			t.Errorf("no %q events traced (got %v)", want, counts)
		}
	}
	// Times must be non-decreasing.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("trace events out of order")
		}
	}
}

func TestConcurrentMixedReadersAndWriter(t *testing.T) {
	// One writer continuously updates; several readers on other hosts
	// concurrently read. Sequential consistency at accessor granularity:
	// every read must observe one of the values ever written.
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}
	r := newRig(t, kinds)
	written := map[int32]bool{0: true}
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{0})
		done := sim.NewSemaphore(r.k, 0)
		r.k.Spawn("writer", func(wp *sim.Proc) {
			for i := int32(1); i <= 10; i++ {
				v := i * 100
				written[v] = true
				r.mods[0].WriteInt32s(wp, addr, []int32{v})
				wp.Sleep(20 * time.Millisecond)
			}
			done.V()
		})
		for h := 1; h <= 2; h++ {
			m := r.mods[h]
			name := fmt.Sprintf("reader%d", h)
			r.k.Spawn(name, func(rp *sim.Proc) {
				for i := 0; i < 15; i++ {
					var v [1]int32
					m.ReadInt32s(rp, addr, v[:])
					if !written[v[0]] {
						t.Errorf("%s observed value %d never written", name, v[0])
					}
					rp.Sleep(15 * time.Millisecond)
				}
				done.V()
			})
		}
		for i := 0; i < 3; i++ {
			done.P(p)
		}
	})
}

func TestPartialPagePackingAcrossAllocs(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		a1, _ := r.mods[0].Alloc(p, conv.Int32, 100) // 400 B
		a2, _ := r.mods[0].Alloc(p, conv.Int32, 50)  // packs after a1
		a3, _ := r.mods[0].Alloc(p, conv.Float32, 10)
		a4, _ := r.mods[0].Alloc(p, conv.Int32, 25) // back to the int page
		if r.mods[0].PageOf(a1) != r.mods[0].PageOf(a2) || r.mods[0].PageOf(a2) != r.mods[0].PageOf(a4) {
			t.Error("same-type allocations did not pack")
		}
		if r.mods[0].PageOf(a3) == r.mods[0].PageOf(a1) {
			t.Error("different types share a page")
		}
		// All regions usable and independent, cross-host.
		r.mods[0].WriteInt32s(p, a2, make([]int32, 50))
		r.mods[1].WriteInt32s(p, a4, []int32{42})
		var v [1]int32
		r.mods[0].ReadInt32s(p, a4, v[:])
		if v[0] != 42 {
			t.Errorf("packed region read %d, want 42", v[0])
		}
	})
}

func TestAtomicSwapOnDSM(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		addr, err := r.mods[0].Alloc(p, conv.Int32, 1)
		if err != nil {
			t.Error(err)
			return
		}
		r.mods[0].WriteInt32s(p, addr, []int32{5})
		if old := r.mods[1].AtomicSwapInt32(p, addr, 9); old != 5 {
			t.Errorf("swap returned %d, want 5 (converted)", old)
		}
		if old := r.mods[0].AtomicSwapInt32(p, addr, 0); old != 9 {
			t.Errorf("second swap returned %d, want 9", old)
		}
	})
}

func TestBroadcastInvalidationUsesOneFrame(t *testing.T) {
	// Five readers replicate a page; a write invalidates them all. With
	// broadcast multicast the invalidation costs one outbound frame at
	// the manager; the unicast ablation costs one per member.
	countFrames := func(unicast bool) int {
		kinds := []arch.Kind{arch.Sun, arch.Sun, arch.Sun, arch.Sun, arch.Sun, arch.Sun, arch.Sun}
		r := newRig(t, kinds, func(c *Config) { c.UnicastInvalidate = unicast })
		var frames int
		r.run("main", func(p *sim.Proc) {
			addr, err := r.mods[0].Alloc(p, conv.Int32, 16)
			if err != nil {
				t.Error(err)
				return
			}
			pg := r.mods[0].PageOf(addr)
			mgr := r.mods[0].manager(pg)
			r.mods[0].WriteInt32s(p, addr, []int32{1})
			var v [1]int32
			for h := 1; h < len(kinds); h++ {
				r.mods[h].ReadInt32s(p, addr, v[:])
			}
			before := r.net.Stats().FramesSent
			r.mods[0].WriteInt32s(p, addr, []int32{2}) // invalidates 5 readers
			frames = r.net.Stats().FramesSent - before
			_ = mgr
			// All replicas must be gone either way.
			for h := 1; h < len(kinds); h++ {
				if r.mods[h].Access(pg) == ReadAccess {
					t.Errorf("host %d kept its replica", h)
				}
			}
		})
		return frames
	}
	broadcast := countFrames(false)
	unicast := countFrames(true)
	if broadcast >= unicast {
		t.Fatalf("broadcast invalidation used %d frames, unicast %d; multicast saves nothing", broadcast, unicast)
	}
	// The saving must be at least the copyset size minus one frame.
	if unicast-broadcast < 4 {
		t.Fatalf("saving only %d frames for a 5-member copyset", unicast-broadcast)
	}
}

func TestPropertyMRSWInvariantUnderRandomOps(t *testing.T) {
	// After every operation of a random sequential workload, the MRSW
	// invariant must hold on every page: at most one writable copy, and
	// a writable copy excludes all read replicas.
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly, arch.Sun}
	for seed := int64(1); seed <= 3; seed++ {
		r := newRig(t, kinds)
		rng := rand.New(rand.NewSource(seed))
		r.run("main", func(p *sim.Proc) {
			const pages = 4
			addr, err := r.mods[0].Alloc(p, conv.Int32, pages*2048)
			if err != nil {
				t.Error(err)
				return
			}
			check := func(op string) {
				for pg := PageNo(0); pg < pages; pg++ {
					writers, readers := 0, 0
					for h := range kinds {
						switch r.mods[h].Access(pg) {
						case WriteAccess:
							writers++
						case ReadAccess:
							readers++
						}
					}
					if writers > 1 {
						t.Fatalf("seed %d after %s: page %d has %d writers", seed, op, pg, writers)
					}
					if writers == 1 && readers > 0 {
						t.Fatalf("seed %d after %s: page %d has a writer and %d readers", seed, op, pg, readers)
					}
				}
			}
			for i := 0; i < 120; i++ {
				h := rng.Intn(len(kinds))
				pg := rng.Intn(pages)
				slot := addr + Addr(8192*pg+4*rng.Intn(2048))
				if rng.Intn(2) == 0 {
					var v [1]int32
					r.mods[h].ReadInt32s(p, slot, v[:])
					check("read")
				} else {
					r.mods[h].WriteInt32s(p, slot, []int32{int32(i)})
					check("write")
				}
			}
		})
	}
}

func TestPropertyAllocatorNeverOverlaps(t *testing.T) {
	// Random allocation sequences must produce non-overlapping regions
	// with one type per page.
	reg := conv.NewRegistry()
	rec, err := reg.RegisterStruct("r16", []conv.Field{{Type: conv.Int32, Count: 4}})
	if err != nil {
		t.Fatal(err)
	}
	types := []conv.TypeID{conv.Char, conv.Int16, conv.Int32, conv.Float32, conv.Float64, rec}
	for seed := int64(1); seed <= 5; seed++ {
		r := newRig(t, []arch.Kind{arch.Sun}, withRegistry(reg))
		rng := rand.New(rand.NewSource(seed))
		type region struct {
			lo, hi int
			typ    conv.TypeID
		}
		var regions []region
		r.run("main", func(p *sim.Proc) {
			for i := 0; i < 60; i++ {
				id := types[rng.Intn(len(types))]
				typ := r.cfg.Registry.MustGet(id)
				count := 1 + rng.Intn(3000)
				a, err := r.mods[0].Alloc(p, id, count)
				if err != nil {
					continue // exhaustion is fine
				}
				regions = append(regions, region{lo: int(a), hi: int(a) + typ.Size*count, typ: id})
			}
		})
		for i, a := range regions {
			if a.lo%r.cfg.Registry.MustGet(a.typ).Size != 0 && a.lo%r.cfg.PageSize != 0 {
				// Element alignment within the page is guaranteed by
				// same-type packing; nothing further to assert here.
				_ = i
			}
			for j, b := range regions {
				if i == j {
					continue
				}
				if a.lo < b.hi && b.lo < a.hi {
					t.Fatalf("seed %d: regions %d and %d overlap: [%d,%d) vs [%d,%d)",
						seed, i, j, a.lo, a.hi, b.lo, b.hi)
				}
				// One type per page: different types must not share a page.
				if a.typ != b.typ && a.lo/r.cfg.PageSize == (b.hi-1)/r.cfg.PageSize {
					aPageLo, aPageHi := a.lo/r.cfg.PageSize, (a.hi-1)/r.cfg.PageSize
					bPageLo, bPageHi := b.lo/r.cfg.PageSize, (b.hi-1)/r.cfg.PageSize
					if aPageLo <= bPageHi && bPageLo <= aPageHi {
						t.Fatalf("seed %d: types %d and %d share a page", seed, a.typ, b.typ)
					}
				}
			}
		}
	}
}

func TestHotPagesRanking(t *testing.T) {
	r := newRig(t, []arch.Kind{arch.Sun, arch.Firefly})
	r.run("main", func(p *sim.Proc) {
		a, err := r.mods[0].Alloc(p, conv.Int32, 4096) // pages 0,1
		if err != nil {
			t.Error(err)
			return
		}
		// Ping-pong page 0 three times, page 1 once.
		for i := 0; i < 3; i++ {
			r.mods[1].WriteInt32s(p, a, []int32{1})
			r.mods[0].WriteInt32s(p, a, []int32{2})
		}
		r.mods[1].WriteInt32s(p, a+8192, []int32{3})
	})
	hot := r.mods[1].HotPages(10)
	if len(hot) < 2 {
		t.Fatalf("hot pages: %v", hot)
	}
	if hot[0].Page != 0 || hot[0].Fetches < hot[1].Fetches {
		t.Fatalf("ranking wrong: %v", hot)
	}
	if top := r.mods[1].HotPages(1); len(top) != 1 {
		t.Fatalf("limit ignored: %v", top)
	}
}

func TestEnumStrings(t *testing.T) {
	if NoAccess.String() != "none" || ReadAccess.String() != "read" || WriteAccess.String() != "write" {
		t.Error("Access strings wrong")
	}
	if Access(9).String() == "" {
		t.Error("unknown Access has empty string")
	}
	if PolicyMRSW.String() != "MRSW" || PolicyMigration.String() != "migration" ||
		PolicyCentral.String() != "central" || PolicyUpdate.String() != "update" {
		t.Error("Policy strings wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown Policy has empty string")
	}
}

func TestIntermediatePageSizes(t *testing.T) {
	// §2.4: "intermediate sizes are possible" between the 1 KB and 8 KB
	// extremes. 2 KB and 4 KB DSM pages must behave correctly on both
	// machine types (the Sun groups 4 or 2 pages per VM fault; the
	// Firefly treats each DSM page as a group of native pages).
	for _, pageSize := range []int{2048, 4096} {
		r := newRig(t, []arch.Kind{arch.Firefly, arch.Sun}, withPageSize(pageSize))
		r.run("main", func(p *sim.Proc) {
			addr, err := r.mods[0].Alloc(p, conv.Int32, 4096) // 16 KB
			if err != nil {
				t.Error(err)
				return
			}
			vals := make([]int32, 4096)
			for i := range vals {
				vals[i] = int32(i ^ 0x55aa)
			}
			r.mods[0].WriteInt32s(p, addr, vals)
			got := make([]int32, 4096)
			r.mods[1].ReadInt32s(p, addr, got)
			for i := range vals {
				if got[i] != vals[i] {
					t.Fatalf("pageSize %d: [%d] = %d, want %d", pageSize, i, got[i], vals[i])
				}
			}
			// The Sun's first fault must fetch a whole 8 KB VM page's
			// worth of DSM pages.
			wantGroup := 8192 / pageSize
			if got := r.mods[1].Stats().PagesFetched; got != 2*wantGroup {
				t.Fatalf("pageSize %d: sun fetched %d pages for 16KB, want %d",
					pageSize, got, 2*wantGroup)
			}
			if r.mods[1].Stats().ReadFaults != 2 {
				t.Fatalf("pageSize %d: %d VM faults, want 2", pageSize, r.mods[1].Stats().ReadFaults)
			}
		})
	}
}
