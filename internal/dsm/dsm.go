// Package dsm implements Mermaid's shared memory management module: Li's
// multiple-reader/single-writer write-invalidate algorithm with fixed
// distributed managers, extended to a heterogeneous cluster (§2 of the
// paper).
//
// Every host runs a Module. The shared address space is divided into DSM
// pages of a configurable size: the *largest page size algorithm* uses
// the largest native VM page (8 KB, the Sun's), so hosts with smaller VM
// pages treat groups of native pages as one DSM page; the *smallest page
// size algorithm* uses the smallest native page (1 KB, the Firefly's),
// so a fault on a host with larger VM pages fetches every missing DSM
// page in the 8 KB VM page and an invalidation of any sub-page unmaps
// the whole VM page (§2.4).
//
// Each page has a fixed manager (page number mod cluster size) that
// knows the owner and the copy set and through which every transfer
// request passes, as in the paper's implementation (§3.1). Pages hold
// raw bytes in the *holder's* native representation; when a page moves
// between incompatible machines, the receiver invokes the registered
// conversion routine for the page's (single) data type over the
// allocated prefix, rebasing embedded pointers by the difference of the
// two machine types' DSM base addresses (§2.3).
package dsm

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// HostID aliases the network host identifier.
type HostID = remoteop.HostID

// Addr is a location in the shared DSM address space, expressed as an
// offset from the space's start. The *stored* representation of a
// pointer on a given host is Addr plus that machine type's virtual base
// address, which is what makes pointer conversion necessary.
type Addr uint32

// PageNo numbers DSM pages from 0.
type PageNo uint32

// Access is a host's current right to a page.
type Access int

const (
	// NoAccess means the page is not resident (any access faults).
	NoAccess Access = iota
	// ReadAccess means a read-only replica is resident.
	ReadAccess
	// WriteAccess means this host owns the only writable copy.
	WriteAccess
)

// String names the access level.
func (a Access) String() string {
	switch a {
	case NoAccess:
		return "none"
	case ReadAccess:
		return "read"
	case WriteAccess:
		return "write"
	default:
		return fmt.Sprintf("Access(%d)", int(a))
	}
}

// Policy selects the coherence algorithm. Mermaid's user-level design
// lets several DSM packages coexist so applications can pick the one
// matching their access behaviour (§2.1, citing the authors' companion
// study of DSM algorithms); three of those algorithms are provided.
type Policy int

const (
	// PolicyMRSW is Li's multiple-reader/single-writer write-invalidate
	// algorithm — the paper's (and this package's) default.
	PolicyMRSW Policy = iota
	// PolicyMigration keeps a single copy of each page that migrates to
	// whichever host touches it: no read replication, so read-shared
	// data ping-pongs, but no invalidations either.
	PolicyMigration
	// PolicyCentral performs every access as a remote operation at the
	// page's server (no local caching): expensive per access, immune to
	// page thrashing, and good for small, heavily write-shared data.
	PolicyCentral
	// PolicyUpdate replicates on read like MRSW but never invalidates:
	// writes are sequenced by the manager and pushed to every replica
	// (write-update, full replication). Reads stay local forever; each
	// write pays a sequencing round trip.
	PolicyUpdate
	// PolicyQuorum is the SC-ABD algorithm (Ekström & Haridi): every
	// host keeps a tag-ordered replica of every page, reads query a
	// majority for the highest tag and write the winner back before
	// returning, writes install value+tag at a majority. Each access
	// pays a quorum round trip, but reads and writes stay sequentially
	// consistent *and live* in any majority component of a partition —
	// the only engine that makes progress while the fabric is split.
	PolicyQuorum
	// PolicyRC is lazy release consistency (rc.go, model.go): every
	// resident copy is writable, writes are captured against a twin and
	// propagated at release time as element-aligned typed diffs to the
	// page's home, and acquirers pull the intervals their vector
	// timestamps imply. The only policy whose consistency model is not
	// SC — its trace oracle is the happens-before checker.
	PolicyRC
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyMRSW:
		return "MRSW"
	case PolicyMigration:
		return "migration"
	case PolicyCentral:
		return "central"
	case PolicyUpdate:
		return "update"
	case PolicyQuorum:
		return "quorum"
	case PolicyRC:
		return "rc"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config is the cluster-wide DSM configuration, shared by every Module.
type Config struct {
	// PageSize is the DSM page size in bytes: 8192 under the largest
	// page size algorithm, 1024 under the smallest (§2.4).
	PageSize int
	// SpaceSize is the total size of the shared address space in bytes.
	SpaceSize int
	// Registry is the global type/conversion-routine table (§2.3).
	Registry *conv.Registry
	// Params is the calibrated cost model.
	Params *model.Params
	// ConversionEnabled can be cleared to skip data conversion — an
	// ablation that demonstrates heterogeneous corruption.
	ConversionEnabled bool
	// PreferSameKindSource lets the manager serve read faults from a
	// copyset member of the requester's machine type when one exists,
	// avoiding a conversion (§2.3's optimization).
	PreferSameKindSource bool
	// CentralManager places every page's manager on host 0 (Li's
	// centralized-manager variant) instead of distributing managers
	// round-robin; an ablation of the paper's fixed distributed
	// manager choice (§3.1). Retained for compatibility — it is
	// shorthand for Directory: DirCentral.
	CentralManager bool
	// Directory selects the manager-placement scheme (directory.go):
	// fixed distributed managers (default), centralized, or Li &
	// Hudak's dynamic distributed manager with probable-owner
	// forwarding. DirDynamic is only defined for PolicyMRSW.
	Directory Directory
	// Policy selects the coherence algorithm (default PolicyMRSW).
	Policy Policy
	// UnicastInvalidate sends write invalidations as individual calls
	// instead of one physical broadcast frame — an ablation of the
	// paper's multicast invalidation (§2.2).
	UnicastInvalidate bool
	// Bases maps each machine kind to the virtual address at which the
	// DSM region starts on hosts of that kind. Different bases exercise
	// pointer rebasing; the paper's implementation used equal bases.
	Bases map[arch.Kind]uint32
	// Trace, when set, receives one event per notable DSM action
	// (faults, fetches, serves, invalidations, upgrades) for offline
	// analysis. It must not block.
	Trace func(TraceEvent)
	// SCRecorder, when set, records every typed access (per page span,
	// in canonical representation) for offline sequential-consistency
	// checking by internal/sctrace. One recorder serves the whole
	// cluster; the kernel's one-process-at-a-time execution keeps it
	// race-free.
	SCRecorder *sctrace.Recorder
	// Mutation injects one deliberate protocol bug cluster-wide (see
	// mutation.go) — the model checker's mutation-kill harness. Leave
	// MutNone for the correct protocol.
	Mutation Mutation
}

// TraceEvent is one DSM protocol action.
type TraceEvent struct {
	// Time is the virtual time of the event.
	Time sim.Time
	// Host is where the event happened.
	Host HostID
	// Event names the action: read-fault, write-fault, fetch, serve,
	// invalidate, upgrade.
	Event string
	// Page is the DSM page concerned.
	Page PageNo
}

// DefaultBases returns distinct per-kind DSM base addresses.
func DefaultBases() map[arch.Kind]uint32 {
	return map[arch.Kind]uint32{
		arch.Sun:     0x1000_0000,
		arch.Firefly: 0x2000_0000,
	}
}

// Validate checks structural requirements.
func (c *Config) Validate() error {
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("dsm: page size %d not a positive power of two", c.PageSize)
	}
	if c.SpaceSize <= 0 || c.SpaceSize%c.PageSize != 0 {
		return fmt.Errorf("dsm: space size %d not a multiple of page size %d", c.SpaceSize, c.PageSize)
	}
	if c.Registry == nil {
		return fmt.Errorf("dsm: no type registry")
	}
	if c.Params == nil {
		return fmt.Errorf("dsm: no cost model")
	}
	if c.Directory == DirDynamic && c.CentralManager {
		return fmt.Errorf("dsm: CentralManager conflicts with the dynamic directory")
	}
	if err := c.validatePolicy(); err != nil {
		return err
	}
	return nil
}

// pageMeta is the allocation record of one page: its single data type
// and how many bytes of it are in use. It is replicated to every host at
// allocation time (the paper's global static table).
type pageMeta struct {
	typeID conv.TypeID
	used   int
}

// localPage is a host's resident copy of a page.
type localPage struct {
	data   []byte
	access Access
}

// mgrEntry is the manager-side state of one managed page.
type mgrEntry struct {
	owner   HostID
	copyset map[HostID]struct{}
	// lock serializes transfer transactions for the page.
	lock *sim.Semaphore
	// confirm handshake: the transaction parks until the requester
	// confirms installation, keeping the entry consistent.
	confirmed    bool
	confirmArmed bool
	confirmW     sim.Waiter
	// lost marks a page whose only copy died with its crashed owner;
	// accesses fail with ErrPageLost (see recovery.go).
	lost bool
	// suspect marks an entry whose last transfer was never confirmed by
	// a live requester (the forwarding owner may have crashed with the
	// page in flight): the bookkeeping may not reflect who really holds
	// the page. The next transaction reconciles by asking suspectHost
	// (see recovery.go) before trusting the entry.
	suspect     bool
	suspectHost HostID
}

// Stats counts one host's DSM activity.
type Stats struct {
	// ReadFaults and WriteFaults count fault-handler invocations (one
	// per native VM fault, even when it fetches several DSM pages).
	ReadFaults  int
	WriteFaults int
	// PagesFetched counts DSM page bodies received.
	PagesFetched int
	// PagesServed counts DSM page bodies sent to other hosts.
	PagesServed int
	// Upgrades counts write faults satisfied without a transfer.
	Upgrades int
	// InvalidationsSent counts invalidations issued while managing.
	InvalidationsSent int
	// InvalidationsReceived counts local copies discarded on request.
	InvalidationsReceived int
	// Conversions counts page conversions performed on receipt.
	Conversions int
	// ConvReport accumulates float anomalies from those conversions.
	ConvReport conv.Report
	// BytesFetched counts payload bytes received in page bodies.
	BytesFetched int
	// RemoteReads and RemoteWrites count central-policy operations
	// issued to other hosts' servers.
	RemoteReads  int
	RemoteWrites int
	// UpdateWrites counts write-update sequencing requests sent;
	// UpdatePushes counts per-replica update deliveries issued by a
	// manager; UpdatesApplied counts updates applied to local replicas.
	UpdateWrites   int
	UpdatePushes   int
	UpdatesApplied int
	// PagesRecovered counts pages this manager re-owned after their
	// owner crashed; PagesLost counts pages declared unrecoverable.
	PagesRecovered int
	PagesLost      int
	// QuorumReads and QuorumWrites count SC-ABD quorum operations this
	// host initiated; QuorumWriteBacks counts read-side write-back
	// rounds (the second phase that makes interrupted writes atomic);
	// QuorumRetries counts fan-out rounds re-run because a majority was
	// unreachable (partition riding). All zero outside PolicyQuorum.
	QuorumReads      int
	QuorumWrites     int
	QuorumWriteBacks int
	QuorumRetries    int
	// Forwards counts dynamic-directory requests this host relayed one
	// hop down its probable-owner chain (dynamic.go).
	Forwards int
	// ChainServes counts dynamic-directory transactions this host
	// served as owner; ChainHops sums the forwarding hops those
	// requests travelled before arriving, and ChainMax is the longest
	// single chain observed. All zero under the fixed schemes.
	ChainServes int
	ChainHops   int
	ChainMax    int
	// RCTwins counts twins created (first write of an interval per
	// page); RCDiffsSent counts interval diffs pushed to homes and
	// RCDiffBytes their encoded payload bytes; RCDiffsApplied counts
	// diffs folded into this host's copy (as home or as puller);
	// RCPulls counts acquire-time catch-up requests issued; and
	// RCDiffsRetired counts home log entries dropped past the log cap.
	// All zero outside PolicyRC.
	RCTwins        int
	RCDiffsSent    int
	RCDiffBytes    int
	RCDiffsApplied int
	RCPulls        int
	RCDiffsRetired int
	// Messages counts protocol messages sent by this host, by kind —
	// §3.1's raw material for comparing manager schemes. Snapshot
	// filled by Stats(); nil on the zero value.
	Messages map[proto.Kind]int
}

// Module is one host's DSM engine.
type Module struct {
	k     *sim.Kernel
	id    HostID
	arch  arch.Arch
	ep    *remoteop.Endpoint
	cfg   *Config
	hosts []arch.Arch // cluster map indexed by HostID

	local map[PageNo]*localPage
	mgr   map[PageNo]*mgrEntry
	meta  map[PageNo]pageMeta
	// faultLock serializes local fault handling per page so concurrent
	// threads on a multiprocessor host fault once, not N times.
	faultLocks map[PageNo]*sim.Semaphore

	// protoCPU serializes this host's protocol-side processing
	// (manager, owner, invalidation, central-server work): a real
	// host's fault-handling engine works one request at a time, which
	// is what makes a centralized manager a bottleneck under load.
	protoCPU *sim.Resource

	alloc *allocator // non-nil only on the allocation manager (host 0)
	stats Stats
	// check, when attached, validates the global protocol invariants at
	// every protocol transition (see check.go).
	check *InvariantChecker
	// pageFetches counts page bodies received, per page — the raw
	// material of thrashing diagnosis (§3.3's "detailed statistics of
	// the numbers of page faults and transfers").
	pageFetches map[PageNo]int

	// engine is the coherence policy's replication strategy; dir is the
	// manager-placement scheme. Both are fixed at New (engine.go,
	// directory.go).
	engine engine
	dir    directory
	// dyn holds per-page probable-owner state; non-nil only under the
	// dynamic directory (dynamic.go), so fixed-scheme runs and their
	// state hashes are untouched.
	dyn map[PageNo]*dynPage
	// qrm holds per-page SC-ABD replica state; non-nil only under
	// PolicyQuorum (quorum.go). Replicas live here, not in m.local:
	// tag-ordered versions are not MRSW residency and must stay
	// invisible to the MRSW invariant checker and state hash sections.
	qrm map[PageNo]*quorumPage
	// rc holds the release-consistency state (twins, vector timestamp,
	// notices, per-page home logs); non-nil only under PolicyRC (rc.go).
	rc *rcState
	// model is the consistency-model layer: the trace oracle and the
	// dsync payload hooks the policy's contract implies (model.go).
	model consistencyModel

	// liveness is the attached failure detector; nil (the default)
	// means no failure detection: protocol failures panic and the
	// fault-tolerance paths are unreachable.
	liveness *Detector
	// crashed marks this host as failed (crash-stop): its processes
	// unwind at their next DSM interaction and its state is dead.
	crashed bool
}

// New creates the DSM module for one host and registers its protocol
// handlers on the endpoint. hosts maps every HostID in the cluster to
// its architecture. Host 0 additionally runs the allocation manager.
func New(k *sim.Kernel, ep *remoteop.Endpoint, cfg *Config, hosts []arch.Arch) (*Module, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	id := ep.ID()
	if int(id) >= len(hosts) {
		return nil, fmt.Errorf("dsm: host %d outside cluster of %d", id, len(hosts))
	}
	m := &Module{
		k:           k,
		id:          id,
		arch:        hosts[id],
		ep:          ep,
		cfg:         cfg,
		hosts:       hosts,
		local:       make(map[PageNo]*localPage),
		mgr:         make(map[PageNo]*mgrEntry),
		meta:        make(map[PageNo]pageMeta),
		faultLocks:  make(map[PageNo]*sim.Semaphore),
		protoCPU:    sim.NewResource(k, 1),
		pageFetches: make(map[PageNo]int),
	}
	m.engine = newEngine(m)
	m.dir = newDirectory(m)
	m.model = newModel(m)
	if id == 0 {
		m.alloc = newAllocator(cfg)
	}
	ep.Handle(proto.KindGetPage, m.handleGetPage)
	ep.Handle(proto.KindGetPageWrite, m.handleGetPage)
	ep.Handle(proto.KindServeRequest, m.handleServeRequest)
	ep.Handle(proto.KindPageDeliver, m.handlePageDeliver)
	ep.Handle(proto.KindInvalidate, m.handleInvalidate)
	ep.Handle(proto.KindOwnerUpdate, m.handleOwnerUpdate)
	ep.Handle(proto.KindPageMeta, m.handlePageMeta)
	ep.Handle(proto.KindAlloc, m.handleAlloc)
	ep.Handle(proto.KindRemoteRead, m.handleRemoteRead)
	ep.Handle(proto.KindRemoteWrite, m.handleRemoteWrite)
	ep.Handle(proto.KindUpdateWrite, m.handleUpdateWrite)
	ep.Handle(proto.KindApplyUpdate, m.handleApplyUpdate)
	ep.Handle(proto.KindRecoverPage, m.handleRecoverPage)
	ep.Handle(proto.KindDynGetPage, m.handleDynGetPage)
	ep.Handle(proto.KindDynGetPageWrite, m.handleDynGetPage)
	ep.Handle(proto.KindDynForward, m.handleDynForward)
	ep.Handle(proto.KindDynRecover, m.handleDynRecover)
	ep.Handle(proto.KindDynConfirm, m.handleDynConfirm)
	ep.Handle(proto.KindQuorumRead, m.handleQuorumRead)
	ep.Handle(proto.KindQuorumWrite, m.handleQuorumWrite)
	ep.Handle(proto.KindRCFetch, m.handleRCFetch)
	ep.Handle(proto.KindRCDiff, m.handleRCDiff)
	ep.Handle(proto.KindRCPull, m.handleRCPull)
	return m, nil
}

// AttachLiveness connects a failure detector: dead hosts make calls
// fail fast with typed errors, and every declared death triggers the
// copyset recovery sweep on this host (see recovery.go).
func (m *Module) AttachLiveness(d *Detector) {
	m.liveness = d
	d.OnDeath(m.onHostDeath)
}

// Crash marks this host as failed (crash-stop). Its processes unwind
// at their next DSM or network interaction; its memory and manager
// state are gone for protocol purposes. The caller (the cluster) also
// downs the NIC and crashes the endpoint.
func (m *Module) Crash() { m.crashed = true }

// Crashed reports whether Crash has been called.
func (m *Module) Crashed() bool { return m.crashed }

// exitIfCrashed unwinds the calling process if this host has crashed:
// a dead machine's threads simply cease.
func (m *Module) exitIfCrashed(p *sim.Proc) {
	if m.crashed {
		p.Exit()
	}
}

// Lost reports whether the page has been declared lost. It must only
// be called on the page's manager host.
func (m *Module) Lost(page PageNo) bool {
	if ent := m.mgr[page]; ent != nil {
		return ent.lost
	}
	return false
}

// ID returns the host this module serves.
func (m *Module) ID() HostID { return m.id }

// Arch returns the host's architecture.
func (m *Module) Arch() arch.Arch { return m.arch }

// Stats returns a snapshot of the host's DSM counters.
func (m *Module) Stats() Stats {
	s := m.stats
	s.Messages = m.ep.MessageCounts()
	return s
}

// NumPages returns the number of DSM pages in the space.
func (m *Module) NumPages() int { return m.cfg.SpaceSize / m.cfg.PageSize }

// PageOf returns the DSM page containing addr.
func (m *Module) PageOf(addr Addr) PageNo { return PageNo(int(addr) / m.cfg.PageSize) }

// Manager returns the fixed manager of a page — useful for tests and
// fault harnesses that place work relative to a page's manager. It
// panics under the dynamic directory, which has no managers.
func (m *Module) Manager(page PageNo) HostID { return m.manager(page) }

// manager returns the page's manager host per the directory scheme:
// distributed round-robin by default, host 0 under the centralized
// ablation.
func (m *Module) manager(page PageNo) HostID {
	return m.dir.home(page)
}

// base returns the DSM virtual base address for a machine kind.
func (m *Module) base(k arch.Kind) uint32 {
	if m.cfg.Bases == nil {
		return 0
	}
	return m.cfg.Bases[k]
}

// Base returns this host's DSM virtual base address; typed pointer
// accessors add it to Addr offsets when storing pointers.
func (m *Module) Base() uint32 { return m.base(m.arch.Kind) }

// groupSize returns how many DSM pages one native VM page of this host
// spans (>1 only under the smallest page size algorithm on hosts with
// large VM pages).
func (m *Module) groupSize() int {
	g := m.arch.PageSize / m.cfg.PageSize
	if g < 1 {
		g = 1
	}
	return g
}

// localPageFor returns (creating if needed) the resident state of page.
func (m *Module) localPageFor(page PageNo) *localPage {
	lp := m.local[page]
	if lp == nil {
		lp = &localPage{data: make([]byte, m.cfg.PageSize)} // vet:ignore hot-alloc — page frames live for the run and must be zero-filled
		m.local[page] = lp
	}
	return lp
}

// mgrEntryFor returns (creating if needed) the manager state of a page
// this host manages. The initial owner of every page is the allocation
// manager (host 0), which is granted a zero-filled writable copy of
// each page when it assigns it — the allocator's first-touch ownership.
func (m *Module) mgrEntryFor(page PageNo) *mgrEntry {
	if m.manager(page) != m.id {
		panic(fmt.Sprintf("dsm: host %d asked for manager entry of page %d managed by %d", m.id, page, m.manager(page)))
	}
	ent := m.mgr[page]
	if ent == nil {
		ent = &mgrEntry{
			owner:   0,
			copyset: make(map[HostID]struct{}),
			lock:    sim.NewSemaphore(m.k, 1),
		}
		m.mgr[page] = ent
		if m.id == 0 {
			// Manager and allocation manager coincide: ensure the
			// fresh page is resident (it normally already is, granted
			// at allocation time).
			lp := m.localPageFor(page)
			if lp.access == NoAccess {
				lp.access = WriteAccess
			}
		}
	}
	return ent
}

// faultLockFor returns the local fault-serialization lock of a page.
func (m *Module) faultLockFor(page PageNo) *sim.Semaphore {
	l := m.faultLocks[page]
	if l == nil {
		l = sim.NewSemaphore(m.k, 1)
		m.faultLocks[page] = l
	}
	return l
}

// metaFor returns the allocation record of a page.
func (m *Module) metaFor(page PageNo) (pageMeta, bool) {
	mt, ok := m.meta[page]
	return mt, ok
}

// jittered perturbs a processing cost by the configured per-request
// jitter (zero by default).
func (m *Module) jittered(d sim.Duration) sim.Duration {
	j := m.cfg.Params.ProcessJitterPct
	if j <= 0 {
		return d
	}
	f := 1 + j*(2*m.k.Rand().Float64()-1)
	return sim.Duration(float64(d) * f)
}

// trace emits a trace event if tracing is enabled.
func (m *Module) trace(event string, page PageNo) {
	if m.cfg.Trace != nil {
		m.cfg.Trace(TraceEvent{Time: m.k.Now(), Host: m.id, Event: event, Page: page})
	}
}

// checkpoint notifies the attached invariant checker, if any, that the
// protocol transition named point concerning page just completed.
func (m *Module) checkpoint(point string, page PageNo) {
	if m.check != nil {
		m.check.at(point, page)
	}
}

// hasAccess reports whether the page is resident with sufficient rights.
func (m *Module) hasAccess(page PageNo, write bool) bool {
	lp := m.local[page]
	if lp == nil {
		return false
	}
	if write {
		return lp.access == WriteAccess
	}
	return lp.access >= ReadAccess
}

// Access returns the host's current access to a page (for tests and
// statistics displays).
func (m *Module) Access(page PageNo) Access {
	if lp := m.local[page]; lp != nil {
		return lp.access
	}
	return NoAccess
}

// Owner returns the manager's notion of a page's owner. It must only be
// called on the page's manager host.
func (m *Module) Owner(page PageNo) HostID { return m.mgrEntryFor(page).owner }

// HotPage is a page with its inbound transfer count.
type HotPage struct {
	// Page is the DSM page number.
	Page PageNo
	// Fetches counts page bodies this host received for it.
	Fetches int
}

// HotPages returns this host's n most-fetched pages, busiest first —
// pages repeatedly refetched are the signature of thrashing (§3.3).
func (m *Module) HotPages(n int) []HotPage {
	out := make([]HotPage, 0, len(m.pageFetches))
	for pg, c := range m.pageFetches { // vet:ignore map-order — canonicalized by a field-comparator sort (count, then page) the whole-value prover cannot certify
		out = append(out, HotPage{Page: pg, Fetches: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fetches != out[j].Fetches {
			return out[i].Fetches > out[j].Fetches
		}
		return out[i].Page < out[j].Page
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
