// Package apps_test runs the full application suite — matrix
// multiplication, PCB inspection, and grid relaxation — back to back on
// one shared cluster: one DSM space, one conversion registry, one
// function table, three workloads. This is the usage pattern the
// paper's user-level design argues for (§2.1).
package apps_test

import (
	"testing"

	"repro/internal/apps/matmul"
	"repro/internal/apps/pcb"
	"repro/internal/apps/sor"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/sctrace"
)

func TestAllApplicationsShareOneCluster(t *testing.T) {
	// The whole suite runs under the runtime protocol invariant checker
	// and with sequential-consistency trace recording: the three real
	// workloads double as a correctness witness for the protocol.
	rec := sctrace.NewRecorder()
	c, err := cluster.New(cluster.Config{
		Hosts: []cluster.HostSpec{
			{Kind: arch.Sun},
			{Kind: arch.Firefly, CPUs: 4},
			{Kind: arch.Firefly, CPUs: 4},
		},
		Seed:            9,
		SpaceSize:       16 << 20,
		InvariantChecks: true,
		SCTrace:         rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	mm := matmul.Register(c)
	pb := pcb.Register(c)
	sr := sor.Register(c)

	mmRes, err := mm.Run(matmul.Config{
		N: 64, Master: 0,
		Slaves: []cluster.HostID{1, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mmRes.Correct {
		t.Fatal("MM wrong on the shared cluster")
	}

	pcbRes, err := pb.Run(pcb.Config{
		W: 256, H: 512, Master: 0,
		Slaves: []cluster.HostID{1, 2, 1, 2},
		Seed:   3, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pcbRes.Correct || pcbRes.FlawPixels == 0 {
		t.Fatalf("PCB wrong on the shared cluster: correct=%v flaws=%d",
			pcbRes.Correct, pcbRes.FlawPixels)
	}

	sorRes, err := sr.Run(sor.Config{
		W: 64, H: 66, Iters: 5, Master: 0,
		Slaves: []cluster.HostID{1, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sorRes.Correct {
		t.Fatal("SOR wrong on the shared cluster")
	}

	// The three runs accumulated into one set of cluster statistics.
	total := c.TotalDSMStats()
	if total.Conversions == 0 || total.PagesFetched == 0 {
		t.Fatalf("shared-cluster stats empty: %+v", total)
	}
	if mmRes.Elapsed <= 0 || pcbRes.Elapsed <= 0 || sorRes.Elapsed <= 0 {
		t.Fatal("an application consumed no virtual time")
	}

	// The protocol checker must have audited the run, silently.
	if c.Check.Checks() == 0 {
		t.Fatal("invariant checker never fired")
	}
	if c.Check.Violations() != 0 {
		t.Fatalf("protocol invariants violated %d times", c.Check.Violations())
	}
	c.Check.CheckAll("suite-teardown")

	// And the recorded access trace of all three workloads, across a
	// Sun and two Fireflies, must be sequentially consistent.
	if rec.Len() == 0 {
		t.Fatal("SC recorder captured no operations")
	}
	if v := sctrace.Check(rec.Ops()); len(v) != 0 {
		t.Fatalf("execution not sequentially consistent:\n%s", sctrace.Report(v, 10))
	}
}
