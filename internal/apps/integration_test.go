// Package apps_test runs the full application suite — matrix
// multiplication, PCB inspection, and grid relaxation — back to back on
// one shared cluster: one DSM space, one conversion registry, one
// function table, three workloads. This is the usage pattern the
// paper's user-level design argues for (§2.1).
package apps_test

import (
	"testing"

	"repro/internal/apps/matmul"
	"repro/internal/apps/pcb"
	"repro/internal/apps/sor"
	"repro/internal/arch"
	"repro/internal/cluster"
)

func TestAllApplicationsShareOneCluster(t *testing.T) {
	c, err := cluster.New(cluster.Config{
		Hosts: []cluster.HostSpec{
			{Kind: arch.Sun},
			{Kind: arch.Firefly, CPUs: 4},
			{Kind: arch.Firefly, CPUs: 4},
		},
		Seed:      9,
		SpaceSize: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	mm := matmul.Register(c)
	pb := pcb.Register(c)
	sr := sor.Register(c)

	mmRes, err := mm.Run(matmul.Config{
		N: 64, Master: 0,
		Slaves: []cluster.HostID{1, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mmRes.Correct {
		t.Fatal("MM wrong on the shared cluster")
	}

	pcbRes, err := pb.Run(pcb.Config{
		W: 256, H: 512, Master: 0,
		Slaves: []cluster.HostID{1, 2, 1, 2},
		Seed:   3, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pcbRes.Correct || pcbRes.FlawPixels == 0 {
		t.Fatalf("PCB wrong on the shared cluster: correct=%v flaws=%d",
			pcbRes.Correct, pcbRes.FlawPixels)
	}

	sorRes, err := sr.Run(sor.Config{
		W: 64, H: 66, Iters: 5, Master: 0,
		Slaves: []cluster.HostID{1, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sorRes.Correct {
		t.Fatal("SOR wrong on the shared cluster")
	}

	// The three runs accumulated into one set of cluster statistics.
	total := c.TotalDSMStats()
	if total.Conversions == 0 || total.PagesFetched == 0 {
		t.Fatalf("shared-cluster stats empty: %+v", total)
	}
	if mmRes.Elapsed <= 0 || pcbRes.Elapsed <= 0 || sorRes.Elapsed <= 0 {
		t.Fatal("an application consumed no virtual time")
	}
}
