// Package matmul implements the paper's parallel matrix multiplication
// application (§3.2, §3.3) on the Mermaid DSM.
//
// The two argument matrices A and B are read-shared (and so replicate
// across hosts); the result matrix C is write-shared. Slave threads each
// compute a set of rows of C and the master implicitly receives the
// result through DSM when it reads C at the end.
//
// Two work assignments are provided, as in §3.3: MM1 gives each thread a
// contiguous block of rows; MM2 assigns rows round-robin, deliberately
// creating data contention on C's pages — under the largest page size
// algorithm an 8 KB page then holds rows belonging to up to eight
// different threads, the false-sharing pattern whose thrashing the paper
// studies.
package matmul

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Assignment selects the row-distribution policy.
type Assignment int

const (
	// MM1 assigns each thread a contiguous block of rows.
	MM1 Assignment = iota + 1
	// MM2 assigns rows to threads round-robin.
	MM2
)

// String names the assignment.
func (a Assignment) String() string {
	if a == MM1 {
		return "MM1"
	}
	return "MM2"
}

// Config describes one matrix multiplication run.
type Config struct {
	// N is the matrix dimension (the paper uses 256×256 integers).
	N int
	// Master is the host running the master thread.
	Master cluster.HostID
	// Slaves places one slave thread per entry (repeats allowed: a
	// Firefly can run several threads).
	Slaves []cluster.HostID
	// Assignment selects MM1 or MM2 (default MM1).
	Assignment Assignment
	// Verify compares the DSM result against a local multiplication.
	Verify bool
	// JitterPct perturbs each row's compute time by ±JitterPct (seeded
	// by the cluster), modelling the scheduling noise behind the
	// run-to-run fluctuations the paper reports for thrashing runs.
	JitterPct float64
	// WriteChunk is how many result elements a thread writes per DSM
	// store burst. Zero writes whole rows at once. The original system
	// stored each element as it was computed, so a contended page could
	// be stolen mid-row; small chunks reproduce that interleaving and
	// with it the full severity of §3.3's thrashing.
	WriteChunk int
	// AcquireRelease brackets the shared-data phases in explicit
	// acquire/release pairs: the master releases after initializing A
	// and B, each slave acquires before its first read, and the
	// existing done-semaphore handshake releases the slaves' C rows to
	// the master. Sequentially consistent policies do not need the
	// brackets (and the extra semaphore traffic is pure overhead), but
	// under dsm.PolicyRC writes only propagate along them — RC runs
	// must set this.
	AcquireRelease bool
}

// Result reports a run's outcome.
type Result struct {
	// Elapsed is the virtual response time of the whole computation,
	// measured at the master as in the paper's figures.
	Elapsed sim.Duration
	// Correct is false if verification failed (Verify only).
	Correct bool
	// Stats aggregates DSM counters across all hosts.
	Stats dsm.Stats
}

// funcID is the registered entry point for slave threads; apps in one
// process must not collide, so matmul claims 0x4D4D ("MM").
const funcID threads.FuncID = 0x4D4D

const semDone uint32 = 0x4D4D

// semInit is the init-phase release bracket (Config.AcquireRelease):
// the master Vs it once per slave after filling A and B, each slave Ps
// it before its first shared read. Defined unconditionally — an unused
// semaphore generates no events, so runs without the bracket are
// unchanged by its existence.
const semInit uint32 = 0x4D4E

// app carries the shared-run state the slave closure needs.
type app struct {
	c        *cluster.Cluster
	n        int
	a, b, cm dsm.Addr
	assign   Assignment
	nslaves  int
	jitter   float64
	chunk    int
	bracket  bool
}

// Register installs matmul's thread entry point and synchronization on
// a cluster. Call once per cluster before Run.
func Register(c *cluster.Cluster) *Runner {
	r := &Runner{c: c}
	c.DefineSemaphore(semDone, 0, 0)
	c.DefineSemaphore(semInit, 0, 0)
	c.Funcs.MustRegister(funcID, func(t *threads.Thread, args []uint32) {
		r.slave(t, args)
	})
	return r
}

// Runner executes matrix multiplications on a registered cluster.
type Runner struct {
	c   *cluster.Cluster
	cur *app
}

// rowsFor lists the rows thread idx computes under the assignment.
func (st *app) rowsFor(idx int) []int {
	var rows []int
	switch st.assign {
	case MM2:
		for r := idx; r < st.n; r += st.nslaves {
			rows = append(rows, r)
		}
	default:
		per := (st.n + st.nslaves - 1) / st.nslaves
		lo := idx * per
		hi := min(lo+per, st.n)
		for r := lo; r < hi; r++ {
			rows = append(rows, r)
		}
	}
	return rows
}

// slave is the worker body: read B (replicates), then per assigned row
// read A's row, compute with real integer arithmetic while charging the
// calibrated MAC cost, and write the result row.
func (r *Runner) slave(t *threads.Thread, args []uint32) {
	st := r.cur
	idx := int(args[0])
	h := r.c.Hosts[t.Host()]
	n := st.n

	if st.bracket {
		h.Sync.P(t.P, semInit) // acquire the master's A/B initialization
	}
	bRow := make([]int32, n*n)
	h.DSM.ReadInt32s(t.P, st.b, bRow) // replicate B read-only
	aRow := make([]int32, n)
	cRow := make([]int32, n)
	rowCost := time.Duration(n*n) * r.c.Params.MACCost

	chunk := st.chunk
	if chunk <= 0 || chunk > n {
		chunk = n
	}
	for _, row := range st.rowsFor(idx) {
		h.DSM.ReadInt32s(t.P, st.a+dsm.Addr(4*n*row), aRow)
		// Compute and store the row chunk by chunk, charging compute
		// between stores — each store may fault if another thread took
		// the page meanwhile.
		for j0 := 0; j0 < n; j0 += chunk {
			j1 := min(j0+chunk, n)
			for j := j0; j < j1; j++ {
				var sum int32
				for k := 0; k < n; k++ {
					sum += aRow[k] * bRow[k*n+j]
				}
				cRow[j] = sum
			}
			cost := rowCost * time.Duration(j1-j0) / time.Duration(n)
			if st.jitter > 0 {
				f := 1 + st.jitter*(2*r.c.K.Rand().Float64()-1)
				cost = time.Duration(float64(cost) * f)
			}
			t.Compute(cost)
			h.DSM.WriteInt32s(t.P, st.cm+dsm.Addr(4*(n*row+j0)), cRow[j0:j1])
		}
	}
	h.Sync.V(t.P, semDone)
}

// Run executes one multiplication and returns its result. The master
// fills A and B, starts the slaves, waits for them, and reads C back.
func (r *Runner) Run(cfg Config) (Result, error) {
	if cfg.N <= 0 || len(cfg.Slaves) == 0 {
		return Result{}, fmt.Errorf("matmul: need N>0 and at least one slave")
	}
	if cfg.Assignment == 0 {
		cfg.Assignment = MM1
	}
	n := cfg.N
	var (
		res    Result
		runErr error
	)
	elapsed := r.c.Run(cfg.Master, func(p *sim.Proc, h *cluster.Host) {
		aAddr, err := h.DSM.Alloc(p, conv.Int32, n*n)
		if err != nil {
			runErr = err
			return
		}
		bAddr, err := h.DSM.Alloc(p, conv.Int32, n*n)
		if err != nil {
			runErr = err
			return
		}
		cAddr, err := h.DSM.Alloc(p, conv.Int32, n*n)
		if err != nil {
			runErr = err
			return
		}
		r.cur = &app{
			c: r.c, n: n, a: aAddr, b: bAddr, cm: cAddr,
			assign: cfg.Assignment, nslaves: len(cfg.Slaves),
			jitter: cfg.JitterPct, chunk: cfg.WriteChunk,
			bracket: cfg.AcquireRelease,
		}

		av := make([]int32, n*n)
		bv := make([]int32, n*n)
		rng := uint32(0x9e3779b9)
		next := func() int32 {
			rng ^= rng << 13
			rng ^= rng >> 17
			rng ^= rng << 5
			return int32(rng % 97)
		}
		for i := range av {
			av[i] = next()
			bv[i] = next()
		}
		h.DSM.WriteInt32s(p, aAddr, av)
		h.DSM.WriteInt32s(p, bAddr, bv)
		if cfg.AcquireRelease {
			// Release the initialized matrices: the first V pushes the
			// open interval's diffs home; each slave's P acquires them.
			for range cfg.Slaves {
				h.Sync.V(p, semInit)
			}
		}

		for i, host := range cfg.Slaves {
			if _, err := h.Threads.Create(p, host, funcID, []uint32{uint32(i)}); err != nil {
				runErr = err
				return
			}
		}
		for range cfg.Slaves {
			h.Sync.P(p, semDone)
		}
		got := make([]int32, n*n)
		h.DSM.ReadInt32s(p, cAddr, got)

		res.Correct = true
		if cfg.Verify {
			want := multiplyLocal(av, bv, n)
			for i := range want {
				if got[i] != want[i] {
					res.Correct = false
					break
				}
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res.Elapsed = elapsed
	res.Stats = r.c.TotalDSMStats()
	return res, nil
}

// multiplyLocal is the sequential reference multiplication.
func multiplyLocal(a, b []int32, n int) []int32 {
	c := make([]int32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum int32
			for k := 0; k < n; k++ {
				sum += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return c
}

// Sequential returns the modelled sequential execution time of an N×N
// multiplication on one CPU of the given machine kind — the baseline
// the paper's speedups are measured against (no DSM, no threads).
func (r *Runner) Sequential(kind arch.Kind, n int) sim.Duration {
	return r.c.Params.Scale(kind, time.Duration(n)*time.Duration(n)*time.Duration(n)*r.c.Params.MACCost)
}
