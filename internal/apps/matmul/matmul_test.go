package matmul

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/dsm"
)

func newCluster(t *testing.T, fireflies, cpus int, pageSize int) *cluster.Cluster {
	t.Helper()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < fireflies; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: cpus})
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 42, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMM1CorrectAcrossHeterogeneousHosts(t *testing.T) {
	c := newCluster(t, 2, 4, 8192)
	r := Register(c)
	res, err := r.Run(Config{
		N:      64,
		Master: 0, // Sun master
		Slaves: []cluster.HostID{1, 1, 2, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("distributed result differs from local multiplication")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Stats.Conversions == 0 {
		t.Fatal("Sun→Firefly data moved without conversions")
	}
}

func TestMM2CorrectDespiteContention(t *testing.T) {
	c := newCluster(t, 2, 4, 8192)
	r := Register(c)
	res, err := r.Run(Config{
		N:          64,
		Master:     0,
		Slaves:     []cluster.HostID{1, 1, 2, 2},
		Assignment: MM2,
		Verify:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("MM2 result wrong under row contention")
	}
}

func newRCCluster(t *testing.T, fireflies, cpus int, pageSize int) *cluster.Cluster {
	t.Helper()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < fireflies; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: cpus})
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 42, PageSize: pageSize, Policy: dsm.PolicyRC})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMM2CorrectUnderRC runs the contended assignment under lazy
// release consistency with the acquire/release brackets on: the result
// must still verify — every C row must flow to the master through
// twin/diff propagation along the done-semaphore handshake — and the
// false-sharing page traffic that defines §3.3's thrashing must be
// gone: concurrent writers keep independent writable copies, so C's
// pages never ping-pong.
func TestMM2CorrectUnderRC(t *testing.T) {
	mm2 := func(c *cluster.Cluster, bracket bool) Result {
		r := Register(c)
		res, err := r.Run(Config{
			N:              64,
			Master:         0,
			Slaves:         []cluster.HostID{1, 1, 2, 2},
			Assignment:     MM2,
			Verify:         true,
			WriteChunk:     8,
			AcquireRelease: bracket,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rc := mm2(newRCCluster(t, 2, 4, 8192), true)
	if !rc.Correct {
		t.Fatal("MM2 result wrong under release consistency")
	}
	if rc.Stats.RCTwins == 0 || rc.Stats.RCDiffsSent == 0 {
		t.Fatalf("RC machinery idle: twins=%d diffs=%d", rc.Stats.RCTwins, rc.Stats.RCDiffsSent)
	}
	sc := mm2(newCluster(t, 2, 4, 8192), false)
	if rc.Stats.PagesFetched*3 > sc.Stats.PagesFetched {
		t.Fatalf("RC fetched %d pages, MRSW %d; want ≥3× reduction from un-thrashed C pages",
			rc.Stats.PagesFetched, sc.Stats.PagesFetched)
	}
}

func TestMM2LargePagesSlowerThanMM1(t *testing.T) {
	run := func(a Assignment) (elapsed int64) {
		c := newCluster(t, 2, 4, 8192)
		r := Register(c)
		res, err := r.Run(Config{
			N: 64, Master: 0,
			Slaves:     []cluster.HostID{1, 1, 1, 2, 2, 2},
			Assignment: a,
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.Elapsed)
	}
	mm1 := run(MM1)
	mm2 := run(MM2)
	if mm2 <= mm1 {
		t.Fatalf("MM2 (%d) not slower than MM1 (%d) with 8KB pages; false sharing unmodelled", mm2, mm1)
	}
}

func TestSmallPagesNarrowMM1MM2Gap(t *testing.T) {
	// With 1 KB pages one row is one page: round-robin assignment no
	// longer causes false sharing, so MM2 ≈ MM1 (Figure 7).
	run := func(a Assignment, pageSize int) float64 {
		c := newCluster(t, 2, 4, pageSize)
		r := Register(c)
		res, err := r.Run(Config{
			N: 64, Master: 0,
			Slaves:     []cluster.HostID{1, 1, 1, 2, 2, 2},
			Assignment: a,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	gapLarge := run(MM2, 8192) / run(MM1, 8192)
	gapSmall := run(MM2, 1024) / run(MM1, 1024)
	if gapSmall >= gapLarge {
		t.Fatalf("small pages gap %.2f not below large pages gap %.2f", gapSmall, gapLarge)
	}
	if gapSmall > 1.35 {
		t.Fatalf("MM2/MM1 ratio %.2f with 1KB pages; expected near parity", gapSmall)
	}
}

func TestMoreThreadsImproveResponseTime(t *testing.T) {
	run := func(slaves []cluster.HostID) float64 {
		c := newCluster(t, 4, 4, 8192)
		r := Register(c)
		res, err := r.Run(Config{N: 128, Master: 0, Slaves: slaves})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	one := run([]cluster.HostID{1})
	four := run([]cluster.HostID{1, 2, 3, 4})
	if four >= one {
		t.Fatalf("4 threads (%.1fs) not faster than 1 (%.1fs)", four, one)
	}
	if one/four < 2 {
		t.Fatalf("speedup %.2f at 4 threads; expected ≥2", one/four)
	}
}

func TestSequentialBaseline(t *testing.T) {
	c := newCluster(t, 1, 1, 8192)
	r := Register(c)
	ff := r.Sequential(arch.Firefly, 256)
	sun := r.Sequential(arch.Sun, 256)
	// 256³ × 2.7µs ≈ 45.3 s on a Firefly; 1.31× that on a Sun.
	if ff.Seconds() < 40 || ff.Seconds() > 50 {
		t.Fatalf("firefly sequential MM(256) = %.1fs, want ≈45s", ff.Seconds())
	}
	if ratio := sun.Seconds() / ff.Seconds(); ratio < 1.25 || ratio > 1.4 {
		t.Fatalf("sun/firefly ratio %.2f, want 1.31", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	c := newCluster(t, 1, 1, 8192)
	r := Register(c)
	if _, err := r.Run(Config{N: 0, Slaves: []cluster.HostID{1}}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := r.Run(Config{N: 8}); err == nil {
		t.Error("no slaves accepted")
	}
}
