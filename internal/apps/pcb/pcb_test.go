package pcb

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
)

func TestGenerateBoardDeterministic(t *testing.T) {
	a := GenerateBoard(512, 128, 7)
	b := GenerateBoard(512, 128, 7)
	if !bytes.Equal(a.Front, b.Front) || !bytes.Equal(a.Back, b.Back) {
		t.Fatal("same seed produced different boards")
	}
	c := GenerateBoard(512, 128, 8)
	if bytes.Equal(a.Front, c.Front) {
		t.Fatal("different seeds produced identical boards")
	}
}

func TestSequentialCheckFindsInjectedFlaws(t *testing.T) {
	b := GenerateBoard(2048, 256, 3)
	_, flawCount, copperCount := CheckSequential(b)
	if flawCount == 0 {
		t.Fatal("no flaws found on a board with injected violations")
	}
	if copperCount == 0 {
		t.Fatal("no copper on the generated board")
	}
	if flawCount > copperCount {
		t.Fatalf("%d flaw pixels exceed %d copper pixels; checker broken", flawCount, copperCount)
	}
}

func TestCleanFeaturePassesRules(t *testing.T) {
	// A lone wide trace with no neighbours must produce no flaws.
	b := &Board{W: 128, H: 64, Front: make([]byte, 128*64), Back: make([]byte, 128*64)}
	b.fillRect(10, 20, 100, 20+MinWidth, Copper) // thickness MinWidth+1
	_, flawCount, _ := CheckSequential(b)
	if flawCount != 0 {
		t.Fatalf("clean board reported %d flaw pixels", flawCount)
	}
}

func TestThinTraceFlagged(t *testing.T) {
	b := &Board{W: 128, H: 64, Front: make([]byte, 128*64), Back: make([]byte, 128*64)}
	b.fillRect(10, 20, 100, 21, Copper) // thickness 2 < MinWidth... but long horizontally
	// Horizontally long: rule 1 requires thin in *both* axes, so a long
	// thin trace is legal by rule 1 — it's a trace, not a defect blob.
	// A short thin blob must be flagged.
	b.fillRect(50, 40, 51, 41, Copper) // 2×2 blob
	flaws, flawCount, _ := CheckSequential(b)
	if flawCount == 0 {
		t.Fatal("2×2 copper blob not flagged as too thin")
	}
	if flaws[40*128+50] == 0 {
		t.Fatal("blob pixels not marked")
	}
}

func TestSpacingViolationFlagged(t *testing.T) {
	b := &Board{W: 128, H: 64, Front: make([]byte, 128*64), Back: make([]byte, 128*64)}
	b.fillRect(10, 20, 100, 24, Copper)
	b.fillRect(10, 27, 100, 31, Copper) // gap of 2 rows < MinSpace
	_, flawCount, _ := CheckSequential(b)
	if flawCount == 0 {
		t.Fatal("2-row spacing between traces not flagged")
	}
}

func TestMisdrilledHoleFlagged(t *testing.T) {
	b := &Board{W: 128, H: 64, Front: make([]byte, 128*64), Back: make([]byte, 128*64)}
	b.fillRectInto(b.Back, 60, 30, 63, 33, Hole) // hole with no pad
	_, flawCount, _ := CheckSequential(b)
	if flawCount == 0 {
		t.Fatal("hole outside a pad not flagged")
	}
}

func TestStripedCheckMatchesSequential(t *testing.T) {
	b := GenerateBoard(1024, 256, 11)
	want, wantCount, _ := CheckSequential(b)
	for _, stripes := range []int{2, 3, 5, 8} {
		flaws := make([]byte, b.W*b.H)
		total := 0
		per := (b.H + stripes - 1) / stripes
		for s := 0; s < stripes; s++ {
			lo := s * per
			hi := min(lo+per, b.H)
			count, _ := CheckStripe(b.Front, b.Back, flaws, b.W, b.H, lo, hi, RequiredOverlap)
			total += count
		}
		if total != wantCount {
			t.Fatalf("%d stripes found %d flaw pixels, sequential %d", stripes, total, wantCount)
		}
		if !bytes.Equal(flaws, want) {
			t.Fatalf("%d-stripe flaw image differs from sequential", stripes)
		}
	}
}

func newCluster(t *testing.T, fireflies, cpus int) *cluster.Cluster {
	t.Helper()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < fireflies; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: cpus})
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDistributedInspectionCorrect(t *testing.T) {
	c := newCluster(t, 2, 4)
	r := Register(c)
	res, err := r.Run(Config{
		W: 512, H: 128,
		Master: 0,
		Slaves: []cluster.HostID{1, 1, 2, 2},
		Seed:   5,
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("distributed inspection differs from sequential check")
	}
	if res.FlawPixels == 0 {
		t.Fatal("no flaws found")
	}
}

func TestMoreFirefliesSpeedUpInspection(t *testing.T) {
	run := func(slaves []cluster.HostID) float64 {
		c := newCluster(t, 3, 4)
		r := Register(c)
		res, err := r.Run(Config{W: 1024, H: 256, Master: 0, Slaves: slaves, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	one := run([]cluster.HostID{1})
	six := run([]cluster.HostID{1, 1, 2, 2, 3, 3})
	// Stripe overlap is recomputed by every thread, so speedup is well
	// below linear — the very limitation §3.2 reports for PCB.
	if speedup := one / six; speedup < 2.5 {
		t.Fatalf("speedup %.2f with 6 threads on 3 fireflies, want ≥2.5", speedup)
	}
}

func TestSequentialCalibration(t *testing.T) {
	// The paper: "on a Sun3/60, it takes about five minutes to process a
	// 2 cm × 16 cm area" (and elsewhere "six minutes"). At 128 px/cm the
	// area is 256×2048; the modelled time must land in 280–400 s.
	c := newCluster(t, 1, 1)
	r := Register(c)
	seq := r.Sequential(arch.Sun, 2048, 256, 5)
	if s := seq.Seconds(); s < 280 || s > 400 {
		t.Fatalf("sequential Sun inspection %.0fs, want ≈300–360s", s)
	}
}
