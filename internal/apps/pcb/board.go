// Package pcb implements the paper's printed-circuit-board inspection
// application (§3.2) on the Mermaid DSM.
//
// Two digital images of a board — front-lit (copper layout) and back-lit
// (drilled holes) — are stored as large matrices in shared memory. The
// checking software verifies geometric design rules (conductor width,
// spacing, hole placement) and marks violations in a third image. The
// master thread runs on a Sun workstation, divides the board into
// stripes, and creates checking threads on the Fireflies; stripes
// overlap slightly so features on the borders are checked properly, as
// footnote 4 of the paper describes.
//
// The paper's camera images are proprietary; this package generates
// synthetic boards (traces, pads, holes) with seeded rule violations,
// which preserves the relevant behaviour: large read-shared input
// matrices, a write-shared output matrix, and per-stripe computational
// imbalance from uneven feature density.
package pcb

import "math/rand"

// Pixel values in the front-lit image.
const (
	// Substrate is bare board.
	Substrate byte = 0
	// Copper is conductor material.
	Copper byte = 1
)

// Pixel values in the back-lit image.
const (
	// Opaque is anything that blocks back-light.
	Opaque byte = 0
	// Hole is a drilled hole (bright when back-lit).
	Hole byte = 1
)

// Design rules (pixels). MaxFeature bounds every copper feature's
// thickness; stripe overlap must be at least MaxFeature so border
// features are fully visible to some stripe, and at least MinSpace so
// clamped substrate runs classify identically in striped and sequential
// checks.
const (
	// MinWidth is the minimum legal conductor thickness.
	MinWidth = 4
	// MinSpace is the minimum legal gap between conductors.
	MinSpace = 6
	// MaxFeature is the largest feature thickness the generator emits.
	MaxFeature = 12
	// RequiredOverlap is the stripe overlap needed for exact striping.
	RequiredOverlap = MaxFeature + MinSpace
)

// Board holds one synthetic PCB: the two camera images and ground truth.
type Board struct {
	// W and H are the image dimensions in pixels.
	W, H int
	// Front is the front-lit image (copper layout), row-major.
	Front []byte
	// Back is the back-lit image (holes), row-major.
	Back []byte
}

// GenerateBoard builds a deterministic synthetic board with traces,
// pads, holes, and seeded rule violations.
func GenerateBoard(w, h int, seed int64) *Board {
	rng := rand.New(rand.NewSource(seed))
	b := &Board{W: w, H: h, Front: make([]byte, w*h), Back: make([]byte, w*h)}

	// Horizontal traces of varying thickness; a few deliberately thin.
	y := 8
	for y < h-16 {
		thickness := MinWidth + rng.Intn(3) // 4..6: legal
		if rng.Intn(6) == 0 {
			thickness = 2 + rng.Intn(2) // 2..3: too thin
		}
		x0 := rng.Intn(w / 4)
		x1 := w - 1 - rng.Intn(w/4)
		b.fillRect(x0, y, x1, y+thickness-1, Copper)
		gap := MinSpace + 2 + rng.Intn(12)
		if rng.Intn(8) == 0 {
			gap = 2 + rng.Intn(MinSpace-3) // spacing violation
		}
		y += thickness + gap
	}

	// Pads with drilled holes; a few holes misdrilled off their pad.
	for i := 0; i < w*h/16384; i++ {
		px := 8 + rng.Intn(w-24)
		py := 8 + rng.Intn(h-24)
		b.fillRect(px, py, px+MaxFeature-1, py+MaxFeature-1, Copper)
		hx, hy := px+4, py+4
		if rng.Intn(5) == 0 {
			hx = px + MaxFeature + 2 // off the pad: violation
		}
		b.fillRectInto(b.Back, hx, hy, hx+3, hy+3, Hole)
	}
	return b
}

func (b *Board) fillRect(x0, y0, x1, y1 int, v byte) {
	b.fillRectInto(b.Front, x0, y0, x1, y1, v)
}

func (b *Board) fillRectInto(img []byte, x0, y0, x1, y1 int, v byte) {
	for y := y0; y <= y1 && y < b.H; y++ {
		for x := x0; x <= x1 && x < b.W; x++ {
			if x >= 0 && y >= 0 {
				img[y*b.W+x] = v
			}
		}
	}
}

// CheckStripe runs the design-rule check over rows [lo, hi) of the
// board, examining context rows [lo-overlap, hi+overlap) as needed, and
// marks violations of rows [lo, hi) in flaws (a full-board row-major
// image; only the stripe's rows are written). It returns the number of
// flaw pixels marked and the number of copper pixels examined (the
// computational weight of the stripe).
//
// Rules:
//  1. minimum conductor width: a copper pixel whose vertical *and*
//     horizontal copper extents are both below MinWidth is part of a
//     too-thin feature;
//  2. minimum spacing: a substrate gap shorter than MinSpace between
//     copper pixels along a row or column is a spacing violation;
//  3. hole placement: a hole pixel must be drilled through copper.
func CheckStripe(front, back, flaws []byte, w, h, lo, hi, overlap int) (flawCount, copperCount int) {
	clo := max(0, lo-overlap)
	chi := min(h, hi+overlap)

	vert := make([]int, w*(chi-clo)) // vertical copper run length per pixel
	// Column pass: compute vertical copper extents and spacing gaps.
	for x := 0; x < w; x++ {
		runStart := clo
		prev := byte(0xff)
		flush := func(end int) {
			runLen := end - runStart
			if prev == Copper {
				for y := runStart; y < end; y++ {
					vert[(y-clo)*w+x] = runLen
				}
			} else if prev == Substrate && runLen < MinSpace && runStart > clo && end < chi {
				// Gap between copper above and below.
				for y := max(runStart, lo); y < min(end, hi); y++ {
					flaws[y*w+x] = 1
				}
			}
		}
		for y := clo; y < chi; y++ {
			v := front[y*w+x]
			if v != prev {
				if prev != 0xff {
					flush(y)
				}
				prev = v
				runStart = y
			}
		}
		flush(chi)
	}

	// Row pass: horizontal extents, spacing, width rule, hole rule.
	for y := lo; y < hi; y++ {
		runStart := 0
		prev := byte(0xff)
		flushRow := func(end int) {
			runLen := end - runStart
			if prev == Copper {
				if runLen < MinWidth {
					// Thin horizontally; violation only if also thin
					// vertically (rule 1).
					for x := runStart; x < end; x++ {
						if vert[(y-clo)*w+x] < MinWidth {
							flaws[y*w+x] = 1
						}
					}
				}
			} else if prev == Substrate && runLen < MinSpace && runStart > 0 && end < w {
				for x := runStart; x < end; x++ {
					flaws[y*w+x] = 1
				}
			}
		}
		for x := 0; x < w; x++ {
			v := front[y*w+x]
			if v == Copper {
				copperCount++
			}
			if v != prev {
				if prev != 0xff {
					flushRow(x)
				}
				prev = v
				runStart = x
			}
			if back[y*w+x] == Hole && v != Copper {
				flaws[y*w+x] = 1 // hole outside its pad (rule 3)
			}
		}
		flushRow(w)
	}

	for y := lo; y < hi; y++ {
		for x := 0; x < w; x++ {
			if flaws[y*w+x] != 0 {
				flawCount++
			}
		}
	}
	return flawCount, copperCount
}

// CheckSequential runs the whole-board check in one pass (the reference
// the paper's speedups are measured against).
func CheckSequential(b *Board) (flaws []byte, flawCount, copperCount int) {
	flaws = make([]byte, b.W*b.H)
	flawCount, copperCount = CheckStripe(b.Front, b.Back, flaws, b.W, b.H, 0, b.H, 0)
	return flaws, flawCount, copperCount
}
