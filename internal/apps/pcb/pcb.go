package pcb

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sim"
	"repro/internal/threads"
)

// Config describes one PCB inspection run.
type Config struct {
	// W, H are the board image dimensions in pixels. The paper's
	// 2 cm × 16 cm area corresponds to 256×2048 at 128 px/cm.
	W, H int
	// Master is the host running the master thread (a Sun workstation
	// with the bit-mapped display, in the paper's scenario).
	Master cluster.HostID
	// Slaves places one checking thread per entry.
	Slaves []cluster.HostID
	// Overlap is the stripe overlap in rows; zero means RequiredOverlap.
	Overlap int
	// Seed drives the synthetic board generator.
	Seed int64
	// Verify compares the distributed result with a sequential check.
	Verify bool
}

// Result reports a run's outcome.
type Result struct {
	// Elapsed is the virtual response time at the master.
	Elapsed sim.Duration
	// FlawPixels is the number of violation pixels found.
	FlawPixels int
	// Correct is false if verification failed (Verify only).
	Correct bool
	// Stats aggregates DSM counters across hosts.
	Stats dsm.Stats
}

const funcID threads.FuncID = 0x5043 // "PC"

const semDone uint32 = 0x5043

type app struct {
	w, h, overlap int
	front, back   dsm.Addr
	flaws, counts dsm.Addr
	stripes       int
}

// Runner executes PCB inspections on a registered cluster.
type Runner struct {
	c   *cluster.Cluster
	cur *app
}

// Register installs the PCB thread entry point on a cluster.
func Register(c *cluster.Cluster) *Runner {
	r := &Runner{c: c}
	c.DefineSemaphore(semDone, 0, 0)
	c.Funcs.MustRegister(funcID, func(t *threads.Thread, args []uint32) {
		r.slave(t, args)
	})
	return r
}

// stripeBounds returns the owned rows of stripe idx.
func (st *app) stripeBounds(idx int) (lo, hi int) {
	per := (st.h + st.stripes - 1) / st.stripes
	lo = idx * per
	hi = min(lo+per, st.h)
	return lo, hi
}

// slave checks one stripe: read the stripe's context rows of both
// images through DSM, run the real rule check, charge the calibrated
// per-pixel cost, and write back the flaw rows and the stripe count.
func (r *Runner) slave(t *threads.Thread, args []uint32) {
	st := r.cur
	idx := int(args[0])
	h := r.c.Hosts[t.Host()]
	lo, hi := st.stripeBounds(idx)
	clo := max(0, lo-st.overlap)
	chi := min(st.h, hi+st.overlap)
	w := st.w

	front := make([]byte, w*st.h)
	back := make([]byte, w*st.h)
	h.DSM.ReadBytes(t.P, st.front+dsm.Addr(clo*w), front[clo*w:chi*w])
	h.DSM.ReadBytes(t.P, st.back+dsm.Addr(lo*w), back[lo*w:hi*w])

	flaws := make([]byte, w*st.h)
	flawCount, copperCount := CheckStripe(front, back, flaws, w, st.h, lo, hi, st.overlap)

	// The paper's checking cost: every examined pixel (including the
	// overlap context, which is the striping's extra work) plus a
	// surcharge per copper pixel — feature density imbalances stripes.
	params := r.c.Params
	cost := time.Duration(chi-clo) * time.Duration(w) * params.PCBPixelCost
	cost += time.Duration(copperCount) * params.PCBFeatureCost
	t.Compute(cost)

	h.DSM.WriteBytes(t.P, st.flaws+dsm.Addr(lo*w), flaws[lo*w:hi*w])
	h.DSM.WriteInt32s(t.P, st.counts+dsm.Addr(4*idx), []int32{int32(flawCount)})
	h.Sync.V(t.P, semDone)
}

// Run executes one inspection and returns its result.
func (r *Runner) Run(cfg Config) (Result, error) {
	if cfg.W <= 0 || cfg.H <= 0 || len(cfg.Slaves) == 0 {
		return Result{}, fmt.Errorf("pcb: need positive dimensions and at least one slave")
	}
	overlap := cfg.Overlap
	if overlap == 0 {
		overlap = RequiredOverlap
	}
	board := GenerateBoard(cfg.W, cfg.H, cfg.Seed)
	var (
		res    Result
		runErr error
	)
	elapsed := r.c.Run(cfg.Master, func(p *sim.Proc, host *cluster.Host) {
		n := cfg.W * cfg.H
		front, err := host.DSM.Alloc(p, conv.Char, n)
		if err != nil {
			runErr = err
			return
		}
		back, err := host.DSM.Alloc(p, conv.Char, n)
		if err != nil {
			runErr = err
			return
		}
		flaws, err := host.DSM.Alloc(p, conv.Char, n)
		if err != nil {
			runErr = err
			return
		}
		counts, err := host.DSM.Alloc(p, conv.Int32, len(cfg.Slaves))
		if err != nil {
			runErr = err
			return
		}
		r.cur = &app{
			w: cfg.W, h: cfg.H, overlap: overlap,
			front: front, back: back, flaws: flaws, counts: counts,
			stripes: len(cfg.Slaves),
		}
		host.DSM.WriteBytes(p, front, board.Front)
		host.DSM.WriteBytes(p, back, board.Back)

		for i, sl := range cfg.Slaves {
			if _, err := host.Threads.Create(p, sl, funcID, []uint32{uint32(i)}); err != nil {
				runErr = err
				return
			}
		}
		for range cfg.Slaves {
			host.Sync.P(p, semDone)
		}

		got := make([]byte, n)
		host.DSM.ReadBytes(p, flaws, got)
		cnts := make([]int32, len(cfg.Slaves))
		host.DSM.ReadInt32s(p, counts, cnts)
		for _, c := range cnts {
			res.FlawPixels += int(c)
		}

		res.Correct = true
		if cfg.Verify {
			want, wantCount, _ := CheckSequential(board)
			if res.FlawPixels != wantCount {
				res.Correct = false
			}
			for i := range want {
				if got[i] != want[i] {
					res.Correct = false
					break
				}
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res.Elapsed = elapsed
	res.Stats = r.c.TotalDSMStats()
	return res, nil
}

// Sequential returns the modelled sequential inspection time on one CPU
// of the given machine kind (whole board, no overlap, no DSM).
func (r *Runner) Sequential(kind arch.Kind, w, h int, seed int64) sim.Duration {
	board := GenerateBoard(w, h, seed)
	_, _, copperCount := CheckSequential(board)
	params := r.c.Params
	cost := time.Duration(w)*time.Duration(h)*params.PCBPixelCost +
		time.Duration(copperCount)*params.PCBFeatureCost
	return params.Scale(kind, cost)
}
