// Package sor implements Jacobi grid relaxation (successive
// over-relaxation's data pattern) over the Mermaid DSM — the classic
// page-based-DSM stencil workload, added as an extension beyond the
// paper's two applications.
//
// The grid is split into horizontal row blocks, one per thread. Each
// iteration every thread recomputes its rows from the previous grid,
// which requires the boundary rows of its neighbours: those rows'
// pages replicate read-only across neighbouring hosts and are
// invalidated when their owner rewrites them — a steady, predictable
// page traffic of 2 boundary rows per thread per iteration, in contrast
// to MM's bulk replication and the PCB's one-shot distribution. A
// distributed barrier separates iterations.
//
// Values are float32: on a Firefly they live in memory as VAX
// F_floating and convert to IEEE on migration, exactly like the paper's
// numerical applications would.
package sor

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sim"
	"repro/internal/threads"
)

// CellCost is the per-cell virtual compute cost of one Jacobi update on
// a Firefly (4 adds, 1 multiply on 1990 hardware).
const CellCost = 12 * time.Microsecond

// Config describes one relaxation run.
type Config struct {
	// W, H are the grid dimensions (W floats per row).
	W, H int
	// Iters is the number of Jacobi iterations.
	Iters int
	// Master is the coordinating host.
	Master cluster.HostID
	// Slaves places one worker thread per entry; H must divide evenly
	// enough that every thread gets at least one row.
	Slaves []cluster.HostID
	// Verify compares against a sequential relaxation.
	Verify bool
}

// Result reports a run's outcome.
type Result struct {
	// Elapsed is the virtual response time.
	Elapsed sim.Duration
	// Correct is false if verification failed.
	Correct bool
	// Stats aggregates DSM counters.
	Stats dsm.Stats
}

const (
	funcID  threads.FuncID = 0x534F // "SO"
	semDone uint32         = 0x534F
	barIter uint32         = 0x5352 // "SR"
)

type app struct {
	w, h, iters int
	grids       [2]dsm.Addr // double-buffered
	nslaves     int
}

// Runner executes relaxations on a registered cluster.
type Runner struct {
	c   *cluster.Cluster
	cur *app
}

// Register installs the SOR thread entry point. The barrier is defined
// at Run time (its party count depends on the slave count), so Register
// must be followed by exactly one Run per cluster.
func Register(c *cluster.Cluster) *Runner {
	r := &Runner{c: c}
	c.DefineSemaphore(semDone, 0, 0)
	c.Funcs.MustRegister(funcID, func(t *threads.Thread, args []uint32) {
		r.slave(t, args)
	})
	return r
}

func (st *app) rowsFor(idx int) (lo, hi int) {
	// Interior rows 1..h-2 are distributed; boundary rows are fixed.
	interior := st.h - 2
	per := (interior + st.nslaves - 1) / st.nslaves
	lo = 1 + idx*per
	hi = min(lo+per, st.h-1)
	return lo, hi
}

// slave relaxes its row block: per iteration, read its rows plus the
// two neighbouring boundary rows from the source grid, compute, write
// to the destination grid, and synchronize at the barrier.
func (r *Runner) slave(t *threads.Thread, args []uint32) {
	st := r.cur
	idx := int(args[0])
	h := r.c.Hosts[t.Host()]
	lo, hi := st.rowsFor(idx)
	if lo >= hi {
		// No rows for this thread; it still participates in barriers.
		for it := 0; it < st.iters; it++ {
			h.Sync.BarrierArrive(t.P, barIter)
		}
		h.Sync.V(t.P, semDone)
		return
	}
	w := st.w
	src := make([]float32, (hi-lo+2)*w)
	dst := make([]float32, (hi-lo)*w)
	for it := 0; it < st.iters; it++ {
		from := st.grids[it%2]
		to := st.grids[(it+1)%2]
		// Rows lo-1 .. hi (inclusive) of the source grid.
		h.DSM.ReadFloat32s(t.P, from+dsm.Addr(4*(lo-1)*w), src)
		for row := lo; row < hi; row++ {
			base := (row - lo + 1) * w
			for col := 1; col < w-1; col++ {
				dst[(row-lo)*w+col] = 0.25 * (src[base-w+col] + src[base+w+col] +
					src[base+col-1] + src[base+col+1])
			}
			// Fixed left/right boundary columns copy through.
			dst[(row-lo)*w] = src[base]
			dst[(row-lo)*w+w-1] = src[base+w-1]
		}
		t.Compute(time.Duration(hi-lo) * time.Duration(w) * CellCost)
		h.DSM.WriteFloat32s(t.P, to+dsm.Addr(4*lo*w), dst)
		h.Sync.BarrierArrive(t.P, barIter)
	}
	h.Sync.V(t.P, semDone)
}

// Run executes one relaxation.
func (r *Runner) Run(cfg Config) (Result, error) {
	if cfg.W < 3 || cfg.H < 3 || cfg.Iters < 1 || len(cfg.Slaves) == 0 {
		return Result{}, fmt.Errorf("sor: need W,H ≥ 3, Iters ≥ 1, and slaves")
	}
	r.c.DefineBarrier(barIter, 0, len(cfg.Slaves))
	var (
		res    Result
		runErr error
	)
	elapsed := r.c.Run(cfg.Master, func(p *sim.Proc, h *cluster.Host) {
		w, ht := cfg.W, cfg.H
		var grids [2]dsm.Addr
		for g := range grids {
			a, err := h.DSM.Alloc(p, conv.Float32, w*ht)
			if err != nil {
				runErr = err
				return
			}
			grids[g] = a
		}
		r.cur = &app{w: w, h: ht, iters: cfg.Iters, grids: grids, nslaves: len(cfg.Slaves)}

		init := initialGrid(w, ht)
		h.DSM.WriteFloat32s(p, grids[0], init)
		h.DSM.WriteFloat32s(p, grids[1], init) // fixed boundaries in both buffers

		for i, host := range cfg.Slaves {
			if _, err := h.Threads.Create(p, host, funcID, []uint32{uint32(i)}); err != nil {
				runErr = err
				return
			}
		}
		for range cfg.Slaves {
			h.Sync.P(p, semDone)
		}

		final := make([]float32, w*ht)
		h.DSM.ReadFloat32s(p, grids[cfg.Iters%2], final)
		res.Correct = true
		if cfg.Verify {
			want := relaxLocal(init, w, ht, cfg.Iters)
			for i := range want {
				if final[i] != want[i] {
					res.Correct = false
					break
				}
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res.Elapsed = elapsed
	res.Stats = r.c.TotalDSMStats()
	return res, nil
}

// initialGrid builds the boundary-condition grid: a hot top edge.
func initialGrid(w, h int) []float32 {
	g := make([]float32, w*h)
	for col := 0; col < w; col++ {
		g[col] = 100
	}
	return g
}

// relaxLocal is the sequential Jacobi reference.
func relaxLocal(init []float32, w, h, iters int) []float32 {
	a := make([]float32, len(init))
	b := make([]float32, len(init))
	copy(a, init)
	copy(b, init)
	for it := 0; it < iters; it++ {
		src, dst := a, b
		if it%2 == 1 {
			src, dst = b, a
		}
		for row := 1; row < h-1; row++ {
			for col := 1; col < w-1; col++ {
				dst[row*w+col] = 0.25 * (src[(row-1)*w+col] + src[(row+1)*w+col] +
					src[row*w+col-1] + src[row*w+col+1])
			}
			dst[row*w] = src[row*w]
			dst[row*w+w-1] = src[row*w+w-1]
		}
	}
	if iters%2 == 1 {
		return b
	}
	return a
}

// Sequential returns the modelled sequential relaxation time on one CPU
// of the given machine kind.
func (r *Runner) Sequential(k arch.Kind, w, h, iters int) sim.Duration {
	cells := time.Duration(w) * time.Duration(h-2) * time.Duration(iters)
	return r.c.Params.Scale(k, cells*CellCost)
}
