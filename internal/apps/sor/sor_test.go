package sor

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
)

func newCluster(t *testing.T, fireflies int) *cluster.Cluster {
	t.Helper()
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < fireflies; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: 4})
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRelaxationMatchesSequential(t *testing.T) {
	c := newCluster(t, 2)
	r := Register(c)
	res, err := r.Run(Config{
		W: 64, H: 66, Iters: 8,
		Master: 0,
		Slaves: []cluster.HostID{1, 1, 2, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("distributed relaxation differs from sequential")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestBoundaryPagesReplicateEachIteration(t *testing.T) {
	c := newCluster(t, 2)
	r := Register(c)
	res, err := r.Run(Config{
		W: 256, H: 130, Iters: 6, // each row is one 1 KB span in 8 KB pages
		Master: 0,
		Slaves: []cluster.HostID{1, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("result wrong")
	}
	// Boundary rows must generate steady per-iteration traffic: at
	// least one fetch per neighbour per iteration beyond the initial
	// distribution.
	if res.Stats.PagesFetched < 2*6 {
		t.Fatalf("only %d page fetches over 6 iterations; boundary sharing unmodelled", res.Stats.PagesFetched)
	}
}

func TestMoreThreadsSpeedUpRelaxation(t *testing.T) {
	run := func(slaves []cluster.HostID) float64 {
		c := newCluster(t, 2)
		r := Register(c)
		res, err := r.Run(Config{W: 256, H: 258, Iters: 4, Master: 0, Slaves: slaves})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed.Seconds()
	}
	one := run([]cluster.HostID{1})
	four := run([]cluster.HostID{1, 1, 2, 2})
	// Stencils are communication-bound: boundary exchange and barriers
	// per iteration cap the speedup well below linear.
	if speedup := one / four; speedup < 2 {
		t.Fatalf("speedup %.2f with 4 threads, want ≥2", speedup)
	}
}

func TestMoreThreadsThanRowsStillCorrect(t *testing.T) {
	c := newCluster(t, 2)
	r := Register(c)
	res, err := r.Run(Config{
		W: 16, H: 5, Iters: 3, // 3 interior rows, 6 threads
		Master: 0,
		Slaves: []cluster.HostID{1, 1, 1, 2, 2, 2},
		Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("surplus threads corrupted the relaxation")
	}
}

func TestConfigValidation(t *testing.T) {
	c := newCluster(t, 1)
	r := Register(c)
	if _, err := r.Run(Config{W: 2, H: 10, Iters: 1, Slaves: []cluster.HostID{1}}); err == nil {
		t.Error("W=2 accepted")
	}
	if _, err := r.Run(Config{W: 10, H: 10, Iters: 0, Slaves: []cluster.HostID{1}}); err == nil {
		t.Error("0 iterations accepted")
	}
	if _, err := r.Run(Config{W: 10, H: 10, Iters: 1}); err == nil {
		t.Error("no slaves accepted")
	}
}

func TestSequentialModel(t *testing.T) {
	c := newCluster(t, 1)
	r := Register(c)
	ff := r.Sequential(arch.Firefly, 100, 102, 10)
	sun := r.Sequential(arch.Sun, 100, 102, 10)
	if ff <= 0 || sun <= ff {
		t.Fatalf("sequential model wrong: ff %v sun %v", ff, sun)
	}
}
