// Package vet implements mermaid-vet, the project's own static
// analyzer. It enforces invariants the general Go toolchain cannot
// know about:
//
//   - lock-pairing: every semaphore acquisition (`x.P(...)`) in the
//     DSM, synchronization and thread packages must be released on
//     every control-flow path out of the function (directly, or via
//     `defer x.V()`) — the simulation deadlocks silently otherwise.
//     This is the CFG generalization of the original lexical
//     pv-pairing rule; see lockpair.go.
//   - buf-own: flow-sensitive ownership checking for pooled buffers —
//     double-Put, use-after-Put, leaks on early error returns, and
//     borrowed wire data escaping without TakeWire; see bufown.go.
//   - kind-dispatch: every proto.Kind constant must be classified as a
//     reply or registered with a handler somewhere in the module; see
//     kinddispatch.go (module-global, driven by cmd/mermaid-vet).
//   - time: wall-clock time (`time.Now` and friends) must not leak
//     into the simulation packages; all time is the kernel's virtual
//     clock, and one stray `time.Now` destroys run-to-run determinism.
//   - rand: the global `math/rand` state is forbidden in simulation
//     packages; only explicitly seeded generators
//     (`rand.New(rand.NewSource(seed))`) are deterministic.
//   - map-order: ranging over a map in simulation packages is flagged —
//     Go randomizes iteration order, so any map-ordered protocol or
//     event action varies run to run. Provably order-insensitive
//     ranges carry a `vet:ignore map-order` comment.
//   - chan-send: a bare channel send in simulation packages hands
//     control to whatever goroutine the Go runtime picks, bypassing
//     the kernel's deterministic scheduler (and with it the model
//     checker's Chooser). The kernel's own park/resume rendezvous
//     points — where exactly one receiver can be ready — carry a
//     `vet:ignore chan-send` comment.
//   - select-default: `select` with a `default` clause in simulation
//     packages is non-blocking channel polling; whether a communication
//     is ready when the poll runs depends on real-time goroutine
//     interleaving, not virtual time, so the branch taken varies run
//     to run.
//   - page-buffer: DSM page byte buffers (`localPage.data`) may be
//     indexed or sliced only inside the access layer; protocol code
//     elsewhere reaching into raw page bytes bypasses the typed,
//     conversion-aware gateway.
//   - hot-alloc: the steady-state page-transfer path is allocation-free
//     (pooled buffers, append-style encoding); a `make([]byte, ...)` or
//     a copying `.Encode()` call in the transfer packages reintroduces
//     per-transfer garbage. Deliberate allocation sites — the pool's
//     own refill, buffers that escape into caches — carry a
//     `vet:ignore hot-alloc` comment.
//   - enum-switch: a switch over one of the project's enum types
//     (Access, Policy, message kinds, ...) must either cover every
//     declared constant or have a default clause; silently falling
//     through on a newly added enum value is how protocol dispatchers
//     rot.
//   - policy-branch: the coherence policy is dispatched exactly once,
//     where newEngine selects a replication engine; a `cfg.Policy`
//     comparison or switch anywhere else in the DSM package is a
//     second dispatch point that the engine refactor exists to
//     eliminate, and it silently misses newly added policies.
//   - model-branch: likewise for the consistency model: newModel is the
//     single dispatch point, so a `.Model` comparison or switch (field
//     or `Policy.Model()` call) anywhere else in the DSM package
//     scatters per-model behaviour that belongs behind the
//     consistencyModel contract.
//
// Findings on a line carrying a `vet:ignore <rule>` comment are
// suppressed.
//
// The analyzer is built only on the standard library (go/ast,
// go/parser, go/types): it parses each package from source and
// type-checks it with whatever importer the caller provides, degrading
// gracefully — rules that need type information simply see less when
// an import cannot be resolved.
package vet

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Finding is one rule violation.
type Finding struct {
	// Pos locates the violation.
	Pos token.Position
	// Rule names the rule that fired (pv-pairing, time, rand,
	// map-order, chan-send, select-default, page-buffer, enum-switch).
	Rule string
	// Msg explains the violation.
	Msg string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Config scopes the rules to package import paths.
type Config struct {
	// PVPackages lists packages subject to the pv-pairing rule.
	PVPackages []string
	// DeterminismPackages lists packages subject to the time, rand,
	// map-order, chan-send and select-default rules.
	DeterminismPackages []string
	// PageBufferPackages lists packages subject to the page-buffer
	// rule.
	PageBufferPackages []string
	// PageBufferAllow lists file basenames (the access layer) where
	// direct page-buffer indexing is legal.
	PageBufferAllow []string
	// EnumModulePrefix restricts the enum-switch rule to enum types
	// declared in packages with this import-path prefix. Empty means
	// every named type qualifies.
	EnumModulePrefix string
	// HotAllocPackages lists packages subject to the hot-alloc rule.
	HotAllocPackages []string
	// ErrDropPackages lists packages subject to the err-drop rule.
	ErrDropPackages []string
	// PolicyBranchPackages lists packages subject to the policy-branch
	// rule.
	PolicyBranchPackages []string
	// PolicyBranchAllow lists file basenames (the engine dispatch)
	// where comparing or switching on the coherence policy is legal.
	PolicyBranchAllow []string
	// ModelBranchAllow lists file basenames (the model dispatch) where
	// comparing or switching on the consistency model is legal. The
	// rule itself runs over PolicyBranchPackages: the model enum lives
	// where the policy enum lives.
	ModelBranchAllow []string
	// MapOrderPackages lists packages subject to only the map-order
	// rule (beyond DeterminismPackages, which get the full determinism
	// set). Protocol-adjacent packages live here: their map walks feed
	// message traffic and reported tables, but they host deliberate
	// channel use the other determinism rules would drown in.
	MapOrderPackages []string
	// LockOrderPackages lists packages participating in the
	// module-global lock-order analysis (see lockorder.go).
	LockOrderPackages []string
	// BufOwnPackages lists packages subject to the buf-own ownership
	// analysis.
	BufOwnPackages []string
	// BufPoolPackage is the import path of the buffer pool (its Get and
	// Put are the acquire/release points).
	BufPoolPackage string
	// ProtoPackage is the import path of the wire-format package (Kind
	// constants, borrow-mode decodes, the IsReply classifier).
	ProtoPackage string
}

// DefaultConfig returns the project's rule scoping for the module with
// the given path.
func DefaultConfig(module string) *Config {
	j := func(p string) string { return path.Join(module, p) }
	return &Config{
		PVPackages:           []string{j("internal/dsm"), j("internal/dsync"), j("internal/threads")},
		DeterminismPackages:  []string{j("internal/sim"), j("internal/dsm"), j("internal/netsim")},
		PageBufferPackages:   []string{j("internal/dsm")},
		PageBufferAllow:      []string{"access.go", "protocol.go", "central.go", "update.go", "recovery.go", "rc.go"},
		EnumModulePrefix:     module,
		HotAllocPackages:     []string{j("internal/dsm"), j("internal/netsim"), j("internal/remoteop"), j("internal/bufpool")},
		ErrDropPackages:      []string{j("internal/dsm"), j("internal/remoteop")},
		PolicyBranchPackages: []string{j("internal/dsm")},
		PolicyBranchAllow:    []string{"engine.go"},
		ModelBranchAllow:     []string{"model.go"},
		MapOrderPackages: []string{
			j("internal/dsync"), j("internal/remoteop"), j("internal/mc"),
			j("internal/chaos"), j("internal/cluster"), j("internal/exp"),
		},
		LockOrderPackages: []string{
			j("internal/dsm"), j("internal/dsync"), j("internal/sim"), j("internal/remoteop"),
		},
		BufOwnPackages: []string{j("internal/dsm"), j("internal/remoteop")},
		BufPoolPackage: j("internal/bufpool"),
		ProtoPackage:   j("internal/proto"),
	}
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Fset positions every file.
	Fset *token.FileSet
	// Path is the package import path.
	Path string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Info holds whatever type information checking produced.
	Info *types.Info
	// Types is the checked package (possibly incomplete).
	Types *types.Package
}

// lenientImporter resolves imports through inner when possible and
// substitutes an empty placeholder package otherwise, so type checking
// always proceeds and rules degrade instead of aborting.
type lenientImporter struct {
	inner types.Importer
	cache map[string]*types.Package
}

func (li *lenientImporter) Import(p string) (*types.Package, error) {
	if p == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := li.cache[p]; ok {
		return pkg, nil
	}
	if li.inner != nil {
		if pkg, err := li.inner.Import(p); err == nil && pkg != nil {
			li.cache[p] = pkg
			return pkg, nil
		}
	}
	name := path.Base(p)
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(p, name)
	pkg.MarkComplete()
	li.cache[p] = pkg
	return pkg, nil
}

// NewPackage type-checks parsed files into an analyzable Package.
// Type errors are tolerated: the checker records what it can resolve
// and the rules consult only that.
func NewPackage(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) *Package {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: &lenientImporter{inner: imp, cache: map[string]*types.Package{}},
		Error:    func(error) {}, // collect partial info, never abort
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{Fset: fset, Path: importPath, Files: files, Info: info, Types: tpkg}
}

// Stats counts what one Check call covered, for the analyzer-coverage
// report.
type Stats struct {
	// Funcs is the number of function bodies the dataflow analyses
	// built CFGs for.
	Funcs int
	// Blocks is the total number of CFG basic blocks analyzed.
	Blocks int
	// Suppressed counts findings silenced by vet:ignore directives.
	Suppressed int
	// Summarized counts function summaries computed (not cache hits).
	Summarized int
	// Discharged counts map ranges the order-insensitivity prover
	// verified — sites that would otherwise need vet:ignore map-order.
	Discharged int
	// RuleNanos accumulates per-analysis wall time.
	RuleNanos map[string]int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Funcs += other.Funcs
	s.Blocks += other.Blocks
	s.Suppressed += other.Suppressed
	s.Summarized += other.Summarized
	s.Discharged += other.Discharged
	for k, v := range other.RuleNanos {
		if s.RuleNanos == nil {
			s.RuleNanos = map[string]int64{}
		}
		s.RuleNanos[k] += v
	}
}

// Check runs every applicable rule over the package.
func Check(pkg *Package, cfg *Config) []Finding {
	f, _ := CheckWithStats(pkg, cfg)
	return f
}

// CheckWithStats runs every applicable rule over the package with a
// fresh summary table: intra-package interprocedural inference only.
// The driver uses CheckWithTable with a shared, topologically
// pre-populated table instead.
func CheckWithStats(pkg *Package, cfg *Config) ([]Finding, Stats) {
	return CheckWithTable(pkg, cfg, NewSummaryTable())
}

// CheckWithTable runs every applicable rule over the package,
// consulting (and, for this package's own functions, populating) the
// shared summary table.
func CheckWithTable(pkg *Package, cfg *Config, tbl *SummaryTable) ([]Finding, Stats) {
	c := &checker{pkg: pkg, cfg: cfg, summaries: tbl}
	c.stats.RuleNanos = map[string]int64{}
	timed := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		c.stats.RuleNanos[name] += time.Since(t0).Nanoseconds()
	}
	timed("summaries", func() {
		c.stats.Summarized = ComputeSummaries(pkg, cfg, tbl)
	})
	c.collectOwnedFuncs()
	for _, f := range pkg.Files {
		c.file = f
		c.parents = nil
		c.ignores = collectIgnores(pkg.Fset, f)
		if slices.Contains(cfg.PVPackages, pkg.Path) {
			timed("lock-pairing", func() { c.checkLockPairing(f) })
		}
		if slices.Contains(cfg.BufOwnPackages, pkg.Path) {
			timed("buf-own", func() { c.checkBufOwn(f) })
		}
		full := slices.Contains(cfg.DeterminismPackages, pkg.Path)
		if full || slices.Contains(cfg.MapOrderPackages, pkg.Path) {
			timed("determinism", func() { c.checkDeterminism(f, full) })
		}
		if slices.Contains(cfg.PageBufferPackages, pkg.Path) {
			timed("page-buffer", func() { c.checkPageBuffer(f) })
		}
		if slices.Contains(cfg.HotAllocPackages, pkg.Path) {
			timed("hot-alloc", func() { c.checkHotAlloc(f) })
		}
		if slices.Contains(cfg.ErrDropPackages, pkg.Path) {
			timed("err-drop", func() { c.checkErrDrop(f) })
		}
		if slices.Contains(cfg.PolicyBranchPackages, pkg.Path) {
			timed("policy-branch", func() { c.checkPolicyBranch(f) })
			timed("model-branch", func() { c.checkModelBranch(f) })
		}
		timed("enum-switch", func() { c.checkEnumSwitch(f) })
	}
	sort.Slice(c.findings, func(i, j int) bool {
		a, b := c.findings[i].Pos, c.findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return c.findings, c.stats
}

type checker struct {
	pkg        *Package
	cfg        *Config
	file       *ast.File
	ignores    map[int][]string
	findings   []Finding
	stats      Stats
	ownedFuncs map[types.Object]bool
	// summaries is the interprocedural function-summary table (may be
	// nil in degraded or unit-test contexts; lookups then miss).
	summaries *SummaryTable
	// parents lazily maps each node of the current file to its parent,
	// for analyses that need the enclosing statement context.
	parents map[ast.Node]ast.Node
}

// fileParents returns (building on first use) the parent map for the
// current file.
func (c *checker) fileParents() map[ast.Node]ast.Node {
	if c.parents == nil {
		c.parents = buildParents(c.file)
	}
	return c.parents
}

// collectOwnedFuncs records package functions whose doc comment
// carries a vet:owned directive: their first result is an owned pooled
// buffer the caller must release or transfer.
func (c *checker) collectOwnedFuncs() {
	c.ownedFuncs = map[types.Object]bool{}
	for _, f := range c.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, cm := range fd.Doc.List {
				if strings.Contains(cm.Text, "vet:owned") {
					if o := c.pkg.Info.Defs[fd.Name]; o != nil {
						c.ownedFuncs[o] = true
					}
					break
				}
			}
		}
	}
}

// collectIgnores maps line numbers to the vet:ignore directives found
// on them.
func collectIgnores(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			txt := cm.Text
			i := strings.Index(txt, "vet:ignore")
			if i < 0 {
				continue
			}
			line := fset.Position(cm.Pos()).Line
			out[line] = append(out[line], txt[i:])
		}
	}
	return out
}

// report files a finding unless the line carries vet:ignore <rule>.
func (c *checker) report(pos token.Pos, rule, format string, args ...any) {
	p := c.pkg.Fset.Position(pos)
	for _, d := range c.ignores[p.Line] {
		if strings.HasPrefix(d, "vet:ignore "+rule) {
			c.stats.Suppressed++
			return
		}
	}
	c.findings = append(c.findings, Finding{Pos: p, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// ---- determinism: time, rand, map-order ----------------------------

// forbiddenTime lists wall-clock accessors that break virtual-time
// determinism.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "Sleep": true,
}

// allowedRand lists math/rand functions that construct explicitly
// seeded generators (the only deterministic way in).
var allowedRand = map[string]bool{"New": true, "NewSource": true}

// checkDeterminism runs the determinism rules; with full false only the
// map-order rule applies (MapOrderPackages scoping).
func (c *checker) checkDeterminism(f *ast.File, full bool) {
	// Resolve the local names of the time and math/rand imports.
	timeNames := map[string]bool{}
	randNames := map[string]bool{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch p {
		case "time":
			timeNames[name] = true
		case "math/rand", "math/rand/v2":
			randNames[name] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if !full {
				return true
			}
			// Only calls matter: referencing types like rand.Rand or
			// constants like time.Millisecond is deterministic.
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			// Confirm the identifier denotes the package, not a local.
			if obj, resolved := c.pkg.Info.Uses[id]; resolved {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if timeNames[id.Name] && forbiddenTime[sel.Sel.Name] {
				c.report(node.Pos(), "time",
					"wall-clock time.%s in a simulation package; use the kernel's virtual clock",
					sel.Sel.Name)
			}
			if randNames[id.Name] && !allowedRand[sel.Sel.Name] {
				c.report(node.Pos(), "rand",
					"global math/rand state (rand.%s) in a simulation package; use a seeded rand.New(rand.NewSource(...))",
					sel.Sel.Name)
			}
		case *ast.RangeStmt:
			tv, ok := c.pkg.Info.Types[node.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if c.orderInsensitive(node) {
					c.stats.Discharged++
					return true
				}
				c.report(node.Pos(), "map-order",
					"range over map %s: iteration order is randomized and leaks into simulation behaviour (sort keys, or annotate a provably order-insensitive walk with vet:ignore map-order)",
					types.ExprString(node.X))
			}
		case *ast.SendStmt:
			if !full {
				return true
			}
			c.report(node.Pos(), "chan-send",
				"bare channel send %s <- … in a simulation package: goroutine handoff order is the Go scheduler's, not the kernel's (route through kernel events, or annotate a kernel-controlled rendezvous with vet:ignore chan-send)",
				types.ExprString(node.Chan))
		case *ast.SelectStmt:
			if !full {
				return true
			}
			for _, clause := range node.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					c.report(node.Pos(), "select-default",
						"select with a default clause in a simulation package: non-blocking channel polling races the Go scheduler and varies run to run")
				}
			}
		}
		return true
	})
}

// ---- page-buffer ---------------------------------------------------

// checkPageBuffer flags indexing or slicing of page byte buffers
// (selector `.data`, the localPage field) outside the access layer.
func (c *checker) checkPageBuffer(f *ast.File) {
	base := path.Base(c.pkg.Fset.Position(f.Pos()).Filename)
	if slices.Contains(c.cfg.PageBufferAllow, base) {
		return
	}
	flag := func(x ast.Expr, pos token.Pos) {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "data" {
			return
		}
		// With type information, confirm the selector really is the
		// page-buffer field; without it, the name alone decides.
		if s, ok := c.pkg.Info.Selections[sel]; ok {
			named := deref(s.Recv())
			if n, ok := named.(*types.Named); ok && n.Obj().Name() != "localPage" {
				return
			}
		}
		c.report(pos, "page-buffer",
			"direct page-buffer access (%s) outside the access layer; go through the typed accessors",
			types.ExprString(x))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IndexExpr:
			flag(node.X, node.Pos())
		case *ast.SliceExpr:
			flag(node.X, node.Pos())
		}
		return true
	})
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// ---- hot-alloc -----------------------------------------------------

// checkHotAlloc flags per-transfer allocation in the packages whose
// steady state must be garbage-free: `make([]byte, ...)` (the pool's
// bufpool.Get is the sanctioned source of scratch buffers) and calls
// to a zero-argument `.Encode()` method (the copying encoder;
// AppendEncode into a pooled buffer is the transfer-path form).
// Deliberate allocation sites carry `vet:ignore hot-alloc`.
func (c *checker) checkHotAlloc(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
			if isByteSliceExpr(call.Args[0], c.pkg.Info) {
				c.report(call.Pos(), "hot-alloc",
					"make([]byte, ...) in a transfer-path package allocates per call; take scratch buffers from bufpool.Get (or annotate a deliberate allocation with vet:ignore hot-alloc)")
			}
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Encode" && len(call.Args) == 0 {
			// Skip package-qualified calls (pkg.Encode is not the
			// message method); a local whose method is named Encode is
			// exactly what the rule is after.
			if id, isIdent := sel.X.(*ast.Ident); isIdent {
				if obj, resolved := c.pkg.Info.Uses[id]; resolved {
					if _, isPkg := obj.(*types.PkgName); isPkg {
						return true
					}
				}
			}
			c.report(call.Pos(), "hot-alloc",
				"%s.Encode() allocates a fresh wire buffer per message; use AppendEncode into a pooled buffer (or annotate a deliberate copy with vet:ignore hot-alloc)",
				types.ExprString(sel.X))
		}
		return true
	})
}

// isByteSliceExpr reports whether the type expression denotes []byte,
// preferring resolved type information and falling back to syntax.
func isByteSliceExpr(x ast.Expr, info *types.Info) bool {
	if tv, ok := info.Types[x]; ok && tv.Type != nil {
		if sl, ok := tv.Type.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok {
				return b.Kind() == types.Byte || b.Kind() == types.Uint8
			}
		}
		return false
	}
	arr, ok := x.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	elt, ok := arr.Elt.(*ast.Ident)
	return ok && (elt.Name == "byte" || elt.Name == "uint8")
}

// ---- err-drop ------------------------------------------------------

// checkErrDrop flags silently discarded errors in the protocol
// packages: a call statement whose error result is never bound, and
// `_ = call(...)` / `_, _ = call(...)` assignments that throw every
// result away while one of them is an error. A swallowed error in the
// transfer or remote-operation path turns a detectable fault (a dead
// peer, a timed-out request) into a silent hang or stale data —
// exactly the bug class the crash-stop work exists to surface.
// Deliberate fire-and-forget sites (a reply to a requester that may
// itself be dead) carry `vet:ignore err-drop` with a justification.
// The rule needs resolved type information for the callee; calls the
// checker could not type are skipped.
func (c *checker) checkErrDrop(f *ast.File) {
	flag := func(call *ast.CallExpr, how string) {
		if !c.callReturnsError(call) {
			return
		}
		c.report(call.Pos(), "err-drop",
			"%s %s discards its error result; propagate it or annotate the deliberate drop with vet:ignore err-drop",
			how, types.ExprString(call.Fun))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				flag(call, "call statement")
			}
		case *ast.AssignStmt:
			if len(node.Rhs) != 1 {
				return true
			}
			call, ok := node.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lhs := range node.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true // at least one result is bound
				}
			}
			flag(call, "blank assignment of")
		case *ast.GoStmt:
			return false // the called function's body is still inspected via its own statements
		}
		return true
	})
}

// callReturnsError reports whether the call's results include the
// built-in error type, per resolved type information.
func (c *checker) callReturnsError(call *ast.CallExpr) bool {
	tv, ok := c.pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errType) {
				return true
			}
		}
		return false
	}
	return types.Identical(tv.Type, errType)
}

// ---- enum-switch ---------------------------------------------------

// checkEnumSwitch requires every switch over a module-declared integer
// enum (a named type with at least two package-level constants) to
// either cover all declared constants or carry a default clause.
func (c *checker) checkEnumSwitch(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		tv, ok := c.pkg.Info.Types[sw.Tag]
		if !ok || tv.Type == nil {
			return true
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return true
		}
		basic, ok := named.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			return true
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return true
		}
		if c.cfg.EnumModulePrefix != "" && !strings.HasPrefix(obj.Pkg().Path(), c.cfg.EnumModulePrefix) {
			return true
		}
		// Enumerate the type's package-level constants.
		type enumConst struct {
			name string
			val  constant.Value
		}
		var consts []enumConst
		scope := obj.Pkg().Scope()
		for _, name := range scope.Names() {
			cn, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(cn.Type(), tv.Type) {
				continue
			}
			consts = append(consts, enumConst{name: name, val: cn.Val()})
		}
		if len(consts) < 2 {
			return true
		}
		covered := map[int]bool{}
		hasDefault := false
		for _, stmt := range sw.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
				continue
			}
			for _, e := range cc.List {
				etv, ok := c.pkg.Info.Types[e]
				if !ok || etv.Value == nil {
					continue
				}
				for i, ec := range consts {
					if constant.Compare(etv.Value, token.EQL, ec.val) {
						covered[i] = true
					}
				}
			}
		}
		if hasDefault {
			return true
		}
		var missing []string
		for i, ec := range consts {
			if !covered[i] {
				missing = append(missing, ec.name)
			}
		}
		if len(missing) > 0 {
			c.report(sw.Pos(), "enum-switch",
				"switch over %s.%s misses %s and has no default clause",
				obj.Pkg().Name(), obj.Name(), strings.Join(missing, ", "))
		}
		return true
	})
}

// ---- policy-branch -------------------------------------------------

// checkPolicyBranch flags comparisons against and switches over the
// coherence policy (`cfg.Policy == ...`, `switch m.cfg.Policy`)
// outside the engine-dispatch files. The replication engines exist so
// that per-policy behaviour is selected once, in newEngine; a policy
// branch anywhere else reintroduces scattered dispatch that a new
// policy would have to hunt down. With type information the rule
// confirms the selector really denotes a value of a named Policy
// type; without it, the field name alone decides.
func (c *checker) checkPolicyBranch(f *ast.File) {
	base := path.Base(c.pkg.Fset.Position(f.Pos()).Filename)
	if slices.Contains(c.cfg.PolicyBranchAllow, base) {
		return
	}
	isPolicy := func(x ast.Expr) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Policy" {
			return false
		}
		if tv, ok := c.pkg.Info.Types[sel]; ok && tv.Type != nil {
			named, isNamed := tv.Type.(*types.Named)
			return isNamed && named.Obj().Name() == "Policy"
		}
		return true
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Op != token.EQL && node.Op != token.NEQ {
				return true
			}
			if isPolicy(node.X) || isPolicy(node.Y) {
				c.report(node.Pos(), "policy-branch",
					"policy comparison (%s) outside the engine dispatch; per-policy behaviour belongs in a replication engine selected by newEngine",
					types.ExprString(node))
			}
		case *ast.SwitchStmt:
			if node.Tag != nil && isPolicy(node.Tag) {
				c.report(node.Pos(), "policy-branch",
					"switch over %s outside the engine dispatch; per-policy behaviour belongs in a replication engine selected by newEngine",
					types.ExprString(node.Tag))
			}
		}
		return true
	})
}

// ---- model-branch --------------------------------------------------

// checkModelBranch flags comparisons against and switches over the
// consistency model (`cfg.Model == ...`, `switch cfg.Policy.Model()`)
// outside the model-dispatch file. The consistencyModel contract exists
// so that per-model behaviour — oracle choice, sync payload hooks — is
// selected once, in newModel; a model branch anywhere else is a second
// dispatch point a new model would have to hunt down. Both the field
// form (`x.Model`) and the method form (`x.Model()`) count. With type
// information the rule confirms the expression really has the named
// Model type; without it, the selector name alone decides.
func (c *checker) checkModelBranch(f *ast.File) {
	base := path.Base(c.pkg.Fset.Position(f.Pos()).Filename)
	if slices.Contains(c.cfg.ModelBranchAllow, base) {
		return
	}
	isModel := func(x ast.Expr) bool {
		var sel *ast.SelectorExpr
		switch e := x.(type) {
		case *ast.SelectorExpr:
			sel = e
		case *ast.CallExpr:
			if s, ok := e.Fun.(*ast.SelectorExpr); ok {
				sel = s
			}
		}
		if sel == nil || sel.Sel.Name != "Model" {
			return false
		}
		if tv, ok := c.pkg.Info.Types[x]; ok && tv.Type != nil {
			named, isNamed := tv.Type.(*types.Named)
			return isNamed && named.Obj().Name() == "Model"
		}
		return true
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BinaryExpr:
			if node.Op != token.EQL && node.Op != token.NEQ {
				return true
			}
			if isModel(node.X) || isModel(node.Y) {
				c.report(node.Pos(), "model-branch",
					"consistency-model comparison (%s) outside the model dispatch; per-model behaviour belongs in a consistencyModel selected by newModel",
					types.ExprString(node))
			}
		case *ast.SwitchStmt:
			if node.Tag != nil && isModel(node.Tag) {
				c.report(node.Pos(), "model-branch",
					"switch over %s outside the model dispatch; per-model behaviour belongs in a consistencyModel selected by newModel",
					types.ExprString(node.Tag))
			}
		}
		return true
	})
}
