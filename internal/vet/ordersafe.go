package vet

// The map-order prover: discharges `range` over a map when the loop is
// provably order-insensitive, so the site needs no vet:ignore
// annotation. The proof obligation is that the loop's observable
// effect is the same for every iteration order, which holds when every
// statement in the body is one of a small set of commuting effects and
// nothing reads an accumulator mid-loop:
//
//   - slice accumulation `s = append(s, e)`: the multiset of elements
//     is order-free, but the slice order is not — so the accumulator
//     must be canonicalized before any other use. The prover scans
//     forward from the loop for a laundering sort: a whole-value
//     stdlib sort (sort.Ints/Strings/Float64s, slices.Sort, or
//     sort.Slice with a `s[i] < s[j]` comparator), or the hand-rolled
//     insertion-sort idiom the hot paths use to avoid the sort.Slice
//     closure allocation. Interleaved statements may append further
//     (pure) elements but must not otherwise touch the accumulator.
//     Field-comparator sorts are rejected: ties between distinct
//     elements would preserve map order, and comparator totality is
//     not machine-checkable.
//   - map writes `m[k] = e`, `m[k] op= e`, `m[k]++`, `delete(m, k)`
//     where k is the loop key: each iteration touches a distinct key,
//     so the final map is order-free. Writes into the ranged map
//     itself are rejected (inserting during iteration makes even
//     visitation nondeterministic); deleting the current key is the
//     spec-blessed exception.
//   - commutative scalar accumulation `x op= e`, `x++`, `x--` for
//     op ∈ {+, -, *, &, |, ^}.
//   - `if cond { ... }` / `else` with a pure condition, and bare
//     `continue`.
//
// Value and condition expressions must be pure — literals, reads of
// loop-invariant variables, and calls to conversions, pure builtins,
// or functions whose FuncSummary proves Pure — and must not mention
// any accumulator (reading one mid-loop observes iteration order).
// Everything else fails the proof and the range is reported as before.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// buildParents maps every node in f to its enclosing node.
func buildParents(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// orderProver carries the proof state for one map range.
type orderProver struct {
	c      *checker
	rs     *ast.RangeStmt
	keyObj types.Object
	// rangedStr is the printed form of the ranged map expression.
	rangedStr string
	// banned holds the printed forms of accumulator targets (and their
	// root identifiers); any read of one in a value or condition defeats
	// the proof.
	banned map[string]bool
	// sliceAccs maps a slice accumulator's printed form to whether it
	// has been registered; each needs a post-loop laundering sort.
	sliceAccs map[string]bool
	// vals are the value/condition expressions to validate once the
	// accumulator set is complete.
	vals []ast.Expr
}

// orderInsensitive reports whether the map range is provably
// order-insensitive.
func (c *checker) orderInsensitive(rs *ast.RangeStmt) bool {
	p := &orderProver{
		c:         c,
		rs:        rs,
		rangedStr: types.ExprString(rs.X),
		banned:    map[string]bool{},
		sliceAccs: map[string]bool{},
	}
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		p.keyObj = c.pkg.Info.Defs[id]
		if p.keyObj == nil {
			return false
		}
	}
	if rs.Body == nil || !p.stmtsOK(rs.Body.List) {
		return false
	}
	for _, e := range p.vals {
		if !p.pureValue(e) {
			return false
		}
	}
	for acc := range p.sliceAccs {
		if !p.launderedAfterLoop(acc) {
			return false
		}
	}
	return true
}

func (p *orderProver) stmtsOK(list []ast.Stmt) bool {
	for _, s := range list {
		if !p.stmtOK(s) {
			return false
		}
	}
	return true
}

func (p *orderProver) stmtOK(s ast.Stmt) bool {
	switch st := s.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.AssignStmt:
		return p.assignOK(st)
	case *ast.IncDecStmt:
		return p.accTarget(st.X)
	case *ast.ExprStmt:
		// delete(m, key): removes a distinct key per iteration.
		call, ok := st.X.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return false
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
		if obj := p.c.pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); !isBuiltin {
				return false
			}
		}
		return p.isKey(call.Args[1]) && p.invariantBase(call.Args[0])
	case *ast.IfStmt:
		if st.Init != nil {
			return false
		}
		p.vals = append(p.vals, st.Cond)
		if !p.stmtsOK(st.Body.List) {
			return false
		}
		return st.Else == nil || p.stmtOK(st.Else)
	case *ast.BlockStmt:
		return p.stmtsOK(st.List)
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE && st.Label == nil
	}
	return false
}

// commutativeAssign lists op-assign tokens whose repeated application
// commutes.
var commutativeAssign = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true, token.OR_ASSIGN: true, token.XOR_ASSIGN: true,
}

func (p *orderProver) assignOK(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]
	if commutativeAssign[st.Tok] {
		if !p.accTarget(lhs) {
			return false
		}
		p.vals = append(p.vals, rhs)
		return true
	}
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return false
	}
	// `s = append(s, e...)`: slice accumulation, laundered post-loop.
	if accStr, elems, ok := appendTo(rhs); ok && accStr == types.ExprString(lhs) {
		if _, isIdent := unparen(lhs).(*ast.Ident); !isIdent {
			return false
		}
		p.registerAcc(accStr)
		p.sliceAccs[accStr] = true
		p.vals = append(p.vals, elems...)
		return true
	}
	// `m[key] = e`: one distinct key per iteration.
	if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
		if !p.isKey(ix.Index) || !p.invariantBase(ix.X) {
			return false
		}
		p.registerAcc(types.ExprString(ix.X))
		p.vals = append(p.vals, rhs)
		return true
	}
	return false
}

// appendTo matches `append(s, e1, e2, ...)` (non-spread) and returns
// s's printed form and the appended elements.
func appendTo(e ast.Expr) (string, []ast.Expr, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis != token.NoPos {
		return "", nil, false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return "", nil, false
	}
	return types.ExprString(call.Args[0]), call.Args[1:], true
}

// accTarget validates an accumulation lvalue — a plain variable, a
// loop-invariant selector chain, or an index at the loop key — and
// registers it as an accumulator.
func (p *orderProver) accTarget(lhs ast.Expr) bool {
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" || p.isKey(l) || p.isLoopVar(l) {
			return false
		}
		p.registerAcc(l.Name)
		return true
	case *ast.SelectorExpr:
		if !p.invariantBase(l) {
			return false
		}
		p.registerAcc(types.ExprString(l))
		return true
	case *ast.IndexExpr:
		if !p.isKey(l.Index) || !p.invariantBase(l.X) {
			return false
		}
		p.registerAcc(types.ExprString(l.X))
		return true
	}
	return false
}

// registerAcc bans reads of the accumulator — and of its root
// identifier, so it cannot leak wholesale into a call.
func (p *orderProver) registerAcc(printed string) {
	p.banned[printed] = true
	root := printed
	if i := indexByte(root, '.'); i >= 0 {
		root = root[:i]
	}
	if i := indexByte(root, '['); i >= 0 {
		root = root[:i]
	}
	p.banned[root] = true
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// invariantBase accepts an identifier or selector chain of identifiers
// that does not involve the loop variables and is not the ranged map
// itself (writes during iteration make visitation nondeterministic).
func (p *orderProver) invariantBase(e ast.Expr) bool {
	if types.ExprString(e) == p.rangedStr {
		return false
	}
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x.Name != "_" && !p.isKey(x) && !p.isLoopVar(x)
		case *ast.SelectorExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isKey reports whether e is exactly the loop key variable.
func (p *orderProver) isKey(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || p.keyObj == nil {
		return false
	}
	return p.c.pkg.Info.Uses[id] == p.keyObj || p.c.pkg.Info.Defs[id] == p.keyObj
}

// isLoopVar reports whether e denotes the key or value loop variable.
func (p *orderProver) isLoopVar(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	for _, lv := range []ast.Expr{p.rs.Key, p.rs.Value} {
		lvID, ok := lv.(*ast.Ident)
		if !ok || lvID.Name == "_" {
			continue
		}
		obj := p.c.pkg.Info.Defs[lvID]
		if obj != nil && (p.c.pkg.Info.Uses[id] == obj || p.c.pkg.Info.Defs[id] == obj) {
			return true
		}
	}
	return false
}

// pureValue validates a value or condition expression: pure, and not
// reading any accumulator.
func (p *orderProver) pureValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return !p.banned[x.Name]
	case *ast.BasicLit:
		return true
	case *ast.SelectorExpr:
		if p.banned[types.ExprString(x)] {
			return false
		}
		return p.pureValue(x.X)
	case *ast.IndexExpr:
		if p.banned[types.ExprString(x.X)] {
			return false
		}
		return p.pureValue(x.X) && p.pureValue(x.Index)
	case *ast.BinaryExpr:
		return p.pureValue(x.X) && p.pureValue(x.Y)
	case *ast.UnaryExpr:
		return x.Op != token.ARROW && p.pureValue(x.X)
	case *ast.ParenExpr:
		return p.pureValue(x.X)
	case *ast.StarExpr:
		return p.pureValue(x.X)
	case *ast.TypeAssertExpr:
		return p.pureValue(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if !p.pureValue(el) {
				return false
			}
		}
		return true
	case *ast.KeyValueExpr:
		return p.pureValue(x.Value)
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{x.X, x.Low, x.High, x.Max} {
			if b != nil && !p.pureValue(b) {
				return false
			}
		}
		return true
	case *ast.CallExpr:
		return p.pureCall(x)
	}
	return false
}

// pureCall accepts conversions, pure builtins, and calls to functions
// whose summary proves Pure; arguments recurse through pureValue.
func (p *orderProver) pureCall(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if !p.pureValue(a) {
			return false
		}
	}
	if tv, ok := p.c.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if obj := p.c.pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return id.Name == "len" || id.Name == "cap" || id.Name == "min" || id.Name == "max"
			}
		}
	}
	fn := staticCallee(p.c.pkg.Info, call)
	if fn == nil {
		return false
	}
	s := p.c.summaries.Lookup(funcKey(fn))
	return s != nil && s.Pure
}

// ---- post-loop laundering -----------------------------------------

// launderedAfterLoop scans the statements following the range for a
// canonicalizing sort of acc, tolerating interleaved pure appends.
func (p *orderProver) launderedAfterLoop(acc string) bool {
	parents := p.c.fileParents()
	var cur ast.Node = p.rs
	var list []ast.Stmt
	for {
		parent := parents[cur]
		if parent == nil {
			return false
		}
		switch pp := parent.(type) {
		case *ast.BlockStmt:
			list = pp.List
		case *ast.CaseClause:
			list = pp.Body
		case *ast.CommClause:
			list = pp.Body
		case *ast.LabeledStmt:
			cur = pp
			continue
		default:
			return false
		}
		break
	}
	idx := -1
	for i, s := range list {
		if ast.Node(s) == cur {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, s := range list[idx+1:] {
		if p.isCanonicalSort(s, acc) {
			return true
		}
		if !p.onlyAppendsTo(s, acc) {
			return false
		}
	}
	return false
}

// onlyAppendsTo accepts statements between the loop and its laundering
// sort: anything not mentioning the accumulator, plus guarded pure
// appends to it.
func (p *orderProver) onlyAppendsTo(s ast.Stmt, acc string) bool {
	if !mentionsExpr(s, acc) {
		return true
	}
	switch st := s.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) != 1 || len(st.Rhs) != 1 || (st.Tok != token.ASSIGN && st.Tok != token.DEFINE) {
			return false
		}
		accStr, elems, ok := appendTo(st.Rhs[0])
		if !ok || accStr != acc || types.ExprString(st.Lhs[0]) != acc {
			return false
		}
		for _, e := range elems {
			if mentionsExpr(e, acc) || !p.pureValue(e) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if st.Init != nil && mentionsExpr(st.Init, acc) {
			return false
		}
		if mentionsExpr(st.Cond, acc) {
			return false
		}
		for _, b := range st.Body.List {
			if !p.onlyAppendsTo(b, acc) {
				return false
			}
		}
		return st.Else == nil || p.onlyAppendsTo(st.Else, acc)
	case *ast.BlockStmt:
		for _, b := range st.List {
			if !p.onlyAppendsTo(b, acc) {
				return false
			}
		}
		return true
	}
	return false
}

// mentionsExpr reports whether any subexpression of n prints as s.
func mentionsExpr(n ast.Node, s string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if e, ok := x.(ast.Expr); ok && types.ExprString(e) == s {
			found = true
			return false
		}
		return true
	})
	return found
}

// wholeValueSorts are stdlib sorts that compare entire elements, so
// duplicates are identical and the result is canonical regardless of
// the input order.
var wholeValueSorts = map[string]bool{
	"Ints": true, "Strings": true, "Float64s": true, "Sort": true,
}

// comparatorSorts take an explicit less function; accepted only when
// the comparator compares whole elements (`s[i] < s[j]`).
var comparatorSorts = map[string]bool{
	"Slice": true, "SliceStable": true, "SortFunc": true, "SortStableFunc": true,
}

// isCanonicalSort matches a statement that canonicalizes acc: a
// whole-value stdlib sort call or the insertion-sort idiom.
func (p *orderProver) isCanonicalSort(s ast.Stmt, acc string) bool {
	if es, ok := s.(*ast.ExprStmt); ok {
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || types.ExprString(call.Args[0]) != acc {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return false
		}
		if obj, resolved := p.c.pkg.Info.Uses[pkgID]; resolved {
			pn, isPkg := obj.(*types.PkgName)
			if !isPkg {
				return false
			}
			if pth := pn.Imported().Path(); pth != "sort" && pth != "slices" {
				return false
			}
		} else if pkgID.Name != "sort" && pkgID.Name != "slices" {
			return false
		}
		if wholeValueSorts[sel.Sel.Name] {
			return true
		}
		if comparatorSorts[sel.Sel.Name] && len(call.Args) == 2 {
			return wholeValueComparator(call.Args[1], acc)
		}
		return false
	}
	if fs, ok := s.(*ast.ForStmt); ok {
		return insertionSortOn(fs, acc)
	}
	return false
}

// wholeValueComparator matches `func(i, j int) bool { return s[i] < s[j] }`
// (or >): a total order over whole elements.
func wholeValueComparator(e ast.Expr, acc string) bool {
	lit, ok := unparen(e).(*ast.FuncLit)
	if !ok || lit.Type.Params == nil || len(lit.Body.List) != 1 {
		return false
	}
	var names []string
	for _, f := range lit.Type.Params.List {
		for _, n := range f.Names {
			names = append(names, n.Name)
		}
	}
	if len(names) != 2 {
		return false
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	cmp, ok := unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.LSS && cmp.Op != token.GTR) {
		return false
	}
	want := func(idx string) string { return acc + "[" + idx + "]" }
	x, y := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	return (x == want(names[0]) && y == want(names[1])) ||
		(x == want(names[1]) && y == want(names[0]))
}

// insertionSortOn matches the allocation-free insertion-sort idiom:
//
//	for i := 1; i < len(s); i++ {
//		for j := i; j > 0 && s[j] < s[j-1]; j-- {
//			s[j], s[j-1] = s[j-1], s[j]
//		}
//	}
//
// The comparison is over whole elements, so the result is canonical.
func insertionSortOn(fs *ast.ForStmt, acc string) bool {
	iName, ok := forHeader(fs, "1")
	if !ok || fs.Cond == nil {
		return false
	}
	cond, ok := unparen(fs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS || types.ExprString(cond.X) != iName ||
		types.ExprString(cond.Y) != "len("+acc+")" {
		return false
	}
	if len(fs.Body.List) != 1 {
		return false
	}
	inner, ok := fs.Body.List[0].(*ast.ForStmt)
	if !ok {
		return false
	}
	jName, ok := forHeader(inner, iName)
	if !ok || inner.Cond == nil {
		return false
	}
	icond, ok := unparen(inner.Cond).(*ast.BinaryExpr)
	if !ok || icond.Op != token.LAND {
		return false
	}
	guard, ok := unparen(icond.X).(*ast.BinaryExpr)
	if !ok || guard.Op != token.GTR || types.ExprString(guard.X) != jName ||
		types.ExprString(guard.Y) != "0" {
		return false
	}
	sj := acc + "[" + jName + "]"
	sj1 := acc + "[" + jName + " - 1]"
	cmp, ok := unparen(icond.Y).(*ast.BinaryExpr)
	if !ok || (cmp.Op != token.LSS && cmp.Op != token.GTR) {
		return false
	}
	cx, cy := types.ExprString(cmp.X), types.ExprString(cmp.Y)
	if !(cx == sj && cy == sj1) && !(cx == sj1 && cy == sj) {
		return false
	}
	if len(inner.Body.List) != 1 {
		return false
	}
	swap, ok := inner.Body.List[0].(*ast.AssignStmt)
	if !ok || swap.Tok != token.ASSIGN || len(swap.Lhs) != 2 || len(swap.Rhs) != 2 {
		return false
	}
	l0, l1 := types.ExprString(swap.Lhs[0]), types.ExprString(swap.Lhs[1])
	r0, r1 := types.ExprString(swap.Rhs[0]), types.ExprString(swap.Rhs[1])
	return l0 == sj && l1 == sj1 && r0 == sj1 && r1 == sj
}

// forHeader matches `for x := <init>; ...; x++/x--` headers and
// returns the loop variable's name. init is the printed form the
// initializer must have.
func forHeader(fs *ast.ForStmt, init string) (string, bool) {
	as, ok := fs.Init.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || types.ExprString(as.Rhs[0]) != init {
		return "", false
	}
	post, ok := fs.Post.(*ast.IncDecStmt)
	if !ok {
		return "", false
	}
	pid, ok := post.X.(*ast.Ident)
	if !ok || pid.Name != id.Name {
		return "", false
	}
	return id.Name, true
}
