package vet

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyzeModelFixture parses a fixture package under testdata and runs
// the branch-dispatch rules (policy-branch and model-branch) over it
// with the project's allow-lists.
func analyzeModelFixture(t *testing.T, dir, pkgPath string) []Finding {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg := NewPackage(fset, pkgPath, files, nil)
	return Check(pkg, &Config{
		PolicyBranchPackages: []string{pkgPath},
		PolicyBranchAllow:    []string{"engine.go"},
		ModelBranchAllow:     []string{"model.go"},
	})
}

// markerLines maps file → the line numbers carrying the given want
// marker.
func markerLines(t *testing.T, dir, marker string) map[string]map[int]bool {
	t.Helper()
	out := map[string]map[int]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), marker) {
				if out[name] == nil {
					out[name] = map[int]bool{}
				}
				out[name][line] = true
			}
		}
		f.Close()
	}
	return out
}

// TestModelBranchBadFixtureReported checks every scattered model
// dispatch in testdata/modelbad is reported on its marked line — field
// comparisons, Policy.Model() call comparisons, and switches — and
// nothing else is.
func TestModelBranchBadFixtureReported(t *testing.T) {
	dir := filepath.Join("testdata", "modelbad")
	fs := analyzeModelFixture(t, dir, "fixture/modelbad")
	want := markerLines(t, dir, "want model-branch")
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}
	got := map[string]map[int]bool{}
	for _, f := range fs {
		if f.Rule != "model-branch" {
			t.Errorf("unexpected %s finding in model-branch fixture: %v", f.Rule, f)
			continue
		}
		if got[f.Pos.Filename] == nil {
			got[f.Pos.Filename] = map[int]bool{}
		}
		got[f.Pos.Filename][f.Pos.Line] = true
	}
	nwant := 0
	for file, lines := range want {
		for line := range lines {
			nwant++
			if !got[file][line] {
				t.Errorf("scattered model branch at %s:%d not reported", file, line)
			}
		}
	}
	if nwant != 3 {
		t.Fatalf("fixture must carry exactly 3 scattered branches, found %d markers", nwant)
	}
	for file, lines := range got {
		for line := range lines {
			if !want[file][line] {
				t.Errorf("false positive at %s:%d", file, line)
			}
		}
	}
	if t.Failed() {
		for _, f := range fs {
			t.Logf("  %v", f)
		}
	}
}

// TestModelBranchCleanFixtureSilent pins the false-positive budget at
// zero: carrying a Model around, same-named fields of other types, a
// method named Model, and an annotated diagnostics branch are all fine.
func TestModelBranchCleanFixtureSilent(t *testing.T) {
	fs := analyzeModelFixture(t, filepath.Join("testdata", "modelclean"), "fixture/modelclean")
	if len(fs) != 0 {
		t.Fatalf("clean fixture must be silent, got %v", fs)
	}
}

// TestModelBranchInlineForms pins the rule's reach without type
// information: both comparison operands and the switch tag, in field
// and call form, inside the scoped package.
func TestModelBranchInlineForms(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{
		"model.go": `
package dsm

type Model int

const (
	ModelSC Model = iota
	ModelRC
)

type cfgT struct{ Model Model }

func newModel(c cfgT) int {
	if c.Model == ModelRC { // sanctioned: the dispatch file
		return 1
	}
	return 0
}
`,
		"stray.go": `
package dsm

func stray(c cfgT) int {
	if ModelRC == c.Model { // reversed operands
		return 1
	}
	switch c.Model {
	case ModelRC:
		return 2
	default:
		return 3
	}
}
`})
	wantRule(t, fs, "model-branch", "ModelRC == c.Model")
	wantRule(t, fs, "model-branch", "switch over c.Model")
	if n := len(fs); n != 2 {
		t.Fatalf("want exactly 2 findings, got %d: %v", n, fs)
	}
}
