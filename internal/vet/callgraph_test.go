package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadInline type-checks one inline source file as a package.
func loadInline(t *testing.T, pkgPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return NewPackage(fset, pkgPath, []*ast.File{f}, nil)
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	if fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func); ok {
		return fn
	}
	t.Fatalf("no function %s in scope", name)
	return nil
}

func TestFuncKeyFormats(t *testing.T) {
	pkg := loadInline(t, "fixture/cg", `package cg
type T struct{}
func (tt *T) Ptr()  {}
func (tt T) Val()   {}
func Plain()        {}
`)
	if got := funcKey(lookupFunc(t, pkg, "Plain")); got != "fixture/cg.Plain" {
		t.Errorf("package func key = %q", got)
	}
	tn := pkg.Types.Scope().Lookup("T").Type()
	for _, m := range []string{"Ptr", "Val"} {
		obj, _, _ := types.LookupFieldOrMethod(tn, true, pkg.Types, m)
		fn, ok := obj.(*types.Func)
		if !ok {
			t.Fatalf("method %s not found", m)
		}
		if got := funcKey(fn); got != "fixture/cg.(T)."+m {
			t.Errorf("method key for %s = %q; pointer and value receivers must share the (T) form", m, got)
		}
	}
}

// callIn returns the first call expression inside the named function.
func callIn(t *testing.T, pkg *Package, name string) *ast.CallExpr {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			var call *ast.CallExpr
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok && call == nil {
					call = c
				}
				return call == nil
			})
			if call != nil {
				return call
			}
		}
	}
	t.Fatalf("no call found in %s", name)
	return nil
}

func TestStaticCalleeResolution(t *testing.T) {
	pkg := loadInline(t, "fixture/cg", `package cg
type T struct{}
func (tt *T) M() {}
type I interface{ M() }
func helper() {}

func direct()            { helper() }
func method(tt *T)       { tt.M() }
func viaIface(i I)       { i.M() }
func viaValue(fn func()) { fn() }
func viaLit()            { func() {}() }
`)
	if fn := staticCallee(pkg.Info, callIn(t, pkg, "direct")); fn == nil || fn.Name() != "helper" {
		t.Errorf("direct call not resolved: %v", fn)
	}
	if fn := staticCallee(pkg.Info, callIn(t, pkg, "method")); fn == nil || fn.Name() != "M" {
		t.Errorf("concrete method call not resolved: %v", fn)
	}
	if fn := staticCallee(pkg.Info, callIn(t, pkg, "viaIface")); fn != nil {
		t.Errorf("interface dispatch must be unresolved, got %v", fn)
	}
	if fn := staticCallee(pkg.Info, callIn(t, pkg, "viaValue")); fn != nil {
		t.Errorf("func-value call must be unresolved, got %v", fn)
	}
	if fn := staticCallee(pkg.Info, callIn(t, pkg, "viaLit")); fn != nil {
		t.Errorf("literal call must be unresolved, got %v", fn)
	}
}

func TestSCCOrderBottomUp(t *testing.T) {
	pkg := loadInline(t, "fixture/cg", `package cg
func leaf() {}
func a(n int) { if n > 0 { b(n - 1) }; leaf() }
func b(n int) { a(n) }
func top()    { a(3) }
func self(n int) { if n > 0 { self(n - 1) } }
`)
	g := buildCallGraph(pkg)
	sccs := g.sccOrder()

	comp := map[string]int{}
	for ci, scc := range sccs {
		for _, i := range scc {
			comp[g.objs[i].Name()] = ci
		}
	}
	// Callees-first: every static callee outside a function's SCC must
	// sit in an earlier component.
	for i, succs := range g.succs {
		for _, j := range succs {
			ni, nj := g.objs[i].Name(), g.objs[j].Name()
			if comp[ni] != comp[nj] && comp[nj] > comp[ni] {
				t.Errorf("callee %s (comp %d) emitted after caller %s (comp %d)", nj, comp[nj], ni, comp[ni])
			}
		}
	}
	if comp["a"] != comp["b"] {
		t.Errorf("mutually recursive a and b must share an SCC: %d vs %d", comp["a"], comp["b"])
	}
	if comp["leaf"] >= comp["a"] {
		t.Errorf("leaf (comp %d) must precede the a/b component (%d)", comp["leaf"], comp["a"])
	}
	if comp["top"] <= comp["a"] {
		t.Errorf("top (comp %d) must follow the a/b component (%d)", comp["top"], comp["a"])
	}

	for i, fn := range g.objs {
		wantSelf := fn.Name() == "self"
		if g.selfRecursive(i) != wantSelf {
			t.Errorf("selfRecursive(%s) = %v", fn.Name(), !wantSelf)
		}
	}
}
