package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mapImporter serves already-checked fixture packages to dependents.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, nil
}

func parseOne(t *testing.T, fset *token.FileSet, name, src string) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const kindProtoSrc = `
package proto

type Kind uint8

const (
	KindInvalid Kind = iota // vet:ignore kind-dispatch — the zero value is never routed
	KindGet
	KindGetReply
	KindPut
)

func (k Kind) String() string {
	names := [...]string{"invalid", "get", "get-reply", "put"}
	if int(k) < len(names) {
		return names[k]
	}
	return "?"
}

func (k Kind) IsReply() bool {
	switch k {
	case KindGetReply:
		return true
	default:
		return false
	}
}
`

// kindCheck joins the facts of a fixture proto package and a fixture
// consumer package registering handlers.
func kindCheck(t *testing.T, protoSrc, consumerSrc string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	cfg := &Config{ProtoPackage: "fixture/proto"}
	protoPkg := NewPackage(fset, "fixture/proto", []*ast.File{parseOne(t, fset, "proto.go", protoSrc)}, nil)
	imp := mapImporter{"fixture/proto": protoPkg.Types}
	consumer := NewPackage(fset, "fixture/dsm", []*ast.File{parseOne(t, fset, "dsm.go", consumerSrc)}, imp)
	return CheckKindDispatch([]*KindFacts{
		CollectKindFacts(protoPkg, cfg),
		CollectKindFacts(consumer, cfg),
	})
}

const kindConsumerSrc = `
package dsm

import proto "fixture/proto"

type ep struct{}

func (e *ep) Handle(k proto.Kind, h func()) {}

func register(e *ep) {
	e.Handle(proto.KindGet, func() {})
	e.Handle(proto.KindPut, func() {})
}
`

func TestKindDispatchCleanWhenCovered(t *testing.T) {
	fs := kindCheck(t, kindProtoSrc, kindConsumerSrc)
	if len(fs) != 0 {
		t.Fatalf("fully covered kinds must be silent, got %v", fs)
	}
}

func TestKindDispatchMissingRegistrationFlagged(t *testing.T) {
	// Drop the KindPut registration: the kind is neither a reply nor
	// handled — a silently dropped message.
	src := strings.Replace(kindConsumerSrc, "\te.Handle(proto.KindPut, func() {})\n", "", 1)
	fs := kindCheck(t, kindProtoSrc, src)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "KindPut") {
		t.Fatalf("want the dropped KindPut flagged, got %v", fs)
	}
	if fs[0].Rule != "kind-dispatch" {
		t.Fatalf("rule = %s", fs[0].Rule)
	}
}

func TestKindDispatchMissingReplyCaseFlagged(t *testing.T) {
	// Remove KindGetReply from IsReply: now it is classified neither
	// way — exactly what deleting a dispatch-switch case looks like.
	src := strings.Replace(kindProtoSrc, "case KindGetReply:", "case KindInvalid:", 1)
	fs := kindCheck(t, src, kindConsumerSrc)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "KindGetReply") {
		t.Fatalf("want the unclassified KindGetReply flagged, got %v", fs)
	}
}

func TestKindDispatchReplyWithHandlerFlagged(t *testing.T) {
	src := strings.Replace(kindConsumerSrc, "e.Handle(proto.KindPut, func() {})",
		"e.Handle(proto.KindPut, func() {})\n\te.Handle(proto.KindGetReply, func() {})", 1)
	fs := kindCheck(t, kindProtoSrc, src)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "dead code") {
		t.Fatalf("want the dead reply handler flagged, got %v", fs)
	}
}

func TestKindDispatchNamesTableLockstep(t *testing.T) {
	src := strings.Replace(kindProtoSrc, `"invalid", "get", "get-reply", "put"`,
		`"invalid", "get", "get-reply"`, 1)
	fs := kindCheck(t, src, kindConsumerSrc)
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "names table has 3 entries for 4") {
		t.Fatalf("want the names table mismatch flagged, got %v", fs)
	}
}

// TestKindDispatchSubsetRunsSilent pins the package-subset guard:
// without the proto package's constants or without any registration,
// the rule cannot prove absence and must stay silent.
func TestKindDispatchSubsetRunsSilent(t *testing.T) {
	fset := token.NewFileSet()
	cfg := &Config{ProtoPackage: "fixture/proto"}
	protoPkg := NewPackage(fset, "fixture/proto", []*ast.File{parseOne(t, fset, "proto.go", kindProtoSrc)}, nil)
	protoFacts := CollectKindFacts(protoPkg, cfg)
	if fs := CheckKindDispatch([]*KindFacts{protoFacts}); len(fs) != 0 {
		t.Fatalf("proto-only run must be silent (no registrations visible), got %v", fs)
	}
	consumer := NewPackage(fset, "fixture/dsm", []*ast.File{parseOne(t, fset, "dsm.go", kindConsumerSrc)}, nil)
	consumerFacts := CollectKindFacts(consumer, cfg)
	if fs := CheckKindDispatch([]*KindFacts{consumerFacts}); len(fs) != 0 {
		t.Fatalf("consumer-only run must be silent (no constants visible), got %v", fs)
	}
}

// TestKindDispatchUnresolvedImportsFallBackToNaming exercises the
// Kind*-prefix fallback used when a registration site's proto import
// cannot be resolved (degraded type information).
func TestKindDispatchUnresolvedImportsFallBackToNaming(t *testing.T) {
	fset := token.NewFileSet()
	cfg := &Config{ProtoPackage: "fixture/proto"}
	protoPkg := NewPackage(fset, "fixture/proto", []*ast.File{parseOne(t, fset, "proto.go", kindProtoSrc)}, nil)
	// nil importer: fixture/proto resolves to an empty placeholder.
	consumer := NewPackage(fset, "fixture/dsm", []*ast.File{parseOne(t, fset, "dsm.go", kindConsumerSrc)}, nil)
	fs := CheckKindDispatch([]*KindFacts{
		CollectKindFacts(protoPkg, cfg),
		CollectKindFacts(consumer, cfg),
	})
	if len(fs) != 0 {
		t.Fatalf("name-based fallback should still see both registrations, got %v", fs)
	}
}
