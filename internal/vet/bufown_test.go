package vet

import (
	"bufio"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// analyzeTestdata parses every .go file of a fixture package under
// testdata and runs the buf-own analysis over it.
func analyzeTestdata(t *testing.T, dir, pkgPath string) []Finding {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg := NewPackage(fset, pkgPath, files, nil)
	return Check(pkg, &Config{
		BufOwnPackages: []string{pkgPath},
		BufPoolPackage: "repro/internal/bufpool",
		ProtoPackage:   "repro/internal/proto",
	})
}

// wantLines maps file → the line numbers carrying a `want buf-own`
// marker.
func wantLines(t *testing.T, dir string) map[string]map[int]bool {
	t.Helper()
	out := map[string]map[int]bool{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "want buf-own") {
				if out[name] == nil {
					out[name] = map[int]bool{}
				}
				out[name][line] = true
			}
		}
		f.Close()
	}
	return out
}

// TestBufOwnMutationsKilled is the mutation-kill harness: every
// injected lifetime bug in testdata/bufownbad must be reported on its
// marked line, and nothing else may be.
func TestBufOwnMutationsKilled(t *testing.T) {
	dir := filepath.Join("testdata", "bufownbad")
	fs := analyzeTestdata(t, dir, "fixture/bufownbad")
	want := wantLines(t, dir)
	if len(want) == 0 {
		t.Fatal("fixture has no want markers")
	}
	got := map[string]map[int]bool{}
	for _, f := range fs {
		if f.Rule != "buf-own" {
			t.Errorf("unexpected %s finding in buf-own fixture: %v", f.Rule, f)
			continue
		}
		if got[f.Pos.Filename] == nil {
			got[f.Pos.Filename] = map[int]bool{}
		}
		got[f.Pos.Filename][f.Pos.Line] = true
	}
	nwant := 0
	for file, lines := range want {
		for line := range lines {
			nwant++
			if !got[file][line] {
				t.Errorf("injected bug at %s:%d not reported (mutation survived)", file, line)
			}
		}
	}
	if nwant != 8 {
		t.Fatalf("fixture must carry exactly 8 injected bugs, found %d markers", nwant)
	}
	for file, lines := range got {
		for line := range lines {
			if !want[file][line] {
				t.Errorf("false positive at %s:%d", file, line)
			}
		}
	}
	if t.Failed() {
		t.Logf("findings:")
		for _, f := range fs {
			t.Logf("  %v", f)
		}
	}
}

// TestBufOwnCleanFixtureSilent pins the false-positive budget at zero
// over every sanctioned lifecycle pattern.
func TestBufOwnCleanFixtureSilent(t *testing.T) {
	fs := analyzeTestdata(t, filepath.Join("testdata", "bufownclean"), "fixture/bufownclean")
	if len(fs) != 0 {
		t.Fatalf("clean fixture must be silent, got %v", fs)
	}
}
