package vet

import (
	"go/token"
	"strings"
	"testing"
)

func lockFinding(fs []Finding, rule, substr string) bool {
	for _, f := range fs {
		if f.Rule == rule && strings.Contains(f.Msg, substr) {
			return true
		}
	}
	return false
}

// TestLockOrderCycleFromSyntheticFacts feeds the global phase two
// functions taking classes A and B in opposite orders.
func TestLockOrderCycleFromSyntheticFacts(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 1}
	facts := &LockFacts{Pkg: "p", Funcs: []*FuncLockFacts{
		{Key: "p.ab", Acquires: []LockAcquire{
			{Class: "A", Pos: pos},
			{Class: "B", Held: []string{"A"}, Pos: pos},
		}},
		{Key: "p.ba", Acquires: []LockAcquire{
			{Class: "B", Pos: pos},
			{Class: "A", Held: []string{"B"}, Pos: pos},
		}},
	}}
	fs, g := CheckLockOrder([]*LockFacts{facts})
	if !lockFinding(fs, "lock-order", "acquiring B while holding A") ||
		!lockFinding(fs, "lock-order", "acquiring A while holding B") {
		t.Fatalf("both cycle edges must be reported, got %v", fs)
	}
	if g.Classes != 2 || g.Edges != 2 {
		t.Errorf("graph = %+v, want 2 classes / 2 edges", g)
	}
}

// TestLockOrderEdgeThroughCall: holding A while calling a function
// whose transitive acquires include B contributes the A→B edge.
func TestLockOrderEdgeThroughCall(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 2}
	facts := &LockFacts{Pkg: "p", Funcs: []*FuncLockFacts{
		{Key: "p.caller",
			Acquires: []LockAcquire{{Class: "A", Pos: pos}},
			Calls:    []LockCallEdge{{Callee: "p.helper", Held: []string{"A"}, Pos: pos}}},
		{Key: "p.helper",
			Calls: []LockCallEdge{{Callee: "p.inner", Pos: pos}}},
		{Key: "p.inner",
			Acquires: []LockAcquire{{Class: "B", Pos: pos}}},
		{Key: "p.inverse", Acquires: []LockAcquire{
			{Class: "B", Pos: pos},
			{Class: "A", Held: []string{"B"}, Pos: pos},
		}},
	}}
	fs, _ := CheckLockOrder([]*LockFacts{facts})
	if !lockFinding(fs, "lock-order", "acquiring B while holding A") {
		t.Fatalf("edge through two call levels not found: %v", fs)
	}
}

// TestLockRemoteHandlerExpansion: a class held across a remote call
// whose registered handler reacquires it is reported, and the
// same-class edge never becomes a length-1 cycle.
func TestLockRemoteHandlerExpansion(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 3}
	facts := &LockFacts{Pkg: "p",
		Funcs: []*FuncLockFacts{
			{Key: "p.request",
				Acquires: []LockAcquire{{Class: "M", Pos: pos}},
				Remotes:  []LockRemote{{Kinds: []string{"KindX"}, Held: []string{"M"}, Pos: pos}}},
			{Key: "p.handle",
				Acquires: []LockAcquire{{Class: "M", Pos: pos}}},
		},
		Regs: []LockHandlerReg{{Kind: "KindX", Handler: "p.handle"}},
	}
	fs, _ := CheckLockOrder([]*LockFacts{facts})
	if !lockFinding(fs, "lock-remote", "M is held across a blocking remote call") {
		t.Fatalf("lock-remote not reported: %v", fs)
	}
	if lockFinding(fs, "lock-order", "") {
		t.Fatalf("same-class reacquisition must not surface as a cycle: %v", fs)
	}
}

// TestLockRemoteIgnoredSiteSilent: a vet:ignore lock-remote site
// contributes no finding and no edge.
func TestLockRemoteIgnoredSiteSilent(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 4}
	facts := &LockFacts{Pkg: "p",
		Funcs: []*FuncLockFacts{
			{Key: "p.request",
				Acquires: []LockAcquire{{Class: "M", Pos: pos}},
				Remotes:  []LockRemote{{Kinds: []string{"KindX"}, Held: []string{"M"}, Pos: pos, Ignored: true}}},
			{Key: "p.handle",
				Acquires: []LockAcquire{{Class: "M", Pos: pos}}},
		},
		Regs: []LockHandlerReg{{Kind: "KindX", Handler: "p.handle"}},
	}
	fs, _ := CheckLockOrder([]*LockFacts{facts})
	if len(fs) != 0 {
		t.Fatalf("ignored remote site must be silent, got %v", fs)
	}
}

// TestLockOrderIfaceFallbackResolution: an iface:Name callee resolves
// to every collected function with that bare name.
func TestLockOrderIfaceFallbackResolution(t *testing.T) {
	pos := token.Position{Filename: "x.go", Line: 5}
	facts := &LockFacts{Pkg: "p", Funcs: []*FuncLockFacts{
		{Key: "p.caller",
			Acquires: []LockAcquire{{Class: "A", Pos: pos}},
			Calls:    []LockCallEdge{{Callee: "iface:Serve", Held: []string{"A"}, Pos: pos}}},
		{Key: "p.(impl).Serve", Acquires: []LockAcquire{
			{Class: "B", Pos: pos},
		}},
		{Key: "p.inverse", Acquires: []LockAcquire{
			{Class: "B", Pos: pos},
			{Class: "A", Held: []string{"B"}, Pos: pos},
		}},
	}}
	fs, _ := CheckLockOrder([]*LockFacts{facts})
	if !lockFinding(fs, "lock-order", "acquiring B while holding A") {
		t.Fatalf("interface-dispatch edge not found: %v", fs)
	}
}

// TestLockOrderSubsetSilence: handler registrations without any
// analyzed function bodies must produce nothing — a package-subset run
// cannot prove absence of deadlock.
func TestLockOrderSubsetSilence(t *testing.T) {
	facts := &LockFacts{Pkg: "p", Regs: []LockHandlerReg{{Kind: "KindX", Handler: "p.handle"}}}
	fs, g := CheckLockOrder([]*LockFacts{facts, nil})
	if len(fs) != 0 || g.Classes != 0 || g.Edges != 0 {
		t.Fatalf("subset run must be silent and empty, got %v %+v", fs, g)
	}
}
