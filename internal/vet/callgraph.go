package vet

// Call-graph construction for the interprocedural layer. Functions are
// identified by stable string keys (import path + receiver + name) so
// summaries computed in one worker's type universe can be consulted
// from another's — cmd/mermaid-vet gives every worker its own FileSet
// and importer, and go/types object identity does not survive that
// boundary.
//
// Only statically resolvable callees produce edges: direct calls to
// package functions and concrete-receiver method calls. Calls through
// interface methods, stored function values, and function literals are
// dynamic dispatch the graph does not resolve; analyses treat such
// callees as unknown and degrade conservatively (no inferred effects,
// not pure). Go forbids import cycles, so recursion — and therefore
// SCC condensation — is strictly an intra-package affair: processing
// packages in import-topological order and each package's SCCs
// bottom-up visits every statically known callee before its callers.

import (
	"go/ast"
	"go/types"
)

// funcKey is the stable cross-package identity of a function:
// "pkg/path.Name" for package functions, "pkg/path.(Recv).Name" for
// methods (pointer receivers and value receivers share a key).
func funcKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return pkg + ".(" + n.Obj().Name() + ")." + fn.Name()
		}
		return pkg + ".(?)." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// interfaceRecv reports whether fn is declared on an interface — a
// call through it is dynamic dispatch.
func interfaceRecv(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// staticCallee resolves the one function a call can reach, or nil when
// dispatch is dynamic (interface methods, func-typed values, literals)
// or the callee could not be typed.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fn]; ok {
			// A selection: method value or field access.
			if s.Kind() != types.MethodVal {
				return nil // calling a func-typed field
			}
			f, _ := s.Obj().(*types.Func)
			if f == nil || interfaceRecv(f) {
				return nil
			}
			return f
		}
		// Package-qualified call (pkg.Fn).
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	if f == nil || interfaceRecv(f) {
		return nil
	}
	return f
}

// callGraph is the package-local static call graph over declared
// function bodies.
type callGraph struct {
	decls []*ast.FuncDecl
	objs  []*types.Func
	index map[*types.Func]int
	succs [][]int
}

// buildCallGraph indexes every function declaration in the package and
// records same-package static call edges.
func buildCallGraph(pkg *Package) *callGraph {
	g := &callGraph{index: map[*types.Func]int{}}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue // type checking degraded past use
			}
			g.index[fn] = len(g.decls)
			g.decls = append(g.decls, fd)
			g.objs = append(g.objs, fn)
		}
	}
	g.succs = make([][]int, len(g.decls))
	for i, fd := range g.decls {
		seen := map[int]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pkg.Info, call)
			if callee == nil {
				return true
			}
			if j, ok := g.index[callee]; ok && !seen[j] {
				seen[j] = true
				g.succs[i] = append(g.succs[i], j)
			}
			return true
		})
	}
	return g
}

// sccOrder returns the graph's strongly connected components in
// bottom-up (callees-first) order, via Tarjan's algorithm: a component
// is emitted only after every component it calls into.
func (g *callGraph) sccOrder() [][]int {
	n := len(g.decls)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var sccs [][]int
	next := 0

	// Iterative Tarjan: each frame is (node, position in its succ list).
	type frame struct{ v, si int }
	var visit func(root int)
	visit = func(root int) {
		frames := []frame{{root, 0}}
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			if fr.si == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.si < len(g.succs[v]) {
				w := g.succs[v][fr.si]
				fr.si++
				if index[w] == -1 {
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if index[i] == -1 {
			visit(i)
		}
	}
	return sccs
}

// selfRecursive reports whether the single-member SCC {i} calls itself.
func (g *callGraph) selfRecursive(i int) bool {
	for _, j := range g.succs[i] {
		if j == i {
			return true
		}
	}
	return false
}
