package dsm

// use.go holds the patterns the rule must NOT fire on: carrying a Model
// around without branching on it, same-named fields of other types, and
// an annotated diagnostic site.

type module struct {
	model consistencyModel
	mo    Model
}

// describe passes the model along without comparing it.
func describe(m *module) string {
	return m.model.name()
}

// retry has a string field that happens to be called Model; type
// information must keep it out of the rule.
type retry struct {
	Model string
}

func retryKind(r *retry) bool {
	return r.Model == "exponential"
}

// report is a diagnostics-only branch, suppressed by annotation.
func report(m *module) string {
	if m.mo.Model() == ModelRC { // vet:ignore model-branch — diagnostics only
		return "rc"
	}
	return "sc"
}

// Model echoes the stored model; a method named Model returning Model,
// like the real Policy.Model, must not trip the rule by itself.
func (mo Model) Model() Model { return mo }
