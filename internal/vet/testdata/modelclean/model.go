// Package dsm is the model-branch clean fixture: every sanctioned way
// of touching the consistency model. The analyzer must stay silent over
// this package.
package dsm

// Model identifies the consistency contract a policy provides.
type Model int

const (
	ModelSC Model = iota
	ModelRC
)

// Policy selects a replication engine.
type Policy int

const (
	PolicyMRSW Policy = iota
	PolicyRC
)

// Model maps a policy to its contract via a table — no policy branch
// needed.
func (p Policy) Model() Model {
	models := [...]Model{PolicyMRSW: ModelSC, PolicyRC: ModelRC}
	return models[p]
}

type consistencyModel interface{ name() string }

type scModel struct{}

func (scModel) name() string { return "SC" }

type rcModel struct{}

func (rcModel) name() string { return "RC" }

// newModel is the single sanctioned model dispatch point.
func newModel(p Policy) consistencyModel {
	switch p.Model() {
	case ModelRC:
		return rcModel{}
	default:
		return scModel{}
	}
}
