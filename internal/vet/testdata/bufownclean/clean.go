// Package bufownclean exercises every sanctioned buffer-lifecycle
// pattern on the transfer path. The mutation-kill test asserts the
// buf-own analysis is silent on all of them — its false-positive
// budget here is zero.
package bufownclean

import (
	"repro/internal/bufpool"
	"repro/internal/proto"
)

type owner struct{ buf []byte }

// Balanced get/put on a straight line.
func balanced() {
	buf := bufpool.Get(64)
	copy(buf, "hello")
	bufpool.Put(buf)
}

// Deferred release covers every return, including the early ones, and
// the buffer stays readable until exit.
func deferred(err error) error {
	buf := bufpool.Get(64)
	defer bufpool.Put(buf)
	if err != nil {
		return err
	}
	buf[0] = 1
	return nil
}

// Released on each branch separately.
func branches(cond bool) {
	buf := bufpool.Get(64)
	if cond {
		bufpool.Put(buf)
		return
	}
	bufpool.Put(buf)
}

// SetWire transfers ownership into the message; its consumer releases
// via TakeWire.
func transfer(m *proto.Message) {
	buf := bufpool.Get(64)
	m.SetWire(buf)
}

// The handler detaches the wire buffer it was handed and releases it.
func takeAndRelease(m *proto.Message) {
	bufpool.Put(m.TakeWire())
}

// AppendEncode extends the pooled buffer (the result aliases it);
// storing the result to a field transfers ownership, the error path
// releases.
func fieldTransfer(o *owner, m *proto.Message) error {
	buf, err := m.AppendEncode(bufpool.Get(64)[:0])
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	o.buf = buf
	return nil
}

// Call arguments and composite-literal elements are loans: the callee
// may read the buffer, the caller still releases it.
func loan(send func(*proto.Message) error) error {
	data := bufpool.Get(64)
	err := send(&proto.Message{Data: data})
	bufpool.Put(data)
	return err
}

// Serve-style loop: released on the error path, transferred otherwise
// — no iteration re-acquires while the last buffer is live.
func serveLoop(frames [][]byte, deliver func(*proto.Message)) {
	m := &proto.Message{}
	for _, f := range frames {
		buf := bufpool.Get(len(f))
		n := copy(buf, f)
		if n == 0 {
			bufpool.Put(buf)
			continue
		}
		m.SetWire(buf)
		deliver(m)
	}
}

// Borrowed wire data may escape once TakeWire detaches the buffer.
func borrowResolved(o *owner, wire []byte) error {
	m, err := proto.DecodeBorrow(wire)
	if err != nil {
		return err
	}
	o.buf = m.TakeWire()
	return nil
}

// A crash path is not a leak: the process is gone.
func panicPath(err error) {
	buf := bufpool.Get(4)
	if err != nil {
		panic("fatal")
	}
	bufpool.Put(buf)
}

// produce's result transfers ownership to the caller.
//
// vet:owned
func produce(n int) []byte {
	out := bufpool.Get(n)
	return out
}

func consume() {
	buf := produce(8)
	bufpool.Put(buf)
}

// tryProduce reports ok = false without a buffer; the analysis pairs
// the result with the ok variable so the failure branch is not a leak.
//
// vet:owned
func tryProduce(n int) ([]byte, bool) {
	if n == 0 {
		return nil, false
	}
	return bufpool.Get(n), true
}

// The ok-guard idiom: observing ok == false un-acquires the buffer.
func guarded(n int) {
	buf, ok := tryProduce(n)
	if !ok {
		return
	}
	bufpool.Put(buf)
}

// Same guard inside a loop: the continue on the failure branch must not
// read as a loop leak.
func guardedLoop(sizes []int, m *proto.Message) {
	for _, n := range sizes {
		buf, ok := tryProduce(n)
		if !ok {
			continue
		}
		m.SetWire(buf)
	}
}
