// Package interclean pins the interprocedural false-positive budget at
// zero: recursion and mutual recursion, method values, interface
// dispatch, closures, helper-released buffers, a consistent lock
// order, a remote call under no holds, and map loops the order prover
// discharges through pure helpers. The fixture must be completely
// silent under the full rule set.
package interclean

import (
	"sort"

	"repro/internal/bufpool"
)

// ---- recursion: the SCC fixpoint must converge, and the release
// effect must be visible through the recursive call -------------------

// releaseRec returns the buffer to the pool on every path — through
// the base case directly and through the recursive call otherwise.
func releaseRec(b []byte, depth int) {
	if depth == 0 {
		bufpool.Put(b)
		return
	}
	releaseRec(b, depth-1)
}

func recCaller() {
	buf := bufpool.Get(64)
	releaseRec(buf, 3)
}

// ---- mutual recursion: purity converges over the two-member SCC ----

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// ---- method call releasing a buffer --------------------------------

type pool struct{}

func (pl *pool) done(b []byte) {
	bufpool.Put(b)
}

func methodRelease() {
	var pl pool
	buf := bufpool.Get(16)
	pl.done(buf)
}

// ---- interface dispatch: unknowable callee, argument stays a loan —
// the Put after the call must not read as a double release ------------

type consumer interface {
	Consume(b []byte)
}

func viaInterface(c consumer) {
	buf := bufpool.Get(16)
	c.Consume(buf)
	bufpool.Put(buf)
}

// ---- closure: an owned buffer captured by a returned literal is a
// transfer, not a leak ------------------------------------------------

func closureRelease() func() {
	buf := bufpool.Get(16)
	return func() {
		bufpool.Put(buf)
	}
}

// ---- map-order: loops discharged by the prover through summaries ---

// double is pure — the prover must see that through its summary.
func double(x int) int {
	return x * 2
}

// sums folds with a commutative accumulator and a pure helper.
func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += double(v)
	}
	return total
}

// keys collects and then canonicalizes with a whole-value sort.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ids collects and canonicalizes with the insertion-sort idiom.
func ids(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ---- locks: one global order, no cycle -----------------------------

type sema struct{}

func (s *sema) P() {}
func (s *sema) V() {}

type pair struct {
	a sema
	b sema
}

// both always takes a before b — the only edge is a→b.
func (p2 *pair) both() {
	p2.a.P()
	p2.b.P()
	p2.b.V()
	p2.a.V()
}

func (p2 *pair) bOnly() {
	p2.b.P()
	p2.b.V()
}

// ---- remote call under no holds ------------------------------------

type Endpoint struct{}

type Message struct {
	Kind int
}

const KindPing = 1

func (e *Endpoint) Call(target int, m *Message) {}

func (e *Endpoint) Handle(kind int, h func(*Message)) {}

type station struct {
	mu sema
	ep *Endpoint
}

func (st *station) register() {
	st.ep.Handle(KindPing, st.handlePing)
}

// handlePing takes the per-station lock, but pings are sent lock-free.
func (st *station) handlePing(m *Message) {
	st.mu.P()
	st.mu.V()
}

func (st *station) ping() {
	st.ep.Call(1, &Message{Kind: KindPing})
}
