package dsm

// Policy selects a replication engine, as in the real package.
type Policy int

const (
	PolicyMRSW Policy = iota
	PolicyRC
)

// Config mirrors the real package's shape: the policy is configured,
// the model derived.
type Config struct {
	Policy Policy
	Model  Model
}

// Model maps a policy to its consistency contract. engine.go is the
// policy dispatch file, so the policy branch below is sanctioned — but
// engine.go is NOT on the model allow-list, so deriving a Model here is
// fine only as long as nothing compares one.
func (p Policy) Model() Model {
	if p == PolicyRC {
		return ModelRC
	}
	return ModelSC
}
