package dsm

// proto.go carries the injected bugs: model dispatch scattered outside
// model.go, in both the field form and the Policy.Model() call form.

type state struct {
	cfg Config
}

func scatteredField(s *state) int {
	if s.cfg.Model == ModelRC { // want model-branch
		return 1
	}
	return 0
}

func scatteredCallSwitch(s *state) int {
	switch s.cfg.Policy.Model() { // want model-branch
	case ModelRC:
		return 1
	default:
		return 0
	}
}

func scatteredCallCompare(s *state) bool {
	return s.cfg.Policy.Model() != ModelSC // want model-branch
}
