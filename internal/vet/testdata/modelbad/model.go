// Package dsm is the model-branch bad fixture: a miniature of the real
// DSM package where per-model behaviour has leaked out of newModel.
// model.go itself is the sanctioned dispatch file — nothing here may be
// reported.
package dsm

// Model identifies the consistency contract a policy provides.
type Model int

const (
	ModelSC Model = iota
	ModelRC
)

type consistencyModel interface{ name() string }

type scModel struct{}

func (scModel) name() string { return "SC" }

type rcModel struct{}

func (rcModel) name() string { return "RC" }

// newModel is the single sanctioned model dispatch point.
func newModel(c Config) consistencyModel {
	switch c.Model {
	case ModelRC:
		return rcModel{}
	default:
		return scModel{}
	}
}
