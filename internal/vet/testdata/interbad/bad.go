// Package interbad is the mutation-kill fixture for the
// interprocedural layer: cross-function buffer-lifetime bugs that only
// an analysis consulting callee summaries can see, plus a lock-order
// inversion and a lock held across a self-reacquiring remote call.
// Every injected bug carries a marker comment on the line where the
// finding must anchor; the mutation test asserts each marked line is
// reported with the marked rule and no unmarked line is.
package interbad

import (
	"repro/internal/bufpool"
	"repro/internal/proto"
)

var kept []byte

// ---- buffer helpers (deliberately unannotated: every effect below
// must be inferred, not declared) ------------------------------------

// alloc returns a pooled buffer its caller owns.
func alloc(n int) []byte {
	return bufpool.Get(n)
}

// allocDeep returns alloc's buffer — ownership must propagate through
// two levels of helpers.
func allocDeep(n int) []byte {
	return alloc(n)
}

// consume returns its argument to the pool.
func consume(b []byte) {
	bufpool.Put(b)
}

// keep stores its argument into package-level state that outlives the
// call.
func keep(b []byte) {
	kept = b
}

// ---- injected buffer bugs ------------------------------------------

// Bug 1: leak through a helper — alloc's result is owned (inferred
// ResultOwned), and the error path drops it.
func leakThroughHelper(err error) error {
	buf := alloc(64) // want buf-own
	if err != nil {
		return err
	}
	bufpool.Put(buf)
	return nil
}

// Bug 2: leak through a two-level helper chain.
func leakDeepChain(cond bool) {
	buf := allocDeep(32) // want buf-own
	if cond {
		return
	}
	bufpool.Put(buf)
}

// Bug 3: double-Put split across caller and callee — consume already
// released the buffer.
func splitDoublePut() {
	buf := bufpool.Get(64)
	consume(buf)
	bufpool.Put(buf) // want buf-own
}

// Bug 4: read after a release that happens inside the callee.
func useAfterHelperPut() byte {
	buf := bufpool.Get(64)
	consume(buf)
	return buf[0] // want buf-own
}

// Bug 5: borrowed wire data passed to a callee that stores it — the
// pool recycles the backing buffer while kept still aliases it.
func borrowToStoringCallee(wire []byte) error {
	m, err := proto.DecodeBorrow(wire)
	if err != nil {
		return err
	}
	keep(m.Data) // want buf-own
	return nil
}

// ---- lock fixtures -------------------------------------------------

type sema struct{}

func (s *sema) P() {}
func (s *sema) V() {}

type locks struct {
	a sema
	b sema
}

// lockB takes b alone — innocent in isolation.
func (l *locks) lockB() {
	l.b.P()
	l.b.V()
}

// Bug 6: lock-order inversion. abPath holds a and takes b through a
// helper; baPath holds b and takes a directly. Both edges of the
// resulting cycle must be reported.
func (l *locks) abPath() {
	l.a.P()
	l.lockB() // want lock-order
	l.a.V()
}

func (l *locks) baPath() {
	l.b.P()
	l.a.P() // want lock-order
	l.a.V()
	l.b.V()
}

// ---- remote fixtures -----------------------------------------------

// Endpoint mimics the remote-op endpoint by name and shape; the
// analysis recognizes it by its type name.
type Endpoint struct{}

// Message mimics the wire message: the Kind field names the handler.
type Message struct {
	Kind int
	Page uint32
}

const KindServe = 1

func (e *Endpoint) Call(target int, m *Message) {}

func (e *Endpoint) Handle(kind int, h func(*Message)) {}

type node struct {
	mu sema
	ep *Endpoint
}

func (n *node) register() {
	n.ep.Handle(KindServe, n.handleServe)
}

// handleServe reacquires the same per-node lock the requester holds.
func (n *node) handleServe(m *Message) {
	n.mu.P()
	n.mu.V()
}

// Bug 7: lock held across a blocking remote call whose registered
// handler transitively reacquires the same class.
func (n *node) requestWithLock() {
	n.mu.P()
	n.ep.Call(1, &Message{Kind: KindServe}) // want lock-remote
	n.mu.V()
}
