// Package bufownbad is the mutation-kill fixture for the ownership
// analysis: eight hand-injected buffer-lifetime bugs, each carrying a
// marker comment on the line where the finding must anchor. The
// mutation test asserts every marked line is reported and no unmarked
// line is.
package bufownbad

import (
	"repro/internal/bufpool"
	"repro/internal/proto"
)

type sink struct{ buf []byte }

var global []byte

// Bug 1: double-Put on a straight-line path.
func doublePut() {
	buf := bufpool.Get(64)
	bufpool.Put(buf)
	bufpool.Put(buf) // want buf-own
}

// Bug 2: conditional Put followed by an unconditional one — double
// release whenever the branch is taken.
func branchDoublePut(cond bool) {
	buf := bufpool.Get(64)
	if cond {
		bufpool.Put(buf)
	}
	bufpool.Put(buf) // want buf-own
}

// Bug 3: leak on the early error return.
func leakOnError(err error) error {
	buf := bufpool.Get(64) // want buf-own
	if err != nil {
		return err
	}
	bufpool.Put(buf)
	return nil
}

// Bug 4: serve-style loop that drops the buffer on the error path —
// the next iteration re-acquires while the last buffer is still owned.
func loopLeak(frames []bool) {
	for _, bad := range frames {
		buf := bufpool.Get(64) // want buf-own
		if bad {
			continue
		}
		bufpool.Put(buf)
	}
}

// Bug 5: read after release.
func useAfterPut() byte {
	buf := bufpool.Get(64)
	bufpool.Put(buf)
	return buf[0] // want buf-own
}

// Bug 6: borrowed wire data stored to a field without TakeWire.
func borrowEscapeField(s *sink, wire []byte) error {
	m, err := proto.DecodeBorrow(wire)
	if err != nil {
		return err
	}
	s.buf = m.Data // want buf-own
	return nil
}

// Bug 7: borrowed wire data captured by a closure that runs after the
// handler returns and the pool may have recycled the buffer.
func borrowEscapeClosure(spawn func(func()), wire []byte) error {
	m, err := proto.DecodeBorrow(wire)
	if err != nil {
		return err
	}
	spawn(func() {
		global = append(global, m.Data...) // want buf-own
	})
	return nil
}

// Bug 8: acquire whose result is thrown away — unreleasable.
func discard() {
	bufpool.Get(64) // want buf-own
}
