package vet

// kind-dispatch: proves every proto.Kind constant is handled somewhere.
//
// Dispatch in this codebase is registration-based, not switch-based:
// the remote-operation layer routes an arriving message either to the
// pending call its ReqID redeems (when Kind.IsReply()) or to the
// handler registered for its kind with ep.Handle(kind, h). A kind in
// neither set is silently dropped on arrival — exactly the PR 5 bug
// class ("a message arrived somewhere that didn't expect it"). The
// rule is module-global, so facts are collected per package and joined
// by the driver:
//
//   - from the proto package: the declared Kind constants, the case
//     list of Kind.IsReply, and the length of String()'s names table;
//   - from every package: ep.Handle(proto.KindX, handler)
//     registrations.
//
// Every constant must then be classified as a reply XOR registered
// (both means a dead handler; neither means a dropped message), and
// the names table must have one entry per constant. Deliberately
// unrouted kinds — KindInvalid, the zero value — carry a
// `vet:ignore kind-dispatch` on their declaration line.
//
// Findings are only produced when the collected facts include both the
// proto package and at least one registration, so running mermaid-vet
// on a package subset degrades to silence instead of false positives.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// KindConst is one declared proto.Kind constant.
type KindConst struct {
	Name    string
	Pos     token.Position
	Ignored bool // vet:ignore kind-dispatch on the declaration line
}

// KindReg is one Handle(kind, handler) registration site.
type KindReg struct {
	Name string
	Pos  token.Position
}

// KindFacts is what one package contributes to the module-global
// kind-dispatch check.
type KindFacts struct {
	// ProtoPkg marks the package that declares the Kind type.
	ProtoPkg bool
	// Consts are the declared Kind constants (proto package only).
	Consts []KindConst
	// ReplyKinds are the constant names cased in Kind.IsReply.
	ReplyKinds []string
	// HasReplyFn records that an IsReply method was found.
	HasReplyFn bool
	// NamesLen is the element count of String()'s names table
	// (-1 when not found).
	NamesLen int
	// NamesPos locates the names table.
	NamesPos token.Position
	// Registered are the Handle registrations in this package.
	Registered []KindReg
}

// CollectKindFacts gathers this package's contribution to the
// kind-dispatch rule.
func CollectKindFacts(pkg *Package, cfg *Config) *KindFacts {
	facts := &KindFacts{NamesLen: -1}
	isProto := pkg.Path == cfg.ProtoPackage
	facts.ProtoPkg = isProto
	for _, f := range pkg.Files {
		collectRegistrations(pkg, f, facts)
		if isProto {
			collectProtoFacts(pkg, f, facts)
		}
	}
	return facts
}

// collectProtoFacts records Kind constants, IsReply cases, and the
// String names table from one file of the proto package.
func collectProtoFacts(pkg *Package, f *ast.File, facts *KindFacts) {
	ignores := collectIgnores(pkg.Fset, f)
	ignored := func(pos token.Pos) bool {
		for _, d := range ignores[pkg.Fset.Position(pos).Line] {
			if strings.HasPrefix(d, "vet:ignore kind-dispatch") {
				return true
			}
		}
		return false
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok || !isKindType(obj.Type()) {
						continue
					}
					facts.Consts = append(facts.Consts, KindConst{
						Name:    name.Name,
						Pos:     pkg.Fset.Position(name.Pos()),
						Ignored: ignored(name.Pos()),
					})
				}
			}
		case *ast.FuncDecl:
			if d.Recv == nil || d.Body == nil {
				continue
			}
			switch d.Name.Name {
			case "IsReply":
				facts.HasReplyFn = true
				ast.Inspect(d.Body, func(n ast.Node) bool {
					cc, ok := n.(*ast.CaseClause)
					if !ok {
						return true
					}
					for _, e := range cc.List {
						if name := exprConstName(e); name != "" {
							facts.ReplyKinds = append(facts.ReplyKinds, name)
						}
					}
					return true
				})
			case "String":
				ast.Inspect(d.Body, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					at, ok := cl.Type.(*ast.ArrayType)
					if !ok {
						return true
					}
					if elt, ok := at.Elt.(*ast.Ident); !ok || elt.Name != "string" {
						return true
					}
					facts.NamesLen = len(cl.Elts)
					facts.NamesPos = pkg.Fset.Position(cl.Pos())
					return false
				})
			}
		}
	}
}

// collectRegistrations records Handle(kind, handler) calls. The first
// argument must denote a Kind constant — resolved when type
// information reaches across packages, by the Kind* naming convention
// otherwise.
func collectRegistrations(pkg *Package, f *ast.File, facts *KindFacts) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Handle" {
			return true
		}
		name, id := "", (*ast.Ident)(nil)
		switch arg := call.Args[0].(type) {
		case *ast.Ident:
			id = arg
		case *ast.SelectorExpr:
			id = arg.Sel
		default:
			return true
		}
		if obj, ok := pkg.Info.Uses[id].(*types.Const); ok {
			if !isKindType(obj.Type()) {
				return true
			}
			name = obj.Name()
		} else if strings.HasPrefix(id.Name, "Kind") {
			name = id.Name
		} else {
			return true
		}
		facts.Registered = append(facts.Registered, KindReg{
			Name: name,
			Pos:  pkg.Fset.Position(call.Pos()),
		})
		return true
	})
}

// isKindType reports whether t is a named integer type called Kind.
func isKindType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Kind" {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func exprConstName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// CheckKindDispatch joins per-package facts and verifies every Kind
// constant is classified as a reply XOR registered with a handler. It
// stays silent unless the fact set includes the proto package's
// constants and at least one registration (a package-subset run cannot
// prove absence).
func CheckKindDispatch(all []*KindFacts) []Finding {
	var proto *KindFacts
	replies := map[string]bool{}
	registered := map[string][]KindReg{}
	nregs := 0
	for _, f := range all {
		if f == nil {
			continue
		}
		if f.ProtoPkg && len(f.Consts) > 0 {
			proto = f
		}
		for _, r := range f.ReplyKinds {
			replies[r] = true
		}
		for _, r := range f.Registered {
			registered[r.Name] = append(registered[r.Name], r)
			nregs++
		}
	}
	if proto == nil || nregs == 0 || !proto.HasReplyFn {
		return nil
	}
	var findings []Finding
	for _, kc := range proto.Consts {
		if kc.Ignored {
			continue
		}
		isReply := replies[kc.Name]
		regs := registered[kc.Name]
		switch {
		case !isReply && len(regs) == 0:
			findings = append(findings, Finding{
				Pos:  kc.Pos,
				Rule: "kind-dispatch",
				Msg: fmt.Sprintf("%s is neither classified as a reply (IsReply) nor registered with a handler (Handle) anywhere in the module; a message of this kind is silently dropped on arrival",
					kc.Name),
			})
		case isReply && len(regs) > 0:
			findings = append(findings, Finding{
				Pos:  regs[0].Pos,
				Rule: "kind-dispatch",
				Msg: fmt.Sprintf("%s is classified as a reply (IsReply) — it redeems a pending call by ReqID and never reaches handlers, so this Handle registration is dead code",
					kc.Name),
			})
		}
	}
	if proto.NamesLen >= 0 && proto.NamesLen != len(proto.Consts) {
		findings = append(findings, Finding{
			Pos:  proto.NamesPos,
			Rule: "kind-dispatch",
			Msg: fmt.Sprintf("Kind.String names table has %d entries for %d declared constants; names and constants must stay in lockstep",
				proto.NamesLen, len(proto.Consts)),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return findings
}
