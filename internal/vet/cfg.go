package vet

// Control-flow graph construction for the dataflow analyses (buf-own,
// lock-pairing). The CFG is statement-granular: each basic block holds
// an ordered list of ast.Nodes — plain statements, plus bare condition
// expressions for if/for/switch heads — and edges follow Go control
// flow through if/else, for/range loops, switch/type-switch/select,
// break/continue (with labels), goto, and return. Defer statements stay
// in the block where they execute; analyses record them into their
// abstract state so deferred effects apply only on paths that actually
// ran the defer. Calls that provably never return (panic, a method or
// function named Exit, runtime unwinding) terminate their block without
// an edge to the exit, so exit-time checks (leaked buffers, held locks)
// do not fire on crash paths.

import (
	"go/ast"
	"go/token"
)

// cfgBlock is one basic block.
type cfgBlock struct {
	id    int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock
	// isExit marks the function's single synthetic exit block.
	isExit bool
	// fellOff marks the exit edge that comes from falling off the end of
	// the function body (an implicit return).
	fellOff bool
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
}

// returnMarker is a synthetic node appended to a block when control
// falls off the end of the function body — the implicit return. It lets
// analyses run their exit checks at explicit and implicit returns alike.
type returnMarker struct {
	pos token.Pos
}

func (r returnMarker) Pos() token.Pos { return r.pos }
func (r returnMarker) End() token.Pos { return r.pos }

type loopCtx struct {
	label    string
	breakBlk *cfgBlock
	contBlk  *cfgBlock // nil for switch/select contexts
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock // nil while control is unreachable
	loops  []loopCtx
	labels map[string]*cfgBlock // goto targets
	gotos  map[string][]*cfgBlock
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		labels: map[string]*cfgBlock{},
		gotos:  map[string][]*cfgBlock{},
	}
	b.g.exit = b.newBlock()
	b.g.exit.isExit = true
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmts(body.List)
	if b.cur != nil {
		// Control falls off the end: an implicit return.
		b.cur.nodes = append(b.cur.nodes, returnMarker{pos: body.End()})
		b.cur.fellOff = true
		b.edge(b.cur, b.g.exit)
	}
	// Patch forward gotos.
	for name, srcs := range b.gotos {
		dst := b.labels[name]
		if dst == nil {
			dst = b.g.exit // unresolved label: bail conservatively
		}
		for _, s := range srcs {
			b.edge(s, dst)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
	to.preds = append(to.preds, from)
}

// startBlock finishes cur (if reachable) with an edge into a fresh
// block and makes that the current one.
func (b *cfgBuilder) startBlock() *cfgBlock {
	blk := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// findLoop resolves a break/continue target; label "" means innermost.
// wantCont selects contexts that can be continued (loops, not switches).
func (b *cfgBuilder) findLoop(label string, wantCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if wantCont && lc.contBlk == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code still gets blocks so its nodes are visited
		// (reported findings inside dead code are still findings), but
		// with no predecessor edges its in-state stays bottom.
		b.cur = b.newBlock()
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.LabeledStmt:
		target := b.startBlock()
		b.labels[st.Label.Name] = target
		b.labeledStmt(st.Label.Name, st.Stmt)
	case *ast.IfStmt:
		b.ifStmt(st)
	case *ast.ForStmt:
		b.forStmt("", st)
	case *ast.RangeStmt:
		b.rangeStmt("", st)
	case *ast.SwitchStmt:
		b.switchStmt("", st.Init, st.Tag, nil, st.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt("", st.Init, nil, st.Assign, st.Body)
	case *ast.SelectStmt:
		b.selectStmt("", st)
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(st)
	case *ast.ExprStmt:
		b.add(st)
		if isTerminalCall(st.X) {
			b.cur = nil // panic/Exit: no edge anywhere
		}
	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty, ...
		b.add(s)
	}
}

// labeledStmt dispatches a labeled loop/switch so break/continue with
// the label resolve to it; other labeled statements (goto targets) run
// normally.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ForStmt:
		b.forStmt(label, st)
	case *ast.RangeStmt:
		b.rangeStmt(label, st)
	case *ast.SwitchStmt:
		b.switchStmt(label, st.Init, st.Tag, nil, st.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(label, st.Init, nil, st.Assign, st.Body)
	case *ast.SelectStmt:
		b.selectStmt(label, st)
	default:
		b.stmt(s)
	}
}

func (b *cfgBuilder) branchStmt(st *ast.BranchStmt) {
	label := ""
	if st.Label != nil {
		label = st.Label.Name
	}
	switch st.Tok.String() {
	case "break":
		if lc := b.findLoop(label, false); lc != nil {
			b.edge(b.cur, lc.breakBlk)
		}
		b.cur = nil
	case "continue":
		if lc := b.findLoop(label, true); lc != nil {
			b.edge(b.cur, lc.contBlk)
		}
		b.cur = nil
	case "goto":
		if dst := b.labels[label]; dst != nil {
			b.edge(b.cur, dst)
		} else {
			b.gotos[label] = append(b.gotos[label], b.cur)
		}
		b.cur = nil
	case "fallthrough":
		// Handled structurally in switchStmt; nothing to do here.
	}
}

func (b *cfgBuilder) ifStmt(st *ast.IfStmt) {
	if st.Init != nil {
		b.add(st.Init)
	}
	b.add(st.Cond)
	head := b.cur
	join := b.newBlock()

	thenBlk := b.newBlock()
	thenBlk.nodes = append(thenBlk.nodes, condAssume{cond: st.Cond, val: true})
	b.edge(head, thenBlk)
	b.cur = thenBlk
	b.stmts(st.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}

	if st.Else != nil {
		elseBlk := b.newBlock()
		elseBlk.nodes = append(elseBlk.nodes, condAssume{cond: st.Cond, val: false})
		b.edge(head, elseBlk)
		b.cur = elseBlk
		b.stmt(st.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		fall := b.newBlock()
		fall.nodes = append(fall.nodes, condAssume{cond: st.Cond, val: false})
		b.edge(head, fall)
		b.edge(fall, join)
	}
	b.cur = join
}

// condAssume is a synthetic node placed at the head of each if branch
// recording the branch polarity: the condition evaluated to val on
// this path. Uses inside the condition were already processed in the
// head block; analyses consume this only for path facts (buf-own's
// `x, ok := acquire()` guard).
type condAssume struct {
	cond ast.Expr
	val  bool
}

func (c condAssume) Pos() token.Pos { return c.cond.Pos() }
func (c condAssume) End() token.Pos { return c.cond.End() }

func (b *cfgBuilder) forStmt(label string, st *ast.ForStmt) {
	if st.Init != nil {
		b.add(st.Init)
	}
	head := b.startBlock()
	if st.Cond != nil {
		b.add(st.Cond)
	}
	exit := b.newBlock()
	post := head
	if st.Post != nil {
		post = b.newBlock()
		post.nodes = append(post.nodes, st.Post)
		b.edge(post, head)
	}
	if st.Cond != nil {
		b.edge(head, exit)
	}
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.loops = append(b.loops, loopCtx{label: label, breakBlk: exit, contBlk: post})
	b.stmts(st.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	b.cur = exit
}

func (b *cfgBuilder) rangeStmt(label string, st *ast.RangeStmt) {
	head := b.startBlock()
	// The range head evaluates the operand and binds key/value; hand the
	// whole statement to the analyses as the head node (they only look
	// at the X expression and the bindings).
	head.nodes = append(head.nodes, rangeHead{st})
	exit := b.newBlock()
	b.edge(head, exit) // a range may run zero iterations
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.loops = append(b.loops, loopCtx{label: label, breakBlk: exit, contBlk: head})
	b.stmts(st.Body.List)
	b.loops = b.loops[:len(b.loops)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = exit
}

// rangeHead wraps a RangeStmt when it appears as a loop-head node, so
// analyses evaluate its operand and bindings without recursing into the
// body (the body has its own blocks).
type rangeHead struct {
	stmt *ast.RangeStmt
}

func (r rangeHead) Pos() token.Pos { return r.stmt.Pos() }
func (r rangeHead) End() token.Pos { return r.stmt.End() }

// switchStmt builds expression and type switches. tag is the tagged
// expression (nil for type switches, which carry assign instead).
func (b *cfgBuilder) switchStmt(label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	exit := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakBlk: exit})

	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			head.nodes = append(head.nodes, e)
		}
		b.edge(head, bodies[i])
	}
	if !hasDefault {
		b.edge(head, exit)
	}
	for i, cc := range clauses {
		b.cur = bodies[i]
		fallsThrough := false
		for _, cs := range cc.Body {
			if br, ok := cs.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				break
			}
			b.stmt(cs)
		}
		if b.cur != nil {
			if fallsThrough && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
			} else {
				b.edge(b.cur, exit)
			}
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = exit
}

func (b *cfgBuilder) selectStmt(label string, st *ast.SelectStmt) {
	head := b.cur
	exit := b.newBlock()
	b.loops = append(b.loops, loopCtx{label: label, breakBlk: exit})
	any := false
	for _, cs := range st.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.nodes = append(blk.nodes, cc.Comm)
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !any {
		b.edge(head, exit)
	}
	b.cur = exit
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin, or a method/function named Exit (the sim
// kernel's process exit, os.Exit). Crash paths skip exit-time checks.
func isTerminalCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		return fn.Sel.Name == "Exit" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatal"
	}
	return false
}
