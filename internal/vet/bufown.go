package vet

// buf-own: a flow-sensitive ownership/loan checker for pooled buffers.
//
// Values originating from `bufpool.Get`, `Message.TakeWire`, and
// functions annotated `vet:owned` are abstract objects in the state
// {owned, borrowed, released, escaped}; borrow-mode decodes
// (`proto.DecodeBorrow`, `DecodeBorrowInto`) mark the decoded message
// variable as holding borrowed wire data. The analysis propagates
// object sets through assignments, slicing, append/AppendEncode
// passthrough, and defers, and reports:
//
//   - double-Put: bufpool.Put on an object already released (directly
//     or via an earlier `defer bufpool.Put`);
//   - use-after-Put: reading a variable whose buffer was released on
//     some path;
//   - leak: a path to a return that neither Puts an owned buffer nor
//     transfers its ownership (SetWire, store to a field/global,
//     return), including early error returns — and, for infinite
//     server loops, re-acquiring at the same site while the previous
//     iteration's buffer is still owned;
//   - borrowed escape: borrowed wire data (Message.Data after a
//     borrow-mode decode) stored to a field/global/index or captured
//     by a closure without first detaching it with TakeWire.
//
// Ownership transfer points recognised without annotation: SetWire
// (the message takes the buffer), stores through a field/global/index
// lvalue, return operands, and closure capture. Passing a tracked
// value as a plain call argument is a loan by default — but when the
// callee has an inferred FuncSummary (see summary.go), its effects
// apply at the call site: may-released params are released (a later
// Put is a double-release), stored params are transfers (and a
// borrowed argument is a finding), and an owned result is an acquire
// the caller must discharge. `vet:owned` remains as an escape hatch
// for helpers the inference cannot see through (none in-tree today).
//
// The same analysis runs in a second role: summary inference. With
// sum/mute set, []byte parameters are seeded as tracked owned objects,
// findings are suppressed, and each return harvests the param masks
// and result object sets into the function's FuncSummary.
//
// All findings share the rule name buf-own, so deliberate sites are
// annotated `vet:ignore buf-own`.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
)

// Object state bits. Acquire and release/escape are strong updates
// (Put clears owned), so `owned` at a checkpoint means "still holding
// on some path reaching here".
const (
	stOwned uint16 = 1 << iota
	stBorrowed
	stReleased
	stEscaped
	stDeferredRel // a `defer bufpool.Put` will release it at exit
)

// maxBufObjs bounds tracked allocation sites per function; env sets
// are uint64 bitsets. Later sites go untracked (no findings on them).
const maxBufObjs = 64

// ownState is the abstract state: which objects each variable may
// hold, which borrow objects each message variable carries, and each
// object's state bits.
type ownState struct {
	env  map[types.Object]uint64
	msg  map[types.Object]uint64
	mask map[int]uint16
	// guard links an ok-variable from `buf, ok := acquire()` to the
	// objects that only exist when it is true; the branch that observes
	// ok == false un-acquires them (the callee reported failure and
	// returned no buffer).
	guard map[types.Object]uint64
}

func (s *ownState) clone() flowState {
	c := &ownState{
		env:   make(map[types.Object]uint64, len(s.env)),
		msg:   make(map[types.Object]uint64, len(s.msg)),
		mask:  make(map[int]uint16, len(s.mask)),
		guard: make(map[types.Object]uint64, len(s.guard)),
	}
	for k, v := range s.env {
		c.env[k] = v
	}
	for k, v := range s.msg {
		c.msg[k] = v
	}
	for k, v := range s.mask {
		c.mask[k] = v
	}
	for k, v := range s.guard {
		c.guard[k] = v
	}
	return c
}

func (s *ownState) join(other flowState) bool {
	o := other.(*ownState)
	changed := false
	for k, v := range o.env {
		if s.env[k]|v != s.env[k] {
			s.env[k] |= v
			changed = true
		}
	}
	for k, v := range o.msg {
		if s.msg[k]|v != s.msg[k] {
			s.msg[k] |= v
			changed = true
		}
	}
	for k, v := range o.mask {
		if s.mask[k]|v != s.mask[k] {
			s.mask[k] |= v
			changed = true
		}
	}
	for k, v := range o.guard {
		if s.guard[k]|v != s.guard[k] {
			s.guard[k] |= v
			changed = true
		}
	}
	return changed
}

// bufOwn is the per-function analysis instance.
type bufOwn struct {
	c  *checker
	fd *ast.FuncDecl
	// sites maps an acquire call position to its object id; ids are
	// stable across fixed-point iterations.
	sites map[token.Pos]int
	pos   []token.Pos // object id → acquire position
	what  []string    // object id → human name of the source
	rep   map[string]bool
	// mute suppresses findings (summary-inference mode).
	mute bool
	// cur holds the in-flight summaries of the enclosing SCC during
	// summary inference, consulted before the shared table.
	cur map[string]*FuncSummary
	// sum collects the function's own summary when non-nil.
	sum *sumBuilder
}

// sumBuilder accumulates one function's summary during inference.
type sumBuilder struct {
	// idParam maps a tracked object id back to the parameter index it
	// was seeded from.
	idParam map[int]int
	out     *FuncSummary
}

// checkBufOwn runs the ownership analysis over every function in the
// file.
func (c *checker) checkBufOwn(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		a := &bufOwn{
			c:     c,
			fd:    fd,
			sites: map[token.Pos]int{},
			rep:   map[string]bool{},
		}
		a.run()
	}
}

func (a *bufOwn) run() {
	g := buildCFG(a.fd.Body)
	if a.sum == nil {
		a.c.stats.Funcs++
		a.c.stats.Blocks += len(g.blocks)
	}
	entry := &ownState{env: map[types.Object]uint64{}, msg: map[types.Object]uint64{}, mask: map[int]uint16{}, guard: map[types.Object]uint64{}}
	if a.sum != nil {
		a.seedParams(entry)
	}
	runFlow(g, entry, func(fs flowState, blk *cfgBlock, idx int, report bool) {
		a.node(fs.(*ownState), blk.nodes[idx], report)
	})
}

// seedParams makes every []byte parameter a tracked owned object so
// releases and escapes of it surface in the summary's param effects.
func (a *bufOwn) seedParams(st *ownState) {
	if a.fd.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range a.fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++
			continue
		}
		for _, nm := range field.Names {
			if nm.Name != "_" {
				if o := a.c.pkg.Info.Defs[nm]; o != nil && isByteSlice(o.Type()) {
					if id := a.site(nm.Pos(), "param "+nm.Name); id >= 0 {
						st.env[o] = 1 << uint(id)
						st.mask[id] = stOwned
						a.sum.idParam[id] = idx
					}
				}
			}
			idx++
		}
	}
}

// harvestParams records, at one exit, which seeded params were released
// or stored on some path reaching it.
func (a *bufOwn) harvestParams(st *ownState) {
	for id, pi := range a.sum.idParam {
		m := st.mask[id]
		if pi >= a.sum.out.NumParams {
			continue
		}
		if m&(stReleased|stDeferredRel) != 0 {
			a.sum.out.ParamReleases[pi] = true
		}
		if m&stEscaped != 0 {
			a.sum.out.ParamStores[pi] = true
		}
	}
}

// harvestResults records which return operands carry an owned non-param
// buffer (params returned to the caller are aliases, not transfers of
// pool responsibility).
func (a *bufOwn) harvestResults(st *ownState, sets []uint64) {
	for i, set := range sets {
		if i >= len(a.sum.out.ResultOwned) {
			break
		}
		for id := 0; id < len(a.pos); id++ {
			if set&(1<<uint(id)) == 0 {
				continue
			}
			if _, isParam := a.sum.idParam[id]; isParam {
				continue
			}
			if st.mask[id]&stOwned != 0 {
				a.sum.out.ResultOwned[i] = true
			}
		}
	}
}

// isByteSlice reports whether t is a slice of bytes.
func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// reportOnce files a finding once per deduplication key.
func (a *bufOwn) reportOnce(key string, pos token.Pos, format string, args ...any) {
	if a.mute || a.rep[key] {
		return
	}
	a.rep[key] = true
	a.c.report(pos, "buf-own", format, args...)
}

// site returns the object id for an acquire site, allocating on first
// encounter; -1 when the per-function budget is exhausted.
func (a *bufOwn) site(pos token.Pos, what string) int {
	if id, ok := a.sites[pos]; ok {
		return id
	}
	if len(a.pos) >= maxBufObjs {
		return -1
	}
	id := len(a.pos)
	a.sites[pos] = id
	a.pos = append(a.pos, pos)
	a.what = append(a.what, what)
	return id
}

func (a *bufOwn) objectOf(id *ast.Ident) types.Object {
	if o := a.c.pkg.Info.Defs[id]; o != nil {
		return o
	}
	return a.c.pkg.Info.Uses[id]
}

// isPkgIdent reports whether x denotes the package with the given
// import path (or, when type resolution degraded, base name).
func (a *bufOwn) isPkgIdent(x ast.Expr, importPath string) bool {
	id, ok := x.(*ast.Ident)
	if !ok {
		return false
	}
	if o, ok := a.c.pkg.Info.Uses[id]; ok {
		pn, ok := o.(*types.PkgName)
		if !ok {
			return false
		}
		p := pn.Imported().Path()
		return p == importPath || path.Base(p) == path.Base(importPath)
	}
	return id.Name == path.Base(importPath)
}

func (a *bufOwn) isBufpoolCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name && a.isPkgIdent(sel.X, a.c.cfg.BufPoolPackage)
}

func (a *bufOwn) isProtoCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name && a.isPkgIdent(sel.X, a.c.cfg.ProtoPackage)
}

// isMethodCall matches `<recv>.<name>(...)` where recv is a value, not
// a package qualifier.
func (a *bufOwn) isMethodCall(call *ast.CallExpr, name string) (*ast.SelectorExpr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if o, ok := a.c.pkg.Info.Uses[id]; ok {
			if _, isPkg := o.(*types.PkgName); isPkg {
				return nil, false
			}
		}
	}
	return sel, true
}

// isOwnedCall reports whether the callee carries a vet:owned doc
// directive (its first result transfers ownership to the caller).
func (a *bufOwn) isOwnedCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return false
	}
	o := a.c.pkg.Info.Uses[id]
	return o != nil && a.c.ownedFuncs[o]
}

// calleeSummary resolves the call's static callee and returns its
// inferred summary when one changes caller behaviour: the in-flight
// SCC iterate first (summary mode), then the shared table. Dynamic
// dispatch and unknown callees return nil — the loan fallback.
func (a *bufOwn) calleeSummary(call *ast.CallExpr) *FuncSummary {
	fn := staticCallee(a.c.pkg.Info, call)
	if fn == nil {
		return nil
	}
	key := funcKey(fn)
	if a.cur != nil {
		if s, ok := a.cur[key]; ok {
			if s.interesting() {
				return s
			}
			return nil
		}
	}
	if s := a.c.summaries.Lookup(key); s != nil && s.interesting() {
		return s
	}
	return nil
}

// acquire allocates (or revisits) the abstract object for an acquire
// site, reporting the loop-leak when the previous iteration's buffer
// at this site is still owned.
func (a *bufOwn) acquire(st *ownState, pos token.Pos, what string, report bool) uint64 {
	id := a.site(pos, what)
	if id < 0 {
		return 0
	}
	if m := st.mask[id]; report && m&stOwned != 0 && m&stDeferredRel == 0 {
		a.reportOnce("loop:"+what+posKey(a.c, pos), pos,
			"%s re-acquired here while a previous acquisition from the same site is still owned — a prior loop iteration neither released it (bufpool.Put) nor transferred ownership", what)
	}
	st.mask[id] = stOwned
	return 1 << uint(id)
}

func posKey(c *checker, pos token.Pos) string {
	return c.pkg.Fset.Position(pos).String()
}

// release applies bufpool.Put to every object in S.
func (a *bufOwn) release(st *ownState, s uint64, pos token.Pos, deferred bool, report bool) {
	for id := 0; id < len(a.pos); id++ {
		if s&(1<<uint(id)) == 0 {
			continue
		}
		m := st.mask[id]
		if report && m&(stReleased|stDeferredRel) != 0 {
			a.reportOnce("dput:"+posKey(a.c, pos), pos,
				"double release: %s (from %s) is already returned to the pool on some path reaching this bufpool.Put",
				a.what[id], posKey(a.c, a.pos[id]))
		}
		if deferred {
			st.mask[id] = m | stDeferredRel
		} else {
			st.mask[id] = m&^stOwned | stReleased
		}
	}
}

// escape marks every owned object in S as transferred out of the
// function's responsibility. When flagBorrowed is set, borrowed wire
// data in S is a finding (stored/captured without TakeWire).
func (a *bufOwn) escape(st *ownState, s uint64, pos token.Pos, flagBorrowed bool, how string, report bool) {
	for id := 0; id < len(a.pos); id++ {
		if s&(1<<uint(id)) == 0 {
			continue
		}
		m := st.mask[id]
		if report && flagBorrowed && m&stBorrowed != 0 {
			a.reportOnce("besc:"+posKey(a.c, pos), pos,
				"borrowed wire data (from %s) %s without TakeWire; the pool may recycle the buffer under the reader — detach it first",
				a.what[id], how)
		}
		if m&stOwned != 0 {
			st.mask[id] = m&^stOwned | stEscaped
		}
	}
}

// useCheck flags reads of released buffers.
func (a *bufOwn) useCheck(st *ownState, s uint64, pos token.Pos, report bool) {
	if !report {
		return
	}
	for id := 0; id < len(a.pos); id++ {
		if s&(1<<uint(id)) == 0 {
			continue
		}
		if st.mask[id]&stReleased != 0 {
			a.reportOnce("uap:"+posKey(a.c, pos), pos,
				"use after release: %s (from %s) was returned to the pool on some path reaching this read",
				a.what[id], posKey(a.c, a.pos[id]))
		}
	}
}

// exitCheck reports owned objects that reach a return unreleased.
func (a *bufOwn) exitCheck(st *ownState, where token.Pos, report bool) {
	if !report {
		return
	}
	line := a.c.pkg.Fset.Position(where).Line
	for id := 0; id < len(a.pos); id++ {
		m := st.mask[id]
		if m&stOwned != 0 && m&stDeferredRel == 0 {
			a.reportOnce("leak:"+posKey(a.c, a.pos[id]), a.pos[id],
				"%s leaks: the path to the return on line %d neither releases it (bufpool.Put) nor transfers ownership (SetWire, store, return)",
				a.what[id], line)
		}
	}
}

// node is the transfer function for one CFG node.
func (a *bufOwn) node(st *ownState, n ast.Node, report bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		a.assign(st, s.Lhs, s.Rhs, report)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, nm := range vs.Names {
				lhs[i] = nm
			}
			a.assign(st, lhs, vs.Values, report)
		}
	case *ast.ReturnStmt:
		sets := make([]uint64, len(s.Results))
		for i, r := range s.Results {
			sets[i] = a.eval(st, r, report, true)
		}
		if a.sum != nil {
			// Harvest before the return-escape below: a param returned to
			// the caller is an alias, not a store.
			a.harvestParams(st)
			a.harvestResults(st, sets)
		}
		for i, r := range s.Results {
			a.escape(st, sets[i], r.Pos(), false, "returned", report)
		}
		a.exitCheck(st, s.Pos(), report)
	case returnMarker:
		if a.sum != nil {
			a.harvestParams(st)
		}
		a.exitCheck(st, s.Pos(), report)
	case *ast.DeferStmt:
		a.deferStmt(st, s, report)
	case *ast.GoStmt:
		a.eval(st, s.Call, report, true)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			set := a.eval(st, call, report, true)
			if set != 0 && report {
				// An acquire whose result is thrown away can never be
				// released.
				a.reportOnce("disc:"+posKey(a.c, call.Pos()), call.Pos(),
					"pooled buffer acquired and immediately discarded; bind the result and release it with bufpool.Put (or transfer ownership)")
			}
			return
		}
		a.eval(st, s.X, report, true)
	case *ast.IncDecStmt:
		a.eval(st, s.X, report, true)
	case *ast.SendStmt:
		a.eval(st, s.Chan, report, true)
		set := a.eval(st, s.Value, report, true)
		a.escape(st, set, s.Value.Pos(), true, "sent on a channel", report)
	case rangeHead:
		a.eval(st, s.stmt.X, report, true)
	case condAssume:
		a.assume(st, s)
	case ast.Expr:
		a.eval(st, s, report, true)
	}
}

// assume consumes a branch-polarity fact. When the condition is (a
// negation chain over) a guarded ok-variable — or a nil comparison of
// a guarded err-variable — and this path observed the acquire to have
// failed, the objects do not exist here and are un-acquired.
func (a *bufOwn) assume(st *ownState, c condAssume) {
	cond, val := c.cond, c.val
	for {
		if p, ok := cond.(*ast.ParenExpr); ok {
			cond = p.X
			continue
		}
		if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
			cond, val = u.X, !val
			continue
		}
		break
	}
	// `err != nil` observed true is the failure branch: normalize the
	// comparison to the ok-convention (true means the acquire succeeded).
	if be, ok := cond.(*ast.BinaryExpr); ok && (be.Op == token.EQL || be.Op == token.NEQ) {
		isNil := func(e ast.Expr) bool {
			id, ok := unparen(e).(*ast.Ident)
			return ok && id.Name == "nil"
		}
		switch {
		case isNil(be.Y):
			cond = unparen(be.X)
		case isNil(be.X):
			cond = unparen(be.Y)
		default:
			return
		}
		if be.Op == token.NEQ {
			val = !val
		}
	}
	id, ok := cond.(*ast.Ident)
	if !ok {
		return
	}
	o := a.objectOf(id)
	if o == nil {
		return
	}
	set, guarded := st.guard[o]
	if !guarded {
		return
	}
	delete(st.guard, o)
	if val {
		return
	}
	for idx := 0; idx < len(a.pos); idx++ {
		if set&(1<<uint(idx)) != 0 {
			st.mask[idx] &^= stOwned
		}
	}
}

// assign handles `lhs... = rhs...` including multi-value calls.
func (a *bufOwn) assign(st *ownState, lhs, rhs []ast.Expr, report bool) {
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		// `m, err := proto.DecodeBorrow(buf)`: the message variable
		// carries borrowed wire data.
		if a.isProtoCall(call, "DecodeBorrow") {
			for _, arg := range call.Args {
				a.eval(st, arg, report, true)
			}
			a.bindBorrow(st, lhs[0], call.Pos())
			a.clear(st, lhs[1:])
			return
		}
		set := a.eval(st, call, report, true)
		a.bind(st, lhs[0], set, report)
		a.clear(st, lhs[1:])
		// `buf, ok := acquire()`: the buffer is conditional on ok —
		// the branch observing ok == false un-acquires it.
		if set != 0 && len(lhs) == 2 {
			if id, ok := lhs[1].(*ast.Ident); ok && id.Name != "_" {
				if o := a.objectOf(id); o != nil {
					st.guard[o] = set
				}
			}
		}
		return
	}
	sets := make([]uint64, len(lhs))
	for i := range lhs {
		if i < len(rhs) {
			sets[i] = a.eval(st, rhs[i], report, true)
		}
	}
	for i := range lhs {
		a.bind(st, lhs[i], sets[i], report)
	}
}

// bindBorrow attaches a fresh borrow object to a decoded message
// variable.
func (a *bufOwn) bindBorrow(st *ownState, lhs ast.Expr, at token.Pos) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	o := a.objectOf(id)
	if o == nil {
		return
	}
	b := a.site(at, "borrow-decoded wire data")
	if b < 0 {
		return
	}
	st.mask[b] = stBorrowed
	st.msg[o] = 1 << uint(b)
}

// bind stores an object set into an lvalue. Identifiers get a strong
// update; field/global/index stores are ownership-transfer points.
func (a *bufOwn) bind(st *ownState, lhs ast.Expr, set uint64, report bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		o := a.objectOf(l)
		if o == nil {
			return
		}
		if v, ok := o.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// A package-level variable outlives the frame: storing there
			// transfers ownership, exactly like a field store.
			a.escape(st, set, l.Pos(), true, "stored to "+l.Name, report)
			return
		}
		if set == 0 {
			delete(st.env, o)
		} else {
			st.env[o] = set
		}
		delete(st.msg, o)
		delete(st.guard, o)
	default:
		// owner.buf = x, globalTable[i] = x, *p = x: the value leaves
		// the function's frame.
		a.eval(st, lhs, report, false)
		a.escape(st, set, lhs.Pos(), true, "stored to "+types.ExprString(lhs), report)
	}
}

// clear strongly drops bindings for the trailing results of a
// multi-value assignment (err variables and friends).
func (a *bufOwn) clear(st *ownState, lhs []ast.Expr) {
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if o := a.objectOf(id); o != nil {
				delete(st.env, o)
				delete(st.msg, o)
				delete(st.guard, o)
			}
		}
	}
}

func (a *bufOwn) deferStmt(st *ownState, s *ast.DeferStmt, report bool) {
	// `defer bufpool.Put(x)` releases at every exit from here on.
	if a.isBufpoolCall(s.Call, "Put") && len(s.Call.Args) == 1 {
		set := a.eval(st, s.Call.Args[0], report, false)
		a.release(st, set, s.Call.Pos(), true, report)
		return
	}
	// `defer func() { ...; bufpool.Put(x); ... }()`: scan the literal
	// for direct Puts of tracked variables.
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !a.isBufpoolCall(call, "Put") || len(call.Args) != 1 {
				return true
			}
			if id, ok := call.Args[0].(*ast.Ident); ok {
				if o := a.objectOf(id); o != nil {
					a.release(st, st.env[o], call.Pos(), true, report)
				}
			}
			return true
		})
		return
	}
	a.eval(st, s.Call, report, true)
}

// eval computes the object set an expression may evaluate to, applying
// call effects along the way. use gates the use-after-release check on
// identifier reads (release sites check double-Put instead).
func (a *bufOwn) eval(st *ownState, e ast.Expr, report, use bool) uint64 {
	switch x := e.(type) {
	case *ast.Ident:
		o := a.objectOf(x)
		if o == nil {
			return 0
		}
		set := st.env[o]
		if use {
			a.useCheck(st, set, x.Pos(), report)
		}
		return set
	case *ast.CallExpr:
		return a.evalCall(st, x, report)
	case *ast.SelectorExpr:
		// m.Data after a borrow-mode decode is the borrowed wire slice.
		if x.Sel.Name == "Data" {
			if id, ok := x.X.(*ast.Ident); ok {
				if o := a.objectOf(id); o != nil {
					if set := st.msg[o]; set != 0 {
						return set
					}
				}
			}
		}
		a.eval(st, x.X, report, use)
		return 0
	case *ast.SliceExpr:
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b != nil {
				a.eval(st, b, report, true)
			}
		}
		// Reslicing preserves identity: buf[:0] is still the pooled
		// buffer.
		return a.eval(st, x.X, report, use)
	case *ast.IndexExpr:
		a.eval(st, x.Index, report, true)
		a.eval(st, x.X, report, use)
		return 0
	case *ast.ParenExpr:
		return a.eval(st, x.X, report, use)
	case *ast.StarExpr:
		return a.eval(st, x.X, report, use)
	case *ast.UnaryExpr:
		return a.eval(st, x.X, report, use)
	case *ast.TypeAssertExpr:
		return a.eval(st, x.X, report, use)
	case *ast.BinaryExpr:
		a.eval(st, x.X, report, true)
		a.eval(st, x.Y, report, true)
		return 0
	case *ast.CompositeLit:
		// Placing a tracked value in a composite literal is a loan to
		// whoever consumes the literal (the caller still releases), so
		// elements are uses, not transfers.
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				a.eval(st, kv.Value, report, true)
				continue
			}
			a.eval(st, el, report, true)
		}
		return 0
	case *ast.FuncLit:
		a.closure(st, x, report)
		return 0
	case *ast.KeyValueExpr:
		a.eval(st, x.Value, report, true)
		return 0
	}
	return 0
}

func (a *bufOwn) evalCall(st *ownState, call *ast.CallExpr, report bool) uint64 {
	switch {
	case a.isBufpoolCall(call, "Get"):
		for _, arg := range call.Args {
			a.eval(st, arg, report, true)
		}
		return a.acquire(st, call.Pos(), "bufpool.Get buffer", report)

	case a.isBufpoolCall(call, "Put"):
		var set uint64
		if len(call.Args) == 1 {
			set = a.eval(st, call.Args[0], report, false)
		}
		a.release(st, set, call.Pos(), false, report)
		return 0

	case a.isProtoCall(call, "DecodeBorrowInto"):
		for _, arg := range call.Args {
			a.eval(st, arg, report, true)
		}
		if len(call.Args) >= 1 {
			a.bindBorrow(st, call.Args[0], call.Pos())
		}
		return 0

	case a.isProtoCall(call, "DecodeBorrow"):
		// Result unused or single-assigned without the err: still
		// evaluate operands; the borrow link is made in assign().
		for _, arg := range call.Args {
			a.eval(st, arg, report, true)
		}
		return 0
	}

	if sel, ok := a.isMethodCall(call, "TakeWire"); ok && len(call.Args) == 0 {
		// The caller now owns the detached wire buffer; the message's
		// borrow link is resolved.
		a.eval(st, sel.X, report, true)
		if id, ok := sel.X.(*ast.Ident); ok {
			if o := a.objectOf(id); o != nil {
				delete(st.msg, o)
			}
		}
		return a.acquire(st, call.Pos(), "TakeWire buffer", report)
	}

	if sel, ok := a.isMethodCall(call, "SetWire"); ok && len(call.Args) == 1 {
		// The message takes the buffer; its consumer releases via
		// TakeWire.
		a.eval(st, sel.X, report, true)
		set := a.eval(st, call.Args[0], report, true)
		a.escape(st, set, call.Pos(), false, "", report)
		return 0
	}

	if sel, ok := a.isMethodCall(call, "AppendEncode"); ok && len(call.Args) == 1 {
		// The result aliases (extends) the destination buffer.
		a.eval(st, sel.X, report, true)
		return a.eval(st, call.Args[0], report, true)
	}

	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		for _, arg := range call.Args[1:] {
			a.eval(st, arg, report, true)
		}
		return a.eval(st, call.Args[0], report, true)
	}

	if a.isOwnedCall(call) {
		for _, arg := range call.Args {
			a.eval(st, arg, report, true)
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			a.eval(st, sel.X, report, true)
		}
		return a.acquire(st, call.Pos(), "vet:owned "+calleeName(call)+" buffer", report)
	}

	// A callee with an inferred summary applies its effects here: a
	// may-released param argument is treated as released (a later Put
	// is a double-release), a stored param is an ownership transfer
	// (borrowed wire data passed there is a finding), and an owned
	// first result is an acquire the caller must discharge.
	if s := a.calleeSummary(call); s != nil {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			a.eval(st, sel.X, report, true)
		}
		for i, arg := range call.Args {
			set := a.eval(st, arg, report, true)
			if set == 0 || i >= s.NumParams {
				continue
			}
			if s.ParamStores[i] {
				a.escape(st, set, arg.Pos(), true, "passed to "+calleeName(call)+", which stores it", report)
			}
			if s.ParamReleases[i] {
				a.release(st, set, arg.Pos(), false, report)
			}
		}
		if len(s.ResultOwned) > 0 && s.ResultOwned[0] {
			return a.acquire(st, call.Pos(), calleeName(call)+" result buffer", report)
		}
		return 0
	}

	// Generic call: every operand is a loan; ownership stays put.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		a.eval(st, sel.X, report, true)
	}
	for _, arg := range call.Args {
		a.eval(st, arg, report, true)
	}
	return 0
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return "call"
}

// closure handles a function literal: captured owned buffers escape
// (the literal may run at any time), and captured borrowed wire data
// is a finding — by the time the closure runs, the pool may have
// recycled the buffer.
func (a *bufOwn) closure(st *ownState, lit *ast.FuncLit, report bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.SelectorExpr:
			if m.Sel.Name != "Data" {
				return true
			}
			id, ok := m.X.(*ast.Ident)
			if !ok {
				return true
			}
			o := a.objectOf(id)
			if o == nil {
				return true
			}
			if set := st.msg[o]; set != 0 && report {
				a.reportOnce("bcap:"+posKey(a.c, m.Pos()), m.Pos(),
					"borrowed wire data %s.Data captured by a closure without TakeWire; detach the buffer before deferring work that reads it",
					id.Name)
			}
		case *ast.Ident:
			if o := a.objectOf(m); o != nil {
				if set := st.env[o]; set != 0 {
					a.escape(st, set, m.Pos(), false, "", report)
				}
			}
		}
		return true
	})
}
