package vet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// analyze parses named fixture sources as one package and runs the
// rules with the fixture path standing in for every scoped package.
func analyze(t *testing.T, pkgPath string, sources map[string]string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range sources {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	pkg := NewPackage(fset, pkgPath, files, nil)
	cfg := &Config{
		PVPackages:           []string{pkgPath},
		DeterminismPackages:  []string{pkgPath},
		PageBufferPackages:   []string{pkgPath},
		PageBufferAllow:      []string{"access.go"},
		HotAllocPackages:     []string{pkgPath},
		ErrDropPackages:      []string{pkgPath},
		PolicyBranchPackages: []string{pkgPath},
		PolicyBranchAllow:    []string{"engine.go"},
		ModelBranchAllow:     []string{"model.go"},
		BufOwnPackages:       []string{pkgPath},
		BufPoolPackage:       "repro/internal/bufpool",
		ProtoPackage:         "repro/internal/proto",
	}
	return Check(pkg, cfg)
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func wantRule(t *testing.T, fs []Finding, rule string, substr string) {
	t.Helper()
	for _, f := range fs {
		if f.Rule == rule && strings.Contains(f.Msg, substr) {
			return
		}
	}
	t.Fatalf("no %s finding containing %q; got %v", rule, substr, fs)
}

func wantClean(t *testing.T, fs []Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Fatalf("expected no findings, got %v", fs)
	}
}

func TestUnpairedPFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

type sema struct{}

func (s *sema) P(x int) {}
func (s *sema) V()      {}

type mod struct{ lock *sema }

func (m *mod) leaky(x int) {
	m.lock.P(x)
	// no V: the simulation deadlocks on the next acquirer
}

func (m *mod) balanced(x int) {
	m.lock.P(x)
	defer m.lock.V()
}

func (m *mod) twoLocks(a, b *sema, x int) {
	a.P(x)
	b.P(x)
	defer a.V()
	b.V()
}
`})
	wantRule(t, fs, "lock-pairing", "m.lock.P")
	if len(fs) != 1 {
		t.Fatalf("want exactly the one leak, got %v", fs)
	}
}

func TestPVImplementationsExempt(t *testing.T) {
	wantClean(t, analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

type inner struct{ n int }
type Service struct{ i inner }

// P is the semaphore implementation itself: it legitimately "acquires"
// without releasing.
func (s *Service) P(x int) { s.i.n-- }
func (s *Service) V()      { s.i.n++ }
`}))
}

func TestWallClockFlagged(t *testing.T) {
	fs := analyze(t, "fixture/sim", map[string]string{"a.go": `
package sim

import "time"

func bad() int64 { return time.Now().UnixNano() }

func fine() time.Duration { return 3 * time.Millisecond }
`})
	wantRule(t, fs, "time", "time.Now")
	if len(fs) != 1 {
		t.Fatalf("constants and types of package time must stay legal: %v", fs)
	}
}

func TestGlobalRandFlaggedSeededAllowed(t *testing.T) {
	fs := analyze(t, "fixture/sim", map[string]string{"a.go": `
package sim

import "math/rand"

func bad() int { return rand.Intn(6) }

func fine(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
`})
	wantRule(t, fs, "rand", "rand.Intn")
	if len(fs) != 1 {
		t.Fatalf("seeded construction must stay legal: %v", fs)
	}
}

func TestMapRangeFlaggedUnlessAnnotated(t *testing.T) {
	fs := analyze(t, "fixture/sim", map[string]string{"a.go": `
package sim

func bad(m map[int]string) {
	for k := range m {
		_ = k
	}
}

func annotated(m map[int]string) {
	total := 0
	for k := range m { // vet:ignore map-order — summation commutes
		total += k
	}
	_ = total
}

func slices(s []int) {
	for i := range s {
		_ = i
	}
}
`})
	wantRule(t, fs, "map-order", "range over map m")
	if len(fs) != 1 {
		t.Fatalf("annotation or slice range wrongly flagged: %v", fs)
	}
}

func TestBareChannelSendFlaggedUnlessAnnotated(t *testing.T) {
	fs := analyze(t, "fixture/sim", map[string]string{"a.go": `
package sim

type msg struct{}

func bad(ch chan msg) {
	ch <- msg{} // scheduler-ordered handoff
}

func rendezvous(yield chan msg) {
	yield <- msg{} // vet:ignore chan-send — kernel⇄process rendezvous
}

func receivesAreFine(ch chan msg) msg {
	return <-ch
}
`})
	wantRule(t, fs, "chan-send", "ch <-")
	if len(fs) != 1 {
		t.Fatalf("annotated send or receive wrongly flagged: %v", fs)
	}
}

func TestSelectDefaultFlagged(t *testing.T) {
	fs := analyze(t, "fixture/netsim", map[string]string{"a.go": `
package netsim

func bad(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default: // non-blocking poll: result depends on real-time interleaving
		return -1
	}
}

func blockingSelectFine(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
`})
	wantRule(t, fs, "select-default", "default clause")
	if len(fs) != 1 {
		t.Fatalf("blocking select wrongly flagged: %v", fs)
	}
}

func TestPageBufferIndexingFlaggedOutsideAccessLayer(t *testing.T) {
	fixture := map[string]string{
		"state.go": `
package dsm

type localPage struct {
	data   []byte
	access int
}
`,
		"proto.go": `
package dsm

func smuggle(lp *localPage) byte {
	lp.data[3] = 1     // direct index outside the access layer
	_ = lp.data[4:8]   // and a direct slice
	return lp.data[0]
}

func legal(lp *localPage) int {
	return len(lp.data) // len is not an access
}
`,
		"access.go": `
package dsm

func gateway(lp *localPage, i int) byte { return lp.data[i] }
`,
	}
	fs := analyze(t, "fixture/dsm", fixture)
	wantRule(t, fs, "page-buffer", "lp.data")
	if len(fs) != 3 {
		t.Fatalf("want the 3 smuggled accesses only, got %v (%v)", rules(fs), fs)
	}
}

func TestNonExhaustiveEnumSwitchFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

type Access int

const (
	NoAccess Access = iota
	ReadAccess
	WriteAccess
)

func bad(a Access) string {
	switch a {
	case NoAccess:
		return "none"
	case ReadAccess:
		return "read"
	}
	return "?"
}

func withDefault(a Access) string {
	switch a {
	case NoAccess:
		return "none"
	default:
		return "other"
	}
}

func exhaustive(a Access) string {
	switch a {
	case NoAccess, ReadAccess:
		return "r"
	case WriteAccess:
		return "w"
	}
	return "?"
}
`})
	wantRule(t, fs, "enum-switch", "WriteAccess")
	if len(fs) != 1 {
		t.Fatalf("default or exhaustive switches wrongly flagged: %v", fs)
	}
}

func TestFindingsSortedAndFormatted(t *testing.T) {
	fs := analyze(t, "fixture/sim", map[string]string{"a.go": `
package sim

import "time"

func b() { _ = time.Now(); _ = time.Now() }
`})
	if len(fs) != 2 {
		t.Fatalf("want 2, got %v", fs)
	}
	if fs[0].Pos.Column >= fs[1].Pos.Column {
		t.Fatalf("findings not sorted: %v", fs)
	}
	if !strings.Contains(fs[0].String(), "a.go") || !strings.Contains(fs[0].String(), "[time]") {
		t.Fatalf("finding format: %q", fs[0].String())
	}
}

func TestHotAllocFlagged(t *testing.T) {
	fs := analyze(t, "fixture/remoteop", map[string]string{"a.go": `
package remoteop

type msg struct{}

func (m *msg) Encode() ([]byte, error)             { return nil, nil }
func (m *msg) AppendEncode(d []byte) ([]byte, error) { return d, nil }

func send(m *msg) {
	wire := make([]byte, 8192)
	enc, _ := m.Encode()
	_, _ = wire, enc
}

func pooled(m *msg) {
	scratch := make([]byte, 64) // vet:ignore hot-alloc — fixture's sanctioned site
	enc, _ := m.AppendEncode(scratch[:0])
	_ = enc
}

func notBytes() {
	ints := make([]int, 8)   // other element types are fine
	twoD := make([][]byte, 4) // a slice of slices is bookkeeping, not a buffer
	_, _ = ints, twoD
}
`})
	wantRule(t, fs, "hot-alloc", "make([]byte, ...)")
	wantRule(t, fs, "hot-alloc", "m.Encode()")
	if len(fs) != 2 {
		t.Fatalf("want exactly the unannotated make and Encode, got %v", fs)
	}
}

func TestHotAllocScopedToConfiguredPackages(t *testing.T) {
	src := map[string]string{"a.go": `
package other

func alloc() []byte { return make([]byte, 1024) }
`}
	// The shared analyze helper scopes every rule to the fixture path,
	// so build the config by hand with hot-alloc pointed elsewhere.
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src["a.go"], parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := NewPackage(fset, "fixture/other", []*ast.File{f}, nil)
	fs := Check(pkg, &Config{HotAllocPackages: []string{"fixture/remoteop"}})
	wantClean(t, fs)
}

func TestHotAllocSkipsPackageQualifiedEncode(t *testing.T) {
	fs := analyze(t, "fixture/netsim", map[string]string{"a.go": `
package netsim

import "encoding/json"

type codec struct{}

func (codec) Encode() {}

func ok() {
	var enc *json.Encoder
	_ = enc
}
`})
	wantClean(t, fs)
}

func TestErrDropFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

import "errors"

type ep struct{}

func (e *ep) Call() (int, error)  { return 0, errors.New("x") }
func (e *ep) Notify() error       { return nil }
func (e *ep) Fire()               {}

func drops(e *ep) {
	e.Notify()           // statement drop: error vanishes
	_ = e.Notify()       // blank assignment drop
	_, _ = e.Call()      // every result blanked, one is an error
	e.Fire()             // no error result: fine
	v, _ := e.Call()     // error blanked but a result is bound: out of scope
	_ = v
}
`})
	if got := len(fs); got != 3 {
		t.Fatalf("want 3 err-drop findings, got %d: %v", got, fs)
	}
	wantRule(t, fs, "err-drop", "call statement e.Notify")
	wantRule(t, fs, "err-drop", "blank assignment of e.Notify")
	wantRule(t, fs, "err-drop", "blank assignment of e.Call")
}

func TestErrDropAnnotatedSitesPass(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

import "errors"

type ep struct{}

func (e *ep) Notify() error { return nil }

func fireAndForget(e *ep) {
	_ = e.Notify() // vet:ignore err-drop — the requester times out and re-faults
	var err = errors.New("handled")
	_ = err
}
`})
	wantClean(t, fs)
}

func TestPolicyBranchFlaggedOutsideEngineDispatch(t *testing.T) {
	fixture := map[string]string{
		"state.go": `
package dsm

type Policy int

const (
	PolicyMRSW Policy = iota
	PolicyCentral
)

type Config struct{ Policy Policy }

type mod struct{ cfg Config }
`,
		"proto.go": `
package dsm

func scattered(m *mod) int {
	if m.cfg.Policy == PolicyCentral { // second dispatch point
		return 1
	}
	if m.cfg.Policy != PolicyMRSW { // and its negation
		return 2
	}
	switch m.cfg.Policy { // and a switch
	case PolicyMRSW:
		return 3
	default:
		return 4
	}
}

func legal(m *mod) Policy {
	p := m.cfg.Policy // reading the field is fine; branching on it is not
	return p
}
`,
		"engine.go": `
package dsm

func newEngine(m *mod) int {
	switch m.cfg.Policy { // the one sanctioned dispatch point
	case PolicyCentral:
		return 1
	default:
		return 0
	}
}
`,
	}
	fs := analyze(t, "fixture/dsm", fixture)
	wantRule(t, fs, "policy-branch", "m.cfg.Policy == PolicyCentral")
	wantRule(t, fs, "policy-branch", "m.cfg.Policy != PolicyMRSW")
	wantRule(t, fs, "policy-branch", "switch over m.cfg.Policy")
	if len(fs) != 3 {
		t.Fatalf("want the 3 scattered branches only, got %v (%v)", rules(fs), fs)
	}
}

func TestPolicyBranchIgnoresOtherPolicyFields(t *testing.T) {
	wantClean(t, analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

type retryPolicy struct{ Policy string }

func unrelated(r retryPolicy) bool {
	return r.Policy == "exponential" // a string field that merely shares the name
}
`}))
}

func TestPolicyBranchAnnotatedSitePasses(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

type Policy int

const (
	PolicyMRSW Policy = iota
	PolicyCentral
)

type Config struct{ Policy Policy }

func describe(c Config) string {
	if c.Policy == PolicyCentral { // vet:ignore policy-branch — diagnostics only
		return "central"
	}
	return "mrsw"
}
`})
	wantClean(t, fs)
}

func TestErrDropScopedToConfiguredPackages(t *testing.T) {
	src := map[string]string{"a.go": `
package other

import "errors"

func oops() error { return errors.New("x") }

func f() {
	oops()
}
`}
	fset := token.NewFileSet()
	var files []*ast.File
	for name, s := range src {
		f, err := parser.ParseFile(fset, name, s, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg := NewPackage(fset, "fixture/other", files, nil)
	fs := Check(pkg, &Config{ErrDropPackages: []string{"fixture/dsm"}})
	wantClean(t, fs)
}
