package vet

// lock-order: module-global deadlock analysis over the simulation's
// blocking primitives. Per function, a CFG walk tracks the set of lock
// classes that may be held at each program point and records three
// kinds of facts:
//
//   - acquires with the held-set at the acquire site (the classic
//     A-held-while-taking-B edge);
//   - every statically resolvable module-internal call, with the
//     held-set — so an edge through a helper (f holds A, calls g, g
//     takes B) is found without annotating g;
//   - blocking remote calls (Endpoint.Call and friends) with the
//     held-set and the message kind(s) they can carry.
//
// The global phase joins per-package facts exactly like kind-dispatch:
// transitive acquire sets are propagated bottom-up through call edges
// and — via the Handle(kind, handler) registry — through remote
// dispatch, then every held-while-acquiring pair becomes an edge in a
// lock-class graph. Two findings come out:
//
//   - lock-order: an edge participating in a cycle of length ≥ 2 — two
//     functions (possibly on different hosts, via remote dispatch)
//     take the same classes in opposite orders;
//   - lock-remote: a lock held across a blocking remote call whose
//     handler can transitively reacquire the same class — the remote
//     side then blocks on a class an in-flight rendezvous pins, which
//     is how distributed manager transactions deadlock. Same-class
//     reacquisition is only reported here, never as a length-1 cycle:
//     the class abstraction (one node per field, not per instance)
//     cannot tell two page locks apart, and intra-host code never
//     re-enters a held instance.
//
// Lock classes are per-field ("pkg.Type.field" for `ent.lock`-style
// receivers), per-global, or per-local ("local:<funcKey>.<name>") —
// instance-insensitive, the standard deadlock-analysis abstraction.
// `defer x.V()` keeps the class held to the end of the function (the
// release happens at exit, so everything after the defer runs under
// the lock) — the opposite of lock-pairing's model, which only cares
// that an exit check sees the release. Resource.Use acquires and
// releases within the callee, so it contributes an edge but no lasting
// hold. Sites justified by design carry `vet:ignore lock-order` or
// `vet:ignore lock-remote` and contribute no edges.
//
// Like kind-dispatch, the analysis degrades to silence on package
// subsets: no facts, no findings.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"sort"
	"strings"
)

// LockAcquire is one acquire site with its held-set.
type LockAcquire struct {
	Class   string
	Held    []string
	Pos     token.Position
	Ignored bool // vet:ignore lock-order on the line
	// Transient marks acquire-and-release-within-callee sites
	// (Resource.Use): an ordering edge, but no lasting hold.
	Transient bool
}

// LockCallEdge is one statically resolved module-internal call with
// the held-set at the call site.
type LockCallEdge struct {
	// Callee is the funcKey of the target, or "iface:<Name>" for
	// interface dispatch (resolved by name in the global phase).
	Callee string
	Held   []string
	Pos    token.Position
}

// LockRemote is one blocking remote call with the held-set.
type LockRemote struct {
	// Kinds are the message-kind constant names the call can carry
	// (empty when the kind is not statically evident).
	Kinds   []string
	Held    []string
	Pos     token.Position
	Ignored bool // vet:ignore lock-remote on the line
}

// LockHandlerReg is one Handle(kind, handler) registration with the
// handler's identity.
type LockHandlerReg struct {
	Kind    string
	Handler string // funcKey; "" when the handler expression is dynamic
}

// FuncLockFacts is everything one function contributes.
type FuncLockFacts struct {
	Key      string
	Acquires []LockAcquire
	Calls    []LockCallEdge
	Remotes  []LockRemote
}

// LockFacts is one package's contribution to the global analysis.
type LockFacts struct {
	Pkg   string
	Funcs []*FuncLockFacts
	Regs  []LockHandlerReg
}

// LockGraph sizes the global lock-class graph, for the coverage
// report.
type LockGraph struct {
	Classes int
	Edges   int
}

// CollectLockFacts gathers this package's lock facts. Handler
// registrations are collected from every package; function bodies are
// analyzed only in LockOrderPackages.
func CollectLockFacts(pkg *Package, cfg *Config) *LockFacts {
	facts := &LockFacts{Pkg: pkg.Path}
	for _, f := range pkg.Files {
		collectHandlerRegs(pkg, f, facts)
	}
	if !slices.Contains(cfg.LockOrderPackages, pkg.Path) {
		return facts
	}
	lc := &lockCollector{pkg: pkg}
	for _, f := range pkg.Files {
		lc.ignores = collectIgnores(pkg.Fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if ff := lc.collectFunc(fd, fn); ff != nil {
				facts.Funcs = append(facts.Funcs, ff)
			}
		}
	}
	return facts
}

// collectHandlerRegs records Handle(kind, handler) with the handler
// function resolved to its key.
func collectHandlerRegs(pkg *Package, f *ast.File, facts *LockFacts) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Handle" {
			return true
		}
		kind := exprConstName(call.Args[0])
		if !strings.HasPrefix(kind, "Kind") {
			return true
		}
		handler := ""
		switch h := unparen(call.Args[1]).(type) {
		case *ast.SelectorExpr:
			if s, ok := pkg.Info.Selections[h]; ok && s.Kind() == types.MethodVal {
				if fn, ok := s.Obj().(*types.Func); ok {
					handler = funcKey(fn)
				}
			}
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[h].(*types.Func); ok {
				handler = funcKey(fn)
			}
		}
		facts.Regs = append(facts.Regs, LockHandlerReg{Kind: kind, Handler: handler})
		return true
	})
}

// lockOrderState is the may-held set along one path: class → the
// acquire position that put it there.
type lockOrderState struct {
	held map[string]token.Pos
}

func (s *lockOrderState) clone() flowState {
	c := &lockOrderState{held: make(map[string]token.Pos, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// join is set union: held on any incoming path means may-held.
func (s *lockOrderState) join(other flowState) bool {
	o := other.(*lockOrderState)
	changed := false
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
			changed = true
		}
	}
	return changed
}

type lockCollector struct {
	pkg     *Package
	ignores map[int][]string
}

// acquireNames / releaseNames are the method names treated as lock
// operations, matching lock-pairing's name-based convention.
var acquireNames = map[string]bool{"P": true, "Acquire": true, "Lock": true}
var releaseNames = map[string]bool{"V": true, "Release": true, "Unlock": true}

// remoteCallNames are Endpoint methods that block the calling process
// on a remote rendezvous.
var remoteCallNames = map[string]bool{
	"Call": true, "CallBlocking": true, "CallMulticast": true, "CallAll": true,
}

func (lc *lockCollector) ignored(pos token.Pos, rule string) bool {
	line := lc.pkg.Fset.Position(pos).Line
	for _, d := range lc.ignores[line] {
		if strings.HasPrefix(d, "vet:ignore "+rule) {
			return true
		}
	}
	return false
}

// collectFunc runs the held-set dataflow over one function and returns
// its facts (nil when the function touches no locks and makes no
// calls).
func (lc *lockCollector) collectFunc(fd *ast.FuncDecl, fn *types.Func) *FuncLockFacts {
	key := funcKey(fn)
	ff := &FuncLockFacts{Key: key}
	g := buildCFG(fd.Body)
	seenCall := map[string]bool{}

	heldSnapshot := func(st *lockOrderState) []string {
		if len(st.held) == 0 {
			return nil
		}
		out := make([]string, 0, len(st.held))
		for k := range st.held {
			out = append(out, k)
		}
		sort.Strings(out)
		return out
	}

	apply := func(st *lockOrderState, n ast.Node, report bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // runs at some other time, under unknown holds
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				switch {
				case acquireNames[name]:
					if class := lc.lockClass(sel.X, key); class != "" {
						if report {
							ff.Acquires = append(ff.Acquires, LockAcquire{
								Class:   class,
								Held:    heldSnapshot(st),
								Pos:     lc.pkg.Fset.Position(call.Pos()),
								Ignored: lc.ignored(call.Pos(), "lock-order"),
							})
						}
						st.held[class] = call.Pos()
					}
					return true
				case releaseNames[name]:
					if class := lc.lockClass(sel.X, key); class != "" {
						delete(st.held, class)
					}
					return true
				case name == "Use":
					// Resource.Use: acquire+release inside the callee — an
					// ordering edge with no lasting hold.
					if class := lc.lockClass(sel.X, key); class != "" && report {
						ff.Acquires = append(ff.Acquires, LockAcquire{
							Class:     class,
							Held:      heldSnapshot(st),
							Pos:       lc.pkg.Fset.Position(call.Pos()),
							Ignored:   lc.ignored(call.Pos(), "lock-order"),
							Transient: true,
						})
					}
					return true
				case remoteCallNames[name] && lc.isEndpoint(sel):
					if report {
						ff.Remotes = append(ff.Remotes, LockRemote{
							Kinds:   lc.callKinds(call, fd),
							Held:    heldSnapshot(st),
							Pos:     lc.pkg.Fset.Position(call.Pos()),
							Ignored: lc.ignored(call.Pos(), "lock-remote"),
						})
					}
					return true
				}
			}
			if report {
				callee := lc.calleeKey(call)
				if callee != "" && callee != key {
					held := heldSnapshot(st)
					dk := callee + "|" + strings.Join(held, ",")
					if !seenCall[dk] {
						seenCall[dk] = true
						ff.Calls = append(ff.Calls, LockCallEdge{
							Callee: callee,
							Held:   held,
							Pos:    lc.pkg.Fset.Position(call.Pos()),
						})
					}
				}
			}
			return true
		})
	}

	transfer := func(fs flowState, blk *cfgBlock, idx int, report bool) {
		st := fs.(*lockOrderState)
		switch n := blk.nodes[idx].(type) {
		case returnMarker:
		case *ast.DeferStmt:
			// `defer x.V()` releases at function exit, so the class stays
			// held for the remainder of the body — record nothing and keep
			// the hold. Other deferred calls are likewise opaque here.
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				apply(st, r, report)
			}
		case rangeHead:
			apply(st, n.stmt.X, report)
		case condAssume:
		default:
			apply(st, n.(ast.Node), report)
		}
	}

	runFlow(g, &lockOrderState{held: map[string]token.Pos{}}, transfer)
	if len(ff.Acquires) == 0 && len(ff.Calls) == 0 && len(ff.Remotes) == 0 {
		return nil
	}
	return ff
}

// lockClass names the lock a receiver expression denotes:
// "pkg.Type.field" for field selectors, "global:pkg.name" for
// package-level variables, "local:<funcKey>.<name>" for locals (an
// instance-insensitive approximation; locals do not alias across
// functions).
func (lc *lockCollector) lockClass(x ast.Expr, key string) string {
	switch e := unparen(x).(type) {
	case *ast.SelectorExpr:
		if s, ok := lc.pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if n, ok := deref(s.Recv()).(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
		}
		return "expr:" + lc.pkg.Path + ":" + types.ExprString(e)
	case *ast.Ident:
		if v, ok := lc.pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return "global:" + v.Pkg().Name() + "." + e.Name
		}
		return "local:" + key + "." + e.Name
	}
	return ""
}

// isEndpoint reports whether the selector's receiver is the remote-op
// Endpoint, by type when resolved and by the `ep` naming convention
// otherwise.
func (lc *lockCollector) isEndpoint(sel *ast.SelectorExpr) bool {
	if s, ok := lc.pkg.Info.Selections[sel]; ok {
		if n, ok := deref(s.Recv()).(*types.Named); ok {
			return n.Obj().Name() == "Endpoint"
		}
	}
	return strings.HasSuffix(types.ExprString(sel.X), "ep")
}

// callKinds extracts the message-kind constant names a remote call can
// carry: Kind: fields of composite literals in the arguments, and —
// when the field holds a local variable — every Kind constant assigned
// to that variable anywhere in the enclosing function.
func (lc *lockCollector) callKinds(call *ast.CallExpr, fd *ast.FuncDecl) []string {
	kinds := map[string]bool{}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			if id, ok := kv.Key.(*ast.Ident); !ok || id.Name != "Kind" {
				return true
			}
			if name := exprConstName(kv.Value); strings.HasPrefix(name, "Kind") {
				kinds[name] = true
			} else if id, ok := unparen(kv.Value).(*ast.Ident); ok {
				for _, k := range lc.kindAssignments(fd, id.Name) {
					kinds[k] = true
				}
			}
			return false
		})
	}
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// kindAssignments finds every Kind constant assigned to the named
// local within the function (the `kind := KindGetPage; if write { kind
// = KindGetPageWrite }` idiom).
func (lc *lockCollector) kindAssignments(fd *ast.FuncDecl, name string) []string {
	var out []string
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name != name {
				continue
			}
			if k := exprConstName(as.Rhs[i]); strings.HasPrefix(k, "Kind") {
				out = append(out, k)
			}
		}
		return true
	})
	return out
}

// calleeKey resolves a call to a module function key, or
// "iface:<Name>" for interface dispatch, or "" for anything the global
// phase cannot use.
func (lc *lockCollector) calleeKey(call *ast.CallExpr) string {
	if fn := staticCallee(lc.pkg.Info, call); fn != nil {
		return funcKey(fn)
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := lc.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if fn, ok := s.Obj().(*types.Func); ok && interfaceRecv(fn) {
				return "iface:" + fn.Name()
			}
		}
	}
	return ""
}

// ---- global phase --------------------------------------------------

// bareName extracts the unqualified function name from a funcKey.
func bareName(key string) string {
	if i := strings.LastIndex(key, ")."); i >= 0 {
		return key[i+2:]
	}
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

// CheckLockOrder joins per-package lock facts, builds the global
// lock-class graph, and reports lock-order cycles and locks held
// across self-reacquiring remote calls. With no collected facts it
// stays silent (package-subset runs cannot prove absence).
func CheckLockOrder(all []*LockFacts) ([]Finding, LockGraph) {
	funcs := map[string]*FuncLockFacts{}
	handlers := map[string][]string{} // kind constant → handler keys
	byName := map[string][]string{}   // bare name → keys, for iface: dispatch
	for _, lf := range all {
		if lf == nil {
			continue
		}
		for _, ff := range lf.Funcs {
			funcs[ff.Key] = ff
			byName[bareName(ff.Key)] = append(byName[bareName(ff.Key)], ff.Key)
		}
		for _, r := range lf.Regs {
			if r.Handler != "" {
				handlers[r.Kind] = append(handlers[r.Kind], r.Handler)
			}
		}
	}
	if len(funcs) == 0 {
		return nil, LockGraph{}
	}

	resolve := func(callee string) []string {
		if k, ok := strings.CutPrefix(callee, "iface:"); ok {
			return byName[k]
		}
		if _, ok := funcs[callee]; ok {
			return []string{callee}
		}
		return nil
	}

	// Transitive acquire sets: every class a function can take,
	// directly, through module calls, or through the handlers its
	// remote calls dispatch to. Ignored acquires still count — a
	// justified ordering is still an acquisition the remote side
	// performs.
	trans := map[string]map[string]bool{}
	for key, ff := range funcs {
		set := map[string]bool{}
		for _, a := range ff.Acquires {
			set[a.Class] = true
		}
		trans[key] = set
	}
	for changed := true; changed; {
		changed = false
		for key, ff := range funcs {
			set := trans[key]
			add := func(from string) {
				for cls := range trans[from] {
					if !set[cls] {
						set[cls] = true
						changed = true
					}
				}
			}
			for _, ce := range ff.Calls {
				for _, callee := range resolve(ce.Callee) {
					add(callee)
				}
			}
			for _, r := range ff.Remotes {
				for _, kind := range r.Kinds {
					for _, h := range handlers[kind] {
						if _, ok := funcs[h]; ok {
							add(h)
						}
					}
				}
			}
		}
	}

	// Edge generation over the lock-class graph.
	type edge struct{ from, to string }
	edges := map[edge]token.Position{}
	classes := map[string]bool{}
	addEdge := func(from, to string, pos token.Position) {
		if from == to {
			return // same-class reacquisition is lock-remote's, not a cycle
		}
		classes[from], classes[to] = true, true
		if _, ok := edges[edge{from, to}]; !ok {
			edges[edge{from, to}] = pos
		}
	}
	var findings []Finding
	for _, ff := range funcs {
		for _, a := range ff.Acquires {
			classes[a.Class] = true
			if a.Ignored {
				continue
			}
			for _, h := range a.Held {
				addEdge(h, a.Class, a.Pos)
			}
		}
		for _, ce := range ff.Calls {
			if len(ce.Held) == 0 {
				continue
			}
			for _, callee := range resolve(ce.Callee) {
				for cls := range trans[callee] {
					for _, h := range ce.Held {
						addEdge(h, cls, ce.Pos)
					}
				}
			}
		}
		for _, r := range ff.Remotes {
			if r.Ignored || len(r.Held) == 0 {
				continue
			}
			remoteClasses := map[string]bool{}
			for _, kind := range r.Kinds {
				for _, h := range handlers[kind] {
					for cls := range trans[h] {
						remoteClasses[cls] = true
					}
				}
			}
			for _, h := range r.Held {
				if remoteClasses[h] {
					findings = append(findings, Finding{
						Pos:  r.Pos,
						Rule: "lock-remote",
						Msg: fmt.Sprintf("%s is held across a blocking remote call whose handler can reacquire the same lock class; if the handling host is blocked on its own instance the rendezvous deadlocks — release before the call, or annotate the by-design transaction with vet:ignore lock-remote",
							h),
					})
				}
				for cls := range remoteClasses {
					addEdge(h, cls, r.Pos)
				}
			}
		}
	}

	// Cycle detection: SCCs of the class graph; every edge inside a
	// multi-node SCC participates in some cycle.
	succ := map[string][]string{}
	for e := range edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	comp := classSCCs(succ)
	for e, pos := range edges {
		if comp[e.from] != "" && comp[e.from] == comp[e.to] {
			findings = append(findings, Finding{
				Pos:  pos,
				Rule: "lock-order",
				Msg: fmt.Sprintf("acquiring %s while holding %s participates in a lock-order cycle (some other path takes these classes in the opposite order); impose one global order or annotate the proven-safe site with vet:ignore lock-order",
					e.to, e.from),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Msg < findings[j].Msg
	})
	return findings, LockGraph{Classes: len(classes), Edges: len(edges)}
}

// classSCCs assigns each node in a multi-node strongly connected
// component a component label ("" for trivial components), via
// iterative Tarjan over the string graph.
func classSCCs(succ map[string][]string) map[string]string {
	var nodes []string
	seen := map[string]bool{}
	for n, ss := range succ {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
		for _, s := range ss {
			if !seen[s] {
				seen[s] = true
				nodes = append(nodes, s)
			}
		}
	}
	sort.Strings(nodes)
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]string{}
	var stack []string
	next := 0
	type frame struct {
		v  string
		si int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{root, 0}}
		for len(frames) > 0 {
			fr := &frames[len(frames)-1]
			v := fr.v
			if fr.si == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for fr.si < len(succ[v]) {
				w := succ[v][fr.si]
				fr.si++
				if _, ok := index[w]; !ok {
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var members []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == v {
						break
					}
				}
				if len(members) > 1 {
					label := members[0]
					for _, m := range members {
						if m < label {
							label = m
						}
					}
					for _, m := range members {
						comp[m] = label
					}
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp
}
