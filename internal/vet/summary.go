package vet

// Bottom-up per-function summaries: each function's externally visible
// buffer effects and purity, inferred once and consulted at every call
// site. The summary lattice is a few monotone bits per function —
// effects are only ever added and purity only ever revoked — so the
// recursive-SCC fixpoint below terminates.
//
//   - ParamReleases[i]: the function returns param i's pooled buffer to
//     the pool (bufpool.Put, directly or through callees) on some path.
//     Callers model the argument as released: a later Put is a
//     double-release, and the caller is no longer leak-responsible.
//   - ParamStores[i]: param i escapes into longer-lived storage (a
//     field, a global, SetWire, a closure) on some path. Callers model
//     the argument as transferred — and passing *borrowed* wire data to
//     such a callee is a finding, exactly like storing it locally.
//   - ResultOwned[i]: result i is an owned pooled buffer on some return
//     path. Callers acquire it: it must be released or transferred on
//     every path, without any vet:owned annotation on the callee.
//   - Pure: the function writes no caller-visible memory and calls only
//     pure functions — consulted by the map-order prover when loop
//     bodies call helpers.
//
// Summaries are computed per package over the callGraph's SCCs in
// bottom-up order; cmd/mermaid-vet walks packages in import-topological
// order, so by the time a package is summarized every same-module
// callee below it already has an entry in the shared SummaryTable.
// Unknown callees (dynamic dispatch, stdlib, packages outside the run)
// have no entry and are treated conservatively: arguments are loans,
// results unowned, the call impure.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"
)

// FuncSummary is the inferred effect signature of one function.
type FuncSummary struct {
	// Key identifies the function (see funcKey).
	Key string
	// NumParams is the declared parameter count.
	NumParams int
	// ParamReleases marks params whose pooled buffer the function may
	// return to the pool.
	ParamReleases []bool
	// ParamStores marks params that may escape into storage that
	// outlives the call.
	ParamStores []bool
	// ResultOwned marks results that may carry an owned pooled buffer
	// the caller must release or transfer.
	ResultOwned []bool
	// Pure reports that the function has no caller-visible side effects
	// and is deterministic enough for the map-order prover (internal map
	// iteration also revokes it).
	Pure bool
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	return s.Key == o.Key && s.NumParams == o.NumParams && s.Pure == o.Pure &&
		boolsEqual(s.ParamReleases, o.ParamReleases) &&
		boolsEqual(s.ParamStores, o.ParamStores) &&
		boolsEqual(s.ResultOwned, o.ResultOwned)
}

// interesting reports whether the summary changes caller behaviour at
// all; uninteresting summaries still occupy the table (their absence
// would read as "unknown callee").
func (s *FuncSummary) interesting() bool {
	for _, b := range s.ParamReleases {
		if b {
			return true
		}
	}
	for _, b := range s.ParamStores {
		if b {
			return true
		}
	}
	for _, b := range s.ResultOwned {
		if b {
			return true
		}
	}
	return s.Pure
}

// SummaryTable is the shared, concurrency-safe store of computed
// summaries — the cache every call site consults. Lookup/hit counters
// feed the -json cache statistics.
type SummaryTable struct {
	mu      sync.RWMutex
	m       map[string]*FuncSummary
	lookups int
	hits    int
}

// NewSummaryTable returns an empty table.
func NewSummaryTable() *SummaryTable {
	return &SummaryTable{m: map[string]*FuncSummary{}}
}

// Lookup returns the summary for key, counting the probe for the cache
// statistics.
func (t *SummaryTable) Lookup(key string) *FuncSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lookups++
	s := t.m[key]
	if s != nil {
		t.hits++
	}
	return s
}

// has reports whether key is present without counting a probe.
func (t *SummaryTable) has(key string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.m[key]
	return ok
}

func (t *SummaryTable) put(s *FuncSummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[s.Key] = s
}

// Size returns the number of stored summaries.
func (t *SummaryTable) Size() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// CacheStats returns the lookup and hit counts accumulated so far.
func (t *SummaryTable) CacheStats() (lookups, hits int) {
	if t == nil {
		return 0, 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.lookups, t.hits
}

// sccIterMax bounds the refinement passes over one recursive SCC.
// Effects are monotone, so convergence is fast; the cap is a backstop.
const sccIterMax = 4

// ComputeSummaries infers summaries for every function in the package
// and stores them in tbl, returning how many were (re)computed.
// Functions already present in tbl are skipped, which makes the call
// idempotent: the driver summarizes each package once in topological
// order, and a later CheckWithTable on the same package finds only
// cache hits.
func ComputeSummaries(pkg *Package, cfg *Config, tbl *SummaryTable) int {
	if pkg.Types == nil || tbl == nil {
		return 0
	}
	c := &checker{pkg: pkg, cfg: cfg, summaries: tbl}
	c.collectOwnedFuncs()
	g := buildCallGraph(pkg)
	computed := 0
	for _, scc := range g.sccOrder() {
		all := true
		for _, i := range scc {
			if !tbl.has(funcKey(g.objs[i])) {
				all = false
				break
			}
		}
		if all {
			continue
		}
		cur := map[string]*FuncSummary{}
		// Optimistic seed for recursive components: no effects, pure.
		// Refinement only adds effects / revokes purity, so iterating to
		// a fixed point is sound and terminates.
		for _, i := range scc {
			fn := g.objs[i]
			cur[funcKey(fn)] = newSummary(fn)
		}
		iters := 1
		if len(scc) > 1 || g.selfRecursive(scc[0]) {
			iters = sccIterMax
		}
		for it := 0; it < iters; it++ {
			stable := true
			for _, i := range scc {
				s := c.summarizeFunc(g.decls[i], g.objs[i], cur)
				if !s.equal(cur[s.Key]) {
					stable = false
				}
				cur[s.Key] = s
			}
			if stable {
				break
			}
		}
		for _, s := range cur {
			tbl.put(s)
			computed++
		}
	}
	return computed
}

// newSummary allocates the bottom (no effects, pure) summary for fn.
func newSummary(fn *types.Func) *FuncSummary {
	sig, _ := fn.Type().(*types.Signature)
	np, nr := 0, 0
	if sig != nil {
		np = sig.Params().Len()
		nr = sig.Results().Len()
	}
	return &FuncSummary{
		Key:           funcKey(fn),
		NumParams:     np,
		ParamReleases: make([]bool, np),
		ParamStores:   make([]bool, np),
		ResultOwned:   make([]bool, nr),
		Pure:          true,
	}
}

// summarizeFunc runs the ownership dataflow over one function body in
// summary mode: []byte params are seeded as tracked owned objects, and
// at every exit the analysis harvests which params were released or
// stored and which results carry owned buffers. cur holds the
// in-flight summaries of the function's own SCC, consulted before the
// shared table so recursion sees the current iterate.
func (c *checker) summarizeFunc(fd *ast.FuncDecl, fn *types.Func, cur map[string]*FuncSummary) *FuncSummary {
	out := newSummary(fn)
	out.Pure = c.summaryPure(fd, cur)
	a := &bufOwn{
		c:     c,
		fd:    fd,
		sites: map[token.Pos]int{},
		rep:   map[string]bool{},
		mute:  true,
		cur:   cur,
		sum:   &sumBuilder{idParam: map[int]int{}, out: out},
	}
	a.run()
	return out
}

// summaryPure decides purity syntactically: every write target must be
// a function-local variable, and every call must be a pure builtin, a
// conversion, or a function whose summary says Pure. Channel
// operations, goroutines, dynamic calls, and writes through pointers,
// fields, or indices are impure; so is ranging over a map (the
// iteration order would leak into an otherwise effect-free result).
func (c *checker) summaryPure(fd *ast.FuncDecl, cur map[string]*FuncSummary) bool {
	pure := true
	localWrite := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "_" {
			return true
		}
		obj := c.pkg.Info.Defs[id]
		if obj == nil {
			obj = c.pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return false
		}
		return v.Parent() != v.Pkg().Scope()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // creating a closure is pure; calling it is not
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if !localWrite(l) {
					pure = false
				}
			}
		case *ast.IncDecStmt:
			if !localWrite(x.X) {
				pure = false
			}
		case *ast.SendStmt, *ast.GoStmt, *ast.SelectStmt:
			pure = false
		case *ast.RangeStmt:
			if tv, ok := c.pkg.Info.Types[x.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pure = false
				}
			}
		case *ast.CallExpr:
			if !c.pureCall(x, cur) {
				pure = false
			}
		}
		return pure
	})
	return pure
}

// pureBuiltins are the builtins with no caller-visible effects. append
// is accepted pragmatically: the accumulator idiom rebinds the result
// over a locally made slice.
var pureBuiltins = map[string]bool{
	"len": true, "cap": true, "append": true, "make": true, "new": true,
	"min": true, "max": true,
}

// pureCall decides whether one call preserves purity.
func (c *checker) pureCall(call *ast.CallExpr, cur map[string]*FuncSummary) bool {
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if obj := c.pkg.Info.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin {
				return pureBuiltins[id.Name]
			}
		} else if pureBuiltins[id.Name] {
			return true // degraded type info; the name is unshadowed in practice
		}
	}
	fn := staticCallee(c.pkg.Info, call)
	if fn == nil {
		return false
	}
	key := funcKey(fn)
	if cur != nil {
		if s, ok := cur[key]; ok {
			return s.Pure
		}
	}
	if s := c.summaries.Lookup(key); s != nil {
		return s.Pure
	}
	return false
}
