package vet

import (
	"strings"
	"testing"
)

// The CFG and dataflow engine are exercised end to end through the
// lock-pairing analysis: each test shapes control flow (branches,
// loops, switches, defers, crash paths) and checks where a held
// semaphore is — and is not — reported.

func lockFindings(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Rule == "lock-pairing" {
			out = append(out, f)
		}
	}
	return out
}

const lockFixtureHeader = `
package dsm

type sema struct{}

func (s *sema) P(x int) {}
func (s *sema) V()      {}

type proc struct{}

func (p *proc) Exit() {}
`

func TestLockHeldOnEarlyReturnFlagged(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func earlyReturn(l *sema, err error) error {
	l.P(1)
	if err != nil {
		return err // l still held here
	}
	l.V()
	return nil
}
`}))
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "l.P acquired in earlyReturn") {
		t.Fatalf("want the early-return leak, got %v", fs)
	}
}

func TestLockReleasedPerBranchClean(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func perBranch(l *sema, cond bool) int {
	l.P(1)
	if cond {
		l.V()
		return 1
	}
	l.V()
	return 0
}

func viaDefer(l *sema, err error) error {
	l.P(1)
	defer l.V()
	if err != nil {
		return err
	}
	return nil
}
`}))
	if len(fs) != 0 {
		t.Fatalf("balanced branches must be clean, got %v", fs)
	}
}

func TestLockSwitchCaseMissingReleaseFlagged(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func switchLeak(l *sema, mode int) int {
	l.P(1)
	switch mode {
	case 0:
		l.V()
		return 0
	case 1:
		return 1 // held
	default:
		l.V()
		return 2
	}
}
`}))
	if len(fs) != 1 {
		t.Fatalf("want exactly the case-1 leak, got %v", fs)
	}
}

func TestLockLoopBalancedClean(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func loopBalanced(l *sema, n int) {
	for i := 0; i < n; i++ {
		l.P(1)
		l.V()
	}
}

func loopWithContinue(l *sema, xs []int) int {
	total := 0
	for _, x := range xs {
		l.P(1)
		if x < 0 {
			l.V()
			continue
		}
		total += x
		l.V()
	}
	return total
}
`}))
	if len(fs) != 0 {
		t.Fatalf("balanced loops must be clean, got %v", fs)
	}
}

func TestLockLoopBreakWhileHeldFlagged(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func breakHeld(l *sema, xs []int) {
	for _, x := range xs {
		l.P(1)
		if x == 0 {
			break // held past the loop to the return
		}
		l.V()
	}
}
`}))
	if len(fs) != 1 {
		t.Fatalf("want the break-while-held leak, got %v", fs)
	}
}

func TestLockCrashPathsExempt(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func panics(l *sema, err error) {
	l.P(1)
	if err != nil {
		panic("corrupt state") // the process is gone, not deadlocked
	}
	l.V()
}

func exits(l *sema, p *proc, dead bool) {
	l.P(1)
	if dead {
		p.Exit()
	}
	l.V()
}
`}))
	if len(fs) != 0 {
		t.Fatalf("crash paths must not count as leaks, got %v", fs)
	}
}

func TestLockClosureReleaseExempt(t *testing.T) {
	// A V issued from a nested function literal (completion callback)
	// releases at a time the intraprocedural CFG cannot see; such
	// receivers must not be reported.
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func callback(l *sema, after func(func())) {
	l.P(1)
	after(func() {
		l.V()
	})
}
`}))
	if len(fs) != 0 {
		t.Fatalf("closure-released receivers must be exempt, got %v", fs)
	}
}

func TestLockSignallingVWithoutPClean(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func signal(l *sema) {
	l.V() // the producer half of a rendezvous: legal
}
`}))
	if len(fs) != 0 {
		t.Fatalf("V without P is signalling, not a leak: %v", fs)
	}
}

func TestLockTwoReceiversTrackedIndependently(t *testing.T) {
	fs := lockFindings(analyze(t, "fixture/dsm", map[string]string{"a.go": lockFixtureHeader + `
func two(a, b *sema, err error) error {
	a.P(1)
	b.P(1)
	if err != nil {
		b.V()
		return err // a still held
	}
	a.V()
	b.V()
	return nil
}
`}))
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "a.P") {
		t.Fatalf("want only the a leak, got %v", fs)
	}
}
