package vet

import "testing"

var sumCfg = &Config{
	BufPoolPackage: "repro/internal/bufpool",
	ProtoPackage:   "repro/internal/proto",
}

const sumSrc = `package sum
import "repro/internal/bufpool"

var kept []byte
var counter int

func release(b []byte)  { bufpool.Put(b) }
func store(b []byte)    { kept = b }
func loan(b []byte) int { return len(b) }
func make1() []byte     { return bufpool.Get(1) }
func make2() []byte     { return make1() }

func double(x int) int { return x * 2 }
func impure(x int) int { counter++; return x }
func viaPure(x int) int { return double(x) + 1 }

func relRec(b []byte, depth int) {
	if depth == 0 {
		bufpool.Put(b)
		return
	}
	relRec(b, depth-1)
}

func even(n int) bool { if n == 0 { return true }; return odd(n - 1) }
func odd(n int) bool  { if n == 0 { return false }; return even(n - 1) }
`

func TestSummaryEffectBits(t *testing.T) {
	pkg := loadInline(t, "fixture/sum", sumSrc)
	tbl := NewSummaryTable()
	if n := ComputeSummaries(pkg, sumCfg, tbl); n == 0 {
		t.Fatal("no summaries computed")
	}
	cases := []struct {
		fn                    string
		release, store, owned bool
		pure                  bool
	}{
		{"release", true, false, false, false},
		{"store", false, true, false, false},
		{"loan", false, false, false, true},
		{"make1", false, false, true, false},
		{"make2", false, false, true, false},
		{"double", false, false, false, true},
		{"impure", false, false, false, false},
		{"viaPure", false, false, false, true},
		{"relRec", true, false, false, false},
		{"even", false, false, false, true},
		{"odd", false, false, false, true},
	}
	for _, c := range cases {
		s := tbl.Lookup("fixture/sum." + c.fn)
		if s == nil {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		rel := len(s.ParamReleases) > 0 && s.ParamReleases[0]
		sto := len(s.ParamStores) > 0 && s.ParamStores[0]
		own := len(s.ResultOwned) > 0 && s.ResultOwned[0]
		if rel != c.release || sto != c.store || own != c.owned || s.Pure != c.pure {
			t.Errorf("%s: got release=%v store=%v owned=%v pure=%v, want %v %v %v %v",
				c.fn, rel, sto, own, s.Pure, c.release, c.store, c.owned, c.pure)
		}
	}
}

func TestSummaryTableIdempotentAndCounted(t *testing.T) {
	pkg := loadInline(t, "fixture/sum", sumSrc)
	tbl := NewSummaryTable()
	first := ComputeSummaries(pkg, sumCfg, tbl)
	if first == 0 {
		t.Fatal("no summaries computed")
	}
	if tbl.Size() != first {
		t.Errorf("table size %d != computed %d", tbl.Size(), first)
	}
	if again := ComputeSummaries(pkg, sumCfg, tbl); again != 0 {
		t.Errorf("second ComputeSummaries recomputed %d; the pass must be idempotent", again)
	}
	before, _ := tbl.CacheStats()
	if tbl.Lookup("fixture/sum.release") == nil {
		t.Fatal("lookup of a summarized function missed")
	}
	tbl.Lookup("fixture/sum.noSuchFunc")
	lookups, hits := tbl.CacheStats()
	if lookups != before+2 {
		t.Errorf("lookups = %d, want %d", lookups, before+2)
	}
	if hits < 1 || hits >= lookups {
		t.Errorf("hits = %d of %d lookups; the miss must not count as a hit", hits, lookups)
	}
}
