package vet

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// analyzeInterproc parses a fixture package under testdata and runs
// the full interprocedural pipeline over it the way cmd/mermaid-vet
// does: summaries + intraprocedural rules, then the lock-order join.
func analyzeInterproc(t *testing.T, dir, pkgPath string) ([]Finding, Stats) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg := NewPackage(fset, pkgPath, files, nil)
	cfg := &Config{
		BufOwnPackages:    []string{pkgPath},
		MapOrderPackages:  []string{pkgPath},
		LockOrderPackages: []string{pkgPath},
		BufPoolPackage:    "repro/internal/bufpool",
		ProtoPackage:      "repro/internal/proto",
	}
	fs, stats := CheckWithTable(pkg, cfg, NewSummaryTable())
	lofs, _ := CheckLockOrder([]*LockFacts{CollectLockFacts(pkg, cfg)})
	return append(fs, lofs...), stats
}

var wantMarkerRe = regexp.MustCompile(`want ([a-z][a-z-]*)`)

// wantRuleLines maps file:line → the rule a `want <rule>` marker on
// that line demands.
func wantRuleLines(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if m := wantMarkerRe.FindStringSubmatch(sc.Text()); m != nil {
				out[fmt.Sprintf("%s:%d", name, line)] = m[1]
			}
		}
		f.Close()
	}
	return out
}

// TestInterprocMutationsKilled is the cross-function mutation-kill
// harness: every injected bug in testdata/interbad must be reported on
// its marked line with the marked rule, and nothing else may be.
func TestInterprocMutationsKilled(t *testing.T) {
	dir := filepath.Join("testdata", "interbad")
	fs, _ := analyzeInterproc(t, dir, "fixture/interbad")
	want := wantRuleLines(t, dir)
	if len(want) != 8 {
		t.Fatalf("fixture must carry exactly 8 want markers, found %d", len(want))
	}
	got := map[string][]string{}
	for _, f := range fs {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		got[key] = append(got[key], f.Rule)
	}
	for key, rule := range want {
		found := false
		for _, r := range got[key] {
			if r == rule {
				found = true
			}
		}
		if !found {
			t.Errorf("injected bug at %s not reported as %s (mutation survived)", key, rule)
		}
	}
	for key, rs := range got {
		for _, r := range rs {
			if want[key] != r {
				t.Errorf("false positive: %s finding at unmarked line %s", r, key)
			}
		}
	}
	if t.Failed() {
		t.Logf("findings:")
		for _, f := range fs {
			t.Logf("  %v", f)
		}
	}
}

// TestInterprocCleanFixtureSilent pins the interprocedural
// false-positive budget at zero: recursion, method values, interface
// dispatch, closures, helper releases, a consistent lock order, and
// prover-discharged map loops must all stay quiet.
func TestInterprocCleanFixtureSilent(t *testing.T) {
	fs, stats := analyzeInterproc(t, filepath.Join("testdata", "interclean"), "fixture/interclean")
	if len(fs) != 0 {
		t.Fatalf("clean fixture must be silent, got %v", fs)
	}
	if stats.Summarized == 0 {
		t.Fatal("clean fixture produced no summaries; the interprocedural layer did not run")
	}
	if stats.Discharged != 3 {
		t.Fatalf("expected the order prover to discharge exactly 3 map loops (sums, keys, ids), got %d", stats.Discharged)
	}
}
