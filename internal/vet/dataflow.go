package vet

// Forward dataflow over a funcCFG to a fixed point. Analyses implement
// flowAnalysis: an abstract state type with join/equality, a transfer
// function applied node by node, and a reporting hook. The engine runs
// twice conceptually: first it iterates transfer over the worklist until
// the per-block in-states stop changing (joins are unions, so states
// grow monotonically and the iteration terminates), then it makes one
// final pass over the stable in-states with reporting enabled, so every
// diagnostic is emitted exactly once from converged facts.

type flowState interface {
	// clone returns an independent copy the transfer function may mutate.
	clone() flowState
	// join merges other into the receiver, reporting whether the
	// receiver changed. other is never mutated.
	join(other flowState) bool
}

// runFlow propagates states through g. transfer applies the effect of
// blk.nodes[idx] to st in place; it is invoked with report=false during
// iteration and report=true on the final pass, so findings are emitted
// exactly once from converged facts.
func runFlow(g *funcCFG, entry flowState, transfer func(st flowState, blk *cfgBlock, idx int, report bool)) {
	in := make([]flowState, len(g.blocks))
	in[g.entry.id] = entry

	work := []*cfgBlock{g.entry}
	queued := make([]bool, len(g.blocks))
	queued[g.entry.id] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.id] = false
		if in[blk.id] == nil {
			continue
		}
		out := in[blk.id].clone()
		for i := range blk.nodes {
			transfer(out, blk, i, false)
		}
		for _, s := range blk.succs {
			changed := false
			if in[s.id] == nil {
				in[s.id] = out.clone()
				changed = true
			} else if in[s.id].join(out) {
				changed = true
			}
			if changed && !queued[s.id] {
				queued[s.id] = true
				work = append(work, s)
			}
		}
	}

	// Final reporting pass over converged in-states.
	for _, blk := range g.blocks {
		if in[blk.id] == nil {
			continue
		}
		st := in[blk.id].clone()
		for i := range blk.nodes {
			transfer(st, blk, i, true)
		}
	}
}
