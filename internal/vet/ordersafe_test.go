package vet

import "testing"

// The order prover discharges map-range loops whose bodies commute;
// these tests pin both directions: provable shapes stay silent,
// order-sensitive ones keep their finding.

func TestMapOrderCommutativeFoldDischarged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
`})
	wantClean(t, fs)
}

func TestMapOrderSortLaunderedDischarged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

import "sort"

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func pages(m map[uint32]bool) []uint32 {
	var out []uint32
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
`})
	wantClean(t, fs)
}

func TestMapOrderInsertionSortDischarged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

func ids(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
`})
	wantClean(t, fs)
}

func TestMapOrderAccumulatorReadStillFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

// Running min reads the accumulator in its own guard: the result is
// order-independent but the shape is beyond the commuting-effects
// prover, so the finding must survive.
func minKey(m map[int]bool) int {
	best := 1 << 30
	for k := range m {
		if k < best {
			best = k
		}
	}
	return best
}
`})
	wantRule(t, fs, "map-order", "iteration order is randomized")
}

func TestMapOrderUnsortedCollectStillFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

// Appending without canonicalizing afterwards leaks iteration order.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`})
	wantRule(t, fs, "map-order", "iteration order is randomized")
}

func TestMapOrderFieldComparatorNotLaundering(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

import "sort"

type ent struct {
	page  uint32
	count int
}

// Sorting by one field leaves ties in map order: not a canonicalizer.
func tally(m map[uint32]int) []ent {
	var out []ent
	for p, c := range m {
		out = append(out, ent{page: p, count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].count < out[j].count })
	return out
}
`})
	wantRule(t, fs, "map-order", "iteration order is randomized")
}

func TestMapOrderEarlyExitStillFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

// break makes the observed element order-dependent.
func any(m map[int]bool) int {
	found := -1
	for k := range m {
		found = k
		break
	}
	return found
}
`})
	wantRule(t, fs, "map-order", "iteration order is randomized")
}

func TestMapOrderImpureCalleeStillFlagged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

var trace []int

func record(x int) int {
	trace = append(trace, x)
	return x
}

// The helper logs in call order, so the fold does not commute.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += record(v)
	}
	return total
}
`})
	wantRule(t, fs, "map-order", "iteration order is randomized")
}

func TestMapOrderPureCalleeDischarged(t *testing.T) {
	fs := analyze(t, "fixture/dsm", map[string]string{"a.go": `
package dsm

func double(x int) int { return x * 2 }

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += double(v)
	}
	return total
}
`})
	wantClean(t, fs)
}
