package vet

// lock-pairing: the CFG generalization of the old lexical pv-pairing
// rule. Instead of asking "does an x.V(...) appear anywhere in the same
// function as x.P(...)", it propagates a per-receiver hold count along
// every control-flow path and reports any return (explicit or falling
// off the end) reached with a semaphore still held. That catches the
// early-error-return leak
//
//	l.P(p)
//	if err != nil {
//		return err // lock-pairing: l still held
//	}
//	l.V()
//
// which the lexical rule was blind to. `defer x.V()` releases on every
// path from the defer onward and is modelled by decrementing the hold
// count at the defer statement (the deferred call runs at function
// exit, which is exactly where the count is checked). A V issued from
// inside a nested function literal (a completion callback, a
// goroutine) releases at a time the intraprocedural CFG cannot see, so
// such receivers are exempted from exit checks rather than
// false-positively reported. V without a preceding P — semaphore
// signalling, the producer half of a rendezvous — is deliberately not
// flagged.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockHold is the abstract fact for one receiver expression.
type lockHold struct {
	// balance counts P's not yet matched by a V on this path, clamped
	// to [0, lockClampMax] so loops converge.
	balance int
	// pos is the most recent P site, where the finding is reported.
	pos token.Pos
}

const lockClampMax = 3

// lockState maps a receiver expression (its printed form) to its hold
// fact.
type lockState struct {
	held map[string]lockHold
}

func (s *lockState) clone() flowState {
	c := &lockState{held: make(map[string]lockHold, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// join takes the per-receiver maximum: held on any incoming path means
// held. Monotone over a finite lattice, so iteration terminates.
func (s *lockState) join(other flowState) bool {
	o := other.(*lockState)
	changed := false
	for k, ov := range o.held {
		cur, ok := s.held[k]
		if !ok || ov.balance > cur.balance {
			s.held[k] = ov
			changed = true
		}
	}
	return changed
}

// checkLockPairing runs the analysis over every function declaration in
// the file. Functions named P or V — the semaphore implementations
// themselves — are exempt.
func (c *checker) checkLockPairing(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Name.Name == "P" || fd.Name.Name == "V" {
			continue
		}
		c.lockPairFunc(fd)
	}
}

func (c *checker) lockPairFunc(fd *ast.FuncDecl) {
	// Receivers released inside nested function literals escape the
	// intraprocedural view; exempt them from exit checks.
	closureV := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "V" {
					closureV[types.ExprString(sel.X)] = true
				}
			}
			return true
		})
		return false
	})

	g := buildCFG(fd.Body)
	reported := map[string]bool{}

	apply := func(st *lockState, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false // opaque: runs at some other time
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := types.ExprString(sel.X)
			switch sel.Sel.Name {
			case "P":
				h := st.held[recv]
				if h.balance < lockClampMax {
					h.balance++
				}
				h.pos = call.Pos()
				st.held[recv] = h
			case "V":
				h := st.held[recv]
				if h.balance > 0 {
					h.balance--
					st.held[recv] = h
				}
			}
			return true
		})
	}

	atExit := func(st *lockState, report bool, where token.Pos) {
		if !report {
			return
		}
		for recv, h := range st.held {
			if h.balance == 0 || closureV[recv] {
				continue
			}
			key := recv + "@" + c.pkg.Fset.Position(h.pos).String()
			if reported[key] {
				continue
			}
			reported[key] = true
			c.report(h.pos, "lock-pairing",
				"%s.P acquired in %s but still held at the return on line %d; release it on every path (defer %s.V() right after the P, or V before the return)",
				recv, fd.Name.Name, c.pkg.Fset.Position(where).Line, recv)
		}
	}

	transfer := func(fs flowState, blk *cfgBlock, idx int, report bool) {
		st := fs.(*lockState)
		switch n := blk.nodes[idx].(type) {
		case returnMarker:
			atExit(st, report, n.Pos())
		case *ast.ReturnStmt:
			// Evaluate the return operands first (a `return release()`
			// pattern), then check.
			for _, r := range n.Results {
				apply(st, r)
			}
			atExit(st, report, n.Pos())
		case *ast.DeferStmt:
			// `defer x.V()` releases at exit — exactly when the exit
			// check runs — so model it as an immediate release.
			if sel, ok := n.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "V" {
				recv := types.ExprString(sel.X)
				h := st.held[recv]
				if h.balance > 0 {
					h.balance--
					st.held[recv] = h
				}
			}
		case rangeHead:
			apply(st, n.stmt.X)
		case condAssume:
			// Branch-polarity marker; the condition's calls were already
			// applied in the branch head.
		default:
			apply(st, n.(ast.Node))
		}
	}

	runFlow(g, &lockState{held: map[string]lockHold{}}, transfer)
}
