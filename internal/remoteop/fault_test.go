package remoteop

import (
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

func TestChecksumDetectsEveryCorruptedFragment(t *testing.T) {
	// Corrupt every fragment for the first 20 ms. The receiver's FNV
	// checksum must drop each damaged fragment before reassembly; the
	// sender's retransmissions after the window closes complete the
	// call with the payload intact. Detection rate must be 100%: every
	// corrupted frame is a checksum drop, none becomes page content.
	r := newRig(t, arch.Sun, arch.Firefly)
	r.net.SetFaultPlan(&netsim.FaultPlan{Corrupt: []netsim.Burst{{
		Window: netsim.Window{Until: sim.Time(20 * time.Millisecond)},
		Rate:   1.0,
	}}})
	page := make([]byte, 8192)
	for i := range page {
		page[i] = byte(i * 13)
	}
	var received []byte
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		received = append([]byte(nil), req.Data...)
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply})
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		if _, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: page}); err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if len(received) != len(page) {
		t.Fatalf("received %d bytes, want %d", len(received), len(page))
	}
	for i := range received {
		if received[i] != page[i] {
			t.Fatalf("byte %d corrupted despite checksums (got %#x want %#x)", i, received[i], page[i])
		}
	}
	corrupted := r.net.Stats().FramesCorrupted
	drops := r.eps[0].Stats().ChecksumDrops + r.eps[1].Stats().ChecksumDrops
	if corrupted == 0 {
		t.Fatal("fault plan corrupted nothing; the test exercised no checksums")
	}
	if drops != corrupted {
		t.Fatalf("%d frames corrupted but %d checksum drops — %d damaged fragments slipped through",
			corrupted, drops, corrupted-drops)
	}
}

func TestSenderCrashMidTransferDiscardsPartialReassembly(t *testing.T) {
	// Host 0 starts a fragmented 8 KB transfer and dies after a few
	// fragments are delivered. The receiver is left with a partial
	// reassembly that can never complete; DropPartials (what the failure
	// detector's death callback invokes) must discard it and return the
	// pooled buffer — the leak guard is PartialReassemblies reaching 0.
	r := newRig(t, arch.Sun, arch.Sun)
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		t.Error("handler ran for a transfer that was never completed")
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		// The sender's process unwinds via Crash's exit-at-next-send;
		// the call never returns.
		_, _ = r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: make([]byte, 8192)})
		t.Error("call returned from a crashed host")
	})
	r.k.Spawn("crash", func(p *sim.Proc) {
		// ~1.17 ms wire time per 1400-byte fragment: by 3 ms two
		// fragments are across and the third is at most in flight.
		p.Sleep(3 * time.Millisecond)
		r.net.SetHostDown(0, true)
		r.eps[0].Crash()
	})
	r.k.RunFor(500 * time.Millisecond)

	if got := r.eps[1].PartialReassemblies(); got != 1 {
		t.Fatalf("receiver holds %d partial reassemblies, want 1 before cleanup", got)
	}
	r.eps[1].DropPartials(0)
	if got := r.eps[1].PartialReassemblies(); got != 0 {
		t.Fatalf("%d partial reassemblies leaked after DropPartials", got)
	}
	r.eps[1].DropPartials(0) // idempotent
	if !r.eps[0].Crashed() {
		t.Fatal("Crashed() false after Crash()")
	}
}

func TestReceiverCrashDropsOwnPartials(t *testing.T) {
	// Crash on the receiving endpoint itself must clear its reassembly
	// table (the corpse's memory is gone, pooled buffers returned).
	r := newRig(t, arch.Sun, arch.Sun)
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, _ = r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: make([]byte, 8192)})
	})
	r.k.Spawn("crash", func(p *sim.Proc) {
		p.Sleep(3 * time.Millisecond)
		r.net.SetHostDown(1, true)
		r.eps[1].Crash()
		if got := r.eps[1].PartialReassemblies(); got != 0 {
			t.Errorf("crashed endpoint still holds %d partial reassemblies", got)
		}
	})
	r.k.RunFor(100 * time.Millisecond)
}

func TestCallFailsFastOnDeadPeer(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	r.eps[0].SetPeerCheck(func(h HostID) bool { return h == 1 })
	r.startAll()
	var err error
	var elapsed sim.Duration
	r.k.Spawn("caller", func(p *sim.Proc) {
		t0 := p.Now()
		_, err = r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho})
		elapsed = p.Now().Sub(t0)
	})
	r.k.Run()
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
	if elapsed != 0 {
		t.Fatalf("fail-fast call burned %v of virtual time", elapsed)
	}
}

func TestCallBlockingAbortsWhenPeerDeclaredDead(t *testing.T) {
	// A patient call is retrying at a silent host when the detector
	// declares it dead: the next retry must abort with ErrPeerDead
	// instead of retrying forever.
	r := newRig(t, arch.Sun, arch.Sun)
	dead := false
	r.eps[0].SetPeerCheck(func(h HostID) bool { return h == 1 && dead })
	r.eps[0].Start() // host 1 never starts: silent forever
	var err error
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, err = r.eps[0].CallBlocking(p, 1, &proto.Message{Kind: proto.KindSemOp, Args: []uint32{1, 1}})
	})
	r.k.Spawn("declare", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		dead = true
	})
	r.k.RunFor(time.Minute)
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("err = %v, want ErrPeerDead", err)
	}
}

func TestTimeoutHookEscalatesSilentHost(t *testing.T) {
	// Every exhausted request timeout must report the destination to the
	// failure detector's escalation hook.
	r := newRig(t, arch.Sun, arch.Sun)
	escalations := map[HostID]int{}
	r.eps[0].SetTimeoutHook(func(dst HostID) { escalations[dst]++ })
	r.eps[0].Start() // host 1 never starts: silent forever
	r.k.Spawn("caller", func(p *sim.Proc) {
		if _, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho}); !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
	})
	r.k.Run()
	if escalations[1] < int(r.par.MaxRetries) {
		t.Fatalf("host 1 escalated %d times, want ≥ %d (once per burned timeout)",
			escalations[1], r.par.MaxRetries)
	}
	if len(escalations) != 1 {
		t.Fatalf("unexpected escalations: %v", escalations)
	}
}

func TestDuplicatedFragmentsAreAbsorbed(t *testing.T) {
	// With the duplicate fault active, every fragment arrives twice; the
	// reassembly and dedup layers must deliver the request exactly once
	// with intact content.
	r := newRig(t, arch.Sun, arch.Firefly)
	r.net.SetFaultPlan(&netsim.FaultPlan{Duplicate: []netsim.Burst{{
		Window: netsim.Window{From: 0},
		Rate:   1.0,
	}}})
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i)
	}
	executions := 0
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		executions++
		for i := range req.Data {
			if req.Data[i] != byte(i) {
				t.Errorf("byte %d corrupted by duplication", i)
				break
			}
		}
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply})
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		if _, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: page}); err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if executions != 1 {
		t.Fatalf("handler executed %d times under duplication, want 1", executions)
	}
	if r.net.Stats().FramesDuplicated == 0 {
		t.Fatal("fault plan duplicated nothing")
	}
}
