package remoteop

// Fault-tolerance support: fragment checksums (so in-flight corruption
// is detected, never silently installed), payload hooks for the
// network's duplicate/corrupt faults, crash-stop endpoint state, and
// the peer-death fail-fast that turns "retry forever at a dead host"
// into a typed error the DSM layer can act on.

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bufpool"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// ErrPeerDead is returned by calls addressed to a host the failure
// detector has declared dead. Unlike ErrTimeout it is immediate: no
// retransmissions are spent on a peer known to have crashed.
var ErrPeerDead = errors.New("remoteop: peer host is down")

// checksum is the FNV-1a hash guarding each fragment's wire bytes. The
// sender stamps it at fragmentation time; the receiver verifies before
// reassembly, so a corrupted fragment is dropped (and retransmitted by
// the sender's timeout machinery) instead of being installed.
func checksum(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// cloneFragment deep-copies a fragment for an extra (duplicate) or
// altered (corrupt) delivery. The copy owns GC-managed memory only: it
// must not share the original's pooled chunk or refcounted encode
// buffer, or a double delivery would double-release them. The
// original's own buffer share is unaffected either way.
func cloneFragment(payload any) any {
	fr, ok := payload.(*fragment)
	if !ok {
		return payload
	}
	dup := &fragment{
		srcHost: fr.srcHost,
		srcKind: fr.srcKind,
		msgID:   fr.msgID,
		idx:     fr.idx,
		total:   fr.total,
		bulk:    fr.bulk,
		sum:     fr.sum,
		owner:   nil,
		pooled:  false,
	}
	dup.chunk = append([]byte(nil), fr.chunk...)
	return dup
}

// corruptFragment returns a copy of the fragment with one wire byte
// damaged. The frame that carried the original is considered the
// damaged one, so the original's pooled resources fall to the garbage
// collector exactly as a lost frame's would — safe by construction.
func corruptFragment(payload any, r *rand.Rand) any {
	dup, ok := cloneFragment(payload).(*fragment)
	if !ok {
		return payload
	}
	if len(dup.chunk) > 0 {
		dup.chunk[r.Intn(len(dup.chunk))] ^= 0xA5
	}
	return dup
}

// registerFaultHooks points the network's duplicate/corrupt faults at
// this package's payload-aware hooks. Idempotent; every endpoint
// registers at creation so a fault plan can be installed at any time.
func registerFaultHooks(n *netsim.Network) {
	n.SetPayloadHooks(cloneFragment, corruptFragment)
}

// SetPeerCheck installs the failure detector's liveness predicate:
// dead(h) true means h has been declared crashed. Calls addressed to a
// dead host fail fast with ErrPeerDead instead of burning retries.
func (e *Endpoint) SetPeerCheck(dead func(h HostID) bool) { e.peerDead = dead }

// SetTimeoutHook installs the failure detector's escalation callback,
// invoked with the destination host each time a call exhausts a full
// request timeout without an answer. Repeated escalations are how a
// silent host becomes a suspect even between heartbeats.
func (e *Endpoint) SetTimeoutHook(f func(dst HostID)) { e.onTimeout = f }

// dead reports whether the detector has declared h dead.
func (e *Endpoint) dead(h HostID) bool { return e.peerDead != nil && e.peerDead(h) }

// escalate reports a timed-out destination to the failure detector.
func (e *Endpoint) escalate(dst HostID) {
	if e.onTimeout != nil && dst != Broadcast {
		e.onTimeout(dst)
	}
}

// exitIfCrashed unwinds the calling process if this endpoint's host has
// crashed: a dead machine's threads simply cease at their next
// interaction with the network stack.
func (e *Endpoint) exitIfCrashed(p *sim.Proc) {
	if e.crashed {
		p.Exit()
	}
}

// Crashed reports whether Crash has been called.
func (e *Endpoint) Crashed() bool { return e.crashed }

// Crash marks the endpoint's host as crashed and discards its partial
// reassembly state, returning the pooled buffers. Processes of the
// crashed host unwind at their next call through this endpoint; the
// server process stays parked forever on its silent interface (the NIC
// is down, so nothing arrives).
func (e *Endpoint) Crash() {
	e.crashed = true
	for key := range e.reasm { // vet:ignore map-order — dropPartial mutates the pool and the table; beyond the prover, but releases are not simulation-visible
		e.dropPartial(key)
	}
}

// DropPartials discards partial reassemblies originating at src — a
// host declared dead mid-transfer never completes them — returning the
// pooled buffers instead of leaking them in the reassembly table.
func (e *Endpoint) DropPartials(src HostID) {
	for key := range e.reasm { // vet:ignore map-order — dropPartial mutates the pool and the table; beyond the prover, but releases are not simulation-visible
		if key.src == src {
			e.dropPartial(key)
		}
	}
}

// PartialReassemblies counts in-progress reassembly buffers (leak-guard
// tests assert it returns to zero after crash cleanup).
func (e *Endpoint) PartialReassemblies() int { return len(e.reasm) }

func (e *Endpoint) dropPartial(key reasmKey) {
	buf := e.reasm[key]
	if buf == nil {
		return
	}
	delete(e.reasm, key)
	bufpool.Put(buf.data)
	buf.data = nil
	reasmPool.Put(buf)
}

// peerDeadErr builds the typed fail-fast error for a dead destination.
func peerDeadErr(dst HostID) error {
	return fmt.Errorf("%w (host %d)", ErrPeerDead, dst)
}
