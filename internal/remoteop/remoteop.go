// Package remoteop implements Mermaid's remote operations module: a
// simple request–response protocol with forwarding and multicast
// capabilities on top of the datagram network (§2.2 of the paper).
//
// Messages larger than the MTU are fragmented and reassembled at user
// level, because (as on the Firefly's UDP) the transport provides no
// fragmentation. Requests are retransmitted on timeout; duplicate
// requests are detected and answered from a small reply cache so that
// retransmission does not re-execute handlers. Responses are correlated
// to requests by ReqID, which lets a *forwarded* request (requester →
// manager → owner) be answered by a host other than the one originally
// contacted — the owner replies straight to the requester.
//
// Virtual-time cost accounting for bulk (page-carrying) messages lives
// here: the sender charges MsgSetup plus FragCost per fragment, and the
// receiver charges MsgSetup plus FragCost per fragment (plus
// CrossPenalty between unlike machine types) when reassembly completes.
// Control messages are free at this layer; their handling costs are
// role-specific (manager vs owner vs copyset member) and are charged by
// the DSM protocol handlers.
package remoteop

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// HostID identifies a host; it aliases the network's host identifier.
type HostID = netsim.HostID

// ErrTimeout is returned when a call exhausts its retransmissions.
var ErrTimeout = errors.New("remoteop: request timed out")

// Handler processes one inbound request. It runs on its own simulated
// process and typically ends by calling Reply or Forward.
type Handler func(p *sim.Proc, req *proto.Message)

// Stats counts protocol-level activity at one endpoint.
type Stats struct {
	// Sent counts messages sent (requests, replies, forwards).
	Sent int
	// Received counts complete messages received.
	Received int
	// FragmentsSent and FragmentsReceived count link fragments.
	FragmentsSent     int
	FragmentsReceived int
	// Retransmits counts request retransmissions.
	Retransmits int
	// Duplicates counts duplicate requests absorbed by the reply cache.
	Duplicates int
	// BulkBytes counts page payload bytes sent.
	BulkBytes int
	// ChecksumDrops counts fragments discarded because their checksum
	// did not match — corruption detected in flight.
	ChecksumDrops int
}

// encOwner tracks a pooled encode buffer shared by a message's
// fragments: the last fragment consumed (or dropped at delivery)
// returns the buffer to the pool. Frames lost on the wire never
// decrement, so their buffers simply fall to the garbage collector — a
// pool miss, never a reuse-while-referenced.
type encOwner struct {
	buf       []byte
	remaining atomic.Int32
}

func (o *encOwner) release() {
	if o == nil {
		return
	}
	if o.remaining.Add(-1) == 0 {
		bufpool.Put(o.buf)
		o.buf = nil
		ownerPool.Put(o)
	}
}

var ownerPool = sync.Pool{New: func() any { return new(encOwner) }}

// fragment is the link-layer payload: one piece of an encoded message.
// Unicast fragments are pooled (the receiver recycles them); broadcast
// fragments are shared by every receiver and are left to the garbage
// collector.
type fragment struct {
	srcHost HostID
	srcKind arch.Kind
	msgID   uint64
	idx     int
	total   int
	bulk    bool
	chunk   []byte
	// sum is the FNV-1a checksum of chunk, stamped at send time and
	// verified on receive, so in-flight corruption is detected.
	sum    uint32
	owner  *encOwner
	pooled bool
}

var fragPool = sync.Pool{New: func() any { return new(fragment) }}

// releaseFrag recycles a consumed fragment: the chunk's encode buffer
// refcount drops, and pooled fragments return to the fragment pool.
func releaseFrag(fr *fragment) {
	owner, pooled := fr.owner, fr.pooled
	if pooled {
		*fr = fragment{}
		fragPool.Put(fr)
	}
	owner.release()
}

type reasmKey struct {
	src   HostID
	msgID uint64
}

type reasmBuf struct {
	data    []byte
	seen    []bool
	have    int
	bytes   int
	bulk    bool
	srcKind arch.Kind
}

var reasmPool = sync.Pool{New: func() any { return new(reasmBuf) }}

type dedupKey struct {
	from  uint32
	reqID uint32
}

type dedupEntry struct {
	done  bool
	reply *proto.Message
	to    HostID
}

type pendingCall struct {
	reply *proto.Message
	// multi/want are set for multicast calls: replies are collected per
	// responder until every wanted host has answered.
	multi map[HostID]*proto.Message
	want  map[HostID]struct{}
	w     sim.Waiter
	armed bool
}

// done reports whether the call has everything it is waiting for.
func (pc *pendingCall) done() bool {
	if pc.multi != nil {
		return len(pc.multi) == len(pc.want)
	}
	return pc.reply != nil
}

// Endpoint is one host's remote-operation engine. Create it with New,
// register handlers, then Start its server process.
type Endpoint struct {
	k       *sim.Kernel
	id      HostID
	kind    arch.Kind
	ifc     *netsim.Interface
	params  *model.Params
	handler map[proto.Kind]Handler

	pending map[uint32]*pendingCall
	nextReq uint32
	nextMsg uint64
	reasm   map[reasmKey]*reasmBuf
	dedup   map[dedupKey]*dedupEntry
	dedupQ  []dedupKey
	stats   Stats
	// kindSent counts messages sent by protocol kind — the per-scheme
	// message-count comparison of the paper's §3.1 needs the breakdown,
	// not just the total.
	kindSent map[proto.Kind]int
	started  bool

	// peerDead is the failure detector's liveness predicate; onTimeout
	// its escalation callback; crashed marks this endpoint's own host as
	// failed (see fault.go).
	peerDead  func(h HostID) bool
	onTimeout func(dst HostID)
	crashed   bool
}

// dedupCap bounds the duplicate-detection cache per endpoint.
const dedupCap = 2048

// New creates an endpoint for a host of the given machine kind attached
// to the network through ifc.
func New(k *sim.Kernel, ifc *netsim.Interface, kind arch.Kind, params *model.Params) *Endpoint {
	registerFaultHooks(ifc.Network())
	return &Endpoint{
		k:        k,
		id:       ifc.ID(),
		kind:     kind,
		ifc:      ifc,
		params:   params,
		handler:  make(map[proto.Kind]Handler),
		pending:  make(map[uint32]*pendingCall),
		reasm:    make(map[reasmKey]*reasmBuf),
		dedup:    make(map[dedupKey]*dedupEntry),
		kindSent: make(map[proto.Kind]int),
	}
}

// ID returns the endpoint's host ID.
func (e *Endpoint) ID() HostID { return e.id }

// Kind returns the endpoint's machine kind.
func (e *Endpoint) Kind() arch.Kind { return e.kind }

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats { return e.stats }

// Handle registers the handler for a request kind. It must be called
// before Start.
func (e *Endpoint) Handle(kind proto.Kind, h Handler) {
	e.handler[kind] = h
}

// Start launches the endpoint's server process, which receives
// fragments, reassembles messages, completes pending calls, and
// dispatches requests to handlers.
func (e *Endpoint) Start() {
	if e.started {
		return
	}
	e.started = true
	e.k.Spawn(fmt.Sprintf("net-server-%d", e.id), e.serve)
}

func (e *Endpoint) serve(p *sim.Proc) {
	for {
		frame := e.ifc.Recv(p)
		frag, ok := frame.Payload.(*fragment)
		if !ok {
			continue // alien frame on the wire
		}
		e.stats.FragmentsReceived++
		if checksum(frag.chunk) != frag.sum {
			// Corrupted in flight: drop it here, before reassembly, and
			// let the sender's retransmission recover. Without this
			// check the damage would be installed as page content.
			e.stats.ChecksumDrops++
			releaseFrag(frag)
			continue
		}
		buf, done := e.reassemble(frag)
		total, bulk, srcKind := frag.total, frag.bulk, frag.srcKind
		// The chunk has been copied out (or dropped); recycle the
		// fragment and its share of the sender's encode buffer.
		releaseFrag(frag)
		if !done {
			continue
		}
		// Bulk receive processing: reassembly and page copy, plus the
		// cross-type penalty (§2.2; fitted to Table 2).
		if bulk {
			cost := e.params.MsgSetup.Of(e.kind) +
				sim.Duration(total)*e.params.FragCost.Of(e.kind)
			if srcKind != e.kind {
				cost += e.params.CrossPenalty
			}
			p.Sleep(cost)
		}
		m := &proto.Message{}
		if err := proto.DecodeBorrowInto(m, buf); err != nil {
			bufpool.Put(buf)
			continue // corrupt message; sender will retransmit
		}
		e.stats.Received++
		if len(m.Data) == 0 {
			// Nothing aliases the wire buffer once the header and args
			// are parsed into the message; recycle it right away.
			bufpool.Put(buf)
		} else {
			m.SetWire(buf)
		}
		e.dispatch(m)
	}
}

// reassemble copies the fragment's chunk into a pooled, receiver-owned
// buffer and reports whether the message is now complete. The caller
// releases the fragment afterwards in every path. On done the caller
// owns the returned buffer and must Put or transfer it; when not done
// there is no buffer (partial assemblies stay owned by the reasm table);
// the ownership of the result is inferred interprocedurally, no
// directive needed.
func (e *Endpoint) reassemble(frag *fragment) ([]byte, bool) {
	if frag.total == 1 {
		out := bufpool.Get(len(frag.chunk))
		copy(out, frag.chunk)
		return out, true
	}
	key := reasmKey{src: frag.srcHost, msgID: frag.msgID}
	buf := e.reasm[key]
	if buf == nil {
		buf = reasmPool.Get().(*reasmBuf)
		buf.data = bufpool.Get(frag.total * e.params.MTUPayload)
		if cap(buf.seen) >= frag.total {
			buf.seen = buf.seen[:frag.total]
			for i := range buf.seen {
				buf.seen[i] = false
			}
		} else {
			buf.seen = make([]bool, frag.total)
		}
		buf.have, buf.bytes = 0, 0
		buf.bulk, buf.srcKind = frag.bulk, frag.srcKind
		e.reasm[key] = buf
	}
	off := frag.idx * e.params.MTUPayload
	if frag.idx >= len(buf.seen) || buf.seen[frag.idx] || off+len(frag.chunk) > len(buf.data) {
		return nil, false // duplicate or inconsistent fragment
	}
	buf.seen[frag.idx] = true
	copy(buf.data[off:], frag.chunk)
	buf.have++
	buf.bytes += len(frag.chunk)
	if buf.have < len(buf.seen) {
		return nil, false
	}
	delete(e.reasm, key)
	out := buf.data[:buf.bytes]
	buf.data = nil
	reasmPool.Put(buf)
	return out, true
}

func (e *Endpoint) dispatch(m *proto.Message) {
	if m.Kind.IsReply() {
		pc := e.pending[m.ReqID]
		if pc == nil {
			bufpool.Put(m.TakeWire())
			return // stale reply
		}
		if pc.multi != nil {
			from := HostID(m.From)
			if _, wanted := pc.want[from]; !wanted {
				bufpool.Put(m.TakeWire())
				return // ack from a bystander or duplicate source
			}
			if _, dup := pc.multi[from]; dup {
				bufpool.Put(m.TakeWire())
				return
			}
			pc.multi[from] = m
			if pc.done() && pc.armed {
				pc.armed = false
				e.k.Wake(pc.w, sim.WakeSignal)
			}
			return
		}
		if pc.reply != nil {
			bufpool.Put(m.TakeWire())
			return // duplicate reply
		}
		pc.reply = m
		if pc.armed {
			pc.armed = false
			e.k.Wake(pc.w, sim.WakeSignal)
		}
		return
	}
	key := dedupKey{from: m.From, reqID: m.ReqID}
	if ent, seen := e.dedup[key]; seen {
		e.stats.Duplicates++
		bufpool.Put(m.TakeWire())
		if ent.done && ent.reply != nil {
			// Answer the retransmission from the reply cache.
			reply, dst := ent.reply, ent.to
			e.k.Spawn(fmt.Sprintf("resend-%d", e.id), func(p *sim.Proc) {
				e.send(p, dst, reply)
			})
		}
		return // in progress: the original execution will answer
	}
	e.remember(key, &dedupEntry{})
	h := e.handler[m.Kind]
	if h == nil {
		bufpool.Put(m.TakeWire())
		return // no handler: request vanishes, requester times out
	}
	e.k.Spawn(fmt.Sprintf("handler-%d-%s", e.id, m.Kind), func(p *sim.Proc) {
		h(p, m)
	})
}

func (e *Endpoint) remember(key dedupKey, ent *dedupEntry) {
	if len(e.dedupQ) >= dedupCap {
		oldest := e.dedupQ[0]
		e.dedupQ = e.dedupQ[1:]
		delete(e.dedup, oldest)
	}
	e.dedup[key] = ent
	e.dedupQ = append(e.dedupQ, key)
}

// send encodes and transmits m to dst, fragmenting as needed and
// charging bulk costs. It blocks for the sender-side virtual time.
//
// Unicast encodes into a pooled buffer shared by the fragments through
// a refcounted owner; each receiver-side release decrements it, and the
// last returns the buffer (fragments lost on the wire never decrement,
// so their buffers fall to the garbage collector instead — always
// safe). A broadcast frame is delivered to every host at once, so its
// single fragment and buffer cannot be refcounted per receiver — they
// stay unpooled and fall to the garbage collector.
func (e *Endpoint) send(p *sim.Proc, dst HostID, m *proto.Message) {
	e.exitIfCrashed(p)
	if m.SrcArch == 0 {
		m.SrcArch = uint8(e.kind)
	}
	broadcast := dst == Broadcast
	var (
		buf   []byte
		err   error
		owner *encOwner
	)
	if broadcast {
		buf, err = m.Encode() // vet:ignore hot-alloc — broadcast fragments share one GC-owned buffer
	} else {
		// The owner takes the encode buffer in the same branch that
		// acquires it; the refcount is armed below once the fragment
		// count is known.
		buf, err = m.AppendEncode(bufpool.Get(m.EncodedSize())[:0])
		owner = ownerPool.Get().(*encOwner)
		owner.buf = buf
	}
	if err != nil {
		// Encoding errors are programming errors in protocol code.
		panic(fmt.Sprintf("remoteop: encode %v: %v", m.Kind, err))
	}
	bulk := len(m.Data) > 0
	total := e.params.Fragments(len(buf))
	if owner != nil {
		owner.remaining.Store(int32(total))
	}
	e.nextMsg++
	msgID := e.nextMsg
	if bulk {
		p.Sleep(e.params.MsgSetup.Of(e.kind))
		e.stats.BulkBytes += len(m.Data)
	}
	for idx := 0; idx < total; idx++ {
		lo := idx * e.params.MTUPayload
		hi := min(lo+e.params.MTUPayload, len(buf))
		if bulk {
			p.Sleep(e.params.FragCost.Of(e.kind))
		}
		var fr *fragment
		if broadcast {
			fr = &fragment{}
		} else {
			fr = fragPool.Get().(*fragment)
		}
		*fr = fragment{
			srcHost: e.id,
			srcKind: e.kind,
			msgID:   msgID,
			idx:     idx,
			total:   total,
			bulk:    bulk,
			chunk:   buf[lo:hi],
			sum:     checksum(buf[lo:hi]),
			owner:   owner,
			pooled:  !broadcast,
		}
		frame := netsim.Frame{
			From:    e.id,
			To:      dst,
			Size:    hi - lo,
			Payload: fr,
		}
		if err := e.ifc.Send(p, frame); err != nil {
			panic(fmt.Sprintf("remoteop: send: %v", err))
		}
		e.stats.FragmentsSent++
	}
	e.stats.Sent++
	e.kindSent[m.Kind]++
}

// MessageCounts returns a copy of the per-kind sent-message counters.
func (e *Endpoint) MessageCounts() map[proto.Kind]int {
	out := make(map[proto.Kind]int, len(e.kindSent))
	for k, n := range e.kindSent {
		out[k] = n
	}
	return out
}

// Call sends a request to dst and blocks until the matching reply
// arrives (possibly from a different host, if the request was
// forwarded), retransmitting on timeout. The request's ReqID and From
// are assigned here.
func (e *Endpoint) Call(p *sim.Proc, dst HostID, m *proto.Message) (*proto.Message, error) {
	e.nextReq++
	m.ReqID = e.nextReq
	m.From = uint32(e.id)
	pc := &pendingCall{}
	e.pending[m.ReqID] = pc
	defer delete(e.pending, m.ReqID)

	for try := 0; try <= e.params.MaxRetries; try++ {
		if e.dead(dst) {
			// The detector declared the peer dead (possibly mid-call):
			// fail fast instead of spending retransmissions on it.
			return nil, peerDeadErr(dst)
		}
		if try > 0 {
			e.stats.Retransmits++
		}
		e.send(p, dst, m)
		if pc.reply != nil {
			return pc.reply, nil
		}
		pc.w = p.PrepareWait()
		pc.armed = true
		reason := p.ParkTimeout(e.params.RequestTimeout)
		pc.armed = false
		if pc.reply != nil {
			return pc.reply, nil
		}
		e.escalate(dst)
		if reason == sim.WakeSignal {
			// Spurious wake without a reply cannot happen by
			// construction, but guard anyway.
			continue
		}
	}
	if e.dead(dst) {
		return nil, peerDeadErr(dst)
	}
	return nil, fmt.Errorf("%w (kind %v to host %d)", ErrTimeout, m.Kind, dst)
}

// CallBlocking is Call for operations that may legitimately wait a long
// time for their reply (P on a held semaphore, event waits, barrier
// arrivals): it retries indefinitely, retransmitting every
// BlockingRetryInterval, and only fails when the failure detector
// declares the destination dead — waiting forever on a crashed
// semaphore manager would wedge the caller permanently. Duplicate-
// request absorption at the receiver makes the retransmissions
// harmless.
func (e *Endpoint) CallBlocking(p *sim.Proc, dst HostID, m *proto.Message) (*proto.Message, error) {
	e.nextReq++
	m.ReqID = e.nextReq
	m.From = uint32(e.id)
	pc := &pendingCall{}
	e.pending[m.ReqID] = pc
	defer delete(e.pending, m.ReqID)
	for try := 0; ; try++ {
		if e.dead(dst) {
			return nil, peerDeadErr(dst)
		}
		if try > 0 {
			e.stats.Retransmits++
		}
		e.send(p, dst, m)
		if pc.reply != nil {
			return pc.reply, nil
		}
		pc.w = p.PrepareWait()
		pc.armed = true
		p.ParkTimeout(e.params.BlockingRetryInterval)
		pc.armed = false
		if pc.reply != nil {
			return pc.reply, nil
		}
	}
}

// SendOneWay transmits a message without expecting any response — used
// by notifications and by calibration harnesses that time a bare
// transfer. The caller blocks for the sender-side virtual time only.
func (e *Endpoint) SendOneWay(p *sim.Proc, dst HostID, m *proto.Message) {
	e.nextReq++
	m.ReqID = e.nextReq
	m.From = uint32(e.id)
	e.send(p, dst, m)
}

// Redeem completes a pending call made from this endpoint with the
// given message, as if it were the call's reply. It lets a payload that
// arrives as an independent (reliable, acked) request — such as a page
// delivery forwarded through a manager — satisfy the original call. It
// reports whether a pending call was completed (false for duplicates or
// stale deliveries).
func (e *Endpoint) Redeem(reqID uint32, m *proto.Message) bool {
	pc := e.pending[reqID]
	if pc == nil || pc.reply != nil {
		return false
	}
	pc.reply = m
	if pc.armed {
		pc.armed = false
		e.k.Wake(pc.w, sim.WakeSignal)
	}
	return true
}

// Reply sends resp as the answer to req, directly to the original
// requester, and caches it for duplicate absorption. The response
// carries this endpoint as its From so multicast callers can attribute
// acknowledgements.
func (e *Endpoint) Reply(p *sim.Proc, req *proto.Message, resp *proto.Message) {
	resp.ReqID = req.ReqID
	resp.From = uint32(e.id)
	dst := HostID(req.From)
	key := dedupKey{from: req.From, reqID: req.ReqID}
	if ent, ok := e.dedup[key]; ok {
		ent.done = true
		ent.reply = resp
		ent.to = dst
	}
	e.send(p, dst, resp)
}

// Forward passes req on to dst unchanged (same ReqID and original From),
// so dst can reply directly to the requester — the protocol's forwarding
// capability used for the manager → owner hop.
func (e *Endpoint) Forward(p *sim.Proc, dst HostID, req *proto.Message) {
	e.send(p, dst, req)
}

// CallMulticast transmits one request as a physical broadcast frame and
// blocks until every host in targets has acknowledged — the multicast
// the paper's remote operations module provides for write invalidation
// (§2.2). Hosts outside targets also receive the frame; the message's
// arguments must let their handlers recognize they are bystanders (and
// stay silent). Missing acknowledgements are recovered by re-sending
// the same request to the stragglers individually.
func (e *Endpoint) CallMulticast(p *sim.Proc, targets []HostID, m *proto.Message) ([]*proto.Message, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	e.nextReq++
	m.ReqID = e.nextReq
	m.From = uint32(e.id)
	pc := &pendingCall{
		multi: make(map[HostID]*proto.Message, len(targets)),
		want:  make(map[HostID]struct{}, len(targets)),
	}
	for _, t := range targets {
		pc.want[t] = struct{}{}
	}
	e.pending[m.ReqID] = pc
	defer delete(e.pending, m.ReqID)

	e.send(p, Broadcast, m)
	for try := 0; try <= e.params.MaxRetries; try++ {
		deadline := p.Now().Add(e.params.RequestTimeout)
		for !pc.done() {
			remaining := deadline.Sub(p.Now())
			if remaining <= 0 {
				break
			}
			pc.w = p.PrepareWait()
			pc.armed = true
			p.ParkTimeout(remaining)
			pc.armed = false
		}
		if pc.done() {
			replies := make([]*proto.Message, 0, len(targets))
			for _, t := range targets {
				replies = append(replies, pc.multi[t])
			}
			return replies, nil
		}
		// Chase the stragglers individually (their duplicate caches
		// absorb re-delivery and resend the lost acks).
		e.stats.Retransmits++
		for _, t := range targets {
			if _, ok := pc.multi[t]; !ok {
				e.escalate(t)
				e.send(p, t, m)
			}
		}
	}
	return nil, fmt.Errorf("%w (multicast to %d hosts)", ErrTimeout, len(targets))
}

// Broadcast is the physical broadcast destination.
const Broadcast = netsim.Broadcast

// CallAll sends one request per destination (built by mk, which receives
// the destination) and blocks until every reply has arrived — the
// multicast used for write invalidation. Lost requests are retransmitted
// individually.
func (e *Endpoint) CallAll(p *sim.Proc, dsts []HostID, mk func(dst HostID) *proto.Message) ([]*proto.Message, error) {
	if len(dsts) == 0 {
		return nil, nil
	}
	msgs := make([]*proto.Message, len(dsts))
	calls := make([]*pendingCall, len(dsts))
	for i, dst := range dsts {
		m := mk(dst)
		e.nextReq++
		m.ReqID = e.nextReq
		m.From = uint32(e.id)
		msgs[i] = m
		calls[i] = &pendingCall{}
		e.pending[m.ReqID] = calls[i]
	}
	defer func() {
		for _, m := range msgs {
			delete(e.pending, m.ReqID)
		}
	}()

	allDone := func() bool {
		for _, pc := range calls {
			if pc.reply == nil {
				return false
			}
		}
		return true
	}

	for try := 0; try <= e.params.MaxRetries; try++ {
		for i, dst := range dsts {
			if calls[i].reply == nil {
				if try > 0 {
					e.stats.Retransmits++
					e.escalate(dst)
				}
				e.send(p, dst, msgs[i])
			}
		}
		deadline := p.Now().Add(e.params.RequestTimeout)
		for !allDone() {
			remaining := deadline.Sub(p.Now())
			if remaining <= 0 {
				break
			}
			w := p.PrepareWait()
			for _, pc := range calls {
				if pc.reply == nil {
					pc.w = w
					pc.armed = true
				}
			}
			p.ParkTimeout(remaining)
			for _, pc := range calls {
				pc.armed = false
			}
		}
		if allDone() {
			replies := make([]*proto.Message, len(calls))
			for i, pc := range calls {
				replies[i] = pc.reply
			}
			return replies, nil
		}
	}
	return nil, fmt.Errorf("%w (multicast to %d hosts)", ErrTimeout, len(dsts))
}

// CallQuorum sends one request per destination (built by mk) and blocks
// until `need` replies have arrived — first-majority completion for
// quorum protocols: the caller resumes the moment any quorum answers
// instead of waiting out the slowest replica. The returned slice is
// indexed like dsts, nil for hosts that had not answered when the
// quorum completed; those stragglers' late replies are recycled by the
// stale-reply path once the pending entries are deleted here. Hosts the
// failure detector has declared dead are skipped outright (they cannot
// count toward the quorum), and the round fails fast with ErrPeerDead
// when fewer than `need` destinations remain reachable at all —
// distinct from ErrTimeout, which means enough peers are alive but a
// quorum of them is unreachable *this instant* (a partition the caller
// should ride out with its own backoff).
func (e *Endpoint) CallQuorum(p *sim.Proc, dsts []HostID, need int, mk func(dst HostID) *proto.Message) ([]*proto.Message, error) {
	if need <= 0 || need > len(dsts) {
		panic(fmt.Sprintf("remoteop: quorum of %d from %d destinations", need, len(dsts)))
	}
	msgs := make([]*proto.Message, len(dsts))
	calls := make([]*pendingCall, len(dsts))
	for i, dst := range dsts {
		if e.dead(dst) {
			continue
		}
		m := mk(dst)
		e.nextReq++
		m.ReqID = e.nextReq
		m.From = uint32(e.id)
		msgs[i] = m
		calls[i] = &pendingCall{}
		e.pending[m.ReqID] = calls[i]
	}
	defer func() {
		for _, m := range msgs {
			if m != nil {
				delete(e.pending, m.ReqID)
			}
		}
	}()

	got := func() int {
		n := 0
		for _, pc := range calls {
			if pc != nil && pc.reply != nil {
				n++
			}
		}
		return n
	}

	for try := 0; try <= e.params.MaxRetries; try++ {
		// Replies in hand plus destinations still able to answer: when
		// that falls short of the quorum, no amount of waiting helps.
		reachable := 0
		for i, dst := range dsts {
			if calls[i] == nil {
				continue
			}
			if calls[i].reply != nil || !e.dead(dst) {
				reachable++
			}
		}
		if reachable < need {
			return nil, fmt.Errorf("%w: quorum needs %d of %d hosts, only %d reachable", ErrPeerDead, need, len(dsts), reachable)
		}
		for i, dst := range dsts {
			if calls[i] == nil || calls[i].reply != nil || e.dead(dst) {
				continue
			}
			if try > 0 {
				e.stats.Retransmits++
				e.escalate(dst)
			}
			e.send(p, dst, msgs[i])
		}
		deadline := p.Now().Add(e.params.RequestTimeout)
		for got() < need {
			remaining := deadline.Sub(p.Now())
			if remaining <= 0 {
				break
			}
			w := p.PrepareWait()
			for _, pc := range calls {
				if pc != nil && pc.reply == nil {
					pc.w = w
					pc.armed = true
				}
			}
			p.ParkTimeout(remaining)
			for _, pc := range calls {
				if pc != nil {
					pc.armed = false
				}
			}
		}
		if got() >= need {
			replies := make([]*proto.Message, len(calls))
			for i, pc := range calls {
				if pc != nil {
					replies[i] = pc.reply
				}
			}
			return replies, nil
		}
	}
	return nil, fmt.Errorf("%w (quorum %d of %d hosts)", ErrTimeout, need, len(dsts))
}
