package remoteop

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/sim"
)

// rig builds a kernel, network, and endpoints of the given kinds.
type rig struct {
	k   *sim.Kernel
	net *netsim.Network
	eps []*Endpoint
	par *model.Params
}

func newRig(t *testing.T, kinds ...arch.Kind) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	par := model.Default()
	n := netsim.New(k, &par)
	r := &rig{k: k, net: n, par: &par}
	for i, kind := range kinds {
		ifc, err := n.Attach(netsim.HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		r.eps = append(r.eps, New(k, ifc, kind, &par))
	}
	return r
}

func (r *rig) startAll() {
	for _, e := range r.eps {
		e.Start()
	}
}

func TestEchoCallRoundTrip(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply, Args: []uint32{req.Arg(0) + 1}})
	})
	r.startAll()
	var got uint32
	r.k.Spawn("caller", func(p *sim.Proc) {
		resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Args: []uint32{41}})
		if err != nil {
			t.Error(err)
			return
		}
		got = resp.Arg(0)
	})
	r.k.Run()
	if got != 42 {
		t.Fatalf("echo returned %d, want 42", got)
	}
}

func TestBulkMessageFragmentsAndReassembles(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Firefly)
	page := make([]byte, 8192)
	for i := range page {
		page[i] = byte(i * 7)
	}
	var received []byte
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		received = req.Data
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply})
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		if _, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: page}); err != nil {
			t.Error(err)
		}
	})
	r.k.Run()
	if len(received) != 8192 {
		t.Fatalf("received %d bytes, want 8192", len(received))
	}
	for i := range received {
		if received[i] != byte(i*7) {
			t.Fatalf("byte %d corrupted after reassembly", i)
		}
	}
	if r.eps[0].Stats().FragmentsSent < 6 {
		t.Fatalf("sent %d fragments, want ≥6 for 8KB", r.eps[0].Stats().FragmentsSent)
	}
}

func TestForwardingRepliesToOriginalRequester(t *testing.T) {
	// Requester 0 → manager 1 → owner 2; owner replies directly to 0.
	r := newRig(t, arch.Sun, arch.Sun, arch.Firefly)
	r.eps[1].Handle(proto.KindGetPage, func(p *sim.Proc, req *proto.Message) {
		r.eps[1].Forward(p, 2, req)
	})
	r.eps[2].Handle(proto.KindGetPage, func(p *sim.Proc, req *proto.Message) {
		if HostID(req.From) != 0 {
			t.Errorf("owner saw From=%d, want 0", req.From)
		}
		r.eps[2].Reply(p, req, &proto.Message{Kind: proto.KindPageReply, Args: []uint32{7}})
	})
	r.startAll()
	var got uint32
	r.k.Spawn("caller", func(p *sim.Proc) {
		resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindGetPage, Page: 3})
		if err != nil {
			t.Error(err)
			return
		}
		got = resp.Arg(0)
	})
	r.k.Run()
	if got != 7 {
		t.Fatalf("forwarded call returned %d, want 7", got)
	}
}

func TestRetransmissionRecoversFromLoss(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	r.net.DropRate = 0.3
	r.par.RequestTimeout = 20 * time.Millisecond
	handled := 0
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		handled++
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply, Args: []uint32{req.Arg(0)}})
	})
	r.startAll()
	okCount := 0
	r.k.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Args: []uint32{uint32(i)}})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp.Arg(0) != uint32(i) {
				t.Errorf("call %d returned %d", i, resp.Arg(0))
				return
			}
			okCount++
		}
	})
	r.k.Run()
	if okCount != 20 {
		t.Fatalf("only %d/20 calls completed", okCount)
	}
}

func TestDuplicateRequestsDoNotReexecuteHandler(t *testing.T) {
	// Drop every frame once: the request arrives, the reply is lost,
	// the retransmitted request must be served from the reply cache.
	r := newRig(t, arch.Sun, arch.Sun)
	r.par.RequestTimeout = 20 * time.Millisecond
	executions := 0
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		executions++
		// Lose the first reply by pointing the drop rate up just for it.
		if executions == 1 {
			r.net.DropRate = 1.0
			r.k.After(25*time.Millisecond, func() { r.net.DropRate = 0 })
		}
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply, Args: []uint32{99}})
	})
	r.startAll()
	var got uint32
	r.k.Spawn("caller", func(p *sim.Proc) {
		resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho})
		if err != nil {
			t.Error(err)
			return
		}
		got = resp.Arg(0)
	})
	r.k.Run()
	if got != 99 {
		t.Fatalf("got %d, want 99", got)
	}
	if executions != 1 {
		t.Fatalf("handler executed %d times, want exactly 1 (dedup)", executions)
	}
	if r.eps[1].Stats().Duplicates == 0 {
		t.Fatal("no duplicates recorded despite retransmission")
	}
}

func TestCallTimesOutOnDeadPeer(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	r.net.DropRate = 1.0
	r.par.RequestTimeout = 5 * time.Millisecond
	r.par.MaxRetries = 2
	r.startAll()
	var err error
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, err = r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho})
	})
	r.k.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if r.eps[0].Stats().Retransmits != 2 {
		t.Fatalf("retransmits %d, want 2", r.eps[0].Stats().Retransmits)
	}
}

func TestCallAllCollectsEveryAck(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Firefly, arch.Firefly, arch.Sun)
	for i := 1; i < 4; i++ {
		e := r.eps[i]
		e.Handle(proto.KindInvalidate, func(p *sim.Proc, req *proto.Message) {
			p.Sleep(time.Duration(e.ID()) * time.Millisecond)
			e.Reply(p, req, &proto.Message{Kind: proto.KindInvalidateAck, Args: []uint32{uint32(e.ID())}})
		})
	}
	r.startAll()
	var replies []*proto.Message
	var err error
	r.k.Spawn("caller", func(p *sim.Proc) {
		replies, err = r.eps[0].CallAll(p, []HostID{1, 2, 3}, func(dst HostID) *proto.Message {
			return &proto.Message{Kind: proto.KindInvalidate, Page: 5}
		})
	})
	r.k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 3 {
		t.Fatalf("got %d replies, want 3", len(replies))
	}
	for i, resp := range replies {
		if resp.Arg(0) != uint32(i+1) {
			t.Fatalf("reply %d from host %d, want %d", i, resp.Arg(0), i+1)
		}
	}
}

func TestCallAllEmptyDestinations(t *testing.T) {
	r := newRig(t, arch.Sun)
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		replies, err := r.eps[0].CallAll(p, nil, nil)
		if err != nil || replies != nil {
			t.Errorf("empty CallAll: %v %v", replies, err)
		}
	})
	r.k.Run()
}

func TestCallAllRetransmitsLostInvalidations(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun, arch.Sun)
	r.net.DropRate = 0.4
	r.par.RequestTimeout = 20 * time.Millisecond
	for i := 1; i < 3; i++ {
		e := r.eps[i]
		e.Handle(proto.KindInvalidate, func(p *sim.Proc, req *proto.Message) {
			e.Reply(p, req, &proto.Message{Kind: proto.KindInvalidateAck})
		})
	}
	r.startAll()
	var err error
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, err = r.eps[0].CallAll(p, []HostID{1, 2}, func(HostID) *proto.Message {
			return &proto.Message{Kind: proto.KindInvalidate}
		})
	})
	r.k.Run()
	if err != nil {
		t.Fatal(err)
	}
}

// measureTransfer returns the simulated one-way cost of moving a page of
// `size` bytes from a host of kind `from` to a host of kind `to`,
// matching the paper's Table 2 methodology (transfer only, no fault or
// conversion costs).
func measureTransfer(t *testing.T, from, to arch.Kind, size int) time.Duration {
	t.Helper()
	r := newRig(t, from, to)
	var done sim.Time
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		done = p.Now()
	})
	r.startAll()
	var start sim.Time
	r.k.Spawn("sender", func(p *sim.Proc) {
		start = p.Now()
		r.eps[0].SendOneWay(p, 1, &proto.Message{Kind: proto.KindEcho, Data: make([]byte, size)})
	})
	r.k.Run()
	if done == 0 {
		t.Fatal("page never arrived")
	}
	return done.Sub(start)
}

func TestTable2EmergentTransferCosts(t *testing.T) {
	// Paper Table 2 (ms): rows = sender, cols = receiver.
	tests := []struct {
		from, to arch.Kind
		size     int
		wantMS   float64
	}{
		{arch.Sun, arch.Sun, 8192, 18},
		{arch.Sun, arch.Firefly, 8192, 27},
		{arch.Firefly, arch.Sun, 8192, 25},
		{arch.Firefly, arch.Firefly, 8192, 33},
		{arch.Sun, arch.Sun, 1024, 5.1},
		{arch.Sun, arch.Firefly, 1024, 7.6},
		{arch.Firefly, arch.Sun, 1024, 7.3},
		{arch.Firefly, arch.Firefly, 1024, 6.7},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%v->%v/%d", tt.from, tt.to, tt.size), func(t *testing.T) {
			got := measureTransfer(t, tt.from, tt.to, tt.size)
			gotMS := float64(got) / float64(time.Millisecond)
			if gotMS < tt.wantMS*0.90 || gotMS > tt.wantMS*1.10 {
				t.Errorf("transfer %v→%v %dB = %.2f ms, paper %.1f ms (>10%% off)",
					tt.from, tt.to, tt.size, gotMS, tt.wantMS)
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply})
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, _ = r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: make([]byte, 3000)})
	})
	r.k.Run()
	s0, s1 := r.eps[0].Stats(), r.eps[1].Stats()
	if s0.Sent != 1 || s0.BulkBytes != 3000 {
		t.Fatalf("sender stats %+v", s0)
	}
	if s1.Received != 1 || s1.FragmentsReceived != 3 {
		t.Fatalf("receiver stats %+v", s1)
	}
	if s0.Received != 1 {
		t.Fatalf("caller did not count the reply: %+v", s0)
	}
}

func TestFragmentationBoundaries(t *testing.T) {
	// Messages whose encoded size lands exactly on MTU multiples (or one
	// off) must reassemble byte-perfectly.
	mp := model.Default()
	header := 20 // proto header bytes
	for _, delta := range []int{-1, 0, 1} {
		for _, mult := range []int{1, 2, 5} {
			size := mp.MTUPayload*mult - header + delta
			if size <= 0 {
				continue
			}
			r := newRig(t, arch.Sun, arch.Firefly)
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			var got []byte
			r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
				got = req.Data
				r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply})
			})
			r.startAll()
			r.k.Spawn("caller", func(p *sim.Proc) {
				if _, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Data: payload}); err != nil {
					t.Error(err)
				}
			})
			r.k.Run()
			if len(got) != size {
				t.Fatalf("size %d (mult %d delta %d): got %d bytes", size, mult, delta, len(got))
			}
			for i := range got {
				if got[i] != byte(i) {
					t.Fatalf("size %d: byte %d corrupted", size, i)
				}
			}
		}
	}
}

func TestInterleavedBulkMessagesReassembleIndependently(t *testing.T) {
	// Two senders stream large messages to one receiver concurrently;
	// per-(source,message) reassembly must not mix fragments.
	r := newRig(t, arch.Sun, arch.Firefly, arch.Sun)
	var got [][]byte
	r.eps[2].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		got = append(got, req.Data)
	})
	r.startAll()
	for s := 0; s < 2; s++ {
		s := s
		r.k.Spawn("sender", func(p *sim.Proc) {
			data := make([]byte, 6000)
			for i := range data {
				data[i] = byte(s*100 + i%50)
			}
			r.eps[s].SendOneWay(p, 2, &proto.Message{Kind: proto.KindEcho, Data: data})
		})
	}
	r.k.Run()
	if len(got) != 2 {
		t.Fatalf("received %d messages, want 2", len(got))
	}
	for _, data := range got {
		s := int(data[0]) / 100
		for i := range data {
			if data[i] != byte(s*100+i%50) {
				t.Fatalf("fragments of senders mixed at byte %d", i)
			}
		}
	}
}

func TestCallMulticastCollectsTargetAcks(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Firefly, arch.Firefly, arch.Sun, arch.Sun)
	acked := make(map[HostID]bool)
	for i := 1; i < 5; i++ {
		e := r.eps[i]
		e.Handle(proto.KindInvalidate, func(p *sim.Proc, req *proto.Message) {
			// Targets are listed in Args; bystanders stay silent.
			member := false
			for _, a := range req.Args {
				if HostID(a) == e.ID() {
					member = true
				}
			}
			if !member {
				return
			}
			acked[e.ID()] = true
			e.Reply(p, req, &proto.Message{Kind: proto.KindInvalidateAck})
		})
	}
	r.startAll()
	targets := []HostID{1, 3}
	r.k.Spawn("caller", func(p *sim.Proc) {
		replies, err := r.eps[0].CallMulticast(p, targets, &proto.Message{
			Kind: proto.KindInvalidate,
			Args: []uint32{1, 3},
		})
		if err != nil {
			t.Error(err)
			return
		}
		if len(replies) != 2 {
			t.Errorf("%d replies, want 2", len(replies))
		}
	})
	r.k.Run()
	if !acked[1] || !acked[3] {
		t.Fatalf("targets not acked: %v", acked)
	}
	if acked[2] || acked[4] {
		t.Fatalf("bystanders acted: %v", acked)
	}
	// One broadcast frame, not one per target.
	if sent := r.eps[0].Stats().FragmentsSent; sent != 1 {
		t.Fatalf("caller sent %d frames, want 1 broadcast", sent)
	}
}

func TestCallMulticastRecoversLostAcks(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun, arch.Sun)
	r.net.DropRate = 0.4
	r.par.RequestTimeout = 20 * time.Millisecond
	for i := 1; i < 3; i++ {
		e := r.eps[i]
		e.Handle(proto.KindInvalidate, func(p *sim.Proc, req *proto.Message) {
			e.Reply(p, req, &proto.Message{Kind: proto.KindInvalidateAck})
		})
	}
	r.startAll()
	var err error
	r.k.Spawn("caller", func(p *sim.Proc) {
		_, err = r.eps[0].CallMulticast(p, []HostID{1, 2}, &proto.Message{
			Kind: proto.KindInvalidate,
			Args: []uint32{1, 2},
		})
	})
	r.k.Run()
	if err != nil {
		t.Fatal(err)
	}
}

func TestCallMulticastEmptyTargets(t *testing.T) {
	r := newRig(t, arch.Sun)
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		replies, err := r.eps[0].CallMulticast(p, nil, &proto.Message{Kind: proto.KindInvalidate})
		if err != nil || replies != nil {
			t.Errorf("empty multicast: %v %v", replies, err)
		}
	})
	r.k.Run()
}

func TestCallBlockingWaitsThroughRetries(t *testing.T) {
	// A reply that arrives long after several blocking-retry intervals
	// must still complete the call exactly once.
	r := newRig(t, arch.Sun, arch.Firefly)
	r.par.BlockingRetryInterval = 50 * time.Millisecond
	var firstReq *proto.Message
	r.eps[1].Handle(proto.KindSemOp, func(p *sim.Proc, req *proto.Message) {
		if firstReq == nil {
			firstReq = req
			// Grant much later — the caller keeps retransmitting and
			// the duplicate cache keeps absorbing.
			r.k.After(400*time.Millisecond, func() {
				r.k.Spawn("granter", func(gp *sim.Proc) {
					r.eps[1].Reply(gp, firstReq, &proto.Message{Kind: proto.KindSemReply, Args: []uint32{7}})
				})
			})
		}
	})
	r.startAll()
	var got uint32
	var at sim.Time
	r.k.Spawn("caller", func(p *sim.Proc) {
		resp, err := r.eps[0].CallBlocking(p, 1, &proto.Message{Kind: proto.KindSemOp})
		if err != nil {
			t.Errorf("blocking call: %v", err)
			return
		}
		got = resp.Arg(0)
		at = p.Now()
	})
	r.k.RunFor(2 * time.Second)
	if got != 7 {
		t.Fatalf("blocking call returned %d, want 7", got)
	}
	if at < sim.Time(400*time.Millisecond) {
		t.Fatalf("granted at %v, before the grant", at)
	}
	if r.eps[0].Stats().Retransmits < 5 {
		t.Fatalf("only %d retransmits over a 400ms wait with 50ms patience", r.eps[0].Stats().Retransmits)
	}
	if r.eps[1].Stats().Duplicates < 5 {
		t.Fatalf("server absorbed only %d duplicates", r.eps[1].Stats().Duplicates)
	}
}

func TestRedeemCompletesPendingCall(t *testing.T) {
	// A third party can satisfy a pending call by delivering its
	// payload as a separate request that the handler redeems — the
	// forwarded-page-delivery pattern.
	r := newRig(t, arch.Sun, arch.Sun, arch.Sun)
	r.eps[1].Handle(proto.KindGetPage, func(p *sim.Proc, req *proto.Message) {
		// Hand off to host 2, telling it the requester and request ID.
		r.eps[1].SendOneWay(p, 2, &proto.Message{
			Kind: proto.KindServeRequest,
			Args: []uint32{req.From, req.ReqID},
		})
	})
	r.eps[2].Handle(proto.KindServeRequest, func(p *sim.Proc, req *proto.Message) {
		r.eps[2].SendOneWay(p, HostID(req.Arg(0)), &proto.Message{
			Kind: proto.KindPageDeliver,
			Args: []uint32{0, req.Arg(1)},
			Data: []byte("payload"),
		})
	})
	r.eps[0].Handle(proto.KindPageDeliver, func(p *sim.Proc, req *proto.Message) {
		if !r.eps[0].Redeem(req.Arg(1), req) {
			t.Error("redeem failed")
		}
		if r.eps[0].Redeem(req.Arg(1), req) {
			t.Error("double redeem succeeded")
		}
	})
	r.startAll()
	var got string
	r.k.Spawn("caller", func(p *sim.Proc) {
		resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindGetPage, Page: 9})
		if err != nil {
			t.Error(err)
			return
		}
		got = string(resp.Data)
	})
	r.k.Run()
	if got != "payload" {
		t.Fatalf("redeemed %q", got)
	}
}

func TestEndpointKindAccessor(t *testing.T) {
	r := newRig(t, arch.Firefly)
	if r.eps[0].Kind() != arch.Firefly {
		t.Fatal("Kind accessor wrong")
	}
}

func TestDedupCacheEviction(t *testing.T) {
	// Overflowing the duplicate cache must evict oldest entries without
	// corrupting newer ones.
	r := newRig(t, arch.Sun, arch.Sun)
	served := 0
	r.eps[1].Handle(proto.KindEcho, func(p *sim.Proc, req *proto.Message) {
		served++
		r.eps[1].Reply(p, req, &proto.Message{Kind: proto.KindEchoReply, Args: []uint32{req.Arg(0)}})
	})
	r.startAll()
	r.k.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 2100; i++ { // beyond dedupCap
			resp, err := r.eps[0].Call(p, 1, &proto.Message{Kind: proto.KindEcho, Args: []uint32{uint32(i)}})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp.Arg(0) != uint32(i) {
				t.Errorf("call %d returned %d", i, resp.Arg(0))
				return
			}
		}
	})
	r.k.Run()
	if served != 2100 {
		t.Fatalf("served %d of 2100", served)
	}
}

// TestUnicastEncodeOwnerArmsRefcount pins the send-path restructure the
// buf-own analysis forced: the refcounted owner must take the pooled
// encode buffer in the same branch that acquires it, and its refcount
// must be armed to the exact fragment count — an unarmed (zero)
// refcount would make the first release go negative and strand the
// buffer forever.
func TestUnicastEncodeOwnerArmsRefcount(t *testing.T) {
	r := newRig(t, arch.Sun, arch.Sun)
	// Endpoint 1 is deliberately not started: its server loop would
	// consume and release the fragments, so read the raw frames instead
	// to observe the shared encode owner before any release.
	payload := make([]byte, 3*r.par.MTUPayload+10)
	var frags []*fragment
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.eps[0].send(p, 1, &proto.Message{Kind: proto.KindEcho, Data: payload})
	})
	r.k.Spawn("collector", func(p *sim.Proc) {
		for {
			frame := r.eps[1].ifc.Recv(p)
			fr := frame.Payload.(*fragment)
			frags = append(frags, fr)
			if len(frags) == fr.total {
				return
			}
		}
	})
	r.k.Run()

	if len(frags) < 4 {
		t.Fatalf("got %d fragments, want ≥4 for %d bytes", len(frags), len(payload))
	}
	owner := frags[0].owner
	if owner == nil || owner.buf == nil {
		t.Fatal("unicast fragments must share a pooled, owner-held encode buffer")
	}
	for i, fr := range frags {
		if fr.owner != owner {
			t.Fatalf("fragment %d has a different owner", i)
		}
	}
	if got := owner.remaining.Load(); got != int32(len(frags)) {
		t.Fatalf("owner refcount armed to %d, want %d (the fragment count)", got, len(frags))
	}
	// Releasing every fragment must return the buffer exactly at zero.
	for _, fr := range frags {
		releaseFrag(fr)
	}
	if got := owner.remaining.Load(); got != 0 {
		t.Fatalf("refcount %d after releasing all fragments, want 0", got)
	}
	if owner.buf != nil {
		t.Fatal("encode buffer not returned to the pool after the last release")
	}
}
