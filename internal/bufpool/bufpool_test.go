package bufpool

import "testing"

func TestGetLengthAndClasses(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 1400, 8192, 1 << 17} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) length %d", n, len(b))
		}
		Put(b)
	}
	if Get(0) != nil {
		t.Error("Get(0) != nil")
	}
	// Oversized requests fall back to the allocator but still work.
	big := Get(1<<17 + 1)
	if len(big) != 1<<17+1 {
		t.Fatalf("oversized Get length %d", len(big))
	}
	Put(big)
}

func TestRecycling(t *testing.T) {
	b := Get(1024)
	b[0] = 0xaa
	Put(b)
	c := Get(1000) // rounds up to the same class: must come back resliced
	if &b[0] != &c[0] {
		t.Error("Put buffer was not recycled by the next Get of its class")
	}
	Put(c)
}

func TestPutDropsUnpoolable(t *testing.T) {
	Put(nil)               // must not panic
	Put(make([]byte, 8))   // below the smallest class: dropped
	Put(make([]byte, 100)) // odd capacity: filed under the class it covers
	b := Get(64)
	Put(b)
}

// TestSteadyStateZeroAllocs is the pool's core contract: a warm
// Get/Put cycle performs no allocation, including Put (the reason this
// is not sync.Pool, whose Put boxes the slice header).
func TestSteadyStateZeroAllocs(t *testing.T) {
	for _, n := range []int{64, 1400, 8192} {
		Put(Get(n)) // warm the class
		avg := testing.AllocsPerRun(200, func() {
			b := Get(n)
			b[0] = 1
			Put(b)
		})
		if avg != 0 {
			t.Errorf("Get(%d)/Put allocates %.1f times per run, want 0", n, avg)
		}
	}
}
