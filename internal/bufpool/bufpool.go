// Package bufpool recycles the byte buffers of the page-transfer hot
// path: message encode buffers, reassembled wire buffers, and page-size
// staging copies. Steady-state page transfers hit the free lists and
// allocate nothing.
//
// The pool is deliberately not sync.Pool: Put would have to box the
// slice header into an interface, which itself allocates, defeating the
// zero-allocation contract. Instead each power-of-two size class keeps a
// small mutex-guarded LIFO of retired buffers. The lists are bounded, so
// a burst simply falls through to the garbage collector; losing track of
// a buffer is always safe, merely a pool miss later.
package bufpool

import "sync"

const (
	// minClassBits..maxClassBits span 64 B to 128 KiB, covering proto
	// headers up to multi-fragment encodes of the largest page size.
	minClassBits = 6
	maxClassBits = 17
	numClasses   = maxClassBits - minClassBits + 1
	// perClass bounds each free list; beyond it Put drops the buffer.
	perClass = 64
)

type class struct {
	mu   sync.Mutex
	free [][]byte
}

var classes [numClasses]class

func init() {
	for i := range classes {
		classes[i].free = make([][]byte, 0, perClass)
	}
}

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds the largest class.
func classFor(n int) int {
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// Get returns a buffer of length n. Its contents are arbitrary — callers
// overwrite every byte they use. Oversized requests fall back to the
// allocator.
func Get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		return make([]byte, n) // vet:ignore hot-alloc — oversized fallback, beyond the pool's classes
	}
	cl := &classes[c]
	cl.mu.Lock()
	if last := len(cl.free) - 1; last >= 0 {
		b := cl.free[last]
		cl.free[last] = nil
		cl.free = cl.free[:last]
		cl.mu.Unlock()
		return b[:n]
	}
	cl.mu.Unlock()
	// Pool miss: mint a buffer of the full class size so it recycles
	// cleanly whatever length it is requested at next.
	return make([]byte, n, 1<<(minClassBits+c)) // vet:ignore hot-alloc — the pool's own refill
}

// Put retires a buffer for reuse. nil, tiny, and oversized buffers are
// dropped; so is anything beyond the class bound. Put never retains a
// reference on failure, so double-use bugs cannot arise from dropping.
func Put(b []byte) {
	if cap(b) < 1<<minClassBits {
		return
	}
	// File by capacity, under the largest class the buffer fully covers,
	// so a future Get of that class size always fits.
	c := -1
	for i := numClasses - 1; i >= 0; i-- {
		if cap(b) >= 1<<(minClassBits+i) {
			c = i
			break
		}
	}
	if c < 0 {
		return
	}
	cl := &classes[c]
	cl.mu.Lock()
	if len(cl.free) < perClass {
		cl.free = append(cl.free, b[:cap(b)])
	}
	cl.mu.Unlock()
}
