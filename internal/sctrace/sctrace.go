// Package sctrace records per-host DSM read/write traces and checks
// recorded executions against sequential consistency.
//
// Li's MRSW write-invalidate protocol promises sequential consistency:
// some single interleaving of all hosts' reads and writes — consistent
// with each thread's program order — explains every value every read
// returned. In a deterministic discrete-event simulation that witness
// interleaving does not have to be searched for: the kernel's virtual
// clock supplies one. The checker orders all operations by completion
// time and verifies that each read returns the latest value written to
// each of its bytes in that order (with a one-deep allowance for
// operations whose time intervals genuinely overlap, where sequential
// consistency permits either outcome).
//
// Values are recorded in a canonical representation (the DSM module
// converts native bytes to the Sun wire form before recording), so
// traces from heterogeneous hosts are directly comparable: a Firefly's
// little-endian VAX-float bytes and a Sun's big-endian IEEE bytes of the
// same value record identically. A coherence bug — a stale page read
// after an invalidation should have destroyed it, a lost update, a torn
// conversion — surfaces as a read whose bytes match no admissible write.
package sctrace

import (
	"fmt"
	"sort"
)

// OpKind distinguishes reads from writes.
type OpKind uint8

const (
	// Read is a DSM load.
	Read OpKind = iota + 1
	// Write is a DSM store.
	Write
	// Acquire is a release-consistency acquire (lock P, event wait,
	// barrier release). Its Data carries the host's vector timestamp
	// after the acquire merged the incoming payload (rc.go).
	Acquire
	// Release is a release-consistency release (lock V, event set,
	// barrier arrival). Its Data carries the host's vector timestamp
	// after the release closed the interval.
	Release
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Acquire:
		return "acquire"
	case Release:
		return "release"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one recorded DSM access.
type Op struct {
	// Kind says whether this is a read or a write.
	Kind OpKind
	// Host is the host the access executed on.
	Host int
	// Proc identifies the program-order stream (thread) of the access;
	// operations with equal Proc must appear in program order.
	Proc string
	// Seq is the global record sequence number; it breaks timestamp
	// ties and preserves program order within a virtual instant.
	Seq uint64
	// Start and End are the access's virtual-time interval in
	// nanoseconds since simulation start.
	Start, End int64
	// Addr is the DSM address of the first byte accessed.
	Addr uint32
	// Data holds the canonical bytes read or written.
	Data []byte
}

func (o Op) String() string {
	return fmt.Sprintf("%s host=%d proc=%s seq=%d [%d,%d] addr=%d len=%d",
		o.Kind, o.Host, o.Proc, o.Seq, o.Start, o.End, o.Addr, len(o.Data))
}

// Recorder accumulates a trace. It is not safe for concurrent use; the
// simulation kernel's one-process-at-a-time discipline is what makes a
// single recorder per cluster sound.
type Recorder struct {
	ops []Op
	seq uint64
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one operation, stamping its sequence number. The data
// bytes are copied.
func (r *Recorder) Record(kind OpKind, host int, proc string, start, end int64, addr uint32, data []byte) {
	r.seq++
	d := make([]byte, len(data))
	copy(d, data)
	r.ops = append(r.ops, Op{
		Kind: kind, Host: host, Proc: proc, Seq: r.seq,
		Start: start, End: end, Addr: addr, Data: d,
	})
}

// Ops returns the recorded trace in record order.
func (r *Recorder) Ops() []Op { return r.ops }

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// Reset discards the trace (sequence numbers keep increasing, so
// concatenated traces stay totally ordered).
func (r *Recorder) Reset() { r.ops = nil }

// Violation is one sequential-consistency failure: a read that returned
// a value no admissible write (under the virtual-clock witness order)
// stored, or an operation breaking program order.
type Violation struct {
	// Op is the offending operation.
	Op Op
	// Addr is the first inconsistent byte's DSM address (reads).
	Addr uint32
	// Got and Want are the byte read and the byte the witness order
	// requires (reads).
	Got, Want byte
	// Msg explains the failure.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("sctrace: %s: %s", v.Msg, v.Op)
}

// byteState tracks the last two writes to one byte, enough to admit
// either outcome of a write racing a read.
type byteState struct {
	cur       byte  // value of the latest write in witness order
	prev      byte  // value before that write
	curEnd    int64 // completion time of the latest write
	hasWrite  bool
	hasPrev   bool
	prevEnd   int64
	prevStart int64
	curStart  int64
}

// Check validates a trace against sequential consistency using the
// virtual clock as the witness order. It returns the violations found
// (nil for a consistent trace).
//
// The witness order sorts operations by completion time, breaking ties
// by record sequence. Within that order every read must return, for
// each byte, either the value of the latest earlier write to that byte,
// or — when that write's interval overlaps the read's (the race was
// real and sequential consistency admits both outcomes) — the value it
// replaced. Unwritten bytes read as zero (DSM pages start zero-filled).
// Program order is verified per Proc stream: a stream's operations must
// carry non-decreasing timestamps in record order.
func Check(ops []Op) []Violation {
	var violations []Violation

	// Program order: each stream's record order must agree with time.
	lastEnd := make(map[string]int64)
	lastSeq := make(map[string]uint64)
	for _, op := range ops {
		key := fmt.Sprintf("%d/%s", op.Host, op.Proc)
		if s, ok := lastSeq[key]; ok {
			if op.Seq <= s || op.End < lastEnd[key] {
				violations = append(violations, Violation{
					Op:  op,
					Msg: fmt.Sprintf("program order violated on stream %s", key),
				})
			}
		}
		lastSeq[key] = op.Seq
		lastEnd[key] = op.End
		if op.End < op.Start {
			violations = append(violations, Violation{Op: op, Msg: "operation ends before it starts"})
		}
	}

	order := make([]Op, len(ops))
	copy(order, ops)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].End != order[j].End {
			return order[i].End < order[j].End
		}
		return order[i].Seq < order[j].Seq
	})

	state := make(map[uint32]*byteState)
	for _, op := range order {
		switch op.Kind {
		case Write:
			for i, b := range op.Data {
				a := op.Addr + uint32(i)
				st := state[a]
				if st == nil {
					st = &byteState{}
					state[a] = st
				}
				st.prev, st.hasPrev = st.cur, st.hasWrite
				st.prevEnd, st.prevStart = st.curEnd, st.curStart
				st.cur, st.curEnd, st.curStart = b, op.End, op.Start
				st.hasWrite = true
			}
		case Read:
			for i, got := range op.Data {
				a := op.Addr + uint32(i)
				st := state[a]
				want := byte(0)
				if st != nil && st.hasWrite {
					want = st.cur
				}
				if got == want {
					continue
				}
				// The latest write may overlap this read; then the
				// pre-write value is an equally valid outcome.
				if st != nil && st.hasWrite && st.curEnd >= op.Start {
					old := byte(0)
					if st.hasPrev {
						old = st.prev
					}
					if got == old {
						continue
					}
				}
				violations = append(violations, Violation{
					Op: op, Addr: a, Got: got, Want: want,
					Msg: fmt.Sprintf("read of addr %d returned %#02x, witness order requires %#02x", a, got, want),
				})
				break // one violation per read op keeps reports readable
			}
		default:
			violations = append(violations, Violation{Op: op, Msg: "unknown operation kind"})
		}
	}
	return violations
}

// Report renders violations as a human-readable multi-line string, at
// most limit entries (0 means all).
func Report(violations []Violation, limit int) string {
	if len(violations) == 0 {
		return "sctrace: trace is sequentially consistent"
	}
	if limit <= 0 || limit > len(violations) {
		limit = len(violations)
	}
	out := fmt.Sprintf("sctrace: %d violation(s):\n", len(violations))
	for _, v := range violations[:limit] {
		out += "  " + v.String() + "\n"
	}
	if limit < len(violations) {
		out += fmt.Sprintf("  ... and %d more\n", len(violations)-limit)
	}
	return out
}
