package sctrace

// The release-consistency (happens-before) trace oracle. Where Check
// validates a trace against sequential consistency with the virtual
// clock as the witness order, CheckRC validates a lazy-release-
// consistency run against the ordering the synchronization actually
// established: a read must return the value of a write that is maximal
// in happens-before among the writes ordered before it, or of a write
// concurrent with it (a data race both orders of which RC admits), or
// zero when no write happens-before it at all.
//
// Happens-before is reconstructed exactly as the implementation tracks
// it: every Acquire and Release op carries the recording host's vector
// timestamp (one big-endian u32 per host) *after* the operation — a
// release after closing its interval (so vt[self] counts completed
// intervals), an acquire after merging the incoming payload. Replaying
// the trace in record order therefore rebuilds each host's VT at every
// read and write, and write W on host a happens-before operation O on
// host b iff they share a host and W was recorded first, or
// vtW[a] < vtO[a] — host b (transitively) acquired the release that
// closed W's interval.
//
// The oracle is deliberately no stricter than the protocol's legal
// behaviors: a concurrent write's value is admissible because an
// acquirer may pull diff-log entries (or fetch a home copy) that carry
// intervals it has not synchronized with — applying "extra" updates
// early is allowed under RC, reading stale data *across* an acquire is
// not. A lost diff or a stale twin merge surfaces as a read returning a
// value that is neither happens-before-maximal nor concurrent.

import "encoding/binary"

// DecodeVT parses a vector timestamp recorded in an Acquire/Release
// op's Data (one big-endian u32 per host).
func DecodeVT(data []byte) []uint32 {
	vt := make([]uint32, len(data)/4)
	for i := range vt {
		vt[i] = binary.BigEndian.Uint32(data[i*4:])
	}
	return vt
}

// EncodeVT renders a vector timestamp in the recorded wire form.
func EncodeVT(vt []uint32) []byte {
	out := make([]byte, 4*len(vt))
	for i, v := range vt {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// vtAt reads component h of a vector timestamp, treating missing
// components (hosts that never synchronized) as zero.
func vtAt(vt []uint32, h int) uint32 {
	if h < len(vt) {
		return vt[h]
	}
	return 0
}

// rcWrite is one write to one byte, stamped with the writer's VT at the
// moment of the write.
type rcWrite struct {
	host int
	seq  uint64
	vt   []uint32 // shared snapshot, not mutated after stamping
	val  byte
}

// hb reports whether write w happens-before an operation on host h with
// timestamp vt and sequence seq.
func (w *rcWrite) hb(host int, seq uint64, vt []uint32) bool {
	if w.host == host {
		return w.seq < seq
	}
	return vtAt(w.vt, w.host) < vtAt(vt, w.host)
}

// CheckRC validates a trace recorded under a release-consistency engine.
// It returns the violations found (nil for a consistent trace).
func CheckRC(ops []Op) []Violation {
	var violations []Violation

	// Per-host current VT, rebuilt from the recorded sync ops. A host
	// that has not synchronized yet is at the zero timestamp.
	cur := map[int][]uint32{}
	// Shared per-host stamp: writes reference it; replaced (not
	// mutated) whenever the host's VT changes, so stamps stay frozen.
	stamp := map[int][]uint32{}
	vtOf := func(h int) []uint32 {
		if s := stamp[h]; s != nil {
			return s
		}
		return []uint32{}
	}

	writes := map[uint32][]*rcWrite{}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case Acquire, Release:
			vt := DecodeVT(op.Data)
			old := cur[op.Host]
			for h := range old {
				if vtAt(vt, h) < old[h] {
					violations = append(violations, Violation{
						Op:  *op,
						Msg: "vector timestamp regressed at sync operation",
					})
					break
				}
			}
			cur[op.Host] = vt
			stamp[op.Host] = vt
		case Write:
			vt := vtOf(op.Host)
			for i, b := range op.Data {
				a := op.Addr + uint32(i)
				writes[a] = append(writes[a], &rcWrite{host: op.Host, seq: op.Seq, vt: vt, val: b})
			}
		case Read:
			vt := vtOf(op.Host)
			for i, got := range op.Data {
				a := op.Addr + uint32(i)
				if rcByteOK(writes[a], op.Host, op.Seq, vt, got) {
					continue
				}
				violations = append(violations, Violation{
					Op: *op, Addr: a, Got: got,
					Msg: "read returned a value neither happens-before-maximal nor concurrent",
				})
				break // one violation per read op keeps reports readable
			}
		default:
			violations = append(violations, Violation{Op: *op, Msg: "unknown operation kind"})
		}
	}
	return violations
}

// rcByteOK reports whether a read of one byte returning got is
// admissible: got is the value of a happens-before-maximal write, of a
// concurrent write, or zero when no write happens-before the read.
func rcByteOK(ws []*rcWrite, host int, seq uint64, vt []uint32, got byte) bool {
	anyHB := false
	for _, w := range ws {
		if w.seq >= seq {
			continue // recorded after the read: its value did not exist yet
		}
		if !w.hb(host, seq, vt) {
			// Concurrent with the read (the read cannot happen-before a
			// write recorded earlier): either race outcome is admissible.
			if w.val == got {
				return true
			}
			continue
		}
		anyHB = true
		// Happens-before the read: admissible only if maximal — no
		// other HB write overwrites it on the way to this read.
		if w.val != got {
			continue
		}
		dominated := false
		for _, w2 := range ws {
			if w2 == w || w2.seq >= seq || !w2.hb(host, seq, vt) {
				continue
			}
			if w.hb(w2.host, w2.seq, w2.vt) {
				dominated = true
				break
			}
		}
		if !dominated {
			return true
		}
	}
	return !anyHB && got == 0
}
