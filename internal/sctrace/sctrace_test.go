package sctrace

import (
	"strings"
	"testing"
)

// w and r build trace operations compactly for hand-crafted tests.
func w(host int, proc string, seq uint64, start, end int64, addr uint32, data ...byte) Op {
	return Op{Kind: Write, Host: host, Proc: proc, Seq: seq, Start: start, End: end, Addr: addr, Data: data}
}

func r(host int, proc string, seq uint64, start, end int64, addr uint32, data ...byte) Op {
	return Op{Kind: Read, Host: host, Proc: proc, Seq: seq, Start: start, End: end, Addr: addr, Data: data}
}

func TestConsistentTraceAccepted(t *testing.T) {
	trace := []Op{
		w(0, "main", 1, 0, 10, 100, 1, 2, 3, 4),
		r(1, "t1", 2, 20, 30, 100, 1, 2, 3, 4),
		w(1, "t1", 3, 30, 40, 102, 9),
		r(0, "main", 4, 50, 60, 100, 1, 2, 9, 4),
		r(2, "t2", 5, 70, 80, 104, 0, 0), // never written: zero
	}
	if v := Check(trace); len(v) != 0 {
		t.Fatalf("consistent trace rejected: %s", Report(v, 0))
	}
}

func TestStaleReadRejected(t *testing.T) {
	// Host 1 reads the old value long after host 0's write completed —
	// the signature of a missed invalidation.
	trace := []Op{
		w(0, "main", 1, 0, 10, 100, 7),
		w(0, "main", 2, 20, 30, 100, 8),
		r(1, "t1", 3, 100, 110, 100, 7),
	}
	v := Check(trace)
	if len(v) == 0 {
		t.Fatal("stale read accepted")
	}
	if v[0].Addr != 100 || v[0].Got != 7 || v[0].Want != 8 {
		t.Fatalf("wrong violation: %+v", v[0])
	}
}

func TestNeverWrittenValueRejected(t *testing.T) {
	trace := []Op{
		w(0, "main", 1, 0, 10, 100, 5),
		r(1, "t1", 2, 20, 30, 100, 42), // 42 was never written
	}
	if v := Check(trace); len(v) == 0 {
		t.Fatal("read of a never-written value accepted")
	}
}

func TestOverlappingWriteAdmitsEitherOutcome(t *testing.T) {
	// The read's interval overlaps the second write: sequential
	// consistency admits both the old and the new value.
	old := []Op{
		w(0, "main", 1, 0, 10, 100, 7),
		w(0, "main", 2, 40, 60, 100, 8),
		r(1, "t1", 3, 45, 65, 100, 7), // saw the pre-write value
	}
	if v := Check(old); len(v) != 0 {
		t.Fatalf("racy read of old value rejected: %s", Report(v, 0))
	}
	fresh := []Op{
		w(0, "main", 1, 0, 10, 100, 7),
		w(0, "main", 2, 40, 60, 100, 8),
		r(1, "t1", 3, 45, 65, 100, 8), // saw the new value
	}
	if v := Check(fresh); len(v) != 0 {
		t.Fatalf("racy read of new value rejected: %s", Report(v, 0))
	}
	// But a value from two writes back is not admissible.
	ancient := []Op{
		w(0, "main", 1, 0, 10, 100, 6),
		w(0, "main", 2, 20, 30, 100, 7),
		w(0, "main", 3, 40, 60, 100, 8),
		r(1, "t1", 4, 45, 65, 100, 6),
	}
	if v := Check(ancient); len(v) == 0 {
		t.Fatal("two-generations-stale read accepted")
	}
}

func TestProgramOrderViolationRejected(t *testing.T) {
	trace := []Op{
		{Kind: Read, Host: 0, Proc: "main", Seq: 5, Start: 50, End: 60, Addr: 0, Data: []byte{0}},
		{Kind: Read, Host: 0, Proc: "main", Seq: 6, Start: 10, End: 20, Addr: 0, Data: []byte{0}},
	}
	v := Check(trace)
	if len(v) == 0 {
		t.Fatal("program-order violation accepted")
	}
	if !strings.Contains(v[0].Msg, "program order") {
		t.Fatalf("wrong violation message: %q", v[0].Msg)
	}
}

func TestRecorderCopiesData(t *testing.T) {
	rec := NewRecorder()
	buf := []byte{1, 2, 3}
	rec.Record(Write, 0, "main", 0, 1, 0, buf)
	buf[0] = 99
	if rec.Ops()[0].Data[0] != 1 {
		t.Fatal("recorder aliased caller's buffer")
	}
	if rec.Len() != 1 {
		t.Fatalf("Len = %d", rec.Len())
	}
	rec.Record(Read, 1, "t", 2, 3, 0, []byte{1, 2, 3})
	if got := rec.Ops()[1].Seq; got != 2 {
		t.Fatalf("seq = %d, want 2", got)
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Fatal("Reset did not clear ops")
	}
	rec.Record(Write, 0, "main", 4, 5, 0, []byte{9})
	if got := rec.Ops()[0].Seq; got != 3 {
		t.Fatalf("seq after reset = %d, want 3 (monotonic)", got)
	}
}

func TestMultiByteTornReadRejected(t *testing.T) {
	// A 4-byte value written atomically; a much later read sees half of
	// the old value and half of the new — a torn conversion or a lost
	// partial update.
	trace := []Op{
		w(0, "main", 1, 0, 10, 200, 0xAA, 0xAA, 0xAA, 0xAA),
		w(0, "main", 2, 20, 30, 200, 0xBB, 0xBB, 0xBB, 0xBB),
		r(1, "t1", 3, 100, 110, 200, 0xBB, 0xBB, 0xAA, 0xAA),
	}
	if v := Check(trace); len(v) == 0 {
		t.Fatal("torn read accepted")
	}
}

func TestReportFormatting(t *testing.T) {
	if got := Report(nil, 0); !strings.Contains(got, "sequentially consistent") {
		t.Fatalf("empty report: %q", got)
	}
	v := Check([]Op{
		w(0, "main", 1, 0, 10, 100, 7),
		r(1, "a", 2, 20, 30, 100, 1),
		r(1, "b", 3, 20, 30, 100, 2),
	})
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %d", len(v))
	}
	rep := Report(v, 1)
	if !strings.Contains(rep, "2 violation") || !strings.Contains(rep, "1 more") {
		t.Fatalf("truncated report: %q", rep)
	}
}
