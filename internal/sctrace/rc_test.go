package sctrace

import (
	"strings"
	"testing"
)

// rcOp builds one trace op with trivially consistent timing (the RC
// checker orders by Seq, not by the virtual clock).
func rcOp(kind OpKind, host int, seq uint64, addr uint32, data []byte) Op {
	return Op{Kind: kind, Host: host, Proc: "t", Seq: seq,
		Start: int64(seq), End: int64(seq), Addr: addr, Data: data}
}

// TestCheckRCClean pins the happy path: a locked producer/consumer
// handoff — write, release, acquire, read — is accepted, as is a read
// of never-written (zero) memory.
func TestCheckRCClean(t *testing.T) {
	ops := []Op{
		rcOp(Write, 0, 1, 0, []byte{5}),
		rcOp(Release, 0, 2, 0, EncodeVT([]uint32{1, 0})),
		rcOp(Acquire, 1, 3, 0, EncodeVT([]uint32{1, 0})),
		rcOp(Read, 1, 4, 0, []byte{5}),
		rcOp(Read, 1, 5, 100, []byte{0}),
	}
	if v := CheckRC(ops); v != nil {
		t.Fatalf("clean trace flagged: %v", v)
	}
}

// TestCheckRCStaleRead pins the core guarantee: reading stale data
// across an acquire that happens-after the write's release is a
// violation.
func TestCheckRCStaleRead(t *testing.T) {
	ops := []Op{
		rcOp(Write, 0, 1, 0, []byte{5}),
		rcOp(Release, 0, 2, 0, EncodeVT([]uint32{1, 0})),
		rcOp(Acquire, 1, 3, 0, EncodeVT([]uint32{1, 0})),
		rcOp(Read, 1, 4, 0, []byte{0}),
	}
	v := CheckRC(ops)
	if len(v) != 1 || !strings.Contains(v[0].Msg, "neither happens-before-maximal nor concurrent") {
		t.Fatalf("stale read not flagged: %v", v)
	}
}

// TestCheckRCConcurrent pins RC's permissiveness: before any
// synchronization, a reader may see a concurrent write's value or miss
// it entirely — both outcomes pass.
func TestCheckRCConcurrent(t *testing.T) {
	sees := []Op{
		rcOp(Write, 0, 1, 0, []byte{7}),
		rcOp(Read, 1, 2, 0, []byte{7}),
	}
	misses := []Op{
		rcOp(Write, 0, 1, 0, []byte{7}),
		rcOp(Read, 1, 2, 0, []byte{0}),
	}
	if v := CheckRC(sees); v != nil {
		t.Fatalf("seeing a concurrent write flagged: %v", v)
	}
	if v := CheckRC(misses); v != nil {
		t.Fatalf("missing a concurrent write flagged: %v", v)
	}
	// But an unsynchronized read must not invent a third value.
	junk := []Op{
		rcOp(Write, 0, 1, 0, []byte{7}),
		rcOp(Read, 1, 2, 0, []byte{9}),
	}
	if v := CheckRC(junk); len(v) != 1 {
		t.Fatalf("invented value not flagged: %v", v)
	}
}

// TestCheckRCOverwritten pins maximality: once two writes are ordered
// by happens-before, an acquirer synchronized with both must see the
// later one — the earlier value is no longer admissible (this is how a
// lost diff surfaces).
func TestCheckRCOverwritten(t *testing.T) {
	ops := []Op{
		rcOp(Write, 0, 1, 0, []byte{1}),
		rcOp(Release, 0, 2, 0, EncodeVT([]uint32{1, 0})),
		rcOp(Write, 0, 3, 0, []byte{2}),
		rcOp(Release, 0, 4, 0, EncodeVT([]uint32{2, 0})),
		rcOp(Acquire, 1, 5, 0, EncodeVT([]uint32{2, 0})),
		rcOp(Read, 1, 6, 0, []byte{1}),
	}
	if v := CheckRC(ops); len(v) != 1 {
		t.Fatalf("overwritten value not flagged: %v", v)
	}
	// Synchronized with only the first release, the first value is the
	// maximal one and the second is a visible-early concurrent extra:
	// both are admissible.
	ops[4] = rcOp(Acquire, 1, 5, 0, EncodeVT([]uint32{1, 0}))
	if v := CheckRC(ops); v != nil {
		t.Fatalf("first-interval value flagged after first-interval acquire: %v", v)
	}
	ops[5] = rcOp(Read, 1, 6, 0, []byte{2})
	if v := CheckRC(ops); v != nil {
		t.Fatalf("early-visible second interval flagged: %v", v)
	}
}

// TestCheckRCTransitive pins transitivity through a third host: host 0
// releases, host 1 acquires and releases, host 2 acquires host 1's
// merged timestamp and must see host 0's write.
func TestCheckRCTransitive(t *testing.T) {
	ops := []Op{
		rcOp(Write, 0, 1, 0, []byte{5}),
		rcOp(Release, 0, 2, 0, EncodeVT([]uint32{1, 0, 0})),
		rcOp(Acquire, 1, 3, 0, EncodeVT([]uint32{1, 0, 0})),
		rcOp(Release, 1, 4, 0, EncodeVT([]uint32{1, 1, 0})),
		rcOp(Acquire, 2, 5, 0, EncodeVT([]uint32{1, 1, 0})),
		rcOp(Read, 2, 6, 0, []byte{0}),
	}
	if v := CheckRC(ops); len(v) != 1 {
		t.Fatalf("transitively stale read not flagged: %v", v)
	}
	ops[5] = rcOp(Read, 2, 6, 0, []byte{5})
	if v := CheckRC(ops); v != nil {
		t.Fatalf("transitively fresh read flagged: %v", v)
	}
}

// TestCheckRCProgramOrder pins that a host always sees its own latest
// write, synchronization or not.
func TestCheckRCProgramOrder(t *testing.T) {
	ops := []Op{
		rcOp(Write, 0, 1, 0, []byte{1}),
		rcOp(Write, 0, 2, 0, []byte{2}),
		rcOp(Read, 0, 3, 0, []byte{1}),
	}
	if v := CheckRC(ops); len(v) != 1 {
		t.Fatalf("own stale read not flagged: %v", v)
	}
	ops[2] = rcOp(Read, 0, 3, 0, []byte{2})
	if v := CheckRC(ops); v != nil {
		t.Fatalf("own fresh read flagged: %v", v)
	}
}

// TestCheckRCRegression pins that a host's recorded vector timestamp
// moving backwards is itself a violation (sync metadata corruption).
func TestCheckRCRegression(t *testing.T) {
	ops := []Op{
		rcOp(Release, 0, 1, 0, EncodeVT([]uint32{3, 1})),
		rcOp(Acquire, 0, 2, 0, EncodeVT([]uint32{3, 0})),
	}
	v := CheckRC(ops)
	if len(v) != 1 || !strings.Contains(v[0].Msg, "regressed") {
		t.Fatalf("VT regression not flagged: %v", v)
	}
}

// TestVTRoundTrip pins the wire form of vector timestamps.
func TestVTRoundTrip(t *testing.T) {
	vt := []uint32{0, 7, 1 << 30}
	got := DecodeVT(EncodeVT(vt))
	if len(got) != len(vt) {
		t.Fatalf("round trip length %d, want %d", len(got), len(vt))
	}
	for i := range vt {
		if got[i] != vt[i] {
			t.Fatalf("component %d = %d, want %d", i, got[i], vt[i])
		}
	}
}
