// Package chaos is the randomized fault-injection harness for the
// Mermaid DSM cluster. Where internal/mc explores *schedules* of a
// fault-free run with a controlled chooser, chaos explores *fault
// placements*: each run derives a scripted fault plan (burst loss,
// duplication, corruption, partitions, a host crash) from a seed, runs
// a small fault-tolerant workload against it under the calibrated cost
// model, and judges the outcome with the same oracles the model
// checker uses — the MRSW protocol invariant checker, the offline
// sequential-consistency trace check, panic capture and hang
// detection — plus the workload's own final assertions.
//
// Every run is a pure function of (workload, class, seed): the fault
// plan is regenerated from the seed, the kernel is seeded with it, and
// no wall-clock input exists anywhere in the stack, so the replay
// token `chaos1:<workload>:<class>:<seed>` reproduces any violation
// bit-identically. The harness double-checks that claim on demand by
// running twice and comparing state fingerprints (Verify).
package chaos

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cluster"
	"repro/internal/dsm"
	"repro/internal/sim"
)

// Outcome classifies one chaos run.
type Outcome int

const (
	// OK means every oracle and every workload assertion passed.
	OK Outcome = iota
	// InvariantViolation means the MRSW protocol invariant checker
	// tripped during or after the run.
	InvariantViolation
	// SCViolation means the access trace admits no sequentially
	// consistent witness order.
	SCViolation
	// Panic means a simulated process panicked outside the harness's
	// typed-error paths.
	Panic
	// Hung means the workload never finished: either the event queue
	// drained (deadlock) or the step budget ran out with background
	// activity still churning (livelock — with heartbeats running the
	// queue never drains, so a wedged workload surfaces this way).
	Hung
	// AppError means the workload's own final assertions failed —
	// a value no crash-consistent execution can produce.
	AppError
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case InvariantViolation:
		return "invariant-violation"
	case SCViolation:
		return "sc-violation"
	case Panic:
		return "panic"
	case Hung:
		return "hung"
	case AppError:
		return "app-error"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Result records one executed chaos run.
type Result struct {
	// Token replays this run exactly (see Replay).
	Token string
	// Outcome classifies the run; Detail explains a non-OK outcome.
	Outcome Outcome
	Detail  string
	// Plan lists the injected faults, human-readable.
	Plan []string
	// Steps is the number of kernel events dispatched; Elapsed the
	// virtual time the run took.
	Steps   int
	Elapsed sim.Duration
	// Fingerprint digests the final cluster state plus fault/protocol
	// counters; two runs of the same token must produce equal
	// fingerprints (determinism), and any drift is a bug.
	Fingerprint string
	// PagesRecovered/PagesLost total the cluster's recovery outcomes.
	PagesRecovered int
	PagesLost      int
	// RecoveryLatency is the virtual time from the first scripted crash
	// to the first completed page recovery (0 when no crash happened or
	// nothing needed recovering).
	RecoveryLatency sim.Duration
}

// Opts parameterizes a run.
type Opts struct {
	// MaxSteps bounds dispatched kernel events (0 = DefaultMaxSteps).
	// Exhausting it is reported as Hung.
	MaxSteps int
	// Mut injects a deliberate DSM protocol bug cluster-wide — used by
	// the harness's own tests to prove the oracles have teeth.
	Mut dsm.Mutation
}

// DefaultMaxSteps bounds one run's dispatched events. A healthy run
// under the calibrated cost model dispatches a few tens of thousands
// of events across its ~7 virtual seconds; the budget is an order of
// magnitude above that.
const DefaultMaxSteps = 500_000

// traceLog watches the cluster's DSM trace stream for recovery events.
type traceLog struct {
	firstRecover sim.Time
	recovers     int
	lost         int
}

func (tl *traceLog) observe(ev dsm.TraceEvent) {
	switch ev.Event {
	case "recover":
		if tl.recovers == 0 {
			tl.firstRecover = ev.Time
		}
		tl.recovers++
	case "page-lost":
		tl.lost++
	}
}

// Run executes one chaos run: generate the plan from the seed, build a
// fresh cluster, drive the workload to completion, judge it.
func Run(w *Workload, class Class, seed int64, o Opts) (*Result, error) {
	plan := GeneratePlan(class, seed, w.Hosts)
	inst, err := w.Build(seed, plan, o.Mut)
	if err != nil {
		return nil, fmt.Errorf("chaos: building %s: %w", w.Name, err)
	}
	c := inst.C
	k := c.K
	if c.Check == nil {
		return nil, fmt.Errorf("chaos: workload %s built without the invariant checker", w.Name)
	}
	var invs []dsm.Violation
	c.Check.SetFailHandler(func(v dsm.Violation) { invs = append(invs, v) })

	maxSteps := o.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxSteps
	}
	done := false
	var appErr error
	k.Spawn("chaos-main", func(p *sim.Proc) {
		appErr = inst.Main(p, c)
		done = true
	})
	steps := 0
	panicMsg := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicMsg = fmt.Sprint(r)
			}
		}()
		for !done && steps < maxSteps && k.Step() {
			steps++
		}
	}()
	if done && panicMsg == "" {
		// Final audit of the quiesced cluster (skips crashed hosts and
		// in-flight transactions).
		c.Check.CheckAll("chaos-teardown")
	}

	res := &Result{
		Token:   EncodeToken(w.Name, class, seed),
		Plan:    renderPlan(plan),
		Steps:   steps,
		Elapsed: k.Now().Sub(0),
	}
	total := c.TotalDSMStats()
	res.PagesRecovered = total.PagesRecovered
	res.PagesLost = total.PagesLost
	if inst.Trace.recovers > 0 && len(plan.Crashes) > 0 {
		res.RecoveryLatency = inst.Trace.firstRecover.Sub(plan.Crashes[0].At)
	}
	res.Fingerprint = fingerprint(c, steps)

	// The trace oracle is the policy's consistency model (SC witness
	// checker, or the happens-before checker under lazy release).
	scViols := c.Hosts[0].DSM.TraceCheck(inst.Rec.Ops())
	switch {
	case len(invs) > 0:
		res.Outcome = InvariantViolation
		res.Detail = invs[0].String()
		if len(invs) > 1 {
			res.Detail += fmt.Sprintf(" (+%d more)", len(invs)-1)
		}
	case len(scViols) > 0:
		res.Outcome = SCViolation
		res.Detail = fmt.Sprint(scViols[0])
		if len(scViols) > 1 {
			res.Detail += fmt.Sprintf(" (+%d more)", len(scViols)-1)
		}
	case panicMsg != "":
		res.Outcome = Panic
		res.Detail = panicMsg
	case !done:
		res.Outcome = Hung
		res.Detail = fmt.Sprintf("not finished after %d steps at t=%v; stalled: %v", steps, k.Now(), k.Stalled())
	case appErr != nil:
		res.Outcome = AppError
		res.Detail = appErr.Error()
	default:
		res.Outcome = OK
	}
	k.Shutdown()
	return res, nil
}

// Verify runs the same token twice and errors if the runs diverge in
// fingerprint, outcome or detail — the determinism guarantee behind
// replay tokens, checked end to end.
func Verify(w *Workload, class Class, seed int64, o Opts) (*Result, error) {
	a, err := Run(w, class, seed, o)
	if err != nil {
		return nil, err
	}
	b, err := Run(w, class, seed, o)
	if err != nil {
		return nil, err
	}
	if a.Fingerprint != b.Fingerprint || a.Outcome != b.Outcome || a.Detail != b.Detail {
		return a, fmt.Errorf("chaos: %s not deterministic:\n run 1: %s %s\n   %s\n run 2: %s %s\n   %s",
			a.Token, a.Outcome, a.Detail, a.Fingerprint, b.Outcome, b.Detail, b.Fingerprint)
	}
	return a, nil
}

// fingerprint digests the final protocol state of every host plus the
// run's fault and protocol counters into a comparable line.
func fingerprint(c *cluster.Cluster, steps int) string {
	h := fnv.New64a()
	for _, host := range c.Hosts {
		host.DSM.WriteStateHash(h)
		host.Sync.WriteStateHash(h)
	}
	ns := c.Net.Stats()
	ds := c.TotalDSMStats()
	return fmt.Sprintf("t=%v steps=%d state=%016x fetched=%d conv=%d recovered=%d lost=%d dropped=%d cut=%d corrupted=%d duplicated=%d toDead=%d",
		c.K.Now(), steps, h.Sum64(),
		ds.PagesFetched, ds.Conversions, ds.PagesRecovered, ds.PagesLost,
		ns.FramesDropped, ns.FramesCut, ns.FramesCorrupted, ns.FramesDuplicated, ns.FramesToDead)
}
