package chaos

// Seed series: the aggregation behind `mermaid-chaos -runs=N` and the
// EXPERIMENTS.md survival table.

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Series aggregates one workload × class swept across consecutive
// seeds.
type Series struct {
	Workload string
	Class    Class
	// Results holds every run, in seed order.
	Results []*Result
	// Survived counts runs with outcome OK; Violations lists the
	// tokens of the rest.
	Survived   int
	Violations []string
	// Recovered/Lost total pages across the series.
	Recovered int
	Lost      int
	// MeanRecoveryLatency averages over runs that recovered at least
	// one page (0 when none did).
	MeanRecoveryLatency sim.Duration
}

// RunSeries executes runs consecutive seeds starting at baseSeed.
func RunSeries(w *Workload, class Class, baseSeed int64, runs int, o Opts) (*Series, error) {
	s := &Series{Workload: w.Name, Class: class}
	var latSum sim.Duration
	latRuns := 0
	for i := 0; i < runs; i++ {
		res, err := Run(w, class, baseSeed+int64(i), o)
		if err != nil {
			return nil, err
		}
		s.Results = append(s.Results, res)
		if res.Outcome == OK {
			s.Survived++
		} else {
			s.Violations = append(s.Violations, res.Token)
		}
		s.Recovered += res.PagesRecovered
		s.Lost += res.PagesLost
		if res.RecoveryLatency > 0 {
			latSum += res.RecoveryLatency
			latRuns++
		}
	}
	if latRuns > 0 {
		s.MeanRecoveryLatency = latSum / sim.Duration(latRuns)
	}
	return s, nil
}

// String renders the series as one summary line.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%-8s class=%-9s survived=%d/%d recovered=%d lost=%d",
		s.Workload, s.Class, s.Survived, len(s.Results), s.Recovered, s.Lost)
	if s.MeanRecoveryLatency > 0 {
		fmt.Fprintf(&b, " mean-recovery=%v", s.MeanRecoveryLatency)
	}
	if len(s.Violations) > 0 {
		fmt.Fprintf(&b, " VIOLATIONS: %s", strings.Join(s.Violations, " "))
	}
	return b.String()
}
