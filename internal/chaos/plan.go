package chaos

// Seeded fault-schedule generation. A chaos run's entire fault plan is
// a pure function of (class, seed, host count), so the replay token
// only needs to carry those three facts: regenerating the plan and
// re-running the simulation with the same kernel seed reproduces the
// run bit-identically.

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// Class names a family of randomized fault schedules.
type Class string

const (
	// ClassDrop injects message-level faults only: burst frame loss,
	// duplication and in-flight corruption. No host dies, so the
	// workloads apply their strict-progress assertions.
	ClassDrop Class = "drop"
	// ClassPartition cuts single hosts off the segment for windows kept
	// shorter than the failure detector's death threshold: the protocol
	// must ride the cut out with retries, not declare anyone dead.
	ClassPartition Class = "partition"
	// ClassCrash kills one non-coordinator host (crash-stop, no
	// restart) at a randomized time; detection and copyset recovery
	// must keep the survivors computing.
	ClassCrash Class = "crash"
	// ClassMix layers loss, a partition and a crash into one run.
	ClassMix Class = "mix"
)

// Classes lists every schedule class.
func Classes() []Class { return []Class{ClassDrop, ClassPartition, ClassCrash, ClassMix} }

// ParseClass resolves a CLI spelling.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if string(c) == s {
			return c, nil
		}
	}
	return "", fmt.Errorf("chaos: unknown class %q (have %v)", s, Classes())
}

// Generated-schedule bounds, all in virtual time. Every fault window
// closes inside the injection horizon, and the workloads settle for
// several seconds past it, so by the time final assertions run the
// fabric is quiet and failure detection has converged.
const (
	// injectHorizon bounds fault activity: no window extends past it.
	injectHorizon = 2 * time.Second
	// maxPartition keeps a cut shorter than the 2×SuspicionTimeout
	// death threshold — a partitioned-but-alive host must never be
	// declared dead (crash-stop detection cannot take a verdict back).
	maxPartition = 1200 * time.Millisecond
	// crashEarliest/crashLatest bound the scripted crash time, leaving
	// room for the workloads to replicate some state first and for the
	// fault windows around the crash to matter.
	crashEarliest = 200 * time.Millisecond
	crashLatest   = 1500 * time.Millisecond
)

// window draws a fault window of length [minLen, maxLen) starting so
// that it closes before the injection horizon.
func window(r *rand.Rand, minLen, maxLen time.Duration) netsim.Window {
	length := minLen + time.Duration(r.Int63n(int64(maxLen-minLen)))
	start := time.Duration(r.Int63n(int64(injectHorizon - length)))
	return netsim.Window{From: sim.Time(start), Until: sim.Time(start + length)}
}

// GeneratePlan derives the scripted fault plan for one run. Host 0 is
// the coordinator (allocation manager, semaphore managers, the
// workloads' home for final assertions) and is never crashed or cut
// off; every other host is fair game.
func GeneratePlan(class Class, seed int64, hosts int) *netsim.FaultPlan {
	r := rand.New(rand.NewSource(seed ^ 0x6368616f73)) // decouple from the kernel's stream
	fp := &netsim.FaultPlan{}

	addLoss := func() {
		for i, n := 0, 1+r.Intn(3); i < n; i++ {
			fp.Loss = append(fp.Loss, netsim.Burst{
				Window: window(r, 100*time.Millisecond, 600*time.Millisecond),
				Rate:   0.1 + 0.4*r.Float64(),
			})
		}
		if r.Intn(2) == 0 {
			fp.Duplicate = append(fp.Duplicate, netsim.Burst{
				Window: window(r, 100*time.Millisecond, 500*time.Millisecond),
				Rate:   0.2 + 0.3*r.Float64(),
			})
		}
		if r.Intn(2) == 0 {
			fp.Corrupt = append(fp.Corrupt, netsim.Burst{
				Window: window(r, 100*time.Millisecond, 400*time.Millisecond),
				Rate:   0.1 + 0.2*r.Float64(),
			})
		}
	}
	addPartition := func() {
		for i, n := 0, 1+r.Intn(2); i < n; i++ {
			cut := netsim.HostID(1 + r.Intn(hosts-1))
			fp.Partitions = append(fp.Partitions, netsim.Partition{
				Window: window(r, 200*time.Millisecond, maxPartition),
				Group:  []netsim.HostID{cut},
			})
		}
	}
	addCrash := func() {
		victim := netsim.HostID(1 + r.Intn(hosts-1))
		at := crashEarliest + time.Duration(r.Int63n(int64(crashLatest-crashEarliest)))
		fp.Crashes = append(fp.Crashes, netsim.CrashEvent{At: sim.Time(at), Host: victim})
	}

	switch class {
	case ClassDrop:
		addLoss()
	case ClassPartition:
		addPartition()
	case ClassCrash:
		addCrash()
	case ClassMix:
		addLoss()
		addPartition()
		addCrash()
	}
	return fp
}

// renderPlan lists the plan's faults as human-readable lines for the
// replay transcript.
func renderPlan(fp *netsim.FaultPlan) []string {
	var lines []string
	for _, b := range fp.Loss {
		lines = append(lines, fmt.Sprintf("loss      [%v, %v) rate %.2f", b.From, b.Until, b.Rate))
	}
	for _, b := range fp.Duplicate {
		lines = append(lines, fmt.Sprintf("duplicate [%v, %v) rate %.2f", b.From, b.Until, b.Rate))
	}
	for _, b := range fp.Corrupt {
		lines = append(lines, fmt.Sprintf("corrupt   [%v, %v) rate %.2f", b.From, b.Until, b.Rate))
	}
	for _, pt := range fp.Partitions {
		lines = append(lines, fmt.Sprintf("partition [%v, %v) cuts %v", pt.From, pt.Until, pt.Group))
	}
	for _, lc := range fp.LinkCuts {
		lines = append(lines, fmt.Sprintf("link-cut  [%v, %v) severs segments %d-%d", lc.From, lc.Until, lc.A, lc.B))
	}
	for _, ce := range fp.Crashes {
		lines = append(lines, fmt.Sprintf("crash     t=%v host %d", ce.At, ce.Host))
	}
	if len(lines) == 0 {
		lines = append(lines, "(no faults)")
	}
	return lines
}
