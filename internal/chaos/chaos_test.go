package chaos

import (
	"reflect"
	"testing"

	"repro/internal/dsm"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestPlanGeneration checks the generator's contract: deterministic
// from the seed, every window inside the injection horizon, host 0
// never crashed or cut off, and each class injecting what it names.
func TestPlanGeneration(t *testing.T) {
	for _, class := range Classes() {
		for seed := int64(1); seed <= 20; seed++ {
			fp := GeneratePlan(class, seed, 3)
			if again := GeneratePlan(class, seed, 3); !reflect.DeepEqual(fp, again) {
				t.Fatalf("%s seed %d: plan generation not deterministic", class, seed)
			}
			horizon := sim.Time(0).Add(injectHorizon)
			var windows []netsim.Window
			for _, b := range fp.Loss {
				windows = append(windows, b.Window)
			}
			for _, b := range fp.Duplicate {
				windows = append(windows, b.Window)
			}
			for _, b := range fp.Corrupt {
				windows = append(windows, b.Window)
			}
			for _, pt := range fp.Partitions {
				windows = append(windows, pt.Window)
			}
			for _, b := range windows {
				if b.Until <= b.From || b.From < 0 || b.Until > horizon {
					t.Errorf("%s seed %d: window [%v, %v) outside (0, %v]", class, seed, b.From, b.Until, horizon)
				}
			}
			for _, pt := range fp.Partitions {
				for _, h := range pt.Group {
					if h == 0 {
						t.Errorf("%s seed %d: partition cuts host 0", class, seed)
					}
				}
				if pt.Until.Sub(pt.From) >= sim.Duration(2_000_000_000) {
					t.Errorf("%s seed %d: partition [%v, %v) long enough to fake a death", class, seed, pt.From, pt.Until)
				}
			}
			for _, ce := range fp.Crashes {
				if ce.Host == 0 {
					t.Errorf("%s seed %d: plan crashes host 0", class, seed)
				}
			}
			switch class {
			case ClassDrop:
				if len(fp.Loss) == 0 || len(fp.Crashes) != 0 || len(fp.Partitions) != 0 {
					t.Errorf("drop seed %d: wrong fault mix: %+v", seed, fp)
				}
			case ClassPartition:
				if len(fp.Partitions) == 0 || len(fp.Crashes) != 0 {
					t.Errorf("partition seed %d: wrong fault mix: %+v", seed, fp)
				}
			case ClassCrash:
				if len(fp.Crashes) != 1 {
					t.Errorf("crash seed %d: %d crashes, want 1", seed, len(fp.Crashes))
				}
			case ClassMix:
				if len(fp.Loss) == 0 || len(fp.Partitions) == 0 || len(fp.Crashes) != 1 {
					t.Errorf("mix seed %d: wrong fault mix: %+v", seed, fp)
				}
			}
		}
	}
}

// TestSmokeSeedsClean is the committed smoke matrix: every workload ×
// every class across the CI seeds must pass every oracle. These are
// the exact runs `make chaos-smoke` executes; a failure here is either
// a protocol bug (the token reproduces it) or a workload assertion
// that is stricter than crash-stop semantics allow.
func TestSmokeSeedsClean(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, w := range All() {
		for _, class := range Classes() {
			for _, seed := range seeds {
				res, err := Run(w, class, seed, Opts{})
				if err != nil {
					t.Fatalf("%s/%s/%d: %v", w.Name, class, seed, err)
				}
				if res.Outcome != OK {
					t.Errorf("%s: %s: %s", res.Token, res.Outcome, res.Detail)
				}
			}
		}
	}
}

// TestCrashRunsExerciseRecovery makes sure the smoke matrix is not
// vacuously green: across the crash-class seeds, at least one run must
// actually recover a page (the copyset path) — otherwise the crashes
// are landing where nothing interesting happens and the seeds should
// be rotated.
func TestCrashRunsExerciseRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full seed sweep")
	}
	recovered := 0
	for _, w := range All() {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := Run(w, ClassCrash, seed, Opts{})
			if err != nil {
				t.Fatal(err)
			}
			recovered += res.PagesRecovered
			if res.PagesRecovered > 0 && res.RecoveryLatency <= 0 {
				t.Errorf("%s: recovered %d page(s) but reports no recovery latency", res.Token, res.PagesRecovered)
			}
		}
	}
	if recovered == 0 {
		t.Error("no crash-class smoke seed recovered a single page — rotate the seeds")
	}
}

// TestRunsAreDeterministic is the replay guarantee: the same token run
// twice produces identical outcomes and state fingerprints, for a
// crash run and a message-fault run.
func TestRunsAreDeterministic(t *testing.T) {
	for _, tc := range []struct {
		workload string
		class    Class
		seed     int64
	}{
		{"slots", ClassCrash, 5},
		{"counter", ClassDrop, 9},
		{"handoff", ClassMix, 2},
	} {
		w, err := Lookup(tc.workload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Verify(w, tc.class, tc.seed, Opts{}); err != nil {
			t.Error(err)
		}
	}
}

// TestTokenRoundTrip checks the codec and Replay resolution.
func TestTokenRoundTrip(t *testing.T) {
	tok := EncodeToken("slots", ClassCrash, 42)
	if tok != "chaos1:slots:crash:42" {
		t.Fatalf("EncodeToken = %q", tok)
	}
	name, class, seed, err := DecodeToken(tok)
	if err != nil {
		t.Fatal(err)
	}
	if name != "slots" || class != ClassCrash || seed != 42 {
		t.Fatalf("DecodeToken = %q/%s/%d", name, class, seed)
	}
	for _, bad := range []string{
		"", "chaos1:slots:crash", "chaos0:slots:crash:1",
		"chaos1:nope:crash:1", "chaos1:slots:nope:1", "chaos1:slots:crash:x",
	} {
		if _, _, _, err := DecodeToken(bad); err == nil {
			t.Errorf("DecodeToken(%q) accepted", bad)
		}
	}
}

// TestReplayReproducesRun replays a token and compares fingerprints
// against a direct run — the CLI -replay path, end to end.
func TestReplayReproducesRun(t *testing.T) {
	w, err := Lookup("handoff")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Run(w, ClassCrash, 4, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(direct.Token, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Fingerprint != direct.Fingerprint || replayed.Outcome != direct.Outcome {
		t.Fatalf("replay diverged:\n direct: %s %s\n replay: %s %s",
			direct.Outcome, direct.Fingerprint, replayed.Outcome, replayed.Fingerprint)
	}
	if len(replayed.Plan) == 0 {
		t.Error("replay carries no fault-plan transcript")
	}
}

// TestChaosCatchesSkipInvalidation proves the oracle pipeline has
// teeth: a protocol with invalidations removed must not survive a
// message-fault campaign (the invariant checker flags the stale copy
// regardless of workload-level tolerance).
func TestChaosCatchesSkipInvalidation(t *testing.T) {
	w, err := Lookup("counter")
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for seed := int64(1); seed <= 3 && !caught; seed++ {
		res, err := Run(w, ClassDrop, seed, Opts{Mut: dsm.MutSkipInvalidation})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OK {
			caught = true
		}
	}
	if !caught {
		t.Fatal("skip-invalidation survived 3 drop-class campaigns — the oracles are blind")
	}
}

// TestChaosCatchesLostDiff: with release pushes dropped, the home
// image never advances, and the rc workload's exact final assertion —
// every completed interval must be visible at home once its writer
// finished — reports it on any seed whose workers all survive.
func TestChaosCatchesLostDiff(t *testing.T) {
	w, err := Lookup("rc")
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for seed := int64(1); seed <= 3 && !caught; seed++ {
		res, err := Run(w, ClassDrop, seed, Opts{Mut: dsm.MutLostDiff})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OK {
			caught = true
		}
	}
	if !caught {
		t.Fatal("lost-diff survived 3 drop-class campaigns — the rc workload tolerates too much")
	}
}

// TestChaosCatchesForgetRecovery: with the copyset re-own removed, a
// recoverable page stays unreadable after its owner's crash, and the
// coordinator's final read — which never tolerates ErrHostDown —
// reports it.
func TestChaosCatchesForgetRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed campaign; skipped in short mode")
	}
	w, err := Lookup("slots")
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for seed := int64(1); seed <= 5 && !caught; seed++ {
		res, err := Run(w, ClassCrash, seed, Opts{Mut: dsm.MutForgetRecovery})
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != OK {
			caught = true
		}
	}
	if !caught {
		t.Fatal("forget-recovery survived 5 crash-class campaigns — the workloads tolerate too much")
	}
}

// TestUpgradeGrantCrashRegression pins the chaos-found protocol bug
// where a write-upgrade transaction invalidated the old owner's copy
// and then aborted on a failed grant deliver (requester crashed
// mid-transfer), leaving the manager entry naming an owner who held
// nothing — an MRSW invariant violation when the stranded owner was a
// peer, a serve panic when it was the manager itself. The handoff is
// now committed even when the grant never lands; these seeds found
// both symptom shapes.
func TestUpgradeGrantCrashRegression(t *testing.T) {
	for _, seed := range []int64{9, 11, 17, 19, 23} {
		tok := EncodeToken("counter", ClassCrash, seed)
		r, err := Replay(tok, Opts{})
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if r.Outcome != OK {
			t.Errorf("%s: %s — %s", tok, r.Outcome, r.Detail)
		}
	}
}

// TestDynamicForwardCrashRegression pins three chaos-found bugs in the
// dynamic directory's crash handling, each from the forward workload's
// concurrent-faulter pressure:
//
//   - crash:5 — the owner died with requests in flight, leaving the
//     survivors' probable-owner hints in a cycle with every hop alive;
//     the chase panicked at the hop bound instead of routing the
//     requester through recovery.
//   - crash:7 — a page deliver in flight at crash time landed on the
//     dead requester, whose zombie install let application writes
//     execute (and be witnessed) on a crashed machine while the serving
//     owner resurrected its stale copy.
//   - mix:15 — a write-serve deliver landed but its ack was lost; when
//     the call finally errored (the new owner had crashed) the old
//     owner restored its copy, rolling back writes third parties had
//     already witnessed. Write handoffs are now arbitrated by the
//     requester's install confirmation, not the deliver ack.
func TestDynamicForwardCrashRegression(t *testing.T) {
	for _, tok := range []string{
		EncodeToken("forward", ClassCrash, 5),
		EncodeToken("forward", ClassCrash, 7),
		EncodeToken("forward", ClassMix, 15),
	} {
		r, err := Replay(tok, Opts{})
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if r.Outcome != OK {
			t.Errorf("%s: %s — %s", tok, r.Outcome, r.Detail)
		}
	}
}

// TestSwitchedStaleRestoreRegression pins the chaos-found coherence bug
// surfaced by the switched workload's cross-segment timing
// (chaos1:switched:mix:12): a write transfer's PageDeliver landed and
// the requester went on writing, but the acknowledgement was lost and
// the requester was partitioned, then crashed, before a retry could
// get through. When the deliver call finally failed (requester
// declared dead) the serving manager "restored" its pre-transfer
// WriteAccess frame — stale zero bytes the SC oracle caught being read
// as current. The fixed-directory path now mirrors the dynamic
// directory's rule: a dead write-requester whose installation was
// never confirmed means never resurrect — the local frame is dropped,
// the handoff is committed to the corpse, and recovery re-owns from a
// surviving copy or declares the page lost. The same sweep also caught
// the allocator re-granting host 0 first-touch WriteAccess when a
// later allocation packed objects onto a page already owned remotely
// (mix:5's packing pattern); the grant is now gated to genuinely fresh
// pages.
func TestSwitchedStaleRestoreRegression(t *testing.T) {
	for _, tok := range []string{
		EncodeToken("switched", ClassMix, 12),
		EncodeToken("switched", ClassMix, 5),
	} {
		r, err := Replay(tok, Opts{})
		if err != nil {
			t.Fatalf("%s: %v", tok, err)
		}
		if r.Outcome != OK {
			t.Errorf("%s: %s — %s", tok, r.Outcome, r.Detail)
		}
	}
}
