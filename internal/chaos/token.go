package chaos

// Replay tokens. A chaos run is a pure function of (workload, class,
// seed) — the plan is regenerated and the kernel reseeded from the
// token, so replaying is just running again.

import (
	"fmt"
	"strconv"
	"strings"
)

// tokenVersion guards against replaying a token minted by an
// incompatible harness.
const tokenVersion = "chaos1"

// EncodeToken renders a run's identity as `chaos1:<workload>:<class>:<seed>`.
func EncodeToken(workload string, class Class, seed int64) string {
	return fmt.Sprintf("%s:%s:%s:%d", tokenVersion, workload, class, seed)
}

// DecodeToken parses a replay token.
func DecodeToken(tok string) (string, Class, int64, error) {
	parts := strings.Split(tok, ":")
	if len(parts) != 4 {
		return "", "", 0, fmt.Errorf("chaos: malformed token %q (want %s:<workload>:<class>:<seed>)", tok, tokenVersion)
	}
	if parts[0] != tokenVersion {
		return "", "", 0, fmt.Errorf("chaos: token version %q, this harness speaks %s", parts[0], tokenVersion)
	}
	if _, err := Lookup(parts[1]); err != nil {
		return "", "", 0, err
	}
	class, err := ParseClass(parts[2])
	if err != nil {
		return "", "", 0, err
	}
	seed, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("chaos: bad seed in token %q: %v", tok, err)
	}
	return parts[1], class, seed, nil
}

// Replay re-executes the run a token names.
func Replay(tok string, o Opts) (*Result, error) {
	name, class, seed, err := DecodeToken(tok)
	if err != nil {
		return nil, err
	}
	w, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return Run(w, class, seed, o)
}
