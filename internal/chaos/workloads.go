package chaos

// The chaos workloads. Unlike the model checker's (which assume a
// fault-free fabric and assert exact results), these are written the
// way a fault-tolerant application would be: every DSM and dsync call
// goes through the error-returning variants, workers run as separate
// simulated processes per host (so a host crash kills its worker and
// nothing else), and the coordinator on host 0 — which is never
// crashed or partitioned — polls shared state while workers run, then
// applies final assertions calibrated to crash-stop semantics:
//
//   - With no host dead and every worker finished, progress must be
//     exact: the fabric's message faults (loss, duplication,
//     corruption, short partitions) are the protocol's to absorb.
//   - After a crash, a page value may roll back to the last replicated
//     snapshot (MRSW write-invalidate loses un-replicated writes with
//     their owner — that is the documented semantics, and the recovery
//     install re-records the snapshot so the SC oracle agrees), but it
//     must still be a value that was actually written, never torn.
//   - dsm.ErrPageLost is acceptable only if a host actually died (the
//     sole owner took the only copy down with it). A persistent
//     dsm.ErrHostDown on the coordinator's final read is *never*
//     acceptable: host 0's manager is alive, so a recoverable page
//     that stays unreadable means recovery itself is broken.
//
// The oracles (invariant checker, SC trace, hang detection) judge
// every run on top of these assertions.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/netsim"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// Workload names a reproducible chaos scenario.
type Workload struct {
	// Name is the CLI spelling and the replay-token component.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Hosts is the cluster size (the plan generator needs it before
	// Build runs).
	Hosts int
	// Build constructs a fresh Instance wired to the given fault plan.
	Build func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error)
}

// Instance is one freshly built, not-yet-run chaos scenario.
type Instance struct {
	// C is the assembled cluster (checker attached, recorder wired).
	C *cluster.Cluster
	// Rec records the run's DSM accesses for the offline SC check.
	Rec *sctrace.Recorder
	// Trace accumulates recovery events from the DSM trace stream.
	Trace *traceLog
	// Main is the coordinator body, run on host 0. A non-nil error is
	// an application-level verdict (AppError).
	Main func(p *sim.Proc, c *cluster.Cluster) error
}

const (
	chaosPageSize  = 8192
	chaosSpaceSize = 4 * 8192
	chaosPageInts  = chaosPageSize / 4

	// Workload tempo: workers act every workPeriod during the fault
	// horizon, the coordinator polls shared state every pollPeriod
	// (seeding replicas that make pages recoverable), and settlePhase
	// gives failure detection (~2–3 s after a late crash) plus the
	// recovery sweep room to converge before final assertions.
	workPeriod  = 120 * time.Millisecond
	pollPeriod  = 150 * time.Millisecond
	activePhase = 2400 * time.Millisecond
	settlePhase = 4500 * time.Millisecond

	chaosSemLock = 1
	chaosSemPing = 2
	chaosSemPong = 3
	chaosSemSlot = 4 // +w: the rc workload's per-worker interval brackets
)

// buildChaosCluster assembles the standard chaos cluster: calibrated
// cost model, central manager on never-crashed host 0, failure
// detection, invariant checker and SC recorder attached.
func buildChaosCluster(seed int64, kinds []arch.Kind, plan *netsim.FaultPlan, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, *traceLog, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	rec := sctrace.NewRecorder()
	tl := &traceLog{}
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         chaosPageSize,
		SpaceSize:        chaosSpaceSize,
		Seed:             seed,
		CentralManager:   true,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		FaultPlan:        plan,
		Trace:            tl.observe,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, rec, tl, nil
}

// buildSwitchedChaosCluster is buildChaosCluster on a switched
// multi-segment topology instead of the shared bus, so fault windows
// land on cross-segment protocol exchanges and broadcasts expand along
// the multicast tree.
func buildSwitchedChaosCluster(seed int64, kinds []arch.Kind, topo *netsim.Topology, plan *netsim.FaultPlan, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, *traceLog, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	rec := sctrace.NewRecorder()
	tl := &traceLog{}
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         chaosPageSize,
		SpaceSize:        chaosSpaceSize,
		Seed:             seed,
		Topology:         topo,
		CentralManager:   true,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		FaultPlan:        plan,
		Trace:            tl.observe,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, rec, tl, nil
}

// buildDynChaosCluster is buildChaosCluster under the dynamic
// distributed directory (Li & Hudak probable-owner forwarding) instead
// of the central manager: ownership requests chase hint chains, so
// crashes and partitions land mid-forward and exercise the dynamic
// directory's lazy chain repair.
func buildDynChaosCluster(seed int64, kinds []arch.Kind, plan *netsim.FaultPlan, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, *traceLog, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	rec := sctrace.NewRecorder()
	tl := &traceLog{}
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         chaosPageSize,
		SpaceSize:        chaosSpaceSize,
		Seed:             seed,
		Directory:        dsm.DirDynamic,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		FaultPlan:        plan,
		Trace:            tl.observe,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, rec, tl, nil
}

// anyDead reports whether host 0's detector has declared any peer dead.
func anyDead(c *cluster.Cluster) bool {
	for h := 1; h < len(c.Hosts); h++ {
		if c.Hosts[0].Detect.Dead(cluster.HostID(h)) {
			return true
		}
	}
	return false
}

// tolerableLost reports whether err is a page loss that crash-stop
// semantics permit: the sole owner died with the only copy.
func tolerableLost(err error, died bool) bool {
	return died && errors.Is(err, dsm.ErrPageLost)
}

// workloads is the registry, keyed by Name.
var workloads = map[string]*Workload{}

func register(w *Workload) { workloads[w.Name] = w }

// Lookup resolves a workload by name.
func Lookup(name string) (*Workload, error) {
	w, ok := workloads[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown workload %q (have %v)", name, WorkloadNames())
	}
	return w, nil
}

// WorkloadNames lists registered workloads alphabetically.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered workload in name order.
func All() []*Workload {
	out := make([]*Workload, 0, len(workloads))
	for _, n := range WorkloadNames() {
		out = append(out, workloads[n])
	}
	return out
}

func init() {
	register(slotsWorkload())
	register(counterWorkload())
	register(handoffWorkload())
	register(forwardWorkload())
	register(switchedWorkload())
	register(quorumWorkload())
	register(rcWorkload())
}

// buildRCChaosCluster is buildChaosCluster under the lazy-release
// policy. The central manager puts every page's home on never-crashed
// host 0, so the diff log — the only authoritative copy of released
// intervals — survives every fault the plans inject: RC has no copyset
// recovery to run, and a crashed host only takes its own unreleased
// intervals to the grave, which release consistency says never existed.
func buildRCChaosCluster(seed int64, kinds []arch.Kind, plan *netsim.FaultPlan, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, *traceLog, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	rec := sctrace.NewRecorder()
	tl := &traceLog{}
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         chaosPageSize,
		SpaceSize:        chaosSpaceSize,
		Seed:             seed,
		Policy:           dsm.PolicyRC,
		CentralManager:   true,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		FaultPlan:        plan,
		Trace:            tl.observe,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, rec, tl, nil
}

// rcWorkload runs the slots pattern under lazy release consistency:
// each worker stamps its private page with a mirrored pair inside its
// own acquire/release bracket, so every round pushes one interval's
// diff to the home on host 0. The coordinator polls without acquiring —
// legal under RC (an unsynchronized read is concurrent with every
// interval it did not acquire) and never torn, because an interval's
// diff is applied to the home image atomically. A worker whose release
// cannot reach home retires with the error: release consistency has no
// quietly-degraded mode — an interval is pushed or it never happened.
// Final assertions: the coordinator reads the home image directly and a
// surviving witness host fetches it fresh; both must see each slot
// mirrored and no newer than the writer's last completed stamp, exact
// when nobody died and every worker finished.
func rcWorkload() *Workload {
	const rounds = 6
	return &Workload{
		Name:  "rc",
		Desc:  "3 hosts, lazy release consistency: per-worker interval stamps + unsynchronized polling coordinator",
		Hosts: 3,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			c, rec, tl, err := buildRCChaosCluster(seed, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, plan, mut)
			if err != nil {
				return nil, err
			}
			for w := 0; w < 3; w++ {
				c.DefineSemaphore(chaosSemSlot+uint32(w), 0, 1)
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				var pages [3]dsm.Addr
				for i := range pages {
					if pages[i], err = h0.DSM.Alloc(p, conv.Int32, chaosPageInts); err != nil {
						return err
					}
				}
				var last [3]int32
				var stopped [3]error
				var finished [3]bool
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[w]
					sem := chaosSemSlot + uint32(w)
					c.K.Spawn(fmt.Sprintf("rc-writer%d", w), func(wp *sim.Proc) {
						for i := int32(1); i <= rounds; i++ {
							if err := host.Sync.PE(wp, sem); err != nil {
								stopped[w] = err
								return
							}
							if err := host.DSM.WriteInt32sE(wp, pages[w], []int32{i, i}); err != nil {
								stopped[w] = err
								host.Sync.VE(wp, sem) // best-effort close before retiring
								return
							}
							last[w] = i
							// The V both releases the bracket and pushes the
							// interval's diff home; a push the fabric swallows
							// surfaces here.
							if err := host.Sync.VE(wp, sem); err != nil {
								stopped[w] = err
								return
							}
							wp.Sleep(2*workPeriod + time.Duration(w)*17*time.Millisecond)
						}
						finished[w] = true
					})
				}
				// Poll without acquiring: the first read faults each page in
				// from home, and host 0's copy IS the home image, updated in
				// place as diffs arrive — so the poll watches the intervals
				// land. A torn pair here means a diff applied non-atomically.
				for c.K.Now() < sim.Time(activePhase) {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := h0.DSM.ReadInt32sE(p, pages[w], pair[:]); err == nil && pair[0] != pair[1] {
							return fmt.Errorf("poll saw torn slot %d: %v", w, pair)
						}
					}
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died
				for w := 0; w < 3; w++ {
					// A retransmission-delayed straggler can still be mid-round
					// at judgment time with nothing stopped; exactness needs
					// the worker to have pushed its final interval.
					if stopped[w] != nil || !finished[w] {
						strict = false
					}
				}
				// A witness that never touched the pages fetches them fresh
				// from home — the cross-host proof that released intervals
				// survived the fault horizon. Worker hosts only ever fault
				// their own page, so host 2 is a fresh reader for slots 0
				// and 1, host 1 for slot 2.
				for w := 0; w < 3; w++ {
					witness := c.Hosts[2-w/2]
					readers := []*cluster.Host{h0}
					if !h0.Detect.Dead(witness.ID) {
						readers = append(readers, witness)
					}
					for _, reader := range readers {
						var pair [2]int32
						if err := reader.DSM.ReadInt32sE(p, pages[w], pair[:]); err != nil {
							// Homes never crash, so RC never loses a page: a
							// final read may not fail.
							return fmt.Errorf("host %d: slot %d unreadable after settle: %w", reader.ID, w, err)
						}
						if pair[0] != pair[1] {
							return fmt.Errorf("host %d: slot %d torn after settle: %v", reader.ID, w, pair)
						}
						if pair[0] < 0 || pair[0] > last[w] {
							return fmt.Errorf("host %d: slot %d = %d, never released (writer completed %d)", reader.ID, w, pair[0], last[w])
						}
						if strict && pair[0] != rounds {
							return fmt.Errorf("host %d: slot %d = %d, want %d with every host alive", reader.ID, w, pair[0], rounds)
						}
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// buildQuorumChaosCluster is buildChaosCluster under the SC-ABD quorum
// policy: every page is replicated at every host and every operation
// completes at a majority, so this is the one cluster whose workload
// can demand *progress during* a partition, not just after it heals.
func buildQuorumChaosCluster(seed int64, kinds []arch.Kind, plan *netsim.FaultPlan, mut dsm.Mutation) (*cluster.Cluster, *sctrace.Recorder, *traceLog, error) {
	hosts := make([]cluster.HostSpec, len(kinds))
	for i, k := range kinds {
		hosts[i] = cluster.HostSpec{Kind: k}
	}
	rec := sctrace.NewRecorder()
	tl := &traceLog{}
	c, err := cluster.New(cluster.Config{
		Hosts:            hosts,
		PageSize:         chaosPageSize,
		SpaceSize:        chaosSpaceSize,
		Seed:             seed,
		Policy:           dsm.PolicyQuorum,
		CentralManager:   true,
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
		FaultPlan:        plan,
		Trace:            tl.observe,
		Mutation:         mut,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return c, rec, tl, nil
}

// quorumWorkload runs the slots pattern under SC-ABD majority quorum on
// five hosts, with the availability oracle the quorum engine exists
// for: the coordinator records the completion time of every successful
// poll, and for each sufficiently long partition window the run FAILS
// unless some poll completed *while the partition was open* — the
// majority side must keep computing, not merely recover after the
// heal. Five hosts make every generated plan majority-preserving once
// the partitions are re-aimed at a single victim (below): one host cut
// plus one host crashed still leaves host 0 in a three-host component,
// and a majority of three is a quorum of five. Quorum replication has
// no sole-owner data loss, so unlike the MRSW workloads the final reads
// must succeed even after a crash — ErrPageLost is never tolerable.
func quorumWorkload() *Workload {
	const rounds = 12
	// livenessWindow is the shortest partition the progress oracle
	// judges: the coordinator polls every pollPeriod, so a window this
	// long sees several whole poll rounds even if frame loss costs a
	// round a retransmission timeout or two.
	const livenessWindow = 500 * time.Millisecond
	return &Workload{
		Name:  "quorum",
		Desc:  "5 hosts, SC-ABD majority quorum: per-host writers + polling coordinator (progress during partitions)",
		Hosts: 5,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			// The generator cuts one host per partition window, but two
			// windows may overlap on different victims; together with the
			// mix class's crash that could strand host 0 in a two-host
			// component — below any quorum. Re-aim every window at the
			// first victim: the same windows in time, never more than one
			// host cut at once, majority component guaranteed.
			for i := 1; i < len(plan.Partitions); i++ {
				plan.Partitions[i].Group = plan.Partitions[0].Group
			}
			kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Sun, arch.Firefly, arch.Sun}
			c, rec, tl, err := buildQuorumChaosCluster(seed, kinds, plan, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				var pages [3]dsm.Addr
				for i := range pages {
					if pages[i], err = h0.DSM.Alloc(p, conv.Int32, chaosPageInts); err != nil {
						return err
					}
				}
				var last [3]int32
				var stopped [3]error
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[w+1]
					c.K.Spawn(fmt.Sprintf("quorum-writer%d", w), func(wp *sim.Proc) {
						for i := int32(1); i <= rounds; i++ {
							if err := host.DSM.WriteInt32sE(wp, pages[w], []int32{i, i}); err != nil {
								stopped[w] = err
								return
							}
							last[w] = i
							wp.Sleep(2*workPeriod + time.Duration(w)*17*time.Millisecond)
						}
					})
				}
				// Poll while the writers run, recording when each success
				// completed — the raw material for the partition-progress
				// oracle. Host 0 is never cut, so it is always in the
				// majority component and its reads must keep completing.
				var completions []sim.Time
				for c.K.Now() < sim.Time(activePhase) {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := h0.DSM.ReadInt32sE(p, pages[w], pair[:]); err == nil {
							if pair[0] != pair[1] {
								return fmt.Errorf("poll saw torn slot %d: %v", w, pair)
							}
							completions = append(completions, c.K.Now())
						}
					}
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				// Liveness under partition: for every long-enough window,
				// some coordinator poll must have completed while the cut
				// was open. The guarantee is partition-tolerance — prompt
				// delivery among the majority — so windows overlapped by a
				// loss or corruption burst are exempt: with the quorum cut
				// to the bare majority, every dropped frame costs a full
				// request timeout, and that stall is the burst's doing,
				// not the partition's.
				for _, pt := range plan.Partitions {
					if pt.Until-pt.From < sim.Time(livenessWindow) {
						continue
					}
					lossy := false
					for _, b := range append(append([]netsim.Burst{}, plan.Loss...), plan.Corrupt...) {
						until := b.Until
						if until == 0 {
							until = sim.Time(activePhase + settlePhase)
						}
						if b.From < pt.Until && until > pt.From {
							lossy = true
							break
						}
					}
					if lossy {
						continue
					}
					progressed := false
					for _, t := range completions {
						if t >= pt.From && t < pt.Until {
							progressed = true
							break
						}
					}
					if !progressed {
						return fmt.Errorf("no coordinator op completed during partition [%v, %v): the majority component stalled",
							time.Duration(pt.From), time.Duration(pt.Until))
					}
				}

				died := anyDead(c)
				strict := !died
				for w := 0; w < 3; w++ {
					if stopped[w] != nil {
						strict = false
					}
				}
				// A witness on a surviving non-coordinator host forces a
				// second quorum assembly for each page.
				witness := h0
				for h := 1; h < len(c.Hosts); h++ {
					if !h0.Detect.Dead(cluster.HostID(h)) {
						witness = c.Hosts[h]
						break
					}
				}
				for _, reader := range []*cluster.Host{h0, witness} {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := reader.DSM.ReadInt32sE(p, pages[w], pair[:]); err != nil {
							// Majority replication tolerates every fault the
							// plans inject: a final read may never fail.
							return fmt.Errorf("host %d: slot %d unreadable after settle: %w", reader.ID, w, err)
						}
						if pair[0] != pair[1] {
							return fmt.Errorf("host %d: slot %d torn after settle: %v", reader.ID, w, pair)
						}
						// +1: a writer killed mid-operation records nothing,
						// but its in-flight write may still have reached
						// enough replicas for a later read to adopt and
						// write back — ABD's interrupted writes linearize,
						// they do not roll back like an MRSW owner's.
						if pair[0] < 0 || pair[0] > last[w]+1 {
							return fmt.Errorf("host %d: slot %d = %d, never written (writer completed %d)", reader.ID, w, pair[0], last[w])
						}
						if strict && pair[0] != rounds {
							return fmt.Errorf("host %d: slot %d = %d, want %d with every host alive", reader.ID, w, pair[0], rounds)
						}
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// switchedWorkload is the slots pattern stretched across a switched
// 3-segment star (two hosts per segment): the writers live on three
// different segments, so every coordinator poll and every recovery
// exchange crosses inter-segment links. On top of the class's fault
// plan, Build severs one of the star's uplinks for a fixed window —
// the switched fabric's native partition, with no host list to
// enumerate — kept shorter than the failure detector's death
// threshold, so the protocol must ride the cut out with retries.
func switchedWorkload() *Workload {
	const rounds = 12
	// One writer per segment (host h lives on segment h/2).
	writers := [3]int{1, 3, 5}
	return &Workload{
		Name:  "switched",
		Desc:  "6 hosts on 3 switched segments, cross-segment writers + polling coordinator (inter-segment link cut)",
		Hosts: 6,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			topo := netsim.SwitchedStar(3, 2)
			// Sever the uplink to leaf segment 1 or 2, by seed. The
			// 900 ms window stays under the 1200 ms partition bound.
			// Mix plans already layer loss, a partition and a crash;
			// stacking the cut on top pushes a live host's total
			// unreachability past what the failure detector and the
			// retry budget are calibrated for, so those runs keep the
			// class's own faults only.
			if len(plan.Partitions) == 0 || len(plan.Crashes) == 0 {
				plan.LinkCuts = append(plan.LinkCuts, netsim.LinkCut{
					Window: netsim.Window{
						From:  sim.Time(400 * time.Millisecond),
						Until: sim.Time(1300 * time.Millisecond),
					},
					A: 0,
					B: 1 + int(seed&1),
				})
			}
			kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly, arch.Firefly, arch.Firefly, arch.Firefly}
			c, rec, tl, err := buildSwitchedChaosCluster(seed, kinds, topo, plan, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				var pages [3]dsm.Addr
				for i := range pages {
					if pages[i], err = h0.DSM.Alloc(p, conv.Int32, chaosPageInts); err != nil {
						return err
					}
				}
				var last [3]int32
				var stopped [3]error
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[writers[w]]
					c.K.Spawn(fmt.Sprintf("seg-writer%d", w), func(wp *sim.Proc) {
						for i := int32(1); i <= rounds; i++ {
							if err := host.DSM.WriteInt32sE(wp, pages[w], []int32{i, i}); err != nil {
								stopped[w] = err
								return
							}
							last[w] = i
							wp.Sleep(2*workPeriod + time.Duration(w)*17*time.Millisecond)
						}
					})
				}
				// Poll across the segments while the writers run; every
				// successful read leaves a replica on segment 0 that
				// recovery can run on.
				for c.K.Now() < sim.Time(activePhase) {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := h0.DSM.ReadInt32sE(p, pages[w], pair[:]); err == nil && pair[0] != pair[1] {
							return fmt.Errorf("poll saw torn slot %d: %v", w, pair)
						}
					}
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died
				for w := 0; w < 3; w++ {
					if stopped[w] != nil {
						strict = false
					}
				}
				// A witness on a surviving non-coordinator host forces the
				// final reads back across the star.
				witness := h0
				for h := 1; h < len(c.Hosts); h++ {
					if !h0.Detect.Dead(cluster.HostID(h)) {
						witness = c.Hosts[h]
						break
					}
				}
				for _, reader := range []*cluster.Host{h0, witness} {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						err := reader.DSM.ReadInt32sE(p, pages[w], pair[:])
						switch {
						case err == nil:
							if pair[0] != pair[1] {
								return fmt.Errorf("host %d: slot %d torn after settle: %v", reader.ID, w, pair)
							}
							if pair[0] < 0 || pair[0] > last[w] {
								return fmt.Errorf("host %d: slot %d = %d, never written (writer completed %d)", reader.ID, w, pair[0], last[w])
							}
							if strict && pair[0] != rounds {
								return fmt.Errorf("host %d: slot %d = %d, want %d with every host alive", reader.ID, w, pair[0], rounds)
							}
						case tolerableLost(err, died):
							// Sole owner died holding the only copy.
						default:
							return fmt.Errorf("host %d: slot %d unreadable after settle: %w", reader.ID, w, err)
						}
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// slotsWorkload gives each host a private page it stamps with a
// monotone sequence number, mirrored in a second word of the same
// access (so a recovered page is either a complete snapshot or wrong).
// The coordinator polls every page while the writers run — each poll
// leaves a read replica in the page's copyset, which is exactly what
// makes the page recoverable when its owner dies. Final assertions:
// each slot must read back a mirrored pair no newer than the writer's
// last completed write; exact progress when nobody died.
func slotsWorkload() *Workload {
	const rounds = 12
	return &Workload{
		Name:  "slots",
		Desc:  "3 hosts, per-host monotone writers + polling coordinator (recovery rollback bounds)",
		Hosts: 3,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			c, rec, tl, err := buildChaosCluster(seed, []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly}, plan, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				var pages [3]dsm.Addr
				for i := range pages {
					if pages[i], err = h0.DSM.Alloc(p, conv.Int32, chaosPageInts); err != nil {
						return err
					}
				}
				var last [3]int32
				var stopped [3]error
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("slot-writer%d", w), func(wp *sim.Proc) {
						for i := int32(1); i <= rounds; i++ {
							if err := host.DSM.WriteInt32sE(wp, pages[w], []int32{i, i}); err != nil {
								stopped[w] = err
								return
							}
							last[w] = i
							// Dwell two poll periods between stamps so the
							// coordinator's replica usually postdates the last
							// write — that replica is what recovery runs on.
							wp.Sleep(2*workPeriod + time.Duration(w)*17*time.Millisecond)
						}
					})
				}
				// Poll while the writers run: transient errors during fault
				// windows are the fabric's business, but every successful
				// read refreshes this host's replica.
				for c.K.Now() < sim.Time(activePhase) {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := h0.DSM.ReadInt32sE(p, pages[w], pair[:]); err == nil && pair[0] != pair[1] {
							return fmt.Errorf("poll saw torn slot %d: %v", w, pair)
						}
					}
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died
				for w := 0; w < 3; w++ {
					if stopped[w] != nil {
						strict = false
					}
				}
				// The coordinator's own replica could satisfy its read
				// without a fault; a witness on another surviving host has
				// no copy, so its read must go through the manager — the
				// end-to-end proof that pages still *serve* after recovery.
				witness := h0
				for h := 1; h < 3; h++ {
					if !h0.Detect.Dead(cluster.HostID(h)) {
						witness = c.Hosts[h]
						break
					}
				}
				for _, reader := range []*cluster.Host{h0, witness} {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						err := reader.DSM.ReadInt32sE(p, pages[w], pair[:])
						switch {
						case err == nil:
							if pair[0] != pair[1] {
								return fmt.Errorf("host %d: slot %d torn after settle: %v", reader.ID, w, pair)
							}
							if pair[0] < 0 || pair[0] > last[w] {
								return fmt.Errorf("host %d: slot %d = %d, never written (writer completed %d)", reader.ID, w, pair[0], last[w])
							}
							if strict && pair[0] != rounds {
								return fmt.Errorf("host %d: slot %d = %d, want %d with every host alive", reader.ID, w, pair[0], rounds)
							}
						case tolerableLost(err, died):
							// Sole owner died holding the only copy.
						default:
							return fmt.Errorf("host %d: slot %d unreadable after settle: %w", reader.ID, w, err)
						}
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// forwardWorkload runs under the dynamic distributed directory: three
// workers stamp disjoint mirrored pairs of one shared page, so every
// stamp migrates the page's ownership to the writer and the next
// writer's request chases a probable-owner chain. The coordinator
// polls the page (refreshing the replica recovery runs on) while the
// fault plan drops, cuts and crashes around the forwards — a crash can
// land on the owner, on a forwarder mid-chain, or between the
// invalidation round and the handoff. Final assertions mirror
// slotsWorkload's: each pair must read back mirrored and no newer than
// its writer's last completed stamp; exact when nobody died and every
// worker finished.
func forwardWorkload() *Workload {
	const rounds = 12
	return &Workload{
		Name:  "forward",
		Desc:  "4 hosts, dynamic directory: writers migrate one page through probable-owner chains (crash mid-forward)",
		Hosts: 4,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			c, rec, tl, err := buildDynChaosCluster(seed, []arch.Kind{arch.Sun, arch.Firefly, arch.Sun, arch.Firefly}, plan, mut)
			if err != nil {
				return nil, err
			}
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				page, err := h0.DSM.Alloc(p, conv.Int32, chaosPageInts)
				if err != nil {
					return err
				}
				slot := func(w int) dsm.Addr { return page + dsm.Addr(8*w) }
				var last [3]int32
				var stopped [3]error
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[w+1]
					c.K.Spawn(fmt.Sprintf("forward-writer%d", w), func(wp *sim.Proc) {
						for i := int32(1); i <= rounds; i++ {
							if err := host.DSM.WriteInt32sE(wp, slot(w), []int32{i, i}); err != nil {
								stopped[w] = err
								return
							}
							last[w] = i
							// Stagger the writers so ownership keeps rotating
							// through all three and the chains stay warm.
							wp.Sleep(workPeriod + time.Duration(w)*37*time.Millisecond)
						}
					})
				}
				for c.K.Now() < sim.Time(activePhase) {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						if err := h0.DSM.ReadInt32sE(p, slot(w), pair[:]); err == nil && pair[0] != pair[1] {
							return fmt.Errorf("poll saw torn pair %d: %v", w, pair)
						}
					}
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died
				for w := 0; w < 3; w++ {
					if stopped[w] != nil {
						strict = false
					}
				}
				// A witness with no replica proves the page still serves
				// through the (possibly repaired) hint graph after settle.
				witness := h0
				for h := 1; h < 4; h++ {
					if !h0.Detect.Dead(cluster.HostID(h)) {
						witness = c.Hosts[h]
						break
					}
				}
				for _, reader := range []*cluster.Host{h0, witness} {
					for w := 0; w < 3; w++ {
						var pair [2]int32
						err := reader.DSM.ReadInt32sE(p, slot(w), pair[:])
						switch {
						case err == nil:
							if pair[0] != pair[1] {
								return fmt.Errorf("host %d: pair %d torn after settle: %v", reader.ID, w, pair)
							}
							if pair[0] < 0 || pair[0] > last[w] {
								return fmt.Errorf("host %d: pair %d = %d, never written (writer completed %d)", reader.ID, w, pair[0], last[w])
							}
							if strict && pair[0] != rounds {
								return fmt.Errorf("host %d: pair %d = %d, want %d with every host alive", reader.ID, w, pair[0], rounds)
							}
						case tolerableLost(err, died):
							// The owner died holding the only copy.
						default:
							return fmt.Errorf("host %d: pair %d unreadable after settle: %w", reader.ID, w, err)
						}
					}
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// counterWorkload increments one shared counter from every host under
// a distributed semaphore. A worker that hits a fault releases the
// lock if it can and retires; a worker whose host crashes inside the
// critical section takes the lock to its grave, parking the others —
// the coordinator never waits on workers, so that is tolerated, not a
// hang. Final assertions: exact count when nobody died and every
// worker finished; otherwise the counter must not exceed the completed
// increments (recovery may roll it back, never forward).
func counterWorkload() *Workload {
	const rounds = 6
	return &Workload{
		Name:  "counter",
		Desc:  "3 hosts, semaphore-locked shared counter (exact under message faults, bounded under crashes)",
		Hosts: 3,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			c, rec, tl, err := buildChaosCluster(seed, []arch.Kind{arch.Sun, arch.Firefly, arch.Sun}, plan, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(chaosSemLock, 0, 1)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				ctr, err := h0.DSM.Alloc(p, conv.Int32, chaosPageInts)
				if err != nil {
					return err
				}
				var incr [3]int32
				var stopped [3]error
				for w := 0; w < 3; w++ {
					w := w
					host := c.Hosts[w]
					c.K.Spawn(fmt.Sprintf("counter%d", w), func(wp *sim.Proc) {
						for i := 0; i < rounds; i++ {
							if err := host.Sync.PE(wp, chaosSemLock); err != nil {
								stopped[w] = err
								return
							}
							v, err := host.DSM.ReadInt32E(wp, ctr)
							if err == nil {
								err = host.DSM.WriteInt32E(wp, ctr, v+1)
							}
							if err != nil {
								stopped[w] = err
								host.Sync.VE(wp, chaosSemLock) // best-effort release before retiring
								return
							}
							incr[w]++
							if err := host.Sync.VE(wp, chaosSemLock); err != nil {
								stopped[w] = err
								return
							}
							wp.Sleep(workPeriod)
						}
					})
				}
				for c.K.Now() < sim.Time(activePhase) {
					h0.DSM.ReadInt32E(p, ctr) // poll to seed replicas; errors are transient
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died
				var completed int32
				for w := 0; w < 3; w++ {
					completed += incr[w]
					if stopped[w] != nil {
						strict = false
					}
				}
				got, err := h0.DSM.ReadInt32E(p, ctr)
				switch {
				case err == nil:
					if strict && got != 3*rounds {
						return fmt.Errorf("counter = %d, want %d with every host alive", got, 3*rounds)
					}
					if got < 0 || got > completed+1 {
						// +1: a crashed worker may have committed its write
						// locally without living to record it.
						return fmt.Errorf("counter = %d, outside [0, %d]", got, completed+1)
					}
				case tolerableLost(err, died):
				default:
					return fmt.Errorf("counter unreadable after settle: %w", err)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}

// handoffWorkload ping-pongs ownership of one page between two hosts
// of different architectures: each increment is a full ownership
// transfer with conversion, so a crash has a wide window to land in
// the middle of a handoff — the exact scenario the manager's
// suspect-transfer reconciliation exists for. Final assertions mirror
// counterWorkload's.
func handoffWorkload() *Workload {
	const rounds = 4
	return &Workload{
		Name:  "handoff",
		Desc:  "3 hosts, strict ownership ping-pong across architectures (crash mid-handoff)",
		Hosts: 3,
		Build: func(seed int64, plan *netsim.FaultPlan, mut dsm.Mutation) (*Instance, error) {
			c, rec, tl, err := buildChaosCluster(seed, []arch.Kind{arch.Sun, arch.Sun, arch.Firefly}, plan, mut)
			if err != nil {
				return nil, err
			}
			c.DefineSemaphore(chaosSemPing, 0, 1)
			c.DefineSemaphore(chaosSemPong, 0, 0)
			main := func(p *sim.Proc, c *cluster.Cluster) error {
				h0 := c.Hosts[0]
				val, err := h0.DSM.Alloc(p, conv.Int32, chaosPageInts)
				if err != nil {
					return err
				}
				var incr [2]int32
				var stopped [2]error
				sems := [2]uint32{chaosSemPing, chaosSemPong}
				for w := 0; w < 2; w++ {
					w := w
					host := c.Hosts[w+1]
					c.K.Spawn(fmt.Sprintf("handoff%d", w), func(wp *sim.Proc) {
						for i := 0; i < rounds; i++ {
							if err := host.Sync.PE(wp, sems[w]); err != nil {
								stopped[w] = err
								return
							}
							v, err := host.DSM.ReadInt32E(wp, val)
							if err == nil {
								err = host.DSM.WriteInt32E(wp, val, v+1)
							}
							if err != nil {
								stopped[w] = err
								host.Sync.VE(wp, sems[1-w]) // best-effort: let the partner run on
								return
							}
							incr[w]++
							if err := host.Sync.VE(wp, sems[1-w]); err != nil {
								stopped[w] = err
								return
							}
						}
					})
				}
				for c.K.Now() < sim.Time(activePhase) {
					var pair [1]int32
					h0.DSM.ReadInt32sE(p, val, pair[:]) // poll to seed replicas; errors are transient
					p.Sleep(pollPeriod)
				}
				p.Sleep(settlePhase)

				died := anyDead(c)
				strict := !died && stopped[0] == nil && stopped[1] == nil
				completed := incr[0] + incr[1]
				got, err := h0.DSM.ReadInt32E(p, val)
				switch {
				case err == nil:
					if strict && got != 2*rounds {
						return fmt.Errorf("handoff value = %d, want %d with every host alive", got, 2*rounds)
					}
					if got < 0 || got > completed+1 {
						return fmt.Errorf("handoff value = %d, outside [0, %d]", got, completed+1)
					}
				case tolerableLost(err, died):
				default:
					return fmt.Errorf("handoff value unreadable after settle: %w", err)
				}
				return nil
			}
			return &Instance{C: c, Rec: rec, Trace: tl, Main: main}, nil
		},
	}
}
