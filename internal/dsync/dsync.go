// Package dsync implements Mermaid's distributed synchronization
// facility (§2.2): P and V semaphore operations, events, and barriers.
//
// The paper implemented these as a separate facility rather than with
// atomic instructions on shared memory locations, because the latter
// would ping-pong whole DSM pages between hosts. Each primitive has a
// fixed manager host holding its state; operations from other hosts are
// request–response messages, and operations that may block (P, event
// wait, barrier arrival) use patient calls whose retransmissions are
// absorbed by the duplicate-request cache.
//
// Primitives are defined identically on every host before the cluster
// runs (a static table, like the conversion registry); only the manager
// host materializes state.
package dsync

import (
	"encoding/binary"
	"fmt"
	"hash"
	"sort"

	"repro/internal/arch"
	"repro/internal/bufpool"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

// HostID aliases the network host identifier.
type HostID = remoteop.HostID

// Operation codes carried in messages.
const (
	opSemP = 1
	opSemV = 2

	opEventWait = 1
	opEventSet  = 2
)

// def describes one primitive: where it lives and its parameters.
type def struct {
	manager HostID
	initial int // semaphore count or barrier size
}

// SyncModel is the consistency model's hook into synchronization
// (implemented by the DSM release-consistency model, attached by the
// cluster). A release ships an opaque payload (vector timestamp plus
// write notices) that rides the primitive's messages; the manager folds
// payloads together with MergePayload and every grant hands the merged
// payload to the acquirer. With no model attached (every sequentially
// consistent policy) no payloads exist and the message streams are
// bit-identical to before this hook existed.
type SyncModel interface {
	// ReleasePayload runs the model's release action (push pending
	// updates) and returns the payload to attach to the releasing
	// operation.
	ReleasePayload(p *sim.Proc) ([]byte, error)
	// AcquirePayload runs the model's acquire action with the payload
	// delivered by the grant (possibly nil).
	AcquirePayload(p *sim.Proc, data []byte) error
	// MergePayload folds two payloads (either may be nil). It is pure
	// and always returns a freshly allocated slice, never aliasing its
	// arguments — incoming payloads alias pooled wire buffers.
	MergePayload(a, b []byte) []byte
}

// grantee is a parked participant to release later: either a local
// process or a remote request awaiting its reply.
type grantee struct {
	local bool
	w     sim.Waiter
	woken *bool
	pay   *[]byte // payload delivery slot for local grantees
	req   *proto.Message
}

// payload accumulation is per primitive and monotone: vector timestamps
// and write notices only grow, so it is never reset — not even when a
// barrier recycles — and re-merging a retransmitted payload is a no-op.
type semState struct {
	count   int
	payload []byte
	waiters []grantee
}

type eventState struct {
	set     bool
	payload []byte
	waiters []grantee
}

type barrierState struct {
	size    int
	arrived int
	payload []byte
	waiters []grantee
}

// Service is one host's synchronization module.
type Service struct {
	k      *sim.Kernel
	id     HostID
	kind   arch.Kind
	ep     *remoteop.Endpoint
	params *model.Params

	defsSem     map[uint32]def
	defsEvent   map[uint32]def
	defsBarrier map[uint32]def

	sems     map[uint32]*semState
	events   map[uint32]*eventState
	barriers map[uint32]*barrierState

	model SyncModel

	crashed bool
}

// AttachModel binds the consistency model's sync hooks. The cluster
// attaches the same model implementation on every host (or none).
func (s *Service) AttachModel(m SyncModel) { s.model = m }

// Crash marks this host's service failed: handler processes unwind at
// their next activation and primitives it managed stay silent forever
// (crash-stop).
func (s *Service) Crash() { s.crashed = true }

// mustOK keeps the plain primitives' historical contract: without
// failure detection a synchronization failure is a simulation bug.
func mustOK(op string, id uint32, err error) {
	if err != nil {
		panic(fmt.Sprintf("dsync: %s(%d): %v", op, id, err))
	}
}

// New creates a host's synchronization service and registers handlers.
func New(k *sim.Kernel, ep *remoteop.Endpoint, kind arch.Kind, params *model.Params) *Service {
	s := &Service{
		k:           k,
		id:          ep.ID(),
		kind:        kind,
		ep:          ep,
		params:      params,
		defsSem:     make(map[uint32]def),
		defsEvent:   make(map[uint32]def),
		defsBarrier: make(map[uint32]def),
		sems:        make(map[uint32]*semState),
		events:      make(map[uint32]*eventState),
		barriers:    make(map[uint32]*barrierState),
	}
	ep.Handle(proto.KindSemOp, s.handleSemOp)
	ep.Handle(proto.KindEventOp, s.handleEventOp)
	ep.Handle(proto.KindBarrierOp, s.handleBarrierOp)
	return s
}

// DefineSemaphore declares semaphore id with its manager host and
// initial count. Every host must make identical definitions at setup.
func (s *Service) DefineSemaphore(id uint32, manager HostID, initial int) {
	s.defsSem[id] = def{manager: manager, initial: initial}
	if manager == s.id {
		s.sems[id] = &semState{count: initial}
	}
}

// DefineEvent declares event id with its manager host.
func (s *Service) DefineEvent(id uint32, manager HostID) {
	s.defsEvent[id] = def{manager: manager}
	if manager == s.id {
		s.events[id] = &eventState{}
	}
}

// DefineBarrier declares barrier id for n participants.
func (s *Service) DefineBarrier(id uint32, manager HostID, n int) {
	s.defsBarrier[id] = def{manager: manager, initial: n}
	if manager == s.id {
		s.barriers[id] = &barrierState{size: n}
	}
}

// WriteStateHash folds this host's synchronization state — semaphore
// counts, event flags, barrier arrival counts, and waiter-queue lengths
// — into h in a canonical order. The model checker (internal/mc)
// combines it with the DSM modules' state hashes into the fingerprint
// its schedule-space pruning keys on; without it, two schedules leaving
// identical page tables but different semaphore states would wrongly
// merge.
func (s *Service) WriteStateHash(h hash.Hash) {
	var buf [4]byte
	put := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:], v)
		h.Write(buf[:])
	}
	// Accumulated release payloads are folded only when present, so the
	// byte stream of every payload-free (sequentially consistent) run is
	// unchanged by the consistency-model hook.
	pay := func(payload []byte) {
		if len(payload) > 0 {
			put(uint32(len(payload)))
			h.Write(payload)
		}
	}
	put(uint32(s.id))
	for _, id := range sortedIDs(s.sems) {
		st := s.sems[id]
		put(id)
		put(uint32(st.count))
		put(uint32(len(st.waiters)))
		pay(st.payload)
	}
	put(0xffff_ffff) // section separator
	for _, id := range sortedIDs(s.events) {
		st := s.events[id]
		put(id)
		if st.set {
			put(1)
		} else {
			put(0)
		}
		put(uint32(len(st.waiters)))
		pay(st.payload)
	}
	put(0xffff_fffe)
	for _, id := range sortedIDs(s.barriers) {
		st := s.barriers[id]
		put(id)
		put(uint32(st.arrived))
		put(uint32(len(st.waiters)))
		pay(st.payload)
	}
}

// sortedIDs lists a state map's keys in increasing order.
func sortedIDs[T any](m map[uint32]T) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// mergePayload folds an incoming release payload into a primitive's
// accumulated payload. Without a model payloads do not exist and the
// accumulator stays nil.
func (s *Service) mergePayload(cur *[]byte, in []byte) {
	if s.model == nil || len(in) == 0 {
		return
	}
	*cur = s.model.MergePayload(*cur, in)
}

// acquired runs the model's acquire action after a grant delivered
// payload (a no-op without a model).
func (s *Service) acquired(p *sim.Proc, payload []byte) error {
	if s.model == nil {
		return nil
	}
	return s.model.AcquirePayload(p, payload)
}

// releasing runs the model's release action before the releasing
// operation proceeds, returning the payload to attach (nil without a
// model).
func (s *Service) releasing(p *sim.Proc) ([]byte, error) {
	if s.model == nil {
		return nil, nil
	}
	return s.model.ReleasePayload(p)
}

// release unblocks a grantee, delivering the granting payload: wake a
// local process or answer the remote request.
func (s *Service) release(p *sim.Proc, g grantee, kind proto.Kind, payload []byte) {
	if g.local {
		if g.pay != nil {
			*g.pay = payload
		}
		*g.woken = true
		s.k.Wake(g.w, sim.WakeSignal)
		return
	}
	s.ep.Reply(p, g.req, &proto.Message{Kind: kind, Data: payload})
}

// hasPending reports whether the same remote request (by origin and
// request ID) is already queued — a retransmission that outlived the
// endpoint's duplicate cache must not enqueue a second grantee.
func hasPending(list []grantee, req *proto.Message) bool {
	for _, g := range list {
		if !g.local && g.req.From == req.From && g.req.ReqID == req.ReqID {
			return true
		}
	}
	return false
}

// parkLocal parks the calling process as a grantee on the given list
// and returns the payload the grant delivered.
func parkLocal(p *sim.Proc, list *[]grantee) []byte {
	woken := false
	var payload []byte
	*list = append(*list, grantee{local: true, w: p.PrepareWait(), woken: &woken, pay: &payload})
	for !woken {
		p.Park()
	}
	return payload
}

// --- Semaphores ---

// P acquires one unit of semaphore id, blocking until granted.
func (s *Service) P(p *sim.Proc, id uint32) { mustOK("P", id, s.PE(p, id)) }

// PE is P returning an error when the semaphore's manager host has
// crashed (the primitive is gone with it) instead of blocking forever.
func (s *Service) PE(p *sim.Proc, id uint32) error {
	d, ok := s.defsSem[id]
	if !ok {
		panic(fmt.Sprintf("dsync: semaphore %d not defined", id))
	}
	if d.manager == s.id {
		st := s.sems[id]
		if st.count > 0 {
			st.count--
			return s.acquired(p, st.payload)
		}
		return s.acquired(p, parkLocal(p, &st.waiters))
	}
	resp, err := s.ep.CallBlocking(p, d.manager, &proto.Message{
		Kind: proto.KindSemOp,
		Args: []uint32{id, opSemP},
	})
	if err != nil {
		return fmt.Errorf("semaphore %d died with its manager %d: %w", id, d.manager, err)
	}
	return s.acquireReply(p, resp)
}

// acquireReply runs the model's acquire action with a grant reply's
// payload and recycles the reply's wire buffer.
func (s *Service) acquireReply(p *sim.Proc, resp *proto.Message) error {
	err := s.acquired(p, resp.Data)
	if buf := resp.TakeWire(); buf != nil {
		bufpool.Put(buf)
	}
	return err
}

// V releases one unit of semaphore id, waking the oldest waiter.
func (s *Service) V(p *sim.Proc, id uint32) { mustOK("V", id, s.VE(p, id)) }

// VE is V returning crash errors.
func (s *Service) VE(p *sim.Proc, id uint32) error {
	d, ok := s.defsSem[id]
	if !ok {
		panic(fmt.Sprintf("dsync: semaphore %d not defined", id))
	}
	data, err := s.releasing(p)
	if err != nil {
		return fmt.Errorf("release before V(%d): %w", id, err)
	}
	if d.manager == s.id {
		st := s.sems[id]
		s.mergePayload(&st.payload, data)
		s.semV(p, st)
		return nil
	}
	if _, err := s.ep.Call(p, d.manager, &proto.Message{
		Kind: proto.KindSemOp,
		Args: []uint32{id, opSemV},
		Data: data,
	}); err != nil {
		return fmt.Errorf("semaphore %d died with its manager %d: %w", id, d.manager, err)
	}
	return nil
}

func (s *Service) semV(p *sim.Proc, st *semState) {
	if len(st.waiters) > 0 {
		g := st.waiters[0]
		st.waiters = st.waiters[1:]
		s.release(p, g, proto.KindSemReply, st.payload)
		return
	}
	st.count++
}

func (s *Service) handleSemOp(p *sim.Proc, req *proto.Message) {
	if s.crashed {
		p.Exit()
	}
	p.Sleep(s.params.SyncProcess.Of(s.kind))
	st := s.sems[req.Arg(0)]
	if st == nil {
		return // undefined here: requester is misconfigured and times out
	}
	switch req.Arg(1) {
	case opSemP:
		if st.count > 0 {
			st.count--
			s.ep.Reply(p, req, &proto.Message{Kind: proto.KindSemReply, Data: st.payload})
			return
		}
		if !hasPending(st.waiters, req) {
			st.waiters = append(st.waiters, grantee{req: req})
		}
	case opSemV:
		s.mergePayload(&st.payload, req.Data)
		if buf := req.TakeWire(); buf != nil {
			bufpool.Put(buf)
		}
		s.semV(p, st)
		s.ep.Reply(p, req, &proto.Message{Kind: proto.KindSemReply})
	}
}

// --- Events ---

// EventWait blocks until event id is set.
func (s *Service) EventWait(p *sim.Proc, id uint32) { mustOK("EventWait", id, s.EventWaitE(p, id)) }

// EventWaitE is EventWait returning crash errors.
func (s *Service) EventWaitE(p *sim.Proc, id uint32) error {
	d, ok := s.defsEvent[id]
	if !ok {
		panic(fmt.Sprintf("dsync: event %d not defined", id))
	}
	if d.manager == s.id {
		st := s.events[id]
		if st.set {
			return s.acquired(p, st.payload)
		}
		return s.acquired(p, parkLocal(p, &st.waiters))
	}
	resp, err := s.ep.CallBlocking(p, d.manager, &proto.Message{
		Kind: proto.KindEventOp,
		Args: []uint32{id, opEventWait},
	})
	if err != nil {
		return fmt.Errorf("event %d died with its manager %d: %w", id, d.manager, err)
	}
	return s.acquireReply(p, resp)
}

// EventSet sets event id, releasing all waiters.
func (s *Service) EventSet(p *sim.Proc, id uint32) { mustOK("EventSet", id, s.EventSetE(p, id)) }

// EventSetE is EventSet returning crash errors.
func (s *Service) EventSetE(p *sim.Proc, id uint32) error {
	d, ok := s.defsEvent[id]
	if !ok {
		panic(fmt.Sprintf("dsync: event %d not defined", id))
	}
	data, err := s.releasing(p)
	if err != nil {
		return fmt.Errorf("release before EventSet(%d): %w", id, err)
	}
	if d.manager == s.id {
		st := s.events[id]
		s.mergePayload(&st.payload, data)
		s.eventSet(p, st)
		return nil
	}
	if _, err := s.ep.Call(p, d.manager, &proto.Message{
		Kind: proto.KindEventOp,
		Args: []uint32{id, opEventSet},
		Data: data,
	}); err != nil {
		return fmt.Errorf("event %d died with its manager %d: %w", id, d.manager, err)
	}
	return nil
}

func (s *Service) eventSet(p *sim.Proc, st *eventState) {
	st.set = true
	for _, g := range st.waiters {
		s.release(p, g, proto.KindEventReply, st.payload)
	}
	st.waiters = nil
}

func (s *Service) handleEventOp(p *sim.Proc, req *proto.Message) {
	if s.crashed {
		p.Exit()
	}
	p.Sleep(s.params.SyncProcess.Of(s.kind))
	st := s.events[req.Arg(0)]
	if st == nil {
		return
	}
	switch req.Arg(1) {
	case opEventWait:
		if st.set {
			s.ep.Reply(p, req, &proto.Message{Kind: proto.KindEventReply, Data: st.payload})
			return
		}
		if !hasPending(st.waiters, req) {
			st.waiters = append(st.waiters, grantee{req: req})
		}
	case opEventSet:
		s.mergePayload(&st.payload, req.Data)
		if buf := req.TakeWire(); buf != nil {
			bufpool.Put(buf)
		}
		s.eventSet(p, st)
		s.ep.Reply(p, req, &proto.Message{Kind: proto.KindEventReply})
	}
}

// --- Barriers ---

// BarrierArrive announces arrival at barrier id and blocks until all
// participants have arrived; the barrier then resets for reuse.
func (s *Service) BarrierArrive(p *sim.Proc, id uint32) {
	mustOK("BarrierArrive", id, s.BarrierArriveE(p, id))
}

// BarrierArriveE is BarrierArrive returning crash errors.
func (s *Service) BarrierArriveE(p *sim.Proc, id uint32) error {
	d, ok := s.defsBarrier[id]
	if !ok {
		panic(fmt.Sprintf("dsync: barrier %d not defined", id))
	}
	data, err := s.releasing(p)
	if err != nil {
		return fmt.Errorf("release before barrier %d: %w", id, err)
	}
	if d.manager == s.id {
		st := s.barriers[id]
		s.mergePayload(&st.payload, data)
		st.arrived++
		if st.arrived >= st.size {
			st.arrived = 0
			for _, g := range st.waiters {
				s.release(p, g, proto.KindBarrierReply, st.payload)
			}
			st.waiters = nil
			return s.acquired(p, st.payload)
		}
		return s.acquired(p, parkLocal(p, &st.waiters))
	}
	resp, err := s.ep.CallBlocking(p, d.manager, &proto.Message{
		Kind: proto.KindBarrierOp,
		Args: []uint32{id},
		Data: data,
	})
	if err != nil {
		return fmt.Errorf("barrier %d died with its manager %d: %w", id, d.manager, err)
	}
	return s.acquireReply(p, resp)
}

func (s *Service) handleBarrierOp(p *sim.Proc, req *proto.Message) {
	if s.crashed {
		p.Exit()
	}
	p.Sleep(s.params.SyncProcess.Of(s.kind))
	st := s.barriers[req.Arg(0)]
	if st == nil {
		return
	}
	if hasPending(st.waiters, req) {
		return // retransmission of an arrival already counted
	}
	s.mergePayload(&st.payload, req.Data)
	if buf := req.TakeWire(); buf != nil {
		bufpool.Put(buf)
	}
	st.arrived++
	if st.arrived >= st.size {
		st.arrived = 0
		for _, g := range st.waiters {
			s.release(p, g, proto.KindBarrierReply, st.payload)
		}
		st.waiters = nil
		s.ep.Reply(p, req, &proto.Message{Kind: proto.KindBarrierReply, Data: st.payload})
		return
	}
	st.waiters = append(st.waiters, grantee{req: req})
}
