package dsync

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/remoteop"
	"repro/internal/sim"
)

type rig struct {
	k    *sim.Kernel
	net  *netsim.Network
	svcs []*Service
	par  *model.Params
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	k := sim.NewKernel(1)
	params := model.Default()
	net := netsim.New(k, &params)
	r := &rig{k: k, net: net, par: &params}
	kinds := []arch.Kind{arch.Sun, arch.Firefly, arch.Firefly, arch.Sun}
	for i := 0; i < n; i++ {
		ifc, err := net.Attach(netsim.HostID(i))
		if err != nil {
			t.Fatal(err)
		}
		ep := remoteop.New(k, ifc, kinds[i%len(kinds)], &params)
		svc := New(k, ep, kinds[i%len(kinds)], &params)
		ep.Start()
		r.svcs = append(r.svcs, svc)
	}
	return r
}

func (r *rig) defineSem(id uint32, mgr HostID, initial int) {
	for _, s := range r.svcs {
		s.DefineSemaphore(id, mgr, initial)
	}
}

func (r *rig) defineEvent(id uint32, mgr HostID) {
	for _, s := range r.svcs {
		s.DefineEvent(id, mgr)
	}
}

func (r *rig) defineBarrier(id uint32, mgr HostID, n int) {
	for _, s := range r.svcs {
		s.DefineBarrier(id, mgr, n)
	}
}

func TestLocalSemaphorePV(t *testing.T) {
	r := newRig(t, 1)
	r.defineSem(1, 0, 1)
	var acquired, released sim.Time
	r.k.Spawn("a", func(p *sim.Proc) {
		r.svcs[0].P(p, 1)
		p.Sleep(10 * time.Millisecond)
		r.svcs[0].V(p, 1)
		released = p.Now()
	})
	r.k.Spawn("b", func(p *sim.Proc) {
		r.svcs[0].P(p, 1)
		acquired = p.Now()
	})
	r.k.Run()
	if acquired < released {
		t.Fatalf("second P at %v before V at %v", acquired, released)
	}
}

func TestRemoteSemaphoreBlocksUntilV(t *testing.T) {
	r := newRig(t, 3)
	r.defineSem(1, 0, 0)
	var acquired sim.Time
	r.k.Spawn("waiter", func(p *sim.Proc) {
		r.svcs[1].P(p, 1) // remote P, blocks
		acquired = p.Now()
	})
	r.k.Spawn("poster", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		r.svcs[2].V(p, 1) // remote V
	})
	r.k.Run()
	if acquired < sim.Time(50*time.Millisecond) {
		t.Fatalf("P granted at %v, before the V at 50ms", acquired)
	}
}

func TestSemaphoreLongBlockSurvivesRetransmission(t *testing.T) {
	// The P must wait far longer than the blocking retry interval; the
	// retransmissions must not corrupt the count.
	r := newRig(t, 2)
	r.defineSem(1, 0, 0)
	var acquired sim.Time
	r.k.Spawn("waiter", func(p *sim.Proc) {
		r.svcs[1].P(p, 1)
		acquired = p.Now()
	})
	r.k.Spawn("poster", func(p *sim.Proc) {
		p.Sleep(30 * time.Second) // several retry intervals
		r.svcs[0].V(p, 1)
	})
	r.k.Run()
	if acquired < sim.Time(30*time.Second) {
		t.Fatalf("P granted at %v, want ≥30s", acquired)
	}
	// A subsequent P must block (count must be 0, not inflated by
	// retransmitted grants). A blocked remote P retransmits forever, so
	// bound the run in virtual time rather than draining the queue.
	extra := false
	r.k.Spawn("second", func(p *sim.Proc) {
		r.svcs[1].P(p, 1)
		extra = true
	})
	r.k.RunFor(time.Minute)
	if extra {
		t.Fatal("second P succeeded; retransmissions inflated the count")
	}
}

func TestCountingSemaphoreFIFO(t *testing.T) {
	r := newRig(t, 4)
	r.defineSem(1, 0, 2)
	var order []int
	for i := 1; i < 4; i++ {
		i := i
		r.k.Spawn("w", func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // deterministic arrival order
			r.svcs[i].P(p, 1)
			order = append(order, i)
		})
	}
	r.k.RunFor(time.Minute) // the third P blocks and retransmits forever
	if len(order) != 2 {
		t.Fatalf("%d P's granted with count 2, want 2", len(order))
	}
	r.k.Spawn("v", func(p *sim.Proc) { r.svcs[0].V(p, 1) })
	r.k.RunFor(time.Minute)
	if len(order) != 3 {
		t.Fatalf("V did not release the queued waiter")
	}
}

func TestEventBroadcastAcrossHosts(t *testing.T) {
	r := newRig(t, 4)
	r.defineEvent(5, 2)
	released := 0
	for i := 0; i < 4; i++ {
		i := i
		r.k.Spawn("w", func(p *sim.Proc) {
			r.svcs[i].EventWait(p, 5)
			released++
		})
	}
	r.k.Spawn("setter", func(p *sim.Proc) {
		p.Sleep(20 * time.Millisecond)
		r.svcs[3].EventSet(p, 5)
	})
	r.k.Run()
	if released != 4 {
		t.Fatalf("%d waiters released, want 4", released)
	}
}

func TestEventWaitAfterSetReturnsImmediately(t *testing.T) {
	r := newRig(t, 2)
	r.defineEvent(5, 0)
	done := false
	r.k.Spawn("main", func(p *sim.Proc) {
		r.svcs[0].EventSet(p, 5)
		r.svcs[1].EventWait(p, 5)
		done = true
	})
	r.k.Run()
	if !done {
		t.Fatal("wait on set event blocked")
	}
}

func TestBarrierAcrossHosts(t *testing.T) {
	r := newRig(t, 4)
	r.defineBarrier(9, 1, 4)
	var times []sim.Time
	for i := 0; i < 4; i++ {
		i := i
		r.k.Spawn("w", func(p *sim.Proc) {
			p.Sleep(time.Duration(i*10) * time.Millisecond)
			r.svcs[i].BarrierArrive(p, 9)
			times = append(times, p.Now())
		})
	}
	r.k.Run()
	if len(times) != 4 {
		t.Fatalf("%d released, want 4", len(times))
	}
	for _, at := range times {
		if at < sim.Time(30*time.Millisecond) {
			t.Fatalf("released at %v before last arrival at 30ms", at)
		}
	}
}

func TestBarrierReusableAfterRelease(t *testing.T) {
	r := newRig(t, 2)
	r.defineBarrier(9, 0, 2)
	rounds := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 2; i++ {
			i := i
			r.k.Spawn("w", func(p *sim.Proc) {
				r.svcs[i].BarrierArrive(p, 9)
				rounds++
			})
		}
		r.k.Run()
	}
	if rounds != 6 {
		t.Fatalf("%d arrivals released over 3 rounds, want 6", rounds)
	}
}

func TestUndefinedPrimitivePanics(t *testing.T) {
	r := newRig(t, 1)
	var recovered bool
	r.k.Spawn("main", func(p *sim.Proc) {
		defer func() { recovered = recover() != nil }()
		r.svcs[0].P(p, 42)
	})
	func() {
		defer func() { _ = recover() }() // kernel re-panics; absorb
		r.k.Run()
	}()
	if !recovered {
		t.Fatal("undefined semaphore did not panic")
	}
}

func TestSyncSurvivesPacketLoss(t *testing.T) {
	r := newRig(t, 3)
	r.net.DropRate = 0.3
	r.par.RequestTimeout = 50 * time.Millisecond
	r.par.BlockingRetryInterval = 100 * time.Millisecond
	r.defineSem(1, 0, 0)
	granted := 0
	for i := 1; i < 3; i++ {
		i := i
		r.k.Spawn("w", func(p *sim.Proc) {
			r.svcs[i].P(p, 1)
			granted++
		})
	}
	r.k.Spawn("poster", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			p.Sleep(200 * time.Millisecond)
			r.svcs[0].V(p, 1)
		}
	})
	r.k.Run()
	if granted != 2 {
		t.Fatalf("%d P's granted under loss, want 2", granted)
	}
}
