package dsync_test

// Adversarial-schedule coverage for the distributed synchronization
// facility: the model checker (internal/mc) drives the "sem" and
// "barrier" workloads through every schedule in a bounded space —
// every wakeup order, every delivery order of P/V and barrier traffic
// the kernel can produce. Mutual exclusion, lost wakeups (deadlock)
// and barrier round-skew are checked on each schedule by the workload
// assertions and the run classifier.

import (
	"testing"

	"repro/internal/dsm"
	"repro/internal/mc"
)

func exhaust(t *testing.T, workload string, budget int) *mc.Report {
	t.Helper()
	w, err := mc.Lookup(workload)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mc.RunDFS(w, dsm.MutNone, mc.DFSOpts{MaxSchedules: budget})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violating != nil {
		t.Fatalf("%s under adversarial schedules: %s", workload, rep)
	}
	t.Logf("%s", rep)
	return rep
}

// TestSemaphoreAdversarialWakeups exhausts the bounded schedule space
// of two hosts contending on a distributed semaphore: every wakeup
// order the manager can grant must preserve mutual exclusion (checked
// with plain Go variables, outside DSM) and eventually release every
// waiter (a lost wakeup surfaces as a deadlocked schedule).
func TestSemaphoreAdversarialWakeups(t *testing.T) {
	budget := 1000
	if testing.Short() {
		budget = 150
	}
	rep := exhaust(t, "sem", budget)
	if !testing.Short() && rep.Frontier != 0 {
		t.Errorf("bounded schedule space not exhausted: %d prefixes unexplored", rep.Frontier)
	}
}

// TestBarrierAdversarialWakeups does the same for a 2-host barrier
// reused across two rounds: no released worker may ever observe its
// peer behind the round it was released from, and no arrival may be
// dropped.
func TestBarrierAdversarialWakeups(t *testing.T) {
	budget := 1000
	if testing.Short() {
		budget = 150
	}
	rep := exhaust(t, "barrier", budget)
	if !testing.Short() && rep.Frontier != 0 {
		t.Errorf("bounded schedule space not exhausted: %d prefixes unexplored", rep.Frontier)
	}
}
