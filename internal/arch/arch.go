// Package arch describes the machine architectures of the heterogeneous
// cluster: byte order, floating-point format, native virtual-memory page
// size, and relative CPU speed.
//
// The reproduction models the two machine types of the paper: Sun-3
// workstations (M68020: big-endian, IEEE floats, 8 KB VM pages) and DEC
// Firefly multiprocessors (CVAX: little-endian, VAX floats, 1 KB VM
// pages, up to 7 processors sharing physical memory).
package arch

import (
	"encoding/binary"
	"fmt"
)

// ByteOrder identifies the byte ordering of integers in memory.
type ByteOrder int

const (
	// BigEndian stores the most significant byte first (M68020).
	BigEndian ByteOrder = iota + 1
	// LittleEndian stores the least significant byte first (CVAX).
	LittleEndian
)

// String returns the conventional name of the byte order.
func (b ByteOrder) String() string {
	switch b {
	case BigEndian:
		return "big-endian"
	case LittleEndian:
		return "little-endian"
	default:
		return fmt.Sprintf("ByteOrder(%d)", int(b))
	}
}

// Binary returns the encoding/binary implementation of the byte order.
func (b ByteOrder) Binary() binary.ByteOrder {
	if b == BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

// FloatFormat identifies the floating-point representation.
type FloatFormat int

const (
	// IEEE754 is the IEEE 754 single/double format (Sun-3 with 68881).
	IEEE754 FloatFormat = iota + 1
	// VAXFloat is the VAX F_floating (32-bit) / G_floating (64-bit)
	// format used by the CVAX processors of the Firefly.
	VAXFloat
)

// String returns the name of the float format.
func (f FloatFormat) String() string {
	switch f {
	case IEEE754:
		return "IEEE-754"
	case VAXFloat:
		return "VAX"
	default:
		return fmt.Sprintf("FloatFormat(%d)", int(f))
	}
}

// Kind identifies a machine type of the cluster.
type Kind int

const (
	// Sun is a Sun-3/60 workstation: one M68020 CPU, big-endian, IEEE
	// floats, 8 KB native VM pages, SunOS with the Mermaid user-level
	// thread package.
	Sun Kind = iota + 1
	// Firefly is a DEC SRC Firefly: up to 7 CVAX CPUs with physically
	// shared memory, little-endian, VAX floats, 1 KB native VM pages,
	// Topaz system threads.
	Firefly
)

// String returns the machine-type name.
func (k Kind) String() string {
	switch k {
	case Sun:
		return "Sun"
	case Firefly:
		return "Firefly"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Arch is an immutable architecture descriptor.
type Arch struct {
	// Kind is the machine type this descriptor belongs to.
	Kind Kind
	// Order is the integer byte order.
	Order ByteOrder
	// Floats is the floating-point representation.
	Floats FloatFormat
	// PageSize is the native VM page size in bytes (a power of two).
	PageSize int
	// MaxCPUs is the maximum number of processors on a host of this
	// type (1 for a Sun workstation, 7 for a Firefly).
	MaxCPUs int
}

// Compatible reports whether data can move between the two architectures
// without any conversion (same byte order and float format).
func (a Arch) Compatible(b Arch) bool {
	return a.Order == b.Order && a.Floats == b.Floats
}

// String identifies the architecture.
func (a Arch) String() string {
	return fmt.Sprintf("%s(%s, %s floats, %dB pages)", a.Kind, a.Order, a.Floats, a.PageSize)
}

// The two architectures of the paper's cluster.
var (
	// SunArch describes a Sun-3/60 workstation.
	SunArch = Arch{
		Kind:     Sun,
		Order:    BigEndian,
		Floats:   IEEE754,
		PageSize: 8192,
		MaxCPUs:  1,
	}
	// FireflyArch describes a DEC Firefly multiprocessor node.
	FireflyArch = Arch{
		Kind:     Firefly,
		Order:    LittleEndian,
		Floats:   VAXFloat,
		PageSize: 1024,
		MaxCPUs:  7,
	}
)

// ByKind returns the canonical descriptor for a machine kind.
func ByKind(k Kind) (Arch, error) {
	switch k {
	case Sun:
		return SunArch, nil
	case Firefly:
		return FireflyArch, nil
	default:
		return Arch{}, fmt.Errorf("arch: unknown machine kind %d", int(k))
	}
}
