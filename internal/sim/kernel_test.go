package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		woke = p.Now()
	})
	k.Run()
	if woke != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
	if k.Now() != Time(5*time.Millisecond) {
		t.Fatalf("kernel now %v, want 5ms", k.Now())
	}
}

func TestZeroAndNegativeSleepReturnImmediately(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("process did not complete")
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved to %v on zero sleeps", k.Now())
	}
}

func TestEventOrderingIsDeterministicFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(time.Millisecond) // all wake at the same instant
			order = append(order, i)
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO by spawn sequence", order)
		}
	}
}

func TestAfterCallbackRunsAtScheduledTime(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(3*time.Second, func() { at = k.Now() })
	k.Run()
	if at != Time(3*time.Second) {
		t.Fatalf("callback at %v, want 3s", at)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel(1)
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childTime = c.Now()
		})
	})
	k.Run()
	if childTime != Time(2*time.Second) {
		t.Fatalf("child finished at %v, want 2s", childTime)
	}
}

func TestSemaphorePVBlocksAndWakes(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 0)
	var acquired Time
	k.Spawn("waiter", func(p *Proc) {
		sem.P(p)
		acquired = p.Now()
	})
	k.Spawn("poster", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		sem.V()
	})
	k.Run()
	if acquired != Time(7*time.Millisecond) {
		t.Fatalf("acquired at %v, want 7ms", acquired)
	}
}

func TestSemaphoreFIFOHandoff(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			sem.P(p)
			order = append(order, i)
		})
	}
	k.Spawn("poster", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Millisecond)
			sem.V()
		}
	})
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("wakeup order %v not FIFO", order)
		}
	}
}

func TestSemaphoreTryP(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 1)
	k.Spawn("p", func(p *Proc) {
		if !sem.TryP() {
			t.Error("TryP failed with count 1")
		}
		if sem.TryP() {
			t.Error("TryP succeeded with count 0")
		}
	})
	k.Run()
}

func TestQueuePutGet(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			q.Put(i)
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v, want [0 1 2]", got)
	}
}

func TestQueueGetTimeoutExpires(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var ok bool
	var at Time
	k.Spawn("consumer", func(p *Proc) {
		_, ok = q.GetTimeout(p, 10*time.Millisecond)
		at = p.Now()
	})
	k.Run()
	if ok {
		t.Fatal("GetTimeout succeeded on empty queue")
	}
	if at != Time(10*time.Millisecond) {
		t.Fatalf("timed out at %v, want 10ms", at)
	}
}

func TestQueueGetTimeoutDeliveredInTime(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var v any
	var ok bool
	k.Spawn("consumer", func(p *Proc) {
		v, ok = q.GetTimeout(p, 10*time.Millisecond)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		q.Put("hello")
	})
	k.Run()
	if !ok || v != "hello" {
		t.Fatalf("got %v ok=%v, want hello", v, ok)
	}
}

func TestQueueTimeoutThenLaterPutWakesNobodyStale(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue(k)
	var first, second any
	k.Spawn("c1", func(p *Proc) {
		first, _ = q.GetTimeout(p, time.Millisecond)
		// Park again on an unrelated sleep; a stale queue wake must not
		// cut this short.
		p.Sleep(time.Hour)
	})
	k.Spawn("c2", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		second = q.Get(p)
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		q.Put(42)
	})
	k.Run()
	if first != nil {
		t.Fatalf("timed-out getter received %v", first)
	}
	if second != 42 {
		t.Fatalf("live getter got %v, want 42", second)
	}
}

func TestResourceSerializesUse(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		k.Spawn("u", func(p *Proc) {
			r.Use(p, 10*time.Millisecond)
			ends = append(ends, p.Now())
		})
	}
	k.Run()
	// Two at a time: finish at 10,10,20,20 ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends %v, want %v", ends, want)
		}
	}
}

func TestEventBroadcast(t *testing.T) {
	k := NewKernel(1)
	e := NewEvent(k)
	released := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			e.Wait(p)
			released++
		})
	}
	k.Spawn("setter", func(p *Proc) {
		p.Sleep(time.Millisecond)
		e.Set()
	})
	k.Run()
	if released != 3 {
		t.Fatalf("released %d, want 3", released)
	}
}

func TestEventWaitAfterSetDoesNotBlock(t *testing.T) {
	k := NewKernel(1)
	e := NewEvent(k)
	done := false
	k.Spawn("p", func(p *Proc) {
		e.Set()
		e.Wait(p)
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("wait on a set event blocked")
	}
}

func TestBarrierReleasesAllAndResets(t *testing.T) {
	k := NewKernel(1)
	b := NewBarrier(k, 3)
	var times []Time
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			b.Arrive(p)
			times = append(times, p.Now())
		})
	}
	k.Run()
	for _, at := range times {
		if at != Time(3*time.Millisecond) {
			t.Fatalf("release times %v, want all 3ms", times)
		}
	}
	// Reuse after reset.
	count := 0
	for i := 0; i < 3; i++ {
		k.Spawn("w2", func(p *Proc) {
			b.Arrive(p)
			count++
		})
	}
	k.Run()
	if count != 3 {
		t.Fatalf("second round released %d, want 3", count)
	}
}

func TestPrepareWaitWakeBeforePark(t *testing.T) {
	k := NewKernel(1)
	var reason WakeReason
	k.Spawn("p", func(p *Proc) {
		w := p.PrepareWait()
		k.Wake(w, WakeSignal) // wake arrives before Park
		reason = p.Park()
	})
	k.Run()
	if reason != WakeSignal {
		t.Fatalf("reason %v, want WakeSignal", reason)
	}
}

func TestParkTimeoutSignalWins(t *testing.T) {
	k := NewKernel(1)
	var reason WakeReason
	var at Time
	k.Spawn("p", func(p *Proc) {
		w := p.PrepareWait()
		k.After(time.Millisecond, func() { k.Wake(w, WakeSignal) })
		reason = p.ParkTimeout(time.Second)
		at = p.Now()
	})
	k.Run()
	if reason != WakeSignal || at != Time(time.Millisecond) {
		t.Fatalf("reason %v at %v, want signal at 1ms", reason, at)
	}
}

func TestParkTimeoutExpiry(t *testing.T) {
	k := NewKernel(1)
	var reason WakeReason
	var at Time
	k.Spawn("p", func(p *Proc) {
		_ = p.PrepareWait() // never woken
		reason = p.ParkTimeout(4 * time.Millisecond)
		at = p.Now()
	})
	k.Run()
	if reason != WakeTimeout || at != Time(4*time.Millisecond) {
		t.Fatalf("reason %v at %v, want timeout at 4ms", reason, at)
	}
}

func TestDuplicateWakeIsIgnored(t *testing.T) {
	k := NewKernel(1)
	wakes := 0
	k.Spawn("p", func(p *Proc) {
		w := p.PrepareWait()
		k.After(time.Millisecond, func() {
			k.Wake(w, WakeSignal)
			k.Wake(w, WakeSignal)
		})
		p.Park()
		wakes++
		p.Sleep(time.Hour) // a second (stale) wake would cut this short
		wakes++
	})
	k.Run()
	if wakes != 2 {
		t.Fatalf("wakes %d, want 2", wakes)
	}
	if k.Now() != Time(time.Millisecond)+Time(time.Hour) {
		t.Fatalf("clock %v, want 1h1ms", k.Now())
	}
}

func TestStalledReportsParkedProcesses(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(k, 0)
	k.Spawn("stuck", func(p *Proc) { sem.P(p) })
	k.Run()
	names := k.Stalled()
	if len(names) != 1 || names[0] != "stuck" {
		t.Fatalf("stalled %v, want [stuck]", names)
	}
}

func TestRunForStopsAtDeadline(t *testing.T) {
	k := NewKernel(1)
	var ticks []Time
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Second)
			ticks = append(ticks, p.Now())
		}
	})
	k.RunFor(3500 * time.Millisecond)
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks before deadline, want 3", len(ticks))
	}
	if k.Now() != Time(3500*time.Millisecond) {
		t.Fatalf("clock %v, want 3.5s", k.Now())
	}
	k.Run()
	if len(ticks) != 10 {
		t.Fatalf("got %d ticks after full run, want 10", len(ticks))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []int {
		k := NewKernel(42)
		var out []int
		q := NewQueue(k)
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("prod", func(p *Proc) {
				p.Sleep(Duration(k.Rand().Intn(10)) * time.Millisecond)
				q.Put(i)
			})
		}
		k.Spawn("cons", func(p *Proc) {
			for i := 0; i < 4; i++ {
				out = append(out, q.Get(p).(int))
			}
		})
		k.Run()
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ: %v vs %v", a, b)
		}
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kernel did not propagate process panic")
		}
	}()
	k := NewKernel(1)
	k.Spawn("boom", func(p *Proc) { panic("bang") })
	k.Run()
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds %v", tm.Seconds())
	}
	if tm.Milliseconds() != 1500 {
		t.Fatalf("Milliseconds %v", tm.Milliseconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add wrong")
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub wrong")
	}
}
