package sim

// Model-based property tests: random operation sequences against
// reference models of the primitives.

import (
	"math/rand"
	"testing"
	"time"
)

func TestPropertySemaphoreAgainstReferenceModel(t *testing.T) {
	// Random interleavings of P/V across many processes must never let
	// the number of in-critical-section processes exceed the initial
	// count, and total grants must equal initial + V's when demand is
	// unbounded.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		initial := 1 + rng.Intn(3)
		sem := NewSemaphore(k, initial)
		inside := 0
		maxInside := 0
		grants := 0
		procs := 4 + rng.Intn(5)
		for i := 0; i < procs; i++ {
			delay := time.Duration(rng.Intn(50)) * time.Millisecond
			hold := time.Duration(1+rng.Intn(20)) * time.Millisecond
			k.Spawn("p", func(p *Proc) {
				p.Sleep(delay)
				sem.P(p)
				grants++
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(hold)
				inside--
				sem.V()
			})
		}
		k.Run()
		if maxInside > initial {
			t.Fatalf("seed %d: %d processes inside with count %d", seed, maxInside, initial)
		}
		if grants != procs {
			t.Fatalf("seed %d: %d grants for %d processes", seed, grants, procs)
		}
		if sem.Count() != initial {
			t.Fatalf("seed %d: final count %d, want %d restored", seed, sem.Count(), initial)
		}
	}
}

func TestPropertyQueueIsFIFOUnderRandomTiming(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		q := NewQueue(k)
		const items = 30
		var got []int
		k.Spawn("producer", func(p *Proc) {
			for i := 0; i < items; i++ {
				p.Sleep(time.Duration(rng.Intn(5)) * time.Millisecond)
				q.Put(i)
			}
		})
		k.Spawn("consumer", func(p *Proc) {
			for i := 0; i < items; i++ {
				got = append(got, q.Get(p).(int))
			}
		})
		k.Run()
		for i, v := range got {
			if v != i {
				t.Fatalf("seed %d: item %d = %d, FIFO violated", seed, i, v)
			}
		}
	}
}

func TestPropertyResourceNeverOversubscribed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		capacity := 1 + rng.Intn(4)
		r := NewResource(k, capacity)
		over := false
		for i := 0; i < 12; i++ {
			delay := time.Duration(rng.Intn(30)) * time.Millisecond
			hold := time.Duration(1+rng.Intn(15)) * time.Millisecond
			k.Spawn("u", func(p *Proc) {
				p.Sleep(delay)
				r.Acquire(p)
				if r.InUse() > capacity {
					over = true
				}
				p.Sleep(hold)
				r.Release()
			})
		}
		k.Run()
		if over {
			t.Fatalf("seed %d: resource oversubscribed beyond %d", seed, capacity)
		}
		if r.InUse() != 0 {
			t.Fatalf("seed %d: %d still in use at end", seed, r.InUse())
		}
	}
}

func TestPropertyVirtualTimeNeverDecreases(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		last := Time(0)
		violated := false
		check := func(p *Proc) {
			if p.Now() < last {
				violated = true
			}
			last = p.Now()
		}
		sem := NewSemaphore(k, 1)
		for i := 0; i < 10; i++ {
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
					check(p)
					sem.P(p)
					check(p)
					p.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
					sem.V()
					check(p)
				}
			})
		}
		k.Run()
		if violated {
			t.Fatalf("seed %d: virtual time went backwards", seed)
		}
	}
}
