// Package sim implements a deterministic discrete-event simulation kernel.
//
// A Kernel owns a virtual clock and a set of processes. Exactly one
// process executes at any moment: the kernel and the running process hand
// control back and forth over channels, so no locking is needed anywhere
// in simulation code and runs are fully deterministic for a given seed.
//
// Processes are ordinary functions running on goroutines. They interact
// with virtual time exclusively through their *Proc handle: Sleep, Park,
// and the synchronization primitives in this package (Semaphore, Queue,
// Resource, Event, Barrier). Wall-clock time never enters the simulation.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration for virtual durations so that callers
// can write sim.Duration in signatures without importing time.
type Duration = time.Duration

// String formats a Time as a duration since simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as floating-point seconds since start.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds returns the time as floating-point milliseconds since start.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// WakeReason reports why a parked process resumed.
type WakeReason int

const (
	// WakeSignal means another process (or event callback) woke the process.
	WakeSignal WakeReason = iota + 1
	// WakeTimeout means the park's deadline expired first.
	WakeTimeout
)

type event struct {
	at       Time
	seq      uint64
	proc     *proc  // process to wake, or nil for a callback event
	epoch    uint64 // park epoch the wake targets (ignored for callbacks)
	reason   WakeReason
	fn       func()    // callback; must not block
	fnArg    func(any) // callback taking arg; the closure-free hot-path form
	arg      any
	name     string // label for callback events (scheduling diagnostics)
	canceled bool
}

// live reports whether dispatching the event would do anything: canceled
// events and stale wakes (the process finished or left that park episode)
// are no-ops the scheduler may discard.
func (e *event) live() bool {
	if e.canceled {
		return false
	}
	if e.fn != nil || e.fnArg != nil {
		return true
	}
	return !e.proc.done && e.proc.epoch == e.epoch
}

// label renders the event for schedule diagnostics: the callback's name,
// or the woken process prefixed by why it wakes.
func (e *event) label() string {
	if e.fn != nil || e.fnArg != nil {
		if e.name != "" {
			return e.name
		}
		return "callback"
	}
	if e.reason == WakeTimeout {
		return "timer:" + e.proc.name
	}
	return "wake:" + e.proc.name
}

// eventHeap is a 4-ary min-heap ordered by (at, seq). The wider fan-out
// roughly halves the tree depth of the binary container/heap it
// replaces, and inlined sift loops avoid the interface-dispatch cost of
// heap.Push/heap.Pop — the kernel's hottest operations at 1024 hosts.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e *event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() *event {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = nil
	s = s[:last]
	*h = s
	i := 0
	for {
		min := i
		c := 4*i + 1
		end := c + 4
		if end > len(s) {
			end = len(s)
		}
		for ; c < end; c++ {
			if s.less(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

func (h eventHeap) Peek() *event  { return h[0] }
func (h eventHeap) isEmpty() bool { return len(h) == 0 }

// Chooser resolves the kernel's scheduling nondeterminism. Whenever more
// than one live event is eligible at the current virtual instant, the
// kernel asks the chooser which to dispatch; in a real distributed
// system these alternatives are exactly the uncontrolled orderings —
// message arrivals, thread wakeups, timer expiries racing one another —
// so a Chooser that enumerates them turns the simulator into a model
// checker (see internal/mc).
//
// Choose receives the instant, the number of alternatives n (always
// ≥ 2), and a label function describing each for diagnostics. It must
// return an index in [0, n). A given kernel run is a pure function of
// its seed and the sequence of choices, so recording the choices made
// replays the run bit-identically.
type Chooser interface {
	Choose(now Time, n int, label func(i int) string) int
}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create one with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan yieldMsg
	procs   map[int]*proc
	nextID  int
	rng     *rand.Rand
	chooser Chooser
	elig    []*event // scratch buffer for same-instant alternatives
	free    []*event // dispatched event records, recycled by newEvent
}

type yieldKind int

const (
	yieldParked yieldKind = iota + 1
	yieldDone
	yieldPanic
)

type yieldMsg struct {
	kind yieldKind
	p    *proc
	pval any // panic value for yieldPanic
}

// NewKernel creates a kernel whose random source is seeded with seed.
// The same seed and the same program produce the same execution.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan yieldMsg),
		procs: make(map[int]*proc),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from simulation context (inside processes or callbacks).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// schedule inserts an event and returns it (for cancellation).
func (k *Kernel) schedule(at Time, e *event) *event {
	if at < k.now {
		at = k.now
	}
	e.at = at
	e.seq = k.seq
	k.seq++
	k.events.push(e)
	return e
}

// newEvent returns a zeroed event record, recycling dispatched ones.
// Steady-state scheduling (timers, deliveries, wakes) allocates nothing:
// the pool reaches the simulation's high-water event count and stays
// there. Safe because nothing outside the kernel retains an *event past
// its dispatch.
func (k *Kernel) newEvent() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{}
}

// releaseEvent recycles a dispatched (or discarded) event record.
func (k *Kernel) releaseEvent(e *event) {
	*e = event{}
	k.free = append(k.free, e)
}

// SetChooser installs (or, with nil, removes) the scheduling chooser.
// It must be called before Run; changing the chooser mid-run would make
// recorded schedules meaningless.
func (k *Kernel) SetChooser(c Chooser) { k.chooser = c }

// HasChooser reports whether a scheduling chooser is installed. Hot
// paths use it to skip work that only feeds choice-point diagnostics —
// formatting event labels, most prominently.
func (k *Kernel) HasChooser() bool { return k.chooser != nil }

// After schedules fn to run at the current time plus d. fn runs in kernel
// context and must not block; use Spawn for blocking work.
func (k *Kernel) After(d Duration, fn func()) {
	e := k.newEvent()
	e.fn = fn
	k.schedule(k.now.Add(d), e)
}

// AfterNamed is After with a label naming the callback in schedule
// diagnostics (the model checker's choice-point labels).
func (k *Kernel) AfterNamed(name string, d Duration, fn func()) {
	e := k.newEvent()
	e.fn = fn
	e.name = name
	k.schedule(k.now.Add(d), e)
}

// AfterNamedArg schedules fn(arg) at the current time plus d — the
// allocation-free form of AfterNamed for hot paths: fn is a long-lived
// function value and arg a caller-pooled record, so scheduling builds
// no per-event closure.
func (k *Kernel) AfterNamedArg(name string, d Duration, fn func(any), arg any) {
	e := k.newEvent()
	e.fnArg = fn
	e.arg = arg
	e.name = name
	k.schedule(k.now.Add(d), e)
}

// Spawn creates a new process named name running fn. The process starts
// at the current virtual time (after already-scheduled events at this
// time). It may be called before Run or from any simulation context.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(k.now, name, fn)
}

// SpawnAt is Spawn with an explicit start time.
func (k *Kernel) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	k.nextID++
	pr := &proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan WakeReason),
	}
	k.procs[pr.id] = pr
	public := &Proc{pr}
	go func() {
		<-pr.resume
		defer func() {
			if r := recover(); r != nil {
				if _, kill := r.(killSentinel); !kill {
					k.yield <- yieldMsg{kind: yieldPanic, p: pr, pval: r} // vet:ignore chan-send — kernel⇄process rendezvous
					return
				}
			}
			k.yield <- yieldMsg{kind: yieldDone, p: pr} // vet:ignore chan-send — kernel⇄process rendezvous
		}()
		if pr.killed {
			return
		}
		fn(public)
	}()
	pr.wakePending = true
	k.scheduleWake(at, pr, pr.epoch, WakeSignal)
	return public
}

// Run executes events until none remain, then returns. Processes still
// parked when the event queue drains (for example server loops blocked on
// empty queues) are left suspended; Stalled reports them.
//
// Run panics if a process panicked, re-raising the process's panic value
// wrapped with its name.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events until done() reports true (checked after
// every event) or the queue drains. Use it when background activity —
// server loops, persistent retransmission — would otherwise keep the
// event queue non-empty forever.
func (k *Kernel) RunUntil(done func() bool) {
	for !done() && k.Step() {
	}
}

// RunFor executes events until the clock would pass the given deadline,
// leaving later events queued, or until no events remain. The clock is
// advanced to the deadline even if the queue drains earlier.
func (k *Kernel) RunFor(d Duration) {
	deadline := k.now.Add(d)
	for {
		if k.chooser != nil {
			k.discardDead()
		}
		if k.events.isEmpty() || k.events.Peek().at > deadline {
			break
		}
		k.step(k.nextEvent())
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Step dispatches the next event and reports whether one was dispatched.
// It is the single-step form of Run, for drivers — the model checker —
// that bound a run by event count.
func (k *Kernel) Step() bool {
	e := k.nextEvent()
	if e == nil {
		return false
	}
	k.step(e)
	return true
}

// scheduleWake schedules a process-wake event at time at.
func (k *Kernel) scheduleWake(at Time, p *proc, epoch uint64, reason WakeReason) {
	e := k.newEvent()
	e.proc = p
	e.epoch = epoch
	e.reason = reason
	k.schedule(at, e)
}

// discardDead drops canceled and stale events from the head of the
// queue so the chooser never sees a no-op as an alternative.
func (k *Kernel) discardDead() {
	for !k.events.isEmpty() && !k.events.Peek().live() {
		k.releaseEvent(k.events.pop())
	}
}

// nextEvent selects the event to dispatch next. Without a chooser it is
// the heap minimum — earliest time, then scheduling order, the fixed
// deterministic default. With a chooser, every live event at the minimum
// time is a scheduling alternative and the chooser picks one; the others
// keep their original sequence numbers, so declining an event never
// reorders it relative to later arrivals at the same instant.
func (k *Kernel) nextEvent() *event {
	if k.chooser == nil {
		if k.events.isEmpty() {
			return nil
		}
		return k.events.pop()
	}
	k.discardDead()
	if k.events.isEmpty() {
		return nil
	}
	t := k.events.Peek().at
	elig := k.elig[:0]
	for !k.events.isEmpty() && k.events.Peek().at == t {
		e := k.events.pop()
		if e.live() {
			elig = append(elig, e)
		} else {
			k.releaseEvent(e)
		}
	}
	k.elig = elig[:0] // keep the grown buffer for the next call
	idx := 0
	if len(elig) > 1 {
		idx = k.chooser.Choose(t, len(elig), func(i int) string { return elig[i].label() })
		if idx < 0 || idx >= len(elig) {
			idx = 0
		}
	}
	for i, e := range elig {
		if i != idx {
			k.events.push(e)
		}
	}
	return elig[idx]
}

// LivePending counts queued events that would actually do something if
// dispatched. The model checker folds it into its state hashes.
func (k *Kernel) LivePending() int {
	n := 0
	for _, e := range k.events {
		if e.live() {
			n++
		}
	}
	return n
}

// step dispatches one event — run its callback, or resume its process
// and wait for the process to park again or finish — then recycles the
// event record.
func (k *Kernel) step(e *event) {
	k.dispatch(e)
	k.releaseEvent(e)
}

func (k *Kernel) dispatch(e *event) {
	if e.canceled {
		return
	}
	k.now = e.at
	if e.fn != nil {
		e.fn()
		return
	}
	if e.fnArg != nil {
		e.fnArg(e.arg)
		return
	}
	p := e.proc
	// The epoch gate drops stale wakes: any event targeting a park
	// episode the process has already left is a no-op. wakePending is
	// only a scheduling dedupe, not a correctness gate, because timer
	// events (Sleep, ParkTimeout) are scheduled without setting it.
	if p.done || p.epoch != e.epoch {
		return
	}
	p.wakePending = false
	p.epoch++
	p.resume <- e.reason // vet:ignore chan-send — kernel⇄process rendezvous
	msg := <-k.yield
	switch msg.kind {
	case yieldParked:
		// The process registered its next wake condition before parking.
	case yieldDone:
		msg.p.done = true
		delete(k.procs, msg.p.id)
	case yieldPanic:
		msg.p.done = true
		delete(k.procs, msg.p.id)
		panic(fmt.Sprintf("sim: process %q panicked: %v", msg.p.name, msg.pval))
	}
}

// killSentinel is the panic value that unwinds a process being killed by
// Shutdown; the spawn wrapper recognizes it and reports a normal exit.
type killSentinel struct{}

// Shutdown force-terminates every process still parked, releasing their
// goroutines, and discards all pending events. It must only be called
// outside Run — after it returned, or after recovering the panic it
// re-raised. The kernel must not be used afterwards.
//
// Without Shutdown every parked server loop pins its goroutine for the
// life of the Go process; a model checker executing thousands of short
// simulations per second needs them reclaimed.
func (k *Kernel) Shutdown() {
	k.events = nil
	for len(k.procs) > 0 {
		ids := make([]int, 0, len(k.procs))
		for id := range k.procs {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if p, ok := k.procs[id]; ok && !p.done {
				k.kill(p)
			}
		}
	}
	k.events = nil // deferred cleanups may have scheduled wakes
}

// kill resumes one parked process with its killed flag set, making park
// unwind it via killSentinel, and drains its yields until it exits.
// Deferred cleanups run; one that parks again is prodded again.
func (k *Kernel) kill(p *proc) {
	p.killed = true
	for !p.done {
		p.epoch++
		p.wakePending = false
		p.resume <- WakeSignal // vet:ignore chan-send — kernel⇄process rendezvous
		msg := <-k.yield
		switch msg.kind {
		case yieldParked:
			// A deferred cleanup parked again; keep prodding.
		case yieldDone, yieldPanic:
			// Panics during teardown are swallowed: the simulation's
			// outcome was decided before Shutdown was called.
			msg.p.done = true
			delete(k.procs, msg.p.id)
		}
	}
}

// Stalled returns the names of processes that are still parked. After Run
// returns, a non-empty result that includes non-daemon workers usually
// indicates a deadlock in the simulated system.
func (k *Kernel) Stalled() []string {
	names := make([]string, 0, len(k.procs))
	for _, p := range k.procs {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return names
}

// proc is the kernel-internal process state.
type proc struct {
	k           *Kernel
	id          int
	name        string
	resume      chan WakeReason
	epoch       uint64
	wakePending bool
	done        bool
	killed      bool // set by Shutdown; park unwinds via killSentinel
}

// Proc is the handle a process function uses to interact with virtual
// time. It is valid only inside the process's own goroutine.
type Proc struct {
	p *proc
}

// Name returns the process name given at Spawn.
func (pp *Proc) Name() string { return pp.p.name }

// Kernel returns the kernel this process runs on.
func (pp *Proc) Kernel() *Kernel { return pp.p.k }

// Now returns the current virtual time.
func (pp *Proc) Now() Time { return pp.p.k.now }

// park suspends the process until it is woken. The caller must have
// arranged a wake (an event or membership in a waiter list) first.
func (pp *Proc) park() WakeReason {
	p := pp.p
	if p.killed {
		panic(killSentinel{})
	}
	p.k.yield <- yieldMsg{kind: yieldParked, p: p} // vet:ignore chan-send — kernel⇄process rendezvous
	r := <-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	return r
}

// Exit terminates the calling process immediately as a normal
// completion: deferred functions run and the kernel records a clean
// exit, exactly as if the process function had returned. It is how
// simulated crash-stop failures unwind a dead host's threads — the
// process simply ceases at its next interaction with the machine.
func (pp *Proc) Exit() {
	panic(killSentinel{})
}

// Choose resolves an explicit n-way decision through the installed
// Chooser, making application-level nondeterminism — fault-injection
// points, for example — part of the recorded schedule that the model
// checker explores and replays. Without a chooser the kernel's seeded
// random source decides, so plain runs stay deterministic per seed.
func (k *Kernel) Choose(n int, label string) int {
	if n <= 1 {
		return 0
	}
	if k.chooser != nil {
		idx := k.chooser.Choose(k.now, n, func(i int) string {
			return fmt.Sprintf("%s#%d", label, i)
		})
		if idx < 0 || idx >= n {
			idx = 0
		}
		return idx
	}
	return k.rng.Intn(n)
}

// wakeToken identifies one parked episode of a process, so that stale
// wakes (after the process has already resumed) are ignored.
type wakeToken struct {
	p     *proc
	epoch uint64
}

// token captures the current park epoch; a subsequent wake with this
// token only fires if the process has not resumed in between.
func (pp *Proc) token() wakeToken { return wakeToken{p: pp.p, epoch: pp.p.epoch} }

// wake schedules a resume for the token's park episode at the current
// time. Duplicate wakes for the same episode are ignored.
func (k *Kernel) wake(t wakeToken, reason WakeReason) {
	p := t.p
	if p.done || p.epoch != t.epoch || p.wakePending {
		return
	}
	p.wakePending = true
	k.scheduleWake(k.now, p, t.epoch, reason)
}

// Sleep suspends the process for virtual duration d.
func (pp *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	k := pp.p.k
	t := pp.token()
	pp.p.wakePending = true
	k.scheduleWake(k.now.Add(d), t.p, t.epoch, WakeTimeout)
	pp.park()
}

// Yield reschedules the process at the current time, letting other
// processes scheduled for this instant run first.
func (pp *Proc) Yield() {
	k := pp.p.k
	t := pp.token()
	pp.p.wakePending = true
	k.scheduleWake(k.now, t.p, t.epoch, WakeSignal)
	pp.park()
}
