package sim

// This file provides the synchronization primitives used by simulated
// code: counting semaphores, FIFO message queues, counted resources, and
// one-shot events. All of them operate purely in virtual time.

// Waiter is an opaque handle to one parked episode of a process. External
// code (for example a protocol engine matching responses to requests)
// can capture a Waiter before parking and wake it later.
type Waiter struct {
	t wakeToken
}

// PrepareWait captures a wake handle for the process's next Park. The
// returned Waiter may be woken at most once, from any simulation context.
func (pp *Proc) PrepareWait() Waiter { return Waiter{t: pp.token()} }

// Park suspends the process until the Waiter captured by PrepareWait is
// woken. It returns the reason supplied to Wake.
func (pp *Proc) Park() WakeReason { return pp.park() }

// ParkTimeout suspends the process until its Waiter is woken or d
// elapses, whichever is first. It returns WakeTimeout on expiry.
func (pp *Proc) ParkTimeout(d Duration) WakeReason {
	k := pp.p.k
	t := pp.token()
	k.scheduleWake(k.now.Add(d), t.p, t.epoch, WakeTimeout)
	return pp.park()
}

// Wake resumes the parked episode identified by w. Waking an episode that
// already resumed (or was woken before) has no effect.
func (k *Kernel) Wake(w Waiter, reason WakeReason) { k.wake(w.t, reason) }

// popWaiter removes and returns the oldest waiter, shifting the rest
// down in place. Reslicing the head away (ws = ws[1:]) would shrink the
// backing array one slot per wakeup until every park re-allocates it;
// hot paths (frame delivery at 1024 hosts) park and wake every cycle,
// so the dequeue must keep the array.
func popWaiter(ws *[]wakeToken) wakeToken {
	w := *ws
	t := w[0]
	last := len(w) - 1
	copy(w, w[1:])
	w[last] = wakeToken{}
	*ws = w[:last]
	return t
}

// Semaphore is a counting semaphore with FIFO wakeup order, providing the
// P and V operations of the paper's distributed synchronization facility
// (this is the local, single-kernel building block).
type Semaphore struct {
	k       *Kernel
	count   int
	waiters []wakeToken
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, initial int) *Semaphore {
	return &Semaphore{k: k, count: initial}
}

// Count returns the current token count (not counting parked waiters).
func (s *Semaphore) Count() int { return s.count }

// P acquires one token, blocking the calling process until available.
func (s *Semaphore) P(p *Proc) {
	if s.count > 0 {
		s.count--
		return
	}
	s.waiters = append(s.waiters, p.token())
	p.park()
}

// TryP acquires one token without blocking; it reports success.
func (s *Semaphore) TryP() bool {
	if s.count > 0 {
		s.count--
		return true
	}
	return false
}

// V releases one token, waking the longest-parked waiter if any. The
// token is handed directly to the woken process.
func (s *Semaphore) V() {
	for len(s.waiters) > 0 {
		t := popWaiter(&s.waiters)
		if t.p.done || t.p.epoch != t.epoch {
			continue // waiter vanished (timeout or kill); drop it
		}
		s.k.wake(t, WakeSignal)
		return
	}
	s.count++
}

// Queue is an unbounded FIFO of arbitrary items with blocking Get. It is
// the delivery surface for simulated network interfaces.
type Queue struct {
	k       *Kernel
	items   []any
	waiters []wakeToken
}

// NewQueue creates an empty queue.
func NewQueue(k *Kernel) *Queue { return &Queue{k: k} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends an item and wakes one waiting getter. It never blocks and
// is safe to call from kernel callbacks (for example delivery events).
func (q *Queue) Put(v any) {
	q.items = append(q.items, v)
	for len(q.waiters) > 0 {
		t := popWaiter(&q.waiters)
		if t.p.done || t.p.epoch != t.epoch {
			continue
		}
		q.k.wake(t, WakeSignal)
		return
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty.
func (q *Queue) Get(p *Proc) any {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p.token())
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// GetTimeout is Get with a deadline; ok is false if d elapsed first.
func (q *Queue) GetTimeout(p *Proc, d Duration) (v any, ok bool) {
	deadline := p.Now().Add(d)
	for len(q.items) == 0 {
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			return nil, false
		}
		q.waiters = append(q.waiters, p.token())
		if p.ParkTimeout(remaining) == WakeTimeout {
			q.removeWaiter(p)
			if len(q.items) == 0 {
				return nil, false
			}
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

func (q *Queue) removeWaiter(p *Proc) {
	for i, t := range q.waiters {
		if t.p == p.p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// TypedQueue is Queue for a concrete element type — the delivery
// surface for hot paths (netsim frames) where storing items as any
// would box every element. It also reuses its buffer as a sliding
// window instead of reslicing it away, so steady-state Put/Get cycles
// allocate nothing.
type TypedQueue[T any] struct {
	k       *Kernel
	items   []T
	head    int
	waiters []wakeToken
}

// NewTypedQueue creates an empty typed queue.
func NewTypedQueue[T any](k *Kernel) *TypedQueue[T] { return &TypedQueue[T]{k: k} }

// Len returns the number of queued items.
func (q *TypedQueue[T]) Len() int { return len(q.items) - q.head }

// Put appends an item and wakes one waiting getter. It never blocks and
// is safe to call from kernel callbacks (for example delivery events).
func (q *TypedQueue[T]) Put(v T) {
	if q.head == len(q.items) && q.head > 0 {
		q.items = q.items[:0]
		q.head = 0
	}
	q.items = append(q.items, v)
	for len(q.waiters) > 0 {
		t := popWaiter(&q.waiters)
		if t.p.done || t.p.epoch != t.epoch {
			continue
		}
		q.k.wake(t, WakeSignal)
		return
	}
}

// Get removes and returns the oldest item, blocking while the queue is
// empty.
func (q *TypedQueue[T]) Get(p *Proc) T {
	for q.Len() == 0 {
		q.waiters = append(q.waiters, p.token())
		p.park()
	}
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	return v
}

// GetTimeout is Get with a deadline; ok is false if d elapsed first.
func (q *TypedQueue[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := p.Now().Add(d)
	for q.Len() == 0 {
		remaining := deadline.Sub(p.Now())
		if remaining <= 0 {
			var zero T
			return zero, false
		}
		q.waiters = append(q.waiters, p.token())
		if p.ParkTimeout(remaining) == WakeTimeout {
			q.removeWaiter(p)
			if q.Len() == 0 {
				var zero T
				return zero, false
			}
		}
	}
	v = q.items[q.head]
	var zero T
	q.items[q.head] = zero
	q.head++
	return v, true
}

func (q *TypedQueue[T]) removeWaiter(p *Proc) {
	for i, t := range q.waiters {
		if t.p == p.p {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// Resource models a pool of identical servers (CPUs, a network cable)
// acquired for timed use. Use is the common pattern: acquire, hold for a
// virtual duration, release.
type Resource struct {
	sem *Semaphore
	cap int
}

// NewResource creates a resource with the given capacity.
func NewResource(k *Kernel, capacity int) *Resource {
	return &Resource{sem: NewSemaphore(k, capacity), cap: capacity}
}

// Capacity returns the total number of servers.
func (r *Resource) Capacity() int { return r.cap }

// InUse returns how many servers are currently held.
func (r *Resource) InUse() int { return r.cap - r.sem.Count() }

// Acquire takes one server, blocking until available.
func (r *Resource) Acquire(p *Proc) { r.sem.P(p) }

// Release returns one server.
func (r *Resource) Release() { r.sem.V() }

// Use acquires a server, holds it for d, and releases it.
func (r *Resource) Use(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Event is a broadcast flag: processes wait until it is set; setting it
// wakes all current and future waiters until Reset.
type Event struct {
	k       *Kernel
	set     bool
	waiters []wakeToken
}

// NewEvent creates an unset event.
func NewEvent(k *Kernel) *Event { return &Event{k: k} }

// IsSet reports whether the event is currently set.
func (e *Event) IsSet() bool { return e.set }

// Set sets the event and wakes every waiter.
func (e *Event) Set() {
	if e.set {
		return
	}
	e.set = true
	for _, t := range e.waiters {
		e.k.wake(t, WakeSignal)
	}
	e.waiters = nil
}

// Reset clears the event so subsequent Wait calls block again.
func (e *Event) Reset() { e.set = false }

// Wait blocks the process until the event is set.
func (e *Event) Wait(p *Proc) {
	for !e.set {
		e.waiters = append(e.waiters, p.token())
		p.park()
	}
}

// Barrier blocks processes until n of them have arrived, then releases
// all of them and resets for reuse.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	waiters []wakeToken
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(k *Kernel, n int) *Barrier { return &Barrier{k: k, n: n} }

// Arrive blocks until n processes (including this one) have arrived.
func (b *Barrier) Arrive(p *Proc) {
	b.arrived++
	if b.arrived >= b.n {
		b.arrived = 0
		for _, t := range b.waiters {
			b.k.wake(t, WakeSignal)
		}
		b.waiters = nil
		return
	}
	b.waiters = append(b.waiters, p.token())
	p.park()
}
