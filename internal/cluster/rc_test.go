package cluster

import (
	"testing"
	"time"

	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sctrace"
	"repro/internal/sim"
	"repro/internal/threads"
)

// rcConfig is a mixed Sun/Firefly cluster under the lazy-release policy
// with trace recording and invariant checks on.
func rcConfig(n int) (Config, *sctrace.Recorder) {
	cfg := sunAndFireflies(n)
	cfg.Policy = dsm.PolicyRC
	cfg.InvariantChecks = true
	rec := sctrace.NewRecorder()
	cfg.SCTrace = rec
	return cfg, rec
}

// TestRCLockedCounter runs the canonical acquire/read/increment/release
// loop across architectures under PolicyRC: the lock's payload must
// carry each interval to the next holder (through a cross-architecture
// diff conversion), the final count must be exact, and the recorded
// trace must satisfy the happens-before oracle.
func TestRCLockedCounter(t *testing.T) {
	cfg, rec := rcConfig(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		semLock = 1
		semDone = 2
		rounds  = 4
	)
	c.DefineSemaphore(semLock, 0, 1)
	c.DefineSemaphore(semDone, 0, 0)

	var ctr uint32
	c.Funcs.MustRegister(1, func(th *threads.Thread, args []uint32) {
		h := c.Hosts[th.Host()]
		for r := 0; r < rounds; r++ {
			h.Sync.P(th.P, semLock)
			v := h.DSM.ReadInt32(th.P, dsm.Addr(ctr))
			th.Compute(50 * time.Microsecond)
			h.DSM.WriteInt32(th.P, dsm.Addr(ctr), v+1)
			h.Sync.V(th.P, semLock)
		}
		h.Sync.V(th.P, semDone)
	})

	var got int32
	c.Run(0, func(p *sim.Proc, h *Host) {
		a, err := h.DSM.Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		ctr = uint32(a)
		for w := 1; w <= 2; w++ {
			if _, err := h.Threads.Create(p, HostID(w), 1, nil); err != nil {
				t.Error(err)
				return
			}
		}
		for w := 0; w < 2; w++ {
			h.Sync.P(p, semDone)
		}
		h.Sync.P(p, semLock)
		got = h.DSM.ReadInt32(p, a)
		h.Sync.V(p, semLock)
	})
	if want := int32(2 * rounds); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if v := c.Hosts[0].DSM.TraceCheck(rec.Ops()); v != nil {
		t.Fatalf("RC oracle violations:\n%s", sctrace.Report(v, 10))
	}
	s := c.TotalDSMStats()
	if s.RCTwins == 0 || s.RCDiffsSent == 0 || s.RCDiffsApplied == 0 {
		t.Fatalf("RC machinery idle: twins=%d sent=%d applied=%d", s.RCTwins, s.RCDiffsSent, s.RCDiffsApplied)
	}
	if s.InvalidationsSent != 0 || s.Upgrades != 0 {
		t.Fatalf("write-invalidate traffic under RC: inv=%d upg=%d", s.InvalidationsSent, s.Upgrades)
	}
}

// TestRCOracleKillsMutations pins that the happens-before checker (not
// the final assertion: a diff lost between intermediate intervals can
// still yield the right final count) detects both injected RC bugs.
func TestRCOracleKillsMutations(t *testing.T) {
	run := func(mut dsm.Mutation) []sctrace.Violation {
		cfg, rec := rcConfig(2)
		cfg.InvariantChecks = false // structural checks only; the oracle is under test
		cfg.Mutation = mut
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const (
			semLock = 1
			semDone = 2
		)
		c.DefineSemaphore(semLock, 0, 1)
		c.DefineSemaphore(semDone, 0, 0)
		var addr uint32
		c.Funcs.MustRegister(1, func(th *threads.Thread, args []uint32) {
			h := c.Hosts[th.Host()]
			for r := 0; r < 3; r++ {
				h.Sync.P(th.P, semLock)
				v := h.DSM.ReadInt32(th.P, dsm.Addr(addr))
				h.DSM.WriteInt32(th.P, dsm.Addr(addr), v+1)
				h.Sync.V(th.P, semLock)
			}
			h.Sync.V(th.P, semDone)
		})
		c.Run(0, func(p *sim.Proc, h *Host) {
			a, err := h.DSM.Alloc(p, conv.Int32, 1)
			if err != nil {
				t.Error(err)
				return
			}
			addr = uint32(a)
			for w := 1; w <= 2; w++ {
				if _, err := h.Threads.Create(p, HostID(w), 1, nil); err != nil {
					t.Error(err)
					return
				}
			}
			h.Sync.P(p, semDone)
			h.Sync.P(p, semDone)
		})
		return c.Hosts[0].DSM.TraceCheck(rec.Ops())
	}
	if v := run(dsm.MutNone); v != nil {
		t.Fatalf("correct protocol flagged:\n%s", sctrace.Report(v, 10))
	}
	if v := run(dsm.MutLostDiff); len(v) == 0 {
		t.Fatal("lost-diff mutation survived the RC oracle")
	}

	// stale-twin-merge only fires when a host applies a pulled diff
	// while its own twin is live — an open write interval at acquire
	// time — which the locked loop above never produces: its writes all
	// happen inside the critical section, after the pull. Stage it
	// explicitly: host 2 opens an interval on the page, then acquires
	// host 1's released interval for the page's other element.
	runTwin := func(mut dsm.Mutation) []sctrace.Violation {
		cfg, rec := rcConfig(2)
		cfg.InvariantChecks = false
		cfg.Mutation = mut
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const (
			semReady = 1
			semA     = 2
			semDone  = 3
		)
		c.DefineSemaphore(semReady, 0, 0)
		c.DefineSemaphore(semA, 0, 0)
		c.DefineSemaphore(semDone, 0, 0)
		var addr uint32
		c.Funcs.MustRegister(1, func(th *threads.Thread, args []uint32) { // releaser
			h := c.Hosts[th.Host()]
			h.Sync.P(th.P, semReady)
			h.DSM.WriteInt32(th.P, dsm.Addr(addr)+4, 7)
			h.Sync.V(th.P, semA)
			h.Sync.V(th.P, semDone)
		})
		c.Funcs.MustRegister(2, func(th *threads.Thread, args []uint32) { // acquirer
			h := c.Hosts[th.Host()]
			h.DSM.ReadInt32(th.P, dsm.Addr(addr)) // fault the page in before the releaser pushes
			h.Sync.V(th.P, semReady)
			h.DSM.WriteInt32(th.P, dsm.Addr(addr), 5) // open an interval: twin live
			h.Sync.P(th.P, semA)                      // pull the released interval with the twin live
			h.DSM.ReadInt32(th.P, dsm.Addr(addr)+4)   // must be 7; the oracle judges
			h.Sync.V(th.P, semDone)
		})
		c.Run(0, func(p *sim.Proc, h *Host) {
			a, err := h.DSM.Alloc(p, conv.Int32, 2)
			if err != nil {
				t.Error(err)
				return
			}
			addr = uint32(a)
			for w := 1; w <= 2; w++ {
				if _, err := h.Threads.Create(p, HostID(w), threads.FuncID(w), nil); err != nil {
					t.Error(err)
					return
				}
			}
			h.Sync.P(p, semDone)
			h.Sync.P(p, semDone)
		})
		return c.Hosts[0].DSM.TraceCheck(rec.Ops())
	}
	if v := runTwin(dsm.MutNone); v != nil {
		t.Fatalf("correct protocol flagged on the twin workload:\n%s", sctrace.Report(v, 10))
	}
	if v := runTwin(dsm.MutStaleTwinMerge); len(v) == 0 {
		t.Fatal("stale-twin-merge mutation survived the RC oracle")
	}
}

// TestRCSCEnginesBitIdentical pins the refactor's no-regression promise
// for one representative SC policy: with no model attached the sync
// service carries no payloads, so an MRSW run's virtual time and
// message mix must not change because the model layer exists. (The
// frozen benchmark JSONs pin the other engines at full scale.)
func TestRCSCEnginesBitIdentical(t *testing.T) {
	elapsed := func() time.Duration {
		cfg := sunAndFireflies(2)
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const semDone = 1
		c.DefineSemaphore(semDone, 0, 0)
		var addr uint32
		c.Funcs.MustRegister(1, func(th *threads.Thread, args []uint32) {
			h := c.Hosts[th.Host()]
			v := h.DSM.ReadInt32(th.P, dsm.Addr(addr))
			h.DSM.WriteInt32(th.P, dsm.Addr(addr), v+1)
			h.Sync.V(th.P, semDone)
		})
		return c.Run(0, func(p *sim.Proc, h *Host) {
			a, err := h.DSM.Alloc(p, conv.Int32, 1)
			if err != nil {
				t.Error(err)
				return
			}
			addr = uint32(a)
			for w := 1; w <= 2; w++ {
				if _, err := h.Threads.Create(p, HostID(w), 1, nil); err != nil {
					t.Error(err)
					return
				}
			}
			h.Sync.P(p, semDone)
			h.Sync.P(p, semDone)
		})
	}
	if a, b := elapsed(), elapsed(); a != b {
		t.Fatalf("MRSW runs diverged: %v vs %v", a, b)
	}
}
