// Package cluster assembles the simulated heterogeneous cluster: hosts
// (each with CPUs, a network interface, a remote-operation endpoint, a
// DSM module, a thread manager and a synchronization service) attached
// to one shared Ethernet, all driven by one deterministic simulation
// kernel — the Mermaid system of Figure 1 of the paper, instantiated per
// host.
package cluster

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/dsync"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/remoteop"
	"repro/internal/sctrace"
	"repro/internal/sim"
	"repro/internal/threads"
)

// HostID aliases the network host identifier.
type HostID = remoteop.HostID

// HostSpec describes one host to build.
type HostSpec struct {
	// Kind is the machine type (Sun or Firefly).
	Kind arch.Kind
	// CPUs is the processor count (1 for a Sun; 1–7 for a Firefly).
	// Zero means 1.
	CPUs int
}

// Config describes a cluster.
type Config struct {
	// Hosts lists the machines; host 0 is also the allocation manager.
	Hosts []HostSpec
	// PageSize selects the DSM page size algorithm: 8192 implements the
	// largest page size algorithm, 1024 the smallest (§2.4). Zero means
	// 8192.
	PageSize int
	// SpaceSize is the shared address space size in bytes; zero means
	// 4 MiB.
	SpaceSize int
	// Registry is the conversion-routine table; nil builds a fresh one
	// with the basic types.
	Registry *conv.Registry
	// Params overrides the calibrated cost model; nil uses Default.
	Params *model.Params
	// Seed drives all simulation randomness.
	Seed int64
	// DisableConversion turns data conversion off (ablation).
	DisableConversion bool
	// PreferSameKindSource enables the conversion-avoiding read-source
	// optimization (§2.3).
	PreferSameKindSource bool
	// CentralManager places every page's manager on host 0 (ablation of
	// the fixed distributed manager).
	CentralManager bool
	// Directory selects the manager-placement scheme (fixed distributed,
	// centralized, or Li & Hudak's dynamic distributed manager). The
	// zero value is the fixed scheme; CentralManager remains the compat
	// shorthand for dsm.DirCentral.
	Directory dsm.Directory
	// Policy selects the coherence algorithm (default: MRSW).
	Policy dsm.Policy
	// UnicastInvalidate disables broadcast multicast invalidation
	// (ablation).
	UnicastInvalidate bool
	// DropRate injects frame loss for fault-tolerance experiments.
	DropRate float64
	// Topology selects the network shape: nil is the paper's single
	// shared bus; a multi-segment topology places hosts on switched
	// segments (see netsim.Topology). A one-segment topology is
	// bit-identical to the bus.
	Topology *netsim.Topology
	// FaultPlan scripts deterministic faults (loss bursts, corruption,
	// duplication, partitions, host crashes) against virtual time. Crash
	// events are applied by the cluster: the NIC goes down and every
	// module of the host stops (crash-stop; no restart).
	FaultPlan *netsim.FaultPlan
	// FailureDetection runs a failure detector on every host (virtual-
	// time heartbeats plus call-timeout escalation) and enables
	// copyset-based page recovery: crashes then surface as typed errors
	// (dsm.ErrHostDown, dsm.ErrPageLost) instead of hangs. Off by
	// default — no-fault runs spawn no detector processes and stay
	// bit-identical to earlier builds.
	FailureDetection bool
	// Trace, when set, receives DSM protocol events from every host.
	Trace func(dsm.TraceEvent)
	// InvariantChecks attaches a dsm.InvariantChecker across all hosts:
	// every protocol transition is audited against Li's global
	// invariants (unique writer, copyset accuracy, owner agreement) and
	// a violation panics. The checker is returned via Cluster.Check.
	InvariantChecks bool
	// SCTrace, when set, records every DSM access from every host for
	// offline sequential-consistency checking (internal/sctrace).
	SCTrace *sctrace.Recorder
	// Mutation injects one deliberate DSM protocol bug cluster-wide —
	// the model checker's mutation-kill harness (see dsm/mutation.go).
	Mutation dsm.Mutation
}

// Host bundles one machine's modules.
type Host struct {
	// ID is the host's network identifier.
	ID HostID
	// Arch is the host's architecture.
	Arch arch.Arch
	// EP is the remote-operation endpoint.
	EP *remoteop.Endpoint
	// DSM is the shared-memory module.
	DSM *dsm.Module
	// Threads is the thread management module.
	Threads *threads.Manager
	// Sync is the distributed synchronization service.
	Sync *dsync.Service
	// Detect is the failure detector (nil unless Config.FailureDetection).
	Detect *dsm.Detector
}

// Cluster is the assembled simulated system.
type Cluster struct {
	// K is the simulation kernel; Now(), RunFor() and friends live here.
	K *sim.Kernel
	// Net is the shared Ethernet segment.
	Net *netsim.Network
	// Hosts are the machines, indexed by HostID.
	Hosts []*Host
	// Funcs is the cluster-wide thread entry-point registry.
	Funcs *threads.Registry
	// Params is the active cost model.
	Params *model.Params
	// Registry is the active conversion table.
	Registry *conv.Registry
	// Check is the attached protocol invariant checker (nil unless
	// Config.InvariantChecks was set).
	Check *dsm.InvariantChecker
}

// New builds a cluster. Call RegisterFunc (via Funcs) and define
// synchronization primitives before Run.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("cluster: no hosts")
	}
	params := model.Default()
	if cfg.Params != nil {
		params = *cfg.Params
	}
	pageSize := cfg.PageSize
	if pageSize == 0 {
		pageSize = 8192
	}
	spaceSize := cfg.SpaceSize
	if spaceSize == 0 {
		spaceSize = 4 << 20
	}
	registry := cfg.Registry
	if registry == nil {
		registry = conv.NewRegistry()
	}

	k := sim.NewKernel(cfg.Seed)
	net := netsim.NewWithTopology(k, &params, cfg.Topology)
	net.DropRate = cfg.DropRate
	if !cfg.FaultPlan.Empty() {
		net.SetFaultPlan(cfg.FaultPlan)
	}
	funcs := threads.NewRegistry()

	dsmCfg := &dsm.Config{
		PageSize:             pageSize,
		SpaceSize:            spaceSize,
		Registry:             registry,
		Params:               &params,
		ConversionEnabled:    !cfg.DisableConversion,
		PreferSameKindSource: cfg.PreferSameKindSource,
		CentralManager:       cfg.CentralManager,
		Directory:            cfg.Directory,
		Policy:               cfg.Policy,
		UnicastInvalidate:    cfg.UnicastInvalidate,
		Bases:                dsm.DefaultBases(),
		Trace:                cfg.Trace,
		SCRecorder:           cfg.SCTrace,
		Mutation:             cfg.Mutation,
	}

	archs := make([]arch.Arch, len(cfg.Hosts))
	for i, spec := range cfg.Hosts {
		a, err := arch.ByKind(spec.Kind)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", i, err)
		}
		archs[i] = a
	}

	c := &Cluster{K: k, Net: net, Funcs: funcs, Params: &params, Registry: registry}
	for i, spec := range cfg.Hosts {
		ifc, err := net.Attach(netsim.HostID(i))
		if err != nil {
			return nil, err
		}
		ep := remoteop.New(k, ifc, spec.Kind, &params)
		mod, err := dsm.New(k, ep, dsmCfg, archs)
		if err != nil {
			return nil, err
		}
		cpus := spec.CPUs
		if cpus == 0 {
			cpus = 1
		}
		tm, err := threads.New(k, ep, spec.Kind, cpus, &params, funcs)
		if err != nil {
			return nil, err
		}
		sync := dsync.New(k, ep, spec.Kind, &params)
		// The nil guard matters: AttachModel takes an interface, and a
		// typed nil would enable the payload path for the SC policies.
		if sm := mod.SyncModel(); sm != nil {
			sync.AttachModel(sm)
		}
		var det *dsm.Detector
		if cfg.FailureDetection {
			det = dsm.NewDetector(k, ep, &params, len(cfg.Hosts))
			mod.AttachLiveness(det)
		}
		ep.Start()
		if det != nil {
			det.Start()
		}
		c.Hosts = append(c.Hosts, &Host{
			ID:      netsim.HostID(i),
			Arch:    archs[i],
			EP:      ep,
			DSM:     mod,
			Threads: tm,
			Sync:    sync,
			Detect:  det,
		})
	}
	// Scripted crashes are applied by the cluster at their virtual times:
	// the fabric downs the NIC, the modules freeze.
	if cfg.FaultPlan != nil {
		for _, ce := range cfg.FaultPlan.Crashes {
			h := HostID(ce.Host)
			k.AfterNamed(fmt.Sprintf("crash:h%d", h), sim.Duration(ce.At.Sub(k.Now())), func() {
				c.CrashHost(h)
			})
		}
	}
	// Wire thread managers together so threads can migrate (§2.2).
	peers := make([]*threads.Manager, len(c.Hosts))
	for i, h := range c.Hosts {
		peers[i] = h.Threads
	}
	for _, h := range c.Hosts {
		h.Threads.SetPeers(peers)
	}
	if cfg.InvariantChecks {
		mods := make([]*dsm.Module, len(c.Hosts))
		for i, h := range c.Hosts {
			mods[i] = h.DSM
		}
		c.Check = dsm.AttachChecker(mods...)
	}
	return c, nil
}

// DefineSemaphore declares a distributed semaphore on every host.
func (c *Cluster) DefineSemaphore(id uint32, manager HostID, initial int) {
	for _, h := range c.Hosts {
		h.Sync.DefineSemaphore(id, manager, initial)
	}
}

// DefineEvent declares a distributed event on every host.
func (c *Cluster) DefineEvent(id uint32, manager HostID) {
	for _, h := range c.Hosts {
		h.Sync.DefineEvent(id, manager)
	}
}

// DefineBarrier declares a distributed barrier on every host.
func (c *Cluster) DefineBarrier(id uint32, manager HostID, n int) {
	for _, h := range c.Hosts {
		h.Sync.DefineBarrier(id, manager, n)
	}
}

// CrashHost fails host h immediately (crash-stop): its NIC goes down,
// in-flight frames to and from it vanish, and every module freezes —
// handler processes unwind at their next activation and never answer
// again. There is no restart. Scripted FaultPlan crashes call this; the
// chaos harness and tests also call it directly.
func (c *Cluster) CrashHost(h HostID) {
	host := c.Hosts[h]
	c.Net.SetHostDown(netsim.HostID(h), true)
	host.EP.Crash()
	host.DSM.Crash()
	host.Sync.Crash()
	if host.Detect != nil {
		host.Detect.Crash()
	}
}

// Run executes main as a simulated process on host mainHost and drives
// the simulation until it finishes, returning the virtual time it took.
// Background activity (server loops, persistent retransmissions) does
// not prolong the run.
func (c *Cluster) Run(mainHost HostID, main func(p *sim.Proc, h *Host)) sim.Duration {
	start := c.K.Now()
	done := false
	c.K.Spawn("main", func(p *sim.Proc) {
		main(p, c.Hosts[mainHost])
		done = true
	})
	c.K.RunUntil(func() bool { return done })
	if !done {
		panic(fmt.Sprintf("cluster: deadlock — main never finished; stalled: %v", c.K.Stalled()))
	}
	return c.K.Now().Sub(start)
}

// TotalDSMStats sums DSM statistics across hosts.
func (c *Cluster) TotalDSMStats() dsm.Stats {
	var total dsm.Stats
	for _, h := range c.Hosts {
		s := h.DSM.Stats()
		total.ReadFaults += s.ReadFaults
		total.WriteFaults += s.WriteFaults
		total.PagesFetched += s.PagesFetched
		total.PagesServed += s.PagesServed
		total.Upgrades += s.Upgrades
		total.InvalidationsSent += s.InvalidationsSent
		total.InvalidationsReceived += s.InvalidationsReceived
		total.Conversions += s.Conversions
		total.ConvReport.Add(s.ConvReport)
		total.BytesFetched += s.BytesFetched
		total.RemoteReads += s.RemoteReads
		total.RemoteWrites += s.RemoteWrites
		total.PagesRecovered += s.PagesRecovered
		total.PagesLost += s.PagesLost
		total.QuorumReads += s.QuorumReads
		total.QuorumWrites += s.QuorumWrites
		total.QuorumWriteBacks += s.QuorumWriteBacks
		total.QuorumRetries += s.QuorumRetries
		total.RCTwins += s.RCTwins
		total.RCDiffsSent += s.RCDiffsSent
		total.RCDiffBytes += s.RCDiffBytes
		total.RCDiffsApplied += s.RCDiffsApplied
		total.RCPulls += s.RCPulls
		total.RCDiffsRetired += s.RCDiffsRetired
		total.Forwards += s.Forwards
		total.ChainServes += s.ChainServes
		total.ChainHops += s.ChainHops
		if s.ChainMax > total.ChainMax {
			total.ChainMax = s.ChainMax
		}
		if s.Messages != nil {
			if total.Messages == nil {
				total.Messages = make(map[proto.Kind]int, len(s.Messages))
			}
			for k, n := range s.Messages {
				total.Messages[k] += n
			}
		}
	}
	return total
}
