package cluster

import (
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sim"
	"repro/internal/threads"
)

func sunAndFireflies(n int) Config {
	hosts := []HostSpec{{Kind: arch.Sun}}
	for i := 0; i < n; i++ {
		hosts = append(hosts, HostSpec{Kind: arch.Firefly, CPUs: 4})
	}
	return Config{Hosts: hosts, Seed: 1}
}

func TestEmptyConfigRejected(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}

func TestEndToEndMasterSlaveSum(t *testing.T) {
	// Master on the Sun fills a shared array; slave threads on the
	// Fireflies sum disjoint halves into a result array; the master
	// collects. Exercises DSM, remote threads, and semaphores together.
	cfg := sunAndFireflies(2)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const semDone = 1
	c.DefineSemaphore(semDone, 0, 0)

	const n = 1000
	var dataAddr, outAddr uint32
	c.Funcs.MustRegister(1, func(th *threads.Thread, args []uint32) {
		lo, hi, slot := int(args[0]), int(args[1]), int(args[2])
		buf := make([]int32, hi-lo)
		h := c.Hosts[th.Host()]
		h.DSM.ReadInt32s(th.P, dsm.Addr(dataAddr)+dsm.Addr(4*lo), buf)
		var sum int32
		for _, v := range buf {
			sum += v
		}
		th.Compute(time.Duration(hi-lo) * time.Microsecond)
		h.DSM.WriteInt32s(th.P, dsm.Addr(outAddr)+dsm.Addr(4*slot), []int32{sum})
		h.Sync.V(th.P, semDone)
	})

	elapsed := c.Run(0, func(p *sim.Proc, h *Host) {
		a, err := h.DSM.Alloc(p, conv.Int32, n)
		if err != nil {
			t.Error(err)
			return
		}
		out, err := h.DSM.Alloc(p, conv.Int32, 2)
		if err != nil {
			t.Error(err)
			return
		}
		dataAddr, outAddr = uint32(a), uint32(out)
		vals := make([]int32, n)
		var want int32
		for i := range vals {
			vals[i] = int32(i * 3)
			want += vals[i]
		}
		h.DSM.WriteInt32s(p, a, vals)

		if _, err := h.Threads.Create(p, 1, 1, []uint32{0, n / 2, 0}); err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Threads.Create(p, 2, 1, []uint32{n / 2, n, 1}); err != nil {
			t.Error(err)
			return
		}
		h.Sync.P(p, semDone)
		h.Sync.P(p, semDone)

		var sums [2]int32
		h.DSM.ReadInt32s(p, out, sums[:])
		if sums[0]+sums[1] != want {
			t.Errorf("distributed sum %d, want %d", sums[0]+sums[1], want)
		}
	})
	if elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestSyncDefinitionsAndStats(t *testing.T) {
	c, err := New(sunAndFireflies(2))
	if err != nil {
		t.Fatal(err)
	}
	c.DefineEvent(5, 1)
	c.DefineBarrier(6, 0, 2)
	c.DefineSemaphore(7, 2, 0)
	released := 0
	c.Funcs.MustRegister(2, func(th *threads.Thread, args []uint32) {
		h := c.Hosts[th.Host()]
		h.Sync.EventWait(th.P, 5)
		h.Sync.BarrierArrive(th.P, 6)
		released++
		h.Sync.V(th.P, 7)
	})
	c.Run(0, func(p *sim.Proc, h *Host) {
		if _, err := h.Threads.Create(p, 1, 2, nil); err != nil {
			t.Error(err)
			return
		}
		if _, err := h.Threads.Create(p, 2, 2, nil); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(10 * time.Millisecond)
		h.Sync.EventSet(p, 5)
		h.Sync.P(p, 7)
		h.Sync.P(p, 7)

		// Touch DSM so aggregate stats are non-trivial.
		addr, err := h.DSM.Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		c.Hosts[1].DSM.WriteInt32s(p, addr, []int32{9})
	})
	if released != 2 {
		t.Fatalf("released %d, want 2", released)
	}
	total := c.TotalDSMStats()
	if total.PagesFetched == 0 || total.WriteFaults == 0 {
		t.Fatalf("aggregate stats empty: %+v", total)
	}
}

func TestRunPanicsOnDeadlock(t *testing.T) {
	c, err := New(sunAndFireflies(1))
	if err != nil {
		t.Fatal(err)
	}
	c.DefineSemaphore(9, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked main did not panic")
		}
	}()
	c.Run(0, func(p *sim.Proc, h *Host) {
		h.Sync.P(p, 9) // never granted; queue drains; Run must panic
	})
}
