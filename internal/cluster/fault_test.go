package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/netsim"
	"repro/internal/sctrace"
	"repro/internal/sim"
)

// detectionSettle is long enough for heartbeat silence to cross the
// death threshold (2×SuspicionTimeout = 2 s) and for the recovery sweep
// to finish.
const detectionSettle = 4 * time.Second

func TestOwnerCrashRecoversFromHeterogeneousCopyset(t *testing.T) {
	// The acceptance scenario: a Firefly owner dies mid-computation; the
	// page's Sun manager re-owns the page from the surviving Firefly
	// copyset member, converting the survivor's native representation,
	// and the computation completes with the dead host's writes intact.
	rec := sctrace.NewRecorder()
	c, err := New(Config{
		Hosts: []HostSpec{
			{Kind: arch.Sun},
			{Kind: arch.Firefly},
			{Kind: arch.Firefly},
		},
		Seed:             11,
		CentralManager:   true, // all pages managed by the Sun
		FailureDetection: true,
		InvariantChecks:  true,
		SCTrace:          rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	vals := []int32{101, -202, 303, -404}
	c.Run(0, func(p *sim.Proc, h *Host) {
		addr, err := h.DSM.Alloc(p, conv.Int32, 16)
		if err != nil {
			t.Error(err)
			return
		}
		// Firefly 1 writes (takes ownership), Firefly 2 reads (joins the
		// copyset) — the classic MRSW state before the crash.
		c.Hosts[1].DSM.WriteInt32s(p, addr, vals)
		got := make([]int32, len(vals))
		c.Hosts[2].DSM.ReadInt32s(p, addr, got)

		c.CrashHost(1)
		p.Sleep(detectionSettle)

		if !h.Detect.Dead(1) {
			t.Errorf("detector state for crashed host: %v, want dead", h.Detect.State(1))
		}
		// The manager's read must succeed via the recovered copy —
		// converted from host 2's Firefly representation to Sun.
		after := make([]int32, len(vals))
		if err := h.DSM.ReadInt32sE(p, addr, after); err != nil {
			t.Errorf("read after owner crash: %v", err)
			return
		}
		for i := range vals {
			if after[i] != vals[i] {
				t.Errorf("value %d after recovery = %d, want %d", i, after[i], vals[i])
			}
		}
		// The computation continues: the surviving Firefly writes, the
		// Sun reads the update.
		vals2 := []int32{7, 8, 9, 10}
		if err := c.Hosts[2].DSM.WriteInt32sE(p, addr, vals2); err != nil {
			t.Errorf("surviving host write after recovery: %v", err)
			return
		}
		if err := h.DSM.ReadInt32sE(p, addr, after); err != nil {
			t.Errorf("read of post-recovery write: %v", err)
			return
		}
		for i := range vals2 {
			if after[i] != vals2[i] {
				t.Errorf("post-recovery value %d = %d, want %d", i, after[i], vals2[i])
			}
		}
	})
	s := c.Hosts[0].DSM.Stats()
	if s.PagesRecovered == 0 {
		t.Fatalf("manager recovered no pages: %+v", s)
	}
	if s.PagesLost != 0 {
		t.Fatalf("pages declared lost despite a surviving copy: %+v", s)
	}
	if s.Conversions == 0 {
		t.Fatal("no conversion recorded: recovery from a Firefly survivor to a Sun manager must convert")
	}
	c.Check.CheckAll("teardown")
	if v := sctrace.Check(rec.Ops()); len(v) != 0 {
		t.Fatalf("SC trace violated across recovery:\n%s", sctrace.Report(v, 5))
	}
}

func TestSoleOwnerCrashLosesPage(t *testing.T) {
	// The dual scenario: the crashed owner held the only copy. The
	// manager, having polled every survivor, must declare the page lost;
	// accesses fail fast with ErrPageLost instead of wedging.
	c, err := New(Config{
		Hosts:            []HostSpec{{Kind: arch.Sun}, {Kind: arch.Firefly}},
		Seed:             12,
		CentralManager:   true,
		FailureDetection: true,
		InvariantChecks:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(0, func(p *sim.Proc, h *Host) {
		// Full-page allocations so the doomed page and the control page
		// are distinct 8 KB DSM pages.
		addr, err := h.DSM.Alloc(p, conv.Int32, 2048)
		if err != nil {
			t.Error(err)
			return
		}
		safe, err := h.DSM.Alloc(p, conv.Int32, 8)
		if err != nil {
			t.Error(err)
			return
		}
		// Host 1's write consumes every other copy: it becomes the sole
		// holder (owner with write access), then dies.
		c.Hosts[1].DSM.WriteInt32s(p, addr, []int32{1, 2, 3})
		c.CrashHost(1)
		p.Sleep(detectionSettle)

		var got [3]int32
		err = h.DSM.ReadInt32sE(p, addr, got[:])
		if !errors.Is(err, dsm.ErrPageLost) {
			t.Errorf("read of lost page: err = %v, want ErrPageLost", err)
		}
		// Failure is sticky and fast: a write fails the same way.
		if err := h.DSM.WriteInt32E(p, addr, 9); !errors.Is(err, dsm.ErrPageLost) {
			t.Errorf("write of lost page: err = %v, want ErrPageLost", err)
		}
		if !h.DSM.Lost(h.DSM.PageOf(addr)) {
			t.Error("Lost() false for a lost page")
		}
		// Isolation: pages the corpse never owned keep working.
		if err := h.DSM.WriteInt32E(p, safe, 42); err != nil {
			t.Errorf("unrelated page failed after crash: %v", err)
		}
	})
	if s := c.Hosts[0].DSM.Stats(); s.PagesLost == 0 {
		t.Fatalf("no page declared lost: %+v", s)
	}
	c.Check.CheckAll("teardown")
}

func TestManagerCrashIsolatesItsPageRange(t *testing.T) {
	// Fixed distributed managers: killing host 1 makes the pages it
	// manages unavailable (ErrHostDown) while pages managed by the
	// survivors keep working — unavailable but isolated.
	c, err := New(Config{
		Hosts:            []HostSpec{{Kind: arch.Sun}, {Kind: arch.Sun}, {Kind: arch.Sun}},
		Seed:             13,
		FailureDetection: true,
		InvariantChecks:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(0, func(p *sim.Proc, h *Host) {
		// Three full 8 KB pages: page i is managed by host i.
		var addrs [3]dsm.Addr
		for i := range addrs {
			a, err := h.DSM.Alloc(p, conv.Int32, 2048)
			if err != nil {
				t.Error(err)
				return
			}
			addrs[i] = a
			if got, want := int(h.DSM.Manager(h.DSM.PageOf(a))), i; got != want {
				t.Errorf("page of alloc %d managed by %d, want %d", i, got, want)
				return
			}
		}
		// Host 1 owns its own page before dying.
		c.Hosts[1].DSM.WriteInt32s(p, addrs[1], []int32{5})
		c.CrashHost(1)
		p.Sleep(detectionSettle)

		var v [1]int32
		if err := h.DSM.ReadInt32sE(p, addrs[1], v[:]); !errors.Is(err, dsm.ErrHostDown) {
			t.Errorf("access to the dead manager's range: err = %v, want ErrHostDown", err)
		}
		if err := h.DSM.WriteInt32E(p, addrs[0], 7); err != nil {
			t.Errorf("own range failed: %v", err)
		}
		if err := h.DSM.WriteInt32E(p, addrs[2], 8); err != nil {
			t.Errorf("surviving manager's range failed: %v", err)
		}
		if err := c.Hosts[2].DSM.ReadInt32sE(p, addrs[2], v[:]); err != nil || v[0] != 8 {
			t.Errorf("surviving range read = %d, %v; want 8, nil", v[0], err)
		}
	})
	c.Check.CheckAll("teardown")
}

func TestScriptedCrashPlanIsDeterministic(t *testing.T) {
	// The same seed and fault plan must produce bit-identical runs:
	// same virtual duration, same stats, same recovery outcome.
	run := func() string {
		c, err := New(Config{
			Hosts: []HostSpec{
				{Kind: arch.Sun},
				{Kind: arch.Firefly},
				{Kind: arch.Firefly},
			},
			Seed:             21,
			CentralManager:   true,
			FailureDetection: true,
			InvariantChecks:  true,
			FaultPlan: &netsim.FaultPlan{
				Loss:    []netsim.Burst{{Window: netsim.Window{From: sim.Time(50 * time.Millisecond), Until: sim.Time(150 * time.Millisecond)}, Rate: 0.3}},
				Crashes: []netsim.CrashEvent{{At: sim.Time(300 * time.Millisecond), Host: 2}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var tail string
		elapsed := c.Run(0, func(p *sim.Proc, h *Host) {
			addr, err := h.DSM.Alloc(p, conv.Int32, 64)
			if err != nil {
				t.Error(err)
				return
			}
			// Ping-pong the page between the Fireflies across the loss
			// window and host 2's scripted death. Each writer is its own
			// proc: the one executing inside the crashed module at 300 ms
			// dies with its host, while the other keeps going — main only
			// sleeps, so it can never be unwound by the crash.
			for w := 1; w <= 2; w++ {
				host := c.Hosts[w]
				c.K.Spawn(fmt.Sprintf("writer%d", w), func(wp *sim.Proc) {
					for i := 0; i < 20; i++ {
						if err := host.DSM.WriteInt32E(wp, addr+dsm.Addr(4*((i*2)%64)), int32(i)); err != nil {
							tail += fmt.Sprintf("w%d.%d:%v;", host.ID, i, errors.Unwrap(err) != nil)
						}
						wp.Sleep(40 * time.Millisecond)
					}
				})
			}
			p.Sleep(time.Second + detectionSettle)
			buf := make([]int32, 64)
			if err := h.DSM.ReadInt32sE(p, addr, buf); err != nil {
				tail += fmt.Sprintf("final-read:%v", errors.Is(err, dsm.ErrPageLost))
			} else {
				tail += fmt.Sprintf("final:%v", buf)
			}
		})
		s := c.TotalDSMStats()
		n := c.Net.Stats()
		return fmt.Sprintf("t=%v recovered=%d lost=%d fetched=%d dropped=%d cut=%d toDead=%d %s",
			elapsed, s.PagesRecovered, s.PagesLost, s.PagesFetched, n.FramesDropped, n.FramesCut, n.FramesToDead, tail)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("faulty runs diverged:\n  %s\n  %s", a, b)
	}
}

func TestDeadSyncManagerSurfacesError(t *testing.T) {
	// A semaphore whose manager host crashed: PE must return an error
	// (wrapping the endpoint's fail-fast) instead of blocking forever.
	c, err := New(Config{
		Hosts:            []HostSpec{{Kind: arch.Sun}, {Kind: arch.Sun}},
		Seed:             31,
		FailureDetection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.DefineSemaphore(1, 1, 0)
	c.Run(0, func(p *sim.Proc, h *Host) {
		c.CrashHost(1)
		p.Sleep(detectionSettle)
		if err := h.Sync.PE(p, 1); err == nil {
			t.Error("P on a semaphore whose manager died returned nil")
		}
		if err := h.Sync.VE(p, 1); err == nil {
			t.Error("V on a semaphore whose manager died returned nil")
		}
	})
}

func TestNoFaultRunsUnchangedByDetectionMachinery(t *testing.T) {
	// With FailureDetection off (the default), a cluster built from this
	// code must behave bit-identically to one built before the fault
	// work: same virtual duration, same stats. Two runs double as the
	// determinism guard.
	run := func(detect bool) string {
		c, err := New(Config{
			Hosts: []HostSpec{{Kind: arch.Sun}, {Kind: arch.Firefly}},
			Seed:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = detect
		elapsed := c.Run(0, func(p *sim.Proc, h *Host) {
			addr, err := h.DSM.Alloc(p, conv.Int32, 32)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 10; i++ {
				c.Hosts[i%2].DSM.WriteInt32(p, addr, int32(i))
			}
		})
		s := c.TotalDSMStats()
		return fmt.Sprintf("%v %d %d %d", elapsed, s.PagesFetched, s.WriteFaults, s.Upgrades)
	}
	if a, b := run(false), run(false); a != b {
		t.Fatalf("no-fault runs diverged: %s vs %s", a, b)
	}
}
