package cluster

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/conv"
	"repro/internal/proto"
	"repro/internal/sim"
)

// TestBitmapInvalidationLargeCopyset grows one page's copyset past the
// message Args capacity (15 targets), so the write-fault invalidation
// must go out as a single broadcast carrying the target bitmap in Data.
// Every copyset member must discard its copy and refetch the new
// value; the hosts that never read the page must ignore the broadcast
// (their bitmap bit is clear) and still read correctly afterwards.
func TestBitmapInvalidationLargeCopyset(t *testing.T) {
	const n = 20
	hosts := []HostSpec{{Kind: arch.Sun}}
	for i := 1; i < n; i++ {
		hosts = append(hosts, HostSpec{Kind: arch.Firefly})
	}
	c, err := New(Config{Hosts: hosts, Seed: 1, InvariantChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(0, func(p *sim.Proc, h0 *Host) {
		addr, err := h0.DSM.Alloc(p, conv.Int32, 4)
		if err != nil {
			t.Error(err)
			return
		}
		// Hosts 1..17 read the page: with the allocating owner that is
		// an 18-member copyset, so the writer's invalidation has 17
		// remote targets — two past the Args limit.
		for i := 1; i <= 17; i++ {
			if got := c.Hosts[i].DSM.ReadInt32(p, addr); got != 0 {
				t.Errorf("host %d read %d before write, want 0", i, got)
			}
		}
		c.Hosts[1].DSM.WriteInt32(p, addr, 42)
		// Former readers refetch (their copies were killed by the
		// bitmap broadcast); hosts 18 and 19 were bystanders to it.
		for i := 0; i < n; i++ {
			if got := c.Hosts[i].DSM.ReadInt32(p, addr); got != 42 {
				t.Errorf("host %d read %d after invalidation, want 42", i, got)
			}
		}
	})
	// The whole 17-copy kill must have cost exactly one invalidation
	// message — the broadcast — not one unicast per copy.
	total := c.TotalDSMStats()
	if got := total.Messages[proto.KindInvalidate]; got != 1 {
		t.Fatalf("KindInvalidate messages = %d, want 1 (bitmap broadcast)", got)
	}
}
