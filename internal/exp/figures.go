package exp

import (
	"fmt"

	"repro/internal/apps/matmul"
	"repro/internal/apps/pcb"
	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/dsm"
	"repro/internal/model"
)

// The paper's workload parameters.
const (
	// MMSize is the matrix dimension (256×256 integers, §3.2).
	MMSize = 256
	// PCBWidth and PCBHeight are the board image dimensions: the
	// 2 cm × 16 cm area at 128 px/cm, stored with the long (16 cm) axis
	// as rows so stripes follow it.
	PCBWidth  = 256
	PCBHeight = 2048
	// fireflyCPUs is the per-Firefly processor count used by the
	// figures (the machines had up to 7; Topaz keeps one busy).
	fireflyCPUs = 6
)

// FigPoint is one point of a response-time series.
type FigPoint struct {
	// Threads is the slave thread count.
	Threads int
	// Seconds is the response time in virtual seconds.
	Seconds float64
	// Transfers counts DSM page bodies moved during the run.
	Transfers int
}

// runMM executes one matrix multiplication on a fresh cluster.
func runMM(hosts []cluster.HostSpec, master cluster.HostID, slaves []cluster.HostID,
	assign matmul.Assignment, pageSize int, seed int64, jitter float64) FigPoint {
	return runMMChunked(hosts, master, slaves, assign, pageSize, seed, jitter, 0)
}

// runMMChunked additionally controls the result-store granularity and
// applies per-request processing jitter matching the compute jitter.
func runMMChunked(hosts []cluster.HostSpec, master cluster.HostID, slaves []cluster.HostID,
	assign matmul.Assignment, pageSize int, seed int64, jitter float64, chunk int) FigPoint {
	var params *model.Params
	if jitter > 0 {
		pv := model.Default()
		pv.ProcessJitterPct = jitter
		params = &pv
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, PageSize: pageSize, Seed: seed, Params: params})
	if err != nil {
		panic(err)
	}
	r := matmul.Register(c)
	res, err := r.Run(matmul.Config{
		N: MMSize, Master: master, Slaves: slaves,
		Assignment: assign, JitterPct: jitter, WriteChunk: chunk,
	})
	if err != nil {
		panic(err)
	}
	return FigPoint{
		Threads:   len(slaves),
		Seconds:   res.Elapsed.Seconds(),
		Transfers: res.Stats.PagesFetched,
	}
}

// Figure3Result holds the two series of Figure 3.
type Figure3Result struct {
	// Physical: all slave threads on the CPUs of one Firefly (physical
	// shared memory), master on another Firefly.
	Physical []FigPoint
	// Distributed: one slave thread per Firefly (DSM), master on yet
	// another Firefly.
	Distributed []FigPoint
}

// Figure3 compares physical and distributed shared memory for MM (§3.2,
// Figure 3): the same thread counts either share one Firefly's memory
// or span machines.
func Figure3(maxThreads int) Figure3Result {
	var out Figure3Result
	for t := 1; t <= maxThreads; t++ {
		// Physical: host 0 master Firefly, host 1 the compute Firefly.
		hosts := []cluster.HostSpec{
			{Kind: arch.Firefly, CPUs: 1},
			{Kind: arch.Firefly, CPUs: fireflyCPUs},
		}
		slaves := make([]cluster.HostID, t)
		for i := range slaves {
			slaves[i] = 1
		}
		out.Physical = append(out.Physical, runMM(hosts, 0, slaves, matmul.MM1, 8192, 1, 0))

		// Distributed: master on host 0, one thread on each of t Fireflies.
		hosts = []cluster.HostSpec{{Kind: arch.Firefly, CPUs: 1}}
		slaves = slaves[:0]
		for i := 1; i <= t; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: 1})
			slaves = append(slaves, cluster.HostID(i))
		}
		out.Distributed = append(out.Distributed, runMM(hosts, 0, slaves, matmul.MM1, 8192, 1, 0))
	}
	return out
}

// Figure3Table formats Figure 3.
func Figure3Table(res Figure3Result) *Table {
	t := &Table{
		Title:  "Figure 3: MM response time, physical vs distributed shared memory (s)",
		Header: []string{"threads", "one Firefly (physical)", "multiple Fireflies (DSM)"},
	}
	for i := range res.Physical {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Physical[i].Threads),
			fmt.Sprintf("%.1f", res.Physical[i].Seconds),
			fmt.Sprintf("%.1f", res.Distributed[i].Seconds),
		})
	}
	return t
}

// Figure4 measures MM with the master on a Sun and slaves balanced over
// one to four Fireflies (§3.2, Figure 4). Threads ranges over
// 1..maxThreads.
func Figure4(maxThreads int) []FigPoint {
	var out []FigPoint
	for t := 1; t <= maxThreads; t++ {
		nf := firefliesFor(t)
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		out = append(out, runMM(hosts, 0, placeThreads(t, nf), matmul.MM1, 8192, 1, 0))
	}
	return out
}

// SeriesTable formats a single response-time series.
func SeriesTable(title string, pts []FigPoint) *Table {
	t := &Table{Title: title, Header: []string{"threads", "seconds", "page transfers"}}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.1f", p.Seconds),
			fmt.Sprintf("%d", p.Transfers),
		})
	}
	return t
}

// Figure5Point extends FigPoint with speedup over the sequential Sun run.
type Figure5Point struct {
	FigPoint
	// Speedup is sequential-Sun time divided by this response time.
	Speedup float64
}

// Figure5 measures PCB inspection with the master on a Sun and checking
// threads on one to four Fireflies (§3.2, Figure 5).
func Figure5(maxThreads int) []Figure5Point {
	var out []Figure5Point
	var seqSeconds float64
	for t := 1; t <= maxThreads; t++ {
		nf := firefliesFor(t)
		c, err := sunMasterCluster(nf, fireflyCPUs, 8192, 1)
		if err != nil {
			panic(err)
		}
		r := pcb.Register(c)
		if seqSeconds == 0 {
			seqSeconds = r.Sequential(arch.Sun, PCBWidth, PCBHeight, 5).Seconds()
		}
		res, err := r.Run(pcb.Config{
			W: PCBWidth, H: PCBHeight,
			Master: 0, Slaves: placeThreads(t, nf), Seed: 5,
		})
		if err != nil {
			panic(err)
		}
		out = append(out, Figure5Point{
			FigPoint: FigPoint{
				Threads:   t,
				Seconds:   res.Elapsed.Seconds(),
				Transfers: res.Stats.PagesFetched,
			},
			Speedup: seqSeconds / res.Elapsed.Seconds(),
		})
	}
	return out
}

// Figure5Table formats Figure 5.
func Figure5Table(pts []Figure5Point) *Table {
	t := &Table{
		Title:  "Figure 5: PCB inspection, master on Sun, slaves on 1–4 Fireflies",
		Header: []string{"threads", "seconds", "speedup vs Sun sequential"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.1f", p.Seconds),
			fmt.Sprintf("%.1f", p.Speedup),
		})
	}
	return t
}

// Figure6Result holds the two series of Figure 6.
type Figure6Result struct {
	// Large uses 8 KB DSM pages, Small 1 KB, both running MM1.
	Large, Small []FigPoint
}

// Figure6 compares the largest and smallest page size algorithms on MM1
// (§3.3, Figure 6).
func Figure6(maxThreads int) Figure6Result {
	var out Figure6Result
	for t := 1; t <= maxThreads; t++ {
		nf := firefliesFor(t)
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		slaves := placeThreads(t, nf)
		out.Large = append(out.Large, runMM(hosts, 0, slaves, matmul.MM1, 8192, 1, 0))
		out.Small = append(out.Small, runMM(hosts, 0, slaves, matmul.MM1, 1024, 1, 0))
	}
	return out
}

// Figure6Table formats Figure 6.
func Figure6Table(res Figure6Result) *Table {
	t := &Table{
		Title:  "Figure 6: MM1 with the large vs small page size algorithm (s)",
		Header: []string{"threads", "8KB pages", "1KB pages"},
	}
	for i := range res.Large {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.Large[i].Threads),
			fmt.Sprintf("%.1f", res.Large[i].Seconds),
			fmt.Sprintf("%.1f", res.Small[i].Seconds),
		})
	}
	return t
}

// Figure7Result holds the two series of Figure 7.
type Figure7Result struct {
	// MM1 and MM2 both run under the smallest page size algorithm.
	MM1, MM2 []FigPoint
}

// Figure7 compares MM1 and MM2 under the smallest page size algorithm
// (§3.3, Figure 7): with one row per 1 KB page, round-robin assignment
// causes no false sharing and the two behave similarly.
func Figure7(maxThreads int) Figure7Result {
	var out Figure7Result
	for t := 1; t <= maxThreads; t++ {
		nf := firefliesFor(t)
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		slaves := placeThreads(t, nf)
		out.MM1 = append(out.MM1, runMM(hosts, 0, slaves, matmul.MM1, 1024, 1, 0))
		out.MM2 = append(out.MM2, runMM(hosts, 0, slaves, matmul.MM2, 1024, 1, 0))
	}
	return out
}

// Figure7Table formats Figure 7.
func Figure7Table(res Figure7Result) *Table {
	t := &Table{
		Title:  "Figure 7: MM1 vs MM2 with the small page size algorithm (s)",
		Header: []string{"threads", "MM1", "MM2"},
	}
	for i := range res.MM1 {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", res.MM1[i].Threads),
			fmt.Sprintf("%.1f", res.MM1[i].Seconds),
			fmt.Sprintf("%.1f", res.MM2[i].Seconds),
		})
	}
	return t
}

// ThrashingResult summarizes the §3.3 thrashing experiment.
type ThrashingResult struct {
	// Threads is the slave thread count over the Fireflies.
	Threads int
	// MinS, MaxS, MeanS summarize response times across seeds.
	MinS, MaxS, MeanS float64
	// SequentialS is the one-Firefly sequential baseline.
	SequentialS float64
	// MeanTransfers is the average page-body count moved per run.
	MeanTransfers float64
	// MM1Transfers is MM1's transfer count at the same configuration,
	// for contrast.
	MM1Transfers int
}

// Thrashing runs MM2 under the largest page size algorithm — the
// paper's worst case, where an 8 KB page is shared by up to eight
// threads — across several seeds, reproducing the large, fluctuating
// execution times and page transfer counts of §3.3.
func Thrashing(threadCounts []int, seeds []int64) []ThrashingResult {
	var out []ThrashingResult
	for _, t := range threadCounts {
		// The paper ran MM2 on two or three Fireflies; three maximizes
		// the page ping-pong parties.
		const nf = 3
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		slaves := placeThreads(t, nf)
		res := ThrashingResult{Threads: t, MinS: 1e18}
		// Element-burst stores (the original system stored each result
		// element as computed) let contended pages be stolen mid-row:
		// the ingredient of full-severity thrashing.
		const chunk = 4
		for _, seed := range seeds {
			pt := runMMChunked(hosts, 0, slaves, matmul.MM2, 8192, seed, 0.03, chunk)
			res.MeanS += pt.Seconds
			res.MeanTransfers += float64(pt.Transfers)
			res.MinS = min(res.MinS, pt.Seconds)
			res.MaxS = max(res.MaxS, pt.Seconds)
		}
		res.MeanS /= float64(len(seeds))
		res.MeanTransfers /= float64(len(seeds))
		mm1 := runMM(hosts, 0, slaves, matmul.MM1, 8192, seeds[0], 0.03)
		res.MM1Transfers = mm1.Transfers
		// One-thread sequential-equivalent baseline on a Firefly.
		c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1})
		if err != nil {
			panic(err)
		}
		res.SequentialS = matmul.Register(c).Sequential(arch.Firefly, MMSize).Seconds()
		out = append(out, res)
	}
	return out
}

// ThrashingRCPoint contrasts §3.3's worst case — MM2 under the largest
// page size algorithm — across consistency models at one thread count.
type ThrashingRCPoint struct {
	// Threads is the slave thread count over the Fireflies.
	Threads int
	// InvS / InvTransfers / InvBytes are the write-invalidate MRSW
	// baseline: response time, page bodies moved, page data on the wire.
	InvS         float64
	InvTransfers int
	InvBytes     int
	// RCS / RCTransfers / RCBytes are the same run under dsm.PolicyRC
	// with the acquire/release brackets on; RCDiffBytes is the typed
	// diff traffic that replaces the invalidate engine's page bodies —
	// the honest accounting of where RC's bytes went instead.
	RCS         float64
	RCTransfers int
	RCBytes     int
	RCDiffBytes int
}

// runMMPolicy is runMMChunked under an explicit replication policy,
// with the acquire/release brackets on for the non-SC policy, and
// returns the full DSM counters alongside the figure point.
func runMMPolicy(hosts []cluster.HostSpec, master cluster.HostID, slaves []cluster.HostID,
	assign matmul.Assignment, pageSize int, seed int64, jitter float64, chunk int,
	policy dsm.Policy) (FigPoint, dsm.Stats) {
	var params *model.Params
	if jitter > 0 {
		pv := model.Default()
		pv.ProcessJitterPct = jitter
		params = &pv
	}
	c, err := cluster.New(cluster.Config{Hosts: hosts, PageSize: pageSize, Seed: seed, Params: params, Policy: policy})
	if err != nil {
		panic(err)
	}
	r := matmul.Register(c)
	res, err := r.Run(matmul.Config{
		N: MMSize, Master: master, Slaves: slaves,
		Assignment: assign, JitterPct: jitter, WriteChunk: chunk,
		AcquireRelease: policy == dsm.PolicyRC,
	})
	if err != nil {
		panic(err)
	}
	return FigPoint{
		Threads:   len(slaves),
		Seconds:   res.Elapsed.Seconds(),
		Transfers: res.Stats.PagesFetched,
	}, res.Stats
}

// ThrashingRC reruns the thrashing configuration under lazy release
// consistency: the same MM2 round-robin assignment, 8 KB pages and
// element-burst stores that make the write-invalidate engine ping-pong
// C's pages, but with each writer keeping an independent writable copy
// (twin) and shipping element-aligned diffs at release. The page
// transfer count — the §3.3 thrashing signature — should collapse; the
// diff bytes column shows what RC pays instead.
func ThrashingRC(threadCounts []int, seed int64) []ThrashingRCPoint {
	var out []ThrashingRCPoint
	for _, t := range threadCounts {
		const nf = 3
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < nf; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		slaves := placeThreads(t, nf)
		const chunk = 4
		inv, invStats := runMMPolicy(hosts, 0, slaves, matmul.MM2, 8192, seed, 0.03, chunk, dsm.PolicyMRSW)
		rc, rcStats := runMMPolicy(hosts, 0, slaves, matmul.MM2, 8192, seed, 0.03, chunk, dsm.PolicyRC)
		out = append(out, ThrashingRCPoint{
			Threads:      t,
			InvS:         inv.Seconds,
			InvTransfers: inv.Transfers,
			InvBytes:     invStats.BytesFetched,
			RCS:          rc.Seconds,
			RCTransfers:  rc.Transfers,
			RCBytes:      rcStats.BytesFetched,
			RCDiffBytes:  rcStats.RCDiffBytes,
		})
	}
	return out
}

// ThrashingRCTable formats the consistency-model contrast.
func ThrashingRCTable(rows []ThrashingRCPoint) *Table {
	t := &Table{
		Title:  "Thrashing vs release consistency (§3.3 ext.): MM2 with 8KB pages",
		Header: []string{"threads", "inv s", "rc s", "inv transfers", "rc transfers", "inv KB", "rc KB", "rc diff KB"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.1f", r.InvS),
			fmt.Sprintf("%.1f", r.RCS),
			fmt.Sprintf("%d", r.InvTransfers),
			fmt.Sprintf("%d", r.RCTransfers),
			fmt.Sprintf("%.0f", float64(r.InvBytes)/1024),
			fmt.Sprintf("%.0f", float64(r.RCBytes)/1024),
			fmt.Sprintf("%.0f", float64(r.RCDiffBytes)/1024),
		})
	}
	return t
}

// ThrashingTable formats the thrashing summary.
func ThrashingTable(rows []ThrashingResult) *Table {
	t := &Table{
		Title:  "Thrashing (§3.3): MM2 with 8KB pages across seeds",
		Header: []string{"threads", "min s", "mean s", "max s", "seq s", "×seq", "transfers (MM2)", "transfers (MM1)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.1f", r.MinS),
			fmt.Sprintf("%.1f", r.MeanS),
			fmt.Sprintf("%.1f", r.MaxS),
			fmt.Sprintf("%.1f", r.SequentialS),
			fmt.Sprintf("%.1f", r.MeanS/r.SequentialS),
			fmt.Sprintf("%.0f", r.MeanTransfers),
			fmt.Sprintf("%d", r.MM1Transfers),
		})
	}
	return t
}

// OverheadResult is the §3.2 single-slave overhead check.
type OverheadResult struct {
	App string
	// SequentialS is the modelled sequential time on the host.
	SequentialS float64
	// DSMS is the DSM run with one slave on the same host.
	DSMS float64
	// OverheadPct is the relative difference.
	OverheadPct float64
}

// SingleThreadOverhead reproduces the §3.2 observation that DSM
// initialization, thread creation and synchronization overheads are
// near zero: a one-slave DSM run on a single host is compared with the
// sequential time.
func SingleThreadOverhead() []OverheadResult {
	var out []OverheadResult

	// MM on one Firefly.
	hosts := []cluster.HostSpec{{Kind: arch.Firefly, CPUs: 2}}
	c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1})
	if err != nil {
		panic(err)
	}
	mr := matmul.Register(c)
	seq := mr.Sequential(arch.Firefly, MMSize).Seconds()
	res, err := mr.Run(matmul.Config{N: MMSize, Master: 0, Slaves: []cluster.HostID{0}})
	if err != nil {
		panic(err)
	}
	out = append(out, OverheadResult{
		App: "MM", SequentialS: seq, DSMS: res.Elapsed.Seconds(),
		OverheadPct: 100 * (res.Elapsed.Seconds() - seq) / seq,
	})

	// PCB on one Sun.
	hosts = []cluster.HostSpec{{Kind: arch.Sun}}
	c2, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1})
	if err != nil {
		panic(err)
	}
	pr := pcb.Register(c2)
	seqP := pr.Sequential(arch.Sun, PCBWidth, PCBHeight, 5).Seconds()
	resP, err := pr.Run(pcb.Config{W: PCBWidth, H: PCBHeight, Master: 0, Slaves: []cluster.HostID{0}, Seed: 5, Overlap: 1})
	if err != nil {
		panic(err)
	}
	out = append(out, OverheadResult{
		App: "PCB", SequentialS: seqP, DSMS: resP.Elapsed.Seconds(),
		OverheadPct: 100 * (resP.Elapsed.Seconds() - seqP) / seqP,
	})
	return out
}

// OverheadTable formats the single-slave overhead check.
func OverheadTable(rows []OverheadResult) *Table {
	t := &Table{
		Title:  "DSM initialization and thread overhead (§3.2): sequential vs 1-slave DSM",
		Header: []string{"app", "sequential s", "DSM 1-slave s", "overhead %"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.App,
			fmt.Sprintf("%.1f", r.SequentialS),
			fmt.Sprintf("%.1f", r.DSMS),
			fmt.Sprintf("%.1f", r.OverheadPct),
		})
	}
	return t
}

// AblationResult compares a toggled optimization.
type AblationResult struct {
	Name                    string
	BaselineS, TunedS       float64
	BaselineConv, TunedConv int
}

// AblationSameKindSource measures the §2.3 optimization of serving read
// faults from a same-type holder: Firefly readers of Sun-written data
// should convert once, not once per reader.
func AblationSameKindSource() AblationResult {
	run := func(prefer bool) (float64, int) {
		hosts := []cluster.HostSpec{{Kind: arch.Sun}}
		for i := 0; i < 4; i++ {
			hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
		}
		c, err := cluster.New(cluster.Config{Hosts: hosts, Seed: 1, PreferSameKindSource: prefer})
		if err != nil {
			panic(err)
		}
		r := matmul.Register(c)
		res, err := r.Run(matmul.Config{
			N: MMSize, Master: 0,
			Slaves: placeThreads(8, 4),
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed.Seconds(), res.Stats.Conversions
	}
	base, baseConv := run(false)
	tuned, tunedConv := run(true)
	return AblationResult{
		Name:      "prefer same-kind read source",
		BaselineS: base, TunedS: tuned,
		BaselineConv: baseConv, TunedConv: tunedConv,
	}
}

// PageSizePoint is one cell of the page-size sweep.
type PageSizePoint struct {
	// PageSize is the DSM page size in bytes.
	PageSize int
	// MM1S and MM2S are response times of the two assignments (s).
	MM1S, MM2S float64
}

// PageSizeSweep explores the §2.4 observation that the two page-size
// algorithms are the extremes of a spectrum: MM1 and MM2 run at every
// power-of-two DSM page size between 1 KB and 8 KB. Larger pages help
// the well-behaved MM1 (fewer faults) and hurt the false-sharing MM2.
func PageSizeSweep(threads int) []PageSizePoint {
	nf := firefliesFor(threads)
	hosts := []cluster.HostSpec{{Kind: arch.Sun}}
	for i := 0; i < nf; i++ {
		hosts = append(hosts, cluster.HostSpec{Kind: arch.Firefly, CPUs: fireflyCPUs})
	}
	slaves := placeThreads(threads, nf)
	var out []PageSizePoint
	for _, ps := range []int{1024, 2048, 4096, 8192} {
		p := PageSizePoint{PageSize: ps}
		p.MM1S = runMMChunked(hosts, 0, slaves, matmul.MM1, ps, 1, 0.03, 4).Seconds
		p.MM2S = runMMChunked(hosts, 0, slaves, matmul.MM2, ps, 1, 0.03, 4).Seconds
		out = append(out, p)
	}
	return out
}

// PageSizeSweepTable formats the sweep.
func PageSizeSweepTable(pts []PageSizePoint) *Table {
	t := &Table{
		Title:  "Page size spectrum (§2.4): MM1 vs MM2 response time (s), 8 threads",
		Header: []string{"DSM page", "MM1 (block rows)", "MM2 (round robin)"},
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dB", p.PageSize),
			fmt.Sprintf("%.1f", p.MM1S),
			fmt.Sprintf("%.1f", p.MM2S),
		})
	}
	return t
}
