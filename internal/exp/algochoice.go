package exp

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/conv"
	"repro/internal/dsm"
	"repro/internal/sim"
)

// AlgorithmChoiceRow compares the three coherence algorithms on one
// memory-access pattern, reproducing the claim behind Mermaid's
// user-level design: "the correct choice of algorithm was often
// dictated by the memory access behavior of the application" (§2.1,
// citing the authors' companion study).
type AlgorithmChoiceRow struct {
	// Workload names the access pattern.
	Workload string
	// MRSWS, MigrationS, CentralS, UpdateS are the run times in seconds.
	MRSWS, MigrationS, CentralS, UpdateS float64
}

// AlgorithmChoice runs three access patterns under each policy:
//
//   - read-shared: every host repeatedly reads a large region that one
//     host wrote (MRSW replicates; migration ping-pongs the only copy;
//     central pays a remote op per read batch);
//   - write-private: each host updates only its own region (MRSW and
//     migration settle to local access; central keeps paying per op);
//   - hotspot: all hosts update single words of one shared page (page
//     algorithms ping-pong an 8 KB page per update; central touches
//     four bytes per op).
func AlgorithmChoice() []AlgorithmChoiceRow {
	workloads := []struct {
		name string
		run  func(c *cluster.Cluster) // orchestrated inside c.Run's main
	}{
		{name: "read-shared", run: runReadShared},
		{name: "write-private", run: runWritePrivate},
		{name: "hotspot", run: runHotspot},
		{name: "producer-consumer", run: runProducerConsumer},
	}
	var rows []AlgorithmChoiceRow
	for _, w := range workloads {
		row := AlgorithmChoiceRow{Workload: w.name}
		for _, pol := range []dsm.Policy{dsm.PolicyMRSW, dsm.PolicyMigration, dsm.PolicyCentral, dsm.PolicyUpdate} {
			c, err := cluster.New(cluster.Config{
				Hosts: []cluster.HostSpec{
					{Kind: arch.Sun},
					{Kind: arch.Firefly, CPUs: 2},
					{Kind: arch.Firefly, CPUs: 2},
					{Kind: arch.Sun},
				},
				Seed:   1,
				Policy: pol,
			})
			if err != nil {
				panic(err)
			}
			start := c.K.Now()
			w.run(c)
			secs := c.K.Now().Sub(start).Seconds()
			switch pol {
			case dsm.PolicyMRSW:
				row.MRSWS = secs
			case dsm.PolicyMigration:
				row.MigrationS = secs
			case dsm.PolicyCentral:
				row.CentralS = secs
			case dsm.PolicyUpdate:
				row.UpdateS = secs
			default:
				panic("unhandled policy in algorithm-choice study")
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// spawnPerHost runs fn concurrently on every host and waits.
func spawnPerHost(c *cluster.Cluster, p *sim.Proc, fn func(h *cluster.Host, p *sim.Proc)) {
	done := sim.NewSemaphore(c.K, 0)
	for _, h := range c.Hosts {
		h := h
		c.K.Spawn("w", func(wp *sim.Proc) {
			fn(h, wp)
			done.V()
		})
	}
	for range c.Hosts {
		done.P(p)
	}
}

func runReadShared(c *cluster.Cluster) {
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		const n = 16384 // 64 KB of ints
		addr, err := h0.DSM.Alloc(p, conv.Int32, n)
		if err != nil {
			panic(err)
		}
		h0.DSM.WriteInt32s(p, addr, make([]int32, n))
		spawnPerHost(c, p, func(h *cluster.Host, wp *sim.Proc) {
			buf := make([]int32, n)
			for round := 0; round < 5; round++ {
				h.DSM.ReadInt32s(wp, addr, buf)
			}
		})
	})
}

func runWritePrivate(c *cluster.Cluster) {
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		const per = 2048 // one 8 KB page per host
		// Padding page so no host's private page happens to be managed
		// (served) by that host itself.
		if _, err := h0.DSM.Alloc(p, conv.Int32, per); err != nil {
			panic(err)
		}
		addr, err := h0.DSM.Alloc(p, conv.Int32, per*len(c.Hosts))
		if err != nil {
			panic(err)
		}
		spawnPerHost(c, p, func(h *cluster.Host, wp *sim.Proc) {
			base := addr + dsm.Addr(4*per*int(h.ID))
			buf := make([]int32, per)
			for round := 0; round < 5; round++ {
				for i := range buf {
					buf[i] += int32(h.ID)
				}
				h.DSM.WriteInt32s(wp, base, buf)
			}
		})
	})
}

func runHotspot(c *cluster.Cluster) {
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		addr, err := h0.DSM.Alloc(p, conv.Int32, 64) // one hot page
		if err != nil {
			panic(err)
		}
		h0.DSM.WriteInt32s(p, addr, make([]int32, 64))
		spawnPerHost(c, p, func(h *cluster.Host, wp *sim.Proc) {
			slot := addr + dsm.Addr(4*int(h.ID))
			for round := 0; round < 25; round++ {
				// Work between updates: the hot page cannot stay parked
				// on one host across rounds.
				wp.Sleep(30 * time.Millisecond)
				v := h.DSM.ReadInt32(wp, slot)
				h.DSM.WriteInt32(wp, slot, v+1)
			}
		})
	})
}

// runProducerConsumer has one host periodically publishing a small
// record that every other host polls frequently — read-mostly with
// small writes, the write-update policy's home turf: MRSW invalidates
// all readers on each publish and they re-fault whole pages.
func runProducerConsumer(c *cluster.Cluster) {
	c.Run(0, func(p *sim.Proc, h0 *cluster.Host) {
		addr, err := h0.DSM.Alloc(p, conv.Int32, 16)
		if err != nil {
			panic(err)
		}
		h0.DSM.WriteInt32s(p, addr, make([]int32, 16))
		done := sim.NewSemaphore(c.K, 0)
		const (
			rounds = 20
			polls  = 200
		)
		c.K.Spawn("producer", func(wp *sim.Proc) {
			for i := 1; i <= rounds; i++ {
				wp.Sleep(20 * time.Millisecond)
				c.Hosts[0].DSM.WriteInt32s(wp, addr, []int32{int32(i)})
			}
			done.V()
		})
		for hid := 1; hid < len(c.Hosts); hid++ {
			h := c.Hosts[hid]
			c.K.Spawn("consumer", func(wp *sim.Proc) {
				var v [1]int32
				for i := 0; i < polls; i++ {
					h.DSM.ReadInt32s(wp, addr, v[:])
					wp.Sleep(2 * time.Millisecond) // process the value
				}
				done.V()
			})
		}
		for i := 0; i < len(c.Hosts); i++ {
			done.P(p)
		}
	})
}

// AlgorithmChoiceTable formats the comparison.
func AlgorithmChoiceTable(rows []AlgorithmChoiceRow) *Table {
	t := &Table{
		Title:  "Coherence algorithm choice by access pattern (§2.1), seconds",
		Header: []string{"workload", "MRSW", "migration", "central", "update", "best"},
	}
	for _, r := range rows {
		best := "MRSW"
		bv := r.MRSWS
		if r.MigrationS < bv {
			best, bv = "migration", r.MigrationS
		}
		if r.CentralS < bv {
			best, bv = "central", r.CentralS
		}
		if r.UpdateS < bv {
			best = "update"
		}
		t.Rows = append(t.Rows, []string{
			r.Workload,
			fmt.Sprintf("%.2f", r.MRSWS),
			fmt.Sprintf("%.2f", r.MigrationS),
			fmt.Sprintf("%.2f", r.CentralS),
			fmt.Sprintf("%.2f", r.UpdateS),
			best,
		})
	}
	return t
}
